#include "perf/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qcdoc::perf {

std::string format_table(const std::vector<Row>& rows) {
  std::ostringstream out;
  std::size_t w_exp = 10, w_qty = 8;
  for (const auto& r : rows) {
    w_exp = std::max(w_exp, r.experiment.size());
    w_qty = std::max(w_qty, r.quantity.size());
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %-*s  %12s  %12s  %-10s\n",
                static_cast<int>(w_exp), "experiment", static_cast<int>(w_qty),
                "quantity", "paper", "measured", "unit");
  out << line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%-*s  %-*s  %12.4g  %12.4g  %-10s\n",
                  static_cast<int>(w_exp), r.experiment.c_str(),
                  static_cast<int>(w_qty), r.quantity.c_str(), r.paper_value,
                  r.measured_value, r.unit.c_str());
    out << line;
  }
  return out.str();
}

std::string format_engine_report(const sim::EngineReport& r,
                                 bool wall_clock) {
  char line[512];
  if (r.kind != "parallel") {
    std::snprintf(line, sizeof(line), "engine: %s, %llu events",
                  r.kind.c_str(),
                  static_cast<unsigned long long>(r.events));
    std::string out = line;
    if (wall_clock) {
      std::snprintf(line, sizeof(line),
                    "\nengine wall clock: action pool %llu blocks / %llu "
                    "reuses / %llu oversize",
                    static_cast<unsigned long long>(r.action_pool_blocks),
                    static_cast<unsigned long long>(r.action_pool_reuses),
                    static_cast<unsigned long long>(r.action_oversize_allocs));
      out += line;
    }
    return out;
  }
  u64 min_shard = ~u64{0}, max_shard = 0;
  for (const u64 e : r.shard_events) {
    min_shard = std::min(min_shard, e);
    max_shard = std::max(max_shard, e);
  }
  if (r.shard_events.empty()) min_shard = 0;
  // Deliberately no wall-clock figures on the first line: it goes into
  // example and bench output that must be bit-identical run to run.  The
  // timing-dependent diagnostics (barrier stall, wait histogram, allocator
  // counters) only appear on the opt-in wall_clock line.
  std::snprintf(line, sizeof(line),
                "engine: parallel, %d threads, lookahead %llu cycles, "
                "%llu events (shards %llu..%llu), windows %llu par / %llu "
                "ff / %llu host, %llu cross-shard, peak pending %llu",
                r.threads, static_cast<unsigned long long>(r.lookahead),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(min_shard),
                static_cast<unsigned long long>(max_shard),
                static_cast<unsigned long long>(r.windows_parallel),
                static_cast<unsigned long long>(r.windows_serial),
                static_cast<unsigned long long>(r.windows_host),
                static_cast<unsigned long long>(r.cross_shard_events),
                static_cast<unsigned long long>(r.peak_pending_events));
  std::string out = line;
  if (wall_clock) {
    std::snprintf(line, sizeof(line),
                  "\nengine wall clock: %.2fs barrier stall, action pool "
                  "%llu blocks / %llu reuses / %llu oversize, waits",
                  r.barrier_stall_seconds,
                  static_cast<unsigned long long>(r.action_pool_blocks),
                  static_cast<unsigned long long>(r.action_pool_reuses),
                  static_cast<unsigned long long>(r.action_oversize_allocs));
    out += line;
    // Histogram bucket 0 is "no wait"; bucket k >= 1 covers waits of
    // [2^(k-1), 2^k) microseconds, with the last bucket open-ended.
    for (std::size_t b = 0; b < r.barrier_wait_hist.size(); ++b) {
      std::snprintf(line, sizeof(line), " %llu",
                    static_cast<unsigned long long>(r.barrier_wait_hist[b]));
      out += line;
    }
  }
  return out;
}

std::string format_traffic_report(const lattice::TrafficByPrecision& t) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-9s %12s %12s %12s %8s %8s %8s\n",
                "precision", "Mflop", "load MB", "store MB", "edram%", "ddr%",
                "flop/B");
  out << line;
  lattice::PrecisionTraffic total;
  for (int i = 0; i < lattice::kNumPrecisions; ++i) {
    const lattice::PrecisionTraffic& p = t[static_cast<std::size_t>(i)];
    total += p;
    if (p.flops == 0 && p.bytes() == 0) continue;
    const double placed = p.edram_bytes + p.ddr_bytes;
    std::snprintf(line, sizeof(line),
                  "%-9s %12.2f %12.2f %12.2f %8.1f %8.1f %8.2f\n",
                  lattice::precision_name(static_cast<lattice::Precision>(i)),
                  p.flops / 1e6, p.load_bytes / 1e6, p.store_bytes / 1e6,
                  placed > 0 ? 100.0 * p.edram_bytes / placed : 0.0,
                  placed > 0 ? 100.0 * p.ddr_bytes / placed : 0.0,
                  p.bytes() > 0 ? p.flops / p.bytes() : 0.0);
    out << line;
  }
  const double placed = total.edram_bytes + total.ddr_bytes;
  std::snprintf(line, sizeof(line),
                "%-9s %12.2f %12.2f %12.2f %8.1f %8.1f %8.2f\n", "total",
                total.flops / 1e6, total.load_bytes / 1e6,
                total.store_bytes / 1e6,
                placed > 0 ? 100.0 * total.edram_bytes / placed : 0.0,
                placed > 0 ? 100.0 * total.ddr_bytes / placed : 0.0,
                total.bytes() > 0 ? total.flops / total.bytes() : 0.0);
  out << line;
  return out.str();
}

std::string format_mem_resilience_report(machine::Machine& m) {
  const memsys::EccCounters c = m.mesh().total_ecc();
  char line[256];
  std::snprintf(line, sizeof(line),
                "memory: %llu upsets, %llu corrected, %llu cleared by "
                "rewrite, %llu uncorrectable, scrub %llu rows / %llu cycles",
                static_cast<unsigned long long>(c.upsets),
                static_cast<unsigned long long>(c.corrected),
                static_cast<unsigned long long>(c.cleared_by_rewrite),
                static_cast<unsigned long long>(c.uncorrectable),
                static_cast<unsigned long long>(c.scrub_rows),
                static_cast<unsigned long long>(c.scrub_cycles));
  return line;
}

namespace {

/// The q-th percentile of a sample set, nearest-rank (0 when empty).
Cycle percentile(std::vector<Cycle> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

std::string format_scheduler_report(const host::SchedulerReport& r) {
  std::ostringstream out;
  out << "scheduler: " << r.submitted << " submitted, " << r.accepted
      << " accepted, rejections queue_full=" << r.rejected_queue_full
      << " quota=" << r.rejected_quota
      << " bad_request=" << r.rejected_bad_request << "\n";
  out << "  " << r.completed << " completed, " << r.failed << " failed, "
      << r.requeues << " requeues, " << r.migrations << " migrations\n";
  out << "  time-to-boot cold: n=" << r.cold_boot_cycles.size() << " p50="
      << percentile(r.cold_boot_cycles, 0.5) << " p99="
      << percentile(r.cold_boot_cycles, 0.99) << " cycles\n";
  out << "  time-to-boot warm: n=" << r.warm_boot_cycles.size() << " p50="
      << percentile(r.warm_boot_cycles, 0.5) << " p99="
      << percentile(r.warm_boot_cycles, 0.99) << " cycles";
  return out.str();
}

double machine_peak_flops_per_cycle(const machine::Machine& m) {
  return static_cast<double>(m.num_nodes()) * 2.0;
}

double cg_efficiency(const machine::Machine& m, const lattice::CgResult& r) {
  return r.efficiency(machine_peak_flops_per_cycle(m));
}

double cg_sustained_mflops(const machine::Machine& m,
                           const lattice::CgResult& r) {
  const double seconds = m.seconds(r.cycles);
  return seconds > 0 ? r.flops / seconds / 1e6 : 0.0;
}

double price_per_mflops(const machine::Machine& m, double efficiency,
                        const machine::CostModel& cost) {
  return cost.usd_per_sustained_mflops(m.packaging(), m.hw().cpu_clock_hz,
                                       efficiency);
}

}  // namespace qcdoc::perf
