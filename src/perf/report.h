// Performance reporting: sustained efficiency, price/performance, and
// paper-versus-measured comparison rows shared by the benches and
// EXPERIMENTS.md generation.
#pragma once

#include <string>
#include <vector>

#include "host/scheduler.h"
#include "lattice/cg.h"
#include "lattice/linalg.h"
#include "machine/cost.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace qcdoc::perf {

/// One paper-vs-measured comparison line.
struct Row {
  std::string experiment;
  std::string quantity;
  double paper_value = 0;
  double measured_value = 0;
  std::string unit;
};

/// Render rows as an aligned text table.
std::string format_table(const std::vector<Row>& rows);

/// One-line summary of which simulation engine ran and how hard it worked:
/// kind, thread count, events, and -- for the parallel engine -- slice
/// counts (parallel windows / single-shard fast-forwards / host slices),
/// cross-shard schedules, peak pending depth, and the per-shard event
/// spread.  The default line carries only deterministic counters so bench
/// and example output stays bit-identical run to run; pass
/// `wall_clock = true` to append a second line with the timing-dependent
/// diagnostics (barrier stall seconds, the barrier-wait histogram, and the
/// action-pool allocation counters).
std::string format_engine_report(const sim::EngineReport& r,
                                 bool wall_clock = false);

/// Per-precision flop/byte table for one solve: Mflops, load/store Mbytes,
/// EDRAM/DDR residency split and arithmetic intensity per storage
/// precision, plus a total line.  Buckets with no traffic are omitted, so
/// an all-double solve prints two lines and a mixed half solve shows
/// exactly where the narrow bytes went.
std::string format_traffic_report(const lattice::TrafficByPrecision& t);

/// One-line summary of the machine's memory-resilience counters, summed
/// over every node: upsets injected, ECC corrections, rewrite clears,
/// uncorrectable codewords (machine checks), and scrub work done.
std::string format_mem_resilience_report(machine::Machine& m);

/// Multi-line summary of a scheduler run: submission/admission counters
/// (accepted and each typed rejection), completion/failure totals, re-queue
/// and migration counts, and p50/p99 time-to-boot split into cold and warm
/// (image-cache hit) starts.  Deterministic counters only, so bench output
/// stays bit-identical run to run.
std::string format_scheduler_report(const host::SchedulerReport& r);

/// Machine peak in flops per cycle (nodes x 2).
double machine_peak_flops_per_cycle(const machine::Machine& m);

/// Efficiency of a CG run on a machine.
double cg_efficiency(const machine::Machine& m, const lattice::CgResult& r);

/// Sustained Mflops of a CG run (whole machine).
double cg_sustained_mflops(const machine::Machine& m,
                           const lattice::CgResult& r);

/// Dollars per sustained Mflops of a machine running at `efficiency`.
double price_per_mflops(const machine::Machine& m, double efficiency,
                        const machine::CostModel& cost = machine::CostModel{});

}  // namespace qcdoc::perf
