// Distributed linear algebra over DistFields.
//
// The Krylov solvers are dominated by the Dirac operator, but their axpy /
// norm / inner-product "glue" is bandwidth-bound on the EDRAM and their
// inner products need machine-wide sums -- both of which the paper's
// architecture specifically provides for (prefetching EDRAM controller,
// SCU global mode).  Every operation here executes functionally on the
// simulated node memories AND advances the machine clock via the CPU timing
// model / global-operation model.
#pragma once

#include "comms/comms.h"
#include "cpu/timing.h"
#include "lattice/field.h"
#include "machine/bsp.h"

namespace qcdoc::lattice {

class FieldOps {
 public:
  FieldOps(machine::BspRunner* bsp, const cpu::CpuModel* cpu,
           comms::Communicator* comm)
      : bsp_(bsp), cpu_(cpu), comm_(comm) {}

  /// y += a x
  void axpy(double a, const DistField& x, DistField& y);
  /// y = x + a y
  void xpay(const DistField& x, double a, DistField& y);
  /// y = a x
  void scale_copy(double a, const DistField& x, DistField& y);
  void copy(const DistField& x, DistField& y);
  void zero(DistField& y);

  /// ||x||^2 over the whole machine (local reduction + SCU global sum).
  double norm2(const DistField& x);
  /// Re <x, y> over the whole machine.
  double dot_re(const DistField& x, const DistField& y);

  // Complex-scalar operations (fields are arrays of re/im pairs).  These
  // serve the non-Hermitian Krylov solvers (BiCGStab), which need complex
  // inner products -- two words through the SCU global-sum rings, pipelined.
  /// <x, y> = sum conj(x) y.
  Complex cdot(const DistField& x, const DistField& y);
  /// y += a x with complex a.
  void caxpy(const Complex& a, const DistField& x, DistField& y);
  /// y = x + a y with complex a.
  void cxpay(const DistField& x, const Complex& a, DistField& y);

  /// Total flops this FieldOps has accounted (for efficiency reports).
  double flops() const { return flops_; }
  void add_external_flops(double f) { flops_ += f; }
  void reset_flops() { flops_ = 0; }

  machine::BspRunner& bsp() { return *bsp_; }
  const cpu::CpuModel& cpu() const { return *cpu_; }
  comms::Communicator& comm() { return *comm_; }

 private:
  /// Profile of a streaming vector op over `n_fields_read` + one written
  /// field of `doubles_per_node` doubles with `flops_per_double` flops.
  cpu::KernelProfile stream_profile(const DistField& ref, int n_read,
                                    bool writes, double fmadd_per_double,
                                    double other_per_double) const;
  double global_sum(double local_partial_flops_hint, std::vector<double> partials);

  machine::BspRunner* bsp_;
  const cpu::CpuModel* cpu_;
  comms::Communicator* comm_;
  double flops_ = 0;
};

}  // namespace qcdoc::lattice
