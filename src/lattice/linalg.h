// Distributed linear algebra over DistFields.
//
// The Krylov solvers are dominated by the Dirac operator, but their axpy /
// norm / inner-product "glue" is bandwidth-bound on the EDRAM and their
// inner products need machine-wide sums -- both of which the paper's
// architecture specifically provides for (prefetching EDRAM controller,
// SCU global mode).  Every operation here executes functionally on the
// simulated node memories AND advances the machine clock via the CPU timing
// model / global-operation model.
#pragma once

#include <array>
#include <initializer_list>

#include "comms/comms.h"
#include "cpu/timing.h"
#include "lattice/field.h"
#include "machine/bsp.h"

namespace qcdoc::lattice {

/// Flop/byte traffic attributed to one storage precision.  The solvers
/// report per-precision deltas of these counters, which is how the timing
/// model's mixed-precision predictions stay honest: half-precision spinors
/// really do move ~2.25 bytes/word where double moves 8.
struct PrecisionTraffic {
  double flops = 0;
  double load_bytes = 0;
  double store_bytes = 0;
  double edram_bytes = 0;  ///< share of traffic served by on-chip EDRAM
  double ddr_bytes = 0;    ///< share stalling on external DDR

  double bytes() const { return load_bytes + store_bytes; }
  PrecisionTraffic& operator+=(const PrecisionTraffic& o);
  PrecisionTraffic operator-(const PrecisionTraffic& o) const;
};

using TrafficByPrecision = std::array<PrecisionTraffic, kNumPrecisions>;

TrafficByPrecision operator-(const TrafficByPrecision& a,
                             const TrafficByPrecision& b);
double total_bytes(const TrafficByPrecision& t);
double total_flops(const TrafficByPrecision& t);

class FieldOps {
 public:
  FieldOps(machine::BspRunner* bsp, const cpu::CpuModel* cpu,
           comms::Communicator* comm)
      : bsp_(bsp), cpu_(cpu), comm_(comm) {}

  /// y += a x
  void axpy(double a, const DistField& x, DistField& y);
  /// y = x + a y
  void xpay(const DistField& x, double a, DistField& y);
  /// y = a x + b y (fused multi-shift update; one stream pass).
  void axpby(double a, const DistField& x, double b, DistField& y);
  /// y = a x
  void scale_copy(double a, const DistField& x, DistField& y);
  void copy(const DistField& x, DistField& y);
  void zero(DistField& y);

  /// ||x||^2 over the whole machine (local reduction + SCU global sum).
  double norm2(const DistField& x);
  /// Re <x, y> over the whole machine.
  double dot_re(const DistField& x, const DistField& y);

  // Complex-scalar operations (fields are arrays of re/im pairs).  These
  // serve the non-Hermitian Krylov solvers (BiCGStab), which need complex
  // inner products -- two words through the SCU global-sum rings, pipelined.
  /// <x, y> = sum conj(x) y.
  Complex cdot(const DistField& x, const DistField& y);
  /// y += a x with complex a.
  void caxpy(const Complex& a, const DistField& x, DistField& y);
  /// y = x + a y with complex a.
  void cxpay(const DistField& x, const Complex& a, DistField& y);

  /// Total flops this FieldOps has accounted (for efficiency reports).
  double flops() const { return flops_; }
  void add_external_flops(double f) { flops_ += f; }
  void reset_flops() { flops_ = 0; }

  /// Running flop/byte ledger split by storage precision.  Vector ops feed
  /// it automatically; Dirac operators feed it via account_kernel.  Solvers
  /// snapshot it before/after a solve and report the delta.
  const TrafficByPrecision& traffic() const { return traffic_; }

  /// Credit one kernel's per-node profile, replicated over `ranks` nodes,
  /// to the given precision bucket (and to the total flop counter).
  void account_kernel(const cpu::KernelProfile& per_node, int ranks,
                      Precision p);

  machine::BspRunner& bsp() { return *bsp_; }
  const cpu::CpuModel& cpu() const { return *cpu_; }
  comms::Communicator& comm() { return *comm_; }

 private:
  /// Profile of a streaming vector op over the read operands plus an
  /// optional written field.  Byte widths follow each operand's storage
  /// precision (8/4/2.25 per double); the memory region is attributed to
  /// the first read operand (or the written field for write-only ops),
  /// matching the historical single-width accounting bit-for-bit when every
  /// operand is double.  Also feeds the per-precision traffic ledger and
  /// the total flop counter.
  cpu::KernelProfile stream_profile(std::initializer_list<const DistField*> reads,
                                    const DistField* write,
                                    double fmadd_per_double,
                                    double other_per_double);
  /// Round a just-written field down to its storage precision (models the
  /// narrow store path; no-op for double fields).
  void finish_write(DistField& y);
  double global_sum(double local_partial_flops_hint, std::vector<double> partials);

  machine::BspRunner* bsp_;
  const cpu::CpuModel* cpu_;
  comms::Communicator* comm_;
  double flops_ = 0;
  TrafficByPrecision traffic_{};
};

}  // namespace qcdoc::lattice
