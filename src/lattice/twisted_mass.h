// Twisted-mass Wilson operator: a thin twist layer over the Wilson hopping
// term, extending the action menu beyond the paper's four benchmarked
// discretizations (the twisted-mass formulation was the ~2004 route to
// O(a)-improved light quarks on Wilson-era machines like QCDOC).
//
//   M_tm psi = M_wilson psi + i mu~ gamma_5 psi,   mu~ = 2 kappa mu
//
// The twist term is site-diagonal: no extra communication, one extra
// streaming pass.  gamma_5-hermiticity becomes M(mu)^+ = g5 M(-mu) g5,
// i.e. the dagger just flips the sign of the twist.
#pragma once

#include "lattice/wilson.h"

namespace qcdoc::lattice {

struct TwistedMassParams {
  double kappa = 0.124;
  /// Bare twisted-mass parameter mu; the operator applies mu~ = 2 kappa mu.
  /// mu = 0 reduces to the plain Wilson operator bit-for-bit (the twist
  /// kernel is skipped entirely, so the timing matches too).
  double mu = 0.05;
  bool overlap_comm = false;
  Precision precision = Precision::kDouble;
};

class TwistedMassDirac : public DiracOperator {
 public:
  TwistedMassDirac(FieldOps* ops, const GlobalGeometry* geom,
                   GaugeField* gauge, TwistedMassParams params);

  const char* name() const override { return "twisted-mass"; }
  int site_doubles() const override { return kDoublesPerSpinor; }
  int halo_doubles() const override { return hopping_.halo_doubles(); }
  int halo_slabs() const override { return 1; }

  void apply(DistField& out, DistField& in) override;
  void apply_dag(DistField& out, DistField& in) override;
  double flops_per_apply() const override;

  /// The dimensionless twist actually applied: mu~ = 2 kappa mu.
  double mu_tilde() const { return 2.0 * params_.kappa * params_.mu; }

  /// Per-node cost profile of the twist pass (i mu~ g5 accumulate).
  cpu::KernelProfile twist_profile() const;

  const TwistedMassParams& params() const { return params_; }
  WilsonDirac& hopping() { return hopping_; }

 private:
  /// out += i * mt * gamma_5 in (site-diagonal; charges machine time).
  void add_twist(DistField& out, const DistField& in, double mt);

  TwistedMassParams params_;
  WilsonDirac hopping_;
};

}  // namespace qcdoc::lattice
