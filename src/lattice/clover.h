// Clover-improved Wilson operator (paper Section 4: 46.5% of peak -- the
// best of the three benchmarked discretizations, because the clover term
// adds dense, high-reuse arithmetic with no extra communication).
//
//   M psi(x) = A(x) psi(x) - kappa * Dslash psi(x)
//   A(x)     = 1 + c_sw * kappa * sum_{mu<nu} sigma_munu F_munu(x)
//
// F_munu is the clover-leaf average of the four plaquettes in the (mu,nu)
// plane.  In the DeGrand-Rossi (chiral) basis sigma_munu is block-diagonal
// in chirality, so A(x) is two Hermitian 6x6 blocks per site -- 72 packed
// doubles, the layout the hand-tuned assembly multiplies.  Construction of
// A from the gauge field is a once-per-configuration setup step (host
// orchestrated, global access); the *application* is the timed kernel.
#pragma once

#include "lattice/wilson.h"

namespace qcdoc::lattice {

struct CloverParams {
  double kappa = 0.124;
  double csw = 1.0;
  bool overlap_comm = false;
  bool single_precision = false;
};

class CloverDirac : public DiracOperator {
 public:
  CloverDirac(FieldOps* ops, const GlobalGeometry* geom, GaugeField* gauge,
              CloverParams params);

  const char* name() const override { return "clover"; }
  int site_doubles() const override { return kDoublesPerSpinor; }
  int halo_doubles() const override {
    return kDoublesPerHalfSpinor;
  }
  int halo_slabs() const override { return 1; }

  /// Build A(x) from the current gauge field (call after every gauge
  /// update; done automatically at construction).
  void compute_clover_term();

  void apply(DistField& out, DistField& in) override;
  void apply_dag(DistField& out, DistField& in) override;
  double flops_per_apply() const override;

  /// A(x) psi -- exposed for tests (Hermiticity, free-field identity).
  void apply_clover_term(DistField& out, const DistField& in);

  cpu::KernelProfile clover_profile() const;
  const CloverParams& params() const { return params_; }

  /// The 6x6 chiral block (chirality 0 or 1) of A at a site, unpacked.
  std::array<Complex, 36> clover_block(int rank, int site_idx,
                                       int chirality) const;

 private:
  /// Clover-leaf field strength F_munu (anti-hermitian traceless part).
  Su3Matrix field_strength(const Coord4& x, int mu, int nu) const;

  GaugeField* gauge_;
  CloverParams params_;
  WilsonDirac hopping_;   // the Dslash part (shared implementation)
  DistField clover_;      // packed A: 2 blocks x 36 doubles per site
};

}  // namespace qcdoc::lattice
