// BiCGStab solver for the non-Hermitian Dirac systems.
//
// The paper notes that "standard Krylov space solvers work well" for QCD;
// CG on the normal equations M^+M was QCDOC's benchmark loop, but the other
// production workhorse of the era was BiCGStab directly on M x = b -- one
// forward operator application per half-step (no M^+), at the cost of
// complex inner products (two-word SCU global sums, pipelined through the
// same rings).
#pragma once

#include "lattice/cg.h"

namespace qcdoc::lattice {

/// BiCGStab working fields in canonical allocation order.  Normally
/// allocated internally; the mixed-precision driver pre-allocates one set
/// (simulated node memory is never freed, so per-cycle allocation would
/// leak EDRAM and shift the timing model).
struct BicgWorkspace {
  DistField r, rhat, p, v, s, t;
  static BicgWorkspace make(DiracOperator& op);
  /// Tag every working field with a storage precision (sloppy inner runs).
  void set_precision(Precision prec);
};

/// Solve M x = b by BiCGStab; x must be zero-initialized.  Returns the
/// same accounting structure as cg_solve (residual on |b - Mx|/|b|).
CgResult bicgstab_solve(DiracOperator& op, DistField& x, DistField& b,
                        const CgParams& params);

/// As above with caller-provided working fields.
CgResult bicgstab_solve(DiracOperator& op, DistField& x, DistField& b,
                        const CgParams& params, BicgWorkspace& ws);

}  // namespace qcdoc::lattice
