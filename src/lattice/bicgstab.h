// BiCGStab solver for the non-Hermitian Dirac systems.
//
// The paper notes that "standard Krylov space solvers work well" for QCD;
// CG on the normal equations M^+M was QCDOC's benchmark loop, but the other
// production workhorse of the era was BiCGStab directly on M x = b -- one
// forward operator application per half-step (no M^+), at the cost of
// complex inner products (two-word SCU global sums, pipelined through the
// same rings).
#pragma once

#include "lattice/cg.h"

namespace qcdoc::lattice {

/// Solve M x = b by BiCGStab; x must be zero-initialized.  Returns the
/// same accounting structure as cg_solve (residual on |b - Mx|/|b|).
CgResult bicgstab_solve(DiracOperator& op, DistField& x, DistField& b,
                        const CgParams& params);

}  // namespace qcdoc::lattice
