#include "lattice/cg.h"

#include <cmath>

#include "common/log.h"

namespace qcdoc::lattice {

CgResult cg_solve(DiracOperator& op, DistField& x, DistField& b,
                  const CgParams& params) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();

  DistField tmp = op.make_field("cg.tmp");
  DistField r = op.make_field("cg.r");
  DistField p = op.make_field("cg.p");
  DistField ap = op.make_field("cg.ap");

  // Normal equations: solve M^+ M x = M^+ b.
  // r = M^+ b - M^+ M x;  with x = 0 this is r = M^+ b.
  op.apply_dag(r, b);
  op.apply(tmp, x);
  op.apply_dag(ap, tmp);
  ops.axpy(-1.0, ap, r);

  ops.copy(r, p);
  double rsq = ops.norm2(r);
  const double rhs_norm2 = rsq;  // reference scale: |M^+ b| for x0 = 0
  const double target =
      params.tolerance * params.tolerance * (rhs_norm2 > 0 ? rhs_norm2 : 1.0);

  CgResult result;
  const int iters = params.fixed_iterations > 0 ? params.fixed_iterations
                                                : params.max_iterations;
  for (int it = 0; it < iters; ++it) {
    // ap = M^+ M p   (two Dirac applications per iteration)
    op.apply(tmp, p);
    op.apply_dag(ap, tmp);

    const double p_ap = ops.dot_re(p, ap);
    if (p_ap == 0.0) break;
    const double alpha = rsq / p_ap;
    ops.axpy(alpha, p, x);
    ops.axpy(-alpha, ap, r);
    const double rsq_new = ops.norm2(r);
    result.iterations = it + 1;
    if (params.fixed_iterations == 0 && rsq_new < target) {
      result.converged = true;
      rsq = rsq_new;
      break;
    }
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    ops.xpay(r, beta, p);
  }
  result.relative_residual =
      rhs_norm2 > 0 ? std::sqrt(rsq / rhs_norm2) : std::sqrt(rsq);
  if (params.fixed_iterations > 0) {
    result.converged = result.relative_residual <= params.tolerance;
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  QCDOC_INFO << "cg[" << op.name() << "]: " << result.iterations
             << " iterations, |r|/|b| = " << result.relative_residual;
  return result;
}

}  // namespace qcdoc::lattice
