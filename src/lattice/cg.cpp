#include "lattice/cg.h"

#include <cmath>
#include <optional>

#include "common/log.h"

namespace qcdoc::lattice {

namespace {

// Shared CG engine.  `audit` == nullptr runs the plain solver; otherwise
// every audit->interval iterations (and before declaring convergence) the
// link checksums are audited, with rollback to the last clean checkpoint
// on a mismatch.
CgResult cg_run(DiracOperator& op, DistField& x, DistField& b,
                const CgParams& params, const CgAuditParams* audit) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  // Working fields: an externally supplied workspace (the resume path, which
  // must allocate before restoring memory contents) or internal allocations
  // in the exact same order.  The plain solver keeps its original layout
  // (no checkpoint field).
  std::optional<CgWorkspace> own_ws;
  CgWorkspace* ws = audit ? audit->workspace : nullptr;
  if (audit && ws == nullptr) {
    own_ws.emplace(CgWorkspace::make(op));
    ws = &*own_ws;
  }
  std::optional<DistField> plain_tmp, plain_r, plain_p, plain_ap;
  if (ws == nullptr) {
    plain_tmp.emplace(op.make_field("cg.tmp"));
    plain_r.emplace(op.make_field("cg.r"));
    plain_p.emplace(op.make_field("cg.p"));
    plain_ap.emplace(op.make_field("cg.ap"));
  }
  DistField& tmp = ws ? ws->tmp : *plain_tmp;
  DistField& r = ws ? ws->r : *plain_r;
  DistField& p = ws ? ws->p : *plain_p;
  DistField& ap = ws ? ws->ap : *plain_ap;
  DistField* xck = ws ? &ws->xck : nullptr;  // last known-clean checkpoint

  double rsq = 0;
  // r = M^+ b - M^+ M x (normal equations); with x = 0 this is r = M^+ b.
  const auto recompute_residual = [&] {
    op.apply_dag(r, b);
    op.apply(tmp, x);
    op.apply_dag(ap, tmp);
    ops.axpy(-1.0, ap, r);
    ops.copy(r, p);
    rsq = ops.norm2(r);
  };

  CgResult result;
  // One audit of the interval since the previous call: link checksums and
  // memory machine checks are independent detectors feeding the same
  // rollback.  Both are always polled (never short-circuited) so each
  // detector's baseline advances and a dirty interval is fully consumed.
  const auto interval_clean = [&]() -> bool {
    ++result.audits;
    bool ok = true;
    if (audit->clean && !audit->clean()) {
      ++result.audit_failures;
      ok = false;
    }
    if (audit->mem_clean && !audit->mem_clean()) {
      ++result.mem_checks;
      ok = false;
    }
    return ok;
  };
  double rhs_norm2 = 0;  // reference scale: |M^+ b| for x0 = 0
  const auto fire_checkpoint = [&] {
    if (!audit || !audit->on_checkpoint) return;
    CgCheckpoint ck;
    ck.iterations = result.iterations;
    ck.rsq = rsq;
    ck.rhs_norm2 = rhs_norm2;
    ck.restarts = result.restarts;
    ck.audits = result.audits;
    ck.audit_failures = result.audit_failures;
    ck.mem_checks = result.mem_checks;
    audit->on_checkpoint(ck);
  };
  if (audit && audit->resume) {
    // x and the workspace fields already hold the checkpoint's restored
    // contents (loop-top state); recomputing anything would diverge from
    // the uninterrupted run's event trace.
    const CgCheckpoint& ck = *audit->resume;
    result.iterations = ck.iterations;
    result.restarts = ck.restarts;
    result.audits = ck.audits;
    result.audit_failures = ck.audit_failures;
    result.mem_checks = ck.mem_checks;
    rsq = ck.rsq;
    rhs_norm2 = ck.rhs_norm2;
  } else {
    if (audit) ops.copy(x, *xck);
    recompute_residual();
    if (audit) {
      // Baseline audit: the initial residual itself crosses the mesh, and a
      // corruption here would poison the reference scale.
      while (!interval_clean() && result.restarts < audit->max_restarts) {
        ++result.restarts;
        ops.copy(*xck, x);
        recompute_residual();
      }
    }
    rhs_norm2 = rsq;
    fire_checkpoint();
  }
  const double target =
      params.tolerance * params.tolerance * (rhs_norm2 > 0 ? rhs_norm2 : 1.0);

  const int iters = params.fixed_iterations > 0 ? params.fixed_iterations
                                                : params.max_iterations;
  // With restarts, rolled-back iterations don't count as productive work;
  // the guard bounds total loop trips even if every interval is dirty.
  const int max_trips =
      audit ? iters * (audit->max_restarts + 1) + audit->max_restarts : iters;
  int since_audit = 0;
  bool gave_up = false;
  for (int trip = 0; trip < max_trips && result.iterations < iters; ++trip) {
    bool checkpointed = false;
    // ap = M^+ M p   (two Dirac applications per iteration)
    op.apply(tmp, p);
    op.apply_dag(ap, tmp);

    const double p_ap = ops.dot_re(p, ap);
    if (p_ap == 0.0) break;
    const double alpha = rsq / p_ap;
    ops.axpy(alpha, p, x);
    ops.axpy(-alpha, ap, r);
    const double rsq_new = ops.norm2(r);
    ++result.iterations;
    ++since_audit;

    const bool looks_converged =
        params.fixed_iterations == 0 && rsq_new < target;

    if (audit && (looks_converged || since_audit >= audit->interval ||
                  result.iterations == iters)) {
      if (!interval_clean()) {
        // Corruption somewhere in this interval -- bad link traffic or an
        // uncorrectable memory word: every iterate since the checkpoint is
        // suspect.  Roll back and recompute the true residual; the
        // checkpoint copy rewrites any poisoned words with known-good
        // data, and the recomputation is itself audited.
        bool recovered = false;
        while (result.restarts < audit->max_restarts) {
          ++result.restarts;
          result.iterations -= since_audit;  // the interval was wasted
          ops.copy(*xck, x);
          recompute_residual();
          since_audit = 0;
          if (interval_clean()) {
            recovered = true;
            break;
          }
        }
        if (!recovered) {
          gave_up = true;
          rsq = rsq_new;
          break;
        }
        continue;  // p == r after recompute; restart the Krylov space
      }
      ops.copy(x, *xck);
      since_audit = 0;
      checkpointed = true;
    }

    if (looks_converged) {
      // Without auditing this is immediate; with auditing we only reach
      // here after the interval just passed a clean audit.
      result.converged = true;
      rsq = rsq_new;
      break;
    }
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    ops.xpay(r, beta, p);
    // Loop-top state is complete (p updated): a clean checkpoint taken this
    // trip is now resumable, so let the snapshot layer persist it.
    if (checkpointed) fire_checkpoint();
  }
  result.relative_residual =
      rhs_norm2 > 0 ? std::sqrt(rsq / rhs_norm2) : std::sqrt(rsq);
  if (params.fixed_iterations > 0 && !gave_up) {
    result.converged = result.relative_residual <= params.tolerance;
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "cg[" << op.name() << "]: " << result.iterations
             << " iterations, |r|/|b| = " << result.relative_residual
             << (audit ? (", " + std::to_string(result.restarts) + " restarts")
                       : std::string());
  return result;
}

}  // namespace

CgWorkspace CgWorkspace::make(DiracOperator& op) {
  // Allocation order is load-bearing: it must match what cg_run would
  // allocate internally, so a resuming process reproduces the snapshotted
  // memory layout exactly.
  return CgWorkspace{op.make_field("cg.tmp"), op.make_field("cg.r"),
                     op.make_field("cg.p"), op.make_field("cg.ap"),
                     op.make_field("cg.xck")};
}

CgResult cg_solve(DiracOperator& op, DistField& x, DistField& b,
                  const CgParams& params) {
  return cg_run(op, x, b, params, nullptr);
}

CgResult cg_solve_audited(DiracOperator& op, DistField& x, DistField& b,
                          const CgParams& params,
                          const CgAuditParams& audit) {
  if (!audit.clean && !audit.mem_clean && !audit.on_checkpoint &&
      audit.workspace == nullptr && audit.resume == nullptr) {
    return cg_run(op, x, b, params, nullptr);
  }
  return cg_run(op, x, b, params, &audit);
}

}  // namespace qcdoc::lattice
