#include "lattice/clover.h"

#include <cassert>

namespace qcdoc::lattice {
namespace {

constexpr int kBlockDoubles = 36;  // 6 real diag + 15 complex off-diag

/// Pack a Hermitian 6x6 (given as full complex array) into 36 doubles.
void pack_block(double* dst, const std::array<Complex, 36>& b) {
  int k = 0;
  for (int i = 0; i < 6; ++i) dst[k++] = b[static_cast<std::size_t>(7 * i)].real();
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const Complex& z = b[static_cast<std::size_t>(6 * i + j)];
      dst[k++] = z.real();
      dst[k++] = z.imag();
    }
  }
  assert(k == kBlockDoubles);
}

std::array<Complex, 36> unpack_block(const double* src) {
  std::array<Complex, 36> b{};
  int k = 0;
  for (int i = 0; i < 6; ++i) b[static_cast<std::size_t>(7 * i)] = src[k++];
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const Complex z(src[k], src[k + 1]);
      k += 2;
      b[static_cast<std::size_t>(6 * i + j)] = z;
      b[static_cast<std::size_t>(6 * j + i)] = std::conj(z);
    }
  }
  return b;
}

}  // namespace

CloverDirac::CloverDirac(FieldOps* ops, const GlobalGeometry* geom,
                         GaugeField* gauge, CloverParams params)
    : DiracOperator(ops, geom),
      gauge_(gauge),
      params_(params),
      hopping_(ops, geom, gauge,
               WilsonParams{params.kappa, params.overlap_comm,
                            params.single_precision}),
      clover_(&ops->comm(), geom, 2 * kBlockDoubles, "clover") {
  compute_clover_term();
}

Su3Matrix CloverDirac::field_strength(const Coord4& x, int mu, int nu) const {
  const auto m = static_cast<std::size_t>(mu);
  const auto n = static_cast<std::size_t>(nu);
  auto shift = [](Coord4 c, int d, int by) {
    c[static_cast<std::size_t>(d)] += by;
    return c;
  };
  const Coord4 xpm = shift(x, mu, 1), xpn = shift(x, nu, 1);
  const Coord4 xmm = shift(x, mu, -1), xmn = shift(x, nu, -1);
  const Coord4 xmm_pn = shift(xmm, nu, 1), xmm_mn = shift(xmm, nu, -1);
  const Coord4 xpm_mn = shift(xpm, nu, -1);
  (void)m;
  (void)n;

  const auto& g = *gauge_;
  // Four clover leaves around x in the (mu, nu) plane.
  const Su3Matrix p1 = g.link_at(x, mu) * g.link_at(xpm, nu) *
                       g.link_at(xpn, mu).adjoint() * g.link_at(x, nu).adjoint();
  const Su3Matrix p2 = g.link_at(x, nu) * g.link_at(xmm_pn, mu).adjoint() *
                       g.link_at(xmm, nu).adjoint() * g.link_at(xmm, mu);
  const Su3Matrix p3 = g.link_at(xmm, mu).adjoint() *
                       g.link_at(xmm_mn, nu).adjoint() * g.link_at(xmm_mn, mu) *
                       g.link_at(xmn, nu);
  const Su3Matrix p4 = g.link_at(xmn, nu).adjoint() * g.link_at(xmn, mu) *
                       g.link_at(xpm_mn, nu) * g.link_at(x, mu).adjoint();

  Su3Matrix q = p1 + p2 + p3 + p4;
  // F = -(i/8) (Q - Q^+): Hermitian; remove the trace part.
  Su3Matrix f = q - q.adjoint();
  f *= Complex(0.0, -0.125);
  const Complex tr = f.trace() * Complex(1.0 / 3.0, 0.0);
  for (int i = 0; i < 3; ++i) f.at(i, i) -= tr;
  return f;
}

void CloverDirac::compute_clover_term() {
  const double c = params_.csw * params_.kappa;
  const auto& local = geom_->local();
  // Precompute the chiral 2x2 sub-blocks of sigma_munu once.
  std::array<std::array<std::array<Complex, 4>, 2>, 6> sig{};  // [pair][ch][2x2]
  int pair = 0;
  std::array<std::pair<int, int>, 6> pairs{};
  for (int mu = 0; mu < kNd; ++mu) {
    for (int nu = mu + 1; nu < kNd; ++nu, ++pair) {
      pairs[static_cast<std::size_t>(pair)] = {mu, nu};
      const SpinMatrix s = sigma(mu, nu);
      for (int ch = 0; ch < 2; ++ch) {
        for (int a = 0; a < 2; ++a)
          for (int b = 0; b < 2; ++b)
            sig[static_cast<std::size_t>(pair)][static_cast<std::size_t>(ch)]
               [static_cast<std::size_t>(2 * a + b)] =
                   s.at(2 * ch + a, 2 * ch + b);
      }
    }
  }

  for (int r = 0; r < clover_.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Coord4 x = geom_->global_coords(r, s);
      // Field strengths for the six planes.
      std::array<Su3Matrix, 6> f;
      for (int p = 0; p < 6; ++p) {
        f[static_cast<std::size_t>(p)] =
            field_strength(x, pairs[static_cast<std::size_t>(p)].first,
                           pairs[static_cast<std::size_t>(p)].second);
      }
      for (int ch = 0; ch < 2; ++ch) {
        std::array<Complex, 36> block{};
        for (int i = 0; i < 6; ++i) block[static_cast<std::size_t>(7 * i)] = 1.0;
        for (int p = 0; p < 6; ++p) {
          const auto& sb =
              sig[static_cast<std::size_t>(p)][static_cast<std::size_t>(ch)];
          const auto& fp = f[static_cast<std::size_t>(p)];
          for (int sa = 0; sa < 2; ++sa) {
            for (int sb2 = 0; sb2 < 2; ++sb2) {
              const Complex sv = sb[static_cast<std::size_t>(2 * sa + sb2)];
              if (sv == Complex(0.0)) continue;
              for (int ca = 0; ca < 3; ++ca) {
                for (int cb = 0; cb < 3; ++cb) {
                  block[static_cast<std::size_t>(6 * (3 * sa + ca) +
                                                 (3 * sb2 + cb))] +=
                      c * sv * fp.at(ca, cb);
                }
              }
            }
          }
        }
        pack_block(clover_.site(r, s) + ch * kBlockDoubles, block);
      }
    }
  }
}

std::array<Complex, 36> CloverDirac::clover_block(int rank, int site_idx,
                                                  int chirality) const {
  return unpack_block(clover_.site(rank, site_idx) +
                      chirality * kBlockDoubles);
}

void CloverDirac::apply_clover_term(DistField& out, const DistField& in) {
  const auto& local = geom_->local();
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Spinor psi = load_spinor(in.site(r, s));
      Spinor res;
      for (int ch = 0; ch < 2; ++ch) {
        const auto block = clover_block(r, s, ch);
        for (int a = 0; a < 6; ++a) {
          Complex acc = 0;
          for (int b = 0; b < 6; ++b) {
            acc += block[static_cast<std::size_t>(6 * a + b)] *
                   psi[2 * ch + b / 3][b % 3];
          }
          res[2 * ch + a / 3][a % 3] = acc;
        }
      }
      store_spinor(out.site(r, s), res);
    }
  }
}

cpu::KernelProfile CloverDirac::clover_profile() const {
  const double v = geom_->local().volume();
  const double bf = params_.single_precision ? 0.5 : 1.0;
  cpu::KernelProfile p;
  p.name = "clover.term";
  // Two Hermitian 6x6 complex matvecs per site: the assembly streams the
  // packed 72 doubles and issues ~432 fmadd-flops + 96 isolated per site,
  // fused with the -kappa*Dslash accumulation (2 flops/double on 24).
  p.fmadd_flops = v * (432 + 48);
  p.other_flops = v * 96;
  p.load_bytes = v * (2 * kBlockDoubles + 24 + 24) * 8 * bf;
  p.store_bytes = v * 24 * 8 * bf;
  const double traffic = p.load_bytes + p.store_bytes;
  if (clover_.body_region() == memsys::Region::kDdr) {
    p.ddr_bytes = traffic;
  } else {
    p.edram_bytes = traffic;
  }
  p.streams = 3;
  p.overhead_cycles = v * 6;
  // Dense 6x6 Hermitian blocks give the assembly long independent fmadd
  // chains: the FPU pipe stays fuller than in the hopping kernel.
  p.issue_efficiency = 0.80;
  return p;
}

void CloverDirac::apply(DistField& out, DistField& in) {
  // out = A in - kappa * Dslash in, with the clover multiply fused into the
  // final accumulation pass.
  hopping_.dslash(out, in);
  const auto& local = geom_->local();
  const double kappa = params_.kappa;
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Spinor psi = load_spinor(in.site(r, s));
      const Spinor d = load_spinor(out.site(r, s));
      Spinor res;
      for (int ch = 0; ch < 2; ++ch) {
        const auto block = clover_block(r, s, ch);
        for (int a = 0; a < 6; ++a) {
          Complex acc = 0;
          for (int b = 0; b < 6; ++b) {
            acc += block[static_cast<std::size_t>(6 * a + b)] *
                   psi[2 * ch + b / 3][b % 3];
          }
          res[2 * ch + a / 3][a % 3] = acc - kappa * d[2 * ch + a / 3][a % 3];
        }
      }
      store_spinor(out.site(r, s), res);
    }
  }
  const auto p = clover_profile();
  ops_->account_kernel(p, geom_->ranks(),
                       params_.single_precision ? Precision::kSingle
                                                : Precision::kDouble);
  ops_->bsp().compute(ops_->cpu().kernel_cycles(p));
}

void CloverDirac::apply_dag(DistField& out, DistField& in) {
  // gamma_5 hermiticity holds because A is chirality-block-diagonal and
  // Hermitian: M^+ = g5 M g5.
  WilsonDirac::apply_gamma5(in);
  apply(out, in);
  WilsonDirac::apply_gamma5(in);
  WilsonDirac::apply_gamma5(out);
}

double CloverDirac::flops_per_apply() const {
  return hopping_.pack_profile().flops() + hopping_.site_profile().flops() +
         clover_profile().flops();
}

}  // namespace qcdoc::lattice
