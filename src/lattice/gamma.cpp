#include "lattice/gamma.h"

#include <cassert>

namespace qcdoc::lattice {

Spinor& Spinor::operator+=(const Spinor& o) {
  for (int i = 0; i < kSpins; ++i) (*this)[i] += o[i];
  return *this;
}

Spinor& Spinor::operator-=(const Spinor& o) {
  for (int i = 0; i < kSpins; ++i) (*this)[i] -= o[i];
  return *this;
}

Spinor& Spinor::operator*=(const Complex& z) {
  for (int i = 0; i < kSpins; ++i) (*this)[i] *= z;
  return *this;
}

Complex dot(const Spinor& a, const Spinor& b) {
  Complex s = 0;
  for (int i = 0; i < kSpins; ++i) s += dot(a[i], b[i]);
  return s;
}

double norm2(const Spinor& a) { return dot(a, a).real(); }

Spinor operator*(const SpinMatrix& g, const Spinor& psi) {
  Spinor r;
  for (int i = 0; i < kSpins; ++i) {
    for (int j = 0; j < kSpins; ++j) {
      const Complex& z = g.at(i, j);
      if (z == Complex(0.0)) continue;
      for (int c = 0; c < 3; ++c) r[i][c] += z * psi[j][c];
    }
  }
  return r;
}

SpinMatrix operator*(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix r;
  for (int i = 0; i < kSpins; ++i)
    for (int j = 0; j < kSpins; ++j) {
      Complex s = 0;
      for (int k = 0; k < kSpins; ++k) s += a.at(i, k) * b.at(k, j);
      r.at(i, j) = s;
    }
  return r;
}

SpinMatrix operator+(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix r;
  for (std::size_t k = 0; k < 16; ++k) r.m[k] = a.m[k] + b.m[k];
  return r;
}

SpinMatrix operator-(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix r;
  for (std::size_t k = 0; k < 16; ++k) r.m[k] = a.m[k] - b.m[k];
  return r;
}

namespace {

constexpr Complex I{0.0, 1.0};

SpinMatrix make_gamma(int mu) {
  SpinMatrix g;
  switch (mu) {
    case 0:  // gamma_x
      g.at(0, 3) = I;
      g.at(1, 2) = I;
      g.at(2, 1) = -I;
      g.at(3, 0) = -I;
      break;
    case 1:  // gamma_y
      g.at(0, 3) = -1.0;
      g.at(1, 2) = 1.0;
      g.at(2, 1) = 1.0;
      g.at(3, 0) = -1.0;
      break;
    case 2:  // gamma_z
      g.at(0, 2) = I;
      g.at(1, 3) = -I;
      g.at(2, 0) = -I;
      g.at(3, 1) = I;
      break;
    case 3:  // gamma_t
      g.at(0, 2) = 1.0;
      g.at(1, 3) = 1.0;
      g.at(2, 0) = 1.0;
      g.at(3, 1) = 1.0;
      break;
    default:
      assert(false);
  }
  return g;
}

SpinMatrix make_gamma5() {
  SpinMatrix g;
  g.at(0, 0) = 1.0;
  g.at(1, 1) = 1.0;
  g.at(2, 2) = -1.0;
  g.at(3, 3) = -1.0;
  return g;
}

}  // namespace

const SpinMatrix& gamma(int mu) {
  static const SpinMatrix g[4] = {make_gamma(0), make_gamma(1), make_gamma(2),
                                  make_gamma(3)};
  assert(mu >= 0 && mu < 4);
  return g[mu];
}

const SpinMatrix& gamma5() {
  static const SpinMatrix g5 = make_gamma5();
  return g5;
}

SpinMatrix sigma(int mu, int nu) {
  const SpinMatrix gm_gn = gamma(mu) * gamma(nu);
  const SpinMatrix gn_gm = gamma(nu) * gamma(mu);
  SpinMatrix r;
  const Complex half_i{0.0, 0.5};
  for (std::size_t k = 0; k < 16; ++k) r.m[k] = half_i * (gm_gn.m[k] - gn_gm.m[k]);
  return r;
}

// Hardcoded projection tables for (1 - sign*gamma_mu), DeGrand-Rossi basis.
//
//   h0 = psi_0 + c0 * psi_{j0},   h1 = psi_1 + c1 * psi_{j1}
//   psi_2 = r2 * h_{k2},          psi_3 = r3 * h_{k3}
//
// Derived directly from the matrices above; tests check project/reconstruct
// against the generic (1 -+ gamma) application.
namespace {

struct ProjEntry {
  int j0;
  Complex c0;
  int j1;
  Complex c1;
  int k2;
  Complex r2;
  int k3;
  Complex r3;
};

// Index [mu][s] with s = 0 for sign=+1 in (1 - gamma), s = 1 for (1 + gamma).
const ProjEntry kProj[4][2] = {
    // mu = 0
    {{3, -I, 2, -I, 1, I, 0, I},     // 1 - gamma_0
     {3, I, 2, I, 1, -I, 0, -I}},    // 1 + gamma_0
    // mu = 1
    {{3, 1.0, 2, -1.0, 1, -1.0, 0, 1.0},   // 1 - gamma_1
     {3, -1.0, 2, 1.0, 1, 1.0, 0, -1.0}},  // 1 + gamma_1
    // mu = 2
    {{2, -I, 3, I, 0, I, 1, -I},    // 1 - gamma_2
     {2, I, 3, -I, 0, -I, 1, I}},   // 1 + gamma_2
    // mu = 3
    {{2, -1.0, 3, -1.0, 0, -1.0, 1, -1.0},  // 1 - gamma_3
     {2, 1.0, 3, 1.0, 0, 1.0, 1, 1.0}},     // 1 + gamma_3
};

const ProjEntry& entry(int mu, int sign) {
  assert(mu >= 0 && mu < 4 && (sign == 1 || sign == -1));
  return kProj[mu][sign > 0 ? 0 : 1];
}

}  // namespace

HalfSpinor project(int mu, int sign, const Spinor& psi) {
  const ProjEntry& e = entry(mu, sign);
  HalfSpinor h;
  for (int c = 0; c < 3; ++c) {
    h[0][c] = psi[0][c] + e.c0 * psi[e.j0][c];
    h[1][c] = psi[1][c] + e.c1 * psi[e.j1][c];
  }
  return h;
}

Spinor reconstruct(int mu, int sign, const HalfSpinor& h) {
  const ProjEntry& e = entry(mu, sign);
  Spinor psi;
  for (int c = 0; c < 3; ++c) {
    psi[0][c] = h[0][c];
    psi[1][c] = h[1][c];
    psi[2][c] = e.r2 * h[e.k2][c];
    psi[3][c] = e.r3 * h[e.k3][c];
  }
  return psi;
}

}  // namespace qcdoc::lattice
