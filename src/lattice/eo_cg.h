// Even-odd preconditioned conjugate gradient for staggered fermions.
//
// The staggered hopping term D couples only opposite parities, so
// M = m + D block-decomposes and the Schur complement on even sites,
//
//   A x_e = rhs_e,   A = m^2 - D_eo D_oe,   rhs_e = m b_e - (D b)_e,
//
// is Hermitian positive definite: plain CG applies, each iteration costs
// two half-volume Dslash applications (one full-volume equivalent) instead
// of the two full applications of the normal-equation solver -- the
// classic factor-of-two that every staggered production code of the QCDOC
// era exploited.  The odd solution is reconstructed as
// x_o = (b_o - (D x)_o) / m.
#pragma once

#include "lattice/cg.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"

namespace qcdoc::lattice {

/// Solve M x = b for the ASQTAD operator by even-odd preconditioned CG.
/// `x` must be zero-initialized.  Residuals are reported on the full
/// (unpreconditioned) system.
CgResult asqtad_eo_solve(AsqtadDirac& op, DistField& x, DistField& b,
                         const CgParams& params);

/// Even-odd preconditioned Wilson solve: the Schur complement
///   Mhat = 1 - kappa^2 D_eo D_oe
/// on even sites is better conditioned than M, and gamma5-hermitian, so CG
/// runs on Mhat^+ Mhat with x_o = b_o + kappa (D x_e)_o reconstructed at
/// the end.  (The clover variant needs A_ee^-1 and is not modelled.)
CgResult wilson_eo_solve(WilsonDirac& op, DistField& x, DistField& b,
                         const CgParams& params);

}  // namespace qcdoc::lattice
