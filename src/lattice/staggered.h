// ASQTAD-improved staggered (Kogut-Susskind) fermions (paper Section 4:
// 38% of peak -- the lowest of the three, because the one-component field
// gives the worst flop-to-communication ratio and the Naik term needs
// third-nearest-neighbour halos).
//
//   M chi(x) = m chi(x) + D chi(x)
//   D chi(x) = sum_mu eta_mu(x) [  V_mu(x) chi(x+mu)   - V^+_mu(x-mu)  chi(x-mu)
//                                + W_mu(x) chi(x+3mu)  - W^+_mu(x-3mu) chi(x-3mu) ]
//
// V are the smeared "fat" links and W the three-link "long" (Naik) links.
// We build V from the single link plus the six three-link staples and W as
// the straight three-link product with the Naik coefficient folded in; the
// full ASQTAD smearing adds five- and seven-link paths with tuned
// coefficients, which changes the *setup* only -- the applied kernel (16
// SU(3) matvecs over two link fields, depth-3 halos) is identical, and that
// is what the paper benchmarks.  See DESIGN.md for this substitution.
//
// D is anti-Hermitian, so M^+ = m - D needs no extra machinery.
#pragma once

#include "lattice/dirac.h"

namespace qcdoc::lattice {

struct AsqtadParams {
  double mass = 0.05;
  double fat_c1 = 5.0 / 8.0;   ///< single-link weight
  double fat_c3 = 1.0 / 16.0;  ///< per-staple weight (6 staples)
  double naik = -1.0 / 24.0;   ///< long-link coefficient (folded into W)
  bool overlap_comm = false;
};

class AsqtadDirac : public DiracOperator {
 public:
  AsqtadDirac(FieldOps* ops, const GlobalGeometry* geom, GaugeField* gauge,
              AsqtadParams params);

  const char* name() const override { return "asqtad"; }
  int site_doubles() const override { return kDoublesPerColorVector; }
  int halo_doubles() const override { return kDoublesPerColorVector; }
  /// Forward halo: plain field, layers 0..2 (fat uses 0, Naik all three).
  int halo_slabs() const override { return 3; }
  /// Backward halo: W^+ chi at layers 0..2 plus V^+ chi at layer 0.
  int halo_slabs_minus() const override { return 4; }

  /// Rebuild the fat and long links from the gauge field (setup step).
  void compute_smeared_links();

  void apply(DistField& out, DistField& in) override;
  void apply_dag(DistField& out, DistField& in) override;
  double flops_per_apply() const override;

  /// out = D in (anti-Hermitian hopping only; exposed for tests).
  void dslash(DistField& out, DistField& in);

  /// out = D in evaluated only on sites of `parity` (staggered D couples
  /// opposite parities, so this reads only 1-parity sites of `in`).  The
  /// untouched parity of `out` is left as-is.  This is the kernel of the
  /// even-odd preconditioned solver (lattice/eo_cg.h): half the compute per
  /// application.
  void dslash_parity(DistField& out, DistField& in, int parity);

  cpu::KernelProfile pack_profile() const;
  cpu::KernelProfile site_profile() const {
    return site_profile(fat_.body_region());
  }
  cpu::KernelProfile site_profile(memsys::Region fermion_region) const;

  Su3Matrix fat_link(int rank, int site_idx, int mu) const;
  Su3Matrix long_link(int rank, int site_idx, int mu) const;
  const AsqtadParams& params() const { return params_; }

 private:
  void pack_faces(const DistField& in);
  /// parity = -1 computes every site; 0/1 restricts to that parity.
  void compute_sites(DistField& out, const DistField& in, int parity = -1);
  void apply_mass(DistField& out, DistField& in, double sign);
  void exchange_and_compute(DistField& out, DistField& in, int parity);

  GaugeField* gauge_;
  AsqtadParams params_;
  DistField fat_;   // V_mu: 4 x 18 doubles per site
  DistField long_;  // W_mu: 4 x 18 doubles per site
  HaloSet halos_;
};

}  // namespace qcdoc::lattice
