// The SU(3) gauge field and quenched configuration machinery.
//
// Links U_mu(x) are stored per node (4 links x 18 doubles per site) in the
// node's simulated memory.  Configuration generation and measurement --
// random/hot starts, the Cabibbo-Marinari heatbath the paper's "evolution
// through the phase space of the Feynman path integral" refers to, and the
// plaquette -- are host-orchestrated setup/measurement steps and use global
// access across ranks; the *timed* kernels (Dirac operators, CG) touch only
// local data plus halos.
#pragma once

#include "lattice/field.h"

namespace qcdoc::lattice {

class GaugeField {
 public:
  GaugeField(comms::Communicator* comm, const GlobalGeometry* geom);

  const GlobalGeometry& geometry() const { return *geom_; }
  DistField& field() { return field_; }
  const DistField& field() const { return field_; }

  Su3Matrix link(int rank, int site_idx, int mu) const;
  void set_link(int rank, int site_idx, int mu, const Su3Matrix& u);
  /// Link at a global coordinate (periodic); global-access helper.
  Su3Matrix link_at(const Coord4& global, int mu) const;
  void set_link_at(const Coord4& global, int mu, const Su3Matrix& u);

  /// Free field: every link the identity (plaquette exactly 1).
  void set_unit();
  /// Hot start: independent Haar-random links.
  void randomize(Rng& rng);
  /// Weak field: links within `epsilon` of the identity.
  void randomize_near_unit(Rng& rng, double epsilon);

  /// Average plaquette: Re Tr P / 3, averaged over all sites and the six
  /// planes.  1 for a free field, ~0 for a disordered one.
  double average_plaquette() const;

  /// Sum of the six staples around U_mu(x) (the heatbath's environment).
  Su3Matrix staple(const Coord4& global, int mu) const;

  /// One Cabibbo-Marinari pseudo-heatbath sweep over all links at coupling
  /// beta, using Kennedy-Pendleton SU(2) subgroup sampling.  Deterministic
  /// given the generator state: re-running an evolution reproduces the
  /// configuration bit for bit (the paper's Section 4 verification).
  void heatbath_sweep(double beta, Rng& rng);

  /// Largest unitarity violation over all links (consistency check).
  double max_unitarity_violation() const;

 private:
  comms::Communicator* comm_;
  const GlobalGeometry* geom_;
  DistField field_;
};

}  // namespace qcdoc::lattice
