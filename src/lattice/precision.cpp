#include "lattice/precision.h"

#include <cassert>
#include <cmath>

namespace qcdoc::lattice {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kSingle:
      return "single";
    case Precision::kHalf:
      return "half";
    case Precision::kDouble:
    default:
      return "double";
  }
}

std::int32_t block_float_encode(std::span<const double> block,
                                std::span<std::int16_t> mant) {
  assert(block.size() == mant.size());
  double amax = 0;
  for (const double v : block) amax = std::max(amax, std::abs(v));
  if (amax == 0.0) {
    for (auto& m : mant) m = 0;
    return 0;
  }
  int e = 0;
  (void)std::frexp(amax, &e);  // amax = f * 2^e, f in [0.5, 1)
  for (std::size_t i = 0; i < block.size(); ++i) {
    // ldexp keeps the scaling exact even for denormal-adjacent exponents.
    long long m = std::llround(std::ldexp(block[i], 15 - e));
    if (m > 32767) m = 32767;    // overflow clamp: |f| ~ 1 rounds to 32768
    if (m < -32767) m = -32767;  // keep the code symmetric
    mant[i] = static_cast<std::int16_t>(m);
  }
  return e;
}

void block_float_decode(std::int32_t exponent,
                        std::span<const std::int16_t> mant,
                        std::span<double> out) {
  assert(mant.size() == out.size());
  for (std::size_t i = 0; i < mant.size(); ++i) {
    out[i] = std::ldexp(static_cast<double>(mant[i]), exponent - 15);
  }
}

void block_float_quantize(std::span<double> block) {
  // One shared exponent for the whole span; callers pass one site block.
  std::int16_t mant_buf[256];
  assert(block.size() <= 256);
  std::span<std::int16_t> mant(mant_buf, block.size());
  const std::int32_t e = block_float_encode(block, mant);
  block_float_decode(e, mant, block);
}

void quantize_in_place(std::span<double> data, Precision p, int block_words) {
  switch (p) {
    case Precision::kDouble:
      return;
    case Precision::kSingle:
      for (double& v : data) v = static_cast<double>(static_cast<float>(v));
      return;
    case Precision::kHalf: {
      assert(block_words > 0);
      const auto bw = static_cast<std::size_t>(block_words);
      for (std::size_t off = 0; off < data.size(); off += bw) {
        block_float_quantize(
            data.subspan(off, std::min(bw, data.size() - off)));
      }
      return;
    }
  }
}

}  // namespace qcdoc::lattice
