// SU(2)-subgroup machinery shared by the heatbath and overrelaxation
// updates (internal header).
//
// A 2x2 complex block w is represented as a quaternion w = a0 + i a.sigma;
// the Cabibbo-Marinari updates extract the quaternion of (U*staple) in each
// of the three SU(2) subgroups, act on it, and embed the result back into
// SU(3).
#pragma once

#include <cmath>

#include "lattice/su3.h"

namespace qcdoc::lattice::su2 {

inline constexpr int kSubgroups[3][2] = {{0, 1}, {0, 2}, {1, 2}};

struct Quat {
  double a0, a1, a2, a3;
  double norm() const {
    return std::sqrt(a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3);
  }
};

inline Quat extract(const Su3Matrix& w, int i, int j) {
  return Quat{
      0.5 * (w.at(i, i).real() + w.at(j, j).real()),
      0.5 * (w.at(i, j).imag() + w.at(j, i).imag()),
      0.5 * (w.at(i, j).real() - w.at(j, i).real()),
      0.5 * (w.at(i, i).imag() - w.at(j, j).imag()),
  };
}

/// Embed the SU(2) element (a0 + i a.sigma) into rows/cols (i, j) of an
/// identity 3x3 matrix.
inline Su3Matrix embed(const Quat& q, int i, int j) {
  Su3Matrix m = Su3Matrix::identity();
  m.at(i, i) = Complex(q.a0, q.a3);
  m.at(i, j) = Complex(q.a2, q.a1);
  m.at(j, i) = Complex(-q.a2, q.a1);
  m.at(j, j) = Complex(q.a0, -q.a3);
  return m;
}

inline Quat mul(const Quat& q, const Quat& p) {
  return Quat{
      q.a0 * p.a0 - q.a1 * p.a1 - q.a2 * p.a2 - q.a3 * p.a3,
      q.a0 * p.a1 + q.a1 * p.a0 - q.a2 * p.a3 + q.a3 * p.a2,
      q.a0 * p.a2 + q.a2 * p.a0 - q.a3 * p.a1 + q.a1 * p.a3,
      q.a0 * p.a3 + q.a3 * p.a0 - q.a1 * p.a2 + q.a2 * p.a1,
  };
}

inline Quat conj(const Quat& q) { return Quat{q.a0, -q.a1, -q.a2, -q.a3}; }

inline Quat normalized(const Quat& q) {
  const double k = q.norm();
  return Quat{q.a0 / k, q.a1 / k, q.a2 / k, q.a3 / k};
}

}  // namespace qcdoc::lattice::su2
