#include "lattice/multishift.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "common/log.h"

namespace qcdoc::lattice {

namespace {

/// Per-shift recurrence state (Jegerlehner zeta coefficients) plus the
/// shared step scalars -- everything a rollback must restore that cannot be
/// recomputed from the iterates.
struct ShiftScalars {
  double rsq = 0;
  double alpha_prev = 1.0;  // a_{k-1}; a_{-1} = 1 by convention
  double beta_prev = 0.0;   // b_{k-1}; b_{-1} = 0
  std::vector<double> zeta;       // zeta_k per shift
  std::vector<double> zeta_prev;  // zeta_{k-1} per shift
  std::vector<double> res2;       // |r_i|^2 = zeta_i^2 |r|^2, last update
  std::vector<char> frozen;       // shift reached tolerance; stop updating
};

MultishiftResult ms_run(DiracOperator& op, std::vector<DistField>& x,
                        DistField& b, const MultishiftParams& params,
                        const MultishiftAuditParams* audit) {
  const std::size_t ns = params.shifts.size();
  assert(ns >= 1 && x.size() == ns);
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  const double sigma0 = params.shifts[0];

  // Working set: base vectors plus one direction per extra shift.
  DistField tmp = op.make_field("ms.tmp");
  DistField r = op.make_field("ms.r");
  DistField p = op.make_field("ms.p");
  DistField ap = op.make_field("ms.ap");
  std::vector<DistField> ps;
  ps.reserve(ns - 1);
  for (std::size_t i = 1; i < ns; ++i) {
    ps.push_back(op.make_field("ms.p" + std::to_string(i)));
  }

  // Shadow copies for the audited variant: the zeta recurrence cannot be
  // re-derived from the iterates, so a clean checkpoint snapshots the full
  // working set and a dirty audit restores it exactly.
  std::optional<std::vector<DistField>> shadow;
  if (audit) {
    std::vector<DistField> sh;
    sh.push_back(op.make_field("ms.rck"));
    sh.push_back(op.make_field("ms.pck"));
    for (std::size_t i = 1; i < ns; ++i) {
      sh.push_back(op.make_field("ms.pck" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < ns; ++i) {
      sh.push_back(op.make_field("ms.xck" + std::to_string(i)));
    }
    shadow.emplace(std::move(sh));
  }

  ShiftScalars sc;
  sc.zeta.assign(ns, 1.0);
  sc.zeta_prev.assign(ns, 1.0);
  sc.res2.assign(ns, 0.0);
  sc.frozen.assign(ns, 0);
  ShiftScalars sck;  // scalar state at the shadow checkpoint

  MultishiftResult result;
  const auto interval_clean = [&]() -> bool {
    ++result.audits;
    bool ok = true;
    if (audit->clean && !audit->clean()) {
      ++result.audit_failures;
      ok = false;
    }
    if (audit->mem_clean && !audit->mem_clean()) {
      ++result.mem_checks;
      ok = false;
    }
    return ok;
  };
  const auto save_shadow = [&] {
    auto& sh = *shadow;
    std::size_t k = 0;
    ops.copy(r, sh[k++]);
    ops.copy(p, sh[k++]);
    for (auto& pi : ps) ops.copy(pi, sh[k++]);
    for (auto& xi : x) ops.copy(xi, sh[k++]);
    sck = sc;
  };
  const auto restore_shadow = [&] {
    auto& sh = *shadow;
    std::size_t k = 0;
    ops.copy(sh[k++], r);
    ops.copy(sh[k++], p);
    for (auto& pi : ps) ops.copy(sh[k++], pi);
    for (auto& xi : x) ops.copy(sh[k++], xi);
    sc = sck;
  };

  // Initial residual r = M^+ b (x_i = 0); every direction starts at r.
  const auto init_residual = [&] {
    op.apply_dag(r, b);
    ops.copy(r, p);
    for (auto& pi : ps) ops.copy(r, pi);
    for (auto& xi : x) ops.zero(xi);
    sc.rsq = ops.norm2(r);
    sc.alpha_prev = 1.0;
    sc.beta_prev = 0.0;
    std::fill(sc.zeta.begin(), sc.zeta.end(), 1.0);
    std::fill(sc.zeta_prev.begin(), sc.zeta_prev.end(), 1.0);
    std::fill(sc.res2.begin(), sc.res2.end(), sc.rsq);
    std::fill(sc.frozen.begin(), sc.frozen.end(), 0);
  };
  init_residual();
  if (audit) {
    // Baseline audit: the initial residual itself crosses the mesh.
    while (!interval_clean() && result.restarts < audit->max_restarts) {
      ++result.restarts;
      init_residual();
    }
    save_shadow();
  }
  const double rhs_norm2 = sc.rsq;
  const double target =
      params.tolerance * params.tolerance * (rhs_norm2 > 0 ? rhs_norm2 : 1.0);

  const int iters = params.max_iterations;
  const int max_trips =
      audit ? iters * (audit->max_restarts + 1) + audit->max_restarts : iters;
  int since_audit = 0;
  bool gave_up = false;
  std::vector<double> zeta_next(ns, 1.0);
  for (int trip = 0; trip < max_trips && result.iterations < iters; ++trip) {
    // ap = (M^+ M + sigma_0) p.  With sigma_0 == 0 the operator and vector
    // sequence below is exactly cg_solve's, so x[0] bit-matches plain CG.
    op.apply(tmp, p);
    op.apply_dag(ap, tmp);
    if (sigma0 != 0.0) ops.axpy(sigma0, p, ap);

    const double p_ap = ops.dot_re(p, ap);
    if (p_ap == 0.0) break;
    const double alpha = sc.rsq / p_ap;

    // zeta_{k+1} per shift (scalar recurrence; shifts relative to sigma_0).
    for (std::size_t i = 1; i < ns; ++i) {
      if (sc.frozen[i]) continue;
      const double s = params.shifts[i] - sigma0;
      const double num = sc.zeta[i] * sc.zeta_prev[i] * sc.alpha_prev;
      const double den =
          alpha * sc.beta_prev * (sc.zeta_prev[i] - sc.zeta[i]) +
          sc.zeta_prev[i] * sc.alpha_prev * (1.0 + s * alpha);
      zeta_next[i] = den != 0.0 ? num / den : 0.0;
    }

    ops.axpy(alpha, p, x[0]);
    for (std::size_t i = 1; i < ns; ++i) {
      if (sc.frozen[i]) continue;
      const double alpha_s = alpha * zeta_next[i] / sc.zeta[i];
      ops.axpy(alpha_s, ps[i - 1], x[i]);
    }
    ops.axpy(-alpha, ap, r);
    const double rsq_new = ops.norm2(r);
    const double beta = rsq_new / sc.rsq;

    // Direction updates: base first (plain CG order), then each live shift
    // p_i = zeta_{k+1} r + beta_i p_i, freezing shifts whose implied
    // residual zeta^2 |r|^2 has crossed the target.
    sc.res2[0] = rsq_new;
    for (std::size_t i = 1; i < ns; ++i) {
      if (sc.frozen[i]) continue;
      const double ratio = zeta_next[i] / sc.zeta[i];
      const double beta_s = beta * ratio * ratio;
      ops.axpby(zeta_next[i], r, beta_s, ps[i - 1]);
      sc.res2[i] = zeta_next[i] * zeta_next[i] * rsq_new;
      sc.zeta_prev[i] = sc.zeta[i];
      sc.zeta[i] = zeta_next[i];
      if (sc.res2[i] < target) sc.frozen[i] = 1;
    }
    sc.alpha_prev = alpha;
    sc.beta_prev = beta;
    sc.rsq = rsq_new;
    ops.xpay(r, beta, p);
    ++result.iterations;
    ++since_audit;

    bool all_done = rsq_new < target;
    for (std::size_t i = 1; i < ns && all_done; ++i) {
      all_done = sc.frozen[i] != 0;
    }

    if (audit && (all_done || since_audit >= audit->interval ||
                  result.iterations == iters)) {
      if (!interval_clean()) {
        // Corruption in this interval: every iterate and every zeta since
        // the shadow copy is suspect.  Restore the full working set (which
        // also rewrites any poisoned words) and consume audits until one
        // interval comes back clean.
        bool recovered = false;
        while (result.restarts < audit->max_restarts) {
          ++result.restarts;
          result.iterations -= since_audit;
          restore_shadow();
          since_audit = 0;
          if (interval_clean()) {
            recovered = true;
            break;
          }
        }
        if (!recovered) {
          gave_up = true;
          break;
        }
        continue;
      }
      save_shadow();
      since_audit = 0;
    }
    if (all_done) {
      result.converged = !gave_up;
      break;
    }
  }

  result.relative_residuals.resize(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    result.relative_residuals[i] =
        rhs_norm2 > 0 ? std::sqrt(sc.res2[i] / rhs_norm2)
                      : std::sqrt(sc.res2[i]);
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "multishift[" << op.name() << "]: " << params.shifts.size()
             << " shifts, " << result.iterations << " iterations, |r0|/|b| = "
             << result.relative_residuals[0]
             << (audit ? (", " + std::to_string(result.restarts) + " restarts")
                       : std::string());
  return result;
}

}  // namespace

MultishiftResult multishift_solve(DiracOperator& op, std::vector<DistField>& x,
                                  DistField& b,
                                  const MultishiftParams& params) {
  return ms_run(op, x, b, params, nullptr);
}

MultishiftResult multishift_solve_audited(DiracOperator& op,
                                          std::vector<DistField>& x,
                                          DistField& b,
                                          const MultishiftParams& params,
                                          const MultishiftAuditParams& audit) {
  return ms_run(op, x, b, params, &audit);
}

}  // namespace qcdoc::lattice
