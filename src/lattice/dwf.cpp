#include "lattice/dwf.h"

#include <algorithm>
#include <cassert>

namespace qcdoc::lattice {
namespace {

/// Chiral projections in the DeGrand-Rossi basis: gamma5 = diag(+,+,-,-).
/// P+ keeps spins {0,1}; P- keeps spins {2,3}.
void add_chiral(Spinor& acc, const Spinor& psi, int sign, double coeff) {
  const int lo = sign > 0 ? 0 : 2;
  for (int sp = lo; sp < lo + 2; ++sp) {
    for (int c = 0; c < 3; ++c) acc[sp][c] += coeff * psi[sp][c];
  }
}

}  // namespace

DwfDirac::DwfDirac(FieldOps* ops, const GlobalGeometry* geom,
                   GaugeField* gauge, DwfParams params)
    : DiracOperator(ops, geom),
      gauge_(gauge),
      params_(params),
      halos_(&ops->comm(), geom, halo_doubles(), 1, 1, "dwf.halo") {
  assert(params_.ls >= 2);
}

void DwfDirac::pack_faces(const DistField& in) {
  const auto& local = geom_->local();
  const int ls = params_.ls;
  const int hw = kDoublesPerHalfSpinor;
  for (int r = 0; r < in.ranks(); ++r) {
    for (int mu = 0; mu < kNd; ++mu) {
      const auto low = local.face_layer_sites(mu, +1, 0);
      auto send_low = halos_.send_buf(r, mu, +1);
      for (std::size_t t = 0; t < low.size(); ++t) {
        const double* base = in.site(r, low[t]);
        for (int s5 = 0; s5 < ls; ++s5) {
          const Spinor psi = load_spinor(base + s5 * kDoublesPerSpinor);
          store_half_spinor(
              send_low.data() +
                  (t * static_cast<std::size_t>(ls) +
                   static_cast<std::size_t>(s5)) *
                      static_cast<std::size_t>(hw),
              project(mu, +1, psi));
        }
      }
      const auto high = local.face_layer_sites(mu, -1, 0);
      auto send_high = halos_.send_buf(r, mu, -1);
      for (std::size_t t = 0; t < high.size(); ++t) {
        const double* base = in.site(r, high[t]);
        const Su3Matrix u = gauge_->link(r, high[t], mu);
        for (int s5 = 0; s5 < ls; ++s5) {
          const Spinor psi = load_spinor(base + s5 * kDoublesPerSpinor);
          HalfSpinor h = project(mu, -1, psi);
          h[0] = adj_mul(u, h[0]);
          h[1] = adj_mul(u, h[1]);
          store_half_spinor(send_high.data() +
                                (t * static_cast<std::size_t>(ls) +
                                 static_cast<std::size_t>(s5)) *
                                    static_cast<std::size_t>(hw),
                            h);
        }
      }
    }
  }
}

void DwfDirac::compute_sites(DistField& out, const DistField& in, bool dagger) {
  const auto& local = geom_->local();
  const int ls = params_.ls;
  const int hw = kDoublesPerHalfSpinor;
  // Dagger conjugates the 4-D hopping (gamma5 gamma_mu gamma5 = -gamma_mu
  // swaps the projectors) and transposes the 5-D couplings.
  const int sf = dagger ? -1 : +1;  // forward 4-D projector sign
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Su3Matrix u[kNd] = {
          gauge_->link(r, s, 0), gauge_->link(r, s, 1), gauge_->link(r, s, 2),
          gauge_->link(r, s, 3)};
      for (int s5 = 0; s5 < ls; ++s5) {
        Spinor hop;
        for (int mu = 0; mu < kNd; ++mu) {
          const auto fwd = local.neighbor(s, mu, +1);
          HalfSpinor h;
          if (fwd.local) {
            h = project(mu, sf,
                        load_spinor(in.site(r, fwd.index) +
                                    s5 * kDoublesPerSpinor));
          } else {
            h = load_half_spinor(
                halos_.recv_buf(r, mu, +1).data() +
                (static_cast<std::size_t>(fwd.index) *
                     static_cast<std::size_t>(ls) +
                 static_cast<std::size_t>(s5)) *
                    static_cast<std::size_t>(hw));
          }
          HalfSpinor uh;
          uh[0] = u[mu] * h[0];
          uh[1] = u[mu] * h[1];
          hop += reconstruct(mu, sf, uh);

          const auto bwd = local.neighbor(s, mu, -1);
          HalfSpinor g;
          if (bwd.local) {
            g = project(mu, -sf,
                        load_spinor(in.site(r, bwd.index) +
                                    s5 * kDoublesPerSpinor));
            const Su3Matrix ub = gauge_->link(r, bwd.index, mu);
            g[0] = adj_mul(ub, g[0]);
            g[1] = adj_mul(ub, g[1]);
          } else {
            g = load_half_spinor(
                halos_.recv_buf(r, mu, -1).data() +
                (static_cast<std::size_t>(bwd.index) *
                     static_cast<std::size_t>(ls) +
                 static_cast<std::size_t>(s5)) *
                    static_cast<std::size_t>(hw));
          }
          hop += reconstruct(mu, -sf, g);
        }

        // out = psi - kappa5 * hop - (5-D couplings)
        Spinor res = load_spinor(in.site(r, s) + s5 * kDoublesPerSpinor);
        res += Complex(-params_.kappa5, 0.0) * hop;

        // 5-D: non-dagger couples P- to s+1 and P+ to s-1; dagger swaps.
        const int up_sign = dagger ? +1 : -1;    // chirality kept from s+1
        const int down_sign = dagger ? -1 : +1;  // chirality kept from s-1
        const int s_up = s5 + 1;
        const int s_dn = s5 - 1;
        {
          // Interior: res -= P psi(s+1).  Wall: res += m_f P psi(0).
          const double coeff = s_up < ls ? -1.0 : params_.mf;
          const int src = s_up < ls ? s_up : 0;
          const Spinor nb =
              load_spinor(in.site(r, s) + src * kDoublesPerSpinor);
          add_chiral(res, nb, up_sign, coeff);
        }
        {
          const double coeff = s_dn >= 0 ? -1.0 : params_.mf;
          const int src = s_dn >= 0 ? s_dn : ls - 1;
          const Spinor nb =
              load_spinor(in.site(r, s) + src * kDoublesPerSpinor);
          add_chiral(res, nb, down_sign, coeff);
        }
        store_spinor(out.site(r, s) + s5 * kDoublesPerSpinor, res);
      }
    }
  }
}

cpu::KernelProfile DwfDirac::pack_profile() const {
  const auto& local = geom_->local();
  const double ls = params_.ls;
  cpu::KernelProfile p;
  p.name = "dwf.pack";
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    p.other_flops += f * ls * 24;
    p.fmadd_flops += f * ls * 120;
    p.other_flops += f * ls * 12;
    p.load_bytes += f * (ls * 2 * 192 + 144);  // gauge loaded once per site
    p.store_bytes += f * ls * 2 * 96;
  }
  p.edram_bytes = p.load_bytes + p.store_bytes;
  p.streams = 2;
  p.overhead_cycles = 200 * ls;
  p.issue_efficiency = 0.90;  // Ls-pipelined like the site kernel
  return p;
}

cpu::KernelProfile DwfDirac::site_profile() const {
  return site_profile(gauge_->field().body_region());
}

cpu::KernelProfile DwfDirac::site_profile(
    memsys::Region fermion_region) const {
  const auto& local = geom_->local();
  const double v = local.volume();
  const double ls = params_.ls;
  cpu::KernelProfile p;
  p.name = "dwf.site";
  // Per slice: the Wilson 1320 plus the fused 1-kappa5 accumulation (48)
  // and the 5-D projector adds (24).
  p.fmadd_flops = v * ls * (960 + 48);
  p.other_flops = v * ls * (360 + 24);
  double gauge_loads = 0;
  double spinor_bytes = 0;
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    gauge_loads += v * 144;        // U at x, once per site (reused over Ls)
    gauge_loads += (v - f) * 144;  // backward U, once per site
    spinor_bytes += ls * ((v - f) * 192 + f * 96);  // forward spinors
    spinor_bytes += ls * ((v - f) * 192 + f * 96);  // backward spinors
  }
  spinor_bytes += v * ls * 3 * 192;  // own slice + two 5-D neighbours
  p.load_bytes = gauge_loads + spinor_bytes;
  p.store_bytes = v * ls * 192;
  spinor_bytes += p.store_bytes;
  if (gauge_->field().body_region() == memsys::Region::kDdr) {
    p.ddr_bytes += gauge_loads;
  } else {
    p.edram_bytes += gauge_loads;
  }
  if (fermion_region == memsys::Region::kDdr) {
    p.ddr_bytes += spinor_bytes;
  } else {
    p.edram_bytes += spinor_bytes;
  }
  p.streams = 4;
  p.overhead_cycles = v * ls * 4;  // loop overhead amortized over Ls
  // The fifth dimension is the software-pipelining axis: iterations over s
  // reuse registers and hide the FPU latency almost completely -- the
  // structural reason the paper expects domain walls to beat clover.
  p.issue_efficiency = 0.90;
  return p;
}

void DwfDirac::run(DistField& out, DistField& in, bool dagger) {
  auto& bsp = ops_->bsp();
  const auto& cpu = ops_->cpu();

  // Dagger swaps which projection travels in each direction; the pack
  // performs the projection for the *receiver's* forward hop, so it must
  // follow the same convention.  We reuse pack_faces by exploiting that the
  // forward/backward buffers swap roles: for simplicity the dagger path
  // packs with swapped projectors inline.
  if (!dagger) {
    pack_faces(in);
  } else {
    // gamma5-conjugate trick: pack gamma5*in with normal projectors, which
    // equals packing in with swapped projectors up to sign bookkeeping that
    // reconstruct() absorbs.  We pack explicitly instead (clarity first).
    const auto& local = geom_->local();
    const int ls = params_.ls;
    const int hw = kDoublesPerHalfSpinor;
    for (int r = 0; r < in.ranks(); ++r) {
      for (int mu = 0; mu < kNd; ++mu) {
        const auto low = local.face_layer_sites(mu, +1, 0);
        auto send_low = halos_.send_buf(r, mu, +1);
        for (std::size_t t = 0; t < low.size(); ++t) {
          for (int s5 = 0; s5 < ls; ++s5) {
            const Spinor psi =
                load_spinor(in.site(r, low[t]) + s5 * kDoublesPerSpinor);
            store_half_spinor(send_low.data() +
                                  (t * static_cast<std::size_t>(ls) +
                                   static_cast<std::size_t>(s5)) *
                                      static_cast<std::size_t>(hw),
                              project(mu, -1, psi));
          }
        }
        const auto high = local.face_layer_sites(mu, -1, 0);
        auto send_high = halos_.send_buf(r, mu, -1);
        for (std::size_t t = 0; t < high.size(); ++t) {
          const Su3Matrix u = gauge_->link(r, high[t], mu);
          for (int s5 = 0; s5 < ls; ++s5) {
            const Spinor psi =
                load_spinor(in.site(r, high[t]) + s5 * kDoublesPerSpinor);
            HalfSpinor h = project(mu, +1, psi);
            h[0] = adj_mul(u, h[0]);
            h[1] = adj_mul(u, h[1]);
            store_half_spinor(send_high.data() +
                                  (t * static_cast<std::size_t>(ls) +
                                   static_cast<std::size_t>(s5)) *
                                      static_cast<std::size_t>(hw),
                              h);
          }
        }
      }
    }
  }
  const auto pack = pack_profile();
  bsp.compute(cpu.kernel_cycles(pack));

  const auto site = site_profile(in.body_region());
  const double site_cycles = cpu.kernel_cycles(site);
  if (params_.overlap_comm) {
    const auto& ext = geom_->local().extent();
    double interior = 1;
    for (int mu = 0; mu < kNd; ++mu) {
      interior *= std::max(ext[static_cast<std::size_t>(mu)] - 2, 0);
    }
    const double frac = interior / geom_->local().volume();
    bsp.overlap(site_cycles * frac, [&] { halos_.post_all_shifts(); });
    compute_sites(out, in, dagger);
    bsp.compute(site_cycles * (1.0 - frac));
  } else {
    halos_.post_all_shifts();
    bsp.communicate();
    compute_sites(out, in, dagger);
    bsp.compute(site_cycles);
  }
  ops_->account_kernel(pack, geom_->ranks(), Precision::kDouble);
  ops_->account_kernel(site, geom_->ranks(), Precision::kDouble);
}

void DwfDirac::apply(DistField& out, DistField& in) { run(out, in, false); }

void DwfDirac::apply_dag(DistField& out, DistField& in) { run(out, in, true); }

double DwfDirac::flops_per_apply() const {
  return pack_profile().flops() + site_profile().flops();
}

}  // namespace qcdoc::lattice
