#include "lattice/su3.h"

#include <cmath>

namespace qcdoc::lattice {

ColorVector& ColorVector::operator+=(const ColorVector& o) {
  for (int i = 0; i < 3; ++i) (*this)[i] += o[i];
  return *this;
}

ColorVector& ColorVector::operator-=(const ColorVector& o) {
  for (int i = 0; i < 3; ++i) (*this)[i] -= o[i];
  return *this;
}

ColorVector& ColorVector::operator*=(const Complex& z) {
  for (int i = 0; i < 3; ++i) (*this)[i] *= z;
  return *this;
}

Complex dot(const ColorVector& a, const ColorVector& b) {
  Complex s = 0;
  for (int i = 0; i < 3; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double norm2(const ColorVector& v) { return dot(v, v).real(); }

Su3Matrix Su3Matrix::identity() {
  Su3Matrix u;
  for (int i = 0; i < 3; ++i) u.at(i, i) = 1.0;
  return u;
}

Su3Matrix Su3Matrix::zero() { return Su3Matrix{}; }

Su3Matrix Su3Matrix::adjoint() const {
  Su3Matrix r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.at(i, j) = std::conj(at(j, i));
  return r;
}

Complex Su3Matrix::trace() const { return at(0, 0) + at(1, 1) + at(2, 2); }

Complex Su3Matrix::det() const {
  return at(0, 0) * (at(1, 1) * at(2, 2) - at(1, 2) * at(2, 1)) -
         at(0, 1) * (at(1, 0) * at(2, 2) - at(1, 2) * at(2, 0)) +
         at(0, 2) * (at(1, 0) * at(2, 1) - at(1, 1) * at(2, 0));
}

Su3Matrix& Su3Matrix::operator+=(const Su3Matrix& o) {
  for (std::size_t i = 0; i < 9; ++i) m[i] += o.m[i];
  return *this;
}

Su3Matrix& Su3Matrix::operator-=(const Su3Matrix& o) {
  for (std::size_t i = 0; i < 9; ++i) m[i] -= o.m[i];
  return *this;
}

Su3Matrix& Su3Matrix::operator*=(const Complex& z) {
  for (auto& x : m) x *= z;
  return *this;
}

Su3Matrix operator*(const Su3Matrix& a, const Su3Matrix& b) {
  Su3Matrix r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Complex s = 0;
      for (int k = 0; k < 3; ++k) s += a.at(i, k) * b.at(k, j);
      r.at(i, j) = s;
    }
  }
  return r;
}

ColorVector operator*(const Su3Matrix& a, const ColorVector& v) {
  ColorVector r;
  for (int i = 0; i < 3; ++i) {
    Complex s = 0;
    for (int k = 0; k < 3; ++k) s += a.at(i, k) * v[k];
    r[i] = s;
  }
  return r;
}

ColorVector adj_mul(const Su3Matrix& a, const ColorVector& v) {
  ColorVector r;
  for (int i = 0; i < 3; ++i) {
    Complex s = 0;
    for (int k = 0; k < 3; ++k) s += std::conj(a.at(k, i)) * v[k];
    r[i] = s;
  }
  return r;
}

double unitarity_violation(const Su3Matrix& u) {
  const Su3Matrix uu = u * u.adjoint();
  const Su3Matrix id = Su3Matrix::identity();
  double dev = 0;
  for (std::size_t i = 0; i < 9; ++i) dev += std::abs(uu.m[i] - id.m[i]);
  dev += std::abs(u.det() - Complex(1.0));
  return dev;
}

Su3Matrix reunitarize(const Su3Matrix& u) {
  // Rows as vectors; Gram-Schmidt the first two, cross product for the
  // third (guarantees det = +1).
  ColorVector r0{{u.at(0, 0), u.at(0, 1), u.at(0, 2)}};
  ColorVector r1{{u.at(1, 0), u.at(1, 1), u.at(1, 2)}};

  const double n0 = std::sqrt(norm2(r0));
  r0 *= Complex(1.0 / n0);
  const Complex overlap = dot(r0, r1);
  for (int i = 0; i < 3; ++i) r1[i] -= overlap * r0[i];
  const double n1 = std::sqrt(norm2(r1));
  r1 *= Complex(1.0 / n1);
  // r2 = conj(r0 x r1): the unique completion with det = 1.
  ColorVector r2;
  r2[0] = std::conj(r0[1] * r1[2] - r0[2] * r1[1]);
  r2[1] = std::conj(r0[2] * r1[0] - r0[0] * r1[2]);
  r2[2] = std::conj(r0[0] * r1[1] - r0[1] * r1[0]);

  Su3Matrix out;
  for (int j = 0; j < 3; ++j) {
    out.at(0, j) = r0[j];
    out.at(1, j) = r1[j];
    out.at(2, j) = r2[j];
  }
  return out;
}

Su3Matrix random_su3(Rng& rng) {
  Su3Matrix g;
  for (auto& z : g.m) z = Complex(rng.next_gaussian(), rng.next_gaussian());
  return reunitarize(g);
}

Su3Matrix random_su3_near_identity(Rng& rng, double epsilon) {
  // H: random Hermitian traceless; U = exp(i eps H) via a short series,
  // then reunitarized to absorb the truncation.
  Su3Matrix h;
  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      if (i == j) {
        h.at(i, j) = Complex(rng.next_gaussian(), 0.0);
      } else {
        h.at(i, j) = Complex(rng.next_gaussian(), rng.next_gaussian());
        h.at(j, i) = std::conj(h.at(i, j));
      }
    }
  }
  const Complex tr = h.trace() * Complex(1.0 / 3.0);
  for (int i = 0; i < 3; ++i) h.at(i, i) -= tr;

  const Complex ie(0.0, epsilon);
  Su3Matrix u = Su3Matrix::identity();
  Su3Matrix term = Su3Matrix::identity();
  for (int k = 1; k <= 6; ++k) {
    term = term * h;
    term *= ie * Complex(1.0 / k, 0.0) / Complex(1.0, 0.0);
    // term now holds (i eps H)^k / k! progressively: rescale trick below.
    u += term;
  }
  return reunitarize(u);
}

}  // namespace qcdoc::lattice
