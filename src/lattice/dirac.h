// Abstract Dirac operator interface.
//
// The paper benchmarks four discretizations of the Dirac operator -- naive
// Wilson, clover-improved Wilson, ASQTAD staggered, and domain-wall
// fermions -- all through the same conjugate-gradient harness.  Each
// implementation provides a functional apply() (real arithmetic, halo
// exchanges through the simulated SCU network) plus the op-count profile of
// the paper's hand-tuned assembly, from which the timing model derives the
// machine time per application.
#pragma once

#include <memory>
#include <string>

#include "lattice/gauge.h"
#include "lattice/linalg.h"

namespace qcdoc::lattice {

class DiracOperator {
 public:
  DiracOperator(FieldOps* ops, const GlobalGeometry* geom)
      : ops_(ops), geom_(geom) {}
  virtual ~DiracOperator() = default;

  virtual const char* name() const = 0;
  virtual int site_doubles() const = 0;
  virtual int halo_doubles() const = 0;
  virtual int halo_slabs() const = 0;
  /// Backward-side slab count; differs for asymmetric halos (ASQTAD).
  virtual int halo_slabs_minus() const { return halo_slabs(); }

  /// A field with the right per-site layout for this operator.  Fields are
  /// pure bodies; the halo buffers belong to the operator (one HaloSet per
  /// operator, shared across all its operand vectors).
  DistField make_field(const std::string& label) const {
    return DistField(&ops_->comm(), geom_, site_doubles(), label);
  }

  /// This operator's communication buffers.
  HaloSet make_halo_set(const std::string& label) const {
    return HaloSet(&ops_->comm(), geom_, halo_doubles(), halo_slabs(),
                   halo_slabs_minus(), label);
  }

  /// out = M in.  `in` is non-const because its halo scratch buffers are
  /// packed and exchanged; its body is not modified.
  virtual void apply(DistField& out, DistField& in) = 0;
  /// out = M^dagger in.
  virtual void apply_dag(DistField& out, DistField& in) = 0;

  /// Flops per operator application per node (the hand-tuned assembly's op
  /// count; feeds sustained-performance reports).
  virtual double flops_per_apply() const = 0;

  FieldOps& ops() const { return *ops_; }
  const GlobalGeometry& geometry() const { return *geom_; }

 protected:
  FieldOps* ops_;
  const GlobalGeometry* geom_;
};

}  // namespace qcdoc::lattice
