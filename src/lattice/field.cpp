#include "lattice/field.h"

#include <cassert>
#include <cstring>

namespace qcdoc::lattice {

// --- DistField --------------------------------------------------------------

DistField::DistField(comms::Communicator* comm, const GlobalGeometry* geom,
                     int site_doubles, const std::string& label)
    : comm_(comm), geom_(geom), site_doubles_(site_doubles) {
  const int ranks = geom_->ranks();
  const auto& local = geom_->local();
  blocks_.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& mem = comm_->machine().memory(comm_->node_of_rank(r));
    blocks_[static_cast<std::size_t>(r)] = mem.alloc(
        static_cast<u64>(local.volume()) * static_cast<u64>(site_doubles_),
        label);
  }
}

std::span<double> DistField::data(int rank) {
  return comm_->machine()
      .memory(comm_->node_of_rank(rank))
      .doubles(blocks_[static_cast<std::size_t>(rank)]);
}

std::span<const double> DistField::data(int rank) const {
  return const_cast<comms::Communicator*>(comm_)
      ->machine()
      .memory(comm_->node_of_rank(rank))
      .doubles(blocks_[static_cast<std::size_t>(rank)]);
}

double* DistField::site(int rank, int site_idx) {
  return data(rank).data() + static_cast<std::size_t>(site_idx) *
                                 static_cast<std::size_t>(site_doubles_);
}

const double* DistField::site(int rank, int site_idx) const {
  return data(rank).data() + static_cast<std::size_t>(site_idx) *
                                 static_cast<std::size_t>(site_doubles_);
}

memsys::Region DistField::body_region() const {
  return blocks_.empty() ? memsys::Region::kEdram : blocks_[0].region;
}

void DistField::zero() {
  for (int r = 0; r < ranks(); ++r) {
    auto d = data(r);
    std::memset(d.data(), 0, d.size_bytes());
  }
}

// --- HaloSet ----------------------------------------------------------------

HaloSet::HaloSet(comms::Communicator* comm, const GlobalGeometry* geom,
                 int halo_doubles, int halo_slabs_plus, int halo_slabs_minus,
                 const std::string& label)
    : comm_(comm),
      geom_(geom),
      halo_doubles_(halo_doubles),
      halo_slabs_{halo_slabs_plus, halo_slabs_minus} {
  const int ranks = geom_->ranks();
  const auto& local = geom_->local();
  storage_.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& mem = comm_->machine().memory(comm_->node_of_rank(r));
    auto& st = storage_[static_cast<std::size_t>(r)];
    for (int mu = 0; mu < kNd; ++mu) {
      for (int d = 0; d < 2; ++d) {
        const int slabs = halo_slabs_[static_cast<std::size_t>(d)];
        if (slabs == 0) continue;
        const u64 words = static_cast<u64>(local.face_volume(mu)) *
                          static_cast<u64>(halo_doubles_) *
                          static_cast<u64>(slabs);
        st.send[static_cast<std::size_t>(mu)][static_cast<std::size_t>(d)] =
            mem.alloc(words, label + ".send");
        st.recv[static_cast<std::size_t>(mu)][static_cast<std::size_t>(d)] =
            mem.alloc(words, label + ".recv");
      }
    }
  }
}

std::span<double> HaloSet::send_buf(int rank, int mu, int dir) {
  auto& st = storage_[static_cast<std::size_t>(rank)];
  const auto& block = st.send[static_cast<std::size_t>(mu)][dir > 0 ? 0u : 1u];
  return comm_->machine().memory(comm_->node_of_rank(rank)).doubles(block);
}

std::span<double> HaloSet::recv_buf(int rank, int mu, int dir) {
  auto& st = storage_[static_cast<std::size_t>(rank)];
  const auto& block = st.recv[static_cast<std::size_t>(mu)][dir > 0 ? 0u : 1u];
  return comm_->machine().memory(comm_->node_of_rank(rank)).doubles(block);
}

std::span<const double> HaloSet::recv_buf(int rank, int mu, int dir) const {
  return const_cast<HaloSet*>(this)->recv_buf(rank, mu, dir);
}

void HaloSet::post_shift(int mu) {
  const int ranks_n = geom_->ranks();
  if (!dim_is_distributed(mu)) {
    // One node spans this dimension: the "halo" is this node's own opposite
    // face.  The run kernel performs a local copy (no SCU involvement); its
    // cost is part of the pack phase in the kernel profiles.
    for (int r = 0; r < ranks_n; ++r) {
      for (int d : {+1, -1}) {
        if (halo_slabs(d) == 0) continue;
        auto src = send_buf(r, mu, d);
        auto dst = recv_buf(r, mu, d);
        std::memcpy(dst.data(), src.data(), src.size_bytes());
      }
    }
    return;
  }
  const auto desc = [](const memsys::Block& b) {
    scu::DmaDescriptor d;
    d.base_word = b.word_addr;
    d.block_words = static_cast<u32>(b.words);
    d.num_blocks = 1;
    return d;
  };
  // send_buf(mu,+1) carries the low face and travels -mu into the
  // neighbour's recv_buf(mu,+1); send_buf(mu,-1) carries the high face and
  // travels +mu into recv_buf(mu,-1).
  for (int d = 0; d < 2; ++d) {
    if (halo_slabs_[static_cast<std::size_t>(d)] == 0) continue;
    std::vector<scu::DmaDescriptor> sends(static_cast<std::size_t>(ranks_n));
    std::vector<scu::DmaDescriptor> recvs(static_cast<std::size_t>(ranks_n));
    for (int r = 0; r < ranks_n; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const auto m = static_cast<std::size_t>(mu);
      sends[ri] = desc(storage_[ri].send[m][static_cast<std::size_t>(d)]);
      recvs[ri] = desc(storage_[ri].recv[m][static_cast<std::size_t>(d)]);
    }
    comm_->post_shift(mu, d == 0 ? torus::Dir::kMinus : torus::Dir::kPlus,
                      sends, recvs);
  }
}

void HaloSet::post_all_shifts() {
  for (int mu = 0; mu < kNd; ++mu) post_shift(mu);
}

double HaloSet::bytes_per_node() const {
  double bytes = 0;
  for (int mu = 0; mu < kNd; ++mu) {
    if (!dim_is_distributed(mu)) continue;
    bytes += geom_->local().face_volume(mu) * halo_doubles_ *
             (halo_slabs_[0] + halo_slabs_[1]) * 8.0;
  }
  return bytes;
}

// --- serialization ---------------------------------------------------------

void store_su3(double* p, const Su3Matrix& u) {
  for (int i = 0; i < 9; ++i) {
    p[2 * i] = u.m[static_cast<std::size_t>(i)].real();
    p[2 * i + 1] = u.m[static_cast<std::size_t>(i)].imag();
  }
}

Su3Matrix load_su3(const double* p) {
  Su3Matrix u;
  for (int i = 0; i < 9; ++i) {
    u.m[static_cast<std::size_t>(i)] = Complex(p[2 * i], p[2 * i + 1]);
  }
  return u;
}

void store_spinor(double* p, const Spinor& s) {
  for (int sp = 0; sp < kSpins; ++sp) {
    for (int c = 0; c < 3; ++c) {
      const int k = 2 * (3 * sp + c);
      p[k] = s[sp][c].real();
      p[k + 1] = s[sp][c].imag();
    }
  }
}

Spinor load_spinor(const double* p) {
  Spinor s;
  for (int sp = 0; sp < kSpins; ++sp) {
    for (int c = 0; c < 3; ++c) {
      const int k = 2 * (3 * sp + c);
      s[sp][c] = Complex(p[k], p[k + 1]);
    }
  }
  return s;
}

void store_half_spinor(double* p, const HalfSpinor& h) {
  for (int sp = 0; sp < 2; ++sp) {
    for (int c = 0; c < 3; ++c) {
      const int k = 2 * (3 * sp + c);
      p[k] = h[sp][c].real();
      p[k + 1] = h[sp][c].imag();
    }
  }
}

HalfSpinor load_half_spinor(const double* p) {
  HalfSpinor h;
  for (int sp = 0; sp < 2; ++sp) {
    for (int c = 0; c < 3; ++c) {
      const int k = 2 * (3 * sp + c);
      h[sp][c] = Complex(p[k], p[k + 1]);
    }
  }
  return h;
}

void store_color_vector(double* p, const ColorVector& v) {
  for (int c = 0; c < 3; ++c) {
    p[2 * c] = v[c].real();
    p[2 * c + 1] = v[c].imag();
  }
}

ColorVector load_color_vector(const double* p) {
  ColorVector v;
  for (int c = 0; c < 3; ++c) v[c] = Complex(p[2 * c], p[2 * c + 1]);
  return v;
}

}  // namespace qcdoc::lattice
