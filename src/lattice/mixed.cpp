#include "lattice/mixed.h"

#include <cmath>
#include <optional>

#include "common/log.h"

namespace qcdoc::lattice {

MixedCgWorkspace MixedCgWorkspace::make(DiracOperator& op, Precision sloppy) {
  // Allocation order is load-bearing (snapshot resume replays it).
  MixedCgWorkspace ws{
      op.make_field("mx.tmp"), op.make_field("mx.r"),  op.make_field("mx.ap"),
      op.make_field("mx.bp"),  op.make_field("mx.e"),  op.make_field("mx.rs"),
      op.make_field("mx.ps"),  op.make_field("mx.aps"),
      op.make_field("mx.tmps"), op.make_field("mx.xck")};
  ws.e.set_precision(sloppy);
  ws.rs.set_precision(sloppy);
  ws.ps.set_precision(sloppy);
  ws.aps.set_precision(sloppy);
  ws.tmps.set_precision(sloppy);
  return ws;
}

namespace {

CgResult mixed_cg_run(DiracOperator& op, DiracOperator& sloppy_op,
                      DistField& x, DistField& b, const MixedCgParams& params,
                      const MixedCgAuditParams* audit) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  std::optional<MixedCgWorkspace> own_ws;
  MixedCgWorkspace* ws = audit ? audit->workspace : nullptr;
  if (ws == nullptr) {
    own_ws.emplace(MixedCgWorkspace::make(op, params.sloppy));
    ws = &*own_ws;
  }
  DistField& tmp = ws->tmp;
  DistField& r = ws->r;
  DistField& ap = ws->ap;
  DistField& bp = ws->bp;

  double rsq = 0;
  // True residual in double: r = M^+ b - M^+ M x (bp caches M^+ b so a
  // resumed process never re-derives it -- it rides the snapshot).
  const auto recompute_residual = [&] {
    op.apply(tmp, x);
    op.apply_dag(ap, tmp);
    ops.copy(bp, r);
    ops.axpy(-1.0, ap, r);
    rsq = ops.norm2(r);
  };

  CgResult result;
  const auto interval_clean = [&]() -> bool {
    ++result.audits;
    bool ok = true;
    if (audit->clean && !audit->clean()) {
      ++result.audit_failures;
      ok = false;
    }
    if (audit->mem_clean && !audit->mem_clean()) {
      ++result.mem_checks;
      ok = false;
    }
    return ok;
  };
  double rhs_norm2 = 0;
  int outer = 0;
  const auto fire_checkpoint = [&] {
    if (!audit || !audit->on_checkpoint) return;
    MixedCgCheckpoint ck;
    ck.outer = outer;
    ck.iterations = result.iterations;
    ck.rsq = rsq;
    ck.rhs_norm2 = rhs_norm2;
    ck.restarts = result.restarts;
    ck.audits = result.audits;
    ck.audit_failures = result.audit_failures;
    ck.mem_checks = result.mem_checks;
    audit->on_checkpoint(ck);
  };

  if (audit && audit->resume) {
    // x, r, bp and xck already hold the checkpoint's restored contents.
    const MixedCgCheckpoint& ck = *audit->resume;
    outer = ck.outer;
    result.iterations = ck.iterations;
    result.restarts = ck.restarts;
    result.audits = ck.audits;
    result.audit_failures = ck.audit_failures;
    result.mem_checks = ck.mem_checks;
    rsq = ck.rsq;
    rhs_norm2 = ck.rhs_norm2;
  } else {
    op.apply_dag(bp, b);
    if (audit) ops.copy(x, ws->xck);
    recompute_residual();
    if (audit) {
      while (!interval_clean() && result.restarts < audit->max_restarts) {
        ++result.restarts;
        ops.copy(ws->xck, x);
        op.apply_dag(bp, b);
        recompute_residual();
      }
    }
    rhs_norm2 = rsq;
    fire_checkpoint();
  }
  const double target =
      params.tolerance * params.tolerance * (rhs_norm2 > 0 ? rhs_norm2 : 1.0);

  const int max_trips = audit ? params.max_outer * (audit->max_restarts + 1) +
                                    audit->max_restarts
                              : params.max_outer;
  int since_audit = 0;
  bool gave_up = false;
  for (int trip = 0; trip < max_trips && outer < params.max_outer; ++trip) {
    if (rsq < target) {
      result.converged = true;
      break;
    }
    // Sloppy inner cycle on the correction equation A e = r: copying the
    // double residual into rs rounds it to the sloppy representable set,
    // and every inner load/store moves narrow bytes.
    ops.zero(ws->e);
    ops.copy(r, ws->rs);
    ops.copy(ws->rs, ws->ps);
    double in_rsq = ops.norm2(ws->rs);
    const double in_target = params.delta * params.delta * in_rsq;
    for (int it = 0; it < params.max_inner && in_rsq > in_target; ++it) {
      sloppy_op.apply(ws->tmps, ws->ps);
      sloppy_op.apply_dag(ws->aps, ws->tmps);
      const double p_ap = ops.dot_re(ws->ps, ws->aps);
      if (p_ap == 0.0) break;
      const double alpha = in_rsq / p_ap;
      ops.axpy(alpha, ws->ps, ws->e);
      ops.axpy(-alpha, ws->aps, ws->rs);
      const double in_rsq_new = ops.norm2(ws->rs);
      ++result.iterations;
      if (in_rsq_new <= in_target || in_rsq_new == 0.0) {
        in_rsq = in_rsq_new;
        break;
      }
      const double beta = in_rsq_new / in_rsq;
      in_rsq = in_rsq_new;
      ops.xpay(ws->rs, beta, ws->ps);
    }

    // Reliable update: fold the correction in and replace the residual in
    // double precision, so sloppy rounding never outlives one cycle.
    ops.axpy(1.0, ws->e, x);
    recompute_residual();
    ++result.reliable_updates;
    ++outer;
    ++since_audit;

    const bool looks_converged = rsq < target;
    if (audit && (looks_converged || since_audit >= audit->interval ||
                  outer == params.max_outer)) {
      if (!interval_clean()) {
        bool recovered = false;
        while (result.restarts < audit->max_restarts) {
          ++result.restarts;
          outer -= since_audit;
          ops.copy(ws->xck, x);
          recompute_residual();
          since_audit = 0;
          if (interval_clean()) {
            recovered = true;
            break;
          }
        }
        if (!recovered) {
          gave_up = true;
          break;
        }
        continue;
      }
      ops.copy(x, ws->xck);
      since_audit = 0;
      // Loop-top state (x, r, rsq) is complete and the mesh quiescent:
      // let the snapshot layer persist a generation.
      fire_checkpoint();
    }
    if (looks_converged) {
      result.converged = true;
      break;
    }
  }
  if (gave_up) result.converged = false;
  result.relative_residual =
      rhs_norm2 > 0 ? std::sqrt(rsq / rhs_norm2) : std::sqrt(rsq);

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "mixed-cg[" << op.name() << "/"
             << precision_name(params.sloppy) << "]: " << result.iterations
             << " sloppy iterations, " << result.reliable_updates
             << " reliable updates, |r|/|b| = " << result.relative_residual;
  return result;
}

}  // namespace

CgResult mixed_cg_solve(DiracOperator& op, DiracOperator& sloppy_op,
                        DistField& x, DistField& b,
                        const MixedCgParams& params) {
  return mixed_cg_run(op, sloppy_op, x, b, params, nullptr);
}

CgResult mixed_cg_solve_audited(DiracOperator& op, DiracOperator& sloppy_op,
                                DistField& x, DistField& b,
                                const MixedCgParams& params,
                                const MixedCgAuditParams& audit) {
  if (!audit.clean && !audit.mem_clean && !audit.on_checkpoint &&
      audit.workspace == nullptr && audit.resume == nullptr) {
    return mixed_cg_run(op, sloppy_op, x, b, params, nullptr);
  }
  return mixed_cg_run(op, sloppy_op, x, b, params, &audit);
}

CgResult mixed_bicgstab_solve(DiracOperator& op, DiracOperator& sloppy_op,
                              DistField& x, DistField& b,
                              const MixedCgParams& params) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  DistField r = op.make_field("mxb.r");
  DistField tmp = op.make_field("mxb.tmp");
  DistField e = op.make_field("mxb.e");
  DistField rs = op.make_field("mxb.rs");
  e.set_precision(params.sloppy);
  rs.set_precision(params.sloppy);
  auto inner_ws = BicgWorkspace::make(op);
  inner_ws.set_precision(params.sloppy);

  // r = b - M x in double.
  const auto recompute_residual = [&] {
    op.apply(tmp, x);
    ops.copy(b, r);
    ops.axpy(-1.0, tmp, r);
  };
  recompute_residual();
  const double rhs_norm2 = ops.norm2(r);
  const double target =
      params.tolerance * params.tolerance * (rhs_norm2 > 0 ? rhs_norm2 : 1.0);

  CgResult result;
  double rsq = rhs_norm2;
  CgParams inner_params;
  inner_params.tolerance = params.delta;
  inner_params.max_iterations = params.max_inner;
  for (int cycle = 0; cycle < params.max_outer && rsq >= target; ++cycle) {
    // Sloppy BiCGstab on M e = r, one delta-reduction cycle.
    ops.copy(r, rs);
    e.zero();
    const CgResult inner = bicgstab_solve(sloppy_op, e, rs, inner_params,
                                          inner_ws);
    result.iterations += inner.iterations;
    ops.axpy(1.0, e, x);
    recompute_residual();
    rsq = ops.norm2(r);
    ++result.reliable_updates;
    if (inner.iterations == 0) break;  // inner breakdown; don't spin
  }
  result.converged = rsq < target;
  result.relative_residual =
      rhs_norm2 > 0 ? std::sqrt(rsq / rhs_norm2) : std::sqrt(rsq);

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "mixed-bicgstab[" << op.name() << "/"
             << precision_name(params.sloppy) << "]: " << result.iterations
             << " sloppy iterations, " << result.reliable_updates
             << " reliable updates, |r|/|b| = " << result.relative_residual;
  return result;
}

}  // namespace qcdoc::lattice
