#include "lattice/bicgstab.h"

#include <cmath>

#include "common/log.h"

namespace qcdoc::lattice {

BicgWorkspace BicgWorkspace::make(DiracOperator& op) {
  return BicgWorkspace{op.make_field("bicg.r"),  op.make_field("bicg.rhat"),
                       op.make_field("bicg.p"),  op.make_field("bicg.v"),
                       op.make_field("bicg.s"),  op.make_field("bicg.t")};
}

void BicgWorkspace::set_precision(Precision prec) {
  r.set_precision(prec);
  rhat.set_precision(prec);
  p.set_precision(prec);
  v.set_precision(prec);
  s.set_precision(prec);
  t.set_precision(prec);
}

CgResult bicgstab_solve(DiracOperator& op, DistField& x, DistField& b,
                        const CgParams& params) {
  auto ws = BicgWorkspace::make(op);
  return bicgstab_solve(op, x, b, params, ws);
}

CgResult bicgstab_solve(DiracOperator& op, DistField& x, DistField& b,
                        const CgParams& params, BicgWorkspace& ws) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  DistField& r = ws.r;
  DistField& rhat = ws.rhat;
  DistField& p = ws.p;
  DistField& v = ws.v;
  DistField& s = ws.s;
  DistField& t = ws.t;

  // r = b - M x (x = 0 start), rhat = r.
  op.apply(r, x);
  ops.scale_copy(-1.0, r, r);
  ops.axpy(1.0, b, r);
  ops.copy(r, rhat);
  p.zero();
  v.zero();

  const double b_norm2 = ops.norm2(b);
  const double target =
      params.tolerance * params.tolerance * (b_norm2 > 0 ? b_norm2 : 1.0);

  Complex rho(1.0, 0.0), alpha(1.0, 0.0), omega(1.0, 0.0);

  CgResult result;
  const int iters = params.fixed_iterations > 0 ? params.fixed_iterations
                                                : params.max_iterations;
  for (int it = 0; it < iters; ++it) {
    const Complex rho_new = ops.cdot(rhat, r);
    if (std::abs(rho_new) == 0.0) break;
    const Complex beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta (p - omega v)
    ops.caxpy(-omega, v, p);
    ops.cxpay(r, beta, p);

    op.apply(v, p);
    const Complex rhat_v = ops.cdot(rhat, v);
    if (std::abs(rhat_v) == 0.0) break;
    alpha = rho / rhat_v;

    // s = r - alpha v
    ops.copy(r, s);
    ops.caxpy(-alpha, v, s);

    op.apply(t, s);
    const Complex t_s = ops.cdot(t, s);
    const double t_t = ops.norm2(t);
    if (t_t == 0.0) break;
    omega = t_s / t_t;

    // x += alpha p + omega s;  r = s - omega t
    ops.caxpy(alpha, p, x);
    ops.caxpy(omega, s, x);
    ops.copy(s, r);
    ops.caxpy(-omega, t, r);

    const double rsq = ops.norm2(r);
    result.iterations = it + 1;
    if (params.fixed_iterations == 0 && rsq < target) {
      result.converged = true;
      break;
    }
  }

  const double final_r = ops.norm2(r);
  result.relative_residual =
      b_norm2 > 0 ? std::sqrt(final_r / b_norm2) : std::sqrt(final_r);
  if (params.fixed_iterations > 0) {
    result.converged = result.relative_residual <= params.tolerance;
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "bicgstab[" << op.name() << "]: " << result.iterations
             << " iterations, |r|/|b| = " << result.relative_residual;
  return result;
}

}  // namespace qcdoc::lattice
