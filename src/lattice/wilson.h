// Wilson-fermion Dirac operator (paper Section 4: "naive Wilson fermions",
// 40% of peak at a 4^4 local volume).
//
//   M psi(x) = psi(x) - kappa * Dslash psi(x)
//   Dslash psi(x) = sum_mu [ U_mu(x) (1 - gamma_mu) psi(x+mu)
//                          + U_mu^+(x-mu) (1 + gamma_mu) psi(x-mu) ]
//
// Communication uses the half-spinor ("two-spinor") trick of the hand-tuned
// assembly: faces carry the 12 independent doubles of the projected spinor,
// and the backward faces are pre-multiplied by U^+ at the sender, so no
// gauge-field halo is ever needed.  M^dagger is applied via gamma_5
// hermiticity: M^+ = g5 M g5.
#pragma once

#include "lattice/dirac.h"

namespace qcdoc::lattice {

struct WilsonParams {
  double kappa = 0.124;
  /// Overlap face communication with interior compute (the paper's kernels
  /// can hide most of the halo exchange; off reproduces the benchmarked
  /// sequential figure).
  bool overlap_comm = false;
  /// Single-precision arithmetic: same flop rate on the 64-bit FPU but half
  /// the memory and communication traffic ("performance for single
  /// precision is slightly higher due to the decreased bandwidth").
  /// Equivalent to precision = kSingle; kept for older call sites.
  bool single_precision = false;
  /// Storage precision of the kernels: governs halo wire format, the
  /// memory-traffic scale factor of the profiles, and which bucket of the
  /// per-precision ledger the work lands in.  kHalf sends faces as 16-bit
  /// block-float half spinors (12 mantissas + shared exponent in 4 words).
  Precision precision = Precision::kDouble;
};

class WilsonDirac : public DiracOperator {
 public:
  WilsonDirac(FieldOps* ops, const GlobalGeometry* geom, GaugeField* gauge,
              WilsonParams params);

  const char* name() const override { return "wilson"; }
  int site_doubles() const override { return kDoublesPerSpinor; }
  /// Half spinors travel as 12 doubles; 12 floats packed two per word in
  /// single precision; or 12 block-float mantissas plus the shared exponent
  /// packed in 4 words at half precision -- the wire really carries the
  /// narrow bits.
  int halo_doubles() const override {
    switch (params_.precision) {
      case Precision::kSingle:
        return kDoublesPerHalfSpinor / 2;
      case Precision::kHalf:
        return 4;
      case Precision::kDouble:
      default:
        return kDoublesPerHalfSpinor;
    }
  }
  int halo_slabs() const override { return 1; }

  void apply(DistField& out, DistField& in) override;
  void apply_dag(DistField& out, DistField& in) override;
  double flops_per_apply() const override;

  /// The bare hopping term: out = Dslash in (exposed for tests/benches).
  void dslash(DistField& out, DistField& in);

  /// out = Dslash in evaluated only on sites of `parity` (the hopping term
  /// couples opposite parities).  The other parity of `out` is untouched.
  /// Kernel of the even-odd preconditioned solver (lattice/eo_cg.h).
  void dslash_parity(DistField& out, DistField& in, int parity);

  /// Per-node, per-application cost profiles of the assembly kernels.
  /// `fermion_region` is where the spinor fields live (they spill to DDR
  /// before the gauge field does; the split drives the paper's ~30% cliff).
  cpu::KernelProfile pack_profile() const;
  cpu::KernelProfile site_profile() const {
    return site_profile(gauge_->field().body_region());
  }
  cpu::KernelProfile site_profile(memsys::Region fermion_region) const;

  const WilsonParams& params() const { return params_; }
  GaugeField& gauge() { return *gauge_; }

  /// In-place gamma_5 multiplication (sign flips; used for gamma5
  /// hermiticity and by the domain-wall operator).
  static void apply_gamma5(DistField& f);

 private:
  void pack_faces(const DistField& in);
  /// parity = -1 computes every site; 0/1 restricts to that parity.
  void compute_sites(DistField& out, const DistField& in, int parity);
  void exchange_and_compute(DistField& out, DistField& in, int parity);

  GaugeField* gauge_;
  WilsonParams params_;
  HaloSet halos_;
};

}  // namespace qcdoc::lattice
