#include "lattice/staggered.h"

#include <algorithm>
#include <cassert>

namespace qcdoc::lattice {

AsqtadDirac::AsqtadDirac(FieldOps* ops, const GlobalGeometry* geom,
                         GaugeField* gauge, AsqtadParams params)
    : DiracOperator(ops, geom),
      gauge_(gauge),
      params_(params),
      fat_(&ops->comm(), geom, kNd * kDoublesPerSu3, "fatlinks"),
      long_(&ops->comm(), geom, kNd * kDoublesPerSu3, "longlinks"),
      halos_(&ops->comm(), geom, kDoublesPerColorVector, halo_slabs(),
             halo_slabs_minus(), "asqtad.halo") {
  for (int mu = 0; mu < kNd; ++mu) {
    assert(geom_->local().extent()[static_cast<std::size_t>(mu)] >= 3 &&
           "Naik term needs local extents >= 3");
  }
  compute_smeared_links();
}

Su3Matrix AsqtadDirac::fat_link(int rank, int site_idx, int mu) const {
  return load_su3(fat_.site(rank, site_idx) + mu * kDoublesPerSu3);
}

Su3Matrix AsqtadDirac::long_link(int rank, int site_idx, int mu) const {
  return load_su3(long_.site(rank, site_idx) + mu * kDoublesPerSu3);
}

void AsqtadDirac::compute_smeared_links() {
  const auto& local = geom_->local();
  auto shift = [](Coord4 c, int d, int by) {
    c[static_cast<std::size_t>(d)] += by;
    return c;
  };
  const auto& g = *gauge_;
  for (int r = 0; r < fat_.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Coord4 x = geom_->global_coords(r, s);
      for (int mu = 0; mu < kNd; ++mu) {
        const Coord4 xpm = shift(x, mu, 1);
        // Fat link: c1 * U + c3 * (six 3-link staples).
        Su3Matrix v = g.link_at(x, mu);
        v *= Complex(params_.fat_c1, 0.0);
        for (int nu = 0; nu < kNd; ++nu) {
          if (nu == mu) continue;
          const Coord4 xpn = shift(x, nu, 1);
          const Coord4 xmn = shift(x, nu, -1);
          const Coord4 xpm_mn = shift(xpm, nu, -1);
          Su3Matrix up = g.link_at(x, nu) * g.link_at(xpn, mu) *
                         g.link_at(xpm, nu).adjoint();
          Su3Matrix down = g.link_at(xmn, nu).adjoint() * g.link_at(xmn, mu) *
                           g.link_at(xpm_mn, nu);
          up *= Complex(params_.fat_c3, 0.0);
          down *= Complex(params_.fat_c3, 0.0);
          v += up;
          v += down;
        }
        store_su3(fat_.site(r, s) + mu * kDoublesPerSu3, v);

        // Long (Naik) link: coefficient folded in.
        Su3Matrix w = g.link_at(x, mu) * g.link_at(xpm, mu) *
                      g.link_at(shift(xpm, mu, 1), mu);
        w *= Complex(params_.naik, 0.0);
        store_su3(long_.site(r, s) + mu * kDoublesPerSu3, w);
      }
    }
  }
}

void AsqtadDirac::pack_faces(const DistField& in) {
  const auto& local = geom_->local();
  const int fd = kDoublesPerColorVector;
  for (int r = 0; r < in.ranks(); ++r) {
    for (int mu = 0; mu < kNd; ++mu) {
      const int f = local.face_volume(mu);
      // Forward side: plain field, layers 0..2 (the -mu neighbour's +mu
      // halo); receiver applies its own V/W.
      auto send_plus = halos_.send_buf(r, mu, +1);
      for (int layer = 0; layer < 3; ++layer) {
        const auto sites = local.face_layer_sites(mu, +1, layer);
        for (std::size_t t = 0; t < sites.size(); ++t) {
          const double* src = in.site(r, sites[t]);
          double* dst =
              send_plus.data() +
              (static_cast<std::size_t>(layer * f) + t) * static_cast<std::size_t>(fd);
          for (int k = 0; k < fd; ++k) dst[k] = src[k];
        }
      }
      // Backward side: layers 0..2 hold W^+ chi (Naik), layer 3 holds
      // V^+ chi (fat) -- all pre-multiplied at the sender so the receiver
      // needs no link halo.
      auto send_minus = halos_.send_buf(r, mu, -1);
      for (int layer = 0; layer < 3; ++layer) {
        const auto sites = local.face_layer_sites(mu, -1, layer);
        for (std::size_t t = 0; t < sites.size(); ++t) {
          const ColorVector chi = load_color_vector(in.site(r, sites[t]));
          const ColorVector wc = adj_mul(long_link(r, sites[t], mu), chi);
          store_color_vector(
              send_minus.data() +
                  (static_cast<std::size_t>(layer * f) + t) *
                      static_cast<std::size_t>(fd),
              wc);
        }
      }
      const auto sites0 = local.face_layer_sites(mu, -1, 0);
      for (std::size_t t = 0; t < sites0.size(); ++t) {
        const ColorVector chi = load_color_vector(in.site(r, sites0[t]));
        const ColorVector vc = adj_mul(fat_link(r, sites0[t], mu), chi);
        store_color_vector(send_minus.data() +
                               (static_cast<std::size_t>(3 * f) + t) *
                                   static_cast<std::size_t>(fd),
                           vc);
      }
    }
  }
}

void AsqtadDirac::compute_sites(DistField& out, const DistField& in,
                                int parity) {
  const auto& local = geom_->local();
  const int fd = kDoublesPerColorVector;
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      if (parity >= 0 && geom_->parity(r, s) != parity) continue;
      ColorVector acc;
      for (int mu = 0; mu < kNd; ++mu) {
        const int f = local.face_volume(mu);
        const double eta = geom_->staggered_phase(r, s, mu);
        const Complex ce(eta, 0.0);

        auto fetch_plus = [&](int dist) {
          const auto n = local.neighbor(s, mu, +1, dist);
          if (n.local) return load_color_vector(in.site(r, n.index));
          return load_color_vector(halos_.recv_buf(r, mu, +1).data() +
                                   static_cast<std::size_t>(n.index) *
                                       static_cast<std::size_t>(fd));
        };
        // Forward fat + Naik: local links at x.
        acc += ce * (fat_link(r, s, mu) * fetch_plus(1));
        acc += ce * (long_link(r, s, mu) * fetch_plus(3));

        // Backward fat: V^+(x-mu) chi(x-mu).
        const auto b1 = local.neighbor(s, mu, -1, 1);
        ColorVector back1;
        if (b1.local) {
          back1 = adj_mul(fat_link(r, b1.index, mu),
                          load_color_vector(in.site(r, b1.index)));
        } else {
          // Slab 3 of the -mu halo carries V^+ chi.
          back1 = load_color_vector(halos_.recv_buf(r, mu, -1).data() +
                                    static_cast<std::size_t>(3 * f + b1.index) *
                                        static_cast<std::size_t>(fd));
        }
        acc -= ce * back1;

        // Backward Naik: W^+(x-3mu) chi(x-3mu).
        const auto b3 = local.neighbor(s, mu, -1, 3);
        ColorVector back3;
        if (b3.local) {
          back3 = adj_mul(long_link(r, b3.index, mu),
                          load_color_vector(in.site(r, b3.index)));
        } else {
          back3 = load_color_vector(halos_.recv_buf(r, mu, -1).data() +
                                    static_cast<std::size_t>(b3.index) *
                                        static_cast<std::size_t>(fd));
        }
        acc -= ce * back3;
      }
      store_color_vector(out.site(r, s), acc);
    }
  }
}

cpu::KernelProfile AsqtadDirac::pack_profile() const {
  const auto& local = geom_->local();
  cpu::KernelProfile p;
  p.name = "asqtad.pack";
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    // Forward: 3 slabs copied (no flops).  Backward: 4 slabs, each an SU(3)
    // matvec (66 flops: 60 fmadd + 6 isolated).
    p.fmadd_flops += f * 4 * 60;
    p.other_flops += f * 4 * 6;
    p.load_bytes += f * (3 * 48 + 4 * (48 + 144));
    p.store_bytes += f * 7 * 48;
  }
  p.edram_bytes = p.load_bytes + p.store_bytes;
  p.streams = 2;
  p.overhead_cycles = 300;
  return p;
}

cpu::KernelProfile AsqtadDirac::site_profile(
    memsys::Region fermion_region) const {
  const auto& local = geom_->local();
  const double v = local.volume();
  cpu::KernelProfile p;
  p.name = "asqtad.site";
  // 16 SU(3) matvecs per site (8 forward V/W at x, 8 backward), 15 vector
  // accumulations: the canonical 1146 flops per site.
  p.fmadd_flops = v * 960;
  p.other_flops = v * 186;
  double link_loads = 0;
  double chi_bytes = 0;
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    link_loads += v * 2 * 144;        // V, W at x (forward)
    link_loads += 2 * (v - f) * 144;  // V, W at backward neighbours
    chi_bytes += 4 * ((v - f) * 48) + 4 * (f * 48);  // chi: 4 fetches per mu
  }
  p.load_bytes = link_loads + chi_bytes;
  p.store_bytes = v * 48;
  chi_bytes += v * 48;  // result store
  // Traffic splits by field residency: the vectors spill out of EDRAM
  // before the smeared links do.
  if (fat_.body_region() == memsys::Region::kDdr) {
    p.ddr_bytes += link_loads;
  } else {
    p.edram_bytes += link_loads;
  }
  if (fermion_region == memsys::Region::kDdr) {
    p.ddr_bytes += chi_bytes;
  } else {
    p.edram_bytes += chi_bytes;
  }
  p.streams = 4;
  // 16 gathers per site over two link fields: heavy address generation.
  p.overhead_cycles = v * 40;
  // Single-vector SU(3) matvecs expose the 5-cycle FPU latency: dependency
  // chains are one third the length of the Wilson half-spinor pairs.
  p.issue_efficiency = 0.62;
  return p;
}

void AsqtadDirac::exchange_and_compute(DistField& out, DistField& in,
                                       int parity) {
  auto& bsp = ops_->bsp();
  const auto& cpu = ops_->cpu();

  pack_faces(in);
  const auto pack = pack_profile();
  bsp.compute(cpu.kernel_cycles(pack));

  // A parity-restricted application touches half the sites.
  auto site = site_profile(in.body_region());
  if (parity >= 0) site = site.scaled(0.5);
  const double site_cycles = cpu.kernel_cycles(site);
  if (params_.overlap_comm && parity < 0) {
    const auto& ext = geom_->local().extent();
    double interior = 1;
    for (int mu = 0; mu < kNd; ++mu) {
      interior *= std::max(ext[static_cast<std::size_t>(mu)] - 6, 0);
    }
    const double frac = interior / geom_->local().volume();
    bsp.overlap(site_cycles * frac, [&] { halos_.post_all_shifts(); });
    compute_sites(out, in, parity);
    bsp.compute(site_cycles * (1.0 - frac));
  } else {
    halos_.post_all_shifts();
    bsp.communicate();
    compute_sites(out, in, parity);
    bsp.compute(site_cycles);
  }
  ops_->account_kernel(pack, geom_->ranks(), Precision::kDouble);
  ops_->account_kernel(site, geom_->ranks(), Precision::kDouble);
}

void AsqtadDirac::dslash(DistField& out, DistField& in) {
  exchange_and_compute(out, in, -1);
}

void AsqtadDirac::dslash_parity(DistField& out, DistField& in, int parity) {
  exchange_and_compute(out, in, parity);
}

void AsqtadDirac::apply_mass(DistField& out, DistField& in, double sign) {
  // out = m*in + sign*out, fused (the xpay of the staggered kernel).
  const double m = params_.mass;
  for (int r = 0; r < in.ranks(); ++r) {
    auto is = in.data(r);
    auto os = out.data(r);
    for (std::size_t i = 0; i < is.size(); ++i) os[i] = m * is[i] + sign * os[i];
  }
  const double n =
      static_cast<double>(geom_->local().volume()) * kDoublesPerColorVector;
  cpu::KernelProfile p;
  p.name = "asqtad.mass";
  p.fmadd_flops = 2 * n;
  p.load_bytes = 16 * n;
  p.store_bytes = 8 * n;
  if (in.body_region() == memsys::Region::kDdr) {
    p.ddr_bytes = p.load_bytes + p.store_bytes;
  } else {
    p.edram_bytes = p.load_bytes + p.store_bytes;
  }
  ops_->account_kernel(p, geom_->ranks(), Precision::kDouble);
  ops_->bsp().compute(ops_->cpu().kernel_cycles(p));
}

void AsqtadDirac::apply(DistField& out, DistField& in) {
  dslash(out, in);
  apply_mass(out, in, +1.0);  // out = m*in + D*in
}

void AsqtadDirac::apply_dag(DistField& out, DistField& in) {
  // D is anti-Hermitian: M^+ = m - D.
  dslash(out, in);
  apply_mass(out, in, -1.0);  // out = m*in - D*in
}

double AsqtadDirac::flops_per_apply() const {
  const double n =
      static_cast<double>(geom_->local().volume()) * kDoublesPerColorVector;
  return pack_profile().flops() + site_profile().flops() + 2 * n;
}

}  // namespace qcdoc::lattice
