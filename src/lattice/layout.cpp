#include "lattice/layout.h"

#include <cassert>

namespace qcdoc::lattice {

LocalGeometry::LocalGeometry(Coord4 extent) : extent_(extent) {
  volume_ = 1;
  for (int e : extent_) {
    assert(e >= 1);
    volume_ *= e;
  }
}

int LocalGeometry::index(const Coord4& x) const {
  int idx = 0;
  for (int mu = kNd - 1; mu >= 0; --mu) {
    const auto m = static_cast<std::size_t>(mu);
    assert(x[m] >= 0 && x[m] < extent_[m]);
    idx = idx * extent_[m] + x[m];
  }
  return idx;
}

Coord4 LocalGeometry::coords(int idx) const {
  Coord4 x;
  for (int mu = 0; mu < kNd; ++mu) {
    const auto m = static_cast<std::size_t>(mu);
    x[m] = idx % extent_[m];
    idx /= extent_[m];
  }
  return x;
}

int LocalGeometry::transverse_index(const Coord4& x, int mu) const {
  int idx = 0;
  for (int nu = kNd - 1; nu >= 0; --nu) {
    if (nu == mu) continue;
    const auto n = static_cast<std::size_t>(nu);
    idx = idx * extent_[n] + x[n];
  }
  return idx;
}

LocalGeometry::Neighbor LocalGeometry::neighbor(int idx, int mu, int dir,
                                                int dist) const {
  assert(dir == 1 || dir == -1);
  assert(dist >= 1);
  const auto m = static_cast<std::size_t>(mu);
  Coord4 x = coords(idx);
  const int target = x[m] + dir * dist;
  Neighbor n;
  if (target >= 0 && target < extent_[m]) {
    x[m] = target;
    n.local = true;
    n.index = index(x);
    return n;
  }
  // Off-node: halo layer counts distance past the boundary, starting at 0.
  assert(dist <= extent_[m] && "halo deeper than the neighbouring node");
  const int layer = dir > 0 ? target - extent_[m] : -target - 1;
  assert(layer >= 0 && layer < extent_[m]);
  n.local = false;
  n.index = layer * face_volume(mu) + transverse_index(x, mu);
  return n;
}

std::vector<int> LocalGeometry::face_layer_sites(int mu, int dir,
                                                 int layer) const {
  // For dir = +1 the receiving neighbour's +mu halo layer `l` holds our
  // sites with x_mu = l (our low face); for dir = -1, x_mu = extent-1-l.
  const auto m = static_cast<std::size_t>(mu);
  assert(layer >= 0 && layer < extent_[m]);
  const int x_mu = dir > 0 ? layer : extent_[m] - 1 - layer;
  std::vector<int> sites(static_cast<std::size_t>(face_volume(mu)));
  for (int idx = 0; idx < volume_; ++idx) {
    const Coord4 x = coords(idx);
    if (x[m] != x_mu) continue;
    sites[static_cast<std::size_t>(transverse_index(x, mu))] = idx;
  }
  return sites;
}

GlobalGeometry::GlobalGeometry(const torus::Partition* partition,
                               Coord4 global_extent)
    : partition_(partition), global_extent_(global_extent) {
  Coord4 local_extent;
  for (int mu = 0; mu < kNd; ++mu) {
    const auto m = static_cast<std::size_t>(mu);
    const int nodes = partition_->logical_shape().extent[mu];
    assert(global_extent_[m] % nodes == 0 &&
           "global lattice must divide evenly over the partition");
    local_extent[m] = global_extent_[m] / nodes;
  }
  // QCD uses at most the first four logical dims; any extra must be trivial.
  for (int l = kNd; l < partition_->logical_dims(); ++l) {
    assert(partition_->logical_shape().extent[l] == 1);
  }
  local_ = LocalGeometry(local_extent);
}

Coord4 GlobalGeometry::global_coords(int rank, int local_idx) const {
  const torus::Coord lc = partition_->logical_coord(rank);
  const Coord4 x = local_.coords(local_idx);
  Coord4 g;
  for (int mu = 0; mu < kNd; ++mu) {
    const auto m = static_cast<std::size_t>(mu);
    g[m] = lc.c[mu] * local_.extent()[m] + x[m];
  }
  return g;
}

int GlobalGeometry::parity(int rank, int local_idx) const {
  const Coord4 g = global_coords(rank, local_idx);
  return (g[0] + g[1] + g[2] + g[3]) & 1;
}

double GlobalGeometry::staggered_phase(int rank, int local_idx, int mu) const {
  const Coord4 g = global_coords(rank, local_idx);
  int sum = 0;
  for (int nu = 0; nu < mu; ++nu) sum += g[static_cast<std::size_t>(nu)];
  return (sum & 1) ? -1.0 : 1.0;
}

std::pair<int, int> GlobalGeometry::owner(const Coord4& global) const {
  torus::Coord lc;
  Coord4 x;
  for (int mu = 0; mu < kNd; ++mu) {
    const auto m = static_cast<std::size_t>(mu);
    const int g =
        ((global[m] % global_extent_[m]) + global_extent_[m]) % global_extent_[m];
    lc.c[mu] = g / local_.extent()[m];
    x[m] = g % local_.extent()[m];
  }
  return {partition_->rank(lc), local_.index(x)};
}

}  // namespace qcdoc::lattice
