#include "lattice/linalg.h"

#include <cassert>

#include "comms/global_sum.h"

namespace qcdoc::lattice {

PrecisionTraffic& PrecisionTraffic::operator+=(const PrecisionTraffic& o) {
  flops += o.flops;
  load_bytes += o.load_bytes;
  store_bytes += o.store_bytes;
  edram_bytes += o.edram_bytes;
  ddr_bytes += o.ddr_bytes;
  return *this;
}

PrecisionTraffic PrecisionTraffic::operator-(const PrecisionTraffic& o) const {
  PrecisionTraffic d;
  d.flops = flops - o.flops;
  d.load_bytes = load_bytes - o.load_bytes;
  d.store_bytes = store_bytes - o.store_bytes;
  d.edram_bytes = edram_bytes - o.edram_bytes;
  d.ddr_bytes = ddr_bytes - o.ddr_bytes;
  return d;
}

TrafficByPrecision operator-(const TrafficByPrecision& a,
                             const TrafficByPrecision& b) {
  TrafficByPrecision d;
  for (int i = 0; i < kNumPrecisions; ++i) {
    d[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] -
                                     b[static_cast<std::size_t>(i)];
  }
  return d;
}

double total_bytes(const TrafficByPrecision& t) {
  double s = 0;
  for (const auto& p : t) s += p.bytes();
  return s;
}

double total_flops(const TrafficByPrecision& t) {
  double s = 0;
  for (const auto& p : t) s += p.flops;
  return s;
}

cpu::KernelProfile FieldOps::stream_profile(
    std::initializer_list<const DistField*> reads, const DistField* write,
    double fmadd_per_double, double other_per_double) {
  const DistField* ref = reads.size() > 0 ? *reads.begin() : write;
  const double n = static_cast<double>(ref->geometry().local().volume()) *
                   ref->site_doubles();
  cpu::KernelProfile p;
  p.name = "blas";
  p.fmadd_flops = fmadd_per_double * n;
  p.other_flops = other_per_double * n;
  double load_width = 0;
  for (const DistField* f : reads) load_width += bytes_per_double(f->precision());
  p.load_bytes = n * load_width;
  p.store_bytes = write != nullptr ? n * bytes_per_double(write->precision())
                                   : 0.0;
  const double traffic = p.load_bytes + p.store_bytes;
  const bool edram = ref->body_region() == memsys::Region::kEdram;
  if (edram) {
    p.edram_bytes = traffic;
  } else {
    p.ddr_bytes = traffic;
  }
  p.streams = static_cast<int>(reads.size()) + (write != nullptr ? 1 : 0);
  p.overhead_cycles = 32;  // loop setup

  // Ledger: each operand's bytes go to its own precision bucket; the flops
  // count as work at the narrowest operand precision (the "sloppy" grade of
  // the whole pass).
  Precision narrowest = Precision::kDouble;
  const auto widen = [&narrowest](const DistField* f) {
    if (precision_index(f->precision()) > precision_index(narrowest)) {
      narrowest = f->precision();
    }
  };
  for (const DistField* f : reads) widen(f);
  if (write != nullptr) widen(write);
  traffic_[static_cast<std::size_t>(precision_index(narrowest))].flops +=
      p.flops();
  const auto credit_bytes = [&](const DistField* f, double bytes, bool load) {
    auto& t = traffic_[static_cast<std::size_t>(precision_index(f->precision()))];
    (load ? t.load_bytes : t.store_bytes) += bytes;
    (edram ? t.edram_bytes : t.ddr_bytes) += bytes;
  };
  for (const DistField* f : reads) {
    credit_bytes(f, n * bytes_per_double(f->precision()), /*load=*/true);
  }
  if (write != nullptr) credit_bytes(write, p.store_bytes, /*load=*/false);

  flops_ += p.flops();
  return p;
}

void FieldOps::finish_write(DistField& y) {
  if (y.precision() == Precision::kDouble) return;
  for (int r = 0; r < y.ranks(); ++r) {
    quantize_in_place(y.data(r), y.precision(), y.quant_block_words());
  }
}

void FieldOps::account_kernel(const cpu::KernelProfile& per_node, int ranks,
                              Precision p) {
  const double k = static_cast<double>(ranks);
  const double f = per_node.flops() * k;
  flops_ += f;
  auto& t = traffic_[static_cast<std::size_t>(precision_index(p))];
  t.flops += f;
  t.load_bytes += per_node.load_bytes * k;
  t.store_bytes += per_node.store_bytes * k;
  t.edram_bytes += per_node.edram_bytes * k;
  t.ddr_bytes += per_node.ddr_bytes * k;
}

void FieldOps::axpy(double a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] += a * xs[i];
  }
  finish_write(y);
  const auto p = stream_profile({&x, &y}, &y, /*fmadd=*/2.0, /*other=*/0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::xpay(const DistField& x, double a, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = xs[i] + a * ys[i];
  }
  finish_write(y);
  const auto p = stream_profile({&x, &y}, &y, 2.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::axpby(double a, const DistField& x, double b, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = a * xs[i] + b * ys[i];
  }
  finish_write(y);
  const auto p = stream_profile({&x, &y}, &y, 2.0, 1.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::scale_copy(double a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = a * xs[i];
  }
  finish_write(y);
  const auto p = stream_profile({&x}, &y, 0.0, 1.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::copy(const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = xs[i];
  }
  finish_write(y);
  const auto p = stream_profile({&x}, &y, 0.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::zero(DistField& y) {
  y.zero();
  const auto p = stream_profile({}, &y, 0.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

double FieldOps::global_sum(double local_flops, std::vector<double> partials) {
  flops_ += local_flops * static_cast<double>(partials.size());
  const auto result = comm_->global_sum(partials);
  bsp_->global_op(result.cycles);
  return result.value;
}

double FieldOps::norm2(const DistField& x) {
  std::vector<double> partials(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    double s = 0;
    for (double v : xs) s += v * v;
    partials[static_cast<std::size_t>(r)] = s;
  }
  const auto p = stream_profile({&x}, nullptr, 2.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
  return global_sum(0.0, std::move(partials));
}

Complex FieldOps::cdot(const DistField& x, const DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  std::vector<double> re(static_cast<std::size_t>(x.ranks()), 0.0);
  std::vector<double> im(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    double sr = 0, si = 0;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      // conj(x) * y = (xr - i xi)(yr + i yi)
      sr += xs[i] * ys[i] + xs[i + 1] * ys[i + 1];
      si += xs[i] * ys[i + 1] - xs[i + 1] * ys[i];
    }
    re[static_cast<std::size_t>(r)] = sr;
    im[static_cast<std::size_t>(r)] = si;
  }
  const auto p = stream_profile({&x, &y}, nullptr, 4.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
  // Both words ride the same dimension-wise ring passes, pipelined.
  const double sum_re = comms::partition_global_sum(comm_->partition(), re);
  const double sum_im = comms::partition_global_sum(comm_->partition(), im);
  scu::GlobalOpTiming t = comm_->global_timing();
  bsp_->global_op(comms::partition_global_sum_cycles(comm_->partition(), t,
                                                     /*doubled=*/true,
                                                     /*words=*/2));
  return Complex(sum_re, sum_im);
}

void FieldOps::caxpy(const Complex& a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      ys[i] += a.real() * xs[i] - a.imag() * xs[i + 1];
      ys[i + 1] += a.real() * xs[i + 1] + a.imag() * xs[i];
    }
  }
  finish_write(y);
  const auto p = stream_profile({&x, &y}, &y, 4.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::cxpay(const DistField& x, const Complex& a, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const double yr = ys[i];
      const double yi = ys[i + 1];
      ys[i] = xs[i] + a.real() * yr - a.imag() * yi;
      ys[i + 1] = xs[i + 1] + a.real() * yi + a.imag() * yr;
    }
  }
  finish_write(y);
  const auto p = stream_profile({&x, &y}, &y, 4.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

double FieldOps::dot_re(const DistField& x, const DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  std::vector<double> partials(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    double s = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) s += xs[i] * ys[i];
    partials[static_cast<std::size_t>(r)] = s;
  }
  const auto p = stream_profile({&x, &y}, nullptr, 2.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
  return global_sum(0.0, std::move(partials));
}

}  // namespace qcdoc::lattice
