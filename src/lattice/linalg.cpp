#include "lattice/linalg.h"

#include <cassert>

#include "comms/global_sum.h"

namespace qcdoc::lattice {

cpu::KernelProfile FieldOps::stream_profile(const DistField& ref, int n_read,
                                            bool writes,
                                            double fmadd_per_double,
                                            double other_per_double) const {
  const double n = static_cast<double>(ref.geometry().local().volume()) *
                   ref.site_doubles();
  cpu::KernelProfile p;
  p.name = "blas";
  p.fmadd_flops = fmadd_per_double * n;
  p.other_flops = other_per_double * n;
  p.load_bytes = 8.0 * n * n_read;
  p.store_bytes = writes ? 8.0 * n : 0.0;
  const double traffic = p.load_bytes + p.store_bytes;
  if (ref.body_region() == memsys::Region::kEdram) {
    p.edram_bytes = traffic;
  } else {
    p.ddr_bytes = traffic;
  }
  p.streams = n_read + (writes ? 1 : 0);
  p.overhead_cycles = 32;  // loop setup
  return p;
}

void FieldOps::axpy(double a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] += a * xs[i];
  }
  const auto p = stream_profile(x, 2, true, /*fmadd=*/2.0, /*other=*/0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::xpay(const DistField& x, double a, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = xs[i] + a * ys[i];
  }
  const auto p = stream_profile(x, 2, true, 2.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::scale_copy(double a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = a * xs[i];
  }
  const auto p = stream_profile(x, 1, true, 0.0, 1.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::copy(const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = xs[i];
  }
  const auto p = stream_profile(x, 1, true, 0.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::zero(DistField& y) {
  y.zero();
  const auto p = stream_profile(y, 0, true, 0.0, 0.0);
  bsp_->compute(cpu_->kernel_cycles(p));
}

double FieldOps::global_sum(double local_flops, std::vector<double> partials) {
  flops_ += local_flops * static_cast<double>(partials.size());
  const auto result = comm_->global_sum(partials);
  bsp_->global_op(result.cycles);
  return result.value;
}

double FieldOps::norm2(const DistField& x) {
  std::vector<double> partials(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    double s = 0;
    for (double v : xs) s += v * v;
    partials[static_cast<std::size_t>(r)] = s;
  }
  const auto p = stream_profile(x, 1, false, 2.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
  return global_sum(0.0, std::move(partials));
}

Complex FieldOps::cdot(const DistField& x, const DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  std::vector<double> re(static_cast<std::size_t>(x.ranks()), 0.0);
  std::vector<double> im(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    double sr = 0, si = 0;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      // conj(x) * y = (xr - i xi)(yr + i yi)
      sr += xs[i] * ys[i] + xs[i + 1] * ys[i + 1];
      si += xs[i] * ys[i + 1] - xs[i + 1] * ys[i];
    }
    re[static_cast<std::size_t>(r)] = sr;
    im[static_cast<std::size_t>(r)] = si;
  }
  const auto p = stream_profile(x, 2, false, 4.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
  // Both words ride the same dimension-wise ring passes, pipelined.
  const double sum_re = comms::partition_global_sum(comm_->partition(), re);
  const double sum_im = comms::partition_global_sum(comm_->partition(), im);
  scu::GlobalOpTiming t = comm_->global_timing();
  bsp_->global_op(comms::partition_global_sum_cycles(comm_->partition(), t,
                                                     /*doubled=*/true,
                                                     /*words=*/2));
  return Complex(sum_re, sum_im);
}

void FieldOps::caxpy(const Complex& a, const DistField& x, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      ys[i] += a.real() * xs[i] - a.imag() * xs[i + 1];
      ys[i + 1] += a.real() * xs[i + 1] + a.imag() * xs[i];
    }
  }
  const auto p = stream_profile(x, 2, true, 4.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
}

void FieldOps::cxpay(const DistField& x, const Complex& a, DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const double yr = ys[i];
      const double yi = ys[i + 1];
      ys[i] = xs[i] + a.real() * yr - a.imag() * yi;
      ys[i + 1] = xs[i + 1] + a.real() * yi + a.imag() * yr;
    }
  }
  const auto p = stream_profile(x, 2, true, 4.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
}

double FieldOps::dot_re(const DistField& x, const DistField& y) {
  assert(x.site_doubles() == y.site_doubles());
  std::vector<double> partials(static_cast<std::size_t>(x.ranks()), 0.0);
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    double s = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) s += xs[i] * ys[i];
    partials[static_cast<std::size_t>(r)] = s;
  }
  const auto p = stream_profile(x, 2, false, 2.0, 0.0);
  flops_ += p.flops();
  bsp_->compute(cpu_->kernel_cycles(p));
  return global_sum(0.0, std::move(partials));
}

}  // namespace qcdoc::lattice
