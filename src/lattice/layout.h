// Lattice geometry: the 4-D space-time grid, its decomposition onto the
// machine partition, site indexing, boundary faces and halo layout.
//
// Each node owns an identical local volume (paper: "no load balancing is
// needed beyond the initial trivial mapping of the physics coordinate grid
// to the machine mesh"); a 4-D machine partition assigns each processor a
// space-time hypercube.  Halo buffers hold `depth` face layers per
// direction, supporting nearest-neighbour operators (depth 1) and the
// improved ASQTAD action's third-nearest-neighbour Naik term (depth 3).
#pragma once

#include <array>
#include <vector>

#include "torus/partition.h"

namespace qcdoc::lattice {

inline constexpr int kNd = 4;  ///< space-time dimensions

using Coord4 = std::array<int, kNd>;

/// Geometry of one node's local volume.
class LocalGeometry {
 public:
  LocalGeometry() = default;
  explicit LocalGeometry(Coord4 extent);

  const Coord4& extent() const { return extent_; }
  int volume() const { return volume_; }
  int face_volume(int mu) const { return volume_ / extent_[static_cast<std::size_t>(mu)]; }

  int index(const Coord4& x) const;
  Coord4 coords(int idx) const;

  /// Lexicographic index over the coordinates transverse to `mu` (the
  /// canonical face-buffer ordering).
  int transverse_index(const Coord4& x, int mu) const;

  /// Neighbour of site `idx` at distance `dist` along mu in direction
  /// dir = +-1.  `local` is false when the neighbour is off-node; then
  /// `index` addresses the halo buffer: layer * face_volume + transverse.
  struct Neighbor {
    bool local = true;
    int index = 0;
  };
  Neighbor neighbor(int idx, int mu, int dir, int dist = 1) const;

  /// Local sites in layer `layer` (distance from the `dir` boundary) of the
  /// `mu` face, ordered by transverse index: the canonical packing order.
  std::vector<int> face_layer_sites(int mu, int dir, int layer) const;

 private:
  Coord4 extent_{1, 1, 1, 1};
  int volume_ = 1;
};

/// The global problem: a 4-D lattice distributed over a 4-D logical machine
/// partition (extra logical dims must have extent 1).
class GlobalGeometry {
 public:
  GlobalGeometry(const torus::Partition* partition, Coord4 global_extent);

  const torus::Partition& partition() const { return *partition_; }
  const Coord4& global_extent() const { return global_extent_; }
  const LocalGeometry& local() const { return local_; }
  int ranks() const { return partition_->num_nodes(); }
  /// Nodes along lattice dimension mu.
  int nodes_in_dim(int mu) const {
    return partition_->logical_shape().extent[mu];
  }

  /// Global coordinate of a local site on a rank.
  Coord4 global_coords(int rank, int local_idx) const;
  /// Site parity (even/odd) from global coordinates.
  int parity(int rank, int local_idx) const;
  /// Kogut-Susskind phase eta_mu at a site.
  double staggered_phase(int rank, int local_idx, int mu) const;
  /// (rank, local index) owning a global coordinate (periodic).
  std::pair<int, int> owner(const Coord4& global) const;

 private:
  const torus::Partition* partition_;
  Coord4 global_extent_;
  LocalGeometry local_;
};

}  // namespace qcdoc::lattice
