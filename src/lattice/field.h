// Distributed lattice fields and halo communication buffers.
//
// A DistField owns one storage block per partition rank, allocated in that
// node's simulated memory (EDRAM first, spilling to DDR -- which is what
// drives the paper's volume/efficiency cliff).
//
// Halo buffers live in a separate HaloSet owned by each Dirac operator and
// shared across all the vectors it is applied to, exactly as the real run
// kernels kept one set of SCU communication buffers per operator: Krylov
// solvers hold many vectors, but only the operand of the current Dslash
// needs faces in flight.  Halo exchanges run as real SCU DMA transfers
// through the packet-level network simulation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "comms/comms.h"
#include "lattice/gamma.h"
#include "lattice/layout.h"
#include "lattice/precision.h"
#include "machine/bsp.h"

namespace qcdoc::lattice {

/// Per-rank body storage of a distributed field.
class DistField {
 public:
  DistField(comms::Communicator* comm, const GlobalGeometry* geom,
            int site_doubles, const std::string& label);

  const GlobalGeometry& geometry() const { return *geom_; }
  comms::Communicator& comm() const { return *comm_; }
  int ranks() const { return geom_->ranks(); }
  int site_doubles() const { return site_doubles_; }

  std::span<double> data(int rank);
  std::span<const double> data(int rank) const;
  double* site(int rank, int site_idx);
  const double* site(int rank, int site_idx) const;

  /// Whether this field's body lives in EDRAM on every node (determines the
  /// memory-region term of the kernel profiles).
  memsys::Region body_region() const;

  /// The rank's underlying allocation (node + word address range).  Fault
  /// campaigns use this to aim memory upsets at a specific field's storage.
  const memsys::Block& block(int rank) const {
    return blocks_[static_cast<std::size_t>(rank)];
  }

  /// Zero the body on all ranks.
  void zero();

  /// Storage precision of the body.  Values are always held as host doubles;
  /// a narrower precision means every store through FieldOps rounds the
  /// written words to the representable set (float, or 16-bit block float
  /// per site block) and the timing model charges the narrow traffic.
  Precision precision() const { return precision_; }
  void set_precision(Precision p) { precision_ = p; }

  /// Block size of the half-precision codec for this field: one site block
  /// (capped so deep fifth-dimension fields still share per-spinor-slice
  /// exponents rather than one exponent per 5-D column).
  int quant_block_words() const {
    return site_doubles_ <= 2 * kDoublesPerSpinor ? site_doubles_
                                                  : kDoublesPerSpinor;
  }

 private:
  comms::Communicator* comm_;
  const GlobalGeometry* geom_;
  int site_doubles_;
  Precision precision_ = Precision::kDouble;
  std::vector<memsys::Block> blocks_;
};

/// Send/receive face buffers for one operator, with the posting logic that
/// turns them into SCU DMA transfers over the partition.
///
/// Buffer direction indices name the HALO SIDE they serve: recv_buf(mu,+1)
/// holds data from the +mu neighbour (its low face); send_buf(mu,+1) is this
/// node's own low face (x_mu = 0..slabs-1), which fills the -mu neighbour's
/// recv_buf(mu,+1).  Slab `l` of a buffer corresponds to
/// face_layer_sites(mu, dir, l).
class HaloSet {
 public:
  /// `halo_doubles` per face site per slab; per-side slab counts support
  /// asymmetric halos (ASQTAD: 3 plain forward slabs, 4 pre-multiplied
  /// backward slabs).
  HaloSet(comms::Communicator* comm, const GlobalGeometry* geom,
          int halo_doubles, int halo_slabs_plus, int halo_slabs_minus,
          const std::string& label);

  int halo_doubles() const { return halo_doubles_; }
  int halo_slabs(int dir = +1) const {
    return halo_slabs_[dir > 0 ? 0 : 1];
  }

  std::span<double> send_buf(int rank, int mu, int dir);
  std::span<double> recv_buf(int rank, int mu, int dir);
  std::span<const double> recv_buf(int rank, int mu, int dir) const;

  /// Post the halo shifts for dimension mu in both directions.  The caller
  /// packs send buffers first and drains afterwards (machine::BspRunner).
  /// Dimensions spanned by a single node become local copies.
  void post_shift(int mu);
  void post_all_shifts();
  bool dim_is_distributed(int mu) const {
    return geom_->nodes_in_dim(mu) > 1;
  }

  /// Bytes sent per node for one full exchange (all distributed dims).
  double bytes_per_node() const;

 private:
  struct RankStorage {
    // [mu][dir(0:+,1:-)]
    std::array<std::array<memsys::Block, 2>, kNd> send;
    std::array<std::array<memsys::Block, 2>, kNd> recv;
  };

  comms::Communicator* comm_;
  const GlobalGeometry* geom_;
  int halo_doubles_;
  std::array<int, 2> halo_slabs_;
  std::vector<RankStorage> storage_;
};

// --- serialization between math types and field storage --------------------

void store_su3(double* p, const Su3Matrix& u);
Su3Matrix load_su3(const double* p);
void store_spinor(double* p, const Spinor& s);
Spinor load_spinor(const double* p);
void store_half_spinor(double* p, const HalfSpinor& h);
HalfSpinor load_half_spinor(const double* p);
void store_color_vector(double* p, const ColorVector& v);
ColorVector load_color_vector(const double* p);

}  // namespace qcdoc::lattice
