#include "lattice/eo_cg.h"

#include <cmath>

#include "common/log.h"
#include "comms/global_sum.h"

namespace qcdoc::lattice {
namespace {

/// Parity-restricted streaming linear algebra.  Functional loops touch only
/// sites of `parity`; machine time is accounted as half-volume streams.
class ParityOps {
 public:
  ParityOps(FieldOps* ops, const GlobalGeometry* geom, int parity)
      : ops_(ops), geom_(geom), parity_(parity) {}

  void copy(const DistField& a, DistField& b) const {
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      double* pb = b.site(r, s);
      for (int k = 0; k < a.site_doubles(); ++k) pb[k] = pa[k];
    });
    account(a, 1, true, 0, 0);
  }

  void axpy(double alpha, const DistField& a, DistField& b) const {
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      double* pb = b.site(r, s);
      for (int k = 0; k < a.site_doubles(); ++k) pb[k] += alpha * pa[k];
    });
    account(a, 2, true, 2, 0);
  }

  void xpay(const DistField& a, double alpha, DistField& b) const {
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      double* pb = b.site(r, s);
      for (int k = 0; k < a.site_doubles(); ++k) {
        pb[k] = pa[k] + alpha * pb[k];
      }
    });
    account(a, 2, true, 2, 0);
  }

  /// b = alpha * a + beta * b.
  void lincomb(double alpha, const DistField& a, double beta,
               DistField& b) const {
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      double* pb = b.site(r, s);
      for (int k = 0; k < a.site_doubles(); ++k) {
        pb[k] = alpha * pa[k] + beta * pb[k];
      }
    });
    account(a, 2, true, 3, 0);
  }

  /// gamma_5 on this parity's sites (spin components 2,3 negate).
  void gamma5(DistField& f) const {
    for_sites(f, [&](int r, int s) {
      double* p = f.site(r, s);
      for (int k = 12; k < 24; ++k) p[k] = -p[k];
    });
  }

  /// b = m2 * a - b  (the Schur-complement assembly).
  void m2_minus(double m2, const DistField& a, DistField& b) const {
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      double* pb = b.site(r, s);
      for (int k = 0; k < a.site_doubles(); ++k) {
        pb[k] = m2 * pa[k] - pb[k];
      }
    });
    account(a, 2, true, 2, 0);
  }

  double norm2(const DistField& a) const {
    std::vector<double> partials(static_cast<std::size_t>(a.ranks()), 0.0);
    for_sites(a, [&](int r, int s) {
      const double* p = a.site(r, s);
      double acc = 0;
      for (int k = 0; k < a.site_doubles(); ++k) acc += p[k] * p[k];
      partials[static_cast<std::size_t>(r)] += acc;
    });
    account(a, 1, false, 2, 0);
    return global_sum(partials);
  }

  double dot_re(const DistField& a, const DistField& b) const {
    std::vector<double> partials(static_cast<std::size_t>(a.ranks()), 0.0);
    for_sites(a, [&](int r, int s) {
      const double* pa = a.site(r, s);
      const double* pb = b.site(r, s);
      double acc = 0;
      for (int k = 0; k < a.site_doubles(); ++k) acc += pa[k] * pb[k];
      partials[static_cast<std::size_t>(r)] += acc;
    });
    account(a, 2, false, 2, 0);
    return global_sum(partials);
  }

 private:
  template <typename Fn>
  void for_sites(const DistField& f, Fn&& fn) const {
    for (int r = 0; r < f.ranks(); ++r) {
      for (int s = 0; s < geom_->local().volume(); ++s) {
        if (geom_->parity(r, s) == parity_) fn(r, s);
      }
    }
  }

  void account(const DistField& ref, int reads, bool writes,
               double fmadd_per_double, double other_per_double) const {
    const double n = 0.5 * geom_->local().volume() * ref.site_doubles();
    cpu::KernelProfile p;
    p.name = "eo.blas";
    p.fmadd_flops = fmadd_per_double * n;
    p.other_flops = other_per_double * n;
    p.load_bytes = 8.0 * n * reads;
    p.store_bytes = writes ? 8.0 * n : 0.0;
    const double traffic = p.load_bytes + p.store_bytes;
    if (ref.body_region() == memsys::Region::kEdram) {
      p.edram_bytes = traffic;
    } else {
      p.ddr_bytes = traffic;
    }
    p.streams = reads + (writes ? 1 : 0);
    p.overhead_cycles = 32;
    ops_->account_kernel(p, 1, Precision::kDouble);
    ops_->bsp().compute(ops_->cpu().kernel_cycles(p));
  }

  double global_sum(std::vector<double>& partials) const {
    const auto result = ops_->comm().global_sum(partials);
    ops_->bsp().global_op(result.cycles);
    return result.value;
  }

  FieldOps* ops_;
  const GlobalGeometry* geom_;
  int parity_;
};

}  // namespace

CgResult asqtad_eo_solve(AsqtadDirac& op, DistField& x, DistField& b,
                         const CgParams& params) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();
  const auto& geom = op.geometry();
  const double m = op.params().mass;
  const double m2 = m * m;

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  ParityOps even(&ops, &geom, 0);
  ParityOps odd(&ops, &geom, 1);

  DistField tmp = op.make_field("eo.tmp");
  DistField r = op.make_field("eo.r");
  DistField p = op.make_field("eo.p");
  DistField ap = op.make_field("eo.ap");

  // rhs_e = m b_e - (D b)_e, materialized into r (x = 0 start).
  tmp.zero();
  r.zero();
  op.dslash_parity(r, b, /*parity=*/0);  // r_e = (D b)_e
  even.m2_minus(m, b, r);                // r_e = m b_e - (D b)_e

  // p starts as r on even sites, zero on odd (dslash_parity(.., p, odd)
  // must see a pure-even field).
  p.zero();
  even.copy(r, p);

  double rsq = even.norm2(r);
  const double rhs_norm2 = rsq > 0 ? rsq : 1.0;
  const double target = params.tolerance * params.tolerance * rhs_norm2;

  CgResult result;
  const int iters = params.fixed_iterations > 0 ? params.fixed_iterations
                                                : params.max_iterations;
  for (int it = 0; it < iters; ++it) {
    // ap_e = A p = m^2 p_e - (D_eo D_oe p)_e : two half-volume Dslashes.
    op.dslash_parity(tmp, p, /*parity=*/1);  // tmp_o = (D p)_o
    op.dslash_parity(ap, tmp, /*parity=*/0); // ap_e = (D tmp)_e
    even.m2_minus(m2, p, ap);                // ap_e = m^2 p_e - ap_e

    const double p_ap = even.dot_re(p, ap);
    if (p_ap == 0.0) break;
    const double alpha = rsq / p_ap;
    even.axpy(alpha, p, x);
    even.axpy(-alpha, ap, r);
    const double rsq_new = even.norm2(r);
    result.iterations = it + 1;
    if (params.fixed_iterations == 0 && rsq_new < target) {
      result.converged = true;
      rsq = rsq_new;
      break;
    }
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    even.xpay(r, beta, p);
  }

  // Reconstruct the odd half: x_o = (b_o - (D x)_o) / m.
  op.dslash_parity(tmp, x, /*parity=*/1);  // tmp_o = (D x)_o
  for (int rk = 0; rk < x.ranks(); ++rk) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      if (geom.parity(rk, s) != 1) continue;
      const double* pb = b.site(rk, s);
      const double* pt = tmp.site(rk, s);
      double* px = x.site(rk, s);
      for (int k = 0; k < x.site_doubles(); ++k) {
        px[k] = (pb[k] - pt[k]) / m;
      }
    }
  }
  odd.axpy(0.0, b, x);  // account the reconstruction pass's stream cost

  // Full-system residual: |b - M x| / |b|.
  DistField mx = op.make_field("eo.mx");
  op.apply(mx, x);
  ops.axpy(-1.0, b, mx);
  const double full_r = ops.norm2(mx);
  const double full_b = ops.norm2(b);
  result.relative_residual = full_b > 0 ? std::sqrt(full_r / full_b) : 0.0;
  if (params.fixed_iterations > 0) {
    result.converged = result.relative_residual <= params.tolerance;
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "eo-cg[asqtad]: " << result.iterations
             << " iterations, |r|/|b| = " << result.relative_residual;
  return result;
}

CgResult wilson_eo_solve(WilsonDirac& op, DistField& x, DistField& b,
                         const CgParams& params) {
  FieldOps& ops = op.ops();
  auto& bsp = ops.bsp();
  const auto& geom = op.geometry();
  const double kappa = op.params().kappa;
  const double k2 = kappa * kappa;

  const Cycle start_cycle = bsp.now();
  const double start_flops = ops.flops();
  const double start_compute = bsp.compute_cycles();
  const double start_comm = bsp.comm_cycles();
  const double start_global = bsp.global_cycles();
  const TrafficByPrecision start_traffic = ops.traffic();

  ParityOps even(&ops, &geom, 0);

  DistField tmp = op.make_field("weo.tmp");
  DistField t2 = op.make_field("weo.t2");
  DistField r = op.make_field("weo.r");
  DistField p = op.make_field("weo.p");
  DistField ap = op.make_field("weo.ap");

  // Mhat v (v pure-even): out_e = v_e - kappa^2 (D (D v)_odd)_e.
  const auto apply_mhat = [&](DistField& out, DistField& v) {
    op.dslash_parity(tmp, v, /*parity=*/1);   // tmp_o = (D v)_o
    op.dslash_parity(out, tmp, /*parity=*/0); // out_e = (D tmp)_e
    even.lincomb(1.0, v, -k2, out);           // out_e = v_e - k^2 out_e
  };
  // Mhat^+ = g5 Mhat g5 on the even sublattice.
  const auto apply_mhat_dag = [&](DistField& out, DistField& v) {
    even.gamma5(v);
    apply_mhat(out, v);
    even.gamma5(v);
    even.gamma5(out);
  };

  // rhs_e = b_e + kappa (D b)_e, built into t2 (pure even).
  tmp.zero();
  t2.zero();
  op.dslash_parity(t2, b, /*parity=*/0);  // t2_e = (D b)_e
  even.lincomb(1.0, b, kappa, t2);        // t2_e = b_e + kappa t2_e

  // Normal equations on the even sublattice: r = Mhat^+ rhs (x = 0).
  r.zero();
  apply_mhat_dag(r, t2);
  p.zero();
  even.copy(r, p);

  double rsq = even.norm2(r);
  const double rhs_norm2 = rsq > 0 ? rsq : 1.0;
  const double target = params.tolerance * params.tolerance * rhs_norm2;

  CgResult result;
  const int iters = params.fixed_iterations > 0 ? params.fixed_iterations
                                                : params.max_iterations;
  DistField mp = op.make_field("weo.mp");
  for (int it = 0; it < iters; ++it) {
    apply_mhat(mp, p);
    apply_mhat_dag(ap, mp);
    const double p_ap = even.dot_re(p, ap);
    if (p_ap == 0.0) break;
    const double alpha = rsq / p_ap;
    even.axpy(alpha, p, x);
    even.axpy(-alpha, ap, r);
    const double rsq_new = even.norm2(r);
    result.iterations = it + 1;
    if (params.fixed_iterations == 0 && rsq_new < target) {
      result.converged = true;
      rsq = rsq_new;
      break;
    }
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    even.xpay(r, beta, p);
  }

  // Odd reconstruction: x_o = b_o + kappa (D x)_o.
  op.dslash_parity(tmp, x, /*parity=*/1);
  for (int rk = 0; rk < x.ranks(); ++rk) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      if (geom.parity(rk, s) != 1) continue;
      const double* pb = b.site(rk, s);
      const double* pt = tmp.site(rk, s);
      double* px = x.site(rk, s);
      for (int k = 0; k < x.site_doubles(); ++k) {
        px[k] = pb[k] + kappa * pt[k];
      }
    }
  }
  ParityOps odd(&ops, &geom, 1);
  odd.axpy(0.0, b, x);  // account the reconstruction stream pass

  // Full-system residual.
  DistField mx = op.make_field("weo.mx");
  op.apply(mx, x);
  ops.axpy(-1.0, b, mx);
  const double full_r = ops.norm2(mx);
  const double full_b = ops.norm2(b);
  result.relative_residual = full_b > 0 ? std::sqrt(full_r / full_b) : 0.0;
  if (params.fixed_iterations > 0) {
    result.converged = result.relative_residual <= params.tolerance;
  }

  result.cycles = bsp.now() - start_cycle;
  result.flops = ops.flops() - start_flops;
  result.compute_cycles = bsp.compute_cycles() - start_compute;
  result.comm_cycles = bsp.comm_cycles() - start_comm;
  result.global_cycles = bsp.global_cycles() - start_global;
  result.traffic = ops.traffic() - start_traffic;
  QCDOC_INFO << "eo-cg[wilson]: " << result.iterations
             << " iterations, |r|/|b| = " << result.relative_residual;
  return result;
}

}  // namespace qcdoc::lattice
