#include "lattice/wilson.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>

namespace qcdoc::lattice {
namespace {

/// Halo words per face site: half spinors travel as 12 doubles, 12 packed
/// floats (6 words), or 12 block-float mantissas + shared exponent (4 words).
int halo_words(Precision p) {
  switch (p) {
    case Precision::kSingle:
      return 6;
    case Precision::kHalf:
      return 4;
    case Precision::kDouble:
    default:
      return 12;
  }
}

void pack_half(double* dst, const HalfSpinor& h, Precision prec) {
  if (prec == Precision::kDouble) {
    store_half_spinor(dst, h);
    return;
  }
  if (prec == Precision::kHalf) {
    double v[12];
    store_half_spinor(v, h);
    std::int16_t mant[12];
    const std::int32_t e = block_float_encode(std::span<const double>(v, 12),
                                              std::span<std::int16_t>(mant, 12));
    unsigned char raw[32] = {};
    std::memcpy(raw, mant, sizeof(mant));
    std::memcpy(raw + sizeof(mant), &e, sizeof(e));
    std::memcpy(dst, raw, sizeof(raw));
    return;
  }
  float tmp[12];
  for (int sp = 0; sp < 2; ++sp) {
    for (int c = 0; c < 3; ++c) {
      tmp[2 * (3 * sp + c)] = static_cast<float>(h[sp][c].real());
      tmp[2 * (3 * sp + c) + 1] = static_cast<float>(h[sp][c].imag());
    }
  }
  std::memcpy(dst, tmp, sizeof(tmp));
}

HalfSpinor unpack_half(const double* src, Precision prec) {
  if (prec == Precision::kDouble) return load_half_spinor(src);
  if (prec == Precision::kHalf) {
    unsigned char raw[32];
    std::memcpy(raw, src, sizeof(raw));
    std::int16_t mant[12];
    std::int32_t e = 0;
    std::memcpy(mant, raw, sizeof(mant));
    std::memcpy(&e, raw + sizeof(mant), sizeof(e));
    double v[12];
    block_float_decode(e, std::span<const std::int16_t>(mant, 12),
                       std::span<double>(v, 12));
    return load_half_spinor(v);
  }
  float tmp[12];
  std::memcpy(tmp, src, sizeof(tmp));
  HalfSpinor h;
  for (int sp = 0; sp < 2; ++sp) {
    for (int c = 0; c < 3; ++c) {
      h[sp][c] = Complex(tmp[2 * (3 * sp + c)], tmp[2 * (3 * sp + c) + 1]);
    }
  }
  return h;
}

/// Fold the legacy single_precision flag into the precision enum (and keep
/// the flag consistent so either spelling reads true).
WilsonParams normalize(WilsonParams p) {
  if (p.single_precision && p.precision == Precision::kDouble) {
    p.precision = Precision::kSingle;
  }
  p.single_precision = p.precision == Precision::kSingle;
  return p;
}

}  // namespace

WilsonDirac::WilsonDirac(FieldOps* ops, const GlobalGeometry* geom,
                         GaugeField* gauge, WilsonParams params)
    : DiracOperator(ops, geom),
      gauge_(gauge),
      params_(normalize(params)),
      halos_(&ops->comm(), geom, halo_doubles(), 1, 1, "wilson.halo") {}

void WilsonDirac::pack_faces(const DistField& in) {
  const auto& local = geom_->local();
  const Precision sp = params_.precision;
  const int hw = halo_words(sp);
  for (int r = 0; r < in.ranks(); ++r) {
    for (int mu = 0; mu < kNd; ++mu) {
      // Low face -> the -mu neighbour's +mu halo: plain projection; the
      // receiver applies its own U_mu(x).
      const auto low = local.face_layer_sites(mu, +1, 0);
      auto send_low = halos_.send_buf(r, mu, +1);
      for (std::size_t t = 0; t < low.size(); ++t) {
        const Spinor psi = load_spinor(in.site(r, low[t]));
        pack_half(send_low.data() + t * static_cast<std::size_t>(hw),
                  project(mu, +1, psi), sp);
      }
      // High face -> the +mu neighbour's -mu halo: U^+ applied at the
      // sender, so the receiver needs no gauge halo.
      const auto high = local.face_layer_sites(mu, -1, 0);
      auto send_high = halos_.send_buf(r, mu, -1);
      for (std::size_t t = 0; t < high.size(); ++t) {
        const Spinor psi = load_spinor(in.site(r, high[t]));
        HalfSpinor h = project(mu, -1, psi);
        const Su3Matrix u = gauge_->link(r, high[t], mu);
        h[0] = adj_mul(u, h[0]);
        h[1] = adj_mul(u, h[1]);
        pack_half(send_high.data() + t * static_cast<std::size_t>(hw), h, sp);
      }
    }
  }
}

void WilsonDirac::compute_sites(DistField& out, const DistField& in,
                                int parity) {
  const auto& local = geom_->local();
  const Precision sp = params_.precision;
  const int hw = halo_words(sp);
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      if (parity >= 0 && geom_->parity(r, s) != parity) continue;
      Spinor acc;
      for (int mu = 0; mu < kNd; ++mu) {
        // Forward hop: U_mu(x) (1 - gamma_mu) psi(x+mu).
        const auto fwd = local.neighbor(s, mu, +1);
        HalfSpinor h;
        if (fwd.local) {
          h = project(mu, +1, load_spinor(in.site(r, fwd.index)));
        } else {
          h = unpack_half(halos_.recv_buf(r, mu, +1).data() +
                              static_cast<std::size_t>(fwd.index) *
                                  static_cast<std::size_t>(hw),
                          sp);
        }
        const Su3Matrix u = gauge_->link(r, s, mu);
        HalfSpinor uh;
        uh[0] = u * h[0];
        uh[1] = u * h[1];
        acc += reconstruct(mu, +1, uh);

        // Backward hop: U_mu^+(x-mu) (1 + gamma_mu) psi(x-mu).
        const auto bwd = local.neighbor(s, mu, -1);
        HalfSpinor g;
        if (bwd.local) {
          g = project(mu, -1, load_spinor(in.site(r, bwd.index)));
          const Su3Matrix ub = gauge_->link(r, bwd.index, mu);
          g[0] = adj_mul(ub, g[0]);
          g[1] = adj_mul(ub, g[1]);
        } else {
          // Pre-multiplied by U^+ at the sender.
          g = unpack_half(halos_.recv_buf(r, mu, -1).data() +
                              static_cast<std::size_t>(bwd.index) *
                                  static_cast<std::size_t>(hw),
                          sp);
        }
        acc += reconstruct(mu, -1, g);
      }
      store_spinor(out.site(r, s), acc);
    }
  }
}

cpu::KernelProfile WilsonDirac::pack_profile() const {
  const auto& local = geom_->local();
  const double bf = bytes_per_double(params_.precision) / 8.0;
  cpu::KernelProfile p;
  p.name = "wilson.pack";
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    // Low face: projection (12 adds); high face: projection + 2 U^+ matvecs.
    p.other_flops += f * (12 + 12);
    p.fmadd_flops += f * 120;
    p.other_flops += f * 12;
    p.load_bytes += f * (2 * 192 + 144) * bf;
    p.store_bytes += f * 2 * 96 * bf;
  }
  p.edram_bytes = p.load_bytes + p.store_bytes;  // faces stream from EDRAM
  p.streams = 2;
  p.overhead_cycles = 200;
  return p;
}

cpu::KernelProfile WilsonDirac::site_profile(
    memsys::Region fermion_region) const {
  const auto& local = geom_->local();
  const double v = local.volume();
  const double bf = bytes_per_double(params_.precision) / 8.0;
  cpu::KernelProfile p;
  p.name = "wilson.site";
  // Per site: 16 SU(3) half-spinor matvecs (960 fmadd-flops), projections
  // and accumulations (360 isolated flops) -- the canonical 1320 flops.
  p.fmadd_flops = v * 960;
  p.other_flops = v * 360;
  double gauge_loads = 0;
  double spinor_bytes = 0;
  for (int mu = 0; mu < kNd; ++mu) {
    const double f = local.face_volume(mu);
    // Forward: U at x (always local) + neighbour spinor (full if local,
    // half from the halo).  Backward: U and spinor at x-mu when local, a
    // pre-multiplied half spinor otherwise.
    gauge_loads += v * 144 + (v - f) * 144;
    spinor_bytes += (v - f) * 192 + f * 96;  // forward
    spinor_bytes += (v - f) * 192 + f * 96;  // backward
  }
  spinor_bytes += v * 192;  // result store
  p.load_bytes = (gauge_loads + spinor_bytes - v * 192) * bf;
  p.store_bytes = v * 192 * bf;
  // Traffic splits by where the fields actually live: spinor scratch
  // vectors are the first to spill out of EDRAM.
  const bool gauge_ddr =
      gauge_->field().body_region() == memsys::Region::kDdr;
  if (gauge_ddr) {
    p.ddr_bytes += gauge_loads * bf;
  } else {
    p.edram_bytes += gauge_loads * bf;
  }
  if (fermion_region == memsys::Region::kDdr) {
    p.ddr_bytes += spinor_bytes * bf;
  } else {
    p.edram_bytes += spinor_bytes * bf;
  }
  p.streams = 4;
  p.overhead_cycles = v * 12;  // loop control and address generation
  return p;
}

void WilsonDirac::exchange_and_compute(DistField& out, DistField& in,
                                       int parity) {
  auto& bsp = ops_->bsp();
  const auto& cpu = ops_->cpu();

  pack_faces(in);  // functional
  const auto pack = pack_profile();
  bsp.compute(cpu.kernel_cycles(pack));

  auto site = site_profile(in.body_region());
  if (parity >= 0) site = site.scaled(0.5);
  const double site_cycles = cpu.kernel_cycles(site);
  if (params_.overlap_comm && parity < 0) {
    // Interior sites do not touch halos: their compute hides the exchange.
    const auto& ext = geom_->local().extent();
    double interior = 1;
    for (int mu = 0; mu < kNd; ++mu) {
      const int e = ext[static_cast<std::size_t>(mu)];
      interior *= std::max(e - 2, 0);
    }
    const double frac = interior / geom_->local().volume();
    bsp.overlap(site_cycles * frac, [&] { halos_.post_all_shifts(); });
    compute_sites(out, in, parity);
    bsp.compute(site_cycles * (1.0 - frac));
  } else {
    halos_.post_all_shifts();
    bsp.communicate();
    compute_sites(out, in, parity);
    bsp.compute(site_cycles);
  }
  ops_->account_kernel(pack, geom_->ranks(), params_.precision);
  ops_->account_kernel(site, geom_->ranks(), params_.precision);
}

void WilsonDirac::dslash(DistField& out, DistField& in) {
  exchange_and_compute(out, in, -1);
}

void WilsonDirac::dslash_parity(DistField& out, DistField& in, int parity) {
  exchange_and_compute(out, in, parity);
}

void WilsonDirac::apply(DistField& out, DistField& in) {
  dslash(out, in);
  // out = in - kappa * out
  ops_->xpay(in, -params_.kappa, out);
}

void WilsonDirac::apply_gamma5(DistField& f) {
  // gamma_5 = diag(+,+,-,-): negate spin components 2 and 3.
  const int n = f.geometry().local().volume();
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < n; ++s) {
      double* p = f.site(r, s);
      for (int k = 12; k < 24; ++k) p[k] = -p[k];
    }
  }
}

void WilsonDirac::apply_dag(DistField& out, DistField& in) {
  // M^dagger = gamma_5 M gamma_5 (and gamma_5 costs only sign flips, which
  // the assembly folds into the kernels -- no extra machine time).
  apply_gamma5(in);
  apply(out, in);
  apply_gamma5(in);  // restore the caller's field
  apply_gamma5(out);
}

double WilsonDirac::flops_per_apply() const {
  const double xpay =
      2.0 * geom_->local().volume() * kDoublesPerSpinor;
  return pack_profile().flops() + site_profile().flops() + xpay;
}

}  // namespace qcdoc::lattice
