#include "lattice/gauge.h"

#include <cassert>
#include <cmath>

#include "lattice/su2_internal.h"

namespace qcdoc::lattice {

GaugeField::GaugeField(comms::Communicator* comm, const GlobalGeometry* geom)
    : comm_(comm),
      geom_(geom),
      field_(comm, geom, kNd * kDoublesPerSu3, "gauge") {}

Su3Matrix GaugeField::link(int rank, int site_idx, int mu) const {
  return load_su3(field_.site(rank, site_idx) + mu * kDoublesPerSu3);
}

void GaugeField::set_link(int rank, int site_idx, int mu, const Su3Matrix& u) {
  store_su3(field_.site(rank, site_idx) + mu * kDoublesPerSu3, u);
}

Su3Matrix GaugeField::link_at(const Coord4& global, int mu) const {
  const auto [rank, idx] = geom_->owner(global);
  return link(rank, idx, mu);
}

void GaugeField::set_link_at(const Coord4& global, int mu,
                             const Su3Matrix& u) {
  const auto [rank, idx] = geom_->owner(global);
  set_link(rank, idx, mu, u);
}

void GaugeField::set_unit() {
  const Su3Matrix one = Su3Matrix::identity();
  for (int r = 0; r < field_.ranks(); ++r) {
    for (int s = 0; s < geom_->local().volume(); ++s) {
      for (int mu = 0; mu < kNd; ++mu) set_link(r, s, mu, one);
    }
  }
}

void GaugeField::randomize(Rng& rng) {
  // Iterate global coordinates (not rank-major) so the configuration drawn
  // from a given generator state is independent of how the lattice is
  // distributed over nodes -- the same property the heatbath has.
  const auto& ge = geom_->global_extent();
  Coord4 x;
  for (x[3] = 0; x[3] < ge[3]; ++x[3]) {
    for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
      for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
        for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
          for (int mu = 0; mu < kNd; ++mu) {
            set_link_at(x, mu, random_su3(rng));
          }
        }
      }
    }
  }
}

void GaugeField::randomize_near_unit(Rng& rng, double epsilon) {
  const auto& ge = geom_->global_extent();
  Coord4 x;
  for (x[3] = 0; x[3] < ge[3]; ++x[3]) {
    for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
      for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
        for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
          for (int mu = 0; mu < kNd; ++mu) {
            set_link_at(x, mu, random_su3_near_identity(rng, epsilon));
          }
        }
      }
    }
  }
}

double GaugeField::average_plaquette() const {
  double sum = 0;
  long count = 0;
  for (int r = 0; r < field_.ranks(); ++r) {
    for (int s = 0; s < geom_->local().volume(); ++s) {
      const Coord4 x = geom_->global_coords(r, s);
      for (int mu = 0; mu < kNd; ++mu) {
        for (int nu = mu + 1; nu < kNd; ++nu) {
          Coord4 xmu = x;
          xmu[static_cast<std::size_t>(mu)] += 1;
          Coord4 xnu = x;
          xnu[static_cast<std::size_t>(nu)] += 1;
          const Su3Matrix p = link_at(x, mu) * link_at(xmu, nu) *
                              link_at(xnu, mu).adjoint() *
                              link_at(x, nu).adjoint();
          sum += p.trace().real() / 3.0;
          ++count;
        }
      }
    }
  }
  return sum / static_cast<double>(count);
}

Su3Matrix GaugeField::staple(const Coord4& x, int mu) const {
  Su3Matrix s = Su3Matrix::zero();
  Coord4 xmu = x;
  xmu[static_cast<std::size_t>(mu)] += 1;
  for (int nu = 0; nu < kNd; ++nu) {
    if (nu == mu) continue;
    const auto n = static_cast<std::size_t>(nu);
    // Upper staple: U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+
    Coord4 xnu = x;
    xnu[n] += 1;
    s += link_at(xmu, nu) * link_at(xnu, mu).adjoint() *
         link_at(x, nu).adjoint();
    // Lower staple: U_nu(x+mu-nu)^+ U_mu(x-nu)^+ U_nu(x-nu)
    Coord4 xmnu = x;
    xmnu[n] -= 1;
    Coord4 xmu_mnu = xmu;
    xmu_mnu[n] -= 1;
    s += link_at(xmu_mnu, nu).adjoint() * link_at(xmnu, mu).adjoint() *
         link_at(xmnu, nu);
  }
  return s;
}

namespace {

using su2::Quat;

/// Sample a0 from the semicircle law P(a0) ~ sqrt(1-a0^2): the Haar measure
/// marginal, which is also the b0 -> 0 limit of the heatbath distribution.
double semicircle_a0(Rng& rng) {
  for (;;) {
    const double a0 = 2.0 * rng.next_double() - 1.0;
    if (rng.next_double() <= std::sqrt(std::max(0.0, 1.0 - a0 * a0))) {
      return a0;
    }
  }
}

/// Kennedy-Pendleton: sample a0 with P(a0) ~ sqrt(1-a0^2) exp(b0 * a0).
double kp_sample_a0(double b0, Rng& rng) {
  if (b0 < 1e-3) return semicircle_a0(rng);  // heatbath -> Haar limit
  for (;;) {
    double r1 = rng.next_double();
    double r2 = rng.next_double();
    double r3 = rng.next_double();
    if (r1 <= 1e-300) r1 = 1e-300;
    if (r3 <= 1e-300) r3 = 1e-300;
    const double c = std::cos(2.0 * M_PI * r2);
    const double lambda2 =
        -(std::log(r1) + c * c * std::log(r3)) / (2.0 * b0);
    if (lambda2 > 1.0) continue;
    const double r4 = rng.next_double();
    if (r4 * r4 <= 1.0 - lambda2) return 1.0 - 2.0 * lambda2;
  }
}

/// Random point on the 2-sphere scaled to radius `r`.
void random_direction(double r, Rng& rng, double* v1, double* v2, double* v3) {
  const double cos_theta = 2.0 * rng.next_double() - 1.0;
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = 2.0 * M_PI * rng.next_double();
  *v1 = r * sin_theta * std::cos(phi);
  *v2 = r * sin_theta * std::sin(phi);
  *v3 = r * cos_theta;
}

Quat random_su2(Rng& rng) {
  // Haar measure on SU(2): semicircle-distributed a0, uniform direction.
  Quat q;
  q.a0 = semicircle_a0(rng);
  random_direction(std::sqrt(std::max(0.0, 1.0 - q.a0 * q.a0)), rng, &q.a1,
                   &q.a2, &q.a3);
  return q;
}

}  // namespace

void GaugeField::heatbath_sweep(double beta, Rng& rng) {
  static constexpr int kSubgroups[3][2] = {{0, 1}, {0, 2}, {1, 2}};
  const auto& ge = geom_->global_extent();
  Coord4 x;
  for (x[3] = 0; x[3] < ge[3]; ++x[3]) {
    for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
      for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
        for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
          for (int mu = 0; mu < kNd; ++mu) {
            Su3Matrix u = link_at(x, mu);
            const Su3Matrix s = staple(x, mu);
            for (const auto& sub : kSubgroups) {
              const int i = sub[0];
              const int j = sub[1];
              const Su3Matrix w = u * s;
              const Quat v = su2::extract(w, i, j);
              const double k = v.norm();
              Quat a;  // the SU(2) update in this subgroup
              // Weight exp((beta/3) Re Tr(a w)) with Re Tr(a w) = 2 k h0.
              const double b0 = 2.0 * beta / 3.0 * k;
              if (k < 1e-12 || b0 < 1e-10) {
                a = random_su2(rng);
              } else {
                Quat vn{v.a0 / k, v.a1 / k, v.a2 / k, v.a3 / k};
                Quat h;  // sampled ~ exp(b0 * Re tr(h))
                h.a0 = kp_sample_a0(b0, rng);
                random_direction(std::sqrt(std::max(0.0, 1.0 - h.a0 * h.a0)),
                                 rng, &h.a1, &h.a2, &h.a3);
                a = su2::mul(h, su2::conj(vn));
              }
              u = su2::embed(a, i, j) * u;
            }
            set_link_at(x, mu, reunitarize(u));
          }
        }
      }
    }
  }
}

double GaugeField::max_unitarity_violation() const {
  double worst = 0;
  for (int r = 0; r < field_.ranks(); ++r) {
    for (int s = 0; s < geom_->local().volume(); ++s) {
      for (int mu = 0; mu < kNd; ++mu) {
        worst = std::max(worst, unitarity_violation(link(r, s, mu)));
      }
    }
  }
  return worst;
}

}  // namespace qcdoc::lattice
