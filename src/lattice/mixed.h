// Reliable-update mixed-precision Krylov solvers.
//
// The iteration runs in a sloppy precision (single, or half with the
// block-float codec) whose narrow loads and stores are what the EDRAM
// bandwidth actually sees, with periodic double-precision residual
// replacement: after each inner cycle reduces the sloppy residual by
// `delta`, the true residual r = M^+b - M^+M x is recomputed in double and
// the inner correction restarts from it.  Rounding noise therefore never
// accumulates past one cycle, and the solver reaches full double-precision
// tolerances while moving a fraction of the memory traffic -- the QUDA
// recipe, which on this machine model converts directly into predicted
// EDRAM/DDR cycle savings.
#pragma once

#include "lattice/bicgstab.h"
#include "lattice/cg.h"

namespace qcdoc::lattice {

struct MixedCgParams {
  double tolerance = 1e-8;  ///< on |r| / |rhs|, in DOUBLE precision
  int max_outer = 100;      ///< reliable-update cycles
  int max_inner = 100;      ///< sloppy iterations per cycle
  /// Inner cycle ends once the sloppy residual has dropped by this factor
  /// (|r_inner|^2 < delta^2 |r_cycle_start|^2).
  double delta = 0.1;
  Precision sloppy = Precision::kSingle;
};

/// Solver scalars at a clean outer-cycle checkpoint (the mixed solver's
/// quiescent points).  With x, r and the stored right-hand side restored
/// from a machine snapshot, these resume the exact trajectory.
struct MixedCgCheckpoint {
  int outer = 0;       ///< completed reliable-update cycles
  int iterations = 0;  ///< total sloppy inner iterations
  double rsq = 0;      ///< double-precision |r|^2 at the checkpoint
  double rhs_norm2 = 0;
  int restarts = 0;
  u64 audits = 0;
  u64 audit_failures = 0;
  u64 mem_checks = 0;
};

/// Working fields in canonical allocation order (simulated memory is never
/// freed, so the solver allocates once; a resuming process allocates the
/// same workspace before restoring node memory from a snapshot).
struct MixedCgWorkspace {
  DistField tmp, r, ap, bp;          // double: true-residual recompute
  DistField e, rs, ps, aps, tmps;    // sloppy inner solve
  DistField xck;                     // last known-clean solution copy
  static MixedCgWorkspace make(DiracOperator& op, Precision sloppy);
};

/// Fault auditing + crash-consistency hooks, mirroring CgAuditParams but
/// with outer cycles as the audit/checkpoint grain.
struct MixedCgAuditParams {
  std::function<bool()> clean;
  std::function<bool()> mem_clean;
  int interval = 2;  ///< outer cycles between audits
  int max_restarts = 8;
  std::function<void(const MixedCgCheckpoint&)> on_checkpoint;
  MixedCgWorkspace* workspace = nullptr;
  const MixedCgCheckpoint* resume = nullptr;
};

/// Solve M^+M x = M^+b to double-precision tolerance, iterating at
/// params.sloppy precision with reliable updates.  `sloppy_op` applies the
/// same physical operator in the sloppy precision (e.g. a WilsonDirac built
/// with precision = kHalf over the same gauge field); `op` is the double
/// reference.  x must be zero-initialized.  result.iterations counts
/// sloppy inner iterations; result.reliable_updates counts double residual
/// replacements.
CgResult mixed_cg_solve(DiracOperator& op, DiracOperator& sloppy_op,
                        DistField& x, DistField& b,
                        const MixedCgParams& params);

/// Audited / crash-consistent variant (see MixedCgAuditParams).
CgResult mixed_cg_solve_audited(DiracOperator& op, DiracOperator& sloppy_op,
                                DistField& x, DistField& b,
                                const MixedCgParams& params,
                                const MixedCgAuditParams& audit);

/// Reliable-update mixed-precision BiCGstab on M x = b: sloppy BiCGstab
/// inner cycles (tolerance `delta` each) with double residual replacement.
CgResult mixed_bicgstab_solve(DiracOperator& op, DiracOperator& sloppy_op,
                              DistField& x, DistField& b,
                              const MixedCgParams& params);

}  // namespace qcdoc::lattice
