// Storage precisions and the half-precision block-floating-point codec.
//
// The paper's sustained numbers live on memory bandwidth: "performance for
// single precision is slightly higher due to the decreased bandwidth", and
// EDRAM-vs-DDR residency is worth 16 points of efficiency.  Production
// solver stacks of the QCDOC era (and QUDA after it) push the same lever
// further with a 16-bit "block floating point" spinor format: one shared
// exponent per site block plus a signed 16-bit mantissa per word, so a
// spinor costs ~2.25 bytes/word of traffic instead of 8.  Arithmetic still
// runs on the 64-bit FPU; only the *stored* values are rounded to the
// representable set, which is exactly what the hardware's narrow load/store
// path would do.
#pragma once

#include <cstdint>
#include <span>

namespace qcdoc::lattice {

/// Storage width of a field (arithmetic is always performed in double; the
/// precision governs what survives a store and how many bytes move).
enum class Precision : int {
  kDouble = 0,  ///< 8 bytes/word, lossless
  kSingle = 1,  ///< 4 bytes/word, IEEE float rounding on store
  kHalf = 2,    ///< 2 bytes/word mantissa + shared exponent per block
};

inline constexpr int kNumPrecisions = 3;

inline constexpr int precision_index(Precision p) {
  return static_cast<int>(p);
}

const char* precision_name(Precision p);

/// Predicted memory traffic per stored word.  Half carries a signed 16-bit
/// mantissa per word plus one 32-bit shared exponent per 16-word block
/// (2 + 4/16 = 2.25 bytes/word amortized).
inline constexpr double bytes_per_double(Precision p) {
  switch (p) {
    case Precision::kSingle:
      return 4.0;
    case Precision::kHalf:
      return 2.25;
    case Precision::kDouble:
    default:
      return 8.0;
  }
}

// --- block-floating-point codec --------------------------------------------
//
// A block of N doubles is encoded as one shared base-2 exponent e (chosen
// from the largest magnitude in the block) plus one signed 16-bit mantissa
// per word: v ~= m * 2^(e - 15), m in [-32767, 32767].  Guarantees:
//
//   - round trip:    |decode(encode(v)) - v| <= max|block| * 2^-15
//   - exact zeros:   an all-zero block encodes and decodes to exact zeros
//   - scaling:       encode(2^k * block) has mantissas bit-identical to
//                    encode(block) with exponent e + k (no re-rounding), so
//                    quantization commutes with power-of-two scaling
//   - overflow:      the block maximum itself rounds to +-32768 in corner
//                    cases; the codec clamps to +-32767 (documented bound
//                    above already covers the clamp)
//   - denormals:     exponents below DBL_MIN_EXP decode through ldexp and
//                    flush to the nearest representable (possibly 0) without
//                    UB

/// Encoded form of one block: `mant[i] * 2^(exponent - 15)` per word.
struct BlockFloatCode {
  std::int32_t exponent = 0;
  std::span<std::int16_t> mant;
};

/// Encode `block` into `mant` (same length); returns the shared exponent.
std::int32_t block_float_encode(std::span<const double> block,
                                std::span<std::int16_t> mant);

/// Decode mantissas + shared exponent back into doubles.
void block_float_decode(std::int32_t exponent,
                        std::span<const std::int16_t> mant,
                        std::span<double> out);

/// Round-trip a block through the 16-bit representation in place: the
/// values become exactly what a half-precision store would preserve.
void block_float_quantize(std::span<double> block);

/// Quantize `data` in place at the given storage precision, in blocks of
/// `block_words` (a site's worth for lattice fields).  kDouble is a no-op;
/// kSingle rounds each word through IEEE float.
void quantize_in_place(std::span<double> data, Precision p, int block_words);

}  // namespace qcdoc::lattice
