// Convenience assembly of the full solver stack.
//
// Building a QCD run needs a machine, a 4-D partition, a communicator, a
// geometry, the BSP runner, a CPU timing model and the field operations.
// SolverRig wires them together in one line:
//
//   qcdoc::lattice::SolverRig rig({2, 2, 2, 2, 1, 1}, {8, 8, 8, 8});
//   qcdoc::lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
//   ...
#pragma once

#include <array>
#include <memory>

#include "comms/comms.h"
#include "lattice/gauge.h"
#include "lattice/linalg.h"
#include "machine/bsp.h"

namespace qcdoc::lattice {

struct SolverRig {
  std::unique_ptr<machine::Machine> m;
  std::unique_ptr<torus::Partition> partition;
  std::unique_ptr<comms::Communicator> comm;
  std::unique_ptr<GlobalGeometry> geom;
  std::unique_ptr<machine::BspRunner> bsp;
  std::unique_ptr<cpu::CpuModel> cpu;
  std::unique_ptr<FieldOps> ops;

  /// `machine_extents`: 6-D machine shape whose first four dims become the
  /// logical 4-D partition; `global`: 4-D lattice extents.  Extra machine
  /// config (clock, error rate) through `cfg_override`.
  SolverRig(std::array<int, 6> machine_extents, Coord4 global,
            machine::MachineConfig cfg_override = machine::MachineConfig{}) {
    machine::MachineConfig cfg = cfg_override;
    cfg.shape.extent = machine_extents;
    m = std::make_unique<machine::Machine>(cfg);
    m->power_on();
    partition = std::make_unique<torus::Partition>(
        torus::Partition::whole_machine(m->topology(),
                                        torus::FoldSpec::identity(4)));
    comm = std::make_unique<comms::Communicator>(m.get(), partition.get());
    geom = std::make_unique<GlobalGeometry>(partition.get(), global);
    bsp = std::make_unique<machine::BspRunner>(m.get());
    cpu = std::make_unique<cpu::CpuModel>(m->hw(), m->mem_timing());
    ops = std::make_unique<FieldOps>(bsp.get(), cpu.get(), comm.get());
  }

  /// Use an existing partition (e.g. one allocated by the qdaemon) instead
  /// of folding the whole machine.
  SolverRig(machine::Machine* machine, const torus::Partition* part,
            Coord4 global)
      : m(nullptr) {
    comm = std::make_unique<comms::Communicator>(machine, part);
    geom = std::make_unique<GlobalGeometry>(part, global);
    bsp = std::make_unique<machine::BspRunner>(machine);
    cpu = std::make_unique<cpu::CpuModel>(machine->hw(), machine->mem_timing());
    ops = std::make_unique<FieldOps>(bsp.get(), cpu.get(), comm.get());
  }

  machine::Machine& machine() {
    return m ? *m : comm->machine();
  }

  /// A deterministic source field (plane-wave-like, distribution-invariant).
  void fill_source(DistField& f) const {
    for (int r = 0; r < f.ranks(); ++r) {
      for (int s = 0; s < geom->local().volume(); ++s) {
        const Coord4 g = geom->global_coords(r, s);
        const double base = g[0] + 13.0 * g[1] + 41.0 * g[2] + 97.0 * g[3];
        double* p = f.site(r, s);
        for (int k = 0; k < f.site_doubles(); ++k) {
          p[k] = std::sin(0.1 * base + 0.01 * k) + 0.05 * k;
        }
      }
    }
  }
};

}  // namespace qcdoc::lattice
