// Conjugate-gradient solver on the normal equations.
//
// "Standard Krylov space solvers work well to produce the solution and
// dominate the calculational time for QCD simulations" -- the paper's
// headline numbers (40% / 38% / 46.5% of peak) are CG efficiencies.  The
// solver runs the paper's loop: two Dirac applications per iteration
// (M and M^dagger), three vector updates, and two machine-wide inner
// products through the SCU global-sum hardware.
#pragma once

#include "lattice/dirac.h"

namespace qcdoc::lattice {

struct CgParams {
  double tolerance = 1e-8;  ///< on |r| / |rhs|
  int max_iterations = 500;
  /// Run exactly this many iterations regardless of convergence (benchmarks
  /// measure steady-state rates, not solution quality).
  int fixed_iterations = 0;
};

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0;

  // Machine-level accounting over the solve.
  double flops = 0;          ///< total useful flops (whole machine)
  Cycle cycles = 0;          ///< machine time
  double compute_cycles = 0;
  double comm_cycles = 0;    ///< exposed (non-overlapped) communication
  double global_cycles = 0;  ///< global sums

  /// Sustained fraction of machine peak.
  double efficiency(double peak_flops_per_cycle_machine) const {
    return cycles > 0
               ? flops / (peak_flops_per_cycle_machine * static_cast<double>(cycles))
               : 0.0;
  }
};

/// Solve M^dagger M x = M^dagger b by CG; x must be zero-initialized (or a
/// starting guess).  Advances the machine clock; all arithmetic is real.
CgResult cg_solve(DiracOperator& op, DistField& x, DistField& b,
                  const CgParams& params);

}  // namespace qcdoc::lattice
