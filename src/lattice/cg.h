// Conjugate-gradient solver on the normal equations.
//
// "Standard Krylov space solvers work well to produce the solution and
// dominate the calculational time for QCD simulations" -- the paper's
// headline numbers (40% / 38% / 46.5% of peak) are CG efficiencies.  The
// solver runs the paper's loop: two Dirac applications per iteration
// (M and M^dagger), three vector updates, and two machine-wide inner
// products through the SCU global-sum hardware.
#pragma once

#include <functional>

#include "lattice/dirac.h"

namespace qcdoc::lattice {

struct CgParams {
  double tolerance = 1e-8;  ///< on |r| / |rhs|
  int max_iterations = 500;
  /// Run exactly this many iterations regardless of convergence (benchmarks
  /// measure steady-state rates, not solution quality).
  int fixed_iterations = 0;
};

/// Solver scalars at a clean audit checkpoint.  Together with the field
/// contents -- x and the workspace fields live in simulated node memory and
/// ride a machine snapshot -- this is everything needed to resume the exact
/// Krylov trajectory in a fresh process.
struct CgCheckpoint {
  int iterations = 0;
  double rsq = 0;        ///< |r|^2 at the checkpoint (bit pattern matters)
  double rhs_norm2 = 0;  ///< reference scale |M^+ b|^2
  int restarts = 0;
  u64 audits = 0;
  u64 audit_failures = 0;
  u64 mem_checks = 0;
};

/// The audited solver's working fields, in the solver's canonical
/// allocation order.  Normally allocated internally; a resuming process
/// must create the allocations *before* overwriting node memory from a
/// snapshot, so it builds a workspace first, restores into it, and passes
/// it to the solver.
struct CgWorkspace {
  DistField tmp, r, p, ap, xck;
  static CgWorkspace make(DiracOperator& op);
};

/// Checksum-audit policy for the fault-tolerant solver.  The paper compares
/// per-link checksums at the end of a calculation; auditing every few
/// iterations instead lets a multi-day run restart from its last known-clean
/// checkpoint when an undetected corruption slips past the link parity.
struct CgAuditParams {
  /// Returns true when all link traffic since the *previous* call matched
  /// checksums (e.g. fault::ChecksumAuditor::clean_since_last).  Called at
  /// iteration boundaries, where the BSP runtime leaves the mesh quiescent.
  std::function<bool()> clean;
  /// Returns true when no node latched an ECC machine check since the
  /// previous call (e.g. fault::MemCheckAuditor::clean_since_last).  An
  /// uncorrectable memory word is treated exactly like corrupted link
  /// traffic: roll back to the checkpoint -- whose copy rewrites the
  /// poisoned words with known-good data -- and recompute.  Either or both
  /// of `clean` / `mem_clean` may be set; both are always polled so each
  /// detector's interval baseline advances.
  std::function<bool()> mem_clean;
  int interval = 10;     ///< iterations between audits
  int max_restarts = 8;  ///< give up after this many rollbacks

  /// Fired whenever the solver lands on a clean checkpoint: after the
  /// baseline audit, and at the end of every loop trip whose audit passed.
  /// The mesh is quiescent and the fields hold exactly loop-top state, so
  /// this is where the snapshot layer writes a generation.
  std::function<void(const CgCheckpoint&)> on_checkpoint;
  /// Pre-allocated working fields (see CgWorkspace); null = allocate
  /// internally.  Required when `resume` is set.
  CgWorkspace* workspace = nullptr;
  /// Resume from these scalars instead of computing the initial residual.
  /// x and the workspace fields must already hold the checkpoint's restored
  /// contents; the solver continues the trajectory bit-identically.
  const CgCheckpoint* resume = nullptr;
};

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0;

  // Fault-tolerance accounting (cg_solve_audited only).
  int restarts = 0;         ///< rollbacks to the last clean checkpoint
  u64 audits = 0;           ///< checksum audits performed
  u64 audit_failures = 0;   ///< audits that found corrupted traffic
  u64 mem_checks = 0;       ///< audits that found uncorrectable memory

  // Mixed-precision accounting (reliable-update solvers only).
  int reliable_updates = 0;  ///< double-precision residual replacements

  // Machine-level accounting over the solve.
  double flops = 0;          ///< total useful flops (whole machine)
  Cycle cycles = 0;          ///< machine time
  double compute_cycles = 0;
  double comm_cycles = 0;    ///< exposed (non-overlapped) communication
  double global_cycles = 0;  ///< global sums
  /// Flop/byte traffic of the solve split by storage precision (delta of
  /// FieldOps::traffic over the solve) -- the honest ledger behind the
  /// predicted mixed-precision speedups.
  TrafficByPrecision traffic{};

  /// Sustained fraction of machine peak.
  double efficiency(double peak_flops_per_cycle_machine) const {
    return cycles > 0
               ? flops / (peak_flops_per_cycle_machine * static_cast<double>(cycles))
               : 0.0;
  }
};

/// Solve M^dagger M x = M^dagger b by CG; x must be zero-initialized (or a
/// starting guess).  Advances the machine clock; all arithmetic is real.
CgResult cg_solve(DiracOperator& op, DistField& x, DistField& b,
                  const CgParams& params);

/// Fault-tolerant CG: every `audit.interval` iterations (and before
/// declaring convergence) the solver audits the link checksums.  A clean
/// audit checkpoints x; a dirty one rolls x back to the checkpoint and
/// recomputes the true residual, so corrupted halo traffic costs at most
/// one audit interval.  Convergence is only ever declared on clean data.
CgResult cg_solve_audited(DiracOperator& op, DistField& x, DistField& b,
                          const CgParams& params,
                          const CgAuditParams& audit);

}  // namespace qcdoc::lattice
