// Dirac gamma-matrix algebra in the DeGrand-Rossi basis, plus the hardcoded
// spin projection/reconstruction tables the half-spinor ("two-spinor")
// communication trick uses.
//
// The Wilson hopping term applies (1 -+ gamma_mu), whose image is a rank-2
// ("half") spinor: QCDOC's hand-tuned kernels communicate 12 instead of 24
// doubles per face site and reconstruct the full spinor after the SU(3)
// multiply.  The generic 4x4 matrices here serve as the reference
// implementation that the optimized tables are tested against.
#pragma once

#include <array>

#include "lattice/su3.h"

namespace qcdoc::lattice {

inline constexpr int kSpins = 4;

/// A spin-4 vector of color vectors: one lattice fermion degree of freedom.
struct Spinor {
  std::array<ColorVector, kSpins> s{};

  ColorVector& operator[](int i) { return s[static_cast<std::size_t>(i)]; }
  const ColorVector& operator[](int i) const {
    return s[static_cast<std::size_t>(i)];
  }

  Spinor& operator+=(const Spinor& o);
  Spinor& operator-=(const Spinor& o);
  Spinor& operator*=(const Complex& z);
  friend Spinor operator+(Spinor a, const Spinor& b) { return a += b; }
  friend Spinor operator-(Spinor a, const Spinor& b) { return a -= b; }
  friend Spinor operator*(const Complex& z, Spinor a) { return a *= z; }
};

Complex dot(const Spinor& a, const Spinor& b);
double norm2(const Spinor& a);

/// A 4x4 spin matrix (entries multiply color vectors as scalars).
struct SpinMatrix {
  std::array<Complex, 16> m{};
  Complex& at(int r, int c) { return m[static_cast<std::size_t>(4 * r + c)]; }
  const Complex& at(int r, int c) const {
    return m[static_cast<std::size_t>(4 * r + c)];
  }
};

Spinor operator*(const SpinMatrix& g, const Spinor& psi);
SpinMatrix operator*(const SpinMatrix& a, const SpinMatrix& b);
SpinMatrix operator+(const SpinMatrix& a, const SpinMatrix& b);
SpinMatrix operator-(const SpinMatrix& a, const SpinMatrix& b);

/// gamma_mu, mu = 0..3 (x,y,z,t) in the DeGrand-Rossi basis.
const SpinMatrix& gamma(int mu);
/// gamma_5 = gamma_0 gamma_1 gamma_2 gamma_3 (diagonal +1,+1,-1,-1).
const SpinMatrix& gamma5();
/// sigma_munu = (i/2) [gamma_mu, gamma_nu].
SpinMatrix sigma(int mu, int nu);

/// A projected 2-spinor: the independent half of (1 -+ gamma_mu) psi.
struct HalfSpinor {
  std::array<ColorVector, 2> h{};
  ColorVector& operator[](int i) { return h[static_cast<std::size_t>(i)]; }
  const ColorVector& operator[](int i) const {
    return h[static_cast<std::size_t>(i)];
  }
};

/// h = independent components of (1 - sign*gamma_mu) psi, sign = +-1.
HalfSpinor project(int mu, int sign, const Spinor& psi);
/// Inverse of project up to the dependent components: rebuild the full
/// (1 - sign*gamma_mu)-projected spinor from h (after the SU(3) multiply).
Spinor reconstruct(int mu, int sign, const HalfSpinor& h);

inline constexpr int kDoublesPerSpinor = 24;      // 4 spins x 3 colors x 2
inline constexpr int kDoublesPerHalfSpinor = 12;  // 2 spins x 3 colors x 2
inline constexpr int kDoublesPerColorVector = 6;
inline constexpr int kDoublesPerSu3 = 18;

}  // namespace qcdoc::lattice
