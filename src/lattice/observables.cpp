#include "lattice/observables.h"

#include <cassert>

#include "lattice/su2_internal.h"

namespace qcdoc::lattice {
namespace {

Coord4 shift(Coord4 c, int d, int by) {
  c[static_cast<std::size_t>(d)] += by;
  return c;
}

/// Path-ordered product of `extent` links along `mu` starting at x.
Su3Matrix line(const GaugeField& g, Coord4 x, int mu, int extent) {
  Su3Matrix u = Su3Matrix::identity();
  for (int step = 0; step < extent; ++step) {
    u = u * g.link_at(x, mu);
    x = shift(x, mu, 1);
  }
  return u;
}

}  // namespace

double wilson_loop(const GaugeField& gauge, int r_extent, int t_extent) {
  const auto& geom = gauge.geometry();
  const int t_dir = 3;
  double sum = 0;
  long count = 0;
  for (int rank = 0; rank < geom.ranks(); ++rank) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 x = geom.global_coords(rank, s);
      for (int mu = 0; mu < 3; ++mu) {
        // W = L_mu(x,R) L_t(x+R mu,T) L_mu^+(x+T t,R) L_t^+(x,T)
        const Su3Matrix bottom = line(gauge, x, mu, r_extent);
        const Su3Matrix right =
            line(gauge, shift(x, mu, r_extent), t_dir, t_extent);
        const Su3Matrix top = line(gauge, shift(x, t_dir, t_extent), mu,
                                   r_extent);
        const Su3Matrix left = line(gauge, x, t_dir, t_extent);
        const Su3Matrix loop =
            bottom * right * top.adjoint() * left.adjoint();
        sum += loop.trace().real() / 3.0;
        ++count;
      }
    }
  }
  return sum / static_cast<double>(count);
}

Complex polyakov_loop(const GaugeField& gauge) {
  const auto& geom = gauge.geometry();
  const auto& ge = geom.global_extent();
  const int t_dir = 3;
  Complex sum = 0;
  long count = 0;
  Coord4 x{};
  for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
    for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
      for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
        x[3] = 0;
        const Su3Matrix winding = line(gauge, x, t_dir, ge[3]);
        sum += winding.trace() * Complex(1.0 / 3.0, 0.0);
        ++count;
      }
    }
  }
  return sum * Complex(1.0 / static_cast<double>(count), 0.0);
}

void random_gauge_transform(GaugeField* gauge, Rng& rng) {
  const auto& geom = gauge->geometry();
  const auto& ge = geom.global_extent();
  const int gvol = ge[0] * ge[1] * ge[2] * ge[3];
  // Draw g(x) in canonical global-site order (distribution invariant).
  std::vector<Su3Matrix> g(static_cast<std::size_t>(gvol));
  auto gindex = [&ge](const Coord4& c) {
    const int x0 = ((c[0] % ge[0]) + ge[0]) % ge[0];
    const int x1 = ((c[1] % ge[1]) + ge[1]) % ge[1];
    const int x2 = ((c[2] % ge[2]) + ge[2]) % ge[2];
    const int x3 = ((c[3] % ge[3]) + ge[3]) % ge[3];
    return ((x3 * ge[2] + x2) * ge[1] + x1) * ge[0] + x0;
  };
  Coord4 x{};
  for (x[3] = 0; x[3] < ge[3]; ++x[3]) {
    for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
      for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
        for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
          g[static_cast<std::size_t>(gindex(x))] = random_su3(rng);
        }
      }
    }
  }
  for (int rank = 0; rank < geom.ranks(); ++rank) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 c = geom.global_coords(rank, s);
      for (int mu = 0; mu < kNd; ++mu) {
        const Su3Matrix& gx = g[static_cast<std::size_t>(gindex(c))];
        const Su3Matrix& gxmu =
            g[static_cast<std::size_t>(gindex(shift(c, mu, 1)))];
        gauge->set_link(rank, s, mu,
                        gx * gauge->link(rank, s, mu) * gxmu.adjoint());
      }
    }
  }
}

void overrelax_sweep(GaugeField* gauge) {
  const auto& geom = gauge->geometry();
  const auto& ge = geom.global_extent();
  Coord4 x{};
  for (x[3] = 0; x[3] < ge[3]; ++x[3]) {
    for (x[2] = 0; x[2] < ge[2]; ++x[2]) {
      for (x[1] = 0; x[1] < ge[1]; ++x[1]) {
        for (x[0] = 0; x[0] < ge[0]; ++x[0]) {
          for (int mu = 0; mu < kNd; ++mu) {
            Su3Matrix u = gauge->link_at(x, mu);
            const Su3Matrix staple = gauge->staple(x, mu);
            for (const auto& sub : su2::kSubgroups) {
              const int i = sub[0];
              const int j = sub[1];
              const Su3Matrix w = u * staple;
              const su2::Quat v = su2::extract(w, i, j);
              if (v.norm() < 1e-12) continue;
              // a = (v^+)^2 / |v|^2 keeps Re Tr(a w) invariant and moves
              // the link maximally within the subgroup.
              const su2::Quat vn = su2::normalized(v);
              const su2::Quat a = su2::mul(su2::conj(vn), su2::conj(vn));
              u = su2::embed(a, i, j) * u;
            }
            gauge->set_link_at(x, mu, reunitarize(u));
          }
        }
      }
    }
  }
}

}  // namespace qcdoc::lattice
