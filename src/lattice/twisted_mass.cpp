#include "lattice/twisted_mass.h"

namespace qcdoc::lattice {

TwistedMassDirac::TwistedMassDirac(FieldOps* ops, const GlobalGeometry* geom,
                                   GaugeField* gauge, TwistedMassParams params)
    : DiracOperator(ops, geom),
      params_(params),
      hopping_(ops, geom, gauge,
               WilsonParams{.kappa = params.kappa,
                            .overlap_comm = params.overlap_comm,
                            .precision = params.precision}) {}

cpu::KernelProfile TwistedMassDirac::twist_profile() const {
  const double n = static_cast<double>(geom_->local().volume()) *
                   kDoublesPerSpinor;
  const double bf = bytes_per_double(params_.precision) / 8.0;
  cpu::KernelProfile p;
  p.name = "tm.twist";
  p.fmadd_flops = 2.0 * n;  // one fused multiply-add per stored double
  p.load_bytes = 2.0 * 8.0 * n * bf;  // stream in and out
  p.store_bytes = 8.0 * n * bf;
  p.edram_bytes = p.load_bytes + p.store_bytes;  // site-diagonal, streaming
  p.streams = 3;
  p.overhead_cycles = 32;
  return p;
}

void TwistedMassDirac::add_twist(DistField& out, const DistField& in,
                                 double mt) {
  const int n = geom_->local().volume();
  for (int r = 0; r < out.ranks(); ++r) {
    for (int s = 0; s < n; ++s) {
      const double* pi = in.site(r, s);
      double* po = out.site(r, s);
      // i g5 psi: upper chirality picks up (-im, +re), lower (+im, -re).
      for (int k = 0; k < 12; k += 2) {
        po[k] -= mt * pi[k + 1];
        po[k + 1] += mt * pi[k];
      }
      for (int k = 12; k < 24; k += 2) {
        po[k] += mt * pi[k + 1];
        po[k + 1] -= mt * pi[k];
      }
    }
  }
  if (out.precision() != Precision::kDouble) {
    for (int r = 0; r < out.ranks(); ++r) {
      quantize_in_place(out.data(r), out.precision(), out.quant_block_words());
    }
  }
  const auto p = twist_profile();
  ops_->bsp().compute(ops_->cpu().kernel_cycles(p));
  ops_->account_kernel(p, geom_->ranks(), params_.precision);
}

void TwistedMassDirac::apply(DistField& out, DistField& in) {
  hopping_.apply(out, in);
  // mu = 0 must reduce to Wilson exactly, in both arithmetic and timing.
  if (mu_tilde() != 0.0) add_twist(out, in, mu_tilde());
}

void TwistedMassDirac::apply_dag(DistField& out, DistField& in) {
  // M(mu)^+ = g5 M(-mu) g5 = M_wilson^+ - i mu~ g5.
  hopping_.apply_dag(out, in);
  if (mu_tilde() != 0.0) add_twist(out, in, -mu_tilde());
}

double TwistedMassDirac::flops_per_apply() const {
  const double twist = mu_tilde() != 0.0 ? twist_profile().flops() : 0.0;
  return hopping_.flops_per_apply() + twist;
}

}  // namespace qcdoc::lattice
