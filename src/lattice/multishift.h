// Multi-shift conjugate gradient on the normal equations.
//
// Rational-approximation algorithms (RHMC, overlap/DWF 4-D effective
// operators) need x_i = (M^+M + sigma_i)^{-1} b for a whole family of
// shifts.  The shifted systems share the Krylov space of the smallest
// shift, so ONE sequence of Dirac applications serves every sigma -- the
// per-shift cost is three extra vector updates, all bandwidth the EDRAM
// can stream.  Coefficients follow the zeta recurrence of Jegerlehner
// (hep-lat/9612014): the shifted residual is r_k^sigma = zeta_k^sigma r_k,
// so every shifted system's convergence is known without forming it.
//
// With shifts[0] == 0 the base iteration performs the exact operator and
// vector-update sequence of cg_solve, so x[0] bit-matches plain CG on the
// same right-hand side.
#pragma once

#include <functional>
#include <vector>

#include "lattice/cg.h"

namespace qcdoc::lattice {

struct MultishiftParams {
  /// Shift family sigma_i, ascending; shifts[0] is the base system whose
  /// Krylov space everything shares (smallest shift converges slowest).
  std::vector<double> shifts;
  double tolerance = 1e-8;  ///< on |r_i| / |rhs| for every shift
  int max_iterations = 500;
};

/// Fault auditing for the multi-shift solver.  Unlike cg_solve_audited --
/// which re-derives loop state from x -- the shifted recurrence carries
/// per-shift scalar state that cannot be recomputed from the iterates, so
/// a clean checkpoint shadow-copies the full working set (base vectors,
/// every shifted direction and solution) and a dirty audit restores it
/// exactly.  Rollback cost scales with the shift count; there is no
/// cross-process resume (use mixed_cg for the checkpoint/restart path).
struct MultishiftAuditParams {
  std::function<bool()> clean;      ///< link checksums since last poll
  std::function<bool()> mem_clean;  ///< ECC machine checks since last poll
  int interval = 10;
  int max_restarts = 8;
};

struct MultishiftResult {
  bool converged = false;  ///< every shift reached tolerance
  int iterations = 0;      ///< Dirac-application iterations (shared)
  /// |r_i| / |rhs| per shift, same order as params.shifts.
  std::vector<double> relative_residuals;

  // Fault-tolerance accounting (audited variant only).
  int restarts = 0;
  u64 audits = 0;
  u64 audit_failures = 0;
  u64 mem_checks = 0;

  // Machine-level accounting over the solve.
  double flops = 0;
  Cycle cycles = 0;
  double compute_cycles = 0;
  double comm_cycles = 0;
  double global_cycles = 0;
  TrafficByPrecision traffic{};
};

/// Solve (M^+M + sigma_i) x_i = M^+ b for all shifts in one Krylov
/// sequence.  `x` must have params.shifts.size() zero-initialized fields.
MultishiftResult multishift_solve(DiracOperator& op, std::vector<DistField>& x,
                                  DistField& b, const MultishiftParams& params);

/// Fault-tolerant variant: audits link/memory detectors every
/// `audit.interval` iterations and rolls the full working set back to the
/// last clean shadow copy on a mismatch.
MultishiftResult multishift_solve_audited(DiracOperator& op,
                                          std::vector<DistField>& x,
                                          DistField& b,
                                          const MultishiftParams& params,
                                          const MultishiftAuditParams& audit);

}  // namespace qcdoc::lattice
