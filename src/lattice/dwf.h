// Domain-wall fermions (paper Section 4: "a prime target for much of our
// work with QCDOC ... naturally five-dimensional ... we expect [it] will
// surpass the performance of the clover improved Wilson operator").
//
// Shamir domain walls: Ls four-dimensional Wilson slices coupled along a
// fifth dimension by chiral projectors, with the physical quark mass m_f
// coupling the walls:
//
//   M psi(x,s) = psi(x,s) - kappa5 * Dslash4[psi(.,s)](x)
//                - [ P_- psi(x,s+1) + P_+ psi(x,s-1) ]
//   boundary:  s+1 at Ls-1 -> -m_f P_- psi(x,0)
//              s-1 at 0    -> -m_f P_+ psi(x,Ls-1)
//
// The performance advantage the paper anticipates is structural: the gauge
// field is loaded once per 4-D site and reused across all Ls slices, and
// the fifth-dimension hops are purely local -- so arithmetic intensity
// rises with Ls while communication per flop falls.
#pragma once

#include "lattice/dirac.h"

namespace qcdoc::lattice {

struct DwfParams {
  int ls = 8;            ///< fifth-dimension extent
  double kappa5 = 0.18;  ///< 4-D hopping parameter (absorbs M5)
  double mf = 0.04;      ///< domain-wall quark mass
  bool overlap_comm = false;
};

class DwfDirac : public DiracOperator {
 public:
  DwfDirac(FieldOps* ops, const GlobalGeometry* geom, GaugeField* gauge,
           DwfParams params);

  const char* name() const override { return "dwf"; }
  int site_doubles() const override { return params_.ls * kDoublesPerSpinor; }
  int halo_doubles() const override {
    return params_.ls * kDoublesPerHalfSpinor;
  }
  int halo_slabs() const override { return 1; }

  void apply(DistField& out, DistField& in) override;
  void apply_dag(DistField& out, DistField& in) override;
  double flops_per_apply() const override;

  cpu::KernelProfile pack_profile() const;
  cpu::KernelProfile site_profile() const;
  cpu::KernelProfile site_profile(memsys::Region fermion_region) const;

  const DwfParams& params() const { return params_; }

 private:
  void pack_faces(const DistField& in);
  /// 4-D hopping on every slice plus the 5-D projector couplings; `dagger`
  /// flips both (gamma5-conjugated 4-D term, transposed 5-D term).
  void compute_sites(DistField& out, const DistField& in, bool dagger);
  void run(DistField& out, DistField& in, bool dagger);

  GaugeField* gauge_;
  DwfParams params_;
  HaloSet halos_;
};

}  // namespace qcdoc::lattice
