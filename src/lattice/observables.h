// Gauge observables and gauge transformations.
//
// The measurements a QCD campaign on QCDOC actually produces: Wilson loops
// (the static quark potential / confinement signal), the Polyakov loop (the
// deconfinement order parameter), and gauge transformations -- which double
// as the sharpest correctness tool available, since every physical
// observable must be exactly invariant under them.
//
// Like the plaquette, these are host-orchestrated measurements (global
// access); the timed production kernels are the Dirac solvers.
#pragma once

#include "lattice/gauge.h"

namespace qcdoc::lattice {

/// Average R x T Wilson loop, Re Tr W / 3, over all sites and all
/// (spatial, temporal) plane orientations with extent R in the spatial and
/// T in the temporal (mu = 3) direction.
double wilson_loop(const GaugeField& gauge, int r_extent, int t_extent);

/// Average Polyakov loop: Tr of the product of temporal links winding the
/// lattice, averaged over spatial sites.  Order parameter for
/// deconfinement; identically 1 for a free field.
Complex polyakov_loop(const GaugeField& gauge);

/// Apply a random gauge transformation g(x):
///   U_mu(x) -> g(x) U_mu(x) g^+(x + mu).
/// All gauge-invariant observables (plaquette, Wilson loops, Polyakov loop,
/// Dirac spectra) must be unchanged.
void random_gauge_transform(GaugeField* gauge, Rng& rng);

/// One microcanonical overrelaxation sweep (Cabibbo-Marinari SU(2)
/// subgroups, a -> (v^+)^2): moves the configuration as far as possible
/// while exactly preserving the action -- the plaquette is invariant to
/// rounding.  Production updates mixed heatbath and overrelaxation sweeps
/// to decorrelate faster at fixed acceptance.
void overrelax_sweep(GaugeField* gauge);

}  // namespace qcdoc::lattice
