// SU(3) color algebra: complex 3-vectors, 3x3 matrices, random group
// elements and reunitarization.
//
// These are the scalar building blocks of every lattice kernel.  Functional
// code uses them directly (reference-style clarity); the cycle costs of the
// hand-tuned assembly the paper benchmarks are accounted separately through
// cpu::KernelProfile.
#pragma once

#include <array>
#include <complex>

#include "common/rng.h"

namespace qcdoc::lattice {

using Complex = std::complex<double>;

/// A color 3-vector.
struct ColorVector {
  std::array<Complex, 3> c{};

  Complex& operator[](int i) { return c[static_cast<std::size_t>(i)]; }
  const Complex& operator[](int i) const { return c[static_cast<std::size_t>(i)]; }

  ColorVector& operator+=(const ColorVector& o);
  ColorVector& operator-=(const ColorVector& o);
  ColorVector& operator*=(const Complex& z);
  friend ColorVector operator+(ColorVector a, const ColorVector& b) { return a += b; }
  friend ColorVector operator-(ColorVector a, const ColorVector& b) { return a -= b; }
  friend ColorVector operator*(const Complex& z, ColorVector v) { return v *= z; }
};

Complex dot(const ColorVector& a, const ColorVector& b);  ///< conj(a) . b
double norm2(const ColorVector& v);

/// A 3x3 complex matrix (not necessarily in the group).
struct Su3Matrix {
  // Row-major storage m[row][col].
  std::array<Complex, 9> m{};

  Complex& at(int r, int c) { return m[static_cast<std::size_t>(3 * r + c)]; }
  const Complex& at(int r, int c) const {
    return m[static_cast<std::size_t>(3 * r + c)];
  }

  static Su3Matrix identity();
  static Su3Matrix zero();

  Su3Matrix adjoint() const;  ///< Hermitian conjugate
  Complex trace() const;
  Complex det() const;

  Su3Matrix& operator+=(const Su3Matrix& o);
  Su3Matrix& operator-=(const Su3Matrix& o);
  Su3Matrix& operator*=(const Complex& z);
  friend Su3Matrix operator+(Su3Matrix a, const Su3Matrix& b) { return a += b; }
  friend Su3Matrix operator-(Su3Matrix a, const Su3Matrix& b) { return a -= b; }
  friend Su3Matrix operator*(const Complex& z, Su3Matrix a) { return a *= z; }
};

Su3Matrix operator*(const Su3Matrix& a, const Su3Matrix& b);
ColorVector operator*(const Su3Matrix& a, const ColorVector& v);
/// a^dagger * v without forming the adjoint.
ColorVector adj_mul(const Su3Matrix& a, const ColorVector& v);

/// Frobenius distance from the group: ||U U^dagger - 1|| + |det U - 1|.
double unitarity_violation(const Su3Matrix& u);

/// Gram-Schmidt reunitarization with determinant fixed to 1.
Su3Matrix reunitarize(const Su3Matrix& u);

/// Haar-like random group element: Gaussian entries, then reunitarized.
Su3Matrix random_su3(Rng& rng);

/// Random element near the identity: exp of a small random antihermitian
/// traceless matrix (used by the heatbath-adjacent update and smearing).
Su3Matrix random_su3_near_identity(Rng& rng, double epsilon);

}  // namespace qcdoc::lattice
