#include "torus/coords.h"

#include <cassert>
#include <cstdlib>
#include <sstream>

namespace qcdoc::torus {

int Shape::volume() const {
  int v = 1;
  for (int e : extent) v *= e;
  return v;
}

int Shape::dims_used() const {
  int n = 0;
  for (int e : extent)
    if (e > 1) ++n;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  for (int d = 0; d < kMaxDims; ++d) {
    if (d) out << "x";
    out << extent[d];
  }
  return out.str();
}

std::string Coord::to_string() const {
  std::ostringstream out;
  out << "(";
  for (int d = 0; d < kMaxDims; ++d) {
    if (d) out << ",";
    out << c[d];
  }
  out << ")";
  return out.str();
}

LinkIndex link_index(int dim, Dir dir) {
  assert(dim >= 0 && dim < kMaxDims);
  return LinkIndex{2 * dim + (dir == Dir::kPlus ? 0 : 1)};
}

int link_dim(LinkIndex l) { return l.value / 2; }

Dir link_dir(LinkIndex l) { return (l.value % 2) == 0 ? Dir::kPlus : Dir::kMinus; }

LinkIndex facing_link(LinkIndex l) {
  return link_index(link_dim(l), opposite(link_dir(l)));
}

Torus::Torus(Shape shape) : shape_(shape), volume_(shape.volume()) {
  assert(volume_ > 0);
  int s = 1;
  for (int d = 0; d < kMaxDims; ++d) {
    stride_[d] = s;
    s *= shape_.extent[d];
  }
}

NodeId Torus::id(const Coord& c) const {
  u32 v = 0;
  for (int d = 0; d < kMaxDims; ++d) {
    assert(c.c[d] >= 0 && c.c[d] < shape_.extent[d]);
    v += static_cast<u32>(c.c[d] * stride_[d]);
  }
  return NodeId{v};
}

Coord Torus::coord(NodeId n) const {
  assert(n.value < static_cast<u32>(volume_));
  Coord c;
  u32 rest = n.value;
  for (int d = 0; d < kMaxDims; ++d) {
    c.c[d] = static_cast<int>(rest % static_cast<u32>(shape_.extent[d]));
    rest /= static_cast<u32>(shape_.extent[d]);
  }
  return c;
}

NodeId Torus::neighbor(NodeId n, int dim, Dir dir) const {
  Coord c = coord(n);
  const int e = shape_.extent[dim];
  c.c[dim] = (c.c[dim] + static_cast<int>(dir) + e) % e;
  return id(c);
}

NodeId Torus::neighbor(NodeId n, LinkIndex l) const {
  return neighbor(n, link_dim(l), link_dir(l));
}

int Torus::distance(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  int dist = 0;
  for (int d = 0; d < kMaxDims; ++d) {
    const int e = shape_.extent[d];
    int delta = std::abs(ca.c[d] - cb.c[d]);
    dist += std::min(delta, e - delta);
  }
  return dist;
}

std::vector<Torus::Edge> Torus::edges() const {
  std::vector<Edge> result;
  result.reserve(static_cast<std::size_t>(volume_) * kLinksPerNode);
  for (int n = 0; n < volume_; ++n) {
    const NodeId from{static_cast<u32>(n)};
    for (int l = 0; l < kLinksPerNode; ++l) {
      const LinkIndex link{l};
      result.push_back(Edge{from, link, neighbor(from, link)});
    }
  }
  return result;
}

}  // namespace qcdoc::torus
