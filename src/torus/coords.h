// Six-dimensional torus topology: coordinates, node ids, links.
//
// QCDOC's mesh is a 6-D torus; each node has 12 nearest neighbours and the
// SCU drives 24 independent unidirectional connections (one send and one
// receive per neighbour).  Links are indexed 0..11 as (dim, direction):
//   link = 2*dim + (direction == +1 ? 0 : 1).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"

namespace qcdoc::torus {

inline constexpr int kMaxDims = 6;
inline constexpr int kLinksPerNode = 2 * kMaxDims;

/// Extents of the 6-D machine mesh.  Unused dimensions have extent 1.
struct Shape {
  std::array<int, kMaxDims> extent{1, 1, 1, 1, 1, 1};

  int volume() const;
  int dims_used() const;  ///< number of dimensions with extent > 1
  std::string to_string() const;
  friend bool operator==(const Shape&, const Shape&) = default;
};

struct Coord {
  std::array<int, kMaxDims> c{0, 0, 0, 0, 0, 0};
  friend bool operator==(const Coord&, const Coord&) = default;
  std::string to_string() const;
};

/// Direction along a dimension: +1 or -1.
enum class Dir : int { kPlus = +1, kMinus = -1 };

inline Dir opposite(Dir d) { return d == Dir::kPlus ? Dir::kMinus : Dir::kPlus; }

/// Link index within a node, 0..11.
struct LinkIndex {
  int value = 0;
  friend bool operator==(LinkIndex, LinkIndex) = default;
  friend auto operator<=>(LinkIndex, LinkIndex) = default;
};

LinkIndex link_index(int dim, Dir dir);
int link_dim(LinkIndex l);
Dir link_dir(LinkIndex l);
/// The link on the *receiving* node that faces a sender's `l`.
LinkIndex facing_link(LinkIndex l);

/// The machine mesh: bijective node-id <-> coordinate mapping and neighbour
/// arithmetic with periodic wraparound.
class Torus {
 public:
  explicit Torus(Shape shape);

  const Shape& shape() const { return shape_; }
  int num_nodes() const { return volume_; }

  NodeId id(const Coord& c) const;
  Coord coord(NodeId n) const;

  /// Nearest neighbour of `n` one step along `dim` in direction `dir`.
  NodeId neighbor(NodeId n, int dim, Dir dir) const;
  NodeId neighbor(NodeId n, LinkIndex l) const;

  /// Minimal hop distance between two nodes on the torus.
  int distance(NodeId a, NodeId b) const;

  /// All (node, link) pairs; every unidirectional physical connection once.
  struct Edge {
    NodeId from;
    LinkIndex link;
    NodeId to;
  };
  std::vector<Edge> edges() const;

 private:
  Shape shape_;
  int volume_;
  std::array<int, kMaxDims> stride_;
};

}  // namespace qcdoc::torus
