#include "torus/partition.h"

#include <cassert>
#include <cstdlib>

namespace qcdoc::torus {

FoldSpec FoldSpec::identity(int dims) {
  FoldSpec spec;
  spec.groups.resize(static_cast<std::size_t>(dims));
  for (int d = 0; d < dims; ++d) spec.groups[static_cast<std::size_t>(d)] = {d};
  return spec;
}

Partition::Partition(const Torus* machine, FoldSpec spec, Coord origin, Shape box)
    : machine_(machine), spec_(std::move(spec)), origin_(origin), box_(box) {
  assert(!spec_.groups.empty() &&
         static_cast<int>(spec_.groups.size()) <= kMaxDims);
  // Every machine dim appears in at most one group; box extents of unfolded
  // dims must be 1; the box must fit inside the machine.
  std::array<bool, kMaxDims> used{};
  for (const auto& g : spec_.groups) {
    assert(!g.empty());
    for (int m : g) {
      assert(m >= 0 && m < kMaxDims && !used[static_cast<std::size_t>(m)]);
      used[static_cast<std::size_t>(m)] = true;
    }
  }
  for (int m = 0; m < kMaxDims; ++m) {
    assert(box_.extent[m] >= 1);
    assert(origin_.c[m] + box_.extent[m] <= machine_->shape().extent[m]);
    if (!used[static_cast<std::size_t>(m)]) assert(box_.extent[m] == 1);
  }
  for (std::size_t l = 0; l < spec_.groups.size(); ++l) {
    int e = 1;
    for (int m : spec_.groups[l]) e *= box_.extent[m];
    logical_shape_.extent[l] = e;
  }
}

Partition Partition::whole_machine(const Torus& machine, FoldSpec spec) {
  return Partition(&machine, std::move(spec), Coord{}, machine.shape());
}

int Partition::rank(const Coord& logical) const {
  int r = 0;
  for (int l = logical_dims() - 1; l >= 0; --l) {
    assert(logical.c[l] >= 0 && logical.c[l] < logical_shape_.extent[l]);
    r = r * logical_shape_.extent[l] + logical.c[l];
  }
  return r;
}

Coord Partition::logical_coord(int rank_value) const {
  assert(rank_value >= 0 && rank_value < num_nodes());
  Coord c;
  for (int l = 0; l < logical_dims(); ++l) {
    c.c[l] = rank_value % logical_shape_.extent[l];
    rank_value /= logical_shape_.extent[l];
  }
  return c;
}

void Partition::decode_group(int g, int index, Coord& machine_offset) const {
  // Mixed-radix reflected Gray decode: consecutive indices differ by +-1 in
  // exactly one machine-dim offset.  Digits are processed most-significant
  // (last machine dim in the group) first; odd digits reflect the remainder.
  const auto& dims = spec_.groups[static_cast<std::size_t>(g)];
  int volume = 1;
  for (int m : dims) volume *= box_.extent[m];
  int rem = index;
  for (std::size_t k = dims.size(); k-- > 0;) {
    const int m = dims[k];
    const int e = box_.extent[m];
    volume /= e;
    const int digit = rem / volume;
    rem %= volume;
    machine_offset.c[m] = digit;
    if (digit % 2 == 1) rem = volume - 1 - rem;  // reflected sweep
  }
}

NodeId Partition::node(const Coord& logical) const {
  Coord mc = origin_;
  for (int l = 0; l < logical_dims(); ++l) {
    Coord offset;
    decode_group(l, logical.c[l], offset);
    for (int m : spec_.groups[static_cast<std::size_t>(l)])
      mc.c[m] = origin_.c[m] + offset.c[m];
  }
  return machine_->id(mc);
}

Coord Partition::logical_of_node(NodeId n) const {
  // Partitions are small enough (machine-sized at most) that the inverse map
  // is built on demand; callers needing repeated lookups should cache nodes().
  for (int r = 0; r < num_nodes(); ++r) {
    const Coord lc = logical_coord(r);
    if (node(lc) == n) return lc;
  }
  assert(false && "node not in partition");
  return Coord{};
}

std::vector<NodeId> Partition::nodes() const {
  std::vector<NodeId> result;
  result.reserve(static_cast<std::size_t>(num_nodes()));
  for (int r = 0; r < num_nodes(); ++r) result.push_back(node(logical_coord(r)));
  return result;
}

Partition::Step Partition::step(const Coord& logical, int ldim, Dir dir) const {
  assert(ldim >= 0 && ldim < logical_dims());
  Coord to_logical = logical;
  const int e = logical_shape_.extent[ldim];
  to_logical.c[ldim] = (to_logical.c[ldim] + static_cast<int>(dir) + e) % e;

  Step s;
  s.from = node(logical);
  s.to = node(to_logical);
  s.single_hop = false;
  s.link = LinkIndex{0};

  const Coord ca = machine_->coord(s.from);
  const Coord cb = machine_->coord(s.to);
  int diff_dim = -1;
  for (int m = 0; m < kMaxDims; ++m) {
    if (ca.c[m] != cb.c[m]) {
      if (diff_dim != -1) return s;  // differs in >1 machine dim: multi-hop
      diff_dim = m;
    }
  }
  if (diff_dim == -1) {
    // Logical extent 1: the step loops back to the same node over the
    // self-connected wire of this group's first machine dim.  Using the
    // requested direction keeps +/- shifts on distinct physical links.
    s.single_hop = true;
    const int self_dim = spec_.groups[static_cast<std::size_t>(ldim)].front();
    s.link = link_index(self_dim, dir == Dir::kPlus ? Dir::kPlus : Dir::kMinus);
    return s;
  }
  const int me = machine_->shape().extent[diff_dim];
  const int delta = cb.c[diff_dim] - ca.c[diff_dim];
  Dir mdir;
  if (delta == 1 || delta == -(me - 1)) {
    mdir = Dir::kPlus;
  } else if (delta == -1 || delta == me - 1) {
    mdir = Dir::kMinus;
  } else {
    return s;  // non-neighbour jump (imperfect wrap)
  }
  // Machine extent 2: +1 and -1 reach the same node over *different* physical
  // links.  Spread logical directions over both links to avoid contention.
  if (me == 2) mdir = (dir == Dir::kPlus) ? Dir::kPlus : Dir::kMinus;
  s.single_hop = true;
  s.link = link_index(diff_dim, mdir);
  return s;
}

bool Partition::wrap_is_single_hop(int ldim) const {
  const int e = logical_shape_.extent[ldim];
  if (e <= 2) return true;
  Coord edge;
  edge.c[ldim] = e - 1;
  return step(edge, ldim, Dir::kPlus).single_hop;
}

bool Partition::is_true_torus() const {
  for (int l = 0; l < logical_dims(); ++l) {
    const int e = logical_shape_.extent[l];
    for (int x = 0; x < e; ++x) {
      Coord c;
      c.c[l] = x;
      if (!step(c, l, Dir::kPlus).single_hop) return false;
      if (!step(c, l, Dir::kMinus).single_hop) return false;
    }
  }
  return true;
}

Partition fold_to_4d(const Torus& machine) {
  FoldSpec spec;
  spec.groups = {{0}, {1}, {2}, {3, 4, 5}};
  return Partition::whole_machine(machine, spec);
}

}  // namespace qcdoc::torus
