// Software partitioning of the 6-D machine into lower-dimensional tori.
//
// The paper (Sections 2.2, 3.1): "we chose to make the mesh network six
// dimensional, so we can make lower-dimensional partitions of the machine in
// software, without moving cables".  A logical dimension of a partition is
// produced by *folding* one or more machine dimensions: we embed the logical
// axis into the machine sub-mesh with a mixed-radix reflected Gray code, so
// every unit step along the logical axis is exactly one physical hop.  The
// logical wraparound is also a single hop whenever the most-significant
// folded extent is even (always true for QCDOC's power-of-two meshes) and
// spans the full machine dimension (or has extent 2).
#pragma once

#include <vector>

#include "torus/coords.h"

namespace qcdoc::torus {

/// How machine dimensions combine into logical dimensions.
/// `groups[l]` lists the machine dims folded into logical dim `l`, fastest
/// varying first.  Machine dims not mentioned must have box extent 1.
struct FoldSpec {
  std::vector<std::vector<int>> groups;

  /// Identity fold: logical dim l = machine dim l, for `dims` dimensions.
  static FoldSpec identity(int dims);
};

/// A partition: a box of the machine mesh plus a fold of its dimensions into
/// a logical torus of dimensionality 1..6.
class Partition {
 public:
  /// `origin` and `box` select the machine sub-mesh (box extents must fit the
  /// machine shape); `spec` folds the box dims into logical dims.
  Partition(const Torus* machine, FoldSpec spec, Coord origin, Shape box);

  /// Fold the entire machine.
  static Partition whole_machine(const Torus& machine, FoldSpec spec);

  int logical_dims() const { return static_cast<int>(spec_.groups.size()); }
  const Shape& logical_shape() const { return logical_shape_; }
  int num_nodes() const { return logical_shape_.volume(); }
  const Torus& machine() const { return *machine_; }

  /// Rank <-> logical coordinate (rank is row-major over logical dims).
  int rank(const Coord& logical) const;
  Coord logical_coord(int rank) const;

  /// Machine node hosting a logical coordinate.
  NodeId node(const Coord& logical) const;
  /// Inverse: logical coordinate of a machine node in this partition.
  Coord logical_of_node(NodeId n) const;
  /// All machine nodes of the partition, in rank order.
  std::vector<NodeId> nodes() const;

  /// One unit step along logical dim `ldim`.
  struct Step {
    NodeId from;
    NodeId to;
    LinkIndex link;       ///< machine link carrying the hop (valid iff single_hop)
    bool single_hop;      ///< false only for non-neighbour logical wraps
  };
  Step step(const Coord& logical, int ldim, Dir dir) const;

  /// True if the logical wraparound of `ldim` is a single physical hop, i.e.
  /// periodic boundary conditions in this logical dim cost the same as any
  /// interior hop.
  bool wrap_is_single_hop(int ldim) const;

  /// True when every node pair that is logically adjacent (including wraps)
  /// is physically adjacent: the partition behaves as a true torus.
  bool is_true_torus() const;

 private:
  /// Machine-dim offsets (within the box) of logical index `i` in group `g`.
  void decode_group(int g, int index, Coord& machine_offset) const;

  const Torus* machine_;
  FoldSpec spec_;
  Coord origin_;
  Shape box_;
  Shape logical_shape_;
};

/// Convenience: fold a 6-D machine into the 4-D torus QCD runs on, combining
/// trailing machine dims into the last logical dim.  E.g. 8x4x4x2x2x2 ->
/// 8x4x4x8 (dims 3,4,5 folded into logical t).
Partition fold_to_4d(const Torus& machine);

}  // namespace qcdoc::torus
