// Conservative parallel discrete-event engine (see engine.h for the shared
// execution-order contract).
//
// Nodes of the 6-d torus are sharded across worker threads, each owning a
// contiguous block of per-node calendar queues (calendar_queue.h).
// Execution proceeds in adaptive slices chosen from the pending-event
// picture at the global minimum time T:
//
//   - Host slice: the earliest pending event is a host event (rank 0).
//     The coordinator runs every host event at T inline, in exact key
//     order, with all node queues untouched -- host events never demote
//     node execution to serial windows; they only bound them.
//   - Parallel window: two or more shards have events in [T, end), where
//     end = min(T + lookahead, next host event).  Workers drain their own
//     shards' events concurrently with no synchronization, legal because
//     the model guarantees no cross-node effect sooner than L cycles (the
//     HSSL physics: a frame delivery costs a full serialization of at least
//     the 16-bit minimum frame plus the wire time of flight, so
//     L = min_frame_bits + wire_delay_cycles).
//   - Single-shard fast-forward: only one shard is occupied (an idle
//     machine with a lone scrubber, a single hot node, threads == 1).  The
//     coordinator runs that shard serially with no barrier at all, as far
//     as min(next host event, earliest foreign-shard event) -- which
//     coalesces what would otherwise be thousands of 18-cycle windows.
//
// Each shard keeps a lazy min-heap of (time, rank) head positions so
// finding its next event is O(log ranks-with-events) instead of a scan of
// every rank per window; stale entries are dropped when they fail to match
// the live queue head.  Cross-node schedules made inside a parallel window
// are buffered in per-worker outboxes and merged at the barrier; because
// every queue orders by the deterministic key, the merge order is
// irrelevant and the execution order is bit-identical to the serial
// engine's.
//
// The cross-node lookahead contract is enforced uniformly: a node event
// scheduling onto another node closer than L cycles throws, on every
// execution path, so model bugs cannot hide in serially-executed phases.
// Node-to-host schedules are exempt (the host queue serializes them
// exactly) except inside a parallel window, where they must clear the
// window end like any other cross-rank schedule.
#pragma once

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/engine.h"

namespace qcdoc::sim {

struct ParallelConfig {
  int threads = 2;     ///< total, including the coordinating caller
  Cycle lookahead = 1; ///< window length; no cross-node effect sooner
  int num_nodes = 0;   ///< valid node affinities are [0, num_nodes)
};

class ParallelEngine final : public Engine {
 public:
  explicit ParallelEngine(ParallelConfig cfg);
  ~ParallelEngine() override;

  void schedule_at_on(Affinity dest, Cycle t, Action fn) override;
  bool step() override;
  Cycle run_until_idle() override;
  void run_until(Cycle t) override;
  void advance_to(Cycle t) override;
  bool drain(const ActiveCounter& counter) override;
  std::size_t pending_events() const override;
  u64 events_executed() const override;
  u64 trace_digest() const override;
  EngineReport report() const override;
  EngineClockState capture_clock() const override;
  void restore_clock(const EngineClockState& state) override;

  int threads() const { return cfg_.threads; }
  Cycle lookahead() const { return cfg_.lookahead; }

 private:
  static constexpr Cycle kNoEvent = CalendarQueue::kNoEvent;

  /// One rank's event queue plus its bookkeeping.  During a parallel window
  /// each RankQ is touched only by its owning worker; outside windows only
  /// the coordinator runs.
  struct RankQ {
    CalendarQueue q;
    u64 scheduled = 0;  ///< seq counter for events *sourced* by this rank
    u64 executed = 0;
    u64 digest = detail::kFnvOffset;
    Cycle last_exec = 0;  ///< monotonicity check: catches ordering bugs loudly
  };

  /// Reference to a rank queue's head, kept in the coordinator's lazy global
  /// index for exact-total-order execution (step()).  Entries are validated
  /// against the live queue head on pop; stale ones are discarded.
  struct HeadRef {
    Cycle time;
    u32 dest_rank;
    u32 src_rank;
    u64 seq;
  };
  struct HeadLater {
    bool operator()(const HeadRef& a, const HeadRef& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.dest_rank != b.dest_rank) return a.dest_rank > b.dest_rank;
      if (a.src_rank != b.src_rank) return a.src_rank > b.src_rank;
      return a.seq > b.seq;
    }
  };

  /// Shard-heap entry: the head position of one rank queue.  Same lazy
  /// validation scheme as HeadRef, but per shard and by (time, rank) only --
  /// the within-rank tie-break lives in the calendar queue itself.
  struct HeadPos {
    Cycle time;
    u32 rank;
  };
  struct HeadPosAfter {
    bool operator()(const HeadPos& a, const HeadPos& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.rank > b.rank;  // host rank 0 first at equal times
    }
  };

  struct alignas(64) WorkerSlot {
    ParallelEngine* owner = nullptr;
    std::vector<std::pair<u32, QueuedEvent>> outbox;
    /// Lazy min-heap over this shard's rank-queue heads (std::push_heap /
    /// std::pop_heap with HeadPosAfter).  Workers touch only their own
    /// shard's heap inside a window; the coordinator owns all of them
    /// between windows.
    std::vector<HeadPos> heap;
    Cycle window_max = 0;  ///< latest event time executed this window
    u64 window_pushed = 0;    ///< schedules made by this worker this window
    u64 window_executed = 0;  ///< events run by this worker this window
    std::exception_ptr error;
  };

  void check_not_in_event() const;
  /// Cleanse every shard heap's top and return the earliest pending event
  /// time.  After it returns, every non-empty shard heap front is valid.
  Cycle global_min();
  Cycle shard_top(int w);
  void shard_push_entry(u32 rank, Cycle t);
  /// Run one adaptive slice starting at the global minimum (host slice,
  /// parallel window, or single-shard fast-forward).  `limit` is exclusive;
  /// returns false when nothing is pending below it.
  bool run_slice(Cycle limit, const ActiveCounter* stop);
  void run_host_slice(Cycle t, const ActiveCounter* stop);
  void run_shard_serial(int w, Cycle limit, const ActiveCounter* stop);
  void run_window_parallel(Cycle end);
  void process_shard(int w);
  void exec_event(u32 rank, QueuedEvent ev);
  void push_serial(u32 dest_rank, QueuedEvent ev);
  void rebuild_index();
  /// Pop index entries until one matches a live queue head; returns the
  /// destination rank or kNoEvent-like sentinel (ranks_.size()) when empty.
  u32 pop_valid_head();
  void worker_main(int w);

  ParallelConfig cfg_;
  std::vector<RankQ> ranks_;
  std::vector<u32> shard_begin_;  ///< shard w owns ranks [w, w+1) bounds
  std::vector<u32> rank_owner_;   ///< rank -> owning shard

  // Coordinator-side lazy index over rank-queue heads, used whenever events
  // must run in exact global order (step()).  Invalidated by every slice,
  // rebuilt on demand.
  std::priority_queue<HeadRef, std::vector<HeadRef>, HeadLater> index_;
  bool index_valid_ = false;

  // Window state, written by the coordinator before releasing a generation.
  Cycle win_end_ = 0;

  // Single-shard fast-forward state: while a shard runs serially, foreign
  // pushes it makes tighten the execution bound live.
  int serial_shard_ = -1;
  Cycle serial_foreign_min_ = 0;

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  std::atomic<u64> go_gen_{0};
  std::atomic<int> done_count_{0};
  std::atomic<bool> exit_{false};

  u64 windows_parallel_ = 0;
  u64 windows_serial_ = 0;  ///< single-shard fast-forward slices
  u64 windows_host_ = 0;
  u64 cross_shard_events_ = 0;
  u64 pushed_total_ = 0;    ///< all schedules (slot counters folded in)
  u64 executed_total_ = 0;  ///< all executions (slot counters folded in)
  u64 parallel_window_events_ = 0;
  u64 peak_pending_ = 0;
  double barrier_stall_seconds_ = 0;
  std::array<u64, 16> barrier_hist_{};
  detail::ActionAllocStats alloc_base_ = detail::action_alloc_stats();
};

}  // namespace qcdoc::sim
