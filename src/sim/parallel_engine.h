// Conservative parallel discrete-event engine (see engine.h for the shared
// execution-order contract).
//
// Nodes of the 6-d torus are sharded across worker threads, each owning a
// contiguous block of per-node event queues.  Execution proceeds in time
// windows of `lookahead` cycles: within [T, T + L) every worker runs its own
// nodes' events in (time, src, seq) order with no synchronization, because
// the model guarantees no event can affect another node sooner than L cycles
// after it was scheduled.  The lookahead comes from the HSSL physics: the
// only cross-node interaction is a frame delivery, scheduled a full
// serialization (>= the 16-bit minimum frame) plus the wire time-of-flight
// after the send -- so L = min_frame_bits + wire_delay_cycles.
//
// Cross-node schedules made inside a window (deliveries into the next
// window) are buffered in per-worker outboxes and merged into the
// destination queues at the window barrier; because every queue orders by
// the deterministic key, the merge order is irrelevant and the execution
// order is bit-identical to the serial engine's.
//
// Host events (rank 0) are the one exception to the no-interaction rule:
// boot, fault injection and interrupt-window code may touch any node.  A
// window whose range contains a host event therefore runs serially on the
// coordinator, in exact global key order, with all workers parked -- which
// also makes single `step()` calls (and thus every predicate-bounded
// `run_while` loop) behave exactly like the serial engine.
#pragma once

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "sim/engine.h"

namespace qcdoc::sim {

struct ParallelConfig {
  int threads = 2;     ///< total, including the coordinating caller
  Cycle lookahead = 1; ///< window length; no cross-node effect sooner
  int num_nodes = 0;   ///< valid node affinities are [0, num_nodes)
};

class ParallelEngine final : public Engine {
 public:
  explicit ParallelEngine(ParallelConfig cfg);
  ~ParallelEngine() override;

  void schedule_at_on(Affinity dest, Cycle t, Action fn) override;
  bool step() override;
  Cycle run_until_idle() override;
  void run_until(Cycle t) override;
  void advance_to(Cycle t) override;
  bool drain(const ActiveCounter& counter) override;
  std::size_t pending_events() const override;
  u64 events_executed() const override;
  u64 trace_digest() const override;
  EngineReport report() const override;

  int threads() const { return cfg_.threads; }
  Cycle lookahead() const { return cfg_.lookahead; }

 private:
  static constexpr Cycle kNoEvent = ~Cycle{0};

  struct Event {
    Cycle time;
    u32 src_rank;
    u64 seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.src_rank != b.src_rank) return a.src_rank > b.src_rank;
      return a.seq > b.seq;
    }
  };
  /// One rank's event queue plus its bookkeeping.  During a parallel window
  /// each RankQ is touched only by its owning worker; outside windows only
  /// the coordinator runs.
  struct RankQ {
    std::priority_queue<Event, std::vector<Event>, Later> q;
    u64 scheduled = 0;  ///< seq counter for events *sourced* by this rank
    u64 executed = 0;
    u64 digest = detail::kFnvOffset;
    Cycle last_exec = 0;  ///< monotonicity check: catches ordering bugs loudly
  };
  /// Reference to a rank queue's head, kept in the coordinator's lazy global
  /// index for serial execution.  Entries are validated against the live
  /// queue head on pop; stale ones are discarded.
  struct HeadRef {
    Cycle time;
    u32 dest_rank;
    u32 src_rank;
    u64 seq;
  };
  struct HeadLater {
    bool operator()(const HeadRef& a, const HeadRef& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.dest_rank != b.dest_rank) return a.dest_rank > b.dest_rank;
      if (a.src_rank != b.src_rank) return a.src_rank > b.src_rank;
      return a.seq > b.seq;
    }
  };
  struct alignas(64) WorkerSlot {
    ParallelEngine* owner = nullptr;
    std::vector<std::pair<u32, Event>> outbox;
    Cycle window_max = 0;  ///< latest event time executed this window
    std::exception_ptr error;
  };

  void check_not_in_event() const;
  Cycle global_min() const;
  void run_window(Cycle start, Cycle end, const ActiveCounter* stop);
  void run_window_serial(Cycle end, const ActiveCounter* stop);
  void run_window_parallel(Cycle end);
  void process_shard(int w);
  void exec_event(u32 rank, Event ev);
  void push_serial(u32 dest_rank, Event ev);
  void rebuild_index();
  /// Pop index entries until one matches a live queue head; returns the
  /// destination rank or kNoEvent-like sentinel (ranks_.size()) when empty.
  u32 pop_valid_head();
  void worker_main(int w);

  ParallelConfig cfg_;
  std::vector<RankQ> ranks_;
  std::vector<u32> shard_begin_;  ///< shard w owns ranks [w, w+1) bounds

  // Coordinator-side lazy index over rank-queue heads, used whenever events
  // must run in exact global order (step(), serial windows).  Invalidated by
  // parallel windows, rebuilt on demand.
  std::priority_queue<HeadRef, std::vector<HeadRef>, HeadLater> index_;
  bool index_valid_ = false;

  // Window state, written by the coordinator before releasing a generation.
  Cycle win_end_ = 0;

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  std::atomic<u64> go_gen_{0};
  std::atomic<int> done_count_{0};
  std::atomic<bool> exit_{false};

  u64 windows_parallel_ = 0;
  u64 windows_serial_ = 0;
  u64 cross_shard_events_ = 0;
  double barrier_stall_seconds_ = 0;
};

}  // namespace qcdoc::sim
