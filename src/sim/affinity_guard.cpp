#include "sim/affinity_guard.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <vector>

namespace qcdoc::sim::affsan {

namespace {

struct Region {
  std::uintptr_t end = 0;  // one past the last tagged byte
  Affinity owner = kHostAffinity;
  const char* tag = "";
};

struct Registry {
  std::shared_mutex mu;
  // Keyed by numeric start address.  Looked up by upper_bound, never
  // iterated in full, so the pointer-derived order can not leak into any
  // event ordering decision.
  std::map<std::uintptr_t, Region> regions;
};

Registry& registry() {
  // Process-wide region table; populated at machine construction (single
  // threaded), read under a shared lock from worker threads.
  // qcdoc-lint: allow(mutable-static) sanitizer region table, lock-guarded
  static Registry r;
  return r;
}

/// Per-thread stack of active touched-set declarations.  `all_depth` counts
/// enclosing touch-all scopes; `affinities` holds the single-affinity ones.
struct TouchState {
  int all_depth = 0;
  std::vector<Affinity> affinities;
};

TouchState& touch_state() {
  // Scoped strictly inside one event's execution, never across events.
  // qcdoc-lint: allow(mutable-static) per-thread touch scopes, event-local
  thread_local TouchState t;
  return t;
}

}  // namespace

bool enabled() {
#if defined(QCDOC_AFFSAN)
  return true;
#else
  return false;
#endif
}

std::string affinity_name(Affinity a) {
  return a == kHostAffinity ? std::string("host")
                            : "node " + std::to_string(a);
}

void own(const void* base, std::size_t bytes, Affinity owner,
         const char* tag) {
  const auto start = reinterpret_cast<std::uintptr_t>(base);
  Registry& reg = registry();
  const std::unique_lock lock(reg.mu);
  reg.regions[start] = Region{start + bytes, owner, tag};
}

void disown(const void* base) {
  Registry& reg = registry();
  const std::unique_lock lock(reg.mu);
  reg.regions.erase(reinterpret_cast<std::uintptr_t>(base));
}

std::size_t region_count() {
  Registry& reg = registry();
  const std::shared_lock lock(reg.mu);
  return reg.regions.size();
}

bool owner_of(const void* addr, Affinity* owner) {
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  Registry& reg = registry();
  const std::shared_lock lock(reg.mu);
  auto it = reg.regions.upper_bound(p);
  if (it == reg.regions.begin()) return false;
  --it;
  if (p >= it->second.end) return false;
  if (owner) *owner = it->second.owner;
  return true;
}

void check(const void* addr, const char* file, int line) {
  const detail::ExecCtx& ctx = detail::exec_ctx();
  if (ctx.engine == nullptr) return;  // host driver code between engine runs

  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  Affinity owner = kHostAffinity;
  const char* tag = "";
  {
    Registry& reg = registry();
    const std::shared_lock lock(reg.mu);
    auto it = reg.regions.upper_bound(p);
    if (it == reg.regions.begin()) return;
    --it;
    if (p >= it->second.end) return;  // untagged memory makes no claim
    owner = it->second.owner;
    tag = it->second.tag;
  }
  if (ctx.affinity == owner) return;

  const TouchState& t = touch_state();
  if (t.all_depth > 0) return;
  if (std::find(t.affinities.begin(), t.affinities.end(), owner) !=
      t.affinities.end()) {
    return;
  }

  std::ostringstream msg;
  msg << "affsan: cross-affinity access to " << tag << " (owner "
      << affinity_name(owner) << ") from an event on "
      << affinity_name(ctx.affinity) << " at cycle " << ctx.now
      << " (scheduled by " << affinity_name(ctx.src) << ", seq " << ctx.seq
      << ") at " << file << ":" << line
      << "; declare QCDOC_AFFSAN_TOUCH at the schedule site or route the"
         " work through the owner's EngineRef";
  throw AffinityViolation(msg.str());
}

ScopedTouch::ScopedTouch() : all_(true) { ++touch_state().all_depth; }

ScopedTouch::ScopedTouch(Affinity affinity) : all_(false) {
  touch_state().affinities.push_back(affinity);
}

ScopedTouch::~ScopedTouch() {
  TouchState& t = touch_state();
  if (all_) {
    --t.all_depth;
  } else {
    t.affinities.pop_back();
  }
}

}  // namespace qcdoc::sim::affsan
