// Pooled small-buffer callable for engine event actions.
//
// Every scheduled event used to carry a std::function<void()>; the typical
// action captures two or three pointers plus a handful of integers, which
// overflows libstdc++'s 16-byte inline buffer and costs one heap
// allocation *per event* -- tens of millions of them in a 4^6 CG solve.
// EventFn is a move-only replacement with a 48-byte inline buffer sized so
// that every action in the model stores inline.  Oversized callables fall
// back to a recycling freelist of fixed-size blocks, so even they stop
// touching the heap once the pool is warm.
//
// The allocation counters are process-global and monotonic; the engines
// snapshot them at construction and report deltas, and the perf benches use
// them for a count-based (wall-time-free, flake-free) gate that the steady
// state allocates zero heap blocks per event.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/types.h"

namespace qcdoc::sim {

namespace detail {

/// Fixed block size for the oversized-action pool.  Anything larger still
/// (rare: big by-value captures) falls through to plain operator new, which
/// is counted separately so the zero-alloc gate catches it.
inline constexpr std::size_t kActionPoolBlock = 256;

void* action_alloc(std::size_t bytes);
void action_free(void* p, std::size_t bytes) noexcept;

/// Monotonic process-wide counters.  `pool_blocks` counts fresh blocks
/// carved for the freelist (a warm pool stops growing), `pool_reuses`
/// counts freelist hits, `oversize_allocs` counts actions too big even for
/// a pool block.  Heap traffic per event in steady state is zero iff
/// pool_blocks + oversize_allocs stops moving.
struct ActionAllocStats {
  u64 pool_blocks = 0;
  u64 pool_reuses = 0;
  u64 oversize_allocs = 0;
  /// Heap blocks obtained from the system allocator (not recycled).
  u64 heap_blocks() const { return pool_blocks + oversize_allocs; }
};
ActionAllocStats action_alloc_stats() noexcept;

}  // namespace detail

/// Move-only type-erased void() callable with a 48-byte small-buffer
/// optimization and a pooled heap fallback.  Drop-in for the scheduling
/// subset of std::function<void()>: implicit construction from any
/// invocable, operator(), bool conversion.  Copying is deliberately absent
/// -- an event action is scheduled once and executed once.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    } else {
      heap_ = detail::action_alloc(sizeof(D));
      try {
        ::new (heap_) D(std::forward<F>(f));
      } catch (...) {
        detail::action_free(heap_, sizeof(D));
        heap_ = nullptr;
        throw;
      }
    }
    ops_ = &kOps<D>;
  }

  EventFn(EventFn&& o) noexcept : heap_(o.heap_), ops_(o.ops_) {
    if (ops_ != nullptr && heap_ == nullptr) ops_->relocate(buf_, o.buf_);
    o.heap_ = nullptr;
    o.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      heap_ = o.heap_;
      ops_ = o.ops_;
      if (ops_ != nullptr && heap_ == nullptr) ops_->relocate(buf_, o.buf_);
      o.heap_ = nullptr;
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(target());
    if (heap_ != nullptr) {
      detail::action_free(heap_, ops_->size);
      heap_ = nullptr;
    }
    ops_ = nullptr;
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->call(target()); }

 private:
  struct Ops {
    void (*call)(void*);
    /// Move-construct the target from `src` into `dst`, then destroy the
    /// source.  Only ever used for inline targets, which are restricted to
    /// nothrow-move-constructible types.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    std::size_t size;  ///< allocation size for heap targets
  };

  template <typename D>
  static constexpr Ops kOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      sizeof(D)};

  void* target() noexcept { return heap_ != nullptr ? heap_ : buf_; }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace qcdoc::sim
