// Named statistics registry.
//
// Every hardware model publishes counters (packets sent, resends, page
// misses, stall cycles...) into a StatSet owned by its machine, so benches
// and diagnostics read one uniform interface.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace qcdoc::sim {

class StatSet {
 public:
  /// Add `delta` to counter `name`, creating it at zero if absent.
  void add(const std::string& name, u64 delta = 1);
  /// Stable pointer to the counter cell, creating it at zero if absent.
  /// std::map nodes never move, so hot paths (per-word, per-frame counters
  /// bumped tens of millions of times per solve) resolve the cell once at
  /// construction and increment through the pointer instead of paying a
  /// string-keyed tree lookup per event.
  u64* cell(const std::string& name) { return &counters_[name]; }
  /// Overwrite counter `name`.
  void set(const std::string& name, u64 value);
  /// Value of `name`, or 0 if never touched.
  u64 get(const std::string& name) const;
  bool has(const std::string& name) const;
  void clear();

  /// Stable-ordered snapshot for reports.
  std::vector<std::pair<std::string, u64>> snapshot() const;

  /// Sum counters of this name across a set of stat sets.
  static u64 total(const std::vector<const StatSet*>& sets,
                   const std::string& name);

 private:
  std::map<std::string, u64> counters_;
};

}  // namespace qcdoc::sim
