// Bucketed calendar queue (timing wheel) for per-rank event storage.
//
// The parallel engine's lookahead is ~18 cycles, so nearly every pending
// event on a rank lands within a few tens of cycles of the queue's current
// minimum.  A binary heap pays O(log n) comparisons *and* O(log n) moves of
// a 70-byte event per push and pop; the calendar queue instead keeps a ring
// of 64 one-cycle buckets covering [base, base + 64) -- push is an append
// to the right bucket, pop scans the earliest occupied bucket (tracked by a
// 64-bit occupancy mask, so finding it is one countr_zero).  Events beyond
// the wheel horizon (scrubber periods, watchdog ticks, refresh timers) go
// to a small overflow heap and migrate into the wheel when it drains
// forward to them.
//
// Pop order is exactly the engine's per-rank key order (time, src, seq):
// a bucket holds a single timestamp, so the tie-break is a linear scan of
// one (almost always tiny) bucket.  The property test in
// tests/test_calendar_queue.cpp checks this queue against a reference
// std::priority_queue over randomized schedules.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <queue>
#include <vector>

#include "common/types.h"
#include "sim/event_fn.h"

namespace qcdoc::sim {

/// One pending event as stored per destination rank.  The destination is
/// implied by which queue holds it.
struct QueuedEvent {
  Cycle time;
  u32 src_rank;
  u64 seq;
  EventFn fn;
};

/// The engine's per-rank ordering key: (time, src, seq).
struct EventKey {
  Cycle time;
  u32 src_rank;
  u64 seq;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src_rank != b.src_rank) return a.src_rank < b.src_rank;
    return a.seq < b.seq;
  }
};

class CalendarQueue {
 public:
  static constexpr Cycle kNoEvent = ~Cycle{0};
  static constexpr u32 kWheelBits = 6;
  static constexpr u32 kWheelSize = 1u << kWheelBits;  ///< 64 one-cycle buckets

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Timestamp of the earliest pending event, kNoEvent when empty.  O(1).
  Cycle min_time() const { return min_time_; }

  /// Full key of the earliest pending event.  Requires non-empty.
  EventKey min_key() const {
    if (wheel_count_ > 0) {
      const Bucket& b = near_[static_cast<std::size_t>(min_time_) &
                              (kWheelSize - 1)];
      const QueuedEvent* best = &b[0];
      for (std::size_t i = 1; i < b.size(); ++i) {
        if (key_of(b[i]) < key_of(*best)) best = &b[i];
      }
      return key_of(*best);
    }
    return key_of(far_.top());
  }

  /// Insert an event.  Returns true when it became the queue's new earliest
  /// event (strictly earlier than the previous minimum, or the queue was
  /// empty) -- the signal the engine uses to maintain its shard heaps.
  bool push(QueuedEvent ev) {
    const Cycle t = ev.time;
    if (size_ == 0) {
      // Re-anchor the wheel on the first event so long idle gaps (a
      // scrubber waking every 2^14 cycles) stay on the fast path.
      base_ = t;
      occupied_ = 0;
    }
    if (t >= base_ && t - base_ < kWheelSize) {
      const std::size_t b = static_cast<std::size_t>(t) & (kWheelSize - 1);
      near_[b].push_back(std::move(ev));
      occupied_ |= u64{1} << b;
      ++wheel_count_;
    } else if (t < base_) {
      // A push below the wheel window: only possible via host-time schedules
      // after the wheel advanced.  Rare; rebuild the wheel around it.
      rebase(t, std::move(ev));
    } else {
      far_.push(std::move(ev));
    }
    ++size_;
    if (t < min_time_ || size_ == 1) {
      min_time_ = t;
      return true;
    }
    return false;
  }

  /// Remove and return the earliest event (by (time, src, seq)).  Requires
  /// non-empty.
  QueuedEvent pop_min() {
    if (wheel_count_ == 0) migrate();
    const std::size_t bi =
        static_cast<std::size_t>(min_time_) & (kWheelSize - 1);
    Bucket& b = near_[bi];
    std::size_t best = 0;
    for (std::size_t i = 1; i < b.size(); ++i) {
      if (key_of(b[i]) < key_of(b[best])) best = i;
    }
    QueuedEvent ev = std::move(b[best]);
    if (best + 1 != b.size()) b[best] = std::move(b.back());
    b.pop_back();
    --wheel_count_;
    --size_;
    if (b.empty()) occupied_ &= ~(u64{1} << bi);
    advance_min();
    return ev;
  }

 private:
  using Bucket = std::vector<QueuedEvent>;

  struct FarLater {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return key_of(b) < key_of(a);
    }
  };

  static EventKey key_of(const QueuedEvent& e) {
    return EventKey{e.time, e.src_rank, e.seq};
  }

  /// Recompute min_time_ after a pop emptied (or drained) buckets.
  void advance_min() {
    if (size_ == 0) {
      min_time_ = kNoEvent;
      return;
    }
    if (wheel_count_ > 0) {
      // All wheel events are >= the popped minimum and < base_ + 64, so the
      // occupancy bit j positions past min_time_'s residue is exactly the
      // event time min_time_ + j.
      const u64 rot = std::rotr(occupied_,
                                static_cast<int>(min_time_ & (kWheelSize - 1)));
      min_time_ += static_cast<Cycle>(std::countr_zero(rot));
      return;
    }
    min_time_ = far_.top().time;
  }

  /// Move the wheel window forward onto the overflow heap's head and pull
  /// every event within the new window into buckets.
  void migrate() {
    base_ = far_.top().time;
    occupied_ = 0;
    while (!far_.empty() && far_.top().time - base_ < kWheelSize) {
      QueuedEvent ev = std::move(const_cast<QueuedEvent&>(far_.top()));
      far_.pop();
      const std::size_t b =
          static_cast<std::size_t>(ev.time) & (kWheelSize - 1);
      near_[b].push_back(std::move(ev));
      occupied_ |= u64{1} << b;
      ++wheel_count_;
    }
    min_time_ = base_;
  }

  /// Rebuild the wheel around a new, earlier base: spill every bucketed
  /// event to the overflow heap, then re-pull the new window.
  void rebase(Cycle t, QueuedEvent ev) {
    for (Bucket& b : near_) {
      for (QueuedEvent& e : b) far_.push(std::move(e));
      b.clear();
    }
    wheel_count_ = 0;
    base_ = t;
    occupied_ = u64{1} << (static_cast<std::size_t>(t) & (kWheelSize - 1));
    near_[static_cast<std::size_t>(t) & (kWheelSize - 1)].push_back(
        std::move(ev));
    ++wheel_count_;
    while (!far_.empty() && far_.top().time >= base_ &&
           far_.top().time - base_ < kWheelSize) {
      QueuedEvent e = std::move(const_cast<QueuedEvent&>(far_.top()));
      far_.pop();
      const std::size_t b =
          static_cast<std::size_t>(e.time) & (kWheelSize - 1);
      near_[b].push_back(std::move(e));
      occupied_ |= u64{1} << b;
      ++wheel_count_;
    }
  }

  std::array<Bucket, kWheelSize> near_;
  u64 occupied_ = 0;           ///< bit b set iff near_[b] is non-empty
  Cycle base_ = 0;             ///< wheel covers [base_, base_ + kWheelSize)
  std::size_t wheel_count_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, FarLater> far_;
  std::size_t size_ = 0;
  Cycle min_time_ = kNoEvent;
};

}  // namespace qcdoc::sim
