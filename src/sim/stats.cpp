#include "sim/stats.h"

namespace qcdoc::sim {

void StatSet::add(const std::string& name, u64 delta) { counters_[name] += delta; }

void StatSet::set(const std::string& name, u64 value) { counters_[name] = value; }

u64 StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatSet::has(const std::string& name) const {
  return counters_.count(name) != 0;
}

void StatSet::clear() { counters_.clear(); }

std::vector<std::pair<std::string, u64>> StatSet::snapshot() const {
  return {counters_.begin(), counters_.end()};
}

u64 StatSet::total(const std::vector<const StatSet*>& sets,
                   const std::string& name) {
  u64 sum = 0;
  for (const auto* s : sets) sum += s->get(name);
  return sum;
}

}  // namespace qcdoc::sim
