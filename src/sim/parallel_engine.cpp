#include "sim/parallel_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

namespace qcdoc::sim {

namespace {
/// Set while a thread is executing inside a parallel window of some engine;
/// routes that thread's schedules to its private outbox.  Written on window
/// entry, cleared on exit; the window barriers order every access, so no
/// state leaks across runs.
// qcdoc-lint: allow(mutable-static) window-scoped worker routing, see above
thread_local ParallelEngine* t_window_engine = nullptr;
// qcdoc-lint: allow(mutable-static) window-scoped worker routing, see above
thread_local void* t_slot = nullptr;
}  // namespace

ParallelEngine::ParallelEngine(ParallelConfig cfg) : cfg_(cfg) {
  if (cfg_.threads < 1) cfg_.threads = 1;
  if (cfg_.lookahead < 1) {
    throw std::invalid_argument("ParallelEngine: lookahead must be >= 1");
  }
  if (cfg_.num_nodes < 0) {
    throw std::invalid_argument("ParallelEngine: negative node count");
  }
  const u32 num_ranks = static_cast<u32>(cfg_.num_nodes) + 1;  // + host
  ranks_.resize(num_ranks);
  if (cfg_.threads > static_cast<int>(num_ranks)) {
    cfg_.threads = static_cast<int>(num_ranks);
  }
  shard_begin_.resize(static_cast<std::size_t>(cfg_.threads) + 1);
  for (int w = 0; w <= cfg_.threads; ++w) {
    shard_begin_[static_cast<std::size_t>(w)] =
        static_cast<u32>(static_cast<u64>(num_ranks) * static_cast<u64>(w) /
                         static_cast<u64>(cfg_.threads));
  }
  rank_owner_.resize(num_ranks);
  for (int w = 0; w < cfg_.threads; ++w) {
    for (u32 r = shard_begin_[static_cast<std::size_t>(w)];
         r < shard_begin_[static_cast<std::size_t>(w) + 1]; ++r) {
      rank_owner_[r] = static_cast<u32>(w);
    }
  }
  slots_.resize(static_cast<std::size_t>(cfg_.threads));
  for (auto& s : slots_) s.owner = this;
  workers_.reserve(static_cast<std::size_t>(cfg_.threads - 1));
  for (int w = 1; w < cfg_.threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  exit_.store(true, std::memory_order_relaxed);
  go_gen_.fetch_add(1, std::memory_order_release);
  go_gen_.notify_all();
  for (auto& t : workers_) t.join();
}

void ParallelEngine::worker_main(int w) {
  u64 seen = 0;
  for (;;) {
    u64 g = go_gen_.load(std::memory_order_acquire);
    while (g == seen) {
      go_gen_.wait(seen, std::memory_order_acquire);
      g = go_gen_.load(std::memory_order_acquire);
    }
    seen = g;
    if (exit_.load(std::memory_order_relaxed)) return;
    process_shard(w);
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

void ParallelEngine::check_not_in_event() const {
  if (detail::exec_ctx().engine == this) {
    throw std::logic_error(
        "ParallelEngine: nested run call from inside an event");
  }
}

Cycle ParallelEngine::shard_top(int w) {
  auto& heap = slots_[static_cast<std::size_t>(w)].heap;
  while (!heap.empty()) {
    const HeadPos hp = heap.front();
    if (ranks_[hp.rank].q.min_time() == hp.time) return hp.time;
    std::pop_heap(heap.begin(), heap.end(), HeadPosAfter{});
    heap.pop_back();  // stale: that head was executed or displaced
  }
  return kNoEvent;
}

Cycle ParallelEngine::global_min() {
  Cycle m = kNoEvent;
  for (int w = 0; w < cfg_.threads; ++w) {
    const Cycle t = shard_top(w);
    if (t < m) m = t;
  }
  return m;
}

void ParallelEngine::shard_push_entry(u32 rank, Cycle t) {
  auto& heap = slots_[rank_owner_[rank]].heap;
  heap.push_back(HeadPos{t, rank});
  std::push_heap(heap.begin(), heap.end(), HeadPosAfter{});
}

void ParallelEngine::schedule_at_on(Affinity dest, Cycle t, Action fn) {
  const u32 dest_rank = detail::affinity_rank(dest);
  if (dest_rank >= ranks_.size()) {
    throw std::invalid_argument(
        "Engine::schedule_at_on: affinity " + std::to_string(dest) +
        " out of range (machine has " + std::to_string(ranks_.size() - 1) +
        " nodes)");
  }
  const Cycle current = now();
  if (t < current) throw_past(t, current);
  const u32 src = detail::affinity_rank(current_affinity());
  if (src != 0 && dest_rank != src && dest_rank != 0 &&
      t < current + cfg_.lookahead) {
    // Uniform lookahead enforcement: a node reaching into another node
    // sooner than the HSSL physics allows is a model bug, and must fail on
    // every execution path, not only when it happens to land in a parallel
    // window.  Node-to-host schedules are exempt: the host queue serializes
    // them exactly (see the file comment in parallel_engine.h).
    throw std::logic_error(
        "ParallelEngine: cross-node event violates the lookahead window "
        "(t=" + std::to_string(t) + " < " + std::to_string(current) + " + " +
        std::to_string(cfg_.lookahead) + ")");
  }
  QueuedEvent ev{t, src, ranks_[src].scheduled++, std::move(fn)};
  if (t_window_engine == this) {
    // Inside a parallel window: the seq counter of `src` belongs to the
    // executing worker, as does the destination queue iff it is our own
    // rank.  Everything else must clear the window and goes through the
    // outbox -- including host-bound events, which otherwise could land
    // behind node events this window already executed.
    auto* slot = static_cast<WorkerSlot*>(t_slot);
    ++slot->window_pushed;
    if (dest_rank == src) {
      ranks_[dest_rank].q.push(std::move(ev));
      return;
    }
    if (t < win_end_) {
      throw std::logic_error(
          "ParallelEngine: cross-shard event inside a parallel window "
          "(t=" + std::to_string(t) + " < window end " +
          std::to_string(win_end_) + ")");
    }
    slot->outbox.emplace_back(dest_rank, std::move(ev));
    return;
  }
  ++pushed_total_;
  push_serial(dest_rank, std::move(ev));
}

void ParallelEngine::push_serial(u32 dest_rank, QueuedEvent ev) {
  RankQ& rq = ranks_[dest_rank];
  if (index_valid_) {
    const EventKey k{ev.time, ev.src_rank, ev.seq};
    if (rq.q.empty() || k < rq.q.min_key()) {
      index_.push(HeadRef{ev.time, dest_rank, ev.src_rank, ev.seq});
    }
  }
  const Cycle t = ev.time;
  if (rq.q.push(std::move(ev))) {
    // The event became its rank's new head: cover it with a shard-heap
    // entry, and -- when a single-shard fast-forward is running -- tighten
    // the foreign-event bound it must respect.
    shard_push_entry(dest_rank, t);
    if (serial_shard_ >= 0 &&
        rank_owner_[dest_rank] != static_cast<u32>(serial_shard_) &&
        t < serial_foreign_min_) {
      serial_foreign_min_ = t;
    }
  }
}

void ParallelEngine::rebuild_index() {
  index_ = {};
  for (u32 r = 0; r < ranks_.size(); ++r) {
    const RankQ& rq = ranks_[r];
    if (rq.q.empty()) continue;
    const EventKey k = rq.q.min_key();
    index_.push(HeadRef{k.time, r, k.src_rank, k.seq});
  }
  index_valid_ = true;
}

u32 ParallelEngine::pop_valid_head() {
  while (!index_.empty()) {
    const HeadRef h = index_.top();
    const RankQ& rq = ranks_[h.dest_rank];
    if (!rq.q.empty()) {
      const EventKey k = rq.q.min_key();
      if (k.time == h.time && k.src_rank == h.src_rank && k.seq == h.seq) {
        return h.dest_rank;
      }
    }
    index_.pop();  // stale: that event was executed or displaced
  }
  return static_cast<u32>(ranks_.size());
}

void ParallelEngine::exec_event(u32 rank, QueuedEvent ev) {
  RankQ& rq = ranks_[rank];
  if (ev.time < rq.last_exec) {
    throw std::logic_error(
        "ParallelEngine: event order violation on rank " +
        std::to_string(rank) + " (t=" + std::to_string(ev.time) +
        " after t=" + std::to_string(rq.last_exec) + ")");
  }
  rq.last_exec = ev.time;
  rq.digest = detail::fnv1a(rq.digest, ev.time);
  rq.digest = detail::fnv1a(rq.digest, (u64{rank} << 32) | ev.src_rank);
  rq.digest = detail::fnv1a(rq.digest, ev.seq);
  ++rq.executed;
  if (t_window_engine == this) {
    ++static_cast<WorkerSlot*>(t_slot)->window_executed;
  } else {
    ++executed_total_;
  }
  const detail::ScopedExecCtx ctx(this, ev.time, detail::rank_affinity(rank),
                                  detail::rank_affinity(ev.src_rank), ev.seq);
  ev.fn();
}

bool ParallelEngine::step() {
  check_not_in_event();
  if (!index_valid_) rebuild_index();
  const u32 rank = pop_valid_head();
  if (rank >= ranks_.size()) return false;
  index_.pop();
  RankQ& rq = ranks_[rank];
  const Cycle popped_t = rq.q.min_time();
  QueuedEvent ev = rq.q.pop_min();
  if (ev.time > now_) now_ = ev.time;
  exec_event(rank, std::move(ev));
  if (!rq.q.empty()) {
    const EventKey k = rq.q.min_key();
    index_.push(HeadRef{k.time, rank, k.src_rank, k.seq});
    if (k.time != popped_t) shard_push_entry(rank, k.time);
  }
  return true;
}

bool ParallelEngine::run_slice(Cycle limit, const ActiveCounter* stop) {
  const Cycle T = global_min();
  if (T == kNoEvent || T >= limit) return false;
  const Cycle host_head = ranks_[0].q.min_time();
  if (host_head == T) {
    run_host_slice(T, stop);
    return true;
  }
  Cycle end = T + cfg_.lookahead;
  if (limit < end) end = limit;
  if (host_head < end) end = host_head;
  // Count shards with work in [T, end); global_min() just cleansed every
  // shard heap, so the fronts are live heads.
  int occupied = 0;
  int only = 0;
  for (int w = 0; w < cfg_.threads; ++w) {
    const auto& heap = slots_[static_cast<std::size_t>(w)].heap;
    if (!heap.empty() && heap.front().time < end) {
      ++occupied;
      only = w;
    }
  }
  if (occupied >= 2) {
    run_window_parallel(end);
  } else {
    run_shard_serial(only, limit, stop);
  }
  return true;
}

void ParallelEngine::run_host_slice(Cycle t, const ActiveCounter* stop) {
  ++windows_host_;
  index_valid_ = false;
  RankQ& host = ranks_[0];
  while (host.q.min_time() == t) {
    if (stop != nullptr && stop->value() == 0) break;
    if (t > now_) now_ = t;
    exec_event(0, host.q.pop_min());
  }
  const Cycle m = host.q.min_time();
  if (m != kNoEvent && m != t) shard_push_entry(0, m);
}

void ParallelEngine::run_shard_serial(int w, Cycle limit,
                                      const ActiveCounter* stop) {
  ++windows_serial_;
  index_valid_ = false;
  auto& heap = slots_[static_cast<std::size_t>(w)].heap;
  // Earliest pending event on any foreign shard.  The fronts are live
  // (global_min() cleansed them) and while this shard runs alone only its
  // own pushes can add foreign events, which push_serial folds in below.
  Cycle fmin = kNoEvent;
  for (int v = 0; v < cfg_.threads; ++v) {
    if (v == w) continue;
    const auto& h = slots_[static_cast<std::size_t>(v)].heap;
    if (!h.empty() && h.front().time < fmin) fmin = h.front().time;
  }
  serial_shard_ = w;
  serial_foreign_min_ = fmin;
  bool stopped = false;
  while (!stopped) {
    if (stop != nullptr && stop->value() == 0) break;
    const Cycle top = shard_top(w);
    if (top == kNoEvent) break;
    // Any pending foreign event bounds us exactly: when it runs it may
    // schedule a host event at its own timestamp (node-to-host schedules
    // have no lookahead), and host events order before everything at or
    // after their time.  A pending host event bounds us exactly too.
    Cycle bound = limit;
    if (serial_foreign_min_ < bound) bound = serial_foreign_min_;
    if (w != 0 && ranks_[0].q.min_time() < bound) {
      bound = ranks_[0].q.min_time();
    }
    if (top >= bound) break;
    const u32 r = heap.front().rank;
    std::pop_heap(heap.begin(), heap.end(), HeadPosAfter{});
    heap.pop_back();
    RankQ& rq = ranks_[r];
    while (rq.q.min_time() == top) {
      if (top > now_) now_ = top;
      exec_event(r, rq.q.pop_min());
      if (stop != nullptr && stop->value() == 0) {
        stopped = true;
        break;
      }
      // A same-time schedule onto the host must run before this rank's
      // remaining events at `top` (rank 0 orders first).  Fall back to the
      // heap, which now holds the host's entry (w == 0), or return to the
      // slice driver (w != 0).
      if (r != 0 && ranks_[0].q.min_time() == top) break;
    }
    const Cycle m = rq.q.min_time();
    if (m != kNoEvent) shard_push_entry(r, m);
  }
  serial_shard_ = -1;
}

void ParallelEngine::run_window_parallel(Cycle end) {
  ++windows_parallel_;
  index_valid_ = false;
  win_end_ = end;
  done_count_.store(0, std::memory_order_relaxed);
  go_gen_.fetch_add(1, std::memory_order_release);
  go_gen_.notify_all();
  process_shard(0);

  const int need = cfg_.threads - 1;
  int done = done_count_.load(std::memory_order_acquire);
  if (done < need) {
    // qcdoc-lint: allow(wall-clock) coordinator-stall perf accounting only
    const auto wait_start = std::chrono::steady_clock::now();
    // Brief spin: windows are short, so the workers usually finish within a
    // few microseconds of the coordinator.
    for (int i = 0; i < 4096 && done < need; ++i) {
      done = done_count_.load(std::memory_order_acquire);
    }
    while (done < need) {
      done_count_.wait(done, std::memory_order_acquire);
      done = done_count_.load(std::memory_order_acquire);
    }
    const double stall =
        // qcdoc-lint: allow(wall-clock) perf accounting only, as above.
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count();
    barrier_stall_seconds_ += stall;
    std::size_t bucket = 1;  // waited, sub-microsecond
    if (stall * 1e6 >= 1.0) {
      const u64 us = static_cast<u64>(stall * 1e6);
      bucket = std::min<std::size_t>(
          1 + static_cast<std::size_t>(std::bit_width(us)),
          barrier_hist_.size() - 1);
    }
    ++barrier_hist_[bucket];
  } else {
    ++barrier_hist_[0];  // workers beat the coordinator: no wait at all
  }

  for (WorkerSlot& slot : slots_) {
    if (slot.error) {
      const std::exception_ptr err = slot.error;
      slot.error = nullptr;
      std::rethrow_exception(err);
    }
  }
  Cycle latest = now_;
  for (WorkerSlot& slot : slots_) {
    cross_shard_events_ += slot.outbox.size();
    for (auto& [dest, ev] : slot.outbox) {
      const Cycle t = ev.time;
      if (ranks_[dest].q.push(std::move(ev))) shard_push_entry(dest, t);
    }
    slot.outbox.clear();
    if (slot.window_max > latest) latest = slot.window_max;
    pushed_total_ += slot.window_pushed;
    executed_total_ += slot.window_executed;
    parallel_window_events_ += slot.window_executed;
  }
  now_ = latest;
  const u64 pending = pushed_total_ - executed_total_;
  if (pending > peak_pending_) peak_pending_ = pending;
}

void ParallelEngine::process_shard(int w) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(w)];
  t_window_engine = this;
  t_slot = &slot;
  slot.window_max = 0;
  slot.window_pushed = 0;
  slot.window_executed = 0;
  try {
    auto& heap = slot.heap;
    for (;;) {
      // Cleanse the heap top down to a live head inside the window.
      Cycle top = kNoEvent;
      while (!heap.empty()) {
        const HeadPos hp = heap.front();
        if (ranks_[hp.rank].q.min_time() == hp.time) {
          top = hp.time;
          break;
        }
        std::pop_heap(heap.begin(), heap.end(), HeadPosAfter{});
        heap.pop_back();
      }
      if (top >= win_end_) break;  // includes empty (kNoEvent)
      const u32 r = heap.front().rank;
      std::pop_heap(heap.begin(), heap.end(), HeadPosAfter{});
      heap.pop_back();
      RankQ& rq = ranks_[r];
      Cycle m;
      while ((m = rq.q.min_time()) < win_end_) {
        exec_event(r, rq.q.pop_min());
      }
      if (rq.last_exec > slot.window_max) slot.window_max = rq.last_exec;
      if (m != kNoEvent) {
        heap.push_back(HeadPos{m, r});
        std::push_heap(heap.begin(), heap.end(), HeadPosAfter{});
      }
    }
  } catch (...) {
    slot.error = std::current_exception();
  }
  t_window_engine = nullptr;
  t_slot = nullptr;
}

Cycle ParallelEngine::run_until_idle() {
  check_not_in_event();
  while (run_slice(kNoEvent, nullptr)) {
  }
  return now_;
}

void ParallelEngine::run_until(Cycle t) {
  check_not_in_event();
  const Cycle limit = t + 1 == 0 ? kNoEvent : t + 1;
  while (run_slice(limit, nullptr)) {
  }
  if (t > now_) now_ = t;
}

void ParallelEngine::advance_to(Cycle t) {
  check_not_in_event();
  if (global_min() < t) {
    throw std::logic_error("Engine::advance_to would skip pending events");
  }
  if (t > now_) now_ = t;
}

bool ParallelEngine::drain(const ActiveCounter& counter) {
  check_not_in_event();
  while (counter.value() != 0) {
    if (!run_slice(kNoEvent, &counter)) return false;  // stalled
  }
  // The serial engine stops on the exact event that zeroed the counter; a
  // parallel window may run up to lookahead-1 cycles of trailing traffic
  // (acks, landings already committed) past it.  The clock lands on the
  // zero-crossing either way.
  now_ = std::max(now_, counter.last_zero_at());
  return true;
}

std::size_t ParallelEngine::pending_events() const {
  std::size_t n = 0;
  for (const RankQ& rq : ranks_) n += rq.q.size();
  return n;
}

u64 ParallelEngine::events_executed() const {
  u64 n = 0;
  for (const RankQ& rq : ranks_) n += rq.executed;
  return n;
}

u64 ParallelEngine::trace_digest() const {
  u64 h = detail::kFnvOffset;
  for (u32 r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r].executed == 0) continue;
    h = detail::fnv1a(h, r);
    h = detail::fnv1a(h, ranks_[r].executed);
    h = detail::fnv1a(h, ranks_[r].digest);
  }
  return h;
}

EngineClockState ParallelEngine::capture_clock() const {
  EngineClockState st;
  st.now = now_;
  st.events_executed = executed_total_;
  for (u32 r = 0; r < ranks_.size(); ++r) {
    const RankQ& rq = ranks_[r];
    if (rq.scheduled == 0 && rq.executed == 0) continue;
    st.streams.push_back({r, rq.scheduled, rq.executed, rq.digest});
  }
  return st;
}

void ParallelEngine::restore_clock(const EngineClockState& state) {
  if (pending_events() != 0) {
    throw std::logic_error("ParallelEngine::restore_clock with pending events");
  }
  now_ = state.now;
  executed_total_ = state.events_executed;
  pushed_total_ = 0;
  for (const EngineStreamState& s : state.streams) {
    if (s.rank >= ranks_.size()) {
      throw std::logic_error(
          "ParallelEngine::restore_clock: stream rank " +
          std::to_string(s.rank) + " outside this machine's " +
          std::to_string(ranks_.size()) + " ranks (geometry mismatch)");
    }
    RankQ& rq = ranks_[s.rank];
    rq.scheduled = s.scheduled;
    rq.executed = s.executed;
    rq.digest = s.digest;
    // Monotonicity floor: nothing restored may execute before the snapshot
    // time.
    rq.last_exec = state.now;
    pushed_total_ += s.scheduled;
  }
  index_valid_ = false;
}

EngineReport ParallelEngine::report() const {
  EngineReport rep;
  rep.kind = "parallel";
  rep.threads = cfg_.threads;
  rep.lookahead = cfg_.lookahead;
  rep.events = events_executed();
  rep.windows_parallel = windows_parallel_;
  rep.windows_serial = windows_serial_;
  rep.windows_host = windows_host_;
  rep.cross_shard_events = cross_shard_events_;
  rep.parallel_window_events = parallel_window_events_;
  rep.peak_pending_events = peak_pending_;
  rep.barrier_stall_seconds = barrier_stall_seconds_;
  rep.barrier_wait_hist = barrier_hist_;
  const detail::ActionAllocStats a = detail::action_alloc_stats();
  rep.action_pool_blocks = a.pool_blocks - alloc_base_.pool_blocks;
  rep.action_pool_reuses = a.pool_reuses - alloc_base_.pool_reuses;
  rep.action_oversize_allocs = a.oversize_allocs - alloc_base_.oversize_allocs;
  rep.shard_events.resize(static_cast<std::size_t>(cfg_.threads), 0);
  for (int w = 0; w < cfg_.threads; ++w) {
    for (u32 r = shard_begin_[static_cast<std::size_t>(w)];
         r < shard_begin_[static_cast<std::size_t>(w) + 1]; ++r) {
      rep.shard_events[static_cast<std::size_t>(w)] += ranks_[r].executed;
    }
  }
  return rep;
}

}  // namespace qcdoc::sim
