#include "sim/parallel_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace qcdoc::sim {

namespace {
/// Set while a thread is executing inside a parallel window of some engine;
/// routes that thread's schedules to its private outbox.  Written on window
/// entry, cleared on exit; the window barriers order every access, so no
/// state leaks across runs.
// qcdoc-lint: allow(mutable-static) window-scoped worker routing, see above
thread_local ParallelEngine* t_window_engine = nullptr;
// qcdoc-lint: allow(mutable-static) window-scoped worker routing, see above
thread_local void* t_slot = nullptr;
}  // namespace

ParallelEngine::ParallelEngine(ParallelConfig cfg) : cfg_(cfg) {
  if (cfg_.threads < 1) cfg_.threads = 1;
  if (cfg_.lookahead < 1) {
    throw std::invalid_argument("ParallelEngine: lookahead must be >= 1");
  }
  if (cfg_.num_nodes < 0) {
    throw std::invalid_argument("ParallelEngine: negative node count");
  }
  const u32 num_ranks = static_cast<u32>(cfg_.num_nodes) + 1;  // + host
  ranks_.resize(num_ranks);
  if (cfg_.threads > static_cast<int>(num_ranks)) {
    cfg_.threads = static_cast<int>(num_ranks);
  }
  shard_begin_.resize(static_cast<std::size_t>(cfg_.threads) + 1);
  for (int w = 0; w <= cfg_.threads; ++w) {
    shard_begin_[static_cast<std::size_t>(w)] =
        static_cast<u32>(static_cast<u64>(num_ranks) * static_cast<u64>(w) /
                         static_cast<u64>(cfg_.threads));
  }
  slots_.resize(static_cast<std::size_t>(cfg_.threads));
  for (auto& s : slots_) s.owner = this;
  workers_.reserve(static_cast<std::size_t>(cfg_.threads - 1));
  for (int w = 1; w < cfg_.threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  exit_.store(true, std::memory_order_relaxed);
  go_gen_.fetch_add(1, std::memory_order_release);
  go_gen_.notify_all();
  for (auto& t : workers_) t.join();
}

void ParallelEngine::worker_main(int w) {
  u64 seen = 0;
  for (;;) {
    u64 g = go_gen_.load(std::memory_order_acquire);
    while (g == seen) {
      go_gen_.wait(seen, std::memory_order_acquire);
      g = go_gen_.load(std::memory_order_acquire);
    }
    seen = g;
    if (exit_.load(std::memory_order_relaxed)) return;
    process_shard(w);
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

void ParallelEngine::check_not_in_event() const {
  if (detail::exec_ctx().engine == this) {
    throw std::logic_error(
        "ParallelEngine: nested run call from inside an event");
  }
}

Cycle ParallelEngine::global_min() const {
  Cycle m = kNoEvent;
  for (const RankQ& rq : ranks_) {
    if (!rq.q.empty() && rq.q.top().time < m) m = rq.q.top().time;
  }
  return m;
}

void ParallelEngine::schedule_at_on(Affinity dest, Cycle t, Action fn) {
  const u32 dest_rank = detail::affinity_rank(dest);
  if (dest_rank >= ranks_.size()) {
    throw std::invalid_argument(
        "Engine::schedule_at_on: affinity " + std::to_string(dest) +
        " out of range (machine has " + std::to_string(ranks_.size() - 1) +
        " nodes)");
  }
  const Cycle current = now();
  if (t < current) throw_past(t, current);
  const u32 src = detail::affinity_rank(current_affinity());
  if (t_window_engine == this) {
    // Inside a parallel window: the seq counter of `src` belongs to the
    // executing worker, as does the destination queue iff it is our own
    // rank.  Everything else must clear the window (the lookahead
    // guarantee) and goes through the outbox.
    Event ev{t, src, ranks_[src].scheduled++, std::move(fn)};
    if (dest_rank == src) {
      ranks_[dest_rank].q.push(std::move(ev));
      return;
    }
    if (t < win_end_) {
      throw std::logic_error(
          "ParallelEngine: cross-node event violates the lookahead window "
          "(t=" + std::to_string(t) +
          " < window end " + std::to_string(win_end_) + ")");
    }
    auto* slot = static_cast<WorkerSlot*>(t_slot);
    slot->outbox.emplace_back(dest_rank, std::move(ev));
    return;
  }
  push_serial(dest_rank, Event{t, src, ranks_[src].scheduled++, std::move(fn)});
}

void ParallelEngine::push_serial(u32 dest_rank, Event ev) {
  RankQ& rq = ranks_[dest_rank];
  const bool new_head = rq.q.empty() || Later{}(rq.q.top(), ev);
  if (index_valid_ && new_head) {
    index_.push(HeadRef{ev.time, dest_rank, ev.src_rank, ev.seq});
  }
  rq.q.push(std::move(ev));
}

void ParallelEngine::rebuild_index() {
  index_ = {};
  for (u32 r = 0; r < ranks_.size(); ++r) {
    const RankQ& rq = ranks_[r];
    if (rq.q.empty()) continue;
    const Event& top = rq.q.top();
    index_.push(HeadRef{top.time, r, top.src_rank, top.seq});
  }
  index_valid_ = true;
}

u32 ParallelEngine::pop_valid_head() {
  while (!index_.empty()) {
    const HeadRef h = index_.top();
    const RankQ& rq = ranks_[h.dest_rank];
    if (!rq.q.empty() && rq.q.top().time == h.time &&
        rq.q.top().src_rank == h.src_rank && rq.q.top().seq == h.seq) {
      return h.dest_rank;
    }
    index_.pop();  // stale: that event was executed or displaced
  }
  return static_cast<u32>(ranks_.size());
}

void ParallelEngine::exec_event(u32 rank, Event ev) {
  RankQ& rq = ranks_[rank];
  if (ev.time < rq.last_exec) {
    throw std::logic_error(
        "ParallelEngine: event order violation on rank " +
        std::to_string(rank) + " (t=" + std::to_string(ev.time) +
        " after t=" + std::to_string(rq.last_exec) + ")");
  }
  rq.last_exec = ev.time;
  rq.digest = detail::fnv1a(rq.digest, ev.time);
  rq.digest = detail::fnv1a(rq.digest, (u64{rank} << 32) | ev.src_rank);
  rq.digest = detail::fnv1a(rq.digest, ev.seq);
  ++rq.executed;
  const detail::ScopedExecCtx ctx(this, ev.time, detail::rank_affinity(rank));
  ev.fn();
}

bool ParallelEngine::step() {
  check_not_in_event();
  if (!index_valid_) rebuild_index();
  const u32 rank = pop_valid_head();
  if (rank >= ranks_.size()) return false;
  index_.pop();
  RankQ& rq = ranks_[rank];
  Event ev = std::move(const_cast<Event&>(rq.q.top()));
  rq.q.pop();
  now_ = ev.time;
  exec_event(rank, std::move(ev));
  if (!rq.q.empty()) {
    const Event& top = rq.q.top();
    index_.push(HeadRef{top.time, rank, top.src_rank, top.seq});
  }
  return true;
}

void ParallelEngine::run_window(Cycle start, Cycle end,
                                const ActiveCounter* stop) {
  (void)start;
  const RankQ& host = ranks_[0];
  const bool host_in_window = !host.q.empty() && host.q.top().time < end;
  if (cfg_.threads <= 1 || host_in_window) {
    run_window_serial(end, stop);
  } else {
    run_window_parallel(end);
  }
}

void ParallelEngine::run_window_serial(Cycle end, const ActiveCounter* stop) {
  ++windows_serial_;
  if (!index_valid_) rebuild_index();
  for (;;) {
    if (stop && stop->value() == 0) return;
    const u32 rank = pop_valid_head();
    if (rank >= ranks_.size()) return;
    if (index_.top().time >= end) return;
    index_.pop();
    RankQ& rq = ranks_[rank];
    Event ev = std::move(const_cast<Event&>(rq.q.top()));
    rq.q.pop();
    now_ = ev.time;
    exec_event(rank, std::move(ev));
    if (!rq.q.empty()) {
      const Event& top = rq.q.top();
      index_.push(HeadRef{top.time, rank, top.src_rank, top.seq});
    }
  }
}

void ParallelEngine::run_window_parallel(Cycle end) {
  ++windows_parallel_;
  index_valid_ = false;
  win_end_ = end;
  done_count_.store(0, std::memory_order_relaxed);
  go_gen_.fetch_add(1, std::memory_order_release);
  go_gen_.notify_all();
  process_shard(0);

  const int need = cfg_.threads - 1;
  int done = done_count_.load(std::memory_order_acquire);
  if (done < need) {
    // qcdoc-lint: allow(wall-clock) coordinator-stall perf accounting only
    const auto wait_start = std::chrono::steady_clock::now();
    // Brief spin: windows are short, so the workers usually finish within a
    // few microseconds of the coordinator.
    for (int i = 0; i < 4096 && done < need; ++i) {
      done = done_count_.load(std::memory_order_acquire);
    }
    while (done < need) {
      done_count_.wait(done, std::memory_order_acquire);
      done = done_count_.load(std::memory_order_acquire);
    }
    barrier_stall_seconds_ +=
        // qcdoc-lint: allow(wall-clock) perf accounting only, as above.
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count();
  }

  for (WorkerSlot& slot : slots_) {
    if (slot.error) {
      const std::exception_ptr err = slot.error;
      slot.error = nullptr;
      std::rethrow_exception(err);
    }
  }
  Cycle latest = now_;
  for (WorkerSlot& slot : slots_) {
    cross_shard_events_ += slot.outbox.size();
    for (auto& [dest, ev] : slot.outbox) {
      ranks_[dest].q.push(std::move(ev));
    }
    slot.outbox.clear();
    if (slot.window_max > latest) latest = slot.window_max;
  }
  now_ = latest;
}

void ParallelEngine::process_shard(int w) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(w)];
  t_window_engine = this;
  t_slot = &slot;
  slot.window_max = 0;
  try {
    for (u32 r = shard_begin_[static_cast<std::size_t>(w)];
         r < shard_begin_[static_cast<std::size_t>(w) + 1]; ++r) {
      RankQ& rq = ranks_[r];
      while (!rq.q.empty() && rq.q.top().time < win_end_) {
        Event ev = std::move(const_cast<Event&>(rq.q.top()));
        rq.q.pop();
        exec_event(r, std::move(ev));
      }
      if (rq.executed > 0 && rq.last_exec > slot.window_max) {
        slot.window_max = rq.last_exec;
      }
    }
  } catch (...) {
    slot.error = std::current_exception();
  }
  t_window_engine = nullptr;
  t_slot = nullptr;
}

Cycle ParallelEngine::run_until_idle() {
  check_not_in_event();
  for (;;) {
    const Cycle t = global_min();
    if (t == kNoEvent) break;
    run_window(t, t + cfg_.lookahead, nullptr);
  }
  return now_;
}

void ParallelEngine::run_until(Cycle t) {
  check_not_in_event();
  for (;;) {
    const Cycle first = global_min();
    if (first == kNoEvent || first > t) break;
    run_window(first, std::min(first + cfg_.lookahead, t + 1), nullptr);
  }
  if (t > now_) now_ = t;
}

void ParallelEngine::advance_to(Cycle t) {
  check_not_in_event();
  if (global_min() < t) {
    throw std::logic_error("Engine::advance_to would skip pending events");
  }
  if (t > now_) now_ = t;
}

bool ParallelEngine::drain(const ActiveCounter& counter) {
  check_not_in_event();
  while (counter.value() != 0) {
    const Cycle t = global_min();
    if (t == kNoEvent) return false;  // stalled: no events but not done
    run_window(t, t + cfg_.lookahead, &counter);
  }
  // The serial engine stops on the exact event that zeroed the counter; a
  // parallel window may run up to lookahead-1 cycles of trailing traffic
  // (acks, landings already committed) past it.  The clock lands on the
  // zero-crossing either way.
  now_ = std::max(now_, counter.last_zero_at());
  return true;
}

std::size_t ParallelEngine::pending_events() const {
  std::size_t n = 0;
  for (const RankQ& rq : ranks_) n += rq.q.size();
  return n;
}

u64 ParallelEngine::events_executed() const {
  u64 n = 0;
  for (const RankQ& rq : ranks_) n += rq.executed;
  return n;
}

u64 ParallelEngine::trace_digest() const {
  u64 h = detail::kFnvOffset;
  for (u32 r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r].executed == 0) continue;
    h = detail::fnv1a(h, r);
    h = detail::fnv1a(h, ranks_[r].executed);
    h = detail::fnv1a(h, ranks_[r].digest);
  }
  return h;
}

EngineReport ParallelEngine::report() const {
  EngineReport rep;
  rep.kind = "parallel";
  rep.threads = cfg_.threads;
  rep.lookahead = cfg_.lookahead;
  rep.events = events_executed();
  rep.windows_parallel = windows_parallel_;
  rep.windows_serial = windows_serial_;
  rep.cross_shard_events = cross_shard_events_;
  rep.barrier_stall_seconds = barrier_stall_seconds_;
  rep.shard_events.resize(static_cast<std::size_t>(cfg_.threads), 0);
  for (int w = 0; w < cfg_.threads; ++w) {
    for (u32 r = shard_begin_[static_cast<std::size_t>(w)];
         r < shard_begin_[static_cast<std::size_t>(w) + 1]; ++r) {
      rep.shard_events[static_cast<std::size_t>(w)] += ranks_[r].executed;
    }
  }
  return rep;
}

}  // namespace qcdoc::sim
