// Discrete-event simulation engine.
//
// All timed behaviour in the machine model (serial-link bit timing, DMA
// engines, memory controllers, the 40 MHz global clock) is expressed as
// events on one engine.  Two interchangeable implementations exist behind
// the abstract `Engine` interface:
//
//   - SerialEngine: a single priority queue, the reference semantics.
//   - ParallelEngine (parallel_engine.h): a conservative parallel executor
//     that shards event queues per node and synchronizes in lookahead-sized
//     time windows.
//
// Determinism is a correctness requirement, mirroring the paper's demand
// that repeated runs of a physics evolution be identical in all bits
// (Section 4).  Both engines therefore execute events in one well-defined
// total order, keyed by
//
//     (time, destination rank, source rank, per-source sequence number)
//
// where the "rank" of an event is the node it acts on (the host controller
// is rank 0 and fires first at equal timestamps; node i is rank i+1).  The
// source rank is the rank that scheduled the event, and the sequence number
// counts schedules per source.  This key is computable identically by both
// engines -- unlike a global schedule counter, it does not depend on the
// interleaving of independent nodes -- and it reduces to plain scheduling
// order for events scheduled from one context at one timestamp.
//
// Every engine additionally maintains an order digest (FNV-1a over the key
// tuples, folded per destination rank) so tests can assert that two runs --
// or the two engine implementations -- executed the exact same events at the
// exact same times.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/event_fn.h"

namespace qcdoc::sim {

/// Which node's state an event acts on.  Used by the parallel engine to
/// shard work; ignored (beyond tie-breaking) by the serial engine.
using Affinity = u32;

/// Affinity of host-controller events (boot, Ethernet, fault injection,
/// partition-interrupt windows).  Host events execute before node events at
/// equal timestamps and only ever run on the coordinating thread.
inline constexpr Affinity kHostAffinity = 0xffffffffu;

namespace detail {

/// Total-order rank of an affinity: host first, then nodes in id order.
inline u32 affinity_rank(Affinity a) {
  return a == kHostAffinity ? 0u : a + 1u;
}
inline Affinity rank_affinity(u32 rank) {
  return rank == 0 ? kHostAffinity : rank - 1;
}

inline constexpr u64 kFnvOffset = 1469598103934665603ull;
inline constexpr u64 kFnvPrime = 1099511628211ull;

/// Fold one 64-bit value into an FNV-1a digest, byte by byte.
inline u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffu)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

/// Per-thread execution context: which engine is running an event on this
/// thread, at what time, on behalf of which node.  Lets now() and schedule()
/// work unchanged from worker threads, and lets newly scheduled events
/// inherit the scheduling node as their source rank.
struct ExecCtx {
  const void* engine = nullptr;
  Cycle now = 0;
  Affinity affinity = kHostAffinity;
  /// Scheduling provenance of the running event, carried so diagnostics
  /// (the AFFSAN sanitizer above all) can say who created it: the affinity
  /// that scheduled it and its per-source sequence number.
  Affinity src = kHostAffinity;
  u64 seq = 0;
};

ExecCtx& exec_ctx();

/// Installs an event's context for the duration of its action and restores
/// the previous one even when the action throws, so a failed event can never
/// leave a dangling engine pointer in the thread-local context.
class ScopedExecCtx {
 public:
  ScopedExecCtx(const void* engine, Cycle now, Affinity affinity,
                Affinity src = kHostAffinity, u64 seq = 0)
      : saved_(exec_ctx()) {
    exec_ctx() = {engine, now, affinity, src, seq};
  }
  ~ScopedExecCtx() { exec_ctx() = saved_; }
  ScopedExecCtx(const ScopedExecCtx&) = delete;
  ScopedExecCtx& operator=(const ScopedExecCtx&) = delete;

 private:
  ExecCtx saved_;
};

}  // namespace detail

/// Shared count of in-flight activity (the mesh uses one for DMA transfers),
/// used to detect quiescence in O(1) instead of scanning every link after
/// every event.  Atomic so DMA completions on worker threads can decrement
/// it; `last_zero_at` records the event time of the decrement that reached
/// zero, which is where a drain stops the clock.
class ActiveCounter {
 public:
  void increment() { count_.fetch_add(1, std::memory_order_relaxed); }
  void decrement(Cycle at) {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      last_zero_at_.store(at, std::memory_order_release);
    }
  }
  long value() const { return count_.load(std::memory_order_acquire); }
  Cycle last_zero_at() const {
    return last_zero_at_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<long> count_{0};
  std::atomic<Cycle> last_zero_at_{0};
};

/// Execution statistics, for perf reports and the scaling bench.
struct EngineReport {
  std::string kind;      ///< "serial" or "parallel"
  int threads = 1;
  Cycle lookahead = 0;
  u64 events = 0;
  u64 windows_parallel = 0;          ///< windows run with workers engaged
  u64 windows_serial = 0;            ///< single-shard slices, coordinator only
  u64 windows_host = 0;              ///< host-event slices at window seams
  u64 cross_shard_events = 0;        ///< events exchanged at window barriers
  u64 parallel_window_events = 0;    ///< events executed inside parallel windows
  u64 peak_pending_events = 0;       ///< high-water pending count (barrier-sampled)
  double barrier_stall_seconds = 0;  ///< coordinator wall time at barriers
  /// Wall time the coordinator waited per barrier, bucketed by log2
  /// microseconds: [0] no wait, [1] <2us, [2] <4us ... [15] >=16ms.
  std::array<u64, 16> barrier_wait_hist{};
  /// Action-storage heap traffic over this engine's lifetime (process-global
  /// counter deltas; see sim/event_fn.h).  Steady state must not grow
  /// pool_blocks or oversize_allocs -- the benches gate on exactly that.
  u64 action_pool_blocks = 0;    ///< fresh pool blocks carved for big actions
  u64 action_pool_reuses = 0;    ///< freelist recycles (no heap traffic)
  u64 action_oversize_allocs = 0;  ///< actions too big even for a pool block
  std::vector<u64> shard_events;   ///< events executed per shard
};

/// One rank's order-bookkeeping stream as captured into a snapshot.  Rank
/// numbering follows detail::affinity_rank (host 0, node i at i+1).
struct EngineStreamState {
  u32 rank = 0;
  u64 scheduled = 0;
  u64 executed = 0;
  u64 digest = detail::kFnvOffset;
};

/// The engine state that must survive a process restart for the order digest
/// to stay continuous: the clock plus every rank's stream.  Pending events
/// are deliberately NOT here -- snapshots are taken at quiescent points
/// (pending_events() == 0, or events owned by re-armable services), because
/// pooled EventFn closures capture raw pointers and cannot be serialized.
struct EngineClockState {
  Cycle now = 0;
  u64 events_executed = 0;
  std::vector<EngineStreamState> streams;
};

/// Abstract engine interface.  See the file comment for the execution-order
/// contract shared by all implementations.
class Engine {
 public:
  /// Event actions are pooled small-buffer callables, not std::function --
  /// a typical action's captures overflow std::function's inline buffer and
  /// would cost one heap allocation per scheduled event (see event_fn.h).
  using Action = EventFn;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  virtual ~Engine() = default;

  /// Current simulated time in CPU cycles (valid from any thread running an
  /// event of this engine; elsewhere it is the engine's global clock).
  Cycle now() const {
    const detail::ExecCtx& ctx = detail::exec_ctx();
    return ctx.engine == this ? ctx.now : now_;
  }

  /// Schedule `fn` to run `delay` cycles from now on the current node (the
  /// node whose event is executing, or the host outside event context).
  void schedule(Cycle delay, Action fn) {
    schedule_at_on(current_affinity(), now() + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` on the current node.  Throws
  /// std::invalid_argument when `t < now()`.
  void schedule_at(Cycle t, Action fn) {
    schedule_at_on(current_affinity(), t, std::move(fn));
  }

  /// Schedule `fn` to run `delay` cycles from now on node `dest`.
  void schedule_on(Affinity dest, Cycle delay, Action fn) {
    schedule_at_on(dest, now() + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (>= now(), else throws
  /// std::invalid_argument) acting on node `dest`.
  virtual void schedule_at_on(Affinity dest, Cycle t, Action fn) = 0;

  /// Run the globally earliest pending event.  Returns false when no events
  /// remain.  Always executes exactly one event in total-key order, on the
  /// calling thread -- so predicate-bounded loops behave identically on
  /// every engine.
  virtual bool step() = 0;

  /// Step while `pred()` holds.  Returns false when the queue empties with
  /// the predicate still true (a stall).
  template <typename Pred>
  bool run_while(Pred&& pred) {
    while (pred()) {
      if (!step()) return false;
    }
    return true;
  }

  /// Run events until the queue drains.  Returns the final time.
  virtual Cycle run_until_idle() = 0;

  /// Run events with timestamp <= t, then set now() = t.
  virtual void run_until(Cycle t) = 0;

  /// Advance the clock with no event processing (used by the BSP runtime to
  /// account for pure-compute phases).  `t` must be >= now() and no pending
  /// event may be earlier than `t`.
  virtual void advance_to(Cycle t) = 0;

  /// Run until `counter` reads zero; now() ends at the time of the event
  /// that zeroed it.  Returns false (stopping) if the queue empties first --
  /// the signature of a stall.
  virtual bool drain(const ActiveCounter& counter) = 0;

  virtual std::size_t pending_events() const = 0;
  virtual u64 events_executed() const = 0;

  /// Order digest over every executed event's (time, dest, src, seq) key,
  /// folded per destination rank so it is independent of how independent
  /// nodes interleaved.  Equal digests => the engines executed the same
  /// events at the same times in the same per-node order.
  virtual u64 trace_digest() const = 0;

  virtual EngineReport report() const = 0;

  /// Capture now() plus every rank's (scheduled, executed, digest) stream.
  /// Restored via restore_clock() -- possibly on the other implementation or
  /// at a different thread count -- the digest continues bit-identically.
  virtual EngineClockState capture_clock() const = 0;

  /// Install captured clock state on a fresh engine.  Throws
  /// std::logic_error when events are pending (restore order: clock first,
  /// then services re-arm their standing events) or when a stream's rank
  /// does not exist on this engine (geometry mismatch).
  virtual void restore_clock(const EngineClockState& state) = 0;

 protected:
  Affinity current_affinity() const {
    const detail::ExecCtx& ctx = detail::exec_ctx();
    return ctx.engine == this ? ctx.affinity : kHostAffinity;
  }
  [[noreturn]] static void throw_past(Cycle t, Cycle now);

  Cycle now_ = 0;
};

/// A (engine, node) pair: the handle components hold so their schedules are
/// attributed to the right node.  Implicitly constructible from a bare
/// Engine* (host affinity) so host-side code and tests stay unchanged.
class EngineRef {
 public:
  using Action = Engine::Action;

  EngineRef() = default;
  EngineRef(Engine* engine) : engine_(engine) {}  // NOLINT: implicit, host
  EngineRef(Engine* engine, Affinity affinity)
      : engine_(engine), affinity_(affinity) {}

  Engine* get() const { return engine_; }
  Affinity affinity() const { return affinity_; }
  void set_affinity(Affinity a) { affinity_ = a; }

  Cycle now() const { return engine_->now(); }
  void schedule(Cycle delay, Action fn) const {
    engine_->schedule_at_on(affinity_, engine_->now() + delay, std::move(fn));
  }
  void schedule_at(Cycle t, Action fn) const {
    engine_->schedule_at_on(affinity_, t, std::move(fn));
  }

 private:
  Engine* engine_ = nullptr;
  Affinity affinity_ = kHostAffinity;
};

/// The reference implementation: one priority queue, one thread.
class SerialEngine final : public Engine {
 public:
  void schedule_at_on(Affinity dest, Cycle t, Action fn) override;
  bool step() override;
  Cycle run_until_idle() override;
  void run_until(Cycle t) override;
  void advance_to(Cycle t) override;
  bool drain(const ActiveCounter& counter) override;
  std::size_t pending_events() const override { return queue_.size(); }
  u64 events_executed() const override { return events_; }
  u64 trace_digest() const override;
  EngineReport report() const override;
  EngineClockState capture_clock() const override;
  void restore_clock(const EngineClockState& state) override;

 private:
  struct Event {
    Cycle time;
    u32 dest_rank;
    u32 src_rank;
    u64 seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.dest_rank != b.dest_rank) return a.dest_rank > b.dest_rank;
      if (a.src_rank != b.src_rank) return a.src_rank > b.src_rank;
      return a.seq > b.seq;
    }
  };
  /// Per-rank bookkeeping: schedule counter as a source, execution count and
  /// order digest as a destination.
  struct Stream {
    u64 scheduled = 0;
    u64 executed = 0;
    u64 digest = detail::kFnvOffset;
  };

  Stream& stream(u32 rank);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Stream> streams_;
  u64 events_ = 0;
  detail::ActionAllocStats alloc_base_ = detail::action_alloc_stats();
};

/// Worker-thread count from QCDOC_SIM_THREADS (default 1, clamped to
/// [1, 256]); the knob every bench and example routes through.
int threads_from_env();

}  // namespace qcdoc::sim
