// Discrete-event simulation engine.
//
// All timed behaviour in the machine model (serial-link bit timing, DMA
// engines, memory controllers, the 40 MHz global clock) is expressed as
// events on a single engine.  Events at equal timestamps fire in scheduling
// order, which makes every simulation bit-reproducible -- mirroring the
// paper's requirement that repeated runs of a physics evolution be identical
// in all bits (Section 4).
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace qcdoc::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current simulated time in CPU cycles.
  Cycle now() const { return now_; }

  /// Schedule `fn` to run `delay` cycles from now.
  void schedule(Cycle delay, Action fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void schedule_at(Cycle t, Action fn);

  /// Run the earliest pending event.  Returns false when no events remain.
  bool step();

  /// Run events until the queue drains.  Returns the final time.
  Cycle run_until_idle();

  /// Run events with timestamp <= t, then set now() = t.
  void run_until(Cycle t);

  /// Advance the clock with no event processing (used by the BSP runtime to
  /// account for pure-compute phases).  `t` must be >= now().
  void advance_to(Cycle t);

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Cycle time;
    u64 seq;  // tie-breaker: schedule order
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Cycle now_ = 0;
  u64 next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace qcdoc::sim
