#include "sim/event_fn.h"

#include <atomic>
#include <mutex>
#include <vector>

namespace qcdoc::sim::detail {

namespace {

/// Freelist of kActionPoolBlock-sized blocks for oversized actions.  The
/// lock is uncontended in practice -- oversized actions are rare (the whole
/// point of the 48-byte inline buffer) and the parallel engine's window
/// barriers keep the schedule rate per thread modest.  Process-lifetime
/// state, shared by every engine, like a malloc arena.
// qcdoc-lint: allow(mutable-static) process-wide allocator arena, see above
struct Pool {
  std::mutex mu;
  std::vector<void*> free;
  ~Pool() {
    for (void* p : free) ::operator delete(p);
  }
};

Pool& pool() {
  // qcdoc-lint: allow(mutable-static) process-wide allocator arena, see above
  static Pool p;
  return p;
}

// qcdoc-lint: allow(mutable-static) monotonic perf counters, see file header
std::atomic<u64> g_pool_blocks{0};
// qcdoc-lint: allow(mutable-static) monotonic perf counters, see file header
std::atomic<u64> g_pool_reuses{0};
// qcdoc-lint: allow(mutable-static) monotonic perf counters, see file header
std::atomic<u64> g_oversize_allocs{0};

}  // namespace

void* action_alloc(std::size_t bytes) {
  if (bytes <= kActionPoolBlock) {
    Pool& p = pool();
    {
      const std::lock_guard<std::mutex> lock(p.mu);
      if (!p.free.empty()) {
        void* block = p.free.back();
        p.free.pop_back();
        g_pool_reuses.fetch_add(1, std::memory_order_relaxed);
        return block;
      }
    }
    g_pool_blocks.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(kActionPoolBlock);
  }
  g_oversize_allocs.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void action_free(void* p, std::size_t bytes) noexcept {
  if (bytes <= kActionPoolBlock) {
    Pool& pl = pool();
    const std::lock_guard<std::mutex> lock(pl.mu);
    pl.free.push_back(p);
    return;
  }
  ::operator delete(p);
}

ActionAllocStats action_alloc_stats() noexcept {
  ActionAllocStats s;
  s.pool_blocks = g_pool_blocks.load(std::memory_order_relaxed);
  s.pool_reuses = g_pool_reuses.load(std::memory_order_relaxed);
  s.oversize_allocs = g_oversize_allocs.load(std::memory_order_relaxed);
  return s;
}

}  // namespace qcdoc::sim::detail
