// AFFSAN -- the affinity-ownership sanitizer (dynamic half of the ownership
// model; DESIGN.md section 6).
//
// The static rules R9..R11 (tools/lint) catch cross-affinity state access
// they can see in the source.  AFFSAN catches what they cannot: at
// construction, the network builder tags each per-node component (SCU, node
// memory, every HSSL wire) with the affinity that owns it; mutators of those
// components call QCDOC_AFFSAN_CHECK(this), and the check traps -- throws
// AffinityViolation -- when the executing event's affinity differs from the
// region's owner and no touched-affinity scope covers it.
//
// A host event that legitimately reaches into node state (fault injection,
// recovery) declares its touched set at the schedule site, mirroring the
// `// qcdoc-lint: touches(...)` annotation the static rule R11 requires:
//
//   host.schedule_at(at, [this, idx] {
//     QCDOC_AFFSAN_TOUCH_ALL();          // or QCDOC_AFFSAN_TOUCH(affinity)
//     ...mutate any node's wire/SCU/memory...
//   });
//
// Everything here is zero-cost unless the build sets QCDOC_AFFSAN: the
// macros expand to ((void)0), no regions are registered, and the check
// function is never called.  Under QCDOC_AFFSAN the registry adds one
// shared-mutex read lock per checked mutator call -- sanitizer-build money,
// spent only on entry points, never in compute kernels.
//
// Checks fire only inside events (detail::exec_ctx().engine != nullptr).
// Host driver code that mutates node state between engine runs -- boot
// pokes, health sweeps, test setup -- executes outside any event and passes
// unconditionally: AFFSAN audits the *event* ownership discipline that the
// parallel engine's determinism depends on, not single-threaded setup.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "sim/engine.h"

namespace qcdoc::sim {

/// Thrown by a failed affinity check.  Carries the full provenance in its
/// what() string: the tagged region, its owner, and the offending event's
/// time, execution affinity, scheduling source and sequence number.
class AffinityViolation : public std::logic_error {
 public:
  explicit AffinityViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace affsan {

/// True when the build has the sanitizer compiled in (QCDOC_AFFSAN).
bool enabled();

/// "host" or "node N" -- the spelling used in violation reports.
std::string affinity_name(Affinity a);

/// Register [base, base+bytes) as state owned by `owner`.  `tag` must
/// outlive the region (string literals in practice).  Re-registering an
/// identical base replaces the previous region.
void own(const void* base, std::size_t bytes, Affinity owner,
         const char* tag);

/// Remove the region registered at `base` (no-op when unknown, so
/// destructor teardown order never matters).
void disown(const void* base);

/// Trap if the current event may not touch `addr`: the address lies in a
/// registered region, the event's affinity differs from the region's
/// owner, and no enclosing ScopedTouch covers that owner.  Outside events
/// (no engine in the thread-local context) the check passes.
void check(const void* addr, const char* file, int line);

/// Number of live regions (test hook).
std::size_t region_count();

/// Owner lookup (test hook).  Returns false when `addr` is untagged.
bool owner_of(const void* addr, Affinity* owner);

/// Declares, for the current thread until scope exit, that the running
/// event may touch state owned by `affinity` -- or by anyone, for the
/// default-constructed form.  This is the dynamic twin of the static
/// `touches(...)` annotation; the QCDOC_AFFSAN_TOUCH* macros place one of
/// these at the top of an event body.  Scopes nest.
class ScopedTouch {
 public:
  ScopedTouch();  ///< touch-all: the event may reach any affinity
  explicit ScopedTouch(Affinity affinity);
  ~ScopedTouch();
  ScopedTouch(const ScopedTouch&) = delete;
  ScopedTouch& operator=(const ScopedTouch&) = delete;

 private:
  bool all_;
};

}  // namespace affsan
}  // namespace qcdoc::sim

// Two-level expansion so __LINE__ pastes into a unique identifier.
#define QCDOC_AFFSAN_CAT2(a, b) a##b
#define QCDOC_AFFSAN_CAT(a, b) QCDOC_AFFSAN_CAT2(a, b)

#if defined(QCDOC_AFFSAN)

#define QCDOC_AFFSAN_OWN(base, bytes, owner, tag) \
  ::qcdoc::sim::affsan::own((base), (bytes), (owner), (tag))
#define QCDOC_AFFSAN_DISOWN(base) ::qcdoc::sim::affsan::disown((base))
#define QCDOC_AFFSAN_CHECK(addr) \
  ::qcdoc::sim::affsan::check((addr), __FILE__, __LINE__)
#define QCDOC_AFFSAN_TOUCH(affinity)           \
  const ::qcdoc::sim::affsan::ScopedTouch      \
      QCDOC_AFFSAN_CAT(qcdoc_affsan_touch_, __LINE__)(affinity)
#define QCDOC_AFFSAN_TOUCH_ALL()          \
  const ::qcdoc::sim::affsan::ScopedTouch \
      QCDOC_AFFSAN_CAT(qcdoc_affsan_touch_, __LINE__)

#else  // !QCDOC_AFFSAN: every annotation compiles away.

#define QCDOC_AFFSAN_OWN(base, bytes, owner, tag) ((void)0)
#define QCDOC_AFFSAN_DISOWN(base) ((void)0)
#define QCDOC_AFFSAN_CHECK(addr) ((void)0)
#define QCDOC_AFFSAN_TOUCH(affinity) ((void)0)
#define QCDOC_AFFSAN_TOUCH_ALL() ((void)0)

#endif  // QCDOC_AFFSAN
