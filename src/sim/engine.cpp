#include "sim/engine.h"

#include <cstdlib>
#include <utility>

namespace qcdoc::sim {

namespace detail {

ExecCtx& exec_ctx() {
  // Saved and restored around every event by ScopedExecCtx.
  // qcdoc-lint: allow(mutable-static) per-thread ctx, never crosses events
  thread_local ExecCtx ctx;
  return ctx;
}

}  // namespace detail

void Engine::throw_past(Cycle t, Cycle now) {
  throw std::invalid_argument(
      "Engine::schedule_at: cannot schedule into the past (t=" +
      std::to_string(t) + " < now=" + std::to_string(now) + ")");
}

int threads_from_env() {
  const char* env = std::getenv("QCDOC_SIM_THREADS");
  if (!env || !*env) return 1;
  const long v = std::strtol(env, nullptr, 10);
  if (v <= 1) return 1;
  return v > 256 ? 256 : static_cast<int>(v);
}

SerialEngine::Stream& SerialEngine::stream(u32 rank) {
  if (streams_.size() <= rank) streams_.resize(rank + 1);
  return streams_[rank];
}

void SerialEngine::schedule_at_on(Affinity dest, Cycle t, Action fn) {
  const Cycle current = now();
  if (t < current) throw_past(t, current);
  const u32 src = detail::affinity_rank(current_affinity());
  queue_.push(Event{t, detail::affinity_rank(dest), src,
                    stream(src).scheduled++, std::move(fn)});
}

bool SerialEngine::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires const_cast; the element is popped
  // immediately afterwards so the broken ordering invariant is never observed.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  Stream& dst = stream(ev.dest_rank);
  dst.digest = detail::fnv1a(dst.digest, ev.time);
  dst.digest = detail::fnv1a(dst.digest, (u64{ev.dest_rank} << 32) | ev.src_rank);
  dst.digest = detail::fnv1a(dst.digest, ev.seq);
  ++dst.executed;
  ++events_;
  const detail::ScopedExecCtx ctx(this, ev.time,
                                  detail::rank_affinity(ev.dest_rank),
                                  detail::rank_affinity(ev.src_rank), ev.seq);
  ev.fn();
  return true;
}

Cycle SerialEngine::run_until_idle() {
  while (step()) {
  }
  return now_;
}

void SerialEngine::run_until(Cycle t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (t > now_) now_ = t;
}

void SerialEngine::advance_to(Cycle t) {
  if (!queue_.empty() && queue_.top().time < t) {
    throw std::logic_error("Engine::advance_to would skip pending events");
  }
  if (t > now_) now_ = t;
}

bool SerialEngine::drain(const ActiveCounter& counter) {
  while (counter.value() != 0) {
    if (!step()) return false;  // stalled: no events but not done
  }
  return true;
}

u64 SerialEngine::trace_digest() const {
  u64 h = detail::kFnvOffset;
  for (u32 r = 0; r < streams_.size(); ++r) {
    if (streams_[r].executed == 0) continue;
    h = detail::fnv1a(h, r);
    h = detail::fnv1a(h, streams_[r].executed);
    h = detail::fnv1a(h, streams_[r].digest);
  }
  return h;
}

EngineClockState SerialEngine::capture_clock() const {
  EngineClockState st;
  st.now = now_;
  st.events_executed = events_;
  for (u32 r = 0; r < streams_.size(); ++r) {
    const Stream& s = streams_[r];
    if (s.scheduled == 0 && s.executed == 0) continue;
    st.streams.push_back({r, s.scheduled, s.executed, s.digest});
  }
  return st;
}

void SerialEngine::restore_clock(const EngineClockState& state) {
  if (!queue_.empty()) {
    throw std::logic_error("SerialEngine::restore_clock with pending events");
  }
  now_ = state.now;
  events_ = state.events_executed;
  streams_.clear();
  for (const EngineStreamState& s : state.streams) {
    Stream& dst = stream(s.rank);
    dst.scheduled = s.scheduled;
    dst.executed = s.executed;
    dst.digest = s.digest;
  }
}

EngineReport SerialEngine::report() const {
  EngineReport rep;
  rep.kind = "serial";
  rep.events = events_;
  const detail::ActionAllocStats a = detail::action_alloc_stats();
  rep.action_pool_blocks = a.pool_blocks - alloc_base_.pool_blocks;
  rep.action_pool_reuses = a.pool_reuses - alloc_base_.pool_reuses;
  rep.action_oversize_allocs = a.oversize_allocs - alloc_base_.oversize_allocs;
  return rep;
}

}  // namespace qcdoc::sim
