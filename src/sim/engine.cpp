#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace qcdoc::sim {

void Engine::schedule_at(Cycle t, Action fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires const_cast; the element is popped
  // immediately afterwards so the broken ordering invariant is never observed.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

Cycle Engine::run_until_idle() {
  while (step()) {
  }
  return now_;
}

void Engine::run_until(Cycle t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (t > now_) now_ = t;
}

void Engine::advance_to(Cycle t) {
  assert(queue_.empty() || queue_.top().time >= t);
  if (t > now_) now_ = t;
}

}  // namespace qcdoc::sim
