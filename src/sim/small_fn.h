// Generalized small-buffer callable sharing the event-action pool.
//
// EventFn (event_fn.h) fixed the per-event std::function allocation for the
// engines' void() actions; SmallFn is the same storage scheme behind an
// arbitrary signature, for the model's per-frame callbacks that fire
// millions of times per solve (e.g. hssl::Hssl::DeliveryFn).  A capture up
// to 48 bytes stores inline; larger ones draw recycled blocks from the
// same process-global action pool, so a warm link never touches the heap
// per frame.  Move-only, like EventFn: a delivery callback is registered
// once and fired once.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/event_fn.h"

namespace qcdoc::sim {

template <typename Sig>
class SmallFn;

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    } else {
      heap_ = detail::action_alloc(sizeof(D));
      try {
        ::new (heap_) D(std::forward<F>(f));
      } catch (...) {
        detail::action_free(heap_, sizeof(D));
        heap_ = nullptr;
        throw;
      }
    }
    ops_ = &kOps<D>;
  }

  SmallFn(SmallFn&& o) noexcept : heap_(o.heap_), ops_(o.ops_) {
    if (ops_ != nullptr && heap_ == nullptr) ops_->relocate(buf_, o.buf_);
    o.heap_ = nullptr;
    o.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      heap_ = o.heap_;
      ops_ = o.ops_;
      if (ops_ != nullptr && heap_ == nullptr) ops_->relocate(buf_, o.buf_);
      o.heap_ = nullptr;
      o.ops_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(target());
    if (heap_ != nullptr) {
      detail::action_free(heap_, ops_->size);
      heap_ = nullptr;
    }
    ops_ = nullptr;
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->call(target(), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*call)(void*, Args...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    std::size_t size;  ///< allocation size for heap targets
  };

  template <typename D>
  static constexpr Ops kOps{
      [](void* p, Args... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      sizeof(D)};

  void* target() noexcept { return heap_ != nullptr ? heap_ : buf_; }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace qcdoc::sim
