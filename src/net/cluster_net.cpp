#include "net/cluster_net.h"

#include <cmath>

namespace qcdoc::net {

Cycle ClusterNet::message_cycles(std::size_t bytes) const {
  return cycles(cfg_.start_latency_s +
                static_cast<double>(bytes) / cfg_.bandwidth_Bps);
}

Cycle ClusterNet::halo_exchange_cycles(int messages,
                                       std::size_t bytes_each) const {
  if (messages <= 0) return 0;
  // Startups serialize on the NIC in groups of `concurrent_messages`; the
  // payload of the last message then streams out at link bandwidth.
  const int rounds =
      (messages + cfg_.concurrent_messages - 1) / cfg_.concurrent_messages;
  const double startup = cfg_.start_latency_s * rounds;
  const double payload = static_cast<double>(messages) *
                         static_cast<double>(bytes_each) / cfg_.bandwidth_Bps;
  return cycles(startup + payload);
}

Cycle ClusterNet::allreduce_cycles(int nodes, std::size_t words) const {
  if (nodes <= 1) return 0;
  const int levels = static_cast<int>(std::ceil(std::log2(nodes)));
  const double per_hop = cfg_.start_latency_s +
                         static_cast<double>(words * 8) / cfg_.bandwidth_Bps;
  return cycles(2.0 * levels * per_hop);
}

}  // namespace qcdoc::net
