#include "net/mesh_net.h"

#include <cassert>
#include <sstream>

#include "sim/affinity_guard.h"

namespace qcdoc::net {

using torus::LinkIndex;

const char* to_string(NodeCondition c) {
  switch (c) {
    case NodeCondition::kOk: return "ok";
    case NodeCondition::kHung: return "hung";
    case NodeCondition::kCrashed: return "crashed";
  }
  return "?";
}

MeshNet::MeshNet(sim::Engine* engine, MeshConfig cfg)
    : engine_(engine), cfg_(cfg), topology_(cfg.shape) {
  const int n = topology_.num_nodes();
  Rng machine_rng(cfg_.seed);

  memories_.reserve(static_cast<std::size_t>(n));
  stats_.reserve(static_cast<std::size_t>(n));
  scus_.reserve(static_cast<std::size_t>(n));
  wires_.resize(static_cast<std::size_t>(n) * torus::kLinksPerNode);
  conditions_.assign(static_cast<std::size_t>(n), NodeCondition::kOk);

  cfg_.scu.active_transfers = &active_transfers_;
  for (int i = 0; i < n; ++i) {
    memories_.push_back(std::make_unique<memsys::NodeMemory>(cfg_.mem));
    stats_.push_back(std::make_unique<sim::StatSet>());
    scus_.push_back(std::make_unique<scu::Scu>(
        sim::EngineRef(engine_, static_cast<sim::Affinity>(i)),
        memories_.back().get(), cfg_.scu,
        Rng(cfg_.seed, NodeId{static_cast<u32>(i)}), stats_.back().get()));
    // Tag the node's state regions for the affinity sanitizer: mutating
    // them from an event on another affinity without a declared touched
    // set is a trap (DESIGN.md section 6).
    QCDOC_AFFSAN_OWN(memories_.back().get(), sizeof(memsys::NodeMemory),
                     static_cast<sim::Affinity>(i), "memsys::NodeMemory");
    QCDOC_AFFSAN_OWN(scus_.back().get(), sizeof(scu::Scu),
                     static_cast<sim::Affinity>(i), "scu::Scu");
  }
  // Create the outgoing wires and attach them, then connect the endpoints.
  for (int i = 0; i < n; ++i) {
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      auto wire = std::make_unique<hssl::Hssl>(
          sim::EngineRef(engine_, static_cast<sim::Affinity>(i)), cfg_.hssl,
          machine_rng.split(), stats_[static_cast<std::size_t>(i)].get());
      QCDOC_AFFSAN_OWN(wire.get(), sizeof(hssl::Hssl),
                       static_cast<sim::Affinity>(i), "hssl::Hssl");
      scus_[static_cast<std::size_t>(i)]->attach_outgoing_wire(LinkIndex{l},
                                                               wire.get());
      wires_[static_cast<std::size_t>(i) * torus::kLinksPerNode +
             static_cast<std::size_t>(l)] = std::move(wire);
    }
  }
  for (int i = 0; i < n; ++i) {
    const NodeId node{static_cast<u32>(i)};
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      const LinkIndex link{l};
      const NodeId to = topology_.neighbor(node, link);
      scus_[static_cast<std::size_t>(i)]->connect_to(link, *scus_[to.value]);
      // The wire's delivery events execute at the receiving node.
      wire(node, link).set_delivery_affinity(to.value);
    }
  }
  // Machine-wide interrupt domain flooding over every mesh link.
  pirq_ = std::make_unique<scu::PirqDomain>(engine_, cfg_.pirq_window_cycles);
  std::vector<LinkIndex> all_links;
  for (int l = 0; l < torus::kLinksPerNode; ++l) all_links.push_back(LinkIndex{l});
  for (int i = 0; i < n; ++i) {
    pirq_->add_node(NodeId{static_cast<u32>(i)},
                    scus_[static_cast<std::size_t>(i)].get(), all_links);
  }
}

MeshNet::~MeshNet() {
  for (const auto& m : memories_) QCDOC_AFFSAN_DISOWN(m.get());
  for (const auto& s : scus_) QCDOC_AFFSAN_DISOWN(s.get());
  for (const auto& w : wires_) QCDOC_AFFSAN_DISOWN(w.get());
}

void MeshNet::start_scrubbing(memsys::ScrubConfig cfg) {
  if (!scrubbers_.empty()) return;
  const int n = topology_.num_nodes();
  scrubbers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Scrub bursts execute at their node, like SCU traffic, so the parallel
    // engine shards them and the walk order is thread-count independent.
    const sim::EngineRef node_engine(engine_, static_cast<sim::Affinity>(i));
    scrubbers_.push_back(std::make_unique<memsys::MemScrubber>(
        node_engine, memories_[static_cast<std::size_t>(i)].get(), cfg,
        stats_[static_cast<std::size_t>(i)].get()));
    scrubbers_.back()->start();
  }
}

memsys::EccCounters MeshNet::total_ecc() const {
  memsys::EccCounters total;
  for (const auto& mem : memories_) total += mem->ecc().counters();
  return total;
}

hssl::Hssl& MeshNet::wire(NodeId from, LinkIndex l) {
  return *wires_[static_cast<std::size_t>(from.value) * torus::kLinksPerNode +
                 static_cast<std::size_t>(l.value)];
}

void MeshNet::power_on() {
  if (powered_) return;
  powered_ = true;
  for (auto& w : wires_) w->power_on();
}

bool MeshNet::all_trained() const {
  for (const auto& w : wires_) {
    if (!w->trained()) return false;
  }
  return true;
}

std::vector<LinkRef> MeshNet::untrained_links() const {
  std::vector<LinkRef> out;
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    if (!wires_[i]->trained()) {
      out.push_back(LinkRef{
          NodeId{static_cast<u32>(i / torus::kLinksPerNode)},
          LinkIndex{static_cast<int>(i % torus::kLinksPerNode)}});
    }
  }
  return out;
}

std::vector<LinkRef> MeshNet::faulted_links() const {
  std::vector<LinkRef> out;
  for (std::size_t i = 0; i < scus_.size(); ++i) {
    const u32 mask = scus_[i]->faulted_links();
    if (!mask) continue;
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      if (mask & (1u << l)) {
        out.push_back(LinkRef{NodeId{static_cast<u32>(i)}, LinkIndex{l}});
      }
    }
  }
  return out;
}

bool MeshNet::verify_link_checksums(std::vector<std::string>* mismatches) const {
  bool ok = true;
  for (const auto& edge : topology_.edges()) {
    const u64 sent = scus_[edge.from.value]->send_checksum(edge.link);
    const u64 received =
        scus_[edge.to.value]->recv_checksum(torus::facing_link(edge.link));
    if (sent != received) {
      ok = false;
      if (mismatches) {
        std::ostringstream msg;
        msg << "link " << edge.from.value << " -> " << edge.to.value
            << " (link index " << edge.link.value << "): send checksum 0x"
            << std::hex << sent << " != recv checksum 0x" << received;
        mismatches->push_back(msg.str());
      }
    }
  }
  return ok;
}

u64 MeshNet::total_stat(const std::string& name) const {
  u64 sum = 0;
  for (const auto& s : stats_) sum += s->get(name);
  return sum;
}

bool MeshNet::quiescent_slow() const {
  for (const auto& s : scus_) {
    if (!s->quiescent()) return false;
  }
  return true;
}

bool MeshNet::drain() { return engine_->drain(active_transfers_); }

}  // namespace qcdoc::net
