// The assembled mesh: every node's SCU wired to its 12 neighbours through
// bit-serial HSSL links over the 6-D torus (paper Figure 2, red network).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hssl/hssl.h"
#include "memsys/memsys.h"
#include "memsys/scrub.h"
#include "scu/partition_interrupt.h"
#include "scu/scu.h"
#include "sim/engine.h"
#include "torus/coords.h"

namespace qcdoc::net {

/// Physical condition of one node's ASIC, as set by fault injection and read
/// back (indirectly) by the host's health sweeps.  A hung node stops making
/// forward progress but its SCU hardware still acknowledges; a crashed node
/// is electrically gone -- all its outgoing wires are dead.
enum class NodeCondition {
  kOk,
  kHung,
  kCrashed,
};

const char* to_string(NodeCondition c);

/// One directed link endpoint: `node`'s outgoing wire on `link`.
struct LinkRef {
  NodeId node;
  torus::LinkIndex link;
};

struct MeshConfig {
  torus::Shape shape;
  hssl::HsslConfig hssl;
  scu::ScuConfig scu;
  memsys::MemConfig mem;
  u64 seed = 0x9c0dull;
  /// Partition-interrupt transmit window (a multiple of the ~40 MHz global
  /// clock period, long enough for a flood to cross the machine).
  Cycle pirq_window_cycles = 1 << 14;
};

class MeshNet {
 public:
  MeshNet(sim::Engine* engine, MeshConfig cfg);
  /// Untags this mesh's AFFSAN regions (no-op without QCDOC_AFFSAN), so a
  /// later mesh reusing the same heap addresses starts untainted.
  ~MeshNet();

  const torus::Torus& topology() const { return topology_; }
  int num_nodes() const { return topology_.num_nodes(); }
  sim::Engine& engine() { return *engine_; }
  const MeshConfig& config() const { return cfg_; }

  scu::Scu& scu(NodeId n) { return *scus_[n.value]; }
  memsys::NodeMemory& memory(NodeId n) { return *memories_[n.value]; }
  sim::StatSet& stats(NodeId n) { return *stats_[n.value]; }
  hssl::Hssl& wire(NodeId from, torus::LinkIndex l);

  /// Power on every HSSL; links train and then exchange idle bytes.
  void power_on();
  [[nodiscard]] bool all_trained() const;
  /// Every outgoing wire that is not currently in the trained state.
  std::vector<LinkRef> untrained_links() const;
  /// Every outgoing link whose send side has declared a fault.
  std::vector<LinkRef> faulted_links() const;

  /// Node condition (fault-injection state; kOk unless a fault was applied).
  NodeCondition condition(NodeId n) const {
    return conditions_[n.value];
  }
  void set_condition(NodeId n, NodeCondition c) { conditions_[n.value] = c; }

  /// Machine-wide partition-interrupt domain (flooding over all mesh links).
  scu::PirqDomain& pirq() { return *pirq_; }

  /// Compare the send/receive checksums of every directed link; the paper's
  /// end-of-calculation confirmation that no erroneous data was exchanged.
  [[nodiscard]] bool verify_link_checksums(
      std::vector<std::string>* mismatches = nullptr) const;

  /// Sum a named statistic across all nodes.
  u64 total_stat(const std::string& name) const;

  /// Start a background ECC scrubber on every node (idempotent; the config
  /// of the first call wins).  Off by default: an unscrubbed machine
  /// schedules no scrub events, keeping fault-free traces -- including the
  /// committed golden trace -- bit-identical.
  void start_scrubbing(memsys::ScrubConfig cfg = memsys::ScrubConfig{});
  [[nodiscard]] bool scrubbing() const { return !scrubbers_.empty(); }
  memsys::MemScrubber& scrubber(NodeId n) { return *scrubbers_[n.value]; }

  /// ECC counters summed over every node (corrected errors, machine
  /// checks, scrub effort) for health reports and benches.
  memsys::EccCounters total_ecc() const;

  /// True when no data transfer is in progress anywhere in the machine
  /// (O(1): the DMA engines maintain a shared in-flight counter).
  [[nodiscard]] bool quiescent() const {
    return active_transfers_.value() == 0;
  }
  /// Exhaustive per-link check (used by tests to validate the counter).
  [[nodiscard]] bool quiescent_slow() const;

  /// Run the event engine until the mesh is quiescent.  Returns false (and
  /// stops) if the event queue empties while transfers are still pending --
  /// the signature of a stalled link, which on the real machine blocks the
  /// whole self-synchronizing calculation.
  [[nodiscard]] bool drain();

 private:
  sim::Engine* engine_;
  MeshConfig cfg_;
  torus::Torus topology_;
  std::vector<std::unique_ptr<memsys::NodeMemory>> memories_;
  std::vector<std::unique_ptr<sim::StatSet>> stats_;
  std::vector<std::unique_ptr<scu::Scu>> scus_;
  // wires_[node * kLinksPerNode + link]: the outgoing serial wire.
  std::vector<std::unique_ptr<hssl::Hssl>> wires_;
  std::unique_ptr<scu::PirqDomain> pirq_;
  std::vector<std::unique_ptr<memsys::MemScrubber>> scrubbers_;
  std::vector<NodeCondition> conditions_;
  scu::ActiveCounter active_transfers_;
  bool powered_ = false;
};

}  // namespace qcdoc::net
