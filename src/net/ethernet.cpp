#include "net/ethernet.h"

#include <algorithm>
#include <cassert>

namespace qcdoc::net {

EthernetTree::EthernetTree(sim::EngineRef engine, EthernetConfig cfg,
                           int num_nodes)
    : engine_(engine), cfg_(cfg) {
  assert(cfg_.host_links >= 1);
  host_link_free_.assign(static_cast<std::size_t>(cfg_.host_links), 0);
  node_link_free_.assign(static_cast<std::size_t>(num_nodes), 0);
}

void EthernetTree::host_to_node(NodeId node, std::size_t payload_bytes,
                                EthKind kind,
                                std::function<void()> on_delivered) {
  const std::size_t frame = payload_bytes + cfg_.udp_overhead_bytes;
  auto& host_free =
      host_link_free_[node.value % static_cast<u32>(cfg_.host_links)];
  auto& node_free = node_link_free_[node.value];

  // Host link serialization (shared among the nodes behind this link).
  const Cycle host_start = std::max(engine_.now(), host_free);
  const Cycle host_done = host_start + serialize(cfg_.host_link_bps, frame);
  host_free = host_done;
  // Hub hops: store-and-forward latency each.
  const Cycle hubs_done =
      host_done + static_cast<Cycle>(cfg_.hub_hops) * cycles(cfg_.hub_latency_s);
  // Node link serialization at 100 Mbit.
  const Cycle node_start = std::max(hubs_done, node_free);
  const Cycle node_done = node_start + serialize(cfg_.node_link_bps, frame);
  node_free = node_done;

  ++packets_delivered_;
  stats_.add("eth.host_to_node_packets");
  stats_.add("eth.host_to_node_bytes", frame);
  if (kind == EthKind::kJtag) {
    ++jtag_packets_;
    stats_.add("eth.jtag_packets");
  }
  engine_.schedule_at(node_done, [fn = std::move(on_delivered)] {
    if (fn) fn();
  });
}

void EthernetTree::node_to_host(NodeId node, std::size_t payload_bytes,
                                std::function<void()> on_delivered) {
  const std::size_t frame = payload_bytes + cfg_.udp_overhead_bytes;
  auto& node_free = node_link_free_[node.value];
  auto& host_free =
      host_link_free_[node.value % static_cast<u32>(cfg_.host_links)];

  const Cycle node_start = std::max(engine_.now(), node_free);
  const Cycle node_done = node_start + serialize(cfg_.node_link_bps, frame);
  node_free = node_done;
  const Cycle hubs_done =
      node_done + static_cast<Cycle>(cfg_.hub_hops) * cycles(cfg_.hub_latency_s);
  const Cycle host_start = std::max(hubs_done, host_free);
  const Cycle host_done = host_start + serialize(cfg_.host_link_bps, frame);
  host_free = host_done;

  ++packets_delivered_;
  stats_.add("eth.node_to_host_packets");
  stats_.add("eth.node_to_host_bytes", frame);
  engine_.schedule_at(host_done, [fn = std::move(on_delivered)] {
    if (fn) fn();
  });
}

}  // namespace qcdoc::net
