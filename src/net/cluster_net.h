// Commodity-cluster network comparator (paper Sections 1 and 2.2).
//
// The paper's motivating argument is that commodity networks cannot deliver
// the latency QCD's hard scaling requires: "our 600 ns memory-to-memory
// latency is to be compared to times of 5-10 us just to begin a transfer
// when using standard networks like Ethernet."  This analytic model gives a
// cluster with the same per-node compute the paper's commodity network
// characteristics, for the hard-scaling crossover benches.
#pragma once

#include "common/types.h"

namespace qcdoc::net {

struct ClusterNetConfig {
  double cpu_clock_hz = 500e6;     ///< for cycle conversion
  double start_latency_s = 7.5e-6; ///< "5-10 us just to begin a transfer"
  double bandwidth_Bps = 125e6;    ///< GigE-class payload bandwidth
  int concurrent_messages = 1;     ///< NICs serialize message injection
};

class ClusterNet {
 public:
  explicit ClusterNet(ClusterNetConfig cfg) : cfg_(cfg) {}

  const ClusterNetConfig& config() const { return cfg_; }

  /// Cycles for one point-to-point message.
  Cycle message_cycles(std::size_t bytes) const;

  /// Cycles for a halo exchange of `messages` messages of `bytes_each` from
  /// one node (message startups serialize on the NIC; payload streams at
  /// link bandwidth).
  Cycle halo_exchange_cycles(int messages, std::size_t bytes_each) const;

  /// Cycles for a tree all-reduce of `words` doubles over `nodes` nodes:
  /// 2*ceil(log2(nodes)) latency-bound hops.
  Cycle allreduce_cycles(int nodes, std::size_t words) const;

 private:
  Cycle cycles(double seconds) const {
    return static_cast<Cycle>(seconds * cfg_.cpu_clock_hz + 0.5);
  }
  ClusterNetConfig cfg_;
};

}  // namespace qcdoc::net
