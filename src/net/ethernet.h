// The Ethernet booting/diagnostics/I-O network (paper Section 2.3, Figure 2,
// green network).
//
// Every ASIC has two Ethernet connections: a standard 100 Mbit controller
// (needs the run kernel's UDP stack) and an Ethernet/JTAG controller that
// decodes UDP packets carrying JTAG commands entirely in hardware -- usable
// from power-on, before any code is loaded.  Nodes hang off 5-port hubs on
// the daughterboards and motherboards; the host connects through multiple
// Gigabit links.
//
// The model is a store-and-forward tree: host link (shared, Gigabit class),
// two hub hops, then the node's 100 Mbit link.  Delivery times come out of
// the event engine, so boot-time measurements (bench E11) are simulated,
// not computed.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace qcdoc::net {

struct EthernetConfig {
  double cpu_clock_hz = 500e6;   ///< converts seconds to engine cycles
  double host_link_bps = 1e9;    ///< per Gigabit host link
  int host_links = 1;            ///< "multiple Gigabit Ethernet links"
  double node_link_bps = 100e6;  ///< per-node 100 Mbit connection
  double hub_latency_s = 2e-6;   ///< per hub store-and-forward hop
  int hub_hops = 2;              ///< daughterboard + motherboard hubs
  std::size_t udp_overhead_bytes = 46;  ///< Ethernet + IP + UDP headers
};

/// Kind of traffic, for statistics and for the zero-software JTAG path.
enum class EthKind { kJtag, kUdp };

// qcdoc-lint: owner(host) the Ethernet/JTAG tree is host-side plumbing: its
// delivery events run in host slices, never on a node affinity.
class EthernetTree {
 public:
  /// The Ethernet tree is host-side plumbing (boot streams, RPC, NFS), so
  /// deliveries are scheduled with host affinity: a bare Engine* converts
  /// to a host-affinity sim::EngineRef.
  EthernetTree(sim::EngineRef engine, EthernetConfig cfg, int num_nodes);

  /// Send one UDP packet of `payload_bytes` from the host to `node`;
  /// `on_delivered` fires when the last byte reaches the node.  Nodes are
  /// spread round-robin over the host links, which serialize independently.
  void host_to_node(NodeId node, std::size_t payload_bytes, EthKind kind,
                    std::function<void()> on_delivered);

  /// Node-to-host packet (RPC replies, NFS writes...).
  void node_to_host(NodeId node, std::size_t payload_bytes,
                    std::function<void()> on_delivered);

  u64 packets_delivered() const { return packets_delivered_; }
  u64 jtag_packets() const { return jtag_packets_; }
  const sim::StatSet& stats() const { return stats_; }

 private:
  Cycle cycles(double seconds) const {
    return static_cast<Cycle>(seconds * cfg_.cpu_clock_hz + 0.5);
  }
  Cycle serialize(double bps, std::size_t bytes) const {
    return cycles(static_cast<double>(bytes) * 8.0 / bps);
  }

  sim::EngineRef engine_;
  EthernetConfig cfg_;
  // Earliest free time per shared resource.
  std::vector<Cycle> host_link_free_;
  std::vector<Cycle> node_link_free_;
  u64 packets_delivered_ = 0;
  u64 jtag_packets_ = 0;
  sim::StatSet stats_;
};

}  // namespace qcdoc::net
