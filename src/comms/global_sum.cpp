#include "comms/global_sum.h"

#include <cassert>
#include <vector>

namespace qcdoc::comms {

double partition_global_sum(const torus::Partition& p,
                            std::span<const double> per_rank) {
  const int n = p.num_nodes();
  assert(static_cast<int>(per_rank.size()) == n);
  // Dimension-wise combination, ring by ring, in canonical position order:
  // after processing dim d, every node in a d-ring holds the ring's sum.
  std::vector<double> values(per_rank.begin(), per_rank.end());
  for (int l = 0; l < p.logical_dims(); ++l) {
    const int e = p.logical_shape().extent[l];
    if (e <= 1) continue;
    std::vector<double> next(values.size(), 0.0);
    std::vector<bool> done(values.size(), false);
    for (int r = 0; r < n; ++r) {
      if (done[static_cast<std::size_t>(r)]) continue;
      // Sum this ring in position order.
      torus::Coord c = p.logical_coord(r);
      double ring_sum = 0.0;
      for (int x = 0; x < e; ++x) {
        c.c[l] = x;
        ring_sum += values[static_cast<std::size_t>(p.rank(c))];
      }
      for (int x = 0; x < e; ++x) {
        c.c[l] = x;
        const auto rr = static_cast<std::size_t>(p.rank(c));
        next[rr] = ring_sum;
        done[rr] = true;
      }
    }
    values.swap(next);
  }
  return values.empty() ? 0.0 : values[0];
}

Cycle partition_global_sum_cycles(const torus::Partition& p,
                                  const scu::GlobalOpTiming& t, bool doubled) {
  return partition_global_sum_cycles(p, t, doubled, 1);
}

Cycle partition_global_sum_cycles(const torus::Partition& p,
                                  const scu::GlobalOpTiming& t, bool doubled,
                                  int words) {
  Cycle total = 0;
  for (int l = 0; l < p.logical_dims(); ++l) {
    const int e = p.logical_shape().extent[l];
    if (e <= 1) continue;
    // One ring pass; rings of the same dimension are concurrent.  Timing
    // uses dummy values (identical ring length everywhere).
    std::vector<double> dummy(static_cast<std::size_t>(e), 0.0);
    const auto ring = scu::ring_allreduce(t, dummy, doubled);
    total += ring.completion_cycles;
    if (words > 1) {
      // Additional words pipeline behind the first: each adds one frame of
      // serialization per word already in flight on the busiest link.
      total += static_cast<Cycle>(words - 1) * ring.words_per_link *
               static_cast<Cycle>(t.frame_bits);
    }
  }
  return total;
}

}  // namespace qcdoc::comms
