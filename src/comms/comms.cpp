#include "comms/comms.h"

#include <cassert>

#include "comms/global_sum.h"

namespace qcdoc::comms {

using torus::Dir;
using torus::LinkIndex;

Communicator::Communicator(machine::Machine* m, const torus::Partition* p)
    : machine_(m), partition_(p), nodes_(p->nodes()) {
  stored_send_mask_.assign(nodes_.size(), 0);
  stored_recv_mask_.assign(nodes_.size(), 0);
}

void Communicator::post_shift(int ldim, Dir dir,
                              std::span<const scu::DmaDescriptor> send_descs,
                              std::span<const scu::DmaDescriptor> recv_descs) {
  assert(send_descs.size() == nodes_.size());
  assert(recv_descs.size() == nodes_.size());
  const int n = num_nodes();
  for (int r = 0; r < n; ++r) {
    const torus::Coord lc = partition_->logical_coord(r);
    const auto step = partition_->step(lc, ldim, dir);
    assert(step.single_hop && "shift requires a nearest-neighbour embedding");
    if (step.to == step.from) {
      // Logical extent 1: the shift is a local copy; the data loops back
      // through this node's own wire pair (the torus self-link).
    }
    // Receiver rank: the logical coordinate one step along.
    torus::Coord to_lc = lc;
    const int e = partition_->logical_shape().extent[ldim];
    to_lc.c[ldim] = (to_lc.c[ldim] + static_cast<int>(dir) + e) % e;
    const int to_rank = partition_->rank(to_lc);

    auto& sender_scu = machine_->scu(step.from);
    auto& receiver_scu = machine_->scu(step.to);
    receiver_scu.recv_dma(torus::facing_link(step.link))
        .start(recv_descs[static_cast<std::size_t>(to_rank)]);
    sender_scu.send_dma(step.link).start(
        send_descs[static_cast<std::size_t>(r)]);
  }
}

void Communicator::post_shift_uniform(int ldim, Dir dir,
                                      const scu::DmaDescriptor& send,
                                      const scu::DmaDescriptor& recv) {
  std::vector<scu::DmaDescriptor> sends(nodes_.size(), send);
  std::vector<scu::DmaDescriptor> recvs(nodes_.size(), recv);
  post_shift(ldim, dir, sends, recvs);
}

void Communicator::store_shift(int ldim, Dir dir,
                               const scu::DmaDescriptor& send,
                               const scu::DmaDescriptor& recv) {
  const int n = num_nodes();
  for (int r = 0; r < n; ++r) {
    const torus::Coord lc = partition_->logical_coord(r);
    const auto step = partition_->step(lc, ldim, dir);
    assert(step.single_hop);
    machine_->scu(step.from).store_send_descriptor(step.link, send);
    machine_->scu(step.to).store_recv_descriptor(torus::facing_link(step.link),
                                                 recv);
    stored_send_mask_[static_cast<std::size_t>(r)] |= 1u << step.link.value;
    const int to_rank = partition_->rank([&] {
      torus::Coord c = lc;
      const int e = partition_->logical_shape().extent[ldim];
      c.c[ldim] = (c.c[ldim] + static_cast<int>(dir) + e) % e;
      return c;
    }());
    stored_recv_mask_[static_cast<std::size_t>(to_rank)] |=
        1u << torus::facing_link(step.link).value;
  }
}

void Communicator::start_stored() {
  const int n = num_nodes();
  for (int r = 0; r < n; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    machine_->scu(nodes_[idx]).start_stored(stored_send_mask_[idx],
                                            stored_recv_mask_[idx]);
  }
}

scu::GlobalOpTiming Communicator::global_timing() const {
  scu::GlobalOpTiming t;
  t.frame_bits = machine_->hw().scu_data_bits + machine_->hw().scu_packet_header_bits;
  t.passthrough_bits = machine_->hw().scu_global_passthrough_bits;
  return t;
}

Communicator::GlobalSumResult Communicator::global_sum(
    std::span<const double> per_rank, bool doubled, bool cut_through) const {
  scu::GlobalOpTiming t = global_timing();
  t.cut_through = cut_through;
  GlobalSumResult result;
  result.value = partition_global_sum(*partition_, per_rank);
  result.cycles = partition_global_sum_cycles(*partition_, t, doubled);
  return result;
}

Cycle Communicator::broadcast_cycles(bool doubled, bool cut_through) const {
  scu::GlobalOpTiming t = global_timing();
  t.cut_through = cut_through;
  Cycle total = 0;
  for (int l = 0; l < partition_->logical_dims(); ++l) {
    const int e = partition_->logical_shape().extent[l];
    if (e <= 1) continue;
    total += scu::ring_broadcast(t, e, doubled).completion_cycles;
  }
  return total;
}

}  // namespace qcdoc::comms
