// User-level message-passing API (paper Section 3.3).
//
// "The communications API allows the user to control the settings of the
// DMA units in the SCUs."  A Communicator binds a machine to a logical
// partition and exposes the operations QCD needs:
//
//   - shifts: every node transfers a block-strided region to its logical
//     neighbour along one partition axis (the halo exchange primitive);
//     posted as real SCU DMAs, drained by the BSP runtime.
//   - stored-descriptor starts: descriptors are written into the SCU once
//     and re-started with a single write ("only a single write is needed to
//     start up to 24 communications").
//   - global sums and broadcasts (the SCU global mode), functional and
//     bit-reproducible.
//
// "The temporal ordering of a start send on one node and start receive on
// another is not important" -- the idle-receive hardware holds early words,
// and the shift API exposes that by allowing sends to be posted before the
// matching receives.
#pragma once

#include <span>
#include <vector>

#include "machine/machine.h"
#include "scu/dma.h"
#include "scu/global_ops.h"
#include "torus/partition.h"

namespace qcdoc::comms {

class Communicator {
 public:
  Communicator(machine::Machine* m, const torus::Partition* p);

  const torus::Partition& partition() const { return *partition_; }
  machine::Machine& machine() { return *machine_; }
  int num_nodes() const { return partition_->num_nodes(); }

  /// Machine node backing a partition rank.
  NodeId node_of_rank(int rank) const { return nodes_[static_cast<std::size_t>(rank)]; }

  /// Post a shift: rank r sends `send_descs[r]` one step along logical dim
  /// `ldim` in `dir`; the receiving rank lands it via its own entry of
  /// `recv_descs`.  Descriptors are indexed by partition rank.  Sends and
  /// receives may be posted in either order (idle receive covers the gap).
  void post_shift(int ldim, torus::Dir dir,
                  std::span<const scu::DmaDescriptor> send_descs,
                  std::span<const scu::DmaDescriptor> recv_descs);

  /// Same descriptors on every rank (uniform layouts, the common case).
  void post_shift_uniform(int ldim, torus::Dir dir,
                          const scu::DmaDescriptor& send,
                          const scu::DmaDescriptor& recv);

  /// Store shift descriptors in the SCUs without starting them...
  void store_shift(int ldim, torus::Dir dir, const scu::DmaDescriptor& send,
                   const scu::DmaDescriptor& recv);
  /// ...then fire every stored descriptor machine-wide with one write each.
  void start_stored();

  /// Timing parameters for the global-operation mode.
  scu::GlobalOpTiming global_timing() const;

  struct GlobalSumResult {
    double value = 0;  ///< identical on every node, bit-reproducible
    Cycle cycles = 0;  ///< dimension-wise ring time (doubled link sets)
  };
  /// Global sum of one double per rank, performed dimension-wise with the
  /// doubled SCU global mode (Sum Ni/2 hops; paper Section 2.2).
  GlobalSumResult global_sum(std::span<const double> per_rank,
                             bool doubled = true, bool cut_through = true) const;

  /// Cycles to broadcast one word from rank 0 to the whole partition.
  Cycle broadcast_cycles(bool doubled = true, bool cut_through = true) const;

 private:
  machine::Machine* machine_;
  const torus::Partition* partition_;
  std::vector<NodeId> nodes_;  // rank -> machine node
  // Stored-shift bookkeeping: per rank, masks of links armed.
  std::vector<u32> stored_send_mask_;
  std::vector<u32> stored_recv_mask_;
};

}  // namespace qcdoc::comms
