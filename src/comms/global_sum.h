// Dimension-wise global sum over a partition (paper Section 2.2).
//
// "To perform a four-dimensional global sum ... consider the x direction
// first ... This pattern would then be repeated for the y, z and t
// directions."  Rings along different rows of the same dimension are
// disjoint node sets, so they run concurrently: the time per dimension is
// one ring all-reduce.  Functional values are combined ring-by-ring in
// canonical position order, so every node holds the bit-identical result.
#pragma once

#include <span>

#include "scu/global_ops.h"
#include "torus/partition.h"

namespace qcdoc::comms {

/// Sum one double per rank; every node would end with the returned value.
double partition_global_sum(const torus::Partition& p,
                            std::span<const double> per_rank);

/// Cycles for the dimension-wise sum of one word per node.
Cycle partition_global_sum_cycles(const torus::Partition& p,
                                  const scu::GlobalOpTiming& t, bool doubled);

/// Cycles when `words` doubles are summed per node (pipelined through the
/// same ring passes).
Cycle partition_global_sum_cycles(const torus::Partition& p,
                                  const scu::GlobalOpTiming& t, bool doubled,
                                  int words);

}  // namespace qcdoc::comms
