// Bulk-synchronous phase runtime.
//
// QCD on QCDOC is naturally bulk-synchronous: the Dirac operator applies the
// same flop count on every node ("no load balancing is needed beyond the
// initial trivial mapping"), halo exchanges run on all links concurrently,
// and the link-level handshaking self-synchronizes the machine.  The runtime
// advances one global machine clock through alternating phases:
//
//   - compute(c):       every node computes for c cycles (from the CPU
//                       timing model); machine time advances by c.
//   - communicate():    the caller has posted SCU DMAs; the event engine
//                       runs the packet-level simulation to quiescence.
//   - overlap(c, post): communication posted by `post` proceeds concurrently
//                       with c cycles of local compute; the phase ends at
//                       the later of the two (QCDOC kernels overlap face
//                       transfers with interior compute).
//
// Accumulated per-category cycle counters feed the efficiency reports.
#pragma once

#include <functional>

#include "machine/machine.h"

namespace qcdoc::machine {

class BspRunner {
 public:
  explicit BspRunner(Machine* m) : machine_(m) {}

  Cycle now() const { return machine_->engine().now(); }

  /// Uniform compute phase of `cycles` on every node.
  void compute(double cycles);

  /// Drain all posted communications; returns the phase length in cycles.
  /// Aborts (returns ~0) on a stalled mesh.
  Cycle communicate();

  /// Communication posted by `post()` overlapped with `compute_cycles` of
  /// local work.  Returns the phase length.
  Cycle overlap(double compute_cycles, const std::function<void()>& post);

  /// Account time spent in global operations (the analytic cut-through
  /// model returns a cycle count; this advances the machine clock).
  void global_op(Cycle cycles);

  // --- accumulated accounting -------------------------------------------
  double compute_cycles() const { return compute_cycles_; }
  double comm_cycles() const { return comm_cycles_; }
  double overlap_hidden_cycles() const { return hidden_cycles_; }
  double global_cycles() const { return global_cycles_; }
  double total_cycles() const {
    return compute_cycles_ + comm_cycles_ + global_cycles_;
  }
  void reset_accounting();

 private:
  Machine* machine_;
  double compute_cycles_ = 0;  // wall cycles attributed to compute phases
  double comm_cycles_ = 0;     // wall cycles attributed to exposed comm
  double hidden_cycles_ = 0;   // comm cycles hidden under compute overlap
  double global_cycles_ = 0;   // wall cycles in global sums/broadcasts
};

}  // namespace qcdoc::machine
