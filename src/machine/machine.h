// The assembled QCDOC machine: event engine, mesh network, packaging and
// hardware parameters in one object.  This is the main entry point of the
// library.
//
//   qcdoc::machine::MachineConfig cfg;
//   cfg.shape.extent = {4, 4, 4, 2, 2, 2};       // 512 nodes
//   qcdoc::machine::Machine m(cfg);
//   m.power_on();                                // trains all 12288 links
//
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "machine/cost.h"
#include "machine/packaging.h"
#include "net/mesh_net.h"
#include "sim/engine.h"

namespace qcdoc::machine {

struct MachineConfig {
  torus::Shape shape;          ///< 6-D mesh extents
  double clock_hz = 500e6;     ///< node clock (paper runs 360/420/450/500)
  double bit_error_rate = 0.0; ///< injected serial-link error rate
  memsys::MemConfig mem;       ///< per-node EDRAM/DDR sizes
  u64 seed = 0x9c0dull;        ///< master seed for all stochastic elements
  /// Simulation worker threads: 1 = serial engine, >1 = parallel engine,
  /// 0 = read QCDOC_SIM_THREADS (default 1).  Bit-identical results either
  /// way; this only changes wall-clock time.
  int sim_threads = 0;

  MachineConfig() { shape.extent = {2, 2, 2, 2, 2, 2}; }
};

/// Outcome of a bounded power-on attempt.  On healthy hardware `untrained`
/// is empty; otherwise it names every wire that failed to train within the
/// timeout -- the bring-up diagnostic of paper Sec. 4, where the host works
/// out which daughterboard to reseat instead of waiting forever.
struct PowerOnReport {
  Cycle cycles = 0;          ///< engine time the attempt consumed
  bool all_trained = false;  ///< true: the whole mesh came up
  std::vector<net::LinkRef> untrained;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  sim::Engine& engine() { return *engine_; }
  net::MeshNet& mesh() { return *mesh_; }
  const HwParams& hw() const { return hw_; }
  const memsys::MemTiming& mem_timing() const { return mem_timing_; }
  const MachineConfig& config() const { return cfg_; }
  const torus::Torus& topology() const { return mesh_->topology(); }

  int num_nodes() const { return mesh_->num_nodes(); }
  PackagingPlan packaging() const;
  const PackageMap& package_map() const { return *package_map_; }

  /// Power on all serial links and run the engine until every HSSL has
  /// trained.  Returns the training time in cycles.  Assumes healthy
  /// hardware; with dead links it gives up when the event queue empties.
  Cycle power_on();

  /// Power on with a training deadline: run until every link trains or
  /// `timeout_cycles` elapse (0 picks a generous default of 64x the nominal
  /// training time), then report the links still untrained instead of
  /// looping.  This is the entry point hosts and fault campaigns use.
  PowerOnReport power_on_checked(Cycle timeout_cycles = 0);

  double seconds(Cycle c) const { return hw_.seconds(c); }
  double microseconds(Cycle c) const { return hw_.seconds(c) * 1e6; }

  scu::Scu& scu(NodeId n) { return mesh_->scu(n); }
  memsys::NodeMemory& memory(NodeId n) { return mesh_->memory(n); }

  /// Start the per-node background ECC scrubbers (memsys/scrub.h).  Not
  /// started by default so fault-free event traces are unchanged.
  void start_memory_scrubbers(
      memsys::ScrubConfig cfg = memsys::ScrubConfig{}) {
    mesh_->start_scrubbing(cfg);
  }

 private:
  MachineConfig cfg_;
  HwParams hw_;
  memsys::MemTiming mem_timing_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::MeshNet> mesh_;
  std::unique_ptr<PackageMap> package_map_;
};

}  // namespace qcdoc::machine
