// The assembled QCDOC machine: event engine, mesh network, packaging and
// hardware parameters in one object.  This is the main entry point of the
// library.
//
//   qcdoc::machine::MachineConfig cfg;
//   cfg.shape.extent = {4, 4, 4, 2, 2, 2};       // 512 nodes
//   qcdoc::machine::Machine m(cfg);
//   m.power_on();                                // trains all 12288 links
//
#pragma once

#include <memory>

#include "common/types.h"
#include "machine/cost.h"
#include "machine/packaging.h"
#include "net/mesh_net.h"
#include "sim/engine.h"

namespace qcdoc::machine {

struct MachineConfig {
  torus::Shape shape;          ///< 6-D mesh extents
  double clock_hz = 500e6;     ///< node clock (paper runs 360/420/450/500)
  double bit_error_rate = 0.0; ///< injected serial-link error rate
  memsys::MemConfig mem;       ///< per-node EDRAM/DDR sizes
  u64 seed = 0x9c0dull;        ///< master seed for all stochastic elements

  MachineConfig() { shape.extent = {2, 2, 2, 2, 2, 2}; }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  sim::Engine& engine() { return *engine_; }
  net::MeshNet& mesh() { return *mesh_; }
  const HwParams& hw() const { return hw_; }
  const memsys::MemTiming& mem_timing() const { return mem_timing_; }
  const MachineConfig& config() const { return cfg_; }
  const torus::Torus& topology() const { return mesh_->topology(); }

  int num_nodes() const { return mesh_->num_nodes(); }
  PackagingPlan packaging() const;
  const PackageMap& package_map() const { return *package_map_; }

  /// Power on all serial links and run the engine until every HSSL has
  /// trained.  Returns the training time in cycles.
  Cycle power_on();

  double seconds(Cycle c) const { return hw_.seconds(c); }
  double microseconds(Cycle c) const { return hw_.seconds(c) * 1e6; }

  scu::Scu& scu(NodeId n) { return mesh_->scu(n); }
  memsys::NodeMemory& memory(NodeId n) { return mesh_->memory(n); }

 private:
  MachineConfig cfg_;
  HwParams hw_;
  memsys::MemTiming mem_timing_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::MeshNet> mesh_;
  std::unique_ptr<PackageMap> package_map_;
};

}  // namespace qcdoc::machine
