#include "machine/packaging.h"

#include <cassert>
#include <sstream>

namespace qcdoc::machine {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

std::string PackagingPlan::to_string() const {
  std::ostringstream out;
  out << nodes << " nodes / " << daughterboards << " daughterboards / "
      << motherboards << " motherboards / " << crates << " crates / " << racks
      << " racks; " << power_watts / 1000.0 << " kW, " << footprint_sqft
      << " sq ft, " << peak_flops / 1e12 << " Tflops peak";
  return out.str();
}

PackagingPlan plan_for_nodes(int nodes, double peak_flops_per_node,
                             const PackagingParams& p) {
  PackagingPlan plan;
  plan.nodes = nodes;
  plan.daughterboards = ceil_div(nodes, p.nodes_per_daughterboard);
  plan.motherboards =
      ceil_div(plan.daughterboards, p.daughterboards_per_motherboard);
  plan.crates = ceil_div(plan.motherboards, p.motherboards_per_crate);
  plan.racks = ceil_div(plan.crates, p.crates_per_rack);
  plan.cables = plan.motherboards * p.cables_per_motherboard;
  plan.power_watts = plan.daughterboards * p.watts_per_daughterboard +
                     plan.racks * p.rack_overhead_watts;
  plan.footprint_sqft = plan.racks * p.rack_footprint_sqft;
  plan.peak_flops = nodes * peak_flops_per_node;
  return plan;
}

PackageMap::PackageMap(const torus::Torus& topology, PackagingParams params)
    : topology_(&topology), params_(params) {
  num_motherboards_ = 1;
  for (int d = 0; d < torus::kMaxDims; ++d) {
    const int e = topology.shape().extent[d];
    mb_extent_[static_cast<std::size_t>(d)] = e >= 2 ? 2 : 1;
    mb_blocks_[static_cast<std::size_t>(d)] =
        e / mb_extent_[static_cast<std::size_t>(d)];
    num_motherboards_ *= mb_blocks_[static_cast<std::size_t>(d)];
  }
}

int PackageMap::mb_index(NodeId n) const {
  const torus::Coord c = topology_->coord(n);
  int index = 0;
  for (int d = torus::kMaxDims - 1; d >= 0; --d) {
    const auto dd = static_cast<std::size_t>(d);
    index = index * mb_blocks_[dd] + c.c[d] / mb_extent_[dd];
  }
  return index;
}

PackageLocation PackageMap::locate(NodeId n) const {
  PackageLocation loc;
  loc.motherboard = mb_index(n);
  // Daughterboard slot within the motherboard: pair nodes along the first
  // dimension with extent >= 2.
  const torus::Coord c = topology_->coord(n);
  int within = 0;
  int stride = 1;
  int pair_dim = -1;
  for (int d = 0; d < torus::kMaxDims; ++d) {
    const auto dd = static_cast<std::size_t>(d);
    if (pair_dim < 0 && mb_extent_[dd] == 2) {
      pair_dim = d;
      continue;  // the paired dimension does not contribute to the slot
    }
    within += (c.c[d] % mb_extent_[dd]) * stride;
    stride *= mb_extent_[dd];
  }
  loc.daughterboard = within;
  loc.crate = loc.motherboard / params_.motherboards_per_crate;
  loc.rack = loc.crate / params_.crates_per_rack;
  return loc;
}

bool PackageMap::same_motherboard(NodeId a, NodeId b) const {
  return mb_index(a) == mb_index(b);
}

}  // namespace qcdoc::machine
