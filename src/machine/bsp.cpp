#include "machine/bsp.h"

#include <algorithm>

#include "common/log.h"

namespace qcdoc::machine {

void BspRunner::compute(double cycles) {
  const Cycle start = now();
  machine_->engine().run_until(start + static_cast<Cycle>(cycles + 0.5));
  compute_cycles_ += cycles;
}

Cycle BspRunner::communicate() {
  const Cycle start = now();
  if (!machine_->mesh().drain()) {
    QCDOC_ERROR << "mesh stalled during communication phase";
    return ~Cycle{0};
  }
  const Cycle elapsed = now() - start;
  comm_cycles_ += static_cast<double>(elapsed);
  return elapsed;
}

Cycle BspRunner::overlap(double compute_cycles,
                         const std::function<void()>& post) {
  const Cycle start = now();
  post();
  if (!machine_->mesh().drain()) {
    QCDOC_ERROR << "mesh stalled during overlapped phase";
    return ~Cycle{0};
  }
  const Cycle comm_end = now();
  const Cycle compute_end = start + static_cast<Cycle>(compute_cycles + 0.5);
  const Cycle phase_end = std::max(comm_end, compute_end);
  machine_->engine().run_until(phase_end);

  const double comm = static_cast<double>(comm_end - start);
  compute_cycles_ += compute_cycles;
  if (comm > compute_cycles) {
    comm_cycles_ += comm - compute_cycles;  // exposed communication
    hidden_cycles_ += compute_cycles;
  } else {
    hidden_cycles_ += comm;  // fully hidden under compute
  }
  return phase_end - start;
}

void BspRunner::global_op(Cycle cycles) {
  machine_->engine().run_until(now() + cycles);
  global_cycles_ += static_cast<double>(cycles);
}

void BspRunner::reset_accounting() {
  compute_cycles_ = 0;
  comm_cycles_ = 0;
  hidden_cycles_ = 0;
  global_cycles_ = 0;
}

}  // namespace qcdoc::machine
