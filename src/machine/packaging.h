// Physical packaging hierarchy (paper Section 2.4, Figures 3-5).
//
// Two ASICs plus their DDR DIMMs sit on a 3"x6.5" daughterboard (~20 W);
// 32 daughterboards plug into a motherboard that hosts a 2^6 hypercube of
// 64 nodes; eight motherboards fill a crate; two crates make a water-cooled
// rack of 1024 nodes -- 1.0 Tflops peak under 10 kW.  Stacked racks put
// 10,000+ nodes in about 60 square feet.
#pragma once

#include <string>

#include "common/types.h"
#include "torus/coords.h"

namespace qcdoc::machine {

struct PackagingParams {
  int nodes_per_daughterboard = 2;
  int daughterboards_per_motherboard = 32;
  int motherboards_per_crate = 8;
  int crates_per_rack = 2;
  /// "About 20 Watts for both nodes"; the rack budget (<10 kW for 512
  /// daughterboards plus conversion/cooling overhead) implies ~18 W typical.
  double watts_per_daughterboard = 18.0;
  double rack_overhead_watts = 500.0;  ///< DC-DC conversion, cooling
  double rack_footprint_sqft = 6.0;       ///< stacked water-cooled racks
  int cables_per_motherboard = 12;        ///< 768 cables for 64 motherboards
};

/// Bill of physical materials and derived physical figures for a machine.
struct PackagingPlan {
  int nodes = 0;
  int daughterboards = 0;
  int motherboards = 0;
  int crates = 0;
  int racks = 0;
  int cables = 0;
  double power_watts = 0;
  double footprint_sqft = 0;
  double peak_flops = 0;

  std::string to_string() const;
};

PackagingPlan plan_for_nodes(int nodes, double peak_flops_per_node,
                             const PackagingParams& p = PackagingParams{});

/// Where a node lives physically.  Motherboards tile the torus as 2^6
/// hypercubes (each machine dimension contributes its low bit, for extents
/// of at least 2), matching the paper's "64 nodes as a 2^6 hypercube".
struct PackageLocation {
  int daughterboard = 0;  ///< within the motherboard
  int motherboard = 0;    ///< within the machine
  int crate = 0;
  int rack = 0;
};

class PackageMap {
 public:
  PackageMap(const torus::Torus& topology,
             PackagingParams params = PackagingParams{});

  PackageLocation locate(NodeId n) const;
  int motherboards() const { return num_motherboards_; }
  /// Nodes on the same motherboard share all Ethernet hub hardware and the
  /// global-clock distribution.
  bool same_motherboard(NodeId a, NodeId b) const;

 private:
  int mb_index(NodeId n) const;

  const torus::Torus* topology_;
  PackagingParams params_;
  // Per dimension: how many nodes of that dim live on one motherboard (2 for
  // extents >= 2, 1 for unused dims) and how many motherboard blocks tile it.
  std::array<int, torus::kMaxDims> mb_extent_{};
  std::array<int, torus::kMaxDims> mb_blocks_{};
  int num_motherboards_ = 0;
};

}  // namespace qcdoc::machine
