#include "machine/machine.h"

namespace qcdoc::machine {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg) {
  hw_.cpu_clock_hz = cfg.clock_hz;
  // Fixed-frequency external parts get slower in CPU cycles as the core
  // clock rises; on-chip paths (EDRAM, links) scale with the clock.
  mem_timing_.ddr_bytes_per_cycle = hw_.ddr_bandwidth_Bps / cfg.clock_hz;

  engine_ = std::make_unique<sim::Engine>();

  net::MeshConfig mesh_cfg;
  mesh_cfg.shape = cfg.shape;
  mesh_cfg.hssl.bit_error_rate = cfg.bit_error_rate;
  mesh_cfg.scu.link.ack_window = hw_.scu_ack_window;
  mesh_cfg.scu.dma.send_setup_cycles = hw_.scu_dma_setup_cycles;
  mesh_cfg.scu.dma.recv_landing_cycles = hw_.scu_dma_landing_cycles;
  mesh_cfg.mem = cfg.mem;
  mesh_cfg.seed = cfg.seed;
  mesh_ = std::make_unique<net::MeshNet>(engine_.get(), mesh_cfg);
  package_map_ = std::make_unique<PackageMap>(mesh_->topology());
}

PackagingPlan Machine::packaging() const {
  return plan_for_nodes(mesh_->num_nodes(), hw_.peak_flops_per_node());
}

Cycle Machine::power_on() {
  const Cycle start = engine_->now();
  mesh_->power_on();
  while (!mesh_->all_trained() && engine_->step()) {
  }
  return engine_->now() - start;
}

PowerOnReport Machine::power_on_checked(Cycle timeout_cycles) {
  if (timeout_cycles == 0) {
    timeout_cycles = mesh_->config().hssl.training_cycles * 64;
  }
  const Cycle start = engine_->now();
  const Cycle deadline = start + timeout_cycles;
  mesh_->power_on();
  while (!mesh_->all_trained() && engine_->now() < deadline &&
         engine_->step()) {
  }
  PowerOnReport report;
  report.cycles = engine_->now() - start;
  report.all_trained = mesh_->all_trained();
  if (!report.all_trained) report.untrained = mesh_->untrained_links();
  return report;
}

}  // namespace qcdoc::machine
