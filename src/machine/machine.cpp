#include "machine/machine.h"

#include "scu/packet.h"
#include "sim/parallel_engine.h"

namespace qcdoc::machine {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg) {
  hw_.cpu_clock_hz = cfg.clock_hz;
  // Fixed-frequency external parts get slower in CPU cycles as the core
  // clock rises; on-chip paths (EDRAM, links) scale with the clock.
  mem_timing_.ddr_bytes_per_cycle = hw_.ddr_bandwidth_Bps / cfg.clock_hz;

  net::MeshConfig mesh_cfg;
  mesh_cfg.shape = cfg.shape;
  mesh_cfg.hssl.bit_error_rate = cfg.bit_error_rate;
  mesh_cfg.scu.link.ack_window = hw_.scu_ack_window;
  mesh_cfg.scu.dma.send_setup_cycles = hw_.scu_dma_setup_cycles;
  mesh_cfg.scu.dma.recv_landing_cycles = hw_.scu_dma_landing_cycles;
  mesh_cfg.mem = cfg.mem;
  mesh_cfg.seed = cfg.seed;

  const int threads =
      cfg.sim_threads > 0 ? cfg.sim_threads : sim::threads_from_env();
  if (threads <= 1) {
    engine_ = std::make_unique<sim::SerialEngine>();
  } else {
    // Nothing crosses between nodes faster than the shortest frame's
    // serialization plus the wire time-of-flight, so that is the
    // conservative lookahead.
    sim::ParallelConfig pcfg;
    pcfg.threads = threads;
    pcfg.lookahead = static_cast<Cycle>(scu::min_frame_bits()) +
                     mesh_cfg.hssl.wire_delay_cycles;
    pcfg.num_nodes = mesh_cfg.shape.volume();
    engine_ = std::make_unique<sim::ParallelEngine>(pcfg);
  }

  mesh_ = std::make_unique<net::MeshNet>(engine_.get(), mesh_cfg);
  package_map_ = std::make_unique<PackageMap>(mesh_->topology());
}

PackagingPlan Machine::packaging() const {
  return plan_for_nodes(mesh_->num_nodes(), hw_.peak_flops_per_node());
}

Cycle Machine::power_on() {
  const Cycle start = engine_->now();
  mesh_->power_on();
  engine_->run_while([this] { return !mesh_->all_trained(); });
  return engine_->now() - start;
}

PowerOnReport Machine::power_on_checked(Cycle timeout_cycles) {
  if (timeout_cycles == 0) {
    timeout_cycles = mesh_->config().hssl.training_cycles * 64;
  }
  const Cycle start = engine_->now();
  const Cycle deadline = start + timeout_cycles;
  mesh_->power_on();
  engine_->run_while([this, deadline] {
    return !mesh_->all_trained() && engine_->now() < deadline;
  });
  PowerOnReport report;
  report.cycles = engine_->now() - start;
  report.all_trained = mesh_->all_trained();
  if (!report.all_trained) report.untrained = mesh_->untrained_links();
  return report;
}

}  // namespace qcdoc::machine
