// Cost and price/performance model (paper Section 4).
//
// Unit prices are derived from the 4096-node machine's actual purchase
// orders: $1,105,692.67 for 2048 daughterboards, $180,404.88 for 64
// motherboards, $187,296 for four water-cooled cabinets, $71,040 for 768
// mesh cables and $64,300 for the host/Ethernet/disk system -- a machine
// total of $1,610,442.  Design and prototyping cost $2,166,000; prorated
// over the funded QCDOC machines this adds $99,159 ($24.21 per node) for a
// grand total of $1,709,601.
#pragma once

#include "machine/packaging.h"

namespace qcdoc::machine {

struct CostModel {
  double daughterboard_usd = 1105692.67 / 2048.0;
  double motherboard_usd = 180404.88 / 64.0;
  double rack_usd = 187296.0 / 4.0;
  double cable_usd = 71040.0 / 768.0;
  double host_system_usd = 64300.0;  ///< host SMP + Ethernet switches + disks
  /// Residual between the itemized purchase orders and the paper's stated
  /// $1,610,442 total (the host figure was "awaiting final accounting").
  double final_accounting_usd = 1708.45;
  /// R&D proration, per node: $99,159 across the 4096-node machine.
  double rnd_usd_per_node = 99159.0 / 4096.0;
  /// Volume discount applied to the per-node parts for the full 12,288-node
  /// machines ("the cost per node will be reduced, due to the discount from
  /// volume ordering").
  double volume_discount_at_12288 = 0.10;

  double parts_cost(const PackagingPlan& plan) const;
  double total_cost(const PackagingPlan& plan) const;

  /// Dollars per sustained Mflops at the given clock and solver efficiency.
  double usd_per_sustained_mflops(const PackagingPlan& plan, double clock_hz,
                                  double efficiency) const;
};

}  // namespace qcdoc::machine
