#include "machine/cost.h"

namespace qcdoc::machine {

double CostModel::parts_cost(const PackagingPlan& plan) const {
  double discount = 1.0;
  if (plan.nodes >= 12288) discount = 1.0 - volume_discount_at_12288;
  return discount * (plan.daughterboards * daughterboard_usd +
                     plan.motherboards * motherboard_usd +
                     plan.racks * rack_usd + plan.cables * cable_usd) +
         host_system_usd + final_accounting_usd;
}

double CostModel::total_cost(const PackagingPlan& plan) const {
  return parts_cost(plan) + plan.nodes * rnd_usd_per_node;
}

double CostModel::usd_per_sustained_mflops(const PackagingPlan& plan,
                                           double clock_hz,
                                           double efficiency) const {
  const double sustained_mflops =
      plan.nodes * (clock_hz * 2.0) * efficiency / 1e6;
  return total_cost(plan) / sustained_mflops;
}

}  // namespace qcdoc::machine
