// QCDSP: the predecessor machine, as a comparison baseline (paper Section 1).
//
// "An earlier computer, QCDSP ... incorporated a low-latency four-dimensional
// mesh network to realize peak speeds of 1 Teraflops with 20,000 nodes ...
// The RBRC QCDSP achieved a price performance of $10/sustained Megaflops and
// won the Gordon Bell prize in price/performance at SC 98."
//
// QCDOC's headline claim is the factor-of-ten improvement over this machine;
// the model captures QCDSP's published figures so benches can print the
// comparison.
#pragma once

#include "machine/cost.h"

namespace qcdoc::machine {

struct QcdspModel {
  // 1 Tflops peak across ~20,000 nodes -> 50 Mflops per DSP node.
  double peak_flops_per_node = 50e6;
  int columbia_nodes = 8192;   ///< DOE-funded machine at Columbia
  int rbrc_nodes = 12288;      ///< RIKEN-funded machine at BNL
  int mesh_dims = 4;           ///< four-dimensional torus
  double usd_per_sustained_mflops = 10.0;  ///< Gordon Bell '98 figure

  double rbrc_peak_tflops() const {
    return rbrc_nodes * peak_flops_per_node / 1e12;
  }

  /// Generational price/performance gain of a QCDOC machine over QCDSP.
  double qcdoc_improvement(const CostModel& cost, const PackagingPlan& plan,
                           double clock_hz, double efficiency) const {
    return usd_per_sustained_mflops /
           cost.usd_per_sustained_mflops(plan, clock_hz, efficiency);
  }
};

}  // namespace qcdoc::machine
