#include "cpu/timing.h"

#include <algorithm>

namespace qcdoc::cpu {

KernelBreakdown CpuModel::analyze(const KernelProfile& p) const {
  KernelBreakdown b;
  const double issue = p.issue_efficiency > 0 ? p.issue_efficiency
                                              : params_.fpu_issue_efficiency;
  b.fpu_cycles =
      (p.fmadd_flops / hw_.flops_per_cycle + p.other_flops) / issue;
  b.lsu_cycles = (p.load_bytes + p.store_bytes) / params_.lsu_bytes_per_cycle;
  b.edram_cycles =
      mem_.stream_cycles(memsys::Region::kEdram, p.edram_bytes, p.streams);
  b.ddr_cycles =
      p.ddr_bytes > 0
          ? mem_.stream_cycles(memsys::Region::kDdr, p.ddr_bytes, p.streams)
          : 0.0;
  b.overhead_cycles = p.overhead_cycles;
  // EDRAM prefetch overlaps with the issue pipes; DDR stalls are exposed.
  const double issue_bound = std::max({b.fpu_cycles, b.lsu_cycles, b.edram_cycles});
  b.total_cycles = issue_bound + b.ddr_cycles + b.overhead_cycles;
  b.bound = issue_bound == b.fpu_cycles   ? "fpu"
            : issue_bound == b.lsu_cycles ? "lsu"
                                          : "edram";
  return b;
}

}  // namespace qcdoc::cpu
