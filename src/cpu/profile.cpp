#include "cpu/profile.h"

#include <algorithm>

namespace qcdoc::cpu {

KernelProfile& KernelProfile::operator+=(const KernelProfile& o) {
  if (name.empty()) name = o.name;
  fmadd_flops += o.fmadd_flops;
  other_flops += o.other_flops;
  load_bytes += o.load_bytes;
  store_bytes += o.store_bytes;
  edram_bytes += o.edram_bytes;
  ddr_bytes += o.ddr_bytes;
  streams = std::max(streams, o.streams);
  overhead_cycles += o.overhead_cycles;
  return *this;
}

KernelProfile KernelProfile::scaled(double factor) const {
  KernelProfile p = *this;
  p.fmadd_flops *= factor;
  p.other_flops *= factor;
  p.load_bytes *= factor;
  p.store_bytes *= factor;
  p.edram_bytes *= factor;
  p.ddr_bytes *= factor;
  p.overhead_cycles *= factor;
  return p;
}

}  // namespace qcdoc::cpu
