// Kernel operation profiles.
//
// The lattice kernels execute real arithmetic on host doubles; for timing,
// each kernel reports exactly what it did -- fused-multiply-add flops,
// isolated flops, load/store traffic, and which memory region the traffic
// hits -- and the CPU model (cpu/timing.h) converts that into PPC-440
// cycles.  Profiles add and scale, so a CG iteration's profile is composed
// from its constituent kernels.
#pragma once

#include <string>

namespace qcdoc::cpu {

struct KernelProfile {
  std::string name;
  double fmadd_flops = 0;  ///< flops issued as fused multiply-adds (2/cycle)
  double other_flops = 0;  ///< isolated adds/muls (1/cycle)
  double load_bytes = 0;   ///< bytes loaded by the inner loop
  double store_bytes = 0;  ///< bytes stored
  double edram_bytes = 0;  ///< traffic reaching the EDRAM controller
  double ddr_bytes = 0;    ///< traffic reaching external DDR
  int streams = 2;         ///< concurrent contiguous access streams
  double overhead_cycles = 0;  ///< loop control / address bookkeeping
  /// Per-kernel FPU issue efficiency of the hand-tuned assembly (0 = use
  /// the machine-wide calibrated default).  Kernels differ structurally:
  /// dense 6x6 clover blocks and Ls-pipelined domain-wall loops keep the
  /// 5-cycle FPU pipe fuller than gather-heavy single-vector staggered
  /// code.  See cpu/timing.h for the calibration policy.
  double issue_efficiency = 0.0;

  double flops() const { return fmadd_flops + other_flops; }

  KernelProfile& operator+=(const KernelProfile& o);
  KernelProfile scaled(double factor) const;

  friend KernelProfile operator+(KernelProfile a, const KernelProfile& b) {
    a += b;
    return a;
  }
};

}  // namespace qcdoc::cpu
