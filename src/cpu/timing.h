// PPC 440 + FPU64 timing model (paper Section 2.1).
//
// The core issues one fused multiply-add per cycle (2 flops, 1 Gflops peak
// at 500 MHz) alongside one load/store.  Three resources bound a kernel:
//
//   fpu:   fmadd pairs at 1/cycle, isolated flops at 1/cycle, degraded by a
//          single calibrated issue-efficiency factor covering FPU dependency
//          chains (5-cycle latency), register pressure and non-pairable ops.
//   lsu:   one 64-bit access per cycle.
//   edram: the prefetching controller streams 16 bytes/cycle and overlaps
//          with compute (that is its purpose), so it maxes with fpu/lsu.
//
// DDR traffic does NOT overlap: external line fills behind the PLB stall
// the core (there is no prefetch engine in front of DDR), so DDR cycles are
// additive.  This asymmetry is what produces the paper's efficiency cliff
// from ~46% (working set in EDRAM) to ~30% (spilled to DDR).
//
// Calibration: `fpu_issue_efficiency` is fitted ONCE against the paper's
// Wilson figure (40% on a 4^4 local volume) and then frozen; clover, ASQTAD
// and domain-wall efficiencies, the single-precision uplift and the DDR
// cliff are predictions.
#pragma once

#include "common/types.h"
#include "cpu/profile.h"
#include "memsys/memsys.h"

namespace qcdoc::cpu {

struct CpuParams {
  double fpu_issue_efficiency = 0.68;  ///< calibrated on Wilson (see above)
  double lsu_bytes_per_cycle = 8.0;    ///< one 64-bit load/store per cycle
};

/// Where a kernel's cycles go: which resource binds it and by how much.
struct KernelBreakdown {
  double fpu_cycles = 0;     ///< issue-limited floating point
  double lsu_cycles = 0;     ///< load/store pipe
  double edram_cycles = 0;   ///< prefetched EDRAM streaming (overlapped)
  double ddr_cycles = 0;     ///< exposed DDR stalls (additive)
  double overhead_cycles = 0;
  double total_cycles = 0;
  const char* bound = "";    ///< "fpu", "lsu" or "edram"
};

class CpuModel {
 public:
  CpuModel(const HwParams& hw, const memsys::MemTiming& mem,
           CpuParams params = CpuParams{})
      : hw_(hw), mem_(mem), params_(params) {}

  /// Cycles to execute a kernel with this profile.
  double kernel_cycles(const KernelProfile& p) const {
    return analyze(p).total_cycles;
  }

  /// Full resource breakdown (the roofline view of a kernel).
  KernelBreakdown analyze(const KernelProfile& p) const;

  /// Fraction of peak floating-point throughput achieved.
  double efficiency(const KernelProfile& p) const {
    const double c = kernel_cycles(p);
    return c > 0 ? p.flops() / (hw_.flops_per_cycle * c) : 0.0;
  }

  const HwParams& hw() const { return hw_; }
  const memsys::MemTiming& mem() const { return mem_; }
  const CpuParams& params() const { return params_; }

 private:
  HwParams hw_;
  memsys::MemTiming mem_;
  CpuParams params_;
};

}  // namespace qcdoc::cpu
