// High Speed Serial Link model (paper Section 2.2).
//
// The fundamental physical link of the mesh is a unidirectional bit-serial
// connection running at the processor clock: one bit per CPU cycle.  On
// power-up the HSSL macros train by exchanging a known byte sequence to find
// the sampling point and byte boundaries; once trained they exchange idle
// bytes whenever no payload is queued.  The model serializes frames at
// 1 bit/cycle, adds a wire time-of-flight, and injects bit errors from a
// deterministic per-link stream so the SCU's parity/resend machinery is
// exercised for real.
#pragma once

#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace qcdoc::hssl {

struct HsslConfig {
  Cycle training_cycles = 2048;  ///< byte-sequence exchange after reset
  Cycle wire_delay_cycles = 2;   ///< time-of-flight through board + cable
  double bit_error_rate = 0.0;   ///< probability a transmitted bit flips
};

/// One unidirectional serial link.  Frames are opaque bit counts to the HSSL;
/// framing (headers, parity) belongs to the SCU layer above.
class Hssl {
 public:
  /// `on_delivered(frame_id, flipped_bits)` fires when the last bit of a
  /// frame (plus wire delay) reaches the receiver.
  using DeliveryFn = std::function<void(u64 frame_id, int flipped_bits)>;

  Hssl(sim::Engine* engine, HsslConfig cfg, Rng error_stream,
       sim::StatSet* stats);

  /// Begin the training sequence; the link carries data only once trained.
  void power_on();
  bool trained() const { return trained_; }
  Cycle trained_at() const { return trained_at_; }

  /// Queue a frame of `bits` for transmission.  Returns its frame id.
  /// Frames serialize strictly in order at 1 bit/cycle.
  u64 transmit(int bits, DeliveryFn on_delivered);

  /// Called whenever the serializer becomes free (including right after
  /// training completes), so the SCU layer can make a fresh priority
  /// decision per frame instead of queueing ahead.
  void set_ready_callback(std::function<void()> fn) { on_ready_ = std::move(fn); }

  bool busy() const { return busy_; }
  /// Cycles this link spent sending idle bytes (trained but no payload).
  Cycle idle_cycles() const;

  /// Change the error rate at runtime (fault injection for diagnostics).
  void set_bit_error_rate(double rate) { cfg_.bit_error_rate = rate; }
  double bit_error_rate() const { return cfg_.bit_error_rate; }

 private:
  void start_next();

  sim::Engine* engine_;
  HsslConfig cfg_;
  Rng errors_;
  sim::StatSet* stats_;

  bool powered_ = false;
  bool trained_ = false;
  Cycle trained_at_ = 0;
  bool busy_ = false;
  u64 next_frame_id_ = 0;
  Cycle busy_cycles_ = 0;

  struct Frame {
    u64 id;
    int bits;
    DeliveryFn on_delivered;
  };
  std::deque<Frame> queue_;
  std::function<void()> on_ready_;
};

}  // namespace qcdoc::hssl
