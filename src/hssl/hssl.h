// High Speed Serial Link model (paper Section 2.2).
//
// The fundamental physical link of the mesh is a unidirectional bit-serial
// connection running at the processor clock: one bit per CPU cycle.  On
// power-up the HSSL macros train by exchanging a known byte sequence to find
// the sampling point and byte boundaries; once trained they exchange idle
// bytes whenever no payload is queued.  The model serializes frames at
// 1 bit/cycle, adds a wire time-of-flight, and injects bit errors from a
// deterministic per-link stream so the SCU's parity/resend machinery is
// exercised for real.
//
// Fault model: a link can die outright (`fail()` -- a broken cable or
// daughterboard, paper Sec. 4's bring-up debugging) and be brought back by
// host-commanded retraining (`retrain()`), the recovery action the
// Ethernet/JTAG path enables.  A failed link rejects traffic with a clear
// sentinel instead of queueing it silently.
#pragma once

#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "sim/engine.h"
#include "sim/small_fn.h"
#include "sim/stats.h"

namespace qcdoc::hssl {

struct HsslConfig {
  Cycle training_cycles = 2048;  ///< byte-sequence exchange after reset
  Cycle wire_delay_cycles = 2;   ///< time-of-flight through board + cable
  double bit_error_rate = 0.0;   ///< probability a transmitted bit flips
};

/// Lifecycle of one serial link.
enum class LinkState {
  kDown,      ///< not yet powered
  kTraining,  ///< exchanging the training byte sequence
  kTrained,   ///< carrying data / idle bytes
  kFailed,    ///< dead: rejects traffic until retrained
};

const char* to_string(LinkState s);

/// One unidirectional serial link.  Frames are opaque bit counts to the HSSL;
/// framing (headers, parity) belongs to the SCU layer above.
class Hssl {
 public:
  /// `on_delivered(frame_id, flipped_bits)` fires when the last bit of a
  /// frame (plus wire delay) reaches the receiver.  A pooled small-buffer
  /// callable, not std::function: the SCU's per-frame capture (link + wire
  /// frame + packet) overflows std::function's inline buffer and was
  /// costing one heap allocation per transmitted frame.
  using DeliveryFn = sim::SmallFn<void(u64 frame_id, int flipped_bits)>;

  /// Returned by transmit() when the link refuses the frame (failed or
  /// unpowered).  Callers must treat it as a hard link fault.
  static constexpr u64 kRejected = ~0ull;

  Hssl(sim::EngineRef engine, HsslConfig cfg, Rng error_stream,
       sim::StatSet* stats);

  /// Deliveries happen at the *receiving* node: tell the engine which one,
  /// so the parallel engine can route the delivery event to the right shard.
  /// Set by the network builder when the wire's far end is connected.
  void set_delivery_affinity(sim::Affinity a) {
    delivery_ = sim::EngineRef(engine_.get(), a);
  }

  /// Begin the training sequence; the link carries data only once trained.
  void power_on();
  [[nodiscard]] bool trained() const { return state_ == LinkState::kTrained; }
  [[nodiscard]] bool failed() const { return state_ == LinkState::kFailed; }
  LinkState state() const { return state_; }
  Cycle trained_at() const { return trained_at_; }

  /// Kill the link: pending and in-flight frames are lost, and further
  /// transmit() calls are rejected until retrain().  Models a dead cable /
  /// daughterboard or an HSSL macro that dropped lock.
  void fail();

  /// Host-commanded recovery: re-run the training sequence.  Valid from the
  /// failed *or* trained state (retraining a marginal link re-finds the
  /// sampling point).  Anything queued is dropped, as on real re-lock.
  void retrain();

  /// Queue a frame of `bits` for transmission.  Returns its frame id, or
  /// kRejected (with a stat and a warning) when the link cannot carry it.
  /// Frames serialize strictly in order at 1 bit/cycle.
  u64 transmit(int bits, DeliveryFn on_delivered);

  /// Called whenever the serializer becomes free (including right after
  /// training completes), so the SCU layer can make a fresh priority
  /// decision per frame instead of queueing ahead.
  void set_ready_callback(std::function<void()> fn) { on_ready_ = std::move(fn); }

  [[nodiscard]] bool busy() const { return busy_; }
  /// Cycles this link spent sending idle bytes (trained but no payload).
  Cycle idle_cycles() const;

  /// Change the error rate at runtime (fault injection for diagnostics).
  /// Clamped to [0, 1]; non-finite rates are treated as 0.
  void set_bit_error_rate(double rate);
  double bit_error_rate() const { return cfg_.bit_error_rate; }

  u64 times_trained() const { return times_trained_; }
  u64 rejected_frames() const { return rejected_frames_; }

 private:
  void begin_training();
  void start_next();

  sim::EngineRef engine_;
  sim::EngineRef delivery_;  ///< same engine, the receiving node's affinity
  HsslConfig cfg_;
  Rng errors_;
  sim::StatSet* stats_;
  // Per-frame hot counters, resolved once (StatSet::cell) instead of a
  // string-keyed map lookup per transmitted frame.
  u64* stat_frames_ = nullptr;
  u64* stat_bits_ = nullptr;

  LinkState state_ = LinkState::kDown;
  Cycle trained_at_ = 0;
  bool busy_ = false;
  u64 next_frame_id_ = 0;
  Cycle busy_cycles_ = 0;
  u64 times_trained_ = 0;
  u64 rejected_frames_ = 0;
  /// Bumped on fail()/retrain(): events scheduled under an older epoch
  /// (training completion, serializer free, deliveries) are void.
  u64 epoch_ = 0;

  struct Frame {
    u64 id;
    int bits;
    DeliveryFn on_delivered;
  };
  std::deque<Frame> queue_;
  std::function<void()> on_ready_;
};

}  // namespace qcdoc::hssl
