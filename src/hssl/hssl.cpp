#include "hssl/hssl.h"

#include <cmath>

#include "common/log.h"
#include "sim/affinity_guard.h"

namespace qcdoc::hssl {

const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::kDown: return "down";
    case LinkState::kTraining: return "training";
    case LinkState::kTrained: return "trained";
    case LinkState::kFailed: return "failed";
  }
  return "?";
}

Hssl::Hssl(sim::EngineRef engine, HsslConfig cfg, Rng error_stream,
           sim::StatSet* stats)
    : engine_(engine), delivery_(engine), cfg_(cfg), errors_(error_stream),
      stats_(stats) {
  if (stats_) {
    stat_frames_ = stats_->cell("hssl.frames");
    stat_bits_ = stats_->cell("hssl.bits");
  }
  set_bit_error_rate(cfg_.bit_error_rate);  // clamp whatever the config holds
}

void Hssl::begin_training() {
  state_ = LinkState::kTraining;
  engine_.schedule(cfg_.training_cycles, [this, epoch = epoch_] {
    if (epoch != epoch_) return;  // failed/retrained while training
    state_ = LinkState::kTrained;
    trained_at_ = engine_.now();
    busy_cycles_ = 0;
    ++times_trained_;
    if (stats_) stats_->add("hssl.trained");
    start_next();
    if (!busy_ && on_ready_) on_ready_();
  });
}

void Hssl::power_on() {
  if (state_ != LinkState::kDown) return;
  begin_training();
}

void Hssl::fail() {
  QCDOC_AFFSAN_CHECK(this);
  if (state_ == LinkState::kDown || state_ == LinkState::kFailed) {
    state_ = LinkState::kFailed;
    return;
  }
  state_ = LinkState::kFailed;
  busy_ = false;
  queue_.clear();  // bits in flight never arrive
  ++epoch_;
  if (stats_) stats_->add("hssl.failures");
}

void Hssl::retrain() {
  QCDOC_AFFSAN_CHECK(this);
  if (state_ == LinkState::kDown || state_ == LinkState::kTraining) return;
  ++epoch_;
  busy_ = false;
  queue_.clear();
  if (stats_) stats_->add("hssl.retrains");
  begin_training();
}

void Hssl::set_bit_error_rate(double rate) {
  QCDOC_AFFSAN_CHECK(this);
  if (!std::isfinite(rate) || rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  cfg_.bit_error_rate = rate;
}

u64 Hssl::transmit(int bits, DeliveryFn on_delivered) {
  QCDOC_AFFSAN_CHECK(this);
  if (state_ == LinkState::kDown || state_ == LinkState::kFailed ||
      bits <= 0) {
    ++rejected_frames_;
    if (stats_) stats_->add("hssl.rejected_frames");
    QCDOC_WARN << "hssl: transmit rejected (" << to_string(state_)
               << " link, " << bits << " bits)";
    return kRejected;
  }
  const u64 id = next_frame_id_++;
  queue_.push_back(Frame{id, bits, std::move(on_delivered)});
  if (state_ == LinkState::kTrained && !busy_) start_next();
  return id;
}

void Hssl::start_next() {
  if (state_ != LinkState::kTrained || busy_ || queue_.empty()) return;
  busy_ = true;
  Frame frame = std::move(queue_.front());
  queue_.pop_front();

  int flipped = 0;
  if (cfg_.bit_error_rate > 0.0) {
    for (int b = 0; b < frame.bits; ++b) {
      if (errors_.next_bool(cfg_.bit_error_rate)) ++flipped;
    }
  }
  busy_cycles_ += static_cast<Cycle>(frame.bits);
  if (stats_) {
    ++*stat_frames_;
    *stat_bits_ += static_cast<u64>(frame.bits);
    if (flipped > 0) stats_->add("hssl.bits_flipped", static_cast<u64>(flipped));
  }

  // The sender's serializer frees up after the last bit leaves; delivery at
  // the far end happens one wire delay later.  Both events are void if the
  // link fails or retrains in between (the bits die on the wire).
  const Cycle serialize = static_cast<Cycle>(frame.bits);
  engine_.schedule(serialize, [this, epoch = epoch_] {
    if (epoch != epoch_) return;
    busy_ = false;
    start_next();
    if (!busy_ && on_ready_) on_ready_();
  });
  // Delivery executes at the receiving node.  The serialization time plus
  // the wire delay is never shorter than a minimum frame plus the wire
  // delay, which is exactly the parallel engine's lookahead.
  delivery_.schedule(
      serialize + cfg_.wire_delay_cycles,
      [this, epoch = epoch_, frame = std::move(frame), flipped]() mutable {
        // epoch_ moves only in host slices (fail/retrain), which fence every
        // node event, so this receiver-side read can never race the sender;
        // AFFSAN checks the mutators at runtime.
        // qcdoc-lint: allow(cross-affinity-access) epoch_ is window-frozen
        if (epoch != epoch_) return;
        if (frame.on_delivered) frame.on_delivered(frame.id, flipped);
      });
}

Cycle Hssl::idle_cycles() const {
  if (state_ != LinkState::kTrained) return 0;
  const Cycle since_trained = engine_.now() - trained_at_;
  return since_trained > busy_cycles_ ? since_trained - busy_cycles_ : 0;
}

}  // namespace qcdoc::hssl
