#include "hssl/hssl.h"

#include <cassert>

namespace qcdoc::hssl {

Hssl::Hssl(sim::Engine* engine, HsslConfig cfg, Rng error_stream,
           sim::StatSet* stats)
    : engine_(engine), cfg_(cfg), errors_(error_stream), stats_(stats) {}

void Hssl::power_on() {
  if (powered_) return;
  powered_ = true;
  engine_->schedule(cfg_.training_cycles, [this] {
    trained_ = true;
    trained_at_ = engine_->now();
    if (stats_) stats_->add("hssl.trained");
    start_next();
    if (!busy_ && on_ready_) on_ready_();
  });
}

u64 Hssl::transmit(int bits, DeliveryFn on_delivered) {
  assert(powered_ && "transmit before power_on");
  assert(bits > 0);
  const u64 id = next_frame_id_++;
  queue_.push_back(Frame{id, bits, std::move(on_delivered)});
  if (trained_ && !busy_) start_next();
  return id;
}

void Hssl::start_next() {
  if (!trained_ || busy_ || queue_.empty()) return;
  busy_ = true;
  Frame frame = std::move(queue_.front());
  queue_.pop_front();

  int flipped = 0;
  if (cfg_.bit_error_rate > 0.0) {
    for (int b = 0; b < frame.bits; ++b) {
      if (errors_.next_bool(cfg_.bit_error_rate)) ++flipped;
    }
  }
  busy_cycles_ += static_cast<Cycle>(frame.bits);
  if (stats_) {
    stats_->add("hssl.frames");
    stats_->add("hssl.bits", static_cast<u64>(frame.bits));
    if (flipped > 0) stats_->add("hssl.bits_flipped", static_cast<u64>(flipped));
  }

  // The sender's serializer frees up after the last bit leaves; delivery at
  // the far end happens one wire delay later.
  const Cycle serialize = static_cast<Cycle>(frame.bits);
  engine_->schedule(serialize, [this] {
    busy_ = false;
    start_next();
    if (!busy_ && on_ready_) on_ready_();
  });
  engine_->schedule(serialize + cfg_.wire_delay_cycles,
                    [frame = std::move(frame), flipped] {
                      if (frame.on_delivered) frame.on_delivered(frame.id, flipped);
                    });
}

Cycle Hssl::idle_cycles() const {
  if (!trained_) return 0;
  const Cycle since_trained = engine_->now() - trained_at_;
  return since_trained > busy_cycles_ ? since_trained - busy_cycles_ : 0;
}

}  // namespace qcdoc::hssl
