#include "fault/fault.h"

#include <algorithm>

#include "common/log.h"
#include "sim/affinity_guard.h"

namespace qcdoc::fault {

using torus::LinkIndex;

const char* to_string(JobFailure f) {
  switch (f) {
    case JobFailure::kNone: return "none";
    case JobFailure::kAdmissionRejected: return "admission_rejected";
    case JobFailure::kPartitionRevoked: return "partition_revoked";
    case JobFailure::kLinkFault: return "link_fault";
    case JobFailure::kDeadlineExpired: return "deadline_expired";
    case JobFailure::kApplicationError: return "application_error";
    case JobFailure::kCheckpointLost: return "checkpoint_lost";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBerSpike: return "ber_spike";
    case FaultKind::kLinkDeath: return "link_death";
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeHang: return "node_hang";
    case FaultKind::kAckDropBurst: return "ack_drop_burst";
    case FaultKind::kDataCorruption: return "data_corruption";
    case FaultKind::kMemUpset: return "mem_upset";
  }
  return "?";
}

FaultPlan& FaultPlan::ber_spike(Cycle at, NodeId node, LinkIndex link,
                                double rate, Cycle duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBerSpike;
  e.node = node;
  e.link = link;
  e.bit_error_rate = rate;
  e.duration = duration;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::link_death(Cycle at, NodeId node, LinkIndex link) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDeath;
  e.node = node;
  e.link = link;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::node_crash(Cycle at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kNodeCrash;
  e.node = node;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::node_hang(Cycle at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kNodeHang;
  e.node = node;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::ack_drop_burst(Cycle at, NodeId node, LinkIndex link,
                                     int count) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kAckDropBurst;
  e.node = node;
  e.link = link;
  e.count = count;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::data_corruption(Cycle at, NodeId node, LinkIndex link,
                                      int count) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDataCorruption;
  e.node = node;
  e.link = link;
  e.count = count;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::mem_upset(Cycle at, NodeId node, u64 word_addr,
                                int bits, int bit) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kMemUpset;
  e.node = node;
  e.mem_addr = word_addr;
  e.mem_bit = bit;
  e.count = bits;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::mem_upset_indexed(Cycle at, NodeId node, u64 index,
                                        int bits, int bit) {
  mem_upset(at, node, index, bits, bit);
  events_.back().mem_addr_is_index = true;
  return *this;
}

FaultPlan FaultPlan::sustained_mem_upsets(u64 seed, const torus::Shape& shape,
                                          int n, Cycle start, Cycle horizon,
                                          double uncorrectable_fraction) {
  FaultPlan plan;
  Rng rng(seed);
  const torus::Torus topo(shape);
  const u64 nodes = static_cast<u64>(topo.num_nodes());
  for (int i = 0; i < n; ++i) {
    const Cycle at =
        start + (horizon > 0 ? static_cast<Cycle>(rng.next_below(
                                   static_cast<u64>(horizon)))
                             : 0);
    const NodeId node{static_cast<u32>(rng.next_below(nodes))};
    const u64 index = rng.next_u64();
    const int bit = static_cast<int>(rng.next_below(64));
    const int bits = rng.next_bool(uncorrectable_fraction) ? 2 : 1;
    plan.mem_upset_indexed(at, node, index, bits, bit);
  }
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan FaultPlan::random_campaign(u64 seed, const torus::Shape& shape,
                                     int n, Cycle start, Cycle horizon) {
  FaultPlan plan;
  Rng rng(seed);
  const torus::Torus topo(shape);
  const u64 nodes = static_cast<u64>(topo.num_nodes());
  for (int i = 0; i < n; ++i) {
    const Cycle at =
        start + (horizon > 0 ? static_cast<Cycle>(rng.next_below(
                                   static_cast<u64>(horizon)))
                             : 0);
    const NodeId node{static_cast<u32>(rng.next_below(nodes))};
    const LinkIndex link{
        static_cast<int>(rng.next_below(torus::kLinksPerNode))};
    switch (rng.next_below(4)) {
      case 0:
        plan.ber_spike(at, node, link, 1e-3 + rng.next_double() * 1e-2,
                       /*duration=*/1 << 14);
        break;
      case 1:
        plan.link_death(at, node, link);
        break;
      case 2:
        plan.ack_drop_burst(at, node, link,
                            1 + static_cast<int>(rng.next_below(4)));
        break;
      default:
        plan.data_corruption(at, node, link,
                             1 + static_cast<int>(rng.next_below(3)));
        break;
    }
  }
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan FaultPlan::from_events(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

FaultInjector::FaultInjector(net::MeshNet* mesh, sim::StatSet* stats)
    : mesh_(mesh), stats_(stats) {}

void FaultInjector::arm(const FaultPlan& plan) {
  // Injection is a host action (the campaign driver lives outside the
  // machine), so fault events carry host affinity and serialize before node
  // events at equal timestamps on every engine.
  const sim::EngineRef host(&mesh_->engine());
  for (const FaultEvent& e : plan.events()) {
    const Cycle at = std::max(e.at, host.now());
    const std::size_t idx = armed_.size();
    armed_.emplace_back(e, false);
    // A fault may hit any node's wire, SCU or memory -- and corruption
    // lands on the neighbour's receive side, so the set is the machine.
    // qcdoc-lint: touches(all) faults reach arbitrary nodes by design
    host.schedule_at(at, [this, idx] {
      QCDOC_AFFSAN_TOUCH_ALL();
      armed_[idx].second = true;
      apply(armed_[idx].first);
    });
  }
}

std::vector<FaultEvent> FaultInjector::pending_plan() const {
  std::vector<FaultEvent> out;
  for (const auto& [e, fired] : armed_) {
    if (!fired) out.push_back(e);
  }
  return out;
}

std::size_t FaultInjector::pending_count() const {
  std::size_t n = 0;
  for (const auto& [e, fired] : armed_) {
    if (!fired) ++n;
  }
  return n;
}

void FaultInjector::apply(const FaultEvent& e) {
  ++injected_;
  if (stats_) {
    stats_->add("fault.injected");
    stats_->add(std::string("fault.") + to_string(e.kind));
  }
  QCDOC_INFO << "fault: " << to_string(e.kind) << " node " << e.node.value
             << " link " << e.link.value << " at cycle "
             << mesh_->engine().now();
  switch (e.kind) {
    case FaultKind::kBerSpike: {
      hssl::Hssl& wire = mesh_->wire(e.node, e.link);
      const double previous = wire.bit_error_rate();
      wire.set_bit_error_rate(e.bit_error_rate);
      if (e.duration > 0) {
        const sim::EngineRef host(&mesh_->engine());
        // qcdoc-lint: touches(node) restores the BER of e.node's wire only
        host.schedule(e.duration, [this, e, previous] {
          QCDOC_AFFSAN_TOUCH(static_cast<sim::Affinity>(e.node.value));
          mesh_->wire(e.node, e.link).set_bit_error_rate(previous);
        });
      }
      break;
    }
    case FaultKind::kLinkDeath:
      mesh_->wire(e.node, e.link).fail();
      break;
    case FaultKind::kNodeCrash:
      mesh_->set_condition(e.node, net::NodeCondition::kCrashed);
      for (int l = 0; l < torus::kLinksPerNode; ++l) {
        mesh_->wire(e.node, LinkIndex{l}).fail();
      }
      break;
    case FaultKind::kNodeHang:
      mesh_->set_condition(e.node, net::NodeCondition::kHung);
      break;
    case FaultKind::kAckDropBurst:
      mesh_->scu(e.node).send_side(e.link).drop_acks(e.count);
      break;
    case FaultKind::kDataCorruption: {
      // Corruption lands at the *receiving* end of this node's outgoing
      // wire: the neighbour's facing receive side decodes the bad words.
      const NodeId neighbor = mesh_->topology().neighbor(e.node, e.link);
      mesh_->scu(neighbor)
          .recv_side(torus::facing_link(e.link))
          .force_corrupt(e.count);
      break;
    }
    case FaultKind::kMemUpset: {
      memsys::NodeMemory& mem = mesh_->memory(e.node);
      u64 addr = e.mem_addr;
      if (e.mem_addr_is_index) {
        const u64 allocated = mem.allocated_words();
        if (allocated == 0) break;  // no live data: the upset hits free space
        addr = mem.nth_allocated_word(e.mem_addr % allocated);
      }
      for (int k = 0; k < std::max(1, e.count); ++k) {
        mem.ecc().inject_upset(addr, (e.mem_bit + k) & 63);
      }
      break;
    }
  }
}

}  // namespace qcdoc::fault
