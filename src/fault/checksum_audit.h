// Incremental link-checksum auditing.
//
// Each SCU keeps a running additive checksum of payload words per directed
// link; the paper compares send vs. receive sums at the end of a calculation
// to confirm no erroneous data was exchanged.  For long runs that is too
// late: an undetected corruption early in a multi-day evolution wastes the
// whole run.  The auditor exploits the checksums being plain sums -- the
// *delta* since the last audit must match edge-by-edge -- so a quiescent
// mesh can be audited at every iteration boundary, and a solver can restart
// from its last known-clean checkpoint instead of from zero.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "net/mesh_net.h"

namespace qcdoc::fault {

class ChecksumAuditor {
 public:
  /// Baselines every directed edge of the mesh at construction time.
  explicit ChecksumAuditor(net::MeshNet* mesh);

  /// Compare per-edge checksum deltas since the previous call (or since
  /// construction).  The mesh must be quiescent -- in-flight words would
  /// show up as spurious mismatches.  Re-baselines unconditionally, so a
  /// dirty interval is consumed: the caller rolls back, and the next audit
  /// starts clean.  Optionally reports the mismatching edges.
  [[nodiscard]] bool clean_since_last(
      std::vector<std::string>* mismatches = nullptr);

  u64 audits() const { return audits_; }
  u64 failures() const { return failures_; }

  /// Snapshot hooks.  Only lifetime counters are serialized: snapshots are
  /// taken at audit boundaries, where the baselines equal the live link
  /// checksums, so rebaseline() after the machine restore reconstructs
  /// them exactly.
  void restore_counters(u64 audits, u64 failures) {
    audits_ = audits;
    failures_ = failures;
  }
  /// Re-baseline every edge now without auditing.
  void rebaseline() { snapshot(&send_base_, &recv_base_); }

 private:
  void snapshot(std::vector<u64>* send, std::vector<u64>* recv) const;

  net::MeshNet* mesh_;
  std::vector<torus::Torus::Edge> edges_;
  std::vector<u64> send_base_;
  std::vector<u64> recv_base_;
  u64 audits_ = 0;
  u64 failures_ = 0;
};

/// The memory-side counterpart of ChecksumAuditor: polls the per-node ECC
/// machine-check latches (memsys/ecc.h) at iteration boundaries.  An
/// uncorrectable codeword anywhere in the audited node set makes the
/// interval dirty; consuming the latches re-arms them, so -- exactly like
/// the checksum auditor -- the caller rolls back and the next audit starts
/// clean.
class MemCheckAuditor {
 public:
  /// Audits `nodes`, or every node of the mesh when the list is empty.
  explicit MemCheckAuditor(net::MeshNet* mesh, std::vector<NodeId> nodes = {});

  /// True when no node latched a machine check since the previous call.
  /// Optionally reports each consumed machine check (node, region, word).
  [[nodiscard]] bool clean_since_last(
      std::vector<std::string>* reports = nullptr);

  u64 audits() const { return audits_; }
  u64 failures() const { return failures_; }
  u64 machine_checks() const { return machine_checks_; }

  /// Snapshot hook (see ChecksumAuditor::restore_counters): latches are
  /// captured with the per-node ECC state, so only counters live here.
  void restore_counters(u64 audits, u64 failures, u64 machine_checks) {
    audits_ = audits;
    failures_ = failures;
    machine_checks_ = machine_checks;
  }

 private:
  net::MeshNet* mesh_;
  std::vector<NodeId> nodes_;
  u64 audits_ = 0;
  u64 failures_ = 0;
  u64 machine_checks_ = 0;
};

}  // namespace qcdoc::fault
