// Fault-injection campaigns (paper Sec. 4 bring-up, turned into a harness).
//
// Building and debugging a 10 Teraflops machine means living with marginal
// serial links, dead daughterboards and hung nodes.  This module schedules
// deterministic fault events against a MeshNet so the detection and recovery
// machinery (SCU link-fault escalation, host health sweeps, checksum audits,
// CG restart) can be exercised reproducibly: the same seed always yields the
// same campaign, the same simulation, the same recovery -- the repo-wide
// bit-reproducibility requirement applied to failure paths.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/mesh_net.h"
#include "sim/stats.h"
#include "torus/coords.h"

namespace qcdoc::fault {

/// Scheduler-visible failure classes: why a job submitted to the host's
/// JobScheduler ended (or re-queued) abnormally.  The scheduler classifies
/// every abnormal outcome into exactly one of these, so the fault-campaign
/// benches and the telemetry stream can aggregate failures by cause the
/// same way the injection side aggregates by FaultKind.
enum class JobFailure {
  kNone,              ///< job ran to completion
  kAdmissionRejected, ///< never accepted (queue bound / quota / bad request)
  kPartitionRevoked,  ///< quarantine hit the partition; triggers migration
  kLinkFault,         ///< SCU link fault escalated during the job
  kDeadlineExpired,   ///< exceeded its cycle budget; bounded re-queue
  kApplicationError,  ///< the job body reported failure
  kCheckpointLost,    ///< migration could not capture or restore job state
};

const char* to_string(JobFailure f);

enum class FaultKind {
  kBerSpike,        ///< transient: one wire's bit-error rate jumps
  kLinkDeath,       ///< permanent (until retrain): one wire dies outright
  kNodeCrash,       ///< one ASIC goes electrically dead: all 12 wires die
  kNodeHang,        ///< one CPU stops making progress; SCU still acks
  kAckDropBurst,    ///< a burst of acknowledgement frames is lost
  kDataCorruption,  ///< multi-bit flips that slip past parity (undetected)
  kMemUpset,        ///< soft error in EDRAM/DDR: bit flips in one codeword
};

const char* to_string(FaultKind k);

/// One scheduled fault.  Which fields matter depends on `kind`; unused ones
/// are ignored.
struct FaultEvent {
  Cycle at = 0;
  FaultKind kind = FaultKind::kBerSpike;
  NodeId node{0};               ///< owning node of the affected wire
  torus::LinkIndex link{0};     ///< outgoing link index on `node`
  double bit_error_rate = 0.0;  ///< kBerSpike: the spiked rate
  Cycle duration = 0;           ///< kBerSpike: 0 = permanent, else restore
  int count = 0;                ///< kAckDropBurst/kDataCorruption/kMemUpset
  // kMemUpset: target word and first bit.  With `mem_addr_is_index` the
  // address is entropy resolved at apply time against the node's allocated
  // words (a random upset only matters where software keeps data); `count`
  // bits starting at `mem_bit` flip within the same 64-bit word, so count=1
  // is SECDED-correctable and count>=2 is an uncorrectable codeword.
  u64 mem_addr = 0;
  int mem_bit = 0;
  bool mem_addr_is_index = false;
};

/// An ordered list of fault events, built by hand for targeted tests or
/// generated pseudo-randomly for soak campaigns.
class FaultPlan {
 public:
  FaultPlan& ber_spike(Cycle at, NodeId node, torus::LinkIndex link,
                       double rate, Cycle duration = 0);
  FaultPlan& link_death(Cycle at, NodeId node, torus::LinkIndex link);
  FaultPlan& node_crash(Cycle at, NodeId node);
  FaultPlan& node_hang(Cycle at, NodeId node);
  FaultPlan& ack_drop_burst(Cycle at, NodeId node, torus::LinkIndex link,
                            int count);
  FaultPlan& data_corruption(Cycle at, NodeId node, torus::LinkIndex link,
                             int count);
  /// A soft error in node memory: `bits` flips (starting at `bit`) within
  /// one 64-bit word at `word_addr`.  bits=1 is correctable by SECDED;
  /// bits>=2 makes the codeword uncorrectable and latches a machine check.
  FaultPlan& mem_upset(Cycle at, NodeId node, u64 word_addr, int bits = 1,
                       int bit = 0);
  /// Entropy-addressed variant: the injector resolves `index` against the
  /// node's allocated words at apply time, so campaigns hit live data
  /// without knowing the allocation layout in advance.
  FaultPlan& mem_upset_indexed(Cycle at, NodeId node, u64 index,
                               int bits = 1, int bit = 0);

  const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Rebuild a plan from raw events (the snapshot layer re-arms the unfired
  /// remainder of a campaign after a process restart).
  static FaultPlan from_events(std::vector<FaultEvent> events);

  /// A seed-deterministic soak campaign: `n` events of mixed kinds spread
  /// uniformly over [start, start + horizon) against random wires of a
  /// machine of the given shape.  Node crashes are excluded (they end a
  /// soak run immediately); use node_crash() explicitly when wanted.
  static FaultPlan random_campaign(u64 seed, const torus::Shape& shape, int n,
                                   Cycle start, Cycle horizon);

  /// A seed-deterministic sustained memory-upset campaign: `n` soft errors
  /// spread uniformly over [start, start + horizon) against random nodes,
  /// entropy-addressed into each node's allocated words.  A fraction
  /// `uncorrectable_fraction` of the events flip two bits of one word
  /// (beyond SECDED); the rest are single-bit and correctable.
  static FaultPlan sustained_mem_upsets(u64 seed, const torus::Shape& shape,
                                        int n, Cycle start, Cycle horizon,
                                        double uncorrectable_fraction = 0.0);

 private:
  std::vector<FaultEvent> events_;
};

/// Applies a FaultPlan to a live mesh by scheduling each event on the mesh's
/// engine.  The injector only *breaks* things; detection and recovery belong
/// to the SCU escalation path and the host health monitor.
class FaultInjector {
 public:
  FaultInjector(net::MeshNet* mesh, sim::StatSet* stats = nullptr);

  /// Schedule every event of `plan`.  Events whose time is already in the
  /// past fire at now().  May be called repeatedly with different plans.
  void arm(const FaultPlan& plan);

  /// Apply one event immediately (the scheduled path calls this too).
  void apply(const FaultEvent& e);

  u64 injected() const { return injected_; }

  /// Armed-but-unfired events: the plan remainder a snapshot carries so a
  /// restored process can re-arm exactly the faults still to come.  These
  /// are also the injector's pending events in the engine queue, which the
  /// snapshot layer must account for when requiring quiescence.
  std::vector<FaultEvent> pending_plan() const;
  std::size_t pending_count() const;
  /// Snapshot hook: restore the lifetime injected counter.
  void restore_injected(u64 n) { injected_ = n; }

 private:
  net::MeshNet* mesh_;
  sim::StatSet* stats_;
  u64 injected_ = 0;
  /// Every event ever armed, with its fired flag.  Host-affinity events run
  /// only on the coordinator thread, so no locking is needed.
  std::vector<std::pair<FaultEvent, bool>> armed_;
};

}  // namespace qcdoc::fault
