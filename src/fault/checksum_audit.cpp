#include "fault/checksum_audit.h"

#include <sstream>

namespace qcdoc::fault {

ChecksumAuditor::ChecksumAuditor(net::MeshNet* mesh)
    : mesh_(mesh), edges_(mesh->topology().edges()) {
  snapshot(&send_base_, &recv_base_);
}

void ChecksumAuditor::snapshot(std::vector<u64>* send,
                               std::vector<u64>* recv) const {
  send->resize(edges_.size());
  recv->resize(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const auto& e = edges_[i];
    (*send)[i] = mesh_->scu(e.from).send_checksum(e.link);
    (*recv)[i] = mesh_->scu(e.to).recv_checksum(torus::facing_link(e.link));
  }
}

bool ChecksumAuditor::clean_since_last(std::vector<std::string>* mismatches) {
  ++audits_;
  std::vector<u64> send_now, recv_now;
  snapshot(&send_now, &recv_now);
  bool ok = true;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    // The checksums are additive (sum of payload words mod 2^64), so the
    // interval's contribution is the difference of running sums.
    const u64 sent_delta = send_now[i] - send_base_[i];
    const u64 recv_delta = recv_now[i] - recv_base_[i];
    if (sent_delta != recv_delta) {
      ok = false;
      if (mismatches) {
        const auto& e = edges_[i];
        std::ostringstream msg;
        msg << "edge " << e.from.value << " -> " << e.to.value
            << " (link index " << e.link.value << "): send delta 0x"
            << std::hex << sent_delta << " != recv delta 0x" << recv_delta;
        mismatches->push_back(msg.str());
      }
    }
  }
  if (!ok) ++failures_;
  send_base_ = std::move(send_now);
  recv_base_ = std::move(recv_now);
  return ok;
}

MemCheckAuditor::MemCheckAuditor(net::MeshNet* mesh, std::vector<NodeId> nodes)
    : mesh_(mesh), nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    const int n = mesh_->num_nodes();
    nodes_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) nodes_.push_back(NodeId{static_cast<u32>(i)});
  }
}

bool MemCheckAuditor::clean_since_last(std::vector<std::string>* reports) {
  ++audits_;
  bool ok = true;
  for (const NodeId node : nodes_) {
    const auto checks = mesh_->memory(node).ecc().consume_machine_checks();
    if (checks.empty()) continue;
    ok = false;
    machine_checks_ += checks.size();
    if (reports) {
      for (const auto& mc : checks) {
        std::ostringstream msg;
        msg << "node " << node.value << ": uncorrectable "
            << (mc.region == memsys::Region::kEdram ? "EDRAM" : "DDR")
            << " codeword at word 0x" << std::hex << mc.word_addr;
        reports->push_back(msg.str());
      }
    }
  }
  if (!ok) ++failures_;
  return ok;
}

}  // namespace qcdoc::fault
