// Atomic on-disk generation store for snapshots.
//
// A stream of snapshots lives in one directory as numbered generation files
// `<stream>.g<NNNNNNNN>.qsnap`.  Commits are two-phase: encode to
// `<name>.tmp`, write + fsync, rename(2) onto the final name, then fsync the
// directory -- so a crash at any byte leaves either the previous generation
// set intact or the new file fully durable, never a half-written visible
// snapshot.  Readers walk generations newest-first and take the first one
// that fully verifies, reporting what was wrong with every generation they
// skipped.  Retention keeps the newest `keep_generations` files (default 2:
// current + last known good).
//
// Test hook: when the environment variable QCDOC_SNAPSHOT_KILL_AT_BYTE is
// set, save() writes only that many bytes of the *temp* file, fsyncs, and
// raises SIGKILL -- the crash-consistency tests use it to die mid-write.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "snapshot/format.h"

namespace qcdoc::snapshot {

/// One generation file as seen on disk (qsnap's listing unit).
struct GenerationInfo {
  u64 generation = 0;
  std::string path;
  u64 bytes = 0;
};

class SnapshotStore {
 public:
  /// `dir` is created if missing; `stream` names the snapshot series.
  SnapshotStore(std::string dir, std::string stream);

  /// Two-phase atomic commit of `file` as the next generation.  On success
  /// `file`'s generation number has been assigned (previous max + 1) and
  /// older generations beyond the retention window are pruned.
  Status save(SnapshotFile* file);

  /// Load the newest generation that fully verifies.  Generations that fail
  /// are skipped with a per-file diagnostic appended to `diagnostics` (if
  /// non-null); failure means no generation on disk was loadable.
  Status load_latest(SnapshotFile* out,
                     std::vector<std::string>* diagnostics = nullptr) const;

  /// All generation files for this stream, oldest first.
  std::vector<GenerationInfo> list() const;

  /// Highest generation number on disk (0 when none).
  u64 latest_generation() const;

  void set_keep_generations(int n) { keep_generations_ = n < 1 ? 1 : n; }

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(u64 generation) const;
  void prune() const;

  std::string dir_;
  std::string stream_;
  int keep_generations_ = 2;
};

/// Read a whole file into memory.  Shared by the store and tools/qsnap.
Status read_file_bytes(const std::string& path, std::vector<u8>* out);

}  // namespace qcdoc::snapshot
