// The versioned snapshot container format (DESIGN.md §8).
//
// A snapshot file is a NERSC-configuration-style container generalized to
// arbitrary machine state: a fixed header (magic, format version, generation
// number), a section table, section payloads, and an end-of-file footer.
// Integrity is layered so every failure mode has a distinct diagnostic:
//
//   - header CRC     -> "not a snapshot" / "corrupt header"
//   - table CRC      -> "corrupt section table"
//   - per-section CRC-32 over the payload -> "section X corrupt/truncated"
//   - footer magic + total length -> torn write (file ends early)
//
// Sections are (8-char tag, u32 version, u32 flags, payload).  Readers must
// reject an unknown *required* section and skip unknown optional ones
// (kSectionOptional), which is the forward-compatibility rule: adding state
// to the snapshot is an optional section first, and becomes required only
// after a format-version bump.  Everything here is in-memory encode/decode;
// the atomic on-disk generation protocol lives in store.h.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "snapshot/bytes.h"

namespace qcdoc::snapshot {

inline constexpr char kFileMagic[8] = {'Q', 'S', 'N', 'A', 'P', '1', '\r', '\n'};
inline constexpr char kFooterMagic[8] = {'Q', 'S', 'N', 'A', 'P', 'E', 'N', 'D'};
inline constexpr u32 kFormatVersion = 1;

/// Section flag: readers that do not know this tag may skip it.
inline constexpr u32 kSectionOptional = 1u << 0;

// Well-known section tags (8 chars, space padded).
inline constexpr const char* kSecMeta = "META    ";
inline constexpr const char* kSecEngine = "ENGINE  ";
inline constexpr const char* kSecMemory = "MEMORY  ";
inline constexpr const char* kSecEcc = "ECC     ";
inline constexpr const char* kSecScu = "SCU     ";
inline constexpr const char* kSecHealth = "HEALTH  ";
inline constexpr const char* kSecAudit = "AUDIT   ";
inline constexpr const char* kSecService = "SERVICE ";
inline constexpr const char* kSecSolver = "SOLVER  ";
inline constexpr const char* kSecJob = "JOB     ";

struct Section {
  std::string tag;  ///< exactly 8 chars, space padded
  u32 version = 1;
  u32 flags = 0;
  std::vector<u8> payload;
};

/// Decoded (or to-be-encoded) snapshot: the unit store.h writes atomically.
class SnapshotFile {
 public:
  u64 generation() const { return generation_; }
  void set_generation(u64 g) { generation_ = g; }

  /// Append a section; `tag` is padded/truncated to 8 chars.
  void add_section(const std::string& tag, ByteSink payload, u32 version = 1,
                   u32 flags = 0);
  const std::vector<Section>& sections() const { return sections_; }

  /// The section with `tag`, or nullptr.
  const Section* find(const std::string& tag) const;
  /// A bounds-checked reader over the section's payload, or a failure when
  /// the section is missing.
  Status open(const std::string& tag, std::optional<ByteSource>* out) const;

  /// Serialize to the on-disk image (header + table + payloads + footer).
  std::vector<u8> encode() const;

  /// Parse and fully verify an on-disk image: header, table, every section
  /// CRC, footer.  On failure returns a diagnostic naming the first broken
  /// layer; `out` is untouched.
  static Status decode(std::span<const u8> bytes, SnapshotFile* out);

  /// Parse only header + table and verify each section's CRC without
  /// retaining payloads -- the qsnap inspector's cheap path.  Each entry of
  /// `notes` describes one section ("GOOD tag ..." / "BAD tag ...").
  static Status verify(std::span<const u8> bytes, u64* generation,
                       std::vector<std::string>* notes);

 private:
  static std::string pad_tag(const std::string& tag);

  u64 generation_ = 0;
  std::vector<Section> sections_;
};

}  // namespace qcdoc::snapshot
