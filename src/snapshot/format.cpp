#include "snapshot/format.h"

#include <cstdio>

namespace qcdoc::snapshot {

namespace {

// On-disk layout constants.  The header is fixed-size so verify() can read
// the table without touching payloads.
//
//   header  : magic[8] u32 format_version  u32 section_count
//             u64 generation  u64 file_bytes  u32 reserved
//             u32 header_crc (over the 36 bytes before it)          = 40 B
//   table   : per section: tag[8] u32 version u32 flags
//             u64 offset u64 bytes u32 payload_crc                  = 36 B
//             then u32 table_crc
//   payloads: at their recorded offsets
//   footer  : magic[8] u64 file_bytes u32 full_file_crc (crc over
//             everything before the footer's crc field)             = 20 B
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kTableEntryBytes = 36;
constexpr std::size_t kFooterBytes = 20;

void put_magic(ByteSink& sink, const char (&magic)[8]) {
  sink.put_raw(std::span<const u8>(reinterpret_cast<const u8*>(magic), 8));
}

Status get_magic(ByteSource& src, const char (&magic)[8], const char* what) {
  for (int i = 0; i < 8; ++i) {
    u8 b = 0;
    if (Status s = src.get_u8(&b); !s) return s;
    if (b != static_cast<u8>(magic[i])) {
      return Status::fail(std::string(what) + " magic mismatch at byte " +
                          std::to_string(i));
    }
  }
  return Status::good();
}

struct TableEntry {
  std::string tag;
  u32 version = 0;
  u32 flags = 0;
  u64 offset = 0;
  u64 bytes = 0;
  u32 crc = 0;
};

/// Parse header + section table common to decode() and verify().
Status parse_prefix(std::span<const u8> bytes, u64* generation,
                    std::vector<TableEntry>* table) {
  if (bytes.size() < kHeaderBytes) {
    return Status::fail("file too short for snapshot header (" +
                        std::to_string(bytes.size()) + " bytes)");
  }
  ByteSource hdr(bytes.subspan(0, kHeaderBytes), "header");
  if (Status s = get_magic(hdr, kFileMagic, "file"); !s) {
    return Status::fail("not a snapshot: " + s.reason);
  }
  u32 format_version = 0, section_count = 0, reserved = 0, header_crc = 0;
  u64 file_bytes = 0;
  if (Status s = hdr.get_u32(&format_version); !s) return s;
  if (Status s = hdr.get_u32(&section_count); !s) return s;
  if (Status s = hdr.get_u64(generation); !s) return s;
  if (Status s = hdr.get_u64(&file_bytes); !s) return s;
  if (Status s = hdr.get_u32(&reserved); !s) return s;
  if (Status s = hdr.get_u32(&header_crc); !s) return s;
  const u32 want_hdr_crc = crc32(bytes.subspan(0, kHeaderBytes - 4));
  if (header_crc != want_hdr_crc) {
    return Status::fail("corrupt header (crc mismatch)");
  }
  if (format_version != kFormatVersion) {
    return Status::fail("format version skew: file has v" +
                        std::to_string(format_version) + ", reader expects v" +
                        std::to_string(kFormatVersion));
  }
  if (file_bytes != bytes.size()) {
    return Status::fail("torn write: header records " +
                        std::to_string(file_bytes) + " bytes, file has " +
                        std::to_string(bytes.size()));
  }

  const std::size_t table_bytes =
      static_cast<std::size_t>(section_count) * kTableEntryBytes + 4;
  if (bytes.size() < kHeaderBytes + table_bytes + kFooterBytes) {
    return Status::fail("torn write: file ends inside the section table");
  }
  ByteSource tbl(bytes.subspan(kHeaderBytes, table_bytes), "section table");
  table->clear();
  for (u32 i = 0; i < section_count; ++i) {
    TableEntry e;
    e.tag.resize(8);
    for (int c = 0; c < 8; ++c) {
      u8 b = 0;
      if (Status s = tbl.get_u8(&b); !s) return s;
      e.tag[static_cast<std::size_t>(c)] = static_cast<char>(b);
    }
    if (Status s = tbl.get_u32(&e.version); !s) return s;
    if (Status s = tbl.get_u32(&e.flags); !s) return s;
    if (Status s = tbl.get_u64(&e.offset); !s) return s;
    if (Status s = tbl.get_u64(&e.bytes); !s) return s;
    if (Status s = tbl.get_u32(&e.crc); !s) return s;
    table->push_back(std::move(e));
  }
  u32 table_crc = 0;
  if (Status s = tbl.get_u32(&table_crc); !s) return s;
  const u32 want_tbl_crc = crc32(bytes.subspan(kHeaderBytes, table_bytes - 4));
  if (table_crc != want_tbl_crc) {
    return Status::fail("corrupt section table (crc mismatch)");
  }

  // Footer: magic + recorded length + whole-file crc.
  ByteSource ftr(bytes.subspan(bytes.size() - kFooterBytes, kFooterBytes),
                 "footer");
  if (Status s = get_magic(ftr, kFooterMagic, "footer"); !s) {
    return Status::fail("torn write: " + s.reason);
  }
  u64 footer_bytes = 0;
  u32 file_crc = 0;
  if (Status s = ftr.get_u64(&footer_bytes); !s) return s;
  if (Status s = ftr.get_u32(&file_crc); !s) return s;
  if (footer_bytes != bytes.size()) {
    return Status::fail("torn write: footer records " +
                        std::to_string(footer_bytes) + " bytes, file has " +
                        std::to_string(bytes.size()));
  }
  const u32 want_file_crc = crc32(bytes.subspan(0, bytes.size() - 4));
  if (file_crc != want_file_crc) {
    return Status::fail("corrupt file (whole-file crc mismatch)");
  }

  // Validate each section's extent before anyone dereferences offsets.
  const std::size_t payload_base = kHeaderBytes + table_bytes;
  const std::size_t payload_end = bytes.size() - kFooterBytes;
  for (const TableEntry& e : *table) {
    if (e.offset < payload_base || e.offset > payload_end ||
        e.bytes > payload_end - e.offset) {
      return Status::fail("section " + e.tag +
                          " extent out of range (offset " +
                          std::to_string(e.offset) + ", bytes " +
                          std::to_string(e.bytes) + ")");
    }
  }
  return Status::good();
}

}  // namespace

std::string SnapshotFile::pad_tag(const std::string& tag) {
  std::string t = tag.substr(0, 8);
  t.resize(8, ' ');
  return t;
}

void SnapshotFile::add_section(const std::string& tag, ByteSink payload,
                               u32 version, u32 flags) {
  Section s;
  s.tag = pad_tag(tag);
  s.version = version;
  s.flags = flags;
  s.payload = payload.take();
  sections_.push_back(std::move(s));
}

const Section* SnapshotFile::find(const std::string& tag) const {
  const std::string t = pad_tag(tag);
  for (const Section& s : sections_) {
    if (s.tag == t) return &s;
  }
  return nullptr;
}

Status SnapshotFile::open(const std::string& tag,
                          std::optional<ByteSource>* out) const {
  const Section* s = find(tag);
  if (s == nullptr) {
    return Status::fail("snapshot missing required section " + pad_tag(tag));
  }
  out->emplace(std::span<const u8>(s->payload), "section " + s->tag);
  return Status::good();
}

std::vector<u8> SnapshotFile::encode() const {
  const std::size_t table_bytes = sections_.size() * kTableEntryBytes + 4;
  std::size_t payload_bytes = 0;
  for (const Section& s : sections_) payload_bytes += s.payload.size();
  const std::size_t total =
      kHeaderBytes + table_bytes + payload_bytes + kFooterBytes;

  ByteSink out;
  // Header.
  put_magic(out, kFileMagic);
  out.put_u32(kFormatVersion);
  out.put_u32(static_cast<u32>(sections_.size()));
  out.put_u64(generation_);
  out.put_u64(total);
  out.put_u32(0);  // reserved: room for header growth without a version bump
  out.put_u32(crc32(std::span<const u8>(out.bytes())));

  // Section table.
  ByteSink table;
  u64 offset = kHeaderBytes + table_bytes;
  for (const Section& s : sections_) {
    table.put_raw(
        std::span<const u8>(reinterpret_cast<const u8*>(s.tag.data()), 8));
    table.put_u32(s.version);
    table.put_u32(s.flags);
    table.put_u64(offset);
    table.put_u64(s.payload.size());
    table.put_u32(crc32(std::span<const u8>(s.payload)));
    offset += s.payload.size();
  }
  table.put_u32(crc32(std::span<const u8>(table.bytes())));
  out.put_raw(std::span<const u8>(table.bytes()));

  // Payloads.
  for (const Section& s : sections_) {
    out.put_raw(std::span<const u8>(s.payload));
  }

  // Footer.
  put_magic(out, kFooterMagic);
  out.put_u64(total);
  out.put_u32(crc32(std::span<const u8>(out.bytes())));
  return out.take();
}

Status SnapshotFile::decode(std::span<const u8> bytes, SnapshotFile* out) {
  u64 generation = 0;
  std::vector<TableEntry> table;
  if (Status s = parse_prefix(bytes, &generation, &table); !s) return s;

  SnapshotFile file;
  file.generation_ = generation;
  for (const TableEntry& e : table) {
    std::span<const u8> payload =
        bytes.subspan(e.offset, static_cast<std::size_t>(e.bytes));
    const u32 got = crc32(payload);
    if (got != e.crc) {
      return Status::fail("section " + e.tag + " corrupt (crc mismatch)");
    }
    Section s;
    s.tag = e.tag;
    s.version = e.version;
    s.flags = e.flags;
    s.payload.assign(payload.begin(), payload.end());
    file.sections_.push_back(std::move(s));
  }
  *out = std::move(file);
  return Status::good();
}

Status SnapshotFile::verify(std::span<const u8> bytes, u64* generation,
                            std::vector<std::string>* notes) {
  std::vector<TableEntry> table;
  if (Status s = parse_prefix(bytes, generation, &table); !s) return s;
  Status result = Status::good();
  for (const TableEntry& e : table) {
    std::span<const u8> payload =
        bytes.subspan(e.offset, static_cast<std::size_t>(e.bytes));
    const u32 got = crc32(payload);
    std::string line = (got == e.crc ? "GOOD " : "BAD  ");
    line += e.tag + " v" + std::to_string(e.version) + " flags=" +
            std::to_string(e.flags) + " offset=" + std::to_string(e.offset) +
            " bytes=" + std::to_string(e.bytes) + " crc=0x";
    char hex[9];
    std::snprintf(hex, sizeof(hex), "%08x", e.crc);
    line += hex;
    if (got != e.crc) {
      result = Status::fail("section " + e.tag + " corrupt (crc mismatch)");
    }
    if (notes != nullptr) notes->push_back(std::move(line));
  }
  return result;
}

}  // namespace qcdoc::snapshot
