#include "snapshot/machine_state.h"

#include <string>

#include "memsys/scrub.h"
#include "torus/coords.h"

namespace qcdoc::snapshot {

namespace {

using machine::Machine;

// Section payload versions.  Bump a section's version (and teach its decoder
// both) when its layout changes without a whole-format bump.
constexpr u32 kMetaVersion = 1;
constexpr u32 kEngineVersion = 1;
constexpr u32 kMemoryVersion = 1;
constexpr u32 kEccVersion = 1;
constexpr u32 kScuVersion = 1;
constexpr u32 kHealthVersion = 1;
constexpr u32 kAuditVersion = 1;
constexpr u32 kServiceVersion = 1;

Status check_version(const Section* s, u32 want) {
  if (s->version != want) {
    return Status::fail("section " + s->tag + " version skew: file has v" +
                        std::to_string(s->version) + ", reader expects v" +
                        std::to_string(want));
  }
  return Status::good();
}

void put_rng(ByteSink& sink, const Rng::State& st) {
  for (const u64 w : st.s) sink.put_u64(w);
  sink.put_bool(st.have_spare);
  sink.put_u64(st.spare_bits);
}

Status get_rng(ByteSource& src, Rng::State* st) {
  for (u64& w : st->s) {
    if (Status s = src.get_u64(&w); !s) return s;
  }
  if (Status s = src.get_bool(&st->have_spare); !s) return s;
  return src.get_u64(&st->spare_bits);
}

// --- META -------------------------------------------------------------------

void encode_meta(Machine& m, ByteSink& sink) {
  const machine::MachineConfig& cfg = m.config();
  for (const int e : cfg.shape.extent) sink.put_u32(static_cast<u32>(e));
  sink.put_double(cfg.clock_hz);
  sink.put_double(cfg.bit_error_rate);
  sink.put_u64(cfg.seed);
  sink.put_u64(cfg.mem.edram_words);
  sink.put_u64(cfg.mem.ddr_words);
  sink.put_u64(cfg.mem.ecc.edram_row_words);
  sink.put_u64(cfg.mem.ecc.ddr_burst_words);
  const bool scrubbing = m.mesh().scrubbing();
  sink.put_bool(scrubbing);
  memsys::ScrubConfig scfg;
  if (scrubbing) scfg = m.mesh().scrubber(NodeId{0}).config();
  sink.put_u64(scfg.period_cycles);
  sink.put_u64(scfg.rows_per_period);
  sink.put_u64(scfg.cycles_per_row);
}

Status restore_meta(Machine& m, ByteSource& src, bool* scrubbing,
                    memsys::ScrubConfig* scfg) {
  const machine::MachineConfig& cfg = m.config();
  for (int d = 0; d < torus::kMaxDims; ++d) {
    u32 extent = 0;
    if (Status s = src.get_u32(&extent); !s) return s;
    if (static_cast<int>(extent) != cfg.shape.extent[static_cast<size_t>(d)]) {
      return Status::fail(
          "geometry mismatch: snapshot mesh " + std::to_string(extent) +
          " in dim " + std::to_string(d) + ", machine has " +
          std::to_string(cfg.shape.extent[static_cast<size_t>(d)]));
    }
  }
  double clock_hz = 0, ber = 0;
  u64 seed = 0, edram = 0, ddr = 0, row = 0, burst = 0;
  if (Status s = src.get_double(&clock_hz); !s) return s;
  if (Status s = src.get_double(&ber); !s) return s;
  if (Status s = src.get_u64(&seed); !s) return s;
  if (Status s = src.get_u64(&edram); !s) return s;
  if (Status s = src.get_u64(&ddr); !s) return s;
  if (Status s = src.get_u64(&row); !s) return s;
  if (Status s = src.get_u64(&burst); !s) return s;
  if (clock_hz != cfg.clock_hz || ber != cfg.bit_error_rate) {
    return Status::fail("config mismatch: snapshot clock/BER differ");
  }
  if (seed != cfg.seed) {
    return Status::fail("seed mismatch: snapshot has " + std::to_string(seed) +
                        ", machine has " + std::to_string(cfg.seed) +
                        " (RNG streams would diverge)");
  }
  if (edram != cfg.mem.edram_words || ddr != cfg.mem.ddr_words ||
      row != cfg.mem.ecc.edram_row_words ||
      burst != cfg.mem.ecc.ddr_burst_words) {
    return Status::fail("memory geometry mismatch (EDRAM/DDR/ECC sizes)");
  }
  if (Status s = src.get_bool(scrubbing); !s) return s;
  if (Status s = src.get_u64(&scfg->period_cycles); !s) return s;
  if (Status s = src.get_u64(&scfg->rows_per_period); !s) return s;
  if (Status s = src.get_u64(&scfg->cycles_per_row); !s) return s;
  return src.expect_exhausted();
}

// --- ENGINE -----------------------------------------------------------------

void encode_engine(Machine& m, ByteSink& sink) {
  const sim::EngineClockState st = m.engine().capture_clock();
  sink.put_u64(st.now);
  sink.put_u64(st.events_executed);
  sink.put_u64(st.streams.size());
  for (const sim::EngineStreamState& s : st.streams) {
    sink.put_u32(s.rank);
    sink.put_u64(s.scheduled);
    sink.put_u64(s.executed);
    sink.put_u64(s.digest);
  }
}

Status restore_engine(Machine& m, ByteSource& src) {
  sim::EngineClockState st;
  u64 n = 0;
  if (Status s = src.get_u64(&st.now); !s) return s;
  if (Status s = src.get_u64(&st.events_executed); !s) return s;
  if (Status s = src.get_u64(&n); !s) return s;
  for (u64 i = 0; i < n; ++i) {
    sim::EngineStreamState e;
    if (Status s = src.get_u32(&e.rank); !s) return s;
    if (Status s = src.get_u64(&e.scheduled); !s) return s;
    if (Status s = src.get_u64(&e.executed); !s) return s;
    if (Status s = src.get_u64(&e.digest); !s) return s;
    st.streams.push_back(e);
  }
  if (Status s = src.expect_exhausted(); !s) return s;
  try {
    m.engine().restore_clock(st);
  } catch (const std::logic_error& e) {
    return Status::fail(std::string("engine restore: ") + e.what());
  }
  return Status::good();
}

// --- MEMORY -----------------------------------------------------------------

void encode_memory(Machine& m, ByteSink& sink) {
  const int n = m.num_nodes();
  sink.put_u32(static_cast<u32>(n));
  for (int i = 0; i < n; ++i) {
    const NodeId node{static_cast<u32>(i)};
    sink.put_u8(static_cast<u8>(m.mesh().condition(node)));
    const auto chunks = m.memory(node).chunks();
    sink.put_u64(chunks.size());
    for (const memsys::NodeMemory::ChunkView& c : chunks) {
      sink.put_u64(c.base);
      sink.put_u64_span(c.words);
    }
  }
}

Status restore_memory(Machine& m, ByteSource& src) {
  u32 n = 0;
  if (Status s = src.get_u32(&n); !s) return s;
  if (static_cast<int>(n) != m.num_nodes()) {
    return Status::fail("node count mismatch: snapshot has " +
                        std::to_string(n) + ", machine has " +
                        std::to_string(m.num_nodes()));
  }
  for (u32 i = 0; i < n; ++i) {
    const NodeId node{i};
    u8 condition = 0;
    if (Status s = src.get_u8(&condition); !s) return s;
    m.mesh().set_condition(node,
                           static_cast<net::NodeCondition>(condition));
    u64 chunk_count = 0;
    if (Status s = src.get_u64(&chunk_count); !s) return s;
    if (chunk_count != m.memory(node).chunks().size()) {
      return Status::fail(
          "allocation layout mismatch on node " + std::to_string(i) +
          ": snapshot has " + std::to_string(chunk_count) +
          " allocations, replayed machine has " +
          std::to_string(m.memory(node).chunks().size()) +
          " (the restoring process must replay the identical allocation "
          "sequence before restoring)");
    }
    for (u64 c = 0; c < chunk_count; ++c) {
      u64 base = 0;
      std::vector<u64> words;
      if (Status s = src.get_u64(&base); !s) return s;
      if (Status s = src.get_u64_vec(&words); !s) return s;
      if (!m.memory(node).restore_chunk(base, words)) {
        return Status::fail("allocation layout mismatch on node " +
                            std::to_string(i) + " at word address " +
                            std::to_string(base));
      }
    }
  }
  return src.expect_exhausted();
}

// --- ECC --------------------------------------------------------------------

void encode_ecc(Machine& m, ByteSink& sink) {
  const int n = m.num_nodes();
  sink.put_u32(static_cast<u32>(n));
  for (int i = 0; i < n; ++i) {
    const memsys::EccState st =
        m.memory(NodeId{static_cast<u32>(i)}).ecc().capture_state();
    sink.put_u64(st.counters.upsets);
    sink.put_u64(st.counters.corrected);
    sink.put_u64(st.counters.uncorrectable);
    sink.put_u64(st.counters.cleared_by_rewrite);
    sink.put_u64(st.counters.scrub_rows);
    sink.put_u64(st.counters.scrub_cycles);
    sink.put_u64(st.codewords.size());
    for (const memsys::EccState::CodewordState& cw : st.codewords) {
      sink.put_u64(cw.key);
      sink.put_bool(cw.poisoned);
      sink.put_u64(cw.flips.size());
      for (const memsys::EccState::FlipState& f : cw.flips) {
        sink.put_u64(f.word_addr);
        sink.put_u32(static_cast<u32>(f.bit));
        sink.put_u64(f.corrupted_value);
        sink.put_bool(f.applied);
      }
    }
    sink.put_u64(st.latched.size());
    for (const memsys::MemCheckEvent& e : st.latched) {
      sink.put_u64(e.word_addr);
      sink.put_u8(static_cast<u8>(e.region));
    }
    sink.put_u64(st.scrub_cursor);
  }
}

Status restore_ecc(Machine& m, ByteSource& src) {
  u32 n = 0;
  if (Status s = src.get_u32(&n); !s) return s;
  if (static_cast<int>(n) != m.num_nodes()) {
    return Status::fail("ECC section node count mismatch");
  }
  for (u32 i = 0; i < n; ++i) {
    memsys::EccState st;
    if (Status s = src.get_u64(&st.counters.upsets); !s) return s;
    if (Status s = src.get_u64(&st.counters.corrected); !s) return s;
    if (Status s = src.get_u64(&st.counters.uncorrectable); !s) return s;
    if (Status s = src.get_u64(&st.counters.cleared_by_rewrite); !s) return s;
    if (Status s = src.get_u64(&st.counters.scrub_rows); !s) return s;
    if (Status s = src.get_u64(&st.counters.scrub_cycles); !s) return s;
    u64 cw_count = 0;
    if (Status s = src.get_u64(&cw_count); !s) return s;
    for (u64 c = 0; c < cw_count; ++c) {
      memsys::EccState::CodewordState cw;
      if (Status s = src.get_u64(&cw.key); !s) return s;
      if (Status s = src.get_bool(&cw.poisoned); !s) return s;
      u64 flip_count = 0;
      if (Status s = src.get_u64(&flip_count); !s) return s;
      for (u64 f = 0; f < flip_count; ++f) {
        memsys::EccState::FlipState fl;
        u32 bit = 0;
        if (Status s = src.get_u64(&fl.word_addr); !s) return s;
        if (Status s = src.get_u32(&bit); !s) return s;
        fl.bit = static_cast<int>(bit);
        if (Status s = src.get_u64(&fl.corrupted_value); !s) return s;
        if (Status s = src.get_bool(&fl.applied); !s) return s;
        cw.flips.push_back(fl);
      }
      st.codewords.push_back(std::move(cw));
    }
    u64 latched_count = 0;
    if (Status s = src.get_u64(&latched_count); !s) return s;
    for (u64 l = 0; l < latched_count; ++l) {
      memsys::MemCheckEvent e;
      u8 region = 0;
      if (Status s = src.get_u64(&e.word_addr); !s) return s;
      if (Status s = src.get_u8(&region); !s) return s;
      e.region = static_cast<memsys::Region>(region);
      st.latched.push_back(e);
    }
    if (Status s = src.get_u64(&st.scrub_cursor); !s) return s;
    m.memory(NodeId{i}).ecc().restore_state(st);
  }
  return src.expect_exhausted();
}

// --- SCU --------------------------------------------------------------------

void encode_scu(Machine& m, ByteSink& sink) {
  const int n = m.num_nodes();
  sink.put_u32(static_cast<u32>(n));
  for (int i = 0; i < n; ++i) {
    scu::Scu& scu = m.scu(NodeId{static_cast<u32>(i)});
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      const torus::LinkIndex link{l};
      sink.put_bool(scu.has_link(link));
      if (!scu.has_link(link)) continue;
      scu::SendSide& send = scu.send_side(link);
      sink.put_u64(send.checksum());
      sink.put_u64(send.words_accepted());
      sink.put_u64(send.resends());
      scu::RecvSide& recv = scu.recv_side(link);
      sink.put_u64(recv.checksum());
      sink.put_u64(recv.words_received());
      sink.put_u64(recv.detected_errors());
      sink.put_u64(recv.undetected_errors());
      put_rng(sink, recv.corruption_rng().state());
    }
  }
}

Status restore_scu(Machine& m, ByteSource& src) {
  u32 n = 0;
  if (Status s = src.get_u32(&n); !s) return s;
  if (static_cast<int>(n) != m.num_nodes()) {
    return Status::fail("SCU section node count mismatch");
  }
  for (u32 i = 0; i < n; ++i) {
    scu::Scu& scu = m.scu(NodeId{i});
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      const torus::LinkIndex link{l};
      bool has = false;
      if (Status s = src.get_bool(&has); !s) return s;
      if (has != scu.has_link(link)) {
        return Status::fail("link topology mismatch on node " +
                            std::to_string(i) + " link " + std::to_string(l));
      }
      if (!has) continue;
      u64 send_ck = 0, send_words = 0, resends = 0;
      if (Status s = src.get_u64(&send_ck); !s) return s;
      if (Status s = src.get_u64(&send_words); !s) return s;
      if (Status s = src.get_u64(&resends); !s) return s;
      scu.send_side(link).restore_integrity(send_ck, send_words, resends);
      u64 recv_ck = 0, recv_words = 0, detected = 0, undetected = 0;
      if (Status s = src.get_u64(&recv_ck); !s) return s;
      if (Status s = src.get_u64(&recv_words); !s) return s;
      if (Status s = src.get_u64(&detected); !s) return s;
      if (Status s = src.get_u64(&undetected); !s) return s;
      scu::RecvSide& recv = scu.recv_side(link);
      recv.restore_integrity(recv_ck, recv_words, detected, undetected);
      Rng::State rng;
      if (Status s = get_rng(src, &rng); !s) return s;
      recv.corruption_rng().set_state(rng);
    }
  }
  return src.expect_exhausted();
}

// --- HEALTH -----------------------------------------------------------------

void encode_health(host::HealthMonitor& health, ByteSink& sink) {
  const host::HealthMonitor::State st = health.capture_state();
  sink.put_u64(st.health.size());
  for (const u8 h : st.health) sink.put_u8(h);
  sink.put_u64_span(st.resend_base);
  sink.put_u64_span(st.recv_err_base);
  sink.put_u64_span(st.mem_corrected_base);
  sink.put_u64(st.sweeps);
}

Status restore_health(host::HealthMonitor& health, ByteSource& src) {
  host::HealthMonitor::State st;
  u64 n = 0;
  if (Status s = src.get_u64(&n); !s) return s;
  for (u64 i = 0; i < n; ++i) {
    u8 h = 0;
    if (Status s = src.get_u8(&h); !s) return s;
    st.health.push_back(h);
  }
  if (Status s = src.get_u64_vec(&st.resend_base); !s) return s;
  if (Status s = src.get_u64_vec(&st.recv_err_base); !s) return s;
  if (Status s = src.get_u64_vec(&st.mem_corrected_base); !s) return s;
  if (Status s = src.get_u64(&st.sweeps); !s) return s;
  if (Status s = src.expect_exhausted(); !s) return s;
  if (!health.restore_state(st)) {
    return Status::fail("health section does not match machine geometry");
  }
  return Status::good();
}

// --- AUDIT ------------------------------------------------------------------

void encode_audit(const MachineExtras& extras, ByteSink& sink) {
  sink.put_bool(extras.auditor != nullptr);
  if (extras.auditor != nullptr) {
    sink.put_u64(extras.auditor->audits());
    sink.put_u64(extras.auditor->failures());
  }
  sink.put_bool(extras.mem_auditor != nullptr);
  if (extras.mem_auditor != nullptr) {
    sink.put_u64(extras.mem_auditor->audits());
    sink.put_u64(extras.mem_auditor->failures());
    sink.put_u64(extras.mem_auditor->machine_checks());
  }
}

Status restore_audit(const MachineExtras& extras, ByteSource& src) {
  bool has = false;
  if (Status s = src.get_bool(&has); !s) return s;
  if (has) {
    u64 audits = 0, failures = 0;
    if (Status s = src.get_u64(&audits); !s) return s;
    if (Status s = src.get_u64(&failures); !s) return s;
    if (extras.auditor != nullptr) {
      extras.auditor->restore_counters(audits, failures);
      // The restored link checksums are this instant's baselines: the
      // snapshot was taken right after an audit re-baselined.
      extras.auditor->rebaseline();
    }
  }
  if (Status s = src.get_bool(&has); !s) return s;
  if (has) {
    u64 audits = 0, failures = 0, checks = 0;
    if (Status s = src.get_u64(&audits); !s) return s;
    if (Status s = src.get_u64(&failures); !s) return s;
    if (Status s = src.get_u64(&checks); !s) return s;
    if (extras.mem_auditor != nullptr) {
      extras.mem_auditor->restore_counters(audits, failures, checks);
    }
  }
  return src.expect_exhausted();
}

// --- SERVICE ----------------------------------------------------------------

void encode_service(const MachineExtras& extras, ByteSink& sink) {
  sink.put_bool(extras.injector != nullptr);
  if (extras.injector == nullptr) return;
  sink.put_u64(extras.injector->injected());
  const std::vector<fault::FaultEvent> plan = extras.injector->pending_plan();
  sink.put_u64(plan.size());
  for (const fault::FaultEvent& e : plan) {
    sink.put_u64(e.at);
    sink.put_u8(static_cast<u8>(e.kind));
    sink.put_u32(e.node.value);
    sink.put_u32(static_cast<u32>(e.link.value));
    sink.put_double(e.bit_error_rate);
    sink.put_u64(e.duration);
    sink.put_u32(static_cast<u32>(e.count));
    sink.put_u64(e.mem_addr);
    sink.put_u32(static_cast<u32>(e.mem_bit));
    sink.put_bool(e.mem_addr_is_index);
  }
}

Status restore_service(const MachineExtras& extras, ByteSource& src) {
  bool has = false;
  if (Status s = src.get_bool(&has); !s) return s;
  if (!has) return src.expect_exhausted();
  u64 injected = 0, count = 0;
  if (Status s = src.get_u64(&injected); !s) return s;
  if (Status s = src.get_u64(&count); !s) return s;
  std::vector<fault::FaultEvent> plan;
  for (u64 i = 0; i < count; ++i) {
    fault::FaultEvent e;
    u8 kind = 0;
    u32 node = 0, link = 0, evcount = 0, bit = 0;
    if (Status s = src.get_u64(&e.at); !s) return s;
    if (Status s = src.get_u8(&kind); !s) return s;
    e.kind = static_cast<fault::FaultKind>(kind);
    if (Status s = src.get_u32(&node); !s) return s;
    e.node = NodeId{node};
    if (Status s = src.get_u32(&link); !s) return s;
    e.link = torus::LinkIndex{static_cast<int>(link)};
    if (Status s = src.get_double(&e.bit_error_rate); !s) return s;
    if (Status s = src.get_u64(&e.duration); !s) return s;
    if (Status s = src.get_u32(&evcount); !s) return s;
    e.count = static_cast<int>(evcount);
    if (Status s = src.get_u64(&e.mem_addr); !s) return s;
    if (Status s = src.get_u32(&bit); !s) return s;
    e.mem_bit = static_cast<int>(bit);
    if (Status s = src.get_bool(&e.mem_addr_is_index); !s) return s;
    plan.push_back(e);
  }
  if (Status s = src.expect_exhausted(); !s) return s;
  if (extras.injector != nullptr) {
    extras.injector->restore_injected(injected);
    if (!plan.empty()) {
      extras.injector->arm(fault::FaultPlan::from_events(std::move(plan)));
    }
  } else if (!plan.empty()) {
    return Status::fail(
        "snapshot carries " + std::to_string(plan.size()) +
        " unfired fault events but no injector was supplied to re-arm them");
  }
  return Status::good();
}

}  // namespace

Status capture_machine(Machine& m, const MachineExtras& extras,
                       SnapshotFile* file) {
  if (!m.mesh().quiescent()) {
    return Status::fail(
        "capture requires a quiescent mesh (DMA transfers in flight)");
  }
  // Pending events must all be owned by re-armable services: the unfired
  // remainder of the injector's plan plus one standing burst per running
  // scrubber.  Anything else (in-flight protocol events, transient fault
  // restores) cannot be serialized and must drain first.
  std::size_t service_owned = 0;
  if (extras.injector != nullptr) service_owned += extras.injector->pending_count();
  if (m.mesh().scrubbing()) {
    service_owned += static_cast<std::size_t>(m.num_nodes());
  }
  const std::size_t pending = m.engine().pending_events();
  if (pending != service_owned) {
    return Status::fail(
        "capture requires a quiescent engine: " + std::to_string(pending) +
        " events pending, only " + std::to_string(service_owned) +
        " owned by re-armable services");
  }

  ByteSink meta, engine, memory, ecc, scu;
  encode_meta(m, meta);
  encode_engine(m, engine);
  encode_memory(m, memory);
  encode_ecc(m, ecc);
  encode_scu(m, scu);
  file->add_section(kSecMeta, std::move(meta), kMetaVersion);
  file->add_section(kSecEngine, std::move(engine), kEngineVersion);
  file->add_section(kSecMemory, std::move(memory), kMemoryVersion);
  file->add_section(kSecEcc, std::move(ecc), kEccVersion);
  file->add_section(kSecScu, std::move(scu), kScuVersion);
  if (extras.health != nullptr) {
    ByteSink health;
    encode_health(*extras.health, health);
    file->add_section(kSecHealth, std::move(health), kHealthVersion,
                      kSectionOptional);
  }
  if (extras.auditor != nullptr || extras.mem_auditor != nullptr) {
    ByteSink audit;
    encode_audit(extras, audit);
    file->add_section(kSecAudit, std::move(audit), kAuditVersion,
                      kSectionOptional);
  }
  if (extras.injector != nullptr) {
    ByteSink service;
    encode_service(extras, service);
    file->add_section(kSecService, std::move(service), kServiceVersion,
                      kSectionOptional);
  }
  return Status::good();
}

Status restore_machine(Machine& m, const MachineExtras& extras,
                       const SnapshotFile& file) {
  if (m.engine().pending_events() != 0) {
    return Status::fail(
        "restore requires a freshly replayed machine with no pending events "
        "(start services only after the restore)");
  }

  std::optional<ByteSource> src;
  bool scrubbing = false;
  memsys::ScrubConfig scfg;
  if (Status s = file.open(kSecMeta, &src); !s) return s;
  if (Status s = check_version(file.find(kSecMeta), kMetaVersion); !s) return s;
  if (Status s = restore_meta(m, *src, &scrubbing, &scfg); !s) return s;

  // Memory first (layout verification fails before anything else mutates),
  // then ECC bookkeeping over the restored contents, then the clock.
  if (Status s = file.open(kSecMemory, &src); !s) return s;
  if (Status s = check_version(file.find(kSecMemory), kMemoryVersion); !s) {
    return s;
  }
  if (Status s = restore_memory(m, *src); !s) return s;

  if (Status s = file.open(kSecEcc, &src); !s) return s;
  if (Status s = check_version(file.find(kSecEcc), kEccVersion); !s) return s;
  if (Status s = restore_ecc(m, *src); !s) return s;

  if (Status s = file.open(kSecEngine, &src); !s) return s;
  if (Status s = check_version(file.find(kSecEngine), kEngineVersion); !s) {
    return s;
  }
  if (Status s = restore_engine(m, *src); !s) return s;

  if (Status s = file.open(kSecScu, &src); !s) return s;
  if (Status s = check_version(file.find(kSecScu), kScuVersion); !s) return s;
  if (Status s = restore_scu(m, *src); !s) return s;

  if (const Section* sec = file.find(kSecHealth); sec != nullptr) {
    if (Status s = check_version(sec, kHealthVersion); !s) return s;
    if (extras.health != nullptr) {
      if (Status st = file.open(kSecHealth, &src); !st) return st;
      if (Status st = restore_health(*extras.health, *src); !st) return st;
    }
  }
  if (const Section* sec = file.find(kSecAudit); sec != nullptr) {
    if (Status s = check_version(sec, kAuditVersion); !s) return s;
    if (Status st = file.open(kSecAudit, &src); !st) return st;
    if (Status st = restore_audit(extras, *src); !st) return st;
  }

  // Services last: re-armed events are scheduled against the restored clock.
  if (const Section* sec = file.find(kSecService); sec != nullptr) {
    if (Status s = check_version(sec, kServiceVersion); !s) return s;
    if (Status st = file.open(kSecService, &src); !st) return st;
    if (Status st = restore_service(extras, *src); !st) return st;
  }
  if (scrubbing && !m.mesh().scrubbing()) {
    m.start_memory_scrubbers(scfg);
  }
  return Status::good();
}

}  // namespace qcdoc::snapshot
