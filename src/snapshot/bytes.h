// Byte-level serialization primitives for the snapshot subsystem.
//
// Every quantity crossing a process boundary goes through these helpers:
// explicit little-endian integer encodings, doubles as their IEEE-754 bit
// patterns (bit-exact restore is the whole point), length-prefixed strings
// and vectors, and a CRC-32 over the encoded bytes.  Readers never trust
// lengths in the payload -- every get_* checks the remaining byte budget and
// returns a Status with a reason instead of walking off the end, which is
// what turns a torn write into a clean "section truncated" diagnostic
// rather than undefined behaviour.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace qcdoc::snapshot {

/// Outcome of a decode/restore step.  [[nodiscard]] on the type: a dropped
/// failure (a half-restored machine) must not compile silently.
struct [[nodiscard]] Status {
  bool ok = true;
  std::string reason;

  static Status good() { return Status{}; }
  static Status fail(std::string why) { return Status{false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte span.
u32 crc32(std::span<const u8> bytes, u32 seed = 0);

/// Append-only encoder.  All integers little-endian; doubles by bit pattern.
class ByteSink {
 public:
  void put_u8(u8 v) { bytes_.push_back(v); }
  void put_u16(u16 v) { put_le(v, 2); }
  void put_u32(u32 v) { put_le(v, 4); }
  void put_u64(u64 v) { put_le(v, 8); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v), 8); }
  void put_double(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Length-prefixed (u32) byte string.
  void put_string(const std::string& s);
  /// Length-prefixed (u64) vector of words / doubles.
  void put_u64_span(std::span<const u64> v);
  void put_double_span(std::span<const double> v);
  void put_raw(std::span<const u8> v) {
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }

  const std::vector<u8>& bytes() const { return bytes_; }
  std::vector<u8> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void put_le(u64 v, int n) {
    for (int i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<u8>(v & 0xffu));
      v >>= 8;
    }
  }
  std::vector<u8> bytes_;
};

/// Bounds-checked decoder over a borrowed byte span.  Every getter reports
/// truncation through Status instead of reading past the end; `context`
/// names the section being decoded so diagnostics say *what* was torn.
class ByteSource {
 public:
  ByteSource(std::span<const u8> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  Status get_u8(u8* out);
  Status get_u16(u16* out);
  Status get_u32(u32* out);
  Status get_u64(u64* out);
  Status get_i64(i64* out);
  Status get_double(double* out);
  Status get_bool(bool* out);
  Status get_string(std::string* out);
  Status get_u64_vec(std::vector<u64>* out);
  Status get_double_vec(std::vector<double>* out);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }
  /// A fully consumed source; decoders call this last so trailing garbage
  /// (a mis-versioned writer) is caught, not ignored.
  Status expect_exhausted() const;

 private:
  Status need(std::size_t n, const char* what);
  u64 get_le(int n);

  std::span<const u8> bytes_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace qcdoc::snapshot
