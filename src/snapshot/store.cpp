#include "snapshot/store.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/log.h"

namespace qcdoc::snapshot {

namespace fs = std::filesystem;

namespace {

Status write_all(int fd, std::span<const u8> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::fail(std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::good();
}

Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::fail("open for fsync failed on " + path + ": " +
                        std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::fail("fsync failed on " + path + ": " +
                        std::strerror(errno));
  }
  return Status::good();
}

}  // namespace

Status read_file_bytes(const std::string& path, std::vector<u8>* out) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return Status::fail("cannot stat " + path + ": " + ec.message());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::fail("cannot open " + path + ": " + std::strerror(errno));
  }
  out->resize(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return Status::fail("short read on " + path);
  }
  return Status::good();
}

SnapshotStore::SnapshotStore(std::string dir, std::string stream)
    : dir_(std::move(dir)), stream_(std::move(stream)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    QCDOC_WARN << "snapshot: cannot create " << dir_ << ": " << ec.message();
  }
}

std::string SnapshotStore::path_for(u64 generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), ".g%08llu.qsnap",
                static_cast<unsigned long long>(generation));
  return dir_ + "/" + stream_ + name;
}

std::vector<GenerationInfo> SnapshotStore::list() const {
  std::vector<GenerationInfo> out;
  const std::string prefix = stream_ + ".g";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != prefix.size() + 8 + 6 || name.rfind(prefix, 0) != 0 ||
        name.substr(name.size() - 6) != ".qsnap") {
      continue;
    }
    const std::string digits = name.substr(prefix.size(), 8);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    GenerationInfo info;
    info.generation = std::strtoull(digits.c_str(), nullptr, 10);
    info.path = entry.path().string();
    std::error_code sec;
    info.bytes = fs::file_size(entry.path(), sec);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const GenerationInfo& a, const GenerationInfo& b) {
              return a.generation < b.generation;
            });
  return out;
}

u64 SnapshotStore::latest_generation() const {
  const auto gens = list();
  return gens.empty() ? 0 : gens.back().generation;
}

void SnapshotStore::prune() const {
  auto gens = list();
  while (static_cast<int>(gens.size()) > keep_generations_) {
    std::error_code ec;
    fs::remove(gens.front().path, ec);
    gens.erase(gens.begin());
  }
}

Status SnapshotStore::save(SnapshotFile* file) {
  const u64 generation = latest_generation() + 1;
  file->set_generation(generation);
  const std::vector<u8> image = file->encode();

  const std::string final_path = path_for(generation);
  const std::string tmp_path = final_path + ".tmp";

  // Phase 1: land every byte of the temp file on stable storage.
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::fail("cannot create " + tmp_path + ": " +
                        std::strerror(errno));
  }

  std::span<const u8> to_write(image);
  // Crash-test hook: die after writing a prefix of the temp file.
  if (const char* kill_at = std::getenv("QCDOC_SNAPSHOT_KILL_AT_BYTE")) {
    const std::size_t cut = std::strtoull(kill_at, nullptr, 10);
    if (cut < to_write.size()) {
      Status s = write_all(fd, to_write.subspan(0, cut));
      (void)::fsync(fd);
      ::close(fd);
      (void)s;
      ::raise(SIGKILL);
    }
  }

  if (Status s = write_all(fd, to_write); !s) {
    ::close(fd);
    return s;
  }
  if (::fsync(fd) != 0) {
    const Status s = Status::fail("fsync failed on " + tmp_path + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);

  // Phase 2: atomically make the generation visible, then make the rename
  // itself durable by fsyncing the directory.
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::fail("rename " + tmp_path + " -> " + final_path +
                        " failed: " + std::strerror(errno));
  }
  if (Status s = fsync_path(dir_); !s) return s;

  prune();
  return Status::good();
}

Status SnapshotStore::load_latest(SnapshotFile* out,
                                  std::vector<std::string>* diagnostics) const {
  const auto gens = list();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::vector<u8> bytes;
    Status s = read_file_bytes(it->path, &bytes);
    if (s) {
      s = SnapshotFile::decode(std::span<const u8>(bytes), out);
      if (s) {
        if (it != gens.rbegin() && diagnostics != nullptr) {
          diagnostics->push_back("recovered from generation " +
                                 std::to_string(it->generation));
        }
        return Status::good();
      }
    }
    const std::string diag =
        it->path + ": " + s.reason + " -- falling back to previous generation";
    QCDOC_WARN << "snapshot: " << diag;
    if (diagnostics != nullptr) diagnostics->push_back(diag);
  }
  return Status::fail("no loadable snapshot generation in " + dir_ + " for " +
                      stream_);
}

}  // namespace qcdoc::snapshot
