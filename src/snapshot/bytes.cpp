#include "snapshot/bytes.h"

#include <array>

namespace qcdoc::snapshot {

namespace {

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

u32 crc32(std::span<const u8> bytes, u32 seed) {
  static const std::array<u32, 256> kTable = make_crc_table();
  u32 c = seed ^ 0xffffffffu;
  for (const u8 b : bytes) {
    c = kTable[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void ByteSink::put_string(const std::string& s) {
  put_u32(static_cast<u32>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteSink::put_u64_span(std::span<const u64> v) {
  put_u64(v.size());
  for (const u64 w : v) put_u64(w);
}

void ByteSink::put_double_span(std::span<const double> v) {
  put_u64(v.size());
  for (const double d : v) put_double(d);
}

Status ByteSource::need(std::size_t n, const char* what) {
  if (remaining() < n) {
    return Status::fail(context_ + ": truncated at byte " +
                        std::to_string(pos_) + " (need " + std::to_string(n) +
                        " for " + what + ", have " +
                        std::to_string(remaining()) + ")");
  }
  return Status::good();
}

u64 ByteSource::get_le(int n) {
  u64 v = 0;
  for (int i = 0; i < n; ++i) {
    v |= static_cast<u64>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(n);
  return v;
}

Status ByteSource::get_u8(u8* out) {
  if (Status s = need(1, "u8"); !s) return s;
  *out = static_cast<u8>(get_le(1));
  return Status::good();
}

Status ByteSource::get_u16(u16* out) {
  if (Status s = need(2, "u16"); !s) return s;
  *out = static_cast<u16>(get_le(2));
  return Status::good();
}

Status ByteSource::get_u32(u32* out) {
  if (Status s = need(4, "u32"); !s) return s;
  *out = static_cast<u32>(get_le(4));
  return Status::good();
}

Status ByteSource::get_u64(u64* out) {
  if (Status s = need(8, "u64"); !s) return s;
  *out = get_le(8);
  return Status::good();
}

Status ByteSource::get_i64(i64* out) {
  u64 v = 0;
  if (Status s = get_u64(&v); !s) return s;
  *out = static_cast<i64>(v);
  return Status::good();
}

Status ByteSource::get_double(double* out) {
  u64 bits = 0;
  if (Status s = get_u64(&bits); !s) return s;
  std::memcpy(out, &bits, sizeof(*out));
  return Status::good();
}

Status ByteSource::get_bool(bool* out) {
  u8 v = 0;
  if (Status s = get_u8(&v); !s) return s;
  *out = v != 0;
  return Status::good();
}

Status ByteSource::get_string(std::string* out) {
  u32 len = 0;
  if (Status s = get_u32(&len); !s) return s;
  if (Status s = need(len, "string payload"); !s) return s;
  out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return Status::good();
}

Status ByteSource::get_u64_vec(std::vector<u64>* out) {
  u64 n = 0;
  if (Status s = get_u64(&n); !s) return s;
  // Length-first guard: a corrupt length would overflow n * 8.
  if (n > remaining() / 8) {
    return Status::fail(context_ + ": u64 vector length " + std::to_string(n) +
                        " exceeds remaining payload");
  }
  out->resize(n);
  for (u64 i = 0; i < n; ++i) (*out)[i] = get_le(8);
  return Status::good();
}

Status ByteSource::get_double_vec(std::vector<double>* out) {
  u64 n = 0;
  if (Status s = get_u64(&n); !s) return s;
  if (n > remaining() / 8) {
    return Status::fail(context_ + ": double vector length " +
                        std::to_string(n) + " exceeds remaining payload");
  }
  out->resize(n);
  for (u64 i = 0; i < n; ++i) {
    const u64 bits = get_le(8);
    std::memcpy(&(*out)[i], &bits, sizeof(double));
  }
  return Status::good();
}

Status ByteSource::expect_exhausted() const {
  if (remaining() != 0) {
    return Status::fail(context_ + ": " + std::to_string(remaining()) +
                        " trailing bytes after decode (version skew?)");
  }
  return Status::good();
}

}  // namespace qcdoc::snapshot
