// Whole-machine state capture and restore -- the orchestration layer of the
// snapshot subsystem.
//
// A capture walks engine + mesh + memories + fault/health components into
// the sections of one SnapshotFile; a restore verifies geometry and
// overwrites a freshly constructed machine with the captured state.  The
// restore protocol is deliberately two-sided:
//
//   1. The restoring process REPLAYS construction deterministically: build
//      the Machine from the same MachineConfig, power_on(), and perform the
//      identical allocation sequence (gauge/field/workspace allocations).
//      The bump allocator then reproduces the snapshotted memory layout
//      exactly, which restore_machine() verifies chunk by chunk.
//   2. restore_machine() OVERWRITES state: memory contents, ECC
//      bookkeeping, engine clock + per-rank order digests, link integrity
//      counters, health classification, auditor counters -- and re-arms
//      standing services (background scrubbers restart, the fault injector
//      re-arms the unfired remainder of its plan).
//
// Pending events are never serialized: pooled EventFn closures capture raw
// pointers.  Snapshots are therefore only legal at quiescent points (CG
// audit boundaries leave pending_events() == 0) up to service-owned events,
// which capture_machine() verifies and reports loudly when violated.
#pragma once

#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/health.h"
#include "machine/machine.h"
#include "snapshot/format.h"

namespace qcdoc::snapshot {

/// Optional host/fault components whose state rides the snapshot.  Null
/// members are simply not captured (and their sections not required on
/// restore).
struct MachineExtras {
  host::HealthMonitor* health = nullptr;
  fault::ChecksumAuditor* auditor = nullptr;
  fault::MemCheckAuditor* mem_auditor = nullptr;
  fault::FaultInjector* injector = nullptr;
};

/// Capture the complete machine into `file`'s sections.  Fails (capturing
/// nothing) when the mesh has DMA transfers in flight or the engine holds
/// pending events beyond those owned by registered services (the injector's
/// unfired plan, one standing burst per running scrubber).
Status capture_machine(machine::Machine& m, const MachineExtras& extras,
                       SnapshotFile* file);

/// Overwrite a freshly replayed machine (same config, same allocation
/// sequence, quiescent engine) with `file`'s state.  Verifies geometry,
/// seed and allocation layout before touching anything; on any mismatch
/// returns a diagnostic and the machine may be partially restored only
/// after the first section began applying (callers treat failure as fatal).
Status restore_machine(machine::Machine& m, const MachineExtras& extras,
                       const SnapshotFile& file);

}  // namespace qcdoc::snapshot
