// Link-level protocol of one unidirectional SCU connection (paper Sec. 2.2).
//
// The sender multiplexes four packet classes onto one serial wire, priority
// high to low: link-control (ACK/NACK/SupAck, generated on behalf of the
// *reverse* direction), partition interrupts, supervisor packets, normal
// data.  Supervisor packets "take priority over normal data transfers".
//
// Normal data uses the paper's "three in the air" protocol: up to
// `ack_window` 64-bit words may be outstanding before an acknowledgement is
// required, which amortizes the round-trip handshake and sustains full link
// bandwidth.  A detected error (parity/type-code failure) triggers an
// automatic go-back-N resend in hardware; a timeout backstops lost or
// corrupted acknowledgements.  If the receiver has not been programmed with
// a destination ("idle receive"), it holds up to three words in SCU
// registers without acknowledging, which blocks the sender -- the mechanism
// that makes QCDOC self-synchronizing at the link level.
//
// Each side keeps a running checksum of the payload words handed to it /
// delivered by it; comparing the two at the end of a run is the paper's
// final confirmation that no erroneous data was exchanged.
#pragma once

#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "hssl/hssl.h"
#include "scu/packet.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace qcdoc::scu {

struct LinkParams {
  int ack_window = 3;                  ///< "three in the air"
  Cycle resend_timeout_cycles = 4096;  ///< backstop for lost/corrupted ACKs
  int idle_hold_words = 3;             ///< SCU registers for idle receive
  /// Consecutive timeout resend rounds with zero forward progress before
  /// the send side stops retrying and raises a link-fault supervisor
  /// interrupt (a working link recovers in one or two rounds; a dead one
  /// would otherwise retry forever).
  int fault_timeout_rounds = 8;
};

class RecvSide;

/// Transmit half of a directed link, owned by the sending node's SCU.
class SendSide {
 public:
  SendSide(sim::EngineRef engine, hssl::Hssl* wire, LinkParams params,
           sim::StatSet* stats);

  /// The RecvSide on the *remote* node that this wire feeds.
  void set_remote(RecvSide* remote) { remote_ = remote; }

  /// Queue normal-transfer data words (from a send-DMA engine).
  void enqueue_data(u64 word);
  /// Queue a supervisor packet (one outstanding at a time; resent until
  /// acknowledged).
  void enqueue_supervisor(u64 word);
  /// Queue a partition-interrupt packet (unacknowledged; the flood protocol
  /// re-sends every global-clock window, so loss is tolerated).
  void enqueue_partition_irq(u8 mask);
  /// Queue a link-control packet acknowledging the reverse direction.
  void enqueue_control(PacketType type, u8 seq);

  /// Notifications from the remote receiver (via its reverse channel).
  /// ACK/NACK carry the receiver's next-expected sequence (cumulative), so
  /// a lost acknowledgement is recovered by any later one.
  void on_ack(u8 expected);
  void on_nack(u8 expected);
  void on_sup_ack(u8 seq);

  /// All data handed in so far has been sent and acknowledged.
  [[nodiscard]] bool data_drained() const {
    return data_queue_.empty() && unacked_.empty();
  }
  [[nodiscard]] bool supervisor_drained() const {
    return !sup_outstanding_ && sup_queue_.empty();
  }

  /// Called whenever data_drained() becomes true.
  void set_on_data_drained(std::function<void()> fn) {
    on_data_drained_ = std::move(fn);
  }

  /// Called once when this side declares the link faulted (the model of the
  /// SCU raising a link-fault supervisor interrupt at its CPU).
  void set_on_link_fault(std::function<void()> fn) {
    on_link_fault_ = std::move(fn);
  }
  /// The send side gave up: either the wire rejected a frame outright or
  /// `fault_timeout_rounds` consecutive timeout resends made no progress.
  [[nodiscard]] bool faulted() const { return faulted_; }

  /// Fault injection: silently discard the next `n` ACK/NACK notifications
  /// from the remote receiver, forcing the timeout/go-back machinery to
  /// recover (a burst of corrupted acknowledgement frames).
  void drop_acks(int n) { ack_drops_remaining_ += n; }

  /// Re-arm after the wire below was retrained: clears the faulted state
  /// and resumes pumping whatever survived in the queues.
  void clear_fault();

  u64 checksum() const { return checksum_; }
  u64 words_accepted() const { return words_accepted_; }
  u64 resends() const { return resends_; }

  /// Snapshot hook: restore the running payload checksum and lifetime
  /// counters so the end-of-run send/recv checksum comparison (the paper's
  /// final integrity check) spans process restarts.  Only valid on a
  /// drained link; in-flight protocol state is never serialized.
  void restore_integrity(u64 checksum, u64 words_accepted, u64 resends) {
    checksum_ = checksum;
    words_accepted_ = words_accepted;
    resends_ = resends;
  }

 private:
  void pump();
  void transmit(const Packet& p);
  void arm_timeout();
  void on_timeout();
  void declare_fault();
  std::size_t pop_acked_below(u8 expected);

  sim::EngineRef engine_;
  hssl::Hssl* wire_;
  LinkParams params_;
  sim::StatSet* stats_;
  // Per-word hot counters, resolved once (StatSet::cell) instead of paying a
  // string-keyed map lookup on every transmitted/acknowledged word.
  u64* stat_data_sent_ = nullptr;
  u64* stat_acks_ = nullptr;
  RecvSide* remote_ = nullptr;

  // Normal data stream (go-back-N with a 2-bit sequence, window 3).
  struct Pending {
    u64 word;
    u8 seq;
  };
  std::deque<u64> data_queue_;     // not yet transmitted
  std::deque<Pending> unacked_;    // transmitted, awaiting ACK (<= window)
  std::size_t send_cursor_ = 0;    // next unacked_ index to (re)transmit
  u8 next_seq_ = 0;
  u64 checksum_ = 0;
  u64 words_accepted_ = 0;
  u64 resends_ = 0;
  Cycle oldest_unacked_since_ = 0;
  bool timeout_armed_ = false;
  int consecutive_timeouts_ = 0;
  bool faulted_ = false;
  int ack_drops_remaining_ = 0;
  std::function<void()> on_link_fault_;

  // Supervisor stream (one outstanding, own 2-bit sequence).
  std::deque<u64> sup_queue_;
  bool sup_outstanding_ = false;
  bool sup_needs_send_ = false;
  u64 sup_word_ = 0;
  u8 sup_seq_ = 0;
  u8 sup_next_seq_ = 0;
  Cycle sup_sent_at_ = 0;

  // Control + partition-interrupt queues.
  std::deque<Packet> control_queue_;
  std::deque<u8> pirq_queue_;

  bool frame_in_flight_ = false;
  std::function<void()> on_data_drained_;
};

/// Receive half of a directed link, owned by the receiving node's SCU.
class RecvSide {
 public:
  RecvSide(sim::EngineRef engine, LinkParams params, sim::StatSet* stats,
           Rng corruption_stream);

  /// `reverse` is the SendSide on *this* node facing the sender; it carries
  /// our acknowledgements and receives control notifications for its own
  /// outbound traffic.
  void set_reverse(SendSide* reverse) { reverse_ = reverse; }

  /// Entry point from the wire: `sent` is the packet the sender emitted,
  /// `frame` its wire image, `flipped` the number of bits the link
  /// corrupted (applied to the image here, at the sampling point).
  void on_frame(WireFrame frame, int flipped, const Packet& sent);

  /// Consumer interface (the receive-DMA engine).  `sink(word)` is called
  /// for every accepted data word in order; when no sink is installed the
  /// link is in idle receive.
  void set_data_sink(std::function<void(u64)> sink);
  void clear_data_sink();
  [[nodiscard]] bool in_idle_receive() const { return !data_sink_; }

  /// Supervisor packets raise an interrupt at the receiving CPU.
  void set_supervisor_handler(std::function<void(u64)> fn) {
    supervisor_handler_ = std::move(fn);
  }
  /// Partition-interrupt packets go to the flood controller.
  void set_pirq_handler(std::function<void(u8)> fn) {
    pirq_handler_ = std::move(fn);
  }

  /// Fault injection: bit-flip the next `words` accepted data words as if a
  /// multi-bit wire error had slipped past the parity/type checks.  The
  /// corrupted value lands in memory and in the receive checksum, so only
  /// the end-to-end checksum comparison can expose it -- the deterministic
  /// stand-in for the rare undetected-corruption events of Sec. 2.2.
  void force_corrupt(int words) { forced_corrupt_remaining_ += words; }

  u64 checksum() const { return checksum_; }
  u64 words_received() const { return words_received_; }
  int held_words() const { return static_cast<int>(held_.size()); }
  u64 detected_errors() const { return detected_errors_; }
  u64 undetected_errors() const { return undetected_errors_; }

  /// Snapshot hooks (see SendSide::restore_integrity).
  void restore_integrity(u64 checksum, u64 words_received, u64 detected,
                         u64 undetected) {
    checksum_ = checksum;
    words_received_ = words_received;
    detected_errors_ = detected;
    undetected_errors_ = undetected;
  }
  /// The per-link corruption stream, exposed so its RNG state can be
  /// captured/restored with the rest of the machine.
  Rng& corruption_rng() { return corrupt_rng_; }

 private:
  void accept_data(u64 word, u8 seq);

  sim::EngineRef engine_;
  LinkParams params_;
  sim::StatSet* stats_;
  u64* stat_data_received_ = nullptr;  ///< hot cell, see SendSide
  Rng corrupt_rng_;

  SendSide* reverse_ = nullptr;

  u8 expected_seq_ = 0;
  u8 sup_expected_seq_ = 0;
  u64 checksum_ = 0;
  u64 words_received_ = 0;
  u64 detected_errors_ = 0;
  u64 undetected_errors_ = 0;
  int forced_corrupt_remaining_ = 0;

  struct Held {
    u64 word;
    u8 seq;
  };
  std::deque<Held> held_;  // idle-receive hold registers
  std::function<void(u64)> data_sink_;
  std::function<void(u64)> supervisor_handler_;
  std::function<void(u8)> pirq_handler_;
};

}  // namespace qcdoc::scu
