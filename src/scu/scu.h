// The per-node Serial Communications Unit (paper Section 2.2).
//
// One SCU manages 24 independent unidirectional connections: a send side and
// a receive side for each of the 12 nearest neighbours in the 6-D mesh.  It
// owns the DMA engines, the stored-descriptor registers ("for repetitive
// transfers over the same link, the SCUs can store DMA instructions
// internally, so that only a single write is needed to start up to 24
// communications"), the supervisor-packet registers, and the per-link
// checksums.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "memsys/memsys.h"
#include "scu/dma.h"
#include "scu/link.h"
#include "torus/coords.h"

namespace qcdoc::scu {

struct ScuConfig {
  LinkParams link;
  DmaTiming dma;
  /// Machine-wide in-flight transfer counter (owned by the network).
  ActiveCounter* active_transfers = nullptr;
};

class Scu {
 public:
  Scu(sim::EngineRef engine, memsys::NodeMemory* memory, ScuConfig cfg,
      Rng rng, sim::StatSet* stats);

  /// Attach the outgoing serial wire for link `l`; creates the send side and
  /// its DMA engine.  Called once per link by the network builder.
  void attach_outgoing_wire(torus::LinkIndex l, hssl::Hssl* wire);

  /// Wire our outgoing link `l` to `neighbor`'s facing receive side, and
  /// route that side's acknowledgements back over the neighbour's facing
  /// send side.  Both SCUs must already have their wires attached.
  void connect_to(torus::LinkIndex l, Scu& neighbor);

  SendSide& send_side(torus::LinkIndex l);
  RecvSide& recv_side(torus::LinkIndex l);
  SendDma& send_dma(torus::LinkIndex l);
  RecvDma& recv_dma(torus::LinkIndex l);
  [[nodiscard]] bool has_link(torus::LinkIndex l) const {
    return send_[static_cast<std::size_t>(l.value)] != nullptr;
  }

  // --- Stored DMA descriptors -------------------------------------------
  void store_send_descriptor(torus::LinkIndex l, const DmaDescriptor& d);
  void store_recv_descriptor(torus::LinkIndex l, const DmaDescriptor& d);
  /// Start stored transfers: bit i of each mask corresponds to link i.
  /// This is the single-write start of up to 24 communications.
  void start_stored(u32 send_mask, u32 recv_mask);

  // --- Supervisor packets -------------------------------------------------
  /// Send a 64-bit supervisor word to the neighbour on `l`; its arrival
  /// raises an interrupt at the remote CPU.
  void send_supervisor(torus::LinkIndex l, u64 word);
  /// Handler invoked (with the arrival link and word) when a supervisor
  /// packet lands here.
  void set_supervisor_handler(std::function<void(torus::LinkIndex, u64)> fn);

  // --- Link-fault escalation ----------------------------------------------
  /// Handler invoked when a send side gives up on its link (the model of
  /// the link-fault supervisor interrupt raised at this node's CPU).
  void set_link_fault_handler(std::function<void(torus::LinkIndex)> fn);
  /// Bit i set: our outgoing link i has been declared faulted.
  u32 faulted_links() const { return faulted_links_; }
  /// Clear the faulted flag for link `l` after a successful wire retrain,
  /// re-arming the send side's escalation machinery.
  void clear_link_fault(torus::LinkIndex l);

  // --- Checksums (end-of-run data-integrity confirmation) -----------------
  u64 send_checksum(torus::LinkIndex l);
  u64 recv_checksum(torus::LinkIndex l);

  /// True when no transfer is in progress on any link.
  [[nodiscard]] bool quiescent() const;

  memsys::NodeMemory& memory() { return *memory_; }
  sim::StatSet& stats() { return *stats_; }
  sim::Engine& engine() { return *engine_.get(); }
  const ScuConfig& config() const { return cfg_; }

 private:
  sim::EngineRef engine_;
  memsys::NodeMemory* memory_;
  ScuConfig cfg_;
  Rng rng_;
  sim::StatSet* stats_;

  std::array<std::unique_ptr<SendSide>, torus::kLinksPerNode> send_;
  std::array<std::unique_ptr<RecvSide>, torus::kLinksPerNode> recv_;
  std::array<std::unique_ptr<SendDma>, torus::kLinksPerNode> send_dma_;
  std::array<std::unique_ptr<RecvDma>, torus::kLinksPerNode> recv_dma_;
  std::array<std::optional<DmaDescriptor>, torus::kLinksPerNode> stored_send_;
  std::array<std::optional<DmaDescriptor>, torus::kLinksPerNode> stored_recv_;
  std::function<void(torus::LinkIndex, u64)> supervisor_handler_;
  std::function<void(torus::LinkIndex)> link_fault_handler_;
  u32 faulted_links_ = 0;
};

}  // namespace qcdoc::scu
