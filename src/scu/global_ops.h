// SCU global operations (paper Section 2.2, "Global operations").
//
// In global mode the SCU forwards incoming link data to any combination of
// the other links (and to memory) after buffering only 8 bits -- cut-through
// rather than store-and-forward -- which "markedly reduces the latency" per
// node passed through.  The global functionality is doubled: two disjoint
// link sets can run concurrently, so a ring pass can proceed in both
// directions at once, halving the hop count of a dimension-wise global sum
// from Nd-1 to Nd/2.
//
// The model works at word granularity with two constraints per hop: a link
// serializes one 72-bit frame at a time, and a relay may start forwarding a
// word only `passthrough_bits` after the word's head arrives (or after the
// full frame, in store-and-forward mode, for the ablation bench).
// Functional values travel with the words; sums are accumulated in canonical
// ring order so results are bit-identical across nodes and runs.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace qcdoc::scu {

struct GlobalOpTiming {
  int frame_bits = 72;        ///< 64-bit word + 8-bit header
  int passthrough_bits = 8;   ///< bits buffered before forwarding
  Cycle wire_delay = 2;       ///< per-hop time of flight
  Cycle inject_cycles = 20;   ///< CPU write of the send register
  Cycle store_cycles = 10;    ///< landing a word in memory / SCU register
  bool cut_through = true;    ///< false = store-and-forward (ablation)
};

struct RingReduceResult {
  double sum = 0.0;                  ///< identical on every node
  Cycle completion_cycles = 0;       ///< when the slowest node has the sum
  std::vector<Cycle> node_done;      ///< per-node completion
  u64 max_hops = 0;                  ///< farthest distance any word travelled
  u64 words_per_link = 0;            ///< serialization load per link
};

/// All-reduce (sum) around one ring of `values.size()` nodes: every node
/// contributes one word and ends with the full sum.  `doubled` uses both
/// ring directions concurrently (the two disjoint SCU link sets).
RingReduceResult ring_allreduce(const GlobalOpTiming& t,
                                std::span<const double> values, bool doubled);

struct BroadcastResult {
  Cycle completion_cycles = 0;       ///< last node receives the word
  std::vector<Cycle> node_done;      ///< arrival time per ring position
};

/// Broadcast one word from ring position 0 around a ring of `n` nodes
/// (both directions when `doubled`).  This is where cut-through pays:
/// per-hop latency is `passthrough_bits` instead of `frame_bits`.
BroadcastResult ring_broadcast(const GlobalOpTiming& t, int n, bool doubled);

}  // namespace qcdoc::scu
