#include "scu/link.h"

#include <cassert>

namespace qcdoc::scu {

// ---------------------------------------------------------------------------
// SendSide
// ---------------------------------------------------------------------------

SendSide::SendSide(sim::EngineRef engine, hssl::Hssl* wire, LinkParams params,
                   sim::StatSet* stats)
    : engine_(engine), wire_(wire), params_(params), stats_(stats) {
  if (stats_) {
    stat_data_sent_ = stats_->cell("scu.data_sent");
    stat_acks_ = stats_->cell("scu.acks");
  }
  wire_->set_ready_callback([this] {
    frame_in_flight_ = false;
    pump();
  });
}

void SendSide::enqueue_data(u64 word) {
  data_queue_.push_back(word);
  checksum_ += word;
  ++words_accepted_;
  pump();
}

void SendSide::enqueue_supervisor(u64 word) {
  sup_queue_.push_back(word);
  pump();
}

void SendSide::enqueue_partition_irq(u8 mask) {
  pirq_queue_.push_back(mask);
  pump();
}

void SendSide::enqueue_control(PacketType type, u8 seq) {
  assert(type == PacketType::kAck || type == PacketType::kNack ||
         type == PacketType::kSupAck);
  control_queue_.push_back(Packet{type, seq, static_cast<u8>(seq & 0x3)});
  pump();
}

void SendSide::pump() {
  if (frame_in_flight_) return;
  if (faulted_) {
    // A faulted link stops originating traffic; control packets for the
    // reverse direction still flow in case only our outbound data path (or
    // the remote's ack path) is broken.
    if (!control_queue_.empty()) {
      Packet p = control_queue_.front();
      control_queue_.pop_front();
      transmit(p);
    }
    return;
  }

  // Per-frame priority decision, high to low: link control, partition
  // interrupts, supervisor, normal data (paper: supervisor packets take
  // priority over normal data transfers; control keeps the reverse
  // direction's window moving and so outranks everything).
  if (!control_queue_.empty()) {
    Packet p = control_queue_.front();
    control_queue_.pop_front();
    transmit(p);
    return;
  }
  if (!pirq_queue_.empty()) {
    const u8 mask = pirq_queue_.front();
    pirq_queue_.pop_front();
    transmit(Packet{PacketType::kPartitionIrq, mask, 0});
    if (stats_) stats_->add("scu.pirq_sent");
    return;
  }
  if (sup_outstanding_ && sup_needs_send_) {
    sup_needs_send_ = false;
    sup_sent_at_ = engine_.now();
    transmit(Packet{PacketType::kSupervisor, sup_word_, sup_seq_});
    if (stats_) stats_->add("scu.sup_sent");
    // Backstop resend for a lost/corrupted supervisor frame or SupAck.
    engine_.schedule(params_.resend_timeout_cycles,
                      [this, sent_at = sup_sent_at_] {
                        if (sup_outstanding_ && sup_sent_at_ == sent_at) {
                          sup_needs_send_ = true;
                          if (stats_) stats_->add("scu.sup_resends");
                          pump();
                        }
                      });
    return;
  }
  if (!sup_outstanding_ && !sup_queue_.empty()) {
    sup_word_ = sup_queue_.front();
    sup_queue_.pop_front();
    sup_seq_ = sup_next_seq_;
    sup_next_seq_ = static_cast<u8>((sup_next_seq_ + 1) & 0x3);
    sup_outstanding_ = true;
    sup_needs_send_ = true;
    pump();
    return;
  }
  if (send_cursor_ < unacked_.size()) {
    // (Re)transmission of an already-windowed word.
    const Pending& p = unacked_[send_cursor_++];
    transmit(Packet{PacketType::kData, p.word, p.seq});
    if (stat_data_sent_) ++*stat_data_sent_;
    return;
  }
  if (!data_queue_.empty() &&
      unacked_.size() < static_cast<std::size_t>(params_.ack_window)) {
    const u64 word = data_queue_.front();
    data_queue_.pop_front();
    const u8 seq = next_seq_;
    next_seq_ = static_cast<u8>((next_seq_ + 1) & 0x3);
    if (unacked_.empty()) oldest_unacked_since_ = engine_.now();
    unacked_.push_back(Pending{word, seq});
    send_cursor_ = unacked_.size();
    arm_timeout();
    transmit(Packet{PacketType::kData, word, seq});
    if (stat_data_sent_) ++*stat_data_sent_;
    return;
  }
}

void SendSide::transmit(const Packet& p) {
  frame_in_flight_ = true;
  WireFrame frame = encode(p);
  const u64 id = wire_->transmit(
      frame.bits, [this, frame, p](u64 /*frame_id*/, int flipped) {
        if (remote_) remote_->on_frame(frame, flipped, p);
      });
  if (id == hssl::Hssl::kRejected) {
    // The wire is dead: there will be no serializer-free callback.  Escalate
    // immediately instead of queueing into the void.
    frame_in_flight_ = false;
    declare_fault();
  }
}

void SendSide::arm_timeout() {
  if (timeout_armed_) return;
  timeout_armed_ = true;
  engine_.schedule(params_.resend_timeout_cycles, [this] { on_timeout(); });
}

void SendSide::on_timeout() {
  timeout_armed_ = false;
  if (faulted_ || unacked_.empty()) return;
  const Cycle age = engine_.now() - oldest_unacked_since_;
  if (age >= params_.resend_timeout_cycles) {
    // Lost/corrupted acknowledgement: go back and resend the window.  Count
    // consecutive no-progress rounds; a healthy link is repaired within one
    // or two, so a long streak means the link (or its ack path) is dead.
    if (++consecutive_timeouts_ >= params_.fault_timeout_rounds) {
      declare_fault();
      return;
    }
    send_cursor_ = 0;
    resends_ += unacked_.size();
    if (stats_) stats_->add("scu.timeout_resends", unacked_.size());
    oldest_unacked_since_ = engine_.now();
    pump();
  }
  arm_timeout();
}

void SendSide::declare_fault() {
  if (faulted_) return;
  faulted_ = true;
  if (stats_) stats_->add("scu.link_faults");
  if (on_link_fault_) on_link_fault_();
}

void SendSide::clear_fault() {
  if (!faulted_) return;
  faulted_ = false;
  consecutive_timeouts_ = 0;
  frame_in_flight_ = false;  // whatever was on the dead wire is gone
  // Anything still windowed must be resent from the start of the window.
  send_cursor_ = 0;
  if (!unacked_.empty()) {
    oldest_unacked_since_ = engine_.now();
    arm_timeout();
  }
  pump();
}

std::size_t SendSide::pop_acked_below(u8 expected) {
  // Cumulative acknowledgement: `expected` is the receiver's next expected
  // sequence number, so every window entry with seq != expected, up to the
  // first match, has been delivered.  Window (3) < sequence space (4) makes
  // the distance unambiguous.
  if (unacked_.empty()) return 0;
  const std::size_t d =
      static_cast<std::size_t>((expected - unacked_.front().seq) & 0x3);
  if (d > unacked_.size()) return 0;  // stale control packet
  for (std::size_t i = 0; i < d; ++i) unacked_.pop_front();
  send_cursor_ = send_cursor_ > d ? send_cursor_ - d : 0;
  if (d > 0) {
    oldest_unacked_since_ = engine_.now();
    consecutive_timeouts_ = 0;  // forward progress: the link is alive
    if (stat_acks_) *stat_acks_ += d;
    if (data_drained() && on_data_drained_) on_data_drained_();
  }
  return d;
}

void SendSide::on_ack(u8 expected) {
  if (ack_drops_remaining_ > 0) {
    --ack_drops_remaining_;
    if (stats_) stats_->add("scu.acks_dropped");
    return;
  }
  pop_acked_below(expected);
  pump();
}

void SendSide::on_nack(u8 expected) {
  if (ack_drops_remaining_ > 0) {
    --ack_drops_remaining_;
    if (stats_) stats_->add("scu.acks_dropped");
    return;
  }
  pop_acked_below(expected);
  if (!unacked_.empty() && unacked_.front().seq == (expected & 0x3)) {
    send_cursor_ = 0;  // go back: resend the whole window in order
    resends_ += unacked_.size();
    if (stats_) stats_->add("scu.nack_resends", unacked_.size());
  }
  pump();
}

void SendSide::on_sup_ack(u8 seq) {
  if (!sup_outstanding_ || seq != sup_seq_) return;
  sup_outstanding_ = false;
  pump();
}

// ---------------------------------------------------------------------------
// RecvSide
// ---------------------------------------------------------------------------

RecvSide::RecvSide(sim::EngineRef engine, LinkParams params, sim::StatSet* stats,
                   Rng corruption_stream)
    : engine_(engine),
      params_(params),
      stats_(stats),
      corrupt_rng_(corruption_stream) {
  if (stats_) stat_data_received_ = stats_->cell("scu.data_received");
}

void RecvSide::on_frame(WireFrame frame, int flipped, const Packet& sent) {
  if (flipped > 0) frame.corrupt(flipped, corrupt_rng_);
  const auto pkt = decode(frame);
  if (!pkt) {
    ++detected_errors_;
    if (stats_) stats_->add("scu.detected_errors");
    // A corrupted long frame was (most likely) a data word: request the
    // automatic hardware resend.  Short frames are control/interrupt
    // traffic, recovered by timeouts / window re-floods instead.
    if (frame.bits == frame_bits(PacketType::kData) && reverse_) {
      reverse_->enqueue_control(PacketType::kNack, expected_seq_);
    }
    return;
  }
  if (flipped > 0 &&
      (pkt->type != sent.type || pkt->payload != sent.payload ||
       pkt->seq != sent.seq)) {
    // Corruption slipped past the parity/type checks.  Only the end-to-end
    // link checksums can expose this, as on the hardware.
    ++undetected_errors_;
    if (stats_) stats_->add("scu.undetected_errors");
  }

  switch (pkt->type) {
    case PacketType::kData:
      if (pkt->seq != expected_seq_) {
        // Stale duplicate from a go-back or timeout resend.  Re-send the
        // cumulative acknowledgement so a lost ACK cannot stall the link --
        // unless we are in idle receive, where withholding acknowledgement
        // is exactly how the hardware blocks the sender.
        if (stats_) stats_->add("scu.stale_data");
        if (data_sink_ && reverse_) {
          reverse_->enqueue_control(PacketType::kAck, expected_seq_);
        }
        return;
      }
      accept_data(pkt->payload, pkt->seq);
      return;
    case PacketType::kSupervisor:
      if (pkt->seq == sup_expected_seq_) {
        sup_expected_seq_ = static_cast<u8>((sup_expected_seq_ + 1) & 0x3);
        if (stats_) stats_->add("scu.sup_received");
        if (supervisor_handler_) supervisor_handler_(pkt->payload);
      }
      // Always (re-)acknowledge: a duplicate means our SupAck was lost.
      if (reverse_) reverse_->enqueue_control(PacketType::kSupAck, pkt->seq);
      return;
    case PacketType::kPartitionIrq:
      if (stats_) stats_->add("scu.pirq_received");
      if (pirq_handler_) pirq_handler_(static_cast<u8>(pkt->payload & 0xff));
      return;
    case PacketType::kAck:
      if (reverse_) reverse_->on_ack(static_cast<u8>(pkt->payload & 0x3));
      return;
    case PacketType::kNack:
      if (reverse_) reverse_->on_nack(static_cast<u8>(pkt->payload & 0x3));
      return;
    case PacketType::kSupAck:
      if (reverse_) reverse_->on_sup_ack(static_cast<u8>(pkt->payload & 0x3));
      return;
  }
}

void RecvSide::accept_data(u64 word, u8 seq) {
  (void)seq;
  if (forced_corrupt_remaining_ > 0) {
    // Injected undetected corruption: flip the sign bit and a mantissa bit
    // of the landed word (keeping a double payload finite), exactly as a
    // multi-bit error that defeats parity would.  The checksum absorbs the
    // corrupted value, so the end-to-end comparison diverges.
    --forced_corrupt_remaining_;
    word ^= (1ull << 63) | (1ull << 40);
    ++undetected_errors_;
    if (stats_) {
      stats_->add("scu.undetected_errors");
      stats_->add("scu.forced_corruptions");
    }
  }
  if (data_sink_) {
    expected_seq_ = static_cast<u8>((expected_seq_ + 1) & 0x3);
    checksum_ += word;
    ++words_received_;
    if (stat_data_received_) ++*stat_data_received_;
    // Cumulative acknowledgement: "everything before expected_seq_".
    if (reverse_) reverse_->enqueue_control(PacketType::kAck, expected_seq_);
    data_sink_(word);
    return;
  }
  // Idle receive: hold without acknowledging, blocking the sender once its
  // window fills.  Capacity equals the ack window, so overflow cannot occur
  // for in-sequence traffic.
  if (static_cast<int>(held_.size()) < params_.idle_hold_words) {
    expected_seq_ = static_cast<u8>((expected_seq_ + 1) & 0x3);
    held_.push_back(Held{word, seq});
    if (stats_) stats_->add("scu.idle_held");
  }
  // else: drop; the sender's timeout will retry until we have space.
}

void RecvSide::set_data_sink(std::function<void(u64)> sink) {
  data_sink_ = std::move(sink);
  while (!held_.empty() && data_sink_) {
    const Held h = held_.front();
    held_.pop_front();
    checksum_ += h.word;
    ++words_received_;
    if (stat_data_received_) ++*stat_data_received_;
    // expected_seq_ already advanced when the word was held; acknowledge
    // cumulatively up to one past this word's sequence.
    if (reverse_) {
      reverse_->enqueue_control(PacketType::kAck,
                                static_cast<u8>((h.seq + 1) & 0x3));
    }
    data_sink_(h.word);
  }
}

void RecvSide::clear_data_sink() { data_sink_ = nullptr; }

}  // namespace qcdoc::scu
