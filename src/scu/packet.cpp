#include "scu/packet.h"

#include <bit>
#include <cassert>

namespace qcdoc::scu {
namespace {

constexpr u8 kTypeCodes[] = {
    static_cast<u8>(PacketType::kData),         static_cast<u8>(PacketType::kSupervisor),
    static_cast<u8>(PacketType::kPartitionIrq), static_cast<u8>(PacketType::kAck),
    static_cast<u8>(PacketType::kNack),         static_cast<u8>(PacketType::kSupAck),
};

bool valid_type_code(u8 code) {
  for (u8 t : kTypeCodes)
    if (t == code) return true;
  return false;
}

u8 parity64(u64 v) { return static_cast<u8>(std::popcount(v) & 1); }

}  // namespace

bool has_word_payload(PacketType t) {
  return t == PacketType::kData || t == PacketType::kSupervisor;
}

int frame_bits(PacketType t) { return has_word_payload(t) ? 72 : 16; }

int min_frame_bits() { return frame_bits(PacketType::kAck); }

void WireFrame::corrupt(int n, Rng& rng) {
  assert(n <= bits);
  // Choose n distinct positions by rejection; frames are tiny.  A data
  // frame is 72 bits, so the mask needs two words: shifting one u64 by
  // pos >= 64 is undefined and aliased positions 64..71 onto 0..7.
  u64 chosen[2] = {0, 0};
  int done = 0;
  while (done < n) {
    const int pos = static_cast<int>(rng.next_below(static_cast<u64>(bits)));
    const u64 bit = 1ull << (pos % 64);
    if (chosen[pos / 64] & bit) continue;
    chosen[pos / 64] |= bit;
    bytes[static_cast<std::size_t>(pos / 8)] ^= static_cast<u8>(1u << (pos % 8));
    ++done;
  }
}

WireFrame encode(const Packet& p) {
  WireFrame f;
  f.bits = frame_bits(p.type);

  u64 payload = p.payload;
  int payload_bytes;
  u8 parity_lo, parity_hi;
  if (has_word_payload(p.type)) {
    payload_bytes = 8;
    parity_lo = parity64(payload & 0xffffffffull);
    parity_hi = parity64(payload >> 32);
  } else {
    payload = payload & 0xff;
    payload_bytes = 1;
    parity_lo = parity64(payload & 0x0f);
    parity_hi = parity64(payload & 0xf0);
  }

  const u8 type_code = static_cast<u8>(p.type);
  f.bytes[0] = static_cast<u8>((type_code << 4) | (parity_hi << 3) |
                               (parity_lo << 2) | (p.seq & 0x3));
  for (int b = 0; b < payload_bytes; ++b) {
    f.bytes[static_cast<std::size_t>(1 + b)] =
        static_cast<u8>((payload >> (8 * b)) & 0xff);
  }
  return f;
}

std::optional<Packet> decode(const WireFrame& f) {
  const u8 header = f.bytes[0];
  const u8 type_code = header >> 4;
  if (!valid_type_code(type_code)) return std::nullopt;
  const auto type = static_cast<PacketType>(type_code);
  if (frame_bits(type) != f.bits) return std::nullopt;

  const u8 parity_hi = (header >> 3) & 1;
  const u8 parity_lo = (header >> 2) & 1;
  const u8 seq = header & 0x3;

  u64 payload = 0;
  if (has_word_payload(type)) {
    for (int b = 0; b < 8; ++b) {
      payload |= static_cast<u64>(f.bytes[static_cast<std::size_t>(1 + b)])
                 << (8 * b);
    }
    if (parity64(payload & 0xffffffffull) != parity_lo) return std::nullopt;
    if (parity64(payload >> 32) != parity_hi) return std::nullopt;
  } else {
    payload = f.bytes[1];
    if (parity64(payload & 0x0f) != parity_lo) return std::nullopt;
    if (parity64(payload & 0xf0) != parity_hi) return std::nullopt;
  }
  return Packet{type, payload, seq};
}

}  // namespace qcdoc::scu
