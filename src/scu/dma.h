// SCU DMA engines (paper Section 2.2, item 1).
//
// "The SCU's have DMA engines allowing block strided access to local memory.
// ... Data is not copied to a different memory location before it is sent,
// rather the SCUs are told the address of the starting word of a transfer
// and the SCU DMA engines handle the data from there."  This zero-copy path
// is where QCDOC's 600 ns memory-to-memory latency comes from: the send DMA
// fetches directly from EDRAM/DDR (setup ~150 cycles), the word serializes
// in 72 bit-times, and the receive DMA lands it in remote memory
// (~66 cycles), with no software in the loop.
#pragma once

#include <functional>

#include "common/types.h"
#include "memsys/memsys.h"
#include "scu/link.h"
#include "sim/engine.h"

namespace qcdoc::scu {

/// Block-strided transfer: `num_blocks` blocks of `block_words` contiguous
/// 64-bit words, block starts `stride_words` apart.
struct DmaDescriptor {
  u64 base_word = 0;
  u32 block_words = 1;
  u32 num_blocks = 1;
  i64 stride_words = 0;

  u64 total_words() const {
    return static_cast<u64>(block_words) * num_blocks;
  }
  u64 word_addr(u64 i) const {
    const u64 block = i / block_words;
    const u64 within = i % block_words;
    return static_cast<u64>(static_cast<i64>(base_word) +
                            static_cast<i64>(block) * stride_words) +
           within;
  }
  /// Number of distinct contiguous streams this pattern touches at once.
  int streams() const { return num_blocks > 1 ? 2 : 1; }
};

struct DmaTiming {
  Cycle send_setup_cycles = 150;  ///< descriptor fetch + first-word injection
  Cycle recv_landing_cycles = 66; ///< receive-side store path to memory
};

/// Shared count of in-flight transfers, used by the machine to detect
/// quiescence in O(1) instead of scanning every link after every event.
using ActiveCounter = sim::ActiveCounter;

/// Send engine for one link: fetches words from local memory and feeds the
/// link's transmit side.
class SendDma {
 public:
  SendDma(sim::EngineRef engine, memsys::NodeMemory* memory, SendSide* channel,
          DmaTiming timing, ActiveCounter* active_counter = nullptr);

  /// Begin a transfer.  Completion (all words acknowledged by the remote
  /// SCU) is reported through `on_complete`.
  void start(const DmaDescriptor& desc, std::function<void()> on_complete = {});

  [[nodiscard]] bool active() const { return active_; }
  u64 transfers_started() const { return transfers_; }

 private:
  sim::EngineRef engine_;
  memsys::NodeMemory* memory_;
  SendSide* channel_;
  DmaTiming timing_;
  bool active_ = false;
  u64 transfers_ = 0;
  ActiveCounter* active_counter_ = nullptr;
  std::function<void()> on_complete_;
};

/// Receive engine for one link: lands arriving words into local memory.
class RecvDma {
 public:
  RecvDma(sim::EngineRef engine, memsys::NodeMemory* memory, RecvSide* channel,
          DmaTiming timing, ActiveCounter* active_counter = nullptr);

  /// Program the destination.  Until this is called the link sits in idle
  /// receive; calling it drains any held words immediately.
  void start(const DmaDescriptor& desc, std::function<void()> on_complete = {});

  [[nodiscard]] bool active() const { return active_; }
  u64 words_landed() const { return landed_; }
  /// Simulated time the first word of the current/last transfer reached
  /// memory (for latency measurements).
  Cycle first_word_landed_at() const { return first_landed_at_; }
  Cycle last_word_landed_at() const { return last_landed_at_; }

 private:
  void on_word(u64 word);

  sim::EngineRef engine_;
  memsys::NodeMemory* memory_;
  RecvSide* channel_;
  DmaTiming timing_;

  DmaDescriptor desc_;
  bool active_ = false;
  u64 next_index_ = 0;
  u64 landed_ = 0;
  Cycle first_landed_at_ = 0;
  Cycle last_landed_at_ = 0;
  ActiveCounter* active_counter_ = nullptr;
  std::function<void()> on_complete_;
};

}  // namespace qcdoc::scu
