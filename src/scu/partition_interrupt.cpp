#include "scu/partition_interrupt.h"

#include <cassert>

#include "sim/affinity_guard.h"

namespace qcdoc::scu {

PirqDomain::PirqDomain(sim::EngineRef engine, Cycle window_cycles)
    : engine_(engine), window_cycles_(window_cycles) {
  assert(window_cycles_ > 0);
}

void PirqDomain::add_node(NodeId node, Scu* scu,
                          std::vector<torus::LinkIndex> flood_links) {
  NodeState state;
  state.scu = scu;
  state.flood_links = std::move(flood_links);
  // Every receive side of the flooded links feeds the domain controller.
  for (const auto l : state.flood_links) {
    scu->recv_side(torus::facing_link(l))
        .set_pirq_handler([this, node](u8 mask) { on_pirq_packet(node, mask); });
  }
  nodes_.emplace(node.value, std::move(state));
}

void PirqDomain::raise(NodeId node, u8 mask) {
  auto it = nodes_.find(node.value);
  assert(it != nodes_.end());
  it->second.pending |= mask;
  ensure_clock();
}

void PirqDomain::on_pirq_packet(NodeId node, u8 mask) {
  auto it = nodes_.find(node.value);
  if (it == nodes_.end()) return;  // packet strayed outside the partition
  NodeState& st = it->second;
  const u8 fresh = static_cast<u8>(mask & ~st.seen);
  st.seen |= mask;
  // Forward only interrupts "which had not been previously sent".
  const u8 to_send = static_cast<u8>(fresh & ~st.sent);
  if (to_send) flood_from(node, to_send);
}

void PirqDomain::flood_from(NodeId node, u8 bits) {
  NodeState& st = nodes_.at(node.value);
  st.sent |= bits;
  for (const auto l : st.flood_links) {
    st.scu->send_side(l).enqueue_partition_irq(bits);
  }
}

void PirqDomain::ensure_clock() {
  if (clock_running_) return;
  clock_running_ = true;
  // Align to the next global-clock window boundary.
  const Cycle phase = engine_.now() % window_cycles_;
  const Cycle wait = phase == 0 ? 0 : window_cycles_ - phase;
  engine_.schedule(wait, [this] { window_boundary(); });
}

bool PirqDomain::any_activity() const {
  for (const auto& [id, st] : nodes_) {
    if (st.pending || st.seen) return true;
  }
  return false;
}

void PirqDomain::window_boundary() {
  // The global clock samples and refloods across the whole partition: this
  // host-affinity event legitimately pushes supervisor packets through every
  // node's SCU and wires, so the whole machine is its declared touched set.
  QCDOC_AFFSAN_TOUCH_ALL();
  ++windows_run_;
  // Sample and deliver interrupts observed during the closing window, then
  // open the next window by flooding freshly raised lines.
  for (auto& [id, st] : nodes_) {
    if (st.seen && handler_) handler_(NodeId{id}, st.seen);
    st.seen = 0;
    st.sent = 0;
  }
  bool flooded = false;
  for (auto& [id, st] : nodes_) {
    if (st.pending) {
      const u8 bits = st.pending;
      st.pending = 0;
      st.seen |= bits;
      flood_from(NodeId{id}, bits);
      flooded = true;
    }
  }
  if (flooded || any_activity()) {
    engine_.schedule(window_cycles_, [this] { window_boundary(); });
  } else {
    clock_running_ = false;
  }
}

}  // namespace qcdoc::scu
