// Partition interrupts (paper Section 2.2, item 3).
//
// QCDOC partitions need a way to interrupt *every* node in the partition.
// A node raises one of 8 interrupt lines; its SCU floods an 8-bit packet to
// its neighbours, and each SCU forwards interrupts it has not previously
// sent.  Forwarding happens within a transmit window derived from the slow
// (~40 MHz) global clock, whose period is chosen so that an interrupt raised
// at the start of a window has provably reached every node before the
// window-end sampling point.  Packets are unacknowledged: a corrupted packet
// is simply re-flooded in the next window because the raising node keeps its
// lines asserted until sampled.
//
// The flood runs over the real SendSide/RecvSide packet channels, so it
// shares wires (and priorities) with data traffic.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "scu/scu.h"
#include "sim/engine.h"
#include "torus/coords.h"

namespace qcdoc::scu {

/// One interrupt domain: the set of nodes in a partition, the links to flood
/// over, and the shared window clock.
class PirqDomain {
 public:
  /// `window_cycles` is the transmit-window length in CPU cycles (a multiple
  /// of the global-clock period; must exceed the partition's flood time).
  /// The window clock is a machine-global construct, so the domain schedules
  /// with host affinity: a bare Engine* converts to a host-affinity ref.
  PirqDomain(sim::EngineRef engine, Cycle window_cycles);

  /// Add a node; `flood_links` are the links its SCU forwards interrupt
  /// packets over (the links internal to the partition).
  void add_node(NodeId node, Scu* scu, std::vector<torus::LinkIndex> flood_links);

  /// Raise interrupt lines `mask` at `node`.  The lines stay asserted until
  /// delivered at the next window-end sampling point.
  void raise(NodeId node, u8 mask);

  /// Handler invoked per node at the sampling point with the OR of all
  /// interrupts seen in the window.
  void set_interrupt_handler(std::function<void(NodeId, u8)> fn) {
    handler_ = std::move(fn);
  }

  Cycle window_cycles() const { return window_cycles_; }
  u64 windows_run() const { return windows_run_; }

 private:
  struct NodeState {
    Scu* scu = nullptr;
    std::vector<torus::LinkIndex> flood_links;
    u8 pending = 0;  ///< raised locally, not yet flooded
    u8 seen = 0;     ///< all interrupt bits observed this window
    u8 sent = 0;     ///< bits already forwarded this window
  };

  void on_pirq_packet(NodeId node, u8 mask);
  void flood_from(NodeId node, u8 bits);
  void ensure_clock();
  void window_boundary();
  [[nodiscard]] bool any_activity() const;

  sim::EngineRef engine_;
  Cycle window_cycles_;
  std::map<u32, NodeState> nodes_;
  std::function<void(NodeId, u8)> handler_;
  bool clock_running_ = false;
  u64 windows_run_ = 0;
};

}  // namespace qcdoc::scu
