#include "scu/dma.h"

#include <cassert>

namespace qcdoc::scu {

SendDma::SendDma(sim::EngineRef engine, memsys::NodeMemory* memory,
                 SendSide* channel, DmaTiming timing,
                 ActiveCounter* active_counter)
    : engine_(engine),
      memory_(memory),
      channel_(channel),
      timing_(timing),
      active_counter_(active_counter) {}

void SendDma::start(const DmaDescriptor& desc,
                    std::function<void()> on_complete) {
  assert(!active_ && "send DMA already running on this link");
  active_ = true;
  if (active_counter_) active_counter_->increment();
  ++transfers_;
  on_complete_ = std::move(on_complete);
  channel_->set_on_data_drained([this] {
    if (!active_) return;
    active_ = false;
    if (active_counter_) active_counter_->decrement(engine_.now());
    if (on_complete_) on_complete_();
  });
  // After the setup path (descriptor fetch, first memory access, SCU
  // injection) the DMA streams words faster than the 72-cycle serial link
  // can drain them, so the channel queue is filled in one go.
  engine_.schedule(timing_.send_setup_cycles, [this, desc] {
    for (u64 i = 0; i < desc.total_words(); ++i) {
      channel_->enqueue_data(memory_->read_word(desc.word_addr(i)));
    }
  });
}

RecvDma::RecvDma(sim::EngineRef engine, memsys::NodeMemory* memory,
                 RecvSide* channel, DmaTiming timing,
                 ActiveCounter* active_counter)
    : engine_(engine),
      memory_(memory),
      channel_(channel),
      timing_(timing),
      active_counter_(active_counter) {}

void RecvDma::start(const DmaDescriptor& desc,
                    std::function<void()> on_complete) {
  assert(!active_ && "receive DMA already running on this link");
  desc_ = desc;
  active_ = true;
  if (active_counter_) active_counter_->increment();
  next_index_ = 0;
  first_landed_at_ = 0;
  on_complete_ = std::move(on_complete);
  // Installing the sink ends idle receive and drains any held words.
  channel_->set_data_sink([this](u64 word) { on_word(word); });
}

void RecvDma::on_word(u64 word) {
  assert(active_ && next_index_ < desc_.total_words());
  const u64 addr = desc_.word_addr(next_index_);
  const u64 index = next_index_++;
  const bool last = next_index_ == desc_.total_words();
  if (last) {
    // Stop consuming before further words arrive for a later transfer; the
    // engine stays active until the final landing completes.
    channel_->clear_data_sink();
  }
  engine_.schedule(timing_.recv_landing_cycles, [this, addr, word, index, last] {
    memory_->write_word(addr, word);
    ++landed_;
    last_landed_at_ = engine_.now();
    if (index == 0) first_landed_at_ = engine_.now();
    if (last) {
      active_ = false;
      if (active_counter_) active_counter_->decrement(engine_.now());
      if (on_complete_) on_complete_();
    }
  });
}

}  // namespace qcdoc::scu
