#include "scu/global_ops.h"

#include <algorithm>
#include <cassert>

namespace qcdoc::scu {
namespace {

/// Per-hop forwarding delay from a word's head arriving to the relay being
/// able to start retransmitting it.
Cycle forward_bits(const GlobalOpTiming& t) {
  return static_cast<Cycle>(t.cut_through ? t.passthrough_bits : t.frame_bits);
}

/// One ring direction carrying every origin's word up to `max_dist` hops.
/// Fills `arrival[i]` with the completion time of the last word reaching
/// node i from this direction, and returns the per-link word count.
/// `step(node)` gives the next node in this direction.
template <typename StepFn>
u64 sweep_direction(const GlobalOpTiming& t, int n, int max_dist,
                    StepFn step, std::vector<Cycle>& arrival) {
  if (max_dist <= 0) return 0;
  // link_free[j]: edge out of node j.  head[j]: when the current word's head
  // is available for forwarding at node j.
  std::vector<Cycle> link_free(static_cast<std::size_t>(n), t.inject_cycles);
  std::vector<Cycle> head(static_cast<std::size_t>(n), 0);

  // Hop 1: every node transmits its own word simultaneously.
  for (int o = 0; o < n; ++o) {
    const Cycle start = link_free[static_cast<std::size_t>(o)];
    link_free[static_cast<std::size_t>(o)] =
        start + static_cast<Cycle>(t.frame_bits);
    const int next = step(o);
    head[static_cast<std::size_t>(next)] = start + forward_bits(t) + t.wire_delay;
    arrival[static_cast<std::size_t>(next)] =
        std::max(arrival[static_cast<std::size_t>(next)],
                 start + static_cast<Cycle>(t.frame_bits) + t.wire_delay);
  }
  // Hops 2..max_dist: forward in arrival order; per-link FIFO is preserved
  // because we advance all words one hop per outer iteration.
  std::vector<Cycle> next_head(static_cast<std::size_t>(n), 0);
  for (int h = 2; h <= max_dist; ++h) {
    for (int relay = 0; relay < n; ++relay) {
      const auto r = static_cast<std::size_t>(relay);
      const Cycle start = std::max(link_free[r], head[r]);
      link_free[r] = start + static_cast<Cycle>(t.frame_bits);
      const int next = step(relay);
      const auto x = static_cast<std::size_t>(next);
      next_head[x] = start + forward_bits(t) + t.wire_delay;
      arrival[x] = std::max(
          arrival[x], start + static_cast<Cycle>(t.frame_bits) + t.wire_delay);
    }
    std::swap(head, next_head);
  }
  return static_cast<u64>(max_dist);
}

}  // namespace

RingReduceResult ring_allreduce(const GlobalOpTiming& t,
                                std::span<const double> values, bool doubled) {
  const int n = static_cast<int>(values.size());
  RingReduceResult r;
  // Canonical summation order: bit-identical on every node and every run.
  for (double v : values) r.sum += v;
  r.node_done.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
  if (n <= 1) return r;

  std::vector<Cycle> arrival(static_cast<std::size_t>(n), 0);
  if (!doubled) {
    r.words_per_link = sweep_direction(
        t, n, n - 1, [n](int j) { return (j + 1) % n; }, arrival);
    r.max_hops = static_cast<u64>(n - 1);
  } else {
    // Two disjoint link sets: the plus direction carries each word
    // ceil((n-1)/2) hops, the minus direction floor((n-1)/2).
    const int d_plus = (n - 1 + 1) / 2;
    const int d_minus = (n - 1) / 2;
    sweep_direction(t, n, d_plus, [n](int j) { return (j + 1) % n; }, arrival);
    sweep_direction(t, n, d_minus, [n](int j) { return (j - 1 + n) % n; },
                    arrival);
    r.words_per_link = static_cast<u64>(d_plus);
    r.max_hops = static_cast<u64>(d_plus);
  }
  for (int i = 0; i < n; ++i) {
    r.node_done[static_cast<std::size_t>(i)] =
        arrival[static_cast<std::size_t>(i)] + t.store_cycles;
    r.completion_cycles =
        std::max(r.completion_cycles, r.node_done[static_cast<std::size_t>(i)]);
  }
  return r;
}

BroadcastResult ring_broadcast(const GlobalOpTiming& t, int n, bool doubled) {
  BroadcastResult r;
  r.node_done.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
  if (n <= 1) return r;
  for (int i = 1; i < n; ++i) {
    const int dist_plus = i;
    const int dist_minus = n - i;
    const int hops = doubled ? std::min(dist_plus, dist_minus) : dist_plus;
    // A single word has no link contention: the head streams through each
    // relay after `forward_bits`, and the tail lands frame_bits after the
    // head left the origin.
    const Cycle arrival =
        t.inject_cycles + static_cast<Cycle>(t.frame_bits) + t.wire_delay +
        static_cast<Cycle>(hops - 1) * (forward_bits(t) + t.wire_delay);
    r.node_done[static_cast<std::size_t>(i)] = arrival + t.store_cycles;
    r.completion_cycles =
        std::max(r.completion_cycles, r.node_done[static_cast<std::size_t>(i)]);
  }
  return r;
}

}  // namespace qcdoc::scu
