// SCU packet format (paper Section 2.2).
//
// Every transfer on a serial link is framed as an 8-bit header plus payload:
//   - normal data and supervisor packets carry a 64-bit word (72-bit frame);
//   - partition-interrupt packets carry 8 bits (16-bit frame);
//   - link-level ACK/NACK control packets carry an 8-bit sequence (16 bits).
//
// Header layout, transmitted MSB first:
//   [ type:4 | parity_hi:1 | parity_lo:1 | seq:2 ]
// Type codes are chosen with pairwise Hamming distance >= 2 (all weight-2
// 4-bit words), so "a single bit error will not cause a packet to be
// misinterpreted": any single flip lands on an invalid code or trips a
// parity bit.  The two parity bits cover the two halves of the payload.
//
// Frames are encoded to real wire bytes; the link model flips real bits, and
// decode recomputes the checks -- so detected errors trigger the automatic
// resend path and *undetected* multi-bit errors are caught only by the
// end-to-end link checksums, exactly as on the hardware.
#pragma once

#include <array>
#include <optional>

#include "common/rng.h"
#include "common/types.h"

namespace qcdoc::scu {

enum class PacketType : u8 {
  kData = 0b0011,
  kSupervisor = 0b0101,
  kPartitionIrq = 0b0110,
  kAck = 0b1001,
  kNack = 0b1010,
  kSupAck = 0b1100,
};

/// Is this one of the long (64-bit payload) packet types?
[[nodiscard]] bool has_word_payload(PacketType t);

/// Number of frame bits for a packet of this type (header included).
int frame_bits(PacketType t);

/// The shortest possible frame (a 16-bit control packet).  Together with the
/// HSSL wire delay this bounds how soon any transmission can reach the
/// neighbouring node -- the lookahead of the parallel simulation engine.
int min_frame_bits();

/// The bits actually serialized onto the link.
struct WireFrame {
  std::array<u8, 9> bytes{};  // header + up to 8 payload bytes
  int bits = 0;

  /// Flip `n` distinct random bit positions (error injection).
  void corrupt(int n, Rng& rng);
};

/// Logical content of a frame.
struct Packet {
  PacketType type = PacketType::kData;
  u64 payload = 0;  // 64-bit word, or 8-bit value in the low byte
  u8 seq = 0;       // 2-bit link-level sequence number
};

WireFrame encode(const Packet& p);

/// Decode a wire frame; nullopt when the header or parity checks fail
/// (the receiver then requests an automatic resend).
std::optional<Packet> decode(const WireFrame& f);

}  // namespace qcdoc::scu
