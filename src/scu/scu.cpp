#include "scu/scu.h"

#include <cassert>

#include "sim/affinity_guard.h"

namespace qcdoc::scu {

using torus::LinkIndex;

Scu::Scu(sim::EngineRef engine, memsys::NodeMemory* memory, ScuConfig cfg,
         Rng rng, sim::StatSet* stats)
    : engine_(engine), memory_(memory), cfg_(cfg), rng_(rng), stats_(stats) {
  // Receive sides exist from power-on (they own the idle-receive registers);
  // send sides are created when the outgoing wires are attached.
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    recv_[static_cast<std::size_t>(l)] =
        std::make_unique<RecvSide>(engine_, cfg_.link, stats_, rng_.split());
    recv_dma_[static_cast<std::size_t>(l)] = std::make_unique<RecvDma>(
        engine_, memory_, recv_[static_cast<std::size_t>(l)].get(), cfg_.dma,
        cfg_.active_transfers);
    const LinkIndex link{l};
    recv_[static_cast<std::size_t>(l)]->set_supervisor_handler(
        [this, link](u64 word) {
          if (supervisor_handler_) supervisor_handler_(link, word);
        });
  }
}

void Scu::attach_outgoing_wire(LinkIndex l, hssl::Hssl* wire) {
  auto& slot = send_[static_cast<std::size_t>(l.value)];
  assert(!slot && "wire already attached");
  slot = std::make_unique<SendSide>(engine_, wire, cfg_.link, stats_);
  slot->set_on_link_fault([this, l] {
    faulted_links_ |= 1u << l.value;
    if (stats_) stats_->add("scu.node_link_faults");
    if (link_fault_handler_) link_fault_handler_(l);
  });
  send_dma_[static_cast<std::size_t>(l.value)] =
      std::make_unique<SendDma>(engine_, memory_, slot.get(), cfg_.dma,
                                cfg_.active_transfers);
}

void Scu::connect_to(LinkIndex l, Scu& neighbor) {
  // Our send side on link l feeds the neighbour's receive side on the facing
  // link; the neighbour acknowledges over its own facing send side.
  const LinkIndex facing = torus::facing_link(l);
  SendSide& ours = send_side(l);
  RecvSide& theirs = neighbor.recv_side(facing);
  ours.set_remote(&theirs);
  theirs.set_reverse(&neighbor.send_side(facing));
}

SendSide& Scu::send_side(LinkIndex l) {
  auto& p = send_[static_cast<std::size_t>(l.value)];
  assert(p && "no wire attached on this link");
  return *p;
}

RecvSide& Scu::recv_side(LinkIndex l) {
  return *recv_[static_cast<std::size_t>(l.value)];
}

SendDma& Scu::send_dma(LinkIndex l) {
  auto& p = send_dma_[static_cast<std::size_t>(l.value)];
  assert(p && "no wire attached on this link");
  return *p;
}

RecvDma& Scu::recv_dma(LinkIndex l) {
  return *recv_dma_[static_cast<std::size_t>(l.value)];
}

void Scu::store_send_descriptor(LinkIndex l, const DmaDescriptor& d) {
  QCDOC_AFFSAN_CHECK(this);
  stored_send_[static_cast<std::size_t>(l.value)] = d;
}

void Scu::store_recv_descriptor(LinkIndex l, const DmaDescriptor& d) {
  QCDOC_AFFSAN_CHECK(this);
  stored_recv_[static_cast<std::size_t>(l.value)] = d;
}

void Scu::start_stored(u32 send_mask, u32 recv_mask) {
  QCDOC_AFFSAN_CHECK(this);
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    if (recv_mask & (1u << l)) {
      assert(stored_recv_[idx] && "no stored receive descriptor");
      recv_dma_[idx]->start(*stored_recv_[idx]);
    }
    if (send_mask & (1u << l)) {
      assert(stored_send_[idx] && "no stored send descriptor");
      send_dma_[idx]->start(*stored_send_[idx]);
    }
  }
}

void Scu::send_supervisor(LinkIndex l, u64 word) {
  QCDOC_AFFSAN_CHECK(this);
  send_side(l).enqueue_supervisor(word);
}

void Scu::set_supervisor_handler(
    std::function<void(LinkIndex, u64)> fn) {
  supervisor_handler_ = std::move(fn);
}

void Scu::set_link_fault_handler(std::function<void(LinkIndex)> fn) {
  link_fault_handler_ = std::move(fn);
}

void Scu::clear_link_fault(LinkIndex l) {
  QCDOC_AFFSAN_CHECK(this);
  faulted_links_ &= ~(1u << l.value);
  send_side(l).clear_fault();
}

u64 Scu::send_checksum(LinkIndex l) { return send_side(l).checksum(); }

u64 Scu::recv_checksum(LinkIndex l) { return recv_side(l).checksum(); }

bool Scu::quiescent() const {
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    if (send_dma_[idx] && send_dma_[idx]->active()) return false;
    if (recv_dma_[idx] && recv_dma_[idx]->active()) return false;
    if (send_[idx] && !send_[idx]->data_drained()) return false;
  }
  return true;
}

}  // namespace qcdoc::scu
