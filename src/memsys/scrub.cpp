#include "memsys/scrub.h"

namespace qcdoc::memsys {

MemScrubber::MemScrubber(sim::EngineRef engine, NodeMemory* mem,
                         ScrubConfig cfg, sim::StatSet* stats)
    : engine_(engine), mem_(mem), cfg_(cfg), stats_(stats) {}

void MemScrubber::start() {
  if (running_) return;
  running_ = true;
  engine_.schedule(cfg_.period_cycles, [this] { burst(); });
}

void MemScrubber::burst() {
  if (!running_) return;
  ++bursts_;
  const u64 before = mem_->ecc().counters().corrected;
  const u64 rows =
      mem_->ecc().scrub_step(cfg_.rows_per_period, cfg_.cycles_per_row);
  if (stats_) {
    stats_->add("mem.scrub.bursts");
    stats_->add("mem.scrub.rows", rows);
    stats_->add("mem.scrub.cycles", rows * cfg_.cycles_per_row);
    const u64 corrected = mem_->ecc().counters().corrected - before;
    if (corrected > 0) stats_->add("mem.ecc.scrub_corrected", corrected);
  }
  engine_.schedule(cfg_.period_cycles, [this] { burst(); });
}

}  // namespace qcdoc::memsys
