#include "memsys/edram.h"

#include <algorithm>

namespace qcdoc::memsys {

double edram_stream_cycles(const MemTiming& t, double bytes, int streams) {
  double cycles = bytes / t.edram_bytes_per_cycle;
  if (streams > t.prefetch_streams) {
    // Streams beyond the prefetch capacity interleave row activations: the
    // controller pays one page-miss latency per row fetched for the excess
    // fraction of the traffic.
    const double excess_fraction =
        static_cast<double>(streams - t.prefetch_streams) /
        static_cast<double>(std::max(streams, 1));
    const double rows = bytes * excess_fraction / t.edram_row_bytes;
    cycles += rows * t.edram_page_miss_cycles;
  }
  return cycles;
}

}  // namespace qcdoc::memsys
