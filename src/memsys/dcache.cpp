#include "memsys/dcache.h"

namespace qcdoc::memsys {

double cache_hit_fraction(const DCacheConfig& c, std::size_t set_bytes,
                          int reuse) {
  if (reuse <= 1) return 0.0;
  if (set_bytes <= c.bytes) {
    return static_cast<double>(reuse - 1) / static_cast<double>(reuse);
  }
  return 0.0;
}

}  // namespace qcdoc::memsys
