#include "memsys/memsys.h"

#include <algorithm>

#include "common/log.h"
#include "memsys/ddr.h"
#include "memsys/edram.h"
#include "sim/affinity_guard.h"

namespace qcdoc::memsys {

NodeMemory::NodeMemory(MemConfig cfg)
    : cfg_(cfg), ddr_next_(cfg.edram_words) {
  ecc_.attach(this, cfg_.ecc);
}

Block NodeMemory::alloc(u64 words, const std::string& label) {
  if (edram_next_ + words <= cfg_.edram_words) {
    return alloc_in(Region::kEdram, words, label);
  }
  QCDOC_DEBUG << "allocation '" << label << "' (" << words * 8
              << " B) spills to DDR";
  return alloc_in(Region::kDdr, words, label);
}

Block NodeMemory::alloc_in(Region region, u64 words, const std::string& label) {
  (void)label;
  Block b;
  if (region == Region::kEdram) {
    assert(edram_next_ + words <= cfg_.edram_words && "EDRAM exhausted");
    b = Block{edram_next_, words, Region::kEdram};
    edram_next_ += words;
  } else {
    assert(ddr_next_ + words <= cfg_.edram_words + cfg_.ddr_words &&
           "DDR exhausted");
    b = Block{ddr_next_, words, Region::kDdr};
    ddr_next_ += words;
  }
  chunks_.emplace(b.word_addr, std::vector<u64>(words, 0));
  allocated_words_ += words;
  return b;
}

u64 NodeMemory::nth_allocated_word(u64 i) const {
  assert(i < allocated_words_ && "allocated-word index out of range");
  for (const auto& [start, storage] : chunks_) {
    if (i < storage.size()) return start + i;
    i -= storage.size();
  }
  assert(false && "unreachable: allocated_words_ out of sync");
  return 0;
}

std::vector<u64>* NodeMemory::chunk_of(u64 word_addr, u64* offset) {
  if (word_addr - cache_base_ < cache_words_) {
    *offset = word_addr - cache_base_;
    return cache_chunk_;
  }
  auto it = chunks_.upper_bound(word_addr);
  if (it == chunks_.begin()) return nullptr;
  --it;
  if (word_addr >= it->first + it->second.size()) return nullptr;
  *offset = word_addr - it->first;
  cache_base_ = it->first;
  cache_words_ = it->second.size();
  cache_chunk_ = &it->second;
  return &it->second;
}

const std::vector<u64>* NodeMemory::chunk_of(u64 word_addr, u64* offset) const {
  return const_cast<NodeMemory*>(this)->chunk_of(word_addr, offset);
}

u64 NodeMemory::read_word(u64 word_addr) const {
  u64 offset = 0;
  const auto* chunk = chunk_of(word_addr, &offset);
  assert(chunk && "read from unallocated memory");
  return (*chunk)[offset];
}

void NodeMemory::write_word(u64 word_addr, u64 value) {
  QCDOC_AFFSAN_CHECK(this);
  u64 offset = 0;
  auto* chunk = chunk_of(word_addr, &offset);
  assert(chunk && "write to unallocated memory");
  (*chunk)[offset] = value;
}

std::span<double> NodeMemory::doubles(const Block& b) {
  u64 offset = 0;
  auto* chunk = chunk_of(b.word_addr, &offset);
  assert(chunk && offset + b.words <= chunk->size());
  return {reinterpret_cast<double*>(chunk->data() + offset), b.words};
}

std::span<const double> NodeMemory::doubles(const Block& b) const {
  u64 offset = 0;
  const auto* chunk = chunk_of(b.word_addr, &offset);
  assert(chunk && offset + b.words <= chunk->size());
  return {reinterpret_cast<const double*>(chunk->data() + offset), b.words};
}

std::span<u64> NodeMemory::words(const Block& b) {
  u64 offset = 0;
  auto* chunk = chunk_of(b.word_addr, &offset);
  assert(chunk && offset + b.words <= chunk->size());
  return {chunk->data() + offset, b.words};
}

std::vector<NodeMemory::ChunkView> NodeMemory::chunks() const {
  std::vector<ChunkView> out;
  out.reserve(chunks_.size());
  for (const auto& [start, storage] : chunks_) {
    out.push_back({start, std::span<const u64>(storage)});
  }
  return out;
}

bool NodeMemory::restore_chunk(u64 base, std::span<const u64> words) {
  auto it = chunks_.find(base);
  if (it == chunks_.end() || it->second.size() != words.size()) return false;
  std::copy(words.begin(), words.end(), it->second.begin());
  return true;
}

double MemTiming::stream_cycles(Region region, double bytes,
                                int streams) const {
  return region == Region::kEdram ? edram_stream_cycles(*this, bytes, streams)
                                  : ddr_stream_cycles(*this, bytes, streams);
}

}  // namespace qcdoc::memsys
