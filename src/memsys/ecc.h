// SECDED ECC model for the node memory hierarchy.
//
// The QCDOC ASIC protects both the 4 MB on-chip EDRAM and the external DDR
// with error-correcting codes: the paper's weeks-long CG evolutions on ~12k
// nodes only reproduce bit-identically because single-bit soft errors are
// corrected in hardware and double-bit errors are *detected* and escalated
// instead of silently corrupting physics.  This module models that SECDED
// (single-error-correct, double-error-detect) layer at codeword granularity:
//
//   - EDRAM: one codeword per 1024-bit internal row (16 x 64-bit words).
//   - DDR:   one codeword per 256-bit burst (4 x 64-bit words).
//
// The functional contract mirrors the hardware as seen by software:
//
//   - A single flipped bit in a codeword is CORRECTABLE.  Every consumer
//     reads through the ECC datapath, so correctable upsets never reach the
//     application -- the model leaves storage untouched and only records the
//     pending flip.  The background scrubber (scrub.h) walks rows on a cycle
//     budget, writes corrected data back, and counts the event.
//   - Two or more flipped bits in one codeword are UNCORRECTABLE.  The model
//     applies the flips to real storage (compute now sees corrupted data,
//     exactly the silent-corruption hazard), latches a machine-check event,
//     and counts it.  Recovery is software's job: the health monitor reads
//     the latch, and `cg_solve_audited` treats it as a checkpoint-rollback
//     trigger.  A program write to a poisoned word regenerates the check
//     bits, which the scrubber observes as the error having been cleared.
//
// Everything here is deterministic: upsets arrive only through the
// engine-scheduled FaultInjector, and all bookkeeping iterates std::map in
// address order.
#pragma once

#include <map>
#include <vector>

#include "common/types.h"

namespace qcdoc::memsys {

/// Which level of the hierarchy a word address resides in.
enum class Region { kEdram, kDdr };

class NodeMemory;

/// SECDED codeword geometry, in 64-bit words.
struct EccConfig {
  u64 edram_row_words = 16;  ///< 1024-bit EDRAM internal row
  u64 ddr_burst_words = 4;   ///< 256-bit DDR burst
};

/// Lifetime counters of one node's ECC machinery.
struct EccCounters {
  u64 upsets = 0;              ///< injected bit flips
  u64 corrected = 0;           ///< single-bit errors corrected
  u64 uncorrectable = 0;       ///< codewords that exceeded SECDED
  u64 cleared_by_rewrite = 0;  ///< flips cleared by a program write
  u64 scrub_rows = 0;          ///< codeword rows the scrubber walked
  u64 scrub_cycles = 0;        ///< cycle budget charged to scrubbing

  EccCounters& operator+=(const EccCounters& o) {
    upsets += o.upsets;
    corrected += o.corrected;
    uncorrectable += o.uncorrectable;
    cleared_by_rewrite += o.cleared_by_rewrite;
    scrub_rows += o.scrub_rows;
    scrub_cycles += o.scrub_cycles;
    return *this;
  }
};

/// One latched uncorrectable error: the model of the memory controller
/// raising a machine check at its CPU.
struct MemCheckEvent {
  u64 word_addr = 0;
  Region region = Region::kEdram;
};

/// Full SECDED bookkeeping of one node as captured into a snapshot: the
/// lifetime counters, every outstanding flip, latched machine checks and
/// the scrub cursor.  Plain data -- the snapshot layer owns serialization.
struct EccState {
  struct FlipState {
    u64 word_addr = 0;
    int bit = 0;
    u64 corrupted_value = 0;
    bool applied = false;
  };
  struct CodewordState {
    u64 key = 0;
    std::vector<FlipState> flips;
    bool poisoned = false;
  };

  EccCounters counters;
  std::vector<CodewordState> codewords;
  std::vector<MemCheckEvent> latched;
  u64 scrub_cursor = 0;
};

/// Per-node SECDED state.  Owned by NodeMemory; exercised by the
/// FaultInjector (upsets), MemScrubber (background correction) and the
/// host health monitor (machine-check consumption).
class EccModel {
 public:
  /// Called once by the owning NodeMemory's constructor.
  void attach(NodeMemory* mem, EccConfig cfg);

  /// Inject one bit flip at `word_addr` (`bit` in [0, 64)).  The first flip
  /// in a codeword is correctable and leaves storage untouched; a second
  /// flip makes the codeword uncorrectable: all its flips land in storage
  /// and a machine check is latched.
  void inject_upset(u64 word_addr, int bit);

  /// Walk `rows` codeword rows from the internal cursor (wrapping over
  /// EDRAM then DDR), correcting single-bit errors and dropping flips whose
  /// word has been rewritten since.  Charges `cycles_per_row` per row to the
  /// scrub-cycle counter.  Returns rows walked.
  u64 scrub_step(u64 rows, Cycle cycles_per_row);

  /// Machine checks latched since the last call (consuming them models
  /// software acknowledging the interrupt).
  std::vector<MemCheckEvent> consume_machine_checks();
  [[nodiscard]] bool machine_check_pending() const {
    return !latched_.empty();
  }

  /// Codewords currently carrying at least one recorded flip.
  u64 dirty_codewords() const { return codewords_.size(); }
  /// Codewords currently beyond SECDED (corrupted data in storage).
  u64 poisoned_codewords() const;

  const EccCounters& counters() const { return counters_; }
  const EccConfig& config() const { return cfg_; }

  /// Snapshot hooks: the complete bookkeeping (counters, outstanding flips,
  /// latched machine checks, scrub cursor).  restore_state() replaces all
  /// of it; storage contents are restored separately by NodeMemory.
  EccState capture_state() const;
  void restore_state(const EccState& state);

 private:
  struct Flip {
    u64 word_addr = 0;
    int bit = 0;
    u64 corrupted_value = 0;  ///< stored value right after the flip landed
    bool applied = false;     ///< true once the flip is in real storage
  };
  struct Codeword {
    std::vector<Flip> flips;
    bool poisoned = false;
  };

  u64 codeword_key(u64 word_addr) const;
  u64 total_rows() const;
  Region region_of_key(u64 key) const;
  /// Re-check one codeword after a scrub visit: drop rewritten flips,
  /// correct a lone survivor.  Returns true when the entry is now clean.
  bool settle(u64 key, Codeword* cw);

  NodeMemory* mem_ = nullptr;
  EccConfig cfg_;
  EccCounters counters_;
  // codeword key -> outstanding flips (address-ordered for determinism)
  std::map<u64, Codeword> codewords_;
  std::vector<MemCheckEvent> latched_;
  u64 scrub_cursor_ = 0;  ///< row index in [0, total_rows())
};

}  // namespace qcdoc::memsys
