// 32 kB data-cache working-set model.
//
// The PPC 440 data cache is small compared to lattice working sets; the model
// answers one question for the kernel timing: what fraction of a kernel's
// nominal traffic is served from cache because the working set of the inner
// loop fits.
#pragma once

#include <cstddef>

namespace qcdoc::memsys {

struct DCacheConfig {
  std::size_t bytes = 32 * 1024;
  std::size_t line_bytes = 32;
};

/// Fraction of accesses to a data set of `set_bytes`, touched `reuse` times
/// per sweep, that hit in cache.  First touch always misses; subsequent
/// touches hit iff the set fits in cache.
double cache_hit_fraction(const DCacheConfig& c, std::size_t set_bytes,
                          int reuse);

}  // namespace qcdoc::memsys
