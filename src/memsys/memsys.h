// Per-node memory: functional storage plus the timing models of the paper's
// memory hierarchy (Section 2.1).
//
// Each QCDOC node owns 4 MB of on-chip EDRAM behind a prefetching controller
// (two concurrent streams, 1024-bit internal rows, a 128-bit connection to
// the data cache at full processor speed -> 8 GB/s at 500 MHz) and external
// DDR SDRAM behind the PLB (2.6 GB/s).  The model keeps one flat 64-bit-word
// address space per node: word addresses below the EDRAM size live on-chip,
// the rest in DDR.  Fields allocated by applications really live here; the
// SCU DMA engines move these words, so data integrity through the simulated
// network is testable.
//
// Storage is per-allocation (host memory proportional to what a node
// actually uses), which keeps thousand-node machines simulable on a laptop.
#pragma once

#include <cassert>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "memsys/ecc.h"

namespace qcdoc::memsys {

/// A contiguous allocation in node memory, in 64-bit words.
struct Block {
  u64 word_addr = 0;
  u64 words = 0;
  Region region = Region::kEdram;

  u64 bytes() const { return words * 8; }
};

struct MemConfig {
  u64 edram_words = 4ull * 1024 * 1024 / 8;
  u64 ddr_words = 128ull * 1024 * 1024 / 8;
  EccConfig ecc;  ///< SECDED codeword geometry (ecc.h)
};

/// Functional per-node memory with a bump allocator.
///
/// Allocation policy mirrors how the collaboration laid out fields: hot data
/// goes to EDRAM until it is full, then spills to DDR (paper Section 4: "for
/// still larger volumes, when we must put part of the problem in external
/// DDR DRAM, the performance figures fall").
// qcdoc-lint: owner(node) each node's memory belongs to that node; writes
// from other affinities must declare a touched set (checked by AFFSAN).
class NodeMemory {
 public:
  explicit NodeMemory(MemConfig cfg = MemConfig{});
  // The ECC model holds a back-pointer to this object.
  NodeMemory(const NodeMemory&) = delete;
  NodeMemory& operator=(const NodeMemory&) = delete;

  /// Allocate `words` 64-bit words, preferring EDRAM.
  Block alloc(u64 words, const std::string& label = "");
  /// Allocate explicitly in one region (asserts on exhaustion).
  Block alloc_in(Region region, u64 words, const std::string& label = "");

  u64 edram_words_used() const { return edram_next_; }
  u64 ddr_words_used() const { return ddr_next_ - cfg_.edram_words; }
  u64 edram_words_free() const { return cfg_.edram_words - edram_next_; }
  const MemConfig& config() const { return cfg_; }

  Region region_of(u64 word_addr) const {
    return word_addr < cfg_.edram_words ? Region::kEdram : Region::kDdr;
  }

  u64 read_word(u64 word_addr) const;
  void write_word(u64 word_addr, u64 value);

  /// The SECDED machinery protecting this node's EDRAM rows and DDR bursts.
  EccModel& ecc() { return ecc_; }
  const EccModel& ecc() const { return ecc_; }

  /// Total words across every allocation (the population a random upset can
  /// land in; flips into unallocated memory are invisible to software).
  u64 allocated_words() const { return allocated_words_; }
  /// Word address of the i-th allocated word, counting allocations in
  /// address order.  Requires i < allocated_words().
  u64 nth_allocated_word(u64 i) const;

  /// Typed views for application code (compute runs natively on this data).
  /// Spans remain valid for the lifetime of the NodeMemory: each allocation
  /// owns its storage.
  std::span<double> doubles(const Block& b);
  std::span<const double> doubles(const Block& b) const;
  std::span<u64> words(const Block& b);

  /// One allocation as seen by the snapshot subsystem: base word address
  /// plus a read-only view of its storage (valid for this object's life).
  struct ChunkView {
    u64 base = 0;
    std::span<const u64> words;
  };
  /// Every allocation in address order; with nth_allocated_word this fully
  /// describes the node's software-visible memory.
  std::vector<ChunkView> chunks() const;
  /// Overwrite the allocation starting at `base` with `words`.  Returns
  /// false when no allocation with exactly this base and size exists --
  /// i.e. the restoring process did not replay the same allocation
  /// sequence.  Deliberately bypasses ECC bookkeeping: EccModel state is
  /// restored separately by the snapshot layer.
  bool restore_chunk(u64 base, std::span<const u64> words);

 private:
  std::vector<u64>* chunk_of(u64 word_addr, u64* offset);
  const std::vector<u64>* chunk_of(u64 word_addr, u64* offset) const;

  MemConfig cfg_;
  // start word address -> storage of the allocation beginning there
  std::map<u64, std::vector<u64>> chunks_;
  // Last chunk hit by chunk_of(): DMA and scrub traffic walks allocations
  // word by word, so nearly every lookup lands in the previous chunk.  The
  // cache needs no invalidation -- chunks_ is append-only (alloc_in only
  // emplaces) and each allocation's vector never resizes.
  mutable u64 cache_base_ = ~0ull;
  mutable u64 cache_words_ = 0;
  mutable std::vector<u64>* cache_chunk_ = nullptr;
  u64 edram_next_ = 0;
  u64 ddr_next_;
  u64 allocated_words_ = 0;
  EccModel ecc_;
};

/// Cycle costs of bulk memory traffic, used by the DMA engines and the CPU
/// timing model.  All figures in CPU cycles at the node clock.
struct MemTiming {
  // EDRAM: 128-bit words to the data cache at full processor speed.
  double edram_bytes_per_cycle = 16.0;
  // Prefetching hides page misses for up to `prefetch_streams` contiguous
  // streams; each extra stream pays a page-miss penalty per row crossed.
  int prefetch_streams = 2;
  double edram_row_bytes = 128.0;  // 1024-bit internal read/write width
  double edram_page_miss_cycles = 11.0;
  // DDR SDRAM at 2.6 GB/s behind the PLB (5.2 bytes/cycle at 500 MHz).
  double ddr_bytes_per_cycle = 5.2;
  double ddr_page_bytes = 2048.0;
  double ddr_page_miss_cycles = 25.0;

  /// Cycles to stream `bytes` from a region with `streams` concurrent
  /// access streams (a(x) and b(x) in the paper's example are 2 streams).
  double stream_cycles(Region region, double bytes, int streams) const;
};

}  // namespace qcdoc::memsys
