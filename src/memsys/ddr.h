// External DDR SDRAM controller timing (paper Section 2.1): 2.6 GB/s on the
// PLB, with page-miss penalties for non-streaming access.
#pragma once

#include "memsys/memsys.h"

namespace qcdoc::memsys {

double ddr_stream_cycles(const MemTiming& t, double bytes, int streams);

}  // namespace qcdoc::memsys
