#include "memsys/ecc.h"

#include <algorithm>
#include <cassert>

#include "memsys/memsys.h"

namespace qcdoc::memsys {

void EccModel::attach(NodeMemory* mem, EccConfig cfg) {
  assert(cfg.edram_row_words > 0 && cfg.ddr_burst_words > 0);
  mem_ = mem;
  cfg_ = cfg;
}

u64 EccModel::codeword_key(u64 word_addr) const {
  const MemConfig& m = mem_->config();
  if (word_addr < m.edram_words) return word_addr / cfg_.edram_row_words;
  const u64 edram_rows =
      (m.edram_words + cfg_.edram_row_words - 1) / cfg_.edram_row_words;
  return edram_rows + (word_addr - m.edram_words) / cfg_.ddr_burst_words;
}

u64 EccModel::total_rows() const {
  const MemConfig& m = mem_->config();
  return (m.edram_words + cfg_.edram_row_words - 1) / cfg_.edram_row_words +
         (m.ddr_words + cfg_.ddr_burst_words - 1) / cfg_.ddr_burst_words;
}

Region EccModel::region_of_key(u64 key) const {
  const MemConfig& m = mem_->config();
  const u64 edram_rows =
      (m.edram_words + cfg_.edram_row_words - 1) / cfg_.edram_row_words;
  return key < edram_rows ? Region::kEdram : Region::kDdr;
}

void EccModel::inject_upset(u64 word_addr, int bit) {
  assert(mem_ != nullptr && "EccModel used before attach()");
  ++counters_.upsets;
  Codeword& cw = codewords_[codeword_key(word_addr)];
  cw.flips.push_back(Flip{word_addr, bit & 63, 0, false});
  if (cw.flips.size() < 2) {
    // A single bad bit is inside SECDED's correction capability: every read
    // goes through the ECC datapath and comes back clean, so storage stays
    // untouched.  The scrubber will write back and count the correction.
    return;
  }
  // Beyond SECDED: the corruption is real.  Land every flip of this
  // codeword in storage, then snapshot the stored values (two flips on one
  // word must agree on the final value) so a later program write is
  // recognizable as having cleared the error.
  for (Flip& f : cw.flips) {
    if (!f.applied) {
      mem_->write_word(f.word_addr,
                       mem_->read_word(f.word_addr) ^ (1ull << f.bit));
      f.applied = true;
    }
  }
  for (Flip& f : cw.flips) f.corrupted_value = mem_->read_word(f.word_addr);
  if (!cw.poisoned) {
    cw.poisoned = true;
    ++counters_.uncorrectable;
    latched_.push_back(MemCheckEvent{
        word_addr, mem_->region_of(word_addr)});
  }
}

bool EccModel::settle(u64 key, Codeword* cw) {
  (void)key;
  auto& flips = cw->flips;
  for (auto it = flips.begin(); it != flips.end();) {
    if (it->applied && mem_->read_word(it->word_addr) != it->corrupted_value) {
      // The program rewrote this word since the flip landed; the write path
      // regenerates the check bits, so the recorded error no longer exists.
      ++counters_.cleared_by_rewrite;
      it = flips.erase(it);
    } else {
      ++it;
    }
  }
  if (flips.empty()) return true;
  if (flips.size() == 1) {
    Flip& f = flips.front();
    if (f.applied) {
      // Down to one bad bit: back inside SECDED; scrub write-back repairs
      // the stored word.
      mem_->write_word(f.word_addr,
                       mem_->read_word(f.word_addr) ^ (1ull << f.bit));
    }
    ++counters_.corrected;
    return true;
  }
  return false;  // still uncorrectable; the machine check already latched
}

u64 EccModel::scrub_step(u64 rows, Cycle cycles_per_row) {
  const u64 total = total_rows();
  if (total == 0 || rows == 0) return 0;
  rows = std::min(rows, total);
  counters_.scrub_rows += rows;
  counters_.scrub_cycles += rows * cycles_per_row;
  u64 remaining = rows;
  while (remaining > 0) {
    const u64 span = std::min(remaining, total - scrub_cursor_);
    const u64 hi = scrub_cursor_ + span;
    auto it = codewords_.lower_bound(scrub_cursor_);
    while (it != codewords_.end() && it->first < hi) {
      if (settle(it->first, &it->second)) {
        it = codewords_.erase(it);
      } else {
        ++it;
      }
    }
    scrub_cursor_ = (scrub_cursor_ + span) % total;
    remaining -= span;
  }
  return rows;
}

std::vector<MemCheckEvent> EccModel::consume_machine_checks() {
  std::vector<MemCheckEvent> out;
  out.swap(latched_);
  return out;
}

u64 EccModel::poisoned_codewords() const {
  u64 n = 0;
  for (const auto& [key, cw] : codewords_) {
    if (cw.poisoned && cw.flips.size() >= 2) ++n;
  }
  return n;
}

EccState EccModel::capture_state() const {
  EccState st;
  st.counters = counters_;
  for (const auto& [key, cw] : codewords_) {
    EccState::CodewordState c;
    c.key = key;
    c.poisoned = cw.poisoned;
    for (const Flip& f : cw.flips) {
      c.flips.push_back({f.word_addr, f.bit, f.corrupted_value, f.applied});
    }
    st.codewords.push_back(std::move(c));
  }
  st.latched = latched_;
  st.scrub_cursor = scrub_cursor_;
  return st;
}

void EccModel::restore_state(const EccState& state) {
  counters_ = state.counters;
  codewords_.clear();
  for (const EccState::CodewordState& c : state.codewords) {
    Codeword cw;
    cw.poisoned = c.poisoned;
    for (const EccState::FlipState& f : c.flips) {
      cw.flips.push_back(Flip{f.word_addr, f.bit, f.corrupted_value, f.applied});
    }
    codewords_.emplace(c.key, std::move(cw));
  }
  latched_ = state.latched;
  scrub_cursor_ = state.scrub_cursor;
}

}  // namespace qcdoc::memsys
