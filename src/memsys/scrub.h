// Background memory scrubber.
//
// ECC only corrects errors it gets to *see*: a correctable single-bit flip
// in a rarely-read row silently waits for a second flip to make the
// codeword uncorrectable.  Real machines therefore dedicate a trickle of
// memory bandwidth to a hardware scrubber that walks every row on a fixed
// budget, reads it through the ECC datapath, and writes corrected data
// back.  MemScrubber models exactly that: every `period_cycles` it visits
// the next `rows_per_period` codeword rows of its node's EDRAM + DDR,
// corrects what SECDED can fix, and charges `cycles_per_row` of budget to
// the scrub-cycle counter.
//
// Scrubbing is OFF by default and started explicitly
// (`net::MeshNet::start_scrubbing`): an idle machine schedules no scrub
// events, so fault-free traces -- including the committed golden trace --
// are bit-identical with or without this module linked in.  Scrub events
// carry their node's affinity, so the parallel engine shards them exactly
// like SCU traffic and the walk order is reproducible at any thread count.
//
// The scrubber is the model citizen of the bounded-affinity host-event
// contract (DESIGN.md): every event it schedules touches exactly one
// node's memory -- its own -- so scrub bursts run inside parallel windows
// at full concurrency, never forcing a window seam the way a global
// host-side sweep (host::HealthMonitor::sweep) must.
#pragma once

#include "memsys/ecc.h"
#include "memsys/memsys.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace qcdoc::memsys {

struct ScrubConfig {
  Cycle period_cycles = 1 << 14;  ///< between scrub bursts
  u64 rows_per_period = 64;       ///< codeword rows walked per burst
  Cycle cycles_per_row = 2;       ///< budget charged per row walked
};

class MemScrubber {
 public:
  /// `engine` must carry the owning node's affinity; `stats` (the node's
  /// StatSet) may be null.
  MemScrubber(sim::EngineRef engine, NodeMemory* mem, ScrubConfig cfg,
              sim::StatSet* stats);

  /// Begin the periodic walk (idempotent).
  void start();
  /// Stop after the current burst; no further bursts are scheduled.
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }

  u64 bursts() const { return bursts_; }
  const ScrubConfig& config() const { return cfg_; }

 private:
  void burst();

  sim::EngineRef engine_;
  NodeMemory* mem_;
  ScrubConfig cfg_;
  sim::StatSet* stats_;
  bool running_ = false;
  u64 bursts_ = 0;
};

}  // namespace qcdoc::memsys
