// Prefetching EDRAM controller timing (paper Section 2.1).
#pragma once

#include "memsys/memsys.h"

namespace qcdoc::memsys {

/// Cycles for an EDRAM access pattern of `bytes` total across `streams`
/// concurrent contiguous streams.  With at most `prefetch_streams` streams
/// the two prefetch engines hide all page misses; beyond that every row
/// crossing of the surplus streams stalls.
double edram_stream_cycles(const MemTiming& t, double bytes, int streams);

}  // namespace qcdoc::memsys
