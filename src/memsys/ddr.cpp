#include "memsys/ddr.h"

#include <algorithm>

namespace qcdoc::memsys {

double ddr_stream_cycles(const MemTiming& t, double bytes, int streams) {
  double cycles = bytes / t.ddr_bytes_per_cycle;
  // DDR has no prefetch engine in front of it: concurrent streams thrash the
  // open page.  One stream streams at full bandwidth; each additional stream
  // pays a page miss per page of its share of the traffic.
  if (streams > 1) {
    const double thrash_fraction =
        static_cast<double>(streams - 1) / static_cast<double>(streams);
    const double pages = bytes * thrash_fraction / t.ddr_page_bytes;
    cycles += pages * t.ddr_page_miss_cycles * streams;
  }
  return cycles;
}

}  // namespace qcdoc::memsys
