// The qcsh: QCDOC's command-line interface (paper Section 3.1).
//
// "The command line interface to QCDOC is a modified UNIX tcsh, which we
// call the qcsh.  The qcsh runs with the UID of the application programmer,
// gathers commands to send to the qdaemon and manages the returning data
// stream."
//
// The model is a small command interpreter over the qdaemon: scripts (or
// interactive lines) allocate partitions, run registered applications,
// query node status and release resources, with every command's output
// returned as the data stream the real qcsh would print.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "host/qdaemon.h"
#include "host/scheduler.h"

namespace qcdoc::host {

/// Client-side retry with exponential backoff and deterministic jitter: the
/// qcsh half of the scheduler's backpressure contract.  delay(attempt)
/// grows as base * multiplier^attempt, capped at max_delay, scaled by a
/// jitter factor in [0.5, 1.0) drawn from the caller's Rng -- so a storm of
/// clients de-synchronizes without wall-clock entropy, and a fixed seed
/// replays the exact same retry schedule.
struct RetryPolicy {
  Cycle base_delay_cycles = 1024;
  Cycle max_delay_cycles = 1u << 20;
  double multiplier = 2.0;
  int max_attempts = 8;

  Cycle delay(int attempt, Rng& rng) const;
};

/// Submit with retry: on a retryable rejection, waits the maximum of the
/// scheduler's retry_after hint and the policy's backoff (simulated time;
/// the scheduler keeps pumping, draining its queue, while the client
/// waits), then resubmits.  Returns the final outcome -- accepted, or the
/// last rejection after `max_attempts`.
SubmitOutcome submit_with_retry(JobScheduler& sched, const JobSpec& spec,
                                const RetryPolicy& policy, Rng& rng);

class Qcsh {
 public:
  /// An application the shell can `run`: receives the communicator of the
  /// partition it was launched on plus the command's arguments.
  using Application =
      std::function<void(comms::Communicator&, const std::vector<std::string>&,
                         std::vector<std::string>& out)>;

  explicit Qcsh(Qdaemon* daemon);

  /// Make an application launchable by name.
  void register_application(const std::string& name, Application app);

  /// Attach the multi-tenant scheduler; enables the submit/jobs/job
  /// commands.  `user` is the tenant this shell submits as (the real qcsh
  /// "runs with the UID of the application programmer").
  void attach_scheduler(JobScheduler* sched, std::string user);
  /// Make a step-based job body submittable by name (shared across
  /// submissions; bodies keep their state in the JobContext checkpoint).
  void register_job(const std::string& name,
                    std::function<StepStatus(JobContext&)> body);

  /// Execute one command line; returns the output lines.  Commands:
  ///   boot
  ///   status
  ///   alloc <name> <e0>x<e1>x<e2>x<e3>x<e4>x<e5> <dims>
  ///   run <partition> <application> [args...]
  ///   release <partition>
  ///   partitions
  /// With a scheduler attached:
  ///   submit <job-name> <body> <e0>x...x<e5> <dims>   (retries on backpressure)
  ///   jobs
  ///   job <id>
  /// Unknown commands report an error line (exit_code() becomes nonzero).
  std::vector<std::string> execute(const std::string& line);

  /// Run a whole script (one command per line, '#' comments allowed);
  /// returns the concatenated data stream.
  std::vector<std::string> run_script(const std::string& script);

  int exit_code() const { return exit_code_; }

 private:
  std::vector<std::string> cmd_boot();
  std::vector<std::string> cmd_status();
  std::vector<std::string> cmd_alloc(const std::vector<std::string>& args);
  std::vector<std::string> cmd_run(const std::vector<std::string>& args);
  std::vector<std::string> cmd_release(const std::vector<std::string>& args);
  std::vector<std::string> cmd_partitions();
  std::vector<std::string> cmd_submit(const std::vector<std::string>& args);
  std::vector<std::string> cmd_jobs();
  std::vector<std::string> cmd_job(const std::vector<std::string>& args);

  Qdaemon* daemon_;
  std::map<std::string, Application> applications_;
  std::map<std::string, PartitionHandle> partitions_;
  JobScheduler* scheduler_ = nullptr;
  std::string user_;
  std::map<std::string, std::function<StepStatus(JobContext&)>> job_bodies_;
  RetryPolicy retry_policy_;
  Rng retry_rng_{0x9c5417ab12cdull};
  int exit_code_ = 0;
};

}  // namespace qcdoc::host
