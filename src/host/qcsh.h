// The qcsh: QCDOC's command-line interface (paper Section 3.1).
//
// "The command line interface to QCDOC is a modified UNIX tcsh, which we
// call the qcsh.  The qcsh runs with the UID of the application programmer,
// gathers commands to send to the qdaemon and manages the returning data
// stream."
//
// The model is a small command interpreter over the qdaemon: scripts (or
// interactive lines) allocate partitions, run registered applications,
// query node status and release resources, with every command's output
// returned as the data stream the real qcsh would print.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "host/qdaemon.h"

namespace qcdoc::host {

class Qcsh {
 public:
  /// An application the shell can `run`: receives the communicator of the
  /// partition it was launched on plus the command's arguments.
  using Application =
      std::function<void(comms::Communicator&, const std::vector<std::string>&,
                         std::vector<std::string>& out)>;

  explicit Qcsh(Qdaemon* daemon);

  /// Make an application launchable by name.
  void register_application(const std::string& name, Application app);

  /// Execute one command line; returns the output lines.  Commands:
  ///   boot
  ///   status
  ///   alloc <name> <e0>x<e1>x<e2>x<e3>x<e4>x<e5> <dims>
  ///   run <partition> <application> [args...]
  ///   release <partition>
  ///   partitions
  /// Unknown commands report an error line (exit_code() becomes nonzero).
  std::vector<std::string> execute(const std::string& line);

  /// Run a whole script (one command per line, '#' comments allowed);
  /// returns the concatenated data stream.
  std::vector<std::string> run_script(const std::string& script);

  int exit_code() const { return exit_code_; }

 private:
  std::vector<std::string> cmd_boot();
  std::vector<std::string> cmd_status();
  std::vector<std::string> cmd_alloc(const std::vector<std::string>& args);
  std::vector<std::string> cmd_run(const std::vector<std::string>& args);
  std::vector<std::string> cmd_release(const std::vector<std::string>& args);
  std::vector<std::string> cmd_partitions();

  Qdaemon* daemon_;
  std::map<std::string, Application> applications_;
  std::map<std::string, PartitionHandle> partitions_;
  int exit_code_ = 0;
};

}  // namespace qcdoc::host
