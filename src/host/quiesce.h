// Drain-to-quiescence: the host-side primitive that makes mid-run snapshots
// legal (ROADMAP item 5).
//
// snapshot::capture_machine refuses to run unless the mesh has no DMA
// transfers in flight AND every pending engine event is owned by a
// re-armable service (the fault injector's unfired plan, the memory
// scrubbers' standing bursts).  During a job those conditions only hold at
// window boundaries after the in-flight communication has retired.  This
// helper pauses event issue (the caller stops submitting work), drains the
// mesh, and steps the engine in bounded increments until the pending-event
// population is exactly the service-owned set -- or reports precisely why it
// cannot (stalled link, armed monitor that keeps re-scheduling itself,
// timeout).  Job migration runs it before every checkpoint capture.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "fault/fault.h"
#include "machine/machine.h"

namespace qcdoc::host {

struct QuiesceOptions {
  /// The fault injector whose unfired plan events are service-owned (may be
  /// null when no campaign is armed).
  const fault::FaultInjector* injector = nullptr;
  /// Engine-stepping increment while waiting for stragglers to retire.
  Cycle step_cycles = 1024;
  /// Give up after advancing this far past the starting cycle.  A bound,
  /// not a target: a quiet machine quiesces in zero steps.
  Cycle max_wait_cycles = 1u << 20;
};

struct QuiesceReport {
  bool quiescent = false;
  Cycle at = 0;      ///< engine clock when the verdict was reached
  Cycle waited = 0;  ///< cycles of engine time spent draining
  std::size_t pending_events = 0;  ///< engine events pending at the verdict
  std::size_t service_owned = 0;   ///< how many of those are re-armable
  std::string detail;              ///< failure diagnosis ("" on success)
  explicit operator bool() const { return quiescent; }
};

/// Drain the machine to a snapshot-capturable state.  Advances the engine
/// (bounded by `max_wait_cycles`); the caller must not be issuing new work.
/// On success, snapshot::capture_machine's quiescence preconditions hold
/// until the next event is scheduled.
[[nodiscard]] QuiesceReport drain_to_quiescence(
    machine::Machine& m, const QuiesceOptions& opts = QuiesceOptions{});

}  // namespace qcdoc::host
