// Hardware and software diagnostics (paper Sections 2.3 and 4).
//
// The Ethernet/JTAG controller "gives us a powerful tool for hardware and
// software debugging ... an I/O path to monitor and probe a failing node":
// the host can peek and poke any node's memory without software running on
// it.  At the end of a calculation the per-link checksums are compared --
// the final confirmation that no erroneous data was exchanged.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.h"
#include "net/ethernet.h"

namespace qcdoc::host {

struct ChecksumReport {
  bool all_match = true;
  int links_checked = 0;
  std::vector<std::string> mismatches;
};

struct LinkErrorScan {
  u64 detected_errors = 0;   ///< parity/type failures that forced resends
  u64 undetected_errors = 0; ///< corruption that slipped past parity
  u64 resends = 0;
  std::vector<NodeId> suspect_nodes;  ///< nodes with any error activity
};

class Diagnostics {
 public:
  Diagnostics(machine::Machine* m, net::EthernetTree* eth)
      : machine_(m), eth_(eth) {}

  /// Compare send/receive checksums on every directed link.
  ChecksumReport verify_checksums() const;

  /// Collect link-level error counters machine-wide and flag nodes whose
  /// SCUs saw errors.
  LinkErrorScan scan_link_errors() const;

  /// RISCWatch-style memory access over Ethernet/JTAG.  Advances the event
  /// engine by the packet round trip, like the real probe would.
  u64 jtag_peek(NodeId n, u64 word_addr);
  void jtag_poke(NodeId n, u64 word_addr, u64 value);

 private:
  void jtag_round_trip(NodeId n);

  machine::Machine* machine_;
  net::EthernetTree* eth_;
};

}  // namespace qcdoc::host
