#include "host/boot.h"

#include <cassert>

#include "common/log.h"

namespace qcdoc::host {

const char* to_string(NodeBootState s) {
  switch (s) {
    case NodeBootState::kPoweredOff: return "powered-off";
    case NodeBootState::kLoadingBootKernel: return "loading-boot-kernel";
    case NodeBootState::kHardwareTest: return "hardware-test";
    case NodeBootState::kHardwareFailed: return "hardware-failed";
    case NodeBootState::kLoadingRunKernel: return "loading-run-kernel";
    case NodeBootState::kScuInit: return "scu-init";
    case NodeBootState::kReady: return "ready";
  }
  return "?";
}

BootSequencer::BootSequencer(machine::Machine* m, net::EthernetTree* eth,
                             BootParams params)
    : machine_(m), eth_(eth), params_(params) {
  states_.assign(static_cast<std::size_t>(m->num_nodes()),
                 NodeBootState::kPoweredOff);
  packets_pending_.assign(states_.size(), 0);
}

void BootSequencer::load_boot_kernel(NodeId n) {
  states_[n.value] = NodeBootState::kLoadingBootKernel;
  packets_pending_[n.value] = params_.boot_kernel_packets;
  for (int i = 0; i < params_.boot_kernel_packets; ++i) {
    eth_->host_to_node(n, params_.packet_payload_bytes, net::EthKind::kJtag,
                       [this, n] {
                         if (--packets_pending_[n.value] > 0) return;
                         // Boot kernel now in the instruction cache: run the
                         // basic hardware tests, then fetch the run kernel.
                         states_[n.value] = NodeBootState::kHardwareTest;
                         const sim::EngineRef host(&machine_->engine());
                         host.schedule(
                             params_.hw_test_cycles, [this, n] {
                               for (const auto bad : params_.failing_nodes) {
                                 if (bad == n) {
                                   states_[n.value] =
                                       NodeBootState::kHardwareFailed;
                                   ++nodes_failed_;
                                   return;
                                 }
                               }
                               load_run_kernel(n);
                             });
                       });
  }
}

void BootSequencer::load_run_kernel(NodeId n) {
  states_[n.value] = NodeBootState::kLoadingRunKernel;
  packets_pending_[n.value] = params_.run_kernel_packets;
  for (int i = 0; i < params_.run_kernel_packets; ++i) {
    eth_->host_to_node(n, params_.packet_payload_bytes, net::EthKind::kUdp,
                       [this, n] {
                         if (--packets_pending_[n.value] > 0) return;
                         states_[n.value] = NodeBootState::kScuInit;
                         const sim::EngineRef host(&machine_->engine());
                         host.schedule(
                             params_.scu_init_cycles, [this, n] {
                               states_[n.value] = NodeBootState::kReady;
                               ++nodes_ready_;
                             });
                       });
  }
}

BootReport BootSequencer::boot() {
  BootReport report;
  const Cycle start = machine_->engine().now();

  // Power on the mesh: the HSSLs begin their training sequences while the
  // host streams boot kernels.
  machine_->mesh().power_on();
  for (int i = 0; i < machine_->num_nodes(); ++i) {
    load_boot_kernel(NodeId{static_cast<u32>(i)});
  }
  // Drain: boot packet deliveries, hardware tests, SCU init and training.
  // A dead wire never finishes training; its events simply stop, so the
  // queue empties and we fall through to report it instead of spinning.
  machine_->engine().run_while([this] {
    return nodes_ready_ + nodes_failed_ < machine_->num_nodes() ||
           !machine_->mesh().all_trained();
  });
  report.link_training_ok = machine_->mesh().all_trained();
  if (!report.link_training_ok) {
    report.untrained_links = machine_->mesh().untrained_links();
    for (const auto& ref : report.untrained_links) {
      QCDOC_WARN << "boot: wire " << ref.node.value << "/" << ref.link.value
                 << " failed to train";
      // Both ends of a dead wire are unusable for mesh traffic.
      const NodeId ends[2] = {
          ref.node, machine_->topology().neighbor(ref.node, ref.link)};
      for (const NodeId n : ends) {
        auto& st = states_[n.value];
        if (st == NodeBootState::kHardwareFailed) continue;
        if (st == NodeBootState::kReady) --nodes_ready_;
        st = NodeBootState::kHardwareFailed;
        ++nodes_failed_;
      }
    }
  }

  // Run kernels check the partition interrupts: node 0 raises a line and
  // every healthy node must see it at the next sampling point.
  int nodes_seen = 0;
  machine_->mesh().pirq().set_interrupt_handler(
      [&nodes_seen](NodeId, u8) { ++nodes_seen; });
  machine_->mesh().pirq().raise(NodeId{0}, 0x1);
  machine_->engine().run_while(
      [&] { return nodes_seen < machine_->num_nodes(); });
  machine_->mesh().pirq().set_interrupt_handler(nullptr);
  report.partition_interrupt_ok = nodes_seen == machine_->num_nodes();
  for (int i = 0; i < machine_->num_nodes(); ++i) {
    if (states_[static_cast<std::size_t>(i)] ==
        NodeBootState::kHardwareFailed) {
      report.failed_nodes.push_back(NodeId{static_cast<u32>(i)});
    }
  }

  report.total_cycles = machine_->engine().now() - start;
  report.jtag_packets = eth_->jtag_packets();
  report.udp_packets = eth_->packets_delivered() - eth_->jtag_packets();
  report.detected_shape = machine_->topology().shape();
  report.nodes_ready = nodes_ready_;
  QCDOC_INFO << "boot complete: " << report.nodes_ready << " nodes in "
             << machine_->seconds(report.total_cycles) << " s";
  return report;
}

BootImageCache::BootImageCache(machine::Machine* m, net::EthernetTree* eth,
                               ImageCacheParams params)
    : machine_(m), eth_(eth), params_(params) {}

ImageLoadReport BootImageCache::load(const std::string& image,
                                     std::span<const NodeId> nodes) {
  ImageLoadReport rep;
  auto [it, inserted] = resident_.try_emplace(
      image, static_cast<std::size_t>(machine_->num_nodes()), false);
  std::vector<bool>& bits = it->second;

  std::vector<NodeId> cold;
  for (const NodeId n : nodes) {
    if (bits[n.value]) {
      ++hits_;
      ++rep.warm_nodes;
    } else {
      ++misses_;
      ++rep.cold_nodes;
      cold.push_back(n);
    }
  }

  const Cycle start = machine_->engine().now();
  if (cold.empty()) {
    // Warm start: the image is resident everywhere; only the entry jump and
    // SCU re-arm run, modelled as a fixed host delay.
    machine_->engine().run_until(start + params_.warm_start_cycles);
    rep.cycles = machine_->engine().now() - start;
    return rep;
  }
  // Stream the image to the cold nodes over the Ethernet tree, exactly the
  // run-kernel half of a full boot, and drain until every packet lands.
  int pending = 0;
  for (const NodeId n : cold) {
    pending += params_.packets_per_node;
    for (int i = 0; i < params_.packets_per_node; ++i) {
      eth_->host_to_node(n, params_.packet_payload_bytes, net::EthKind::kUdp,
                         [&pending] { --pending; });
    }
  }
  machine_->engine().run_while([&pending] { return pending > 0; });
  for (const NodeId n : cold) bits[n.value] = true;
  rep.cycles = machine_->engine().now() - start;
  return rep;
}

void BootImageCache::invalidate_node(NodeId n) {
  for (auto& [image, bits] : resident_) bits[n.value] = false;
}

bool BootImageCache::resident(const std::string& image, NodeId n) const {
  const auto it = resident_.find(image);
  return it != resident_.end() && it->second[n.value];
}

}  // namespace qcdoc::host
