#include "host/quiesce.h"

#include <algorithm>

namespace qcdoc::host {

namespace {

/// The events a snapshot can re-create instead of serialize: the injector's
/// unfired plan remainder plus one standing burst per running scrubber.
/// Mirrors the accounting in snapshot::capture_machine.
std::size_t service_owned_events(machine::Machine& m,
                                 const fault::FaultInjector* injector) {
  std::size_t n = 0;
  if (injector != nullptr) n += injector->pending_count();
  if (m.mesh().scrubbing()) {
    n += static_cast<std::size_t>(m.num_nodes());
  }
  return n;
}

}  // namespace

QuiesceReport drain_to_quiescence(machine::Machine& m,
                                  const QuiesceOptions& opts) {
  QuiesceReport rep;
  sim::Engine& engine = m.engine();
  const Cycle start = engine.now();
  for (;;) {
    // First retire any DMA transfers in flight.  drain() runs the engine;
    // if the queue empties with transfers still pending, a link is stalled
    // and no amount of waiting will quiesce the machine.
    if (!m.mesh().drain()) {
      rep.at = engine.now();
      rep.waited = engine.now() - start;
      rep.pending_events = engine.pending_events();
      rep.service_owned = service_owned_events(m, opts.injector);
      rep.detail = "mesh stalled: event queue empty with transfers in flight";
      return rep;
    }
    const std::size_t service = service_owned_events(m, opts.injector);
    const std::size_t pending = engine.pending_events();
    if (pending == service) {
      rep.quiescent = true;
      rep.at = engine.now();
      rep.waited = engine.now() - start;
      rep.pending_events = pending;
      rep.service_owned = service;
      return rep;
    }
    if (engine.now() - start >= opts.max_wait_cycles) {
      rep.at = engine.now();
      rep.waited = engine.now() - start;
      rep.pending_events = pending;
      rep.service_owned = service;
      rep.detail = "timed out with " + std::to_string(pending) +
                   " events pending, " + std::to_string(service) +
                   " service-owned (is a monitor still armed?)";
      return rep;
    }
    // Stragglers are scheduled in the future (BER restores, protocol
    // timeouts).  Step toward them in bounded increments and re-check; a
    // service-owned event firing in the window keeps the books balanced
    // because it leaves both populations at once.
    engine.run_until(engine.now() + std::max<Cycle>(1, opts.step_cycles));
  }
}

}  // namespace qcdoc::host
