#include "host/qdaemon.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace qcdoc::host {

Qdaemon::Qdaemon(machine::Machine* m, net::EthernetConfig eth_cfg,
                 BootParams boot_params)
    : machine_(m), boot_params_(boot_params) {
  eth_cfg.cpu_clock_hz = m->hw().cpu_clock_hz;
  eth_ = std::make_unique<net::EthernetTree>(&m->engine(), eth_cfg,
                                             m->num_nodes());
  sequencer_ = std::make_unique<BootSequencer>(machine_, eth_.get(), boot_params_);
  node_used_.assign(static_cast<std::size_t>(m->num_nodes()), false);
  quarantined_.assign(static_cast<std::size_t>(m->num_nodes()), false);
}

const BootReport& Qdaemon::boot() {
  if (!boot_report_) {
    boot_report_ = sequencer_->boot();
    // Hardware problems found during boot: quarantine those nodes so no
    // partition is ever placed over them.
    for (const auto bad : boot_report_->failed_nodes) {
      quarantine_node(bad);
    }
  }
  return *boot_report_;
}

int Qdaemon::machine_nodes() const { return machine_->num_nodes(); }

std::vector<NodeId> Qdaemon::failed_nodes() const {
  return quarantined_nodes();
}

void Qdaemon::quarantine_node(NodeId n) {
  if (quarantined_[n.value]) return;
  quarantined_[n.value] = true;
  QCDOC_WARN << "qdaemon: node " << n.value << " quarantined";
  // Revoke every allocation placed over the bad node, so stale handles are
  // detectable (valid() false) instead of dangling into a dead partition.
  for (auto& [id, alloc] : partitions_) {
    if (alloc.revoked) continue;
    for (const NodeId pn : alloc.partition->nodes()) {
      if (pn == n) {
        alloc.revoked = true;
        alloc.revoke_reason =
            "node " + std::to_string(n.value) + " quarantined";
        QCDOC_WARN << "qdaemon: partition '" << alloc.name << "' (id " << id
                   << ") revoked: " << alloc.revoke_reason;
        break;
      }
    }
  }
  for (const auto& cb : quarantine_callbacks_) cb(n);
}

void Qdaemon::on_quarantine(std::function<void(NodeId)> cb) {
  quarantine_callbacks_.push_back(std::move(cb));
}

std::vector<NodeId> Qdaemon::quarantined_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (quarantined_[i]) out.push_back(NodeId{static_cast<u32>(i)});
  }
  return out;
}

HealthMonitor& Qdaemon::health(HealthConfig cfg) {
  if (!health_) {
    health_ = std::make_unique<HealthMonitor>(machine_, eth_.get(), this, cfg);
  }
  return *health_;
}

ScuWatchdog& Qdaemon::watchdog(WatchdogConfig cfg) {
  if (!watchdog_) {
    watchdog_ = std::make_unique<ScuWatchdog>(machine_, &health(), cfg);
  }
  return *watchdog_;
}

ScuWatchdog::ScuWatchdog(machine::Machine* m, HealthMonitor* health,
                         WatchdogConfig cfg)
    : machine_(m), health_(health), cfg_(cfg) {
  const auto n = static_cast<std::size_t>(m->num_nodes());
  last_recv_.assign(n, 0);
  last_progress_.assign(n, m->engine().now());
  flagged_.assign(n, false);
}

WatchdogReport ScuWatchdog::check() {
  ++checks_;
  WatchdogReport rep;
  rep.at = machine_->engine().now();
  net::MeshNet& mesh = machine_->mesh();
  const auto& topo = machine_->topology();
  const int n = machine_->num_nodes();
  for (int i = 0; i < n; ++i) {
    const NodeId node{static_cast<u32>(i)};
    const auto idx = static_cast<std::size_t>(i);
    scu::Scu& node_scu = mesh.scu(node);
    u64 received = 0;
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      received += node_scu.recv_side(torus::LinkIndex{l}).words_received();
    }
    if (received != last_recv_[idx]) {
      last_recv_[idx] = received;
      last_progress_[idx] = rep.at;
      continue;
    }
    if (flagged_[idx]) continue;  // sticky: report a node at most once
    if (rep.at - last_progress_[idx] < cfg_.stall_cycles) continue;
    // No receive progress for a full stall window.  Only a stall with data
    // *waiting* is a hang -- an idle node's counters freeze too.  A facing
    // neighbour with undrained send data is that evidence.
    bool starving_neighbor = false;
    for (int l = 0; l < torus::kLinksPerNode && !starving_neighbor; ++l) {
      const torus::LinkIndex link{l};
      const NodeId peer = topo.neighbor(node, link);
      starving_neighbor =
          !mesh.scu(peer).send_side(torus::facing_link(link)).data_drained();
    }
    if (!starving_neighbor) continue;
    flagged_[idx] = true;
    ++nodes_flagged_;
    rep.stalled.push_back(node);
    QCDOC_WARN << "watchdog: node " << i << " made no receive progress for "
               << (rep.at - last_progress_[idx])
               << " cycles with neighbour data pending";
    if (health_) {
      health_->report_external_failure(node,
                                       "SCU receive progress stalled");
    }
  }
  return rep;
}

void ScuWatchdog::watch_for(Cycle duration) {
  sim::Engine& engine = machine_->engine();
  const Cycle end = engine.now() + duration;
  while (engine.now() < end) {
    const Cycle next = std::min(end, engine.now() + cfg_.check_period_cycles);
    engine.run_until(next);
    check();
  }
}

void ScuWatchdog::arm(Cycle duration) {
  if (armed_) return;
  armed_ = true;
  const auto n = static_cast<std::size_t>(machine_->num_nodes());
  sampled_recv_.assign(n, 0);
  sampled_undrained_.assign(n, 0);
  sim::Engine& engine = machine_->engine();
  const Cycle end = engine.now() + duration;
  // Per-node samplers carry their own node's affinity (touched set: exactly
  // that node), so a running job keeps its parallel windows; only the
  // correlation event, one cycle behind each sampling instant, is a host
  // event -- and host events bound windows without demoting them.
  for (u32 i = 0; i < static_cast<u32>(n); ++i) {
    sim::EngineRef node_ref(&engine, i);
    node_ref.schedule(cfg_.check_period_cycles,
                      [this, i, end] { sample_node(i, end); });
  }
  sim::EngineRef host_ref(&engine);
  const Cycle sampled_at = engine.now() + cfg_.check_period_cycles;
  host_ref.schedule(cfg_.check_period_cycles + 1,
                    [this, sampled_at, end] { correlate(sampled_at, end); });
}

void ScuWatchdog::sample_node(u32 i, Cycle end) {
  const NodeId node{i};
  scu::Scu& s = machine_->mesh().scu(node);
  u64 received = 0;
  u32 undrained = 0;
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    received += s.recv_side(torus::LinkIndex{l}).words_received();
    if (!s.send_side(torus::LinkIndex{l}).data_drained()) {
      undrained |= 1u << l;
    }
  }
  const auto idx = static_cast<std::size_t>(i);
  sampled_recv_[idx] = received;
  sampled_undrained_[idx] = undrained;
  sim::EngineRef self_ref(&machine_->engine(), i);
  if (self_ref.now() + cfg_.check_period_cycles <= end) {
    self_ref.schedule(cfg_.check_period_cycles,
                      [this, i, end] { sample_node(i, end); });
  }
}

void ScuWatchdog::correlate(Cycle sampled_at, Cycle end) {
  ++checks_;
  const auto& topo = machine_->topology();
  const int n = machine_->num_nodes();
  for (int i = 0; i < n; ++i) {
    const NodeId node{static_cast<u32>(i)};
    const auto idx = static_cast<std::size_t>(i);
    if (sampled_recv_[idx] != last_recv_[idx]) {
      last_recv_[idx] = sampled_recv_[idx];
      last_progress_[idx] = sampled_at;
      continue;
    }
    if (flagged_[idx]) continue;  // sticky: report a node at most once
    if (sampled_at - last_progress_[idx] < cfg_.stall_cycles) continue;
    // Same policy as check(): a frozen counter is only a hang when a facing
    // neighbour sampled undrained send data aimed at this node.
    bool starving_neighbor = false;
    for (int l = 0; l < torus::kLinksPerNode && !starving_neighbor; ++l) {
      const torus::LinkIndex link{l};
      const NodeId peer = topo.neighbor(node, link);
      starving_neighbor =
          ((sampled_undrained_[peer.value] >>
            static_cast<u32>(torus::facing_link(link).value)) &
           1u) != 0;
    }
    if (!starving_neighbor) continue;
    flagged_[idx] = true;
    ++nodes_flagged_;
    QCDOC_WARN << "watchdog: node " << i << " made no receive progress for "
               << (sampled_at - last_progress_[idx])
               << " cycles with neighbour data pending (sampled)";
    if (health_) {
      health_->report_external_failure(node, "SCU receive progress stalled");
    }
  }
  const Cycle next_sample = sampled_at + cfg_.check_period_cycles;
  if (next_sample > end) {
    armed_ = false;
    return;
  }
  sim::EngineRef host_ref(&machine_->engine());
  host_ref.schedule(cfg_.check_period_cycles,
                    [this, next_sample, end] { correlate(next_sample, end); });
}

NodeBootState Qdaemon::node_state(NodeId n) const {
  return sequencer_->state(n);
}

bool Qdaemon::box_free(const torus::Coord& origin,
                       const torus::Shape& box) const {
  const auto& topo = machine_->topology();
  torus::Coord c;
  // Iterate the box (extents are small; at most the machine).
  const int vol = box.volume();
  for (int i = 0; i < vol; ++i) {
    int rest = i;
    for (int d = 0; d < torus::kMaxDims; ++d) {
      c.c[d] = origin.c[d] + rest % box.extent[d];
      rest /= box.extent[d];
    }
    const NodeId n = topo.id(c);
    if (node_used_[n.value] || quarantined_[n.value]) return false;
    if (exclude_degraded_ && health_ &&
        health_->health(n) != NodeHealth::kHealthy) {
      return false;
    }
  }
  return true;
}

void Qdaemon::mark_box(const torus::Coord& origin, const torus::Shape& box,
                       bool used) {
  const auto& topo = machine_->topology();
  torus::Coord c;
  const int vol = box.volume();
  for (int i = 0; i < vol; ++i) {
    int rest = i;
    for (int d = 0; d < torus::kMaxDims; ++d) {
      c.c[d] = origin.c[d] + rest % box.extent[d];
      rest /= box.extent[d];
    }
    node_used_[topo.id(c).value] = used;
  }
}

std::optional<PartitionHandle> Qdaemon::allocate_partition(
    const std::string& name, const torus::Shape& box, int logical_dims) {
  assert(logical_dims >= 1 && logical_dims <= torus::kMaxDims);
  // Default remap: identity on the first logical_dims-1 box dims, trailing
  // box dims folded into the last logical dim.
  torus::FoldSpec fold;
  fold.groups.resize(static_cast<std::size_t>(logical_dims));
  for (int d = 0; d < logical_dims - 1; ++d) {
    fold.groups[static_cast<std::size_t>(d)] = {d};
  }
  for (int d = logical_dims - 1; d < torus::kMaxDims; ++d) {
    if (box.extent[d] > 1 || d == logical_dims - 1) {
      fold.groups[static_cast<std::size_t>(logical_dims - 1)].push_back(d);
    }
  }
  return allocate_partition(name, box, std::move(fold));
}

std::optional<PartitionHandle> Qdaemon::allocate_partition(
    const std::string& name, const torus::Shape& box, torus::FoldSpec fold) {
  assert(booted() && "allocate_partition before boot");
  const auto& shape = machine_->topology().shape();
  for (int d = 0; d < torus::kMaxDims; ++d) {
    if (box.extent[d] > shape.extent[d] || shape.extent[d] % box.extent[d] != 0) {
      return std::nullopt;  // box must tile the machine dimension
    }
  }
  // First fit over box-aligned origins.
  torus::Coord origin;
  const auto try_origins = [&](auto&& self, int dim) -> bool {
    if (dim == torus::kMaxDims) {
      return box_free(origin, box);
    }
    for (int x = 0; x < shape.extent[dim]; x += box.extent[dim]) {
      origin.c[dim] = x;
      if (self(self, dim + 1)) return true;
    }
    origin.c[dim] = 0;
    return false;
  };
  if (!try_origins(try_origins, 0)) return std::nullopt;

  mark_box(origin, box, true);
  Allocation alloc;
  alloc.name = name;
  alloc.origin = origin;
  alloc.box = box;
  alloc.partition = std::make_unique<torus::Partition>(
      &machine_->topology(), std::move(fold), origin, box);
  const int id = next_partition_id_++;
  auto [it, inserted] = partitions_.emplace(id, std::move(alloc));
  assert(inserted);
  QCDOC_INFO << "partition '" << name << "' allocated: box " << box.to_string()
             << " at " << origin.to_string();
  return PartitionHandle{id, name, it->second.partition.get()};
}

void Qdaemon::release_partition(const PartitionHandle& h) {
  auto it = partitions_.find(h.id);
  if (it == partitions_.end()) return;
  // Re-establish the health of the freed nodes before they rejoin the
  // allocatable pool.  The probe may quarantine nodes (which then stay out
  // of the pool via quarantined_) or retrain marginal wires; either way the
  // next tenant never inherits an unprobed box.
  const std::vector<NodeId> freed = it->second.partition->nodes();
  health().probe_nodes(freed);
  mark_box(it->second.origin, it->second.box, false);
  partitions_.erase(it);
}

bool Qdaemon::valid(const PartitionHandle& h) const {
  const auto it = partitions_.find(h.id);
  return it != partitions_.end() && !it->second.revoked;
}

const torus::Partition* Qdaemon::partition(const PartitionHandle& h) const {
  const auto it = partitions_.find(h.id);
  if (it == partitions_.end() || it->second.revoked) return nullptr;
  return it->second.partition.get();
}

std::string Qdaemon::revocation_reason(const PartitionHandle& h) const {
  const auto it = partitions_.find(h.id);
  if (it == partitions_.end()) return "";
  return it->second.revoke_reason;
}

int Qdaemon::free_nodes() const {
  int n = 0;
  for (std::size_t i = 0; i < node_used_.size(); ++i) {
    if (!node_used_[i] && !quarantined_[i]) ++n;
  }
  return n;
}

JobResult Qdaemon::run_job(
    const PartitionHandle& h,
    const std::function<void(comms::Communicator&, std::vector<std::string>&)>&
        app) {
  JobResult result;
  auto it = partitions_.find(h.id);
  if (it == partitions_.end() || !app) return result;
  if (it->second.revoked) {
    result.output.push_back("job aborted: partition revoked: " +
                            it->second.revoke_reason);
    return result;
  }

  // Pre-flight: refuse to start over hardware known to be bad, and fail the
  // job cleanly with a diagnostic instead of hanging the user's qcsh.
  const std::vector<NodeId> nodes = it->second.partition->nodes();
  bool healthy = true;
  for (const NodeId n : nodes) {
    if (is_quarantined(n)) {
      result.output.push_back("job aborted: node " + std::to_string(n.value) +
                              " is quarantined");
      healthy = false;
    } else if (machine_->mesh().condition(n) != net::NodeCondition::kOk) {
      result.output.push_back(
          "job aborted: node " + std::to_string(n.value) + " is " +
          net::to_string(machine_->mesh().condition(n)));
      healthy = false;
    }
  }
  if (!healthy) return result;  // ok stays false

  // Snapshot the link-fault state so faults raised *during* the job fail it.
  std::vector<u32> fault_masks_before(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    fault_masks_before[i] = machine_->mesh().scu(nodes[i]).faulted_links();
  }

  comms::Communicator comm(machine_, it->second.partition.get());
  const Cycle start = machine_->engine().now();
  app(comm, result.output);
  result.cycles = machine_->engine().now() - start;

  bool faulted = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const u32 fresh = machine_->mesh().scu(nodes[i]).faulted_links() &
                      ~fault_masks_before[i];
    if (!fresh) continue;
    faulted = true;
    for (int l = 0; l < torus::kLinksPerNode; ++l) {
      if (fresh & (1u << l)) {
        result.output.push_back(
            "job failed: link fault on node " +
            std::to_string(nodes[i].value) + " link " + std::to_string(l));
      }
    }
  }
  result.ok = !faulted;
  return result;
}

}  // namespace qcdoc::host
