// The qdaemon: host-side management software (paper Section 3.1).
//
// "Our primary host software is called the qdaemon.  This software is
// responsible for booting QCDOC, coordinating the initialization of the
// various networks, keeping track of the status of the nodes, allocating
// user partitions of QCDOC, loading and starting execution of applications,
// and returning application output to the user."
//
// The model provides exactly that surface: boot, node-status tracking,
// partition allocation (carving lower-dimensional sub-meshes out of the
// native six-dimensional machine, with the user choosing a dimensionality
// between one and six), and job execution against the communications API.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comms/comms.h"
#include "host/boot.h"
#include "host/health.h"
#include "machine/machine.h"
#include "net/ethernet.h"
#include "torus/partition.h"

namespace qcdoc::host {

/// A user's ticket for an allocated partition.  The embedded pointer is a
/// convenience for the common immediate-use path; code that holds a handle
/// across quarantine events (the job scheduler) must re-validate through
/// Qdaemon::valid() / Qdaemon::partition() instead of dereferencing a
/// possibly-revoked pointer -- quarantine revokes every allocation placed
/// over the bad node, and release destroys the Partition object.
struct PartitionHandle {
  int id = -1;
  std::string name;
  const torus::Partition* partition = nullptr;
};

struct JobResult {
  bool ok = false;
  Cycle cycles = 0;
  std::vector<std::string> output;  ///< lines returned to the user's qcsh
};

struct WatchdogConfig {
  /// Cycles between checks when watching continuously.
  Cycle check_period_cycles = 1 << 14;
  /// A node whose SCU has made no receive progress for this long, while a
  /// neighbour still has words queued for it, is declared stalled.
  Cycle stall_cycles = 1 << 16;
};

/// What one watchdog check found.
struct WatchdogReport {
  Cycle at = 0;
  std::vector<NodeId> stalled;  ///< nodes newly flagged this check
};

/// Host-side SCU receive-progress watchdog.  A hung CPU whose SCU still
/// acknowledges frames (fault::FaultKind::kNodeHang) is invisible to link
/// checks -- the wires are healthy -- but its neighbours' send queues back
/// up against it.  The watchdog reads each node's receive word counters
/// over JTAG; a node whose counters freeze while a facing neighbour still
/// has undrained send data is stalled, and gets reported to the
/// HealthMonitor for quarantine.  Idle nodes (no traffic pending) are
/// never flagged.
///
/// Two operating modes:
///   - check()/watch_for(): the synchronous diagnostic path.  The host
///     reads live node state directly, which is only legal with the engine
///     stopped between runs.
///   - arm(): the bounded-affinity monitoring path (DESIGN.md, "Host events
///     and the bounded-affinity contract").  Every check period each node
///     samples its OWN receive counters and send-drain bits with an event
///     carrying its own node affinity -- its touched set is exactly itself,
///     so samples execute inside parallel windows like any node traffic.
///     A host event one cycle later correlates the sampled slots using pure
///     host-side memory.  The watchdog therefore rides along a running job
///     without serializing the simulation.
class ScuWatchdog {
 public:
  /// `health` may be null (detection only, no escalation sink).
  ScuWatchdog(machine::Machine* m, HealthMonitor* health,
              WatchdogConfig cfg = WatchdogConfig{});

  /// Inspect every node now.  Flagging is sticky: a node is reported to
  /// the health monitor at most once.
  WatchdogReport check();

  /// Run the engine for `duration` cycles, checking every check_period.
  void watch_for(Cycle duration);

  /// Schedule the event-driven sampling mode for `duration` cycles from
  /// now, then return immediately; the caller runs the engine (typically by
  /// running a job).  Idempotent while armed; may be re-armed after the
  /// previous watch expires.
  void arm(Cycle duration);
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] bool stalled(NodeId n) const {
    return flagged_[n.value];
  }
  u64 checks() const { return checks_; }
  u64 nodes_flagged() const { return nodes_flagged_; }
  const WatchdogConfig& config() const { return cfg_; }

 private:
  /// Node-affine sampler body: node `i` records its receive-word sum and
  /// per-link send-undrained mask into its own slot.  Touches no other
  /// node's state.
  void sample_node(u32 i, Cycle end);
  /// Host correlation body: applies the check() stall policy to the
  /// sampled slots taken one cycle earlier; re-arms itself until the next
  /// sampling instant would pass `end`.
  void correlate(Cycle sampled_at, Cycle end);

  machine::Machine* machine_;
  HealthMonitor* health_;
  WatchdogConfig cfg_;
  /// Per node: last observed sum of receive-side word counters, the cycle
  /// at which that sum last advanced, and whether the node was reported.
  std::vector<u64> last_recv_;
  std::vector<Cycle> last_progress_;
  std::vector<bool> flagged_;
  /// arm() slots, one per node, each written only by its owning node's
  /// sampler event: receive-word sum and a bitmask of links whose send
  /// side still holds undrained data.
  std::vector<u64> sampled_recv_;
  std::vector<u32> sampled_undrained_;
  bool armed_ = false;
  u64 checks_ = 0;
  u64 nodes_flagged_ = 0;
};

class Qdaemon {
 public:
  explicit Qdaemon(machine::Machine* m,
                   net::EthernetConfig eth_cfg = net::EthernetConfig{},
                   BootParams boot_params = BootParams{});

  /// Boot the machine (idempotent).  Nodes become allocatable afterwards.
  const BootReport& boot();
  bool booted() const { return boot_report_.has_value(); }

  NodeBootState node_state(NodeId n) const;
  int machine_nodes() const;
  /// Nodes flagged by the boot hardware test or quarantined since; never
  /// allocated to partitions.
  std::vector<NodeId> failed_nodes() const;

  // --- Node-status tracking -----------------------------------------------
  /// Remove a node from the allocatable pool ("keeping track of the status
  /// of the nodes, including hardware problems").  Partitions already placed
  /// over it keep running -- their next job fails cleanly instead.
  void quarantine_node(NodeId n);
  bool is_quarantined(NodeId n) const {
    return quarantined_[n.value];
  }
  std::vector<NodeId> quarantined_nodes() const;

  /// Register a callback invoked synchronously whenever a node is newly
  /// quarantined (boot hardware test, health sweep, watchdog, or an explicit
  /// quarantine_node call).  The job scheduler uses this to learn that a
  /// running job's partition was revoked and must be migrated.  Callbacks
  /// run on the host thread with the engine stopped; they must not allocate
  /// or release partitions re-entrantly.
  void on_quarantine(std::function<void(NodeId)> cb);

  /// Periodic health sweeps over Ethernet/JTAG, wired back to this daemon
  /// for quarantining.  Created on first use.
  HealthMonitor& health(HealthConfig cfg = HealthConfig{});

  /// SCU receive-progress watchdog, wired to this daemon's health monitor
  /// so stalled nodes are quarantined.  Created on first use.
  ScuWatchdog& watchdog(WatchdogConfig cfg = WatchdogConfig{});

  /// Allocate a partition: a box of the machine with extents `box` (unused
  /// dims extent 1), remapped to `logical_dims` dimensions by folding
  /// trailing box dims together.  Returns nullopt when no aligned free box
  /// exists.  The user "requests that the qdaemon remap their partition to
  /// a dimensionality between one and six".
  std::optional<PartitionHandle> allocate_partition(const std::string& name,
                                                    const torus::Shape& box,
                                                    int logical_dims);
  /// Allocate with an explicit fold.
  std::optional<PartitionHandle> allocate_partition(const std::string& name,
                                                    const torus::Shape& box,
                                                    torus::FoldSpec fold);
  /// Tear down a partition.  The freed nodes are re-probed by the health
  /// monitor (JTAG round trip + counter deltas, advancing the engine) and
  /// only then returned to the allocatable pool -- a box released by a job
  /// that died on marginal hardware is never handed to the next tenant
  /// unprobed, and nodes the probe quarantines stay out of the pool.
  /// Synchronous: when this returns, the surviving nodes are allocatable.
  void release_partition(const PartitionHandle& h);
  int active_partitions() const { return static_cast<int>(partitions_.size()); }
  int free_nodes() const;

  /// True while `h` refers to a live allocation that has not been revoked
  /// by quarantine.  A handle becomes invalid when release_partition() is
  /// called on it or when any node under it is quarantined.
  [[nodiscard]] bool valid(const PartitionHandle& h) const;
  /// The live partition behind `h`, or nullptr once the handle is invalid.
  /// Holders of long-lived handles must use this instead of the pointer
  /// embedded in the handle (which dangles after release).
  const torus::Partition* partition(const PartitionHandle& h) const;
  /// Why `h` stopped being valid ("" while valid or never allocated).
  std::string revocation_reason(const PartitionHandle& h) const;

  /// When set, the partition allocator also skips HealthMonitor-degraded
  /// nodes, not just quarantined ones.  Off by default (degraded nodes are
  /// usable, just marginal); the job scheduler turns it on so migrated jobs
  /// land on clean hardware.
  void set_allocation_excludes_degraded(bool on) { exclude_degraded_ = on; }
  bool allocation_excludes_degraded() const { return exclude_degraded_; }

  /// Run an application (SPMD, expressed against the communications API) on
  /// a partition; output lines are returned as the qcsh data stream.
  JobResult run_job(const PartitionHandle& h,
                    const std::function<void(comms::Communicator&,
                                             std::vector<std::string>&)>& app);

  net::EthernetTree& ethernet() { return *eth_; }
  machine::Machine& machine() { return *machine_; }

 private:
  struct Allocation {
    std::string name;
    torus::Coord origin;
    torus::Shape box;
    std::unique_ptr<torus::Partition> partition;
    /// Set when quarantine hits a node under this allocation.  The
    /// Partition object stays alive (a draining job may still read its
    /// geometry) but valid() is false and run_job refuses to start.
    bool revoked = false;
    std::string revoke_reason;
  };

  bool box_free(const torus::Coord& origin, const torus::Shape& box) const;
  void mark_box(const torus::Coord& origin, const torus::Shape& box, bool used);

  machine::Machine* machine_;
  std::unique_ptr<net::EthernetTree> eth_;
  BootParams boot_params_;
  std::optional<BootReport> boot_report_;
  std::unique_ptr<BootSequencer> sequencer_;
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<ScuWatchdog> watchdog_;
  std::vector<bool> node_used_;
  std::vector<bool> quarantined_;
  /// Keyed by partition id; ids are never reused, so a stale handle's id
  /// simply misses the map and valid() is false.
  std::map<int, Allocation> partitions_;
  int next_partition_id_ = 0;
  bool exclude_degraded_ = false;
  std::vector<std::function<void(NodeId)>> quarantine_callbacks_;
};

}  // namespace qcdoc::host
