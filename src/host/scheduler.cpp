#include "host/scheduler.h"

#include <algorithm>

#include "common/log.h"
#include "snapshot/format.h"

namespace qcdoc::host {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kSubmitting: return "submitting";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kMigrating: return "migrating";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(SubmitError e) {
  switch (e) {
    case SubmitError::kNone: return "none";
    case SubmitError::kQueueFull: return "queue_full";
    case SubmitError::kUserQuotaFull: return "user_quota_full";
    case SubmitError::kBadRequest: return "bad_request";
  }
  return "?";
}

namespace {

std::string sanitize_stream(const std::string& name) {
  std::string out = "job_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

JobScheduler::JobScheduler(Qdaemon* qd, SchedulerConfig cfg)
    : qd_(qd),
      machine_(&qd->machine()),
      cfg_(std::move(cfg)),
      image_cache_(&qd->machine(), &qd->ethernet(), cfg_.image_cache) {
  // Migrated jobs must land on clean hardware, and a quarantined node's
  // cached images are gone with it.
  qd_->set_allocation_excludes_degraded(true);
  qd_->on_quarantine([this](NodeId n) { image_cache_.invalidate_node(n); });
}

SubmitOutcome JobScheduler::submit(JobSpec spec) {
  ++report_.submitted;
  SubmitOutcome out;

  // Malformed specs are rejected permanently: retrying cannot fix them.
  const auto& shape = machine_->topology().shape();
  bool bad = !spec.body || spec.name.empty() || spec.user.empty() ||
             spec.logical_dims < 1 || spec.logical_dims > torus::kMaxDims;
  for (int d = 0; d < torus::kMaxDims && !bad; ++d) {
    bad = spec.box.extent[d] < 1 || spec.box.extent[d] > shape.extent[d] ||
          shape.extent[d] % spec.box.extent[d] != 0;
  }
  if (bad) {
    ++report_.rejected_bad_request;
    out.error = SubmitError::kBadRequest;
    out.detail = "malformed job spec (body/name/user/box/dims)";
    return out;
  }

  // Bounded queue: the global admission bound counts jobs that have been
  // accepted but not yet placed.  Rejection carries a retry-after hint --
  // the explicit backpressure half of the submission contract.
  int queued = 0;
  int user_load = 0;
  for (const auto& [id, j] : jobs_) {
    const bool waiting =
        j.state == JobState::kSubmitting || j.state == JobState::kQueued;
    if (waiting) ++queued;
    if (j.spec.user == spec.user &&
        (waiting || j.state == JobState::kRunning ||
         j.state == JobState::kMigrating)) {
      ++user_load;
    }
  }
  if (queued >= cfg_.max_queued) {
    ++report_.rejected_queue_full;
    out.error = SubmitError::kQueueFull;
    out.retry_after = cfg_.retry_hint_cycles;
    out.detail = "admission queue full (" + std::to_string(queued) + "/" +
                 std::to_string(cfg_.max_queued) + ")";
    return out;
  }
  if (user_load >= cfg_.max_queued_per_user) {
    ++report_.rejected_quota;
    out.error = SubmitError::kUserQuotaFull;
    out.retry_after = cfg_.retry_hint_cycles;
    out.detail = "user '" + spec.user + "' at quota (" +
                 std::to_string(user_load) + "/" +
                 std::to_string(cfg_.max_queued_per_user) + ")";
    return out;
  }

  ++report_.accepted;
  const JobId id = next_id_++;
  Job& j = jobs_[id];
  j.id = id;
  j.spec = std::move(spec);
  j.submit_seq = submit_seq_++;
  j.arrive_at = machine_->engine().now() + cfg_.submit_latency_cycles;
  record(j, JobState::kSubmitting, "accepted from user '" + j.spec.user + "'");
  // The submission packet crosses the Ethernet tree: the job becomes
  // visible to the queue after the hop, as a host-affinity event (the
  // decision itself touches only scheduler state, never a node).
  const sim::EngineRef host(&machine_->engine());
  host.schedule(cfg_.submit_latency_cycles, [this, id] {
    Job& job = jobs_.at(id);
    if (job.state == JobState::kSubmitting) {
      record(job, JobState::kQueued, "arrived in queue");
    }
  });
  out.accepted = true;
  out.id = id;
  return out;
}

void JobScheduler::record(Job& j, JobState s, std::string note) {
  j.state = s;
  j.events.push_back(JobEvent{machine_->engine().now(), s, std::move(note)});
}

void JobScheduler::finish(Job& j, bool ok, fault::JobFailure f,
                          std::string detail) {
  if (j.handle) {
    qd_->release_partition(*j.handle);
    j.handle.reset();
    j.comm.reset();
  }
  j.failure = f;
  j.detail = detail;
  if (ok) {
    ++report_.completed;
    record(j, JobState::kDone, std::move(detail));
  } else {
    ++report_.failed;
    record(j, JobState::kFailed,
           std::string(fault::to_string(f)) + ": " + std::move(detail));
  }
}

double JobScheduler::usage_ratio(const std::string& user) const {
  const auto s = shares_.find(user);
  const double share = s == shares_.end() ? 1.0 : std::max(s->second, 1e-9);
  const auto u = usage_.find(user);
  const Cycle used = u == usage_.end() ? 0 : u->second;
  return static_cast<double>(used) / share;
}

void JobScheduler::set_share(const std::string& user, double weight) {
  shares_[user] = weight;
}

JobId JobScheduler::pick_fair(const std::vector<JobId>& candidates) const {
  JobId best = -1;
  double best_ratio = 0.0;
  u64 best_seq = 0;
  for (const JobId id : candidates) {
    const Job& j = jobs_.at(id);
    const double ratio = usage_ratio(j.spec.user);
    if (best < 0 || ratio < best_ratio ||
        (ratio == best_ratio && j.submit_seq < best_seq)) {
      best = id;
      best_ratio = ratio;
      best_seq = j.submit_seq;
    }
  }
  return best;
}

std::vector<JobId> JobScheduler::in_state(JobState s) const {
  std::vector<JobId> out;
  for (const auto& [id, j] : jobs_) {
    if (j.state == s) out.push_back(id);
  }
  return out;
}

bool JobScheduler::try_start_one() {
  std::vector<JobId> candidates = in_state(JobState::kQueued);
  // Fair-share order with backfill: when the preferred tenant's box does
  // not fit the current free pool, a smaller job behind it may still start.
  while (!candidates.empty()) {
    const JobId pick = pick_fair(candidates);
    if (start_job(jobs_.at(pick))) return true;
    candidates.erase(std::find(candidates.begin(), candidates.end(), pick));
  }
  return false;
}

bool JobScheduler::start_job(Job& j) {
  auto handle =
      qd_->allocate_partition(j.spec.name, j.spec.box, j.spec.logical_dims);
  if (!handle) return false;  // stays queued; the pool may free up later

  const Cycle t0 = machine_->engine().now();
  const std::vector<NodeId> nodes = qd_->partition(*handle)->nodes();
  const ImageLoadReport load = image_cache_.load(j.spec.image, nodes);
  const Cycle boot_cycles = machine_->engine().now() - t0;
  if (load.cold_nodes > 0) {
    report_.cold_boot_cycles.push_back(boot_cycles);
  } else {
    report_.warm_boot_cycles.push_back(boot_cycles);
  }

  if (j.spec.resume_from_store && !j.have_checkpoint && j.step == 0) {
    try_resume_from_store(j);
  }

  j.handle = *handle;
  j.comm =
      std::make_unique<comms::Communicator>(machine_, qd_->partition(*handle));
  j.resume_pending = j.have_checkpoint;
  j.cycles_this_attempt = 0;
  record(j, JobState::kRunning,
         "placed on partition " + std::to_string(handle->id) + " (" +
             std::to_string(load.warm_nodes) + " warm / " +
             std::to_string(load.cold_nodes) + " cold nodes, boot " +
             std::to_string(boot_cycles) + " cycles)");
  return true;
}

bool JobScheduler::step_one() {
  const std::vector<JobId> running = in_state(JobState::kRunning);
  if (running.empty()) return false;
  step_job(jobs_.at(pick_fair(running)));
  return true;
}

void JobScheduler::step_job(Job& j) {
  // Revocation is checked at the step boundary: quarantine between steps
  // revokes the handle, and the job migrates instead of touching a
  // partition that now spans dead hardware.
  if (!j.handle || !qd_->valid(*j.handle)) {
    migrate_job(j);
    return;
  }

  JobContext ctx;
  ctx.comm = j.comm.get();
  ctx.partition = qd_->partition(*j.handle);
  ctx.step = j.step;
  ctx.resume = j.resume_pending ? &j.checkpoint : nullptr;
  ctx.output = &j.output;

  const Cycle t0 = machine_->engine().now();
  const StepStatus st = j.spec.body(ctx);
  const Cycle dt = machine_->engine().now() - t0;
  j.resume_pending = false;
  ++j.step;
  j.cycles_run += dt;
  j.cycles_this_attempt += dt;
  usage_[j.spec.user] += dt;

  switch (st) {
    case StepStatus::kDone:
      deliver_output(j);
      finish(j, true, fault::JobFailure::kNone,
             "completed after " + std::to_string(j.step) + " steps");
      return;
    case StepStatus::kError:
      finish(j, false, fault::JobFailure::kApplicationError,
             "job body reported failure at step " + std::to_string(j.step));
      return;
    case StepStatus::kYield:
      if (!ctx.checkpoint.empty()) {
        j.checkpoint = std::move(ctx.checkpoint);
        j.have_checkpoint = true;
      }
      break;
  }

  if (j.spec.deadline_cycles > 0 &&
      j.cycles_this_attempt > j.spec.deadline_cycles) {
    requeue_after_deadline(j);
  }
}

void JobScheduler::requeue_after_deadline(Job& j) {
  ++j.requeues;
  ++report_.requeues;
  if (j.requeues > j.spec.max_requeues) {
    finish(j, false, fault::JobFailure::kDeadlineExpired,
           "deadline of " + std::to_string(j.spec.deadline_cycles) +
               " cycles exceeded on attempt " + std::to_string(j.requeues));
    return;
  }
  if (j.handle) {
    qd_->release_partition(*j.handle);
    j.handle.reset();
    j.comm.reset();
  }
  j.resume_pending = j.have_checkpoint;
  record(j, JobState::kQueued,
         "deadline expired; re-queued (attempt " +
             std::to_string(j.requeues + 1) + "/" +
             std::to_string(j.spec.max_requeues + 1) + ")");
}

void JobScheduler::migrate_job(Job& j) {
  record(j, JobState::kMigrating,
         "partition revoked: " +
             (j.handle ? qd_->revocation_reason(*j.handle) : "released"));

  // The checkpoint must be captured from a quiescent machine: no DMA in
  // flight, no pending events beyond the re-armable services.  The job is
  // between steps so nothing new is being issued; drain the stragglers.
  const QuiesceOptions qopts{cfg_.injector};
  const QuiesceReport q = drain_to_quiescence(*machine_, qopts);
  if (!q) {
    finish(j, false, fault::JobFailure::kCheckpointLost,
           "drain to quiescence failed: " + q.detail);
    return;
  }
  if (!persist_checkpoint(j)) {
    finish(j, false, fault::JobFailure::kCheckpointLost,
           "checkpoint persistence failed");
    return;
  }
  if (cfg_.on_migration_captured) cfg_.on_migration_captured(j.id);

  // Teardown returns the surviving nodes through a health re-sweep; the
  // quarantined ones stay out of the pool, and their cached boot images
  // were invalidated by the quarantine callback.
  if (j.handle) {
    qd_->release_partition(*j.handle);
    j.handle.reset();
    j.comm.reset();
  }
  ++j.migrations;
  ++report_.migrations;
  j.failure = fault::JobFailure::kPartitionRevoked;  // latest abnormal cause
  j.resume_pending = j.have_checkpoint;
  record(j, JobState::kQueued,
         j.have_checkpoint
             ? "re-queued with checkpoint at step " + std::to_string(j.step)
             : "re-queued for restart (no checkpoint yielded yet)");
  if (!j.have_checkpoint) j.step = 0;
}

bool JobScheduler::persist_checkpoint(Job& j) {
  if (cfg_.snapshot_dir.empty()) return true;  // in-memory migration only
  snapshot::SnapshotStore store = store_for(j);
  snapshot::SnapshotFile file;
  snapshot::ByteSink sink;
  sink.put_string(j.spec.name);
  sink.put_u64(j.step);
  sink.put_u64(j.cycles_run);
  sink.put_string(std::string(j.checkpoint.begin(), j.checkpoint.end()));
  file.add_section(snapshot::kSecJob, std::move(sink));
  const snapshot::Status st = store.save(&file);
  if (!st) {
    QCDOC_WARN << "scheduler: job '" << j.spec.name
               << "' checkpoint save failed: " << st.reason;
    return false;
  }
  return true;
}

void JobScheduler::try_resume_from_store(Job& j) {
  if (cfg_.snapshot_dir.empty()) return;
  snapshot::SnapshotStore store = store_for(j);
  snapshot::SnapshotFile file;
  if (!store.load_latest(&file)) return;  // nothing durable: fresh start
  std::optional<snapshot::ByteSource> src;
  if (!file.open(snapshot::kSecJob, &src)) return;
  std::string name, blob;
  u64 step = 0, cycles = 0;
  if (!src->get_string(&name) || name != j.spec.name) return;
  if (!src->get_u64(&step) || !src->get_u64(&cycles)) return;
  if (!src->get_string(&blob) || !src->expect_exhausted()) return;
  j.checkpoint.assign(blob.begin(), blob.end());
  j.have_checkpoint = !j.checkpoint.empty();
  if (!j.have_checkpoint) return;  // a step-0 save resumes as a fresh start
  j.resume_pending = true;
  j.step = step;
  j.cycles_run = cycles;
  record(j, j.state,
         "resumed from persisted checkpoint (generation " +
             std::to_string(file.generation()) + ", step " +
             std::to_string(step) + ")");
}

void JobScheduler::deliver_output(Job& j) {
  // The data stream returns to the user's qcsh over the Ethernet tree from
  // the partition's rank-0 node, like classic run_job output.
  if (!j.comm || !j.handle || !qd_->valid(*j.handle)) return;
  std::size_t bytes = 64;
  for (const std::string& line : j.output) bytes += line.size();
  bool delivered = false;
  const NodeId origin = j.comm->node_of_rank(0);
  qd_->ethernet().node_to_host(origin, bytes, [&delivered] {
    delivered = true;
  });
  machine_->engine().run_while([&delivered] { return !delivered; });
}

snapshot::SnapshotStore JobScheduler::store_for(const Job& j) const {
  return snapshot::SnapshotStore(cfg_.snapshot_dir,
                                 sanitize_stream(j.spec.name));
}

bool JobScheduler::pump_once() {
  bool progress = false;
  while (static_cast<int>(in_state(JobState::kRunning).size()) <
             cfg_.max_running &&
         try_start_one()) {
    progress = true;
  }
  if (step_one()) return true;
  if (progress) return true;

  // Nothing running or startable.  In-flight submissions arrive on their
  // own schedule; run the engine forward to the earliest arrival.
  Cycle next_arrival = 0;
  bool have_arrival = false;
  for (const auto& [id, j] : jobs_) {
    if (j.state != JobState::kSubmitting) continue;
    if (!have_arrival || j.arrive_at < next_arrival) {
      next_arrival = j.arrive_at;
      have_arrival = true;
    }
  }
  if (have_arrival) {
    machine_->engine().run_until(
        std::max(next_arrival, machine_->engine().now() + 1));
    return true;
  }

  const std::vector<JobId> queued = in_state(JobState::kQueued);
  if (!queued.empty()) {
    // Allocation failed with nothing running to wait for.  A transiently
    // degraded node (counter burst on a freed box) can block placement; a
    // fresh sweep re-baselines the deltas and usually clears it.
    qd_->health().sweep();
    if (try_start_one()) return true;
    Job& j = jobs_.at(pick_fair(queued));
    finish(j, false, fault::JobFailure::kPartitionRevoked,
           "no allocatable partition for box " + j.spec.box.to_string() +
               " (quarantine shrank the pool)");
    return true;
  }
  return false;
}

void JobScheduler::run_until_idle() {
  while (!idle()) {
    if (!pump_once()) break;
  }
}

void JobScheduler::run_for(Cycle duration) {
  sim::Engine& engine = machine_->engine();
  const Cycle end = engine.now() + duration;
  while (engine.now() < end) {
    if (!pump_once()) {
      engine.run_until(end);
    }
  }
}

bool JobScheduler::idle() const {
  for (const auto& [id, j] : jobs_) {
    if (j.state != JobState::kDone && j.state != JobState::kFailed) {
      return false;
    }
  }
  return true;
}

JobStatusInfo JobScheduler::status(JobId id) const {
  JobStatusInfo out;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return out;
  const Job& j = it->second;
  out.id = j.id;
  out.name = j.spec.name;
  out.user = j.spec.user;
  out.state = j.state;
  out.failure = j.failure;
  out.steps = j.step;
  out.requeues = j.requeues;
  out.migrations = j.migrations;
  out.cycles_run = j.cycles_run;
  out.detail = j.detail;
  out.output = j.output;
  return out;
}

std::vector<JobStatusInfo> JobScheduler::jobs() const {
  std::vector<JobStatusInfo> out;
  for (const auto& [id, j] : jobs_) out.push_back(status(id));
  return out;
}

std::vector<JobEvent> JobScheduler::events_since(JobId id,
                                                 std::size_t* cursor) const {
  std::vector<JobEvent> out;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return out;
  const std::vector<JobEvent>& ev = it->second.events;
  for (std::size_t i = *cursor; i < ev.size(); ++i) out.push_back(ev[i]);
  *cursor = ev.size();
  return out;
}

}  // namespace qcdoc::host
