#include "host/qcsh.h"

#include <algorithm>
#include <sstream>

namespace qcdoc::host {

Cycle RetryPolicy::delay(int attempt, Rng& rng) const {
  double d = static_cast<double>(base_delay_cycles);
  for (int i = 0; i < attempt; ++i) d *= multiplier;
  d = std::min(d, static_cast<double>(max_delay_cycles));
  const double jitter = 0.5 + 0.5 * rng.next_double();
  return static_cast<Cycle>(d * jitter) + 1;
}

SubmitOutcome submit_with_retry(JobScheduler& sched, const JobSpec& spec,
                                const RetryPolicy& policy, Rng& rng) {
  const int attempts = std::max(1, policy.max_attempts);
  SubmitOutcome out;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    out = sched.submit(spec);
    if (out.accepted || out.error == SubmitError::kBadRequest) return out;
    if (attempt + 1 >= attempts) return out;
    // Backoff in simulated time, honouring the scheduler's own hint; the
    // scheduler keeps pumping (draining the queue) while the client waits.
    const Cycle wait = std::max(out.retry_after, policy.delay(attempt, rng));
    sched.run_for(wait);
  }
  return out;
}
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

/// Parse "4x4x2x2x1x1" into a Shape; false on malformed input.
bool parse_shape(const std::string& text, torus::Shape* shape) {
  std::istringstream in(text);
  for (int d = 0; d < torus::kMaxDims; ++d) {
    int e = 0;
    if (!(in >> e) || e < 1) return false;
    shape->extent[d] = e;
    if (d + 1 < torus::kMaxDims) {
      char x = 0;
      if (!(in >> x) || (x != 'x' && x != 'X')) return false;
    }
  }
  return true;
}

}  // namespace

Qcsh::Qcsh(Qdaemon* daemon) : daemon_(daemon) {}

void Qcsh::register_application(const std::string& name, Application app) {
  applications_[name] = std::move(app);
}

void Qcsh::attach_scheduler(JobScheduler* sched, std::string user) {
  scheduler_ = sched;
  user_ = std::move(user);
}

void Qcsh::register_job(const std::string& name,
                        std::function<StepStatus(JobContext&)> body) {
  job_bodies_[name] = std::move(body);
}

std::vector<std::string> Qcsh::execute(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return {};
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "boot") return cmd_boot();
  if (cmd == "status") return cmd_status();
  if (cmd == "alloc") return cmd_alloc(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "release") return cmd_release(args);
  if (cmd == "partitions") return cmd_partitions();
  if (cmd == "submit") return cmd_submit(args);
  if (cmd == "jobs") return cmd_jobs();
  if (cmd == "job") return cmd_job(args);
  exit_code_ = 1;
  return {"qcsh: unknown command '" + cmd + "'"};
}

std::vector<std::string> Qcsh::run_script(const std::string& script) {
  std::vector<std::string> stream;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    auto out = execute(line);
    stream.insert(stream.end(), out.begin(), out.end());
  }
  return stream;
}

std::vector<std::string> Qcsh::cmd_boot() {
  const auto& report = daemon_->boot();
  std::ostringstream out;
  out << "booted " << report.nodes_ready << " nodes ("
      << report.jtag_packets << " jtag + " << report.udp_packets
      << " udp packets); partition interrupts "
      << (report.partition_interrupt_ok ? "ok" : "FAILED");
  return {out.str()};
}

std::vector<std::string> Qcsh::cmd_status() {
  if (!daemon_->booted()) {
    exit_code_ = 1;
    return {"qcsh: machine not booted"};
  }
  std::map<std::string, int> counts;
  const int n = daemon_->machine_nodes();
  for (int i = 0; i < n; ++i) {
    counts[to_string(daemon_->node_state(NodeId{static_cast<u32>(i)}))]++;
  }
  std::vector<std::string> out;
  for (const auto& [state, count] : counts) {
    out.push_back(state + ": " + std::to_string(count));
  }
  out.push_back("free: " + std::to_string(daemon_->free_nodes()));
  const auto failed = daemon_->failed_nodes();
  if (!failed.empty()) {
    std::string line = "failed nodes:";
    for (const auto nd : failed) line += " " + std::to_string(nd.value);
    out.push_back(line);
  }
  return out;
}

std::vector<std::string> Qcsh::cmd_alloc(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    exit_code_ = 1;
    return {"usage: alloc <name> <e0>x<e1>x<e2>x<e3>x<e4>x<e5> <dims>"};
  }
  torus::Shape box;
  if (!parse_shape(args[1], &box)) {
    exit_code_ = 1;
    return {"qcsh: bad shape '" + args[1] + "'"};
  }
  const int dims = std::atoi(args[2].c_str());
  if (dims < 1 || dims > torus::kMaxDims) {
    exit_code_ = 1;
    return {"qcsh: dimensionality must be 1..6"};
  }
  const auto handle = daemon_->allocate_partition(args[0], box, dims);
  if (!handle) {
    exit_code_ = 1;
    return {"qcsh: no free " + args[1] + " box"};
  }
  partitions_[args[0]] = *handle;
  return {"partition '" + args[0] + "': " +
          handle->partition->logical_shape().to_string() + " (" +
          std::to_string(handle->partition->num_nodes()) + " nodes)"};
}

std::vector<std::string> Qcsh::cmd_run(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    exit_code_ = 1;
    return {"usage: run <partition> <application> [args...]"};
  }
  auto pit = partitions_.find(args[0]);
  if (pit == partitions_.end()) {
    exit_code_ = 1;
    return {"qcsh: no partition '" + args[0] + "'"};
  }
  auto ait = applications_.find(args[1]);
  if (ait == applications_.end()) {
    exit_code_ = 1;
    return {"qcsh: no application '" + args[1] + "'"};
  }
  const std::vector<std::string> app_args(args.begin() + 2, args.end());
  const auto result = daemon_->run_job(
      pit->second,
      [&](comms::Communicator& comm, std::vector<std::string>& out) {
        ait->second(comm, app_args, out);
      });
  if (!result.ok) {
    exit_code_ = 1;
    return {"qcsh: job failed"};
  }
  return result.output;
}

std::vector<std::string> Qcsh::cmd_release(
    const std::vector<std::string>& args) {
  if (args.size() != 1 || partitions_.find(args[0]) == partitions_.end()) {
    exit_code_ = 1;
    return {"qcsh: no partition to release"};
  }
  daemon_->release_partition(partitions_[args[0]]);
  partitions_.erase(args[0]);
  return {"released '" + args[0] + "'"};
}

std::vector<std::string> Qcsh::cmd_partitions() {
  std::vector<std::string> out;
  for (const auto& [name, handle] : partitions_) {
    out.push_back(name + ": " +
                  handle.partition->logical_shape().to_string());
  }
  if (out.empty()) out.push_back("(none)");
  return out;
}

std::vector<std::string> Qcsh::cmd_submit(
    const std::vector<std::string>& args) {
  if (scheduler_ == nullptr) {
    exit_code_ = 1;
    return {"qcsh: no scheduler attached"};
  }
  if (args.size() != 4) {
    exit_code_ = 1;
    return {"usage: submit <job-name> <body> <e0>x<e1>x<e2>x<e3>x<e4>x<e5> "
            "<dims>"};
  }
  const auto bit = job_bodies_.find(args[1]);
  if (bit == job_bodies_.end()) {
    exit_code_ = 1;
    return {"qcsh: no job body '" + args[1] + "'"};
  }
  JobSpec spec;
  spec.name = args[0];
  spec.user = user_;
  spec.image = args[1];
  if (!parse_shape(args[2], &spec.box)) {
    exit_code_ = 1;
    return {"qcsh: bad shape '" + args[2] + "'"};
  }
  spec.logical_dims = std::atoi(args[3].c_str());
  spec.body = bit->second;
  const SubmitOutcome out =
      submit_with_retry(*scheduler_, spec, retry_policy_, retry_rng_);
  if (!out.accepted) {
    exit_code_ = 1;
    return {"qcsh: submit rejected (" + std::string(to_string(out.error)) +
            "): " + out.detail};
  }
  return {"job " + std::to_string(out.id) + " ('" + spec.name +
          "') accepted"};
}

std::vector<std::string> Qcsh::cmd_jobs() {
  if (scheduler_ == nullptr) {
    exit_code_ = 1;
    return {"qcsh: no scheduler attached"};
  }
  std::vector<std::string> out;
  for (const JobStatusInfo& j : scheduler_->jobs()) {
    out.push_back(std::to_string(j.id) + " " + j.name + " (" + j.user +
                  "): " + to_string(j.state) + ", " +
                  std::to_string(j.steps) + " steps, " +
                  std::to_string(j.migrations) + " migrations");
  }
  if (out.empty()) out.push_back("(no jobs)");
  return out;
}

std::vector<std::string> Qcsh::cmd_job(const std::vector<std::string>& args) {
  if (scheduler_ == nullptr) {
    exit_code_ = 1;
    return {"qcsh: no scheduler attached"};
  }
  if (args.size() != 1) {
    exit_code_ = 1;
    return {"usage: job <id>"};
  }
  const JobStatusInfo j = scheduler_->status(std::atoi(args[0].c_str()));
  if (j.id < 0) {
    exit_code_ = 1;
    return {"qcsh: no job '" + args[0] + "'"};
  }
  std::vector<std::string> out;
  out.push_back("job " + std::to_string(j.id) + " '" + j.name + "' user '" +
                j.user + "' state " + to_string(j.state));
  out.push_back("  steps " + std::to_string(j.steps) + ", requeues " +
                std::to_string(j.requeues) + ", migrations " +
                std::to_string(j.migrations) + ", cycles " +
                std::to_string(j.cycles_run));
  if (j.failure != fault::JobFailure::kNone) {
    out.push_back("  failure: " + std::string(fault::to_string(j.failure)) +
                  " (" + j.detail + ")");
  }
  std::size_t cursor = 0;
  for (const JobEvent& e : scheduler_->events_since(j.id, &cursor)) {
    out.push_back("  [" + std::to_string(e.at) + "] " +
                  to_string(e.state) + ": " + e.note);
  }
  for (const std::string& line : j.output) out.push_back("  > " + line);
  return out;
}

}  // namespace qcdoc::host
