#include "host/qcsh.h"

#include <sstream>

namespace qcdoc::host {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

/// Parse "4x4x2x2x1x1" into a Shape; false on malformed input.
bool parse_shape(const std::string& text, torus::Shape* shape) {
  std::istringstream in(text);
  for (int d = 0; d < torus::kMaxDims; ++d) {
    int e = 0;
    if (!(in >> e) || e < 1) return false;
    shape->extent[d] = e;
    if (d + 1 < torus::kMaxDims) {
      char x = 0;
      if (!(in >> x) || (x != 'x' && x != 'X')) return false;
    }
  }
  return true;
}

}  // namespace

Qcsh::Qcsh(Qdaemon* daemon) : daemon_(daemon) {}

void Qcsh::register_application(const std::string& name, Application app) {
  applications_[name] = std::move(app);
}

std::vector<std::string> Qcsh::execute(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return {};
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "boot") return cmd_boot();
  if (cmd == "status") return cmd_status();
  if (cmd == "alloc") return cmd_alloc(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "release") return cmd_release(args);
  if (cmd == "partitions") return cmd_partitions();
  exit_code_ = 1;
  return {"qcsh: unknown command '" + cmd + "'"};
}

std::vector<std::string> Qcsh::run_script(const std::string& script) {
  std::vector<std::string> stream;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    auto out = execute(line);
    stream.insert(stream.end(), out.begin(), out.end());
  }
  return stream;
}

std::vector<std::string> Qcsh::cmd_boot() {
  const auto& report = daemon_->boot();
  std::ostringstream out;
  out << "booted " << report.nodes_ready << " nodes ("
      << report.jtag_packets << " jtag + " << report.udp_packets
      << " udp packets); partition interrupts "
      << (report.partition_interrupt_ok ? "ok" : "FAILED");
  return {out.str()};
}

std::vector<std::string> Qcsh::cmd_status() {
  if (!daemon_->booted()) {
    exit_code_ = 1;
    return {"qcsh: machine not booted"};
  }
  std::map<std::string, int> counts;
  const int n = daemon_->machine_nodes();
  for (int i = 0; i < n; ++i) {
    counts[to_string(daemon_->node_state(NodeId{static_cast<u32>(i)}))]++;
  }
  std::vector<std::string> out;
  for (const auto& [state, count] : counts) {
    out.push_back(state + ": " + std::to_string(count));
  }
  out.push_back("free: " + std::to_string(daemon_->free_nodes()));
  const auto failed = daemon_->failed_nodes();
  if (!failed.empty()) {
    std::string line = "failed nodes:";
    for (const auto nd : failed) line += " " + std::to_string(nd.value);
    out.push_back(line);
  }
  return out;
}

std::vector<std::string> Qcsh::cmd_alloc(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    exit_code_ = 1;
    return {"usage: alloc <name> <e0>x<e1>x<e2>x<e3>x<e4>x<e5> <dims>"};
  }
  torus::Shape box;
  if (!parse_shape(args[1], &box)) {
    exit_code_ = 1;
    return {"qcsh: bad shape '" + args[1] + "'"};
  }
  const int dims = std::atoi(args[2].c_str());
  if (dims < 1 || dims > torus::kMaxDims) {
    exit_code_ = 1;
    return {"qcsh: dimensionality must be 1..6"};
  }
  const auto handle = daemon_->allocate_partition(args[0], box, dims);
  if (!handle) {
    exit_code_ = 1;
    return {"qcsh: no free " + args[1] + " box"};
  }
  partitions_[args[0]] = *handle;
  return {"partition '" + args[0] + "': " +
          handle->partition->logical_shape().to_string() + " (" +
          std::to_string(handle->partition->num_nodes()) + " nodes)"};
}

std::vector<std::string> Qcsh::cmd_run(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    exit_code_ = 1;
    return {"usage: run <partition> <application> [args...]"};
  }
  auto pit = partitions_.find(args[0]);
  if (pit == partitions_.end()) {
    exit_code_ = 1;
    return {"qcsh: no partition '" + args[0] + "'"};
  }
  auto ait = applications_.find(args[1]);
  if (ait == applications_.end()) {
    exit_code_ = 1;
    return {"qcsh: no application '" + args[1] + "'"};
  }
  const std::vector<std::string> app_args(args.begin() + 2, args.end());
  const auto result = daemon_->run_job(
      pit->second,
      [&](comms::Communicator& comm, std::vector<std::string>& out) {
        ait->second(comm, app_args, out);
      });
  if (!result.ok) {
    exit_code_ = 1;
    return {"qcsh: job failed"};
  }
  return result.output;
}

std::vector<std::string> Qcsh::cmd_release(
    const std::vector<std::string>& args) {
  if (args.size() != 1 || partitions_.find(args[0]) == partitions_.end()) {
    exit_code_ = 1;
    return {"qcsh: no partition to release"};
  }
  daemon_->release_partition(partitions_[args[0]]);
  partitions_.erase(args[0]);
  return {"released '" + args[0] + "'"};
}

std::vector<std::string> Qcsh::cmd_partitions() {
  std::vector<std::string> out;
  for (const auto& [name, handle] : partitions_) {
    out.push_back(name + ": " +
                  handle.partition->logical_shape().to_string());
  }
  if (out.empty()) out.push_back("(none)");
  return out;
}

}  // namespace qcdoc::host
