// Booting QCDOC (paper Sections 2.3 and 3.1).
//
// There are no PROMs on QCDOC.  The Ethernet/JTAG controller decodes UDP
// packets in pure hardware from power-on, so the host can write a boot
// kernel directly into each PPC 440's instruction cache (~100 UDP packets
// per node).  The boot kernel runs basic hardware tests of the ASIC and
// DRAM and initializes the standard 100 Mbit Ethernet controller; the run
// kernel is then loaded over it (another ~100 packets), initializes the SCU
// controllers and mesh, checks the partition interrupts, and determines the
// six-dimensional machine size.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "net/ethernet.h"

namespace qcdoc::host {

struct BootParams {
  int boot_kernel_packets = 100;   ///< via Ethernet/JTAG, from power-on
  int run_kernel_packets = 100;    ///< via the standard Ethernet controller
  std::size_t packet_payload_bytes = 1024;
  Cycle hw_test_cycles = 50000;    ///< ASIC + DRAM tests by the boot kernel
  Cycle scu_init_cycles = 20000;   ///< run kernel programs the SCUs
  /// Nodes whose boot-kernel hardware test fails (fault injection).  The
  /// qdaemon records them -- "keeping track of the status of the nodes
  /// (including hardware problems)" -- and never allocates them.
  std::vector<NodeId> failing_nodes;
};

enum class NodeBootState {
  kPoweredOff,
  kLoadingBootKernel,
  kHardwareTest,
  kHardwareFailed,
  kLoadingRunKernel,
  kScuInit,
  kReady,
};

const char* to_string(NodeBootState s);

struct BootReport {
  Cycle total_cycles = 0;
  Cycle link_training_cycles = 0;
  u64 jtag_packets = 0;
  u64 udp_packets = 0;
  bool partition_interrupt_ok = false;
  torus::Shape detected_shape;  ///< the run kernels' six-dimensional size
  int nodes_ready = 0;
  std::vector<NodeId> failed_nodes;  ///< hardware-test failures
  bool link_training_ok = true;      ///< every HSSL trained during boot
  /// Wires that never trained (dead cables / daughterboards).  Their
  /// endpoint nodes are demoted to hardware-failed and quarantined.
  std::vector<net::LinkRef> untrained_links;
};

/// Drives the full boot of a machine over the Ethernet tree and the mesh.
class BootSequencer {
 public:
  BootSequencer(machine::Machine* m, net::EthernetTree* eth,
                BootParams params = BootParams{});

  /// Run the boot to completion (executes the event engine).
  BootReport boot();

  NodeBootState state(NodeId n) const {
    return states_[n.value];
  }

 private:
  void load_boot_kernel(NodeId n);
  void load_run_kernel(NodeId n);

  machine::Machine* machine_;
  net::EthernetTree* eth_;
  BootParams params_;
  std::vector<NodeBootState> states_;
  std::vector<int> packets_pending_;
  int nodes_ready_ = 0;
  int nodes_failed_ = 0;
};

struct ImageCacheParams {
  /// A cold load streams this many UDP packets of `packet_payload_bytes`
  /// per node (the run-kernel half of a full boot; JTAG boot already ran).
  int packets_per_node = 100;
  std::size_t packet_payload_bytes = 1024;
  /// A warm start skips the stream: the image is resident, only the entry
  /// jump and SCU re-arm run.
  Cycle warm_start_cycles = 2000;
};

/// What one image load did and cost.
struct ImageLoadReport {
  Cycle cycles = 0;   ///< engine time the load consumed
  int cold_nodes = 0; ///< nodes that needed the full packet stream
  int warm_nodes = 0; ///< nodes that already held the image
};

/// Host-side cache of which application image is resident on which node.
///
/// Every job launch on real QCDOC re-streams its executable over the 100
/// Mbit Ethernet tree (~100 packets per node).  Under a multi-tenant
/// scheduler most launches reuse a handful of images, so the qdaemon keeps
/// a residency map and skips the stream when the requested image is already
/// loaded on every node of the partition -- amortizing the boot cost across
/// jobs.  Quarantining a node invalidates its entry (the replacement node
/// of a migrated job starts cold).
class BootImageCache {
 public:
  BootImageCache(machine::Machine* m, net::EthernetTree* eth,
                 ImageCacheParams params = ImageCacheParams{});

  /// Ensure `image` is resident on every node of `nodes`, streaming it to
  /// the cold ones (drives the engine until delivery completes).
  ImageLoadReport load(const std::string& image, std::span<const NodeId> nodes);

  /// Drop every image cached on `n` (node rebooted / quarantined / handed
  /// to another tenant in an unknown state).
  void invalidate_node(NodeId n);

  [[nodiscard]] bool resident(const std::string& image, NodeId n) const;
  u64 hits() const { return hits_; }     ///< warm node-loads served
  u64 misses() const { return misses_; } ///< cold node-loads streamed

 private:
  machine::Machine* machine_;
  net::EthernetTree* eth_;
  ImageCacheParams params_;
  /// image name -> per-node residency bit.
  std::map<std::string, std::vector<bool>> resident_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace qcdoc::host
