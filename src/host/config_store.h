// Gauge-configuration I/O over the Ethernet network (paper Section 3.2).
//
// "The kernel also includes support for NFS mounting of remote disks, which
// is already being used by application programs to write directly to the
// host disk system."  QCD's I/O is modest -- a configuration every few
// hours -- but it must be correct: configurations carry a NERSC-style
// header (dimensions, plaquette, checksum) that is verified on load.
//
// The model stores configurations on the simulated host disk; every byte
// travels over each node's 100 Mbit Ethernet through the hub tree, so save
// and load have real (simulated) I/O times.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lattice/gauge.h"
#include "machine/machine.h"
#include "net/ethernet.h"

namespace qcdoc::host {

/// Outcome of a configuration transfer.  [[nodiscard]]: silently dropping
/// an I/O failure is how corrupted gauge fields sneak into a run, so call
/// sites must look at `ok` (and `error` explains any failure).
struct [[nodiscard]] IoReport {
  bool ok = false;
  std::string error;  ///< empty when ok; otherwise why the transfer failed
  u64 bytes = 0;
  Cycle cycles = 0;
  double seconds = 0;
  double mb_per_s = 0;
};

class ConfigStore {
 public:
  ConfigStore(machine::Machine* m, net::EthernetTree* eth)
      : machine_(m), eth_(eth) {}

  /// Write a configuration to the host disk: every node streams its local
  /// links over its own Ethernet link (NFS-style), the host assembles them
  /// in global site order and records the verification header.
  IoReport save(const lattice::GaugeField& gauge, const std::string& name);

  /// Read a configuration back into (possibly differently distributed)
  /// node memories; fails -- with `error` naming the layer -- if the header
  /// does not match the target geometry, the payload is truncated relative
  /// to the header dimensions, or the checksum disagrees with the payload.
  IoReport load(lattice::GaugeField* gauge, const std::string& name);

  // Disk-corruption hooks for robustness tests: damage a stored image in
  // place the way a failing host disk or interrupted NFS write would.
  /// Drop all but the first `keep_doubles` payload values (torn write).
  bool truncate_stored(const std::string& name, std::size_t keep_doubles);
  /// Flip one bit of one payload double (silent media corruption).
  bool flip_stored_payload_bit(const std::string& name, std::size_t index,
                               int bit);
  /// Flip one bit of the stored header checksum.
  bool flip_stored_checksum_bit(const std::string& name, int bit);
  /// Overwrite the stored header dimensions (header/payload skew).
  bool override_stored_dims(const std::string& name,
                            const lattice::Coord4& dims);

  bool exists(const std::string& name) const { return disk_.count(name) != 0; }
  std::vector<std::string> list() const;
  /// Header plaquette of a stored configuration.
  double stored_plaquette(const std::string& name) const;

 private:
  struct Stored {
    lattice::Coord4 dims{};
    double plaquette = 0;
    u64 checksum = 0;
    std::vector<double> data;  // global site order, 4 links x 18 doubles
  };

  static u64 payload_checksum(const std::vector<double>& data);

  machine::Machine* machine_;
  net::EthernetTree* eth_;
  std::map<std::string, Stored> disk_;
};

}  // namespace qcdoc::host
