#include "host/diagnostics.h"

namespace qcdoc::host {

ChecksumReport Diagnostics::verify_checksums() const {
  ChecksumReport report;
  report.links_checked =
      machine_->num_nodes() * torus::kLinksPerNode;
  report.all_match =
      machine_->mesh().verify_link_checksums(&report.mismatches);
  return report;
}

LinkErrorScan Diagnostics::scan_link_errors() const {
  LinkErrorScan scan;
  for (int i = 0; i < machine_->num_nodes(); ++i) {
    const NodeId n{static_cast<u32>(i)};
    const auto& stats = machine_->mesh().stats(n);
    const u64 detected = stats.get("scu.detected_errors");
    const u64 undetected = stats.get("scu.undetected_errors");
    const u64 resends =
        stats.get("scu.nack_resends") + stats.get("scu.timeout_resends");
    scan.detected_errors += detected;
    scan.undetected_errors += undetected;
    scan.resends += resends;
    if (detected + undetected + resends > 0) scan.suspect_nodes.push_back(n);
  }
  return scan;
}

void Diagnostics::jtag_round_trip(NodeId n) {
  // One command packet down, one response packet up; run to delivery.
  bool done = false;
  eth_->host_to_node(n, 64, net::EthKind::kJtag, [this, n, &done] {
    eth_->node_to_host(n, 64, [&done] { done = true; });
  });
  machine_->engine().run_while([&] { return !done; });
}

u64 Diagnostics::jtag_peek(NodeId n, u64 word_addr) {
  jtag_round_trip(n);
  return machine_->memory(n).read_word(word_addr);
}

void Diagnostics::jtag_poke(NodeId n, u64 word_addr, u64 value) {
  jtag_round_trip(n);
  machine_->memory(n).write_word(word_addr, value);
}

}  // namespace qcdoc::host
