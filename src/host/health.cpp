#include "host/health.h"

#include <algorithm>

#include "common/log.h"
#include "host/qdaemon.h"

namespace qcdoc::host {

const char* to_string(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kFailed: return "failed";
  }
  return "?";
}

HealthMonitor::HealthMonitor(machine::Machine* m, net::EthernetTree* eth,
                             Qdaemon* qd, HealthConfig cfg)
    : machine_(m), eth_(eth), qdaemon_(qd), cfg_(cfg) {
  const auto n = static_cast<std::size_t>(m->num_nodes());
  health_.assign(n, NodeHealth::kHealthy);
  resend_base_.assign(n * torus::kLinksPerNode, 0);
  recv_err_base_.assign(n * torus::kLinksPerNode, 0);
  mem_corrected_base_.assign(n, 0);
}

void HealthMonitor::classify_node(NodeId node, HealthSweep* out) {
  HealthSweep& rep = *out;
  net::MeshNet& mesh = machine_->mesh();
  const auto& topo = machine_->topology();
  const int i = static_cast<int>(node.value);

  const auto retrain_wire = [&](NodeId owner, torus::LinkIndex l) {
    if (!cfg_.auto_retrain) return;
    // retrain() is a no-op while already training, so a wire flagged by
    // both its sender and its receiver in one sweep retrains only once.
    if (mesh.wire(owner, l).state() == hssl::LinkState::kTraining) return;
    mesh.wire(owner, l).retrain();
    mesh.scu(owner).clear_link_fault(l);
    stats_.add("health.retrains");
    rep.retrained.push_back(net::LinkRef{owner, l});
  };

  // Ethernet/JTAG probe: one command/response round trip per node.  This
  // path decodes in pure hardware, so it works even on a node with no
  // software running (the paper's "probe a failing node").
  bool probe_done = false;
  eth_->host_to_node(node, 64, net::EthKind::kJtag, [this, node, &probe_done] {
    eth_->node_to_host(node, 64, [&probe_done] { probe_done = true; });
  });
  machine_->engine().run_while([&] { return !probe_done; });
  stats_.add("health.jtag_probes");

  NodeHealth verdict = NodeHealth::kHealthy;
  const net::NodeCondition cond = mesh.condition(node);
  if (cond != net::NodeCondition::kOk) {
    verdict = NodeHealth::kFailed;
    rep.notes.push_back("node " + std::to_string(i) + ": " +
                        net::to_string(cond));
  }

  scu::Scu& node_scu = mesh.scu(node);
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    const torus::LinkIndex link{l};
    const std::size_t w = static_cast<std::size_t>(i) * torus::kLinksPerNode +
                          static_cast<std::size_t>(l);
    const u64 resends = node_scu.send_side(link).resends();
    const u64 resend_delta = resends - resend_base_[w];
    resend_base_[w] = resends;
    const u64 errors = node_scu.recv_side(link).detected_errors();
    const u64 error_delta = errors - recv_err_base_[w];
    recv_err_base_[w] = errors;

    hssl::Hssl& wire = mesh.wire(node, link);
    if (wire.failed()) {
      // A dead outgoing wire makes the node unusable for mesh traffic.
      verdict = NodeHealth::kFailed;
      rep.notes.push_back("node " + std::to_string(i) + " link " +
                          std::to_string(l) + ": wire failed");
      continue;
    }
    const bool escalated = (node_scu.faulted_links() >> l) & 1u;
    if (escalated || resend_delta >= cfg_.degraded_resend_delta) {
      if (verdict == NodeHealth::kHealthy) verdict = NodeHealth::kDegraded;
      stats_.add("health.degraded_links");
      rep.notes.push_back("node " + std::to_string(i) + " link " +
                          std::to_string(l) +
                          (escalated ? ": link-fault escalation"
                                     : ": resend burst"));
      retrain_wire(node, link);
    }
    if (error_delta >= cfg_.degraded_error_delta) {
      // Our receive side saw the parity failures, but the marginal wire
      // is the *incoming* one, owned by the neighbour on the facing link.
      if (verdict == NodeHealth::kHealthy) verdict = NodeHealth::kDegraded;
      stats_.add("health.degraded_links");
      rep.notes.push_back("node " + std::to_string(i) + " link " +
                          std::to_string(l) + ": receive error burst");
      retrain_wire(topo.neighbor(node, link), torus::facing_link(link));
    }
  }

  // Memory resilience ladder (memsys/ecc.h).  Rung 1: a burst of ECC
  // single-bit corrections since the last sweep degrades the node.  Rung
  // 2: any machine check (uncorrectable codeword) degrades it and is
  // consumed here, re-arming the latch like a read-to-clear register.
  // Rung 3: enough lifetime uncorrectable errors fail and quarantine it.
  memsys::EccModel& ecc = mesh.memory(node).ecc();
  const u64 corrected_now = ecc.counters().corrected;
  const u64 corrected_delta =
      corrected_now - mem_corrected_base_[static_cast<std::size_t>(i)];
  mem_corrected_base_[static_cast<std::size_t>(i)] = corrected_now;
  rep.mem_corrected += corrected_delta;
  if (corrected_delta >= cfg_.degraded_corrected_mem_delta) {
    if (verdict == NodeHealth::kHealthy) verdict = NodeHealth::kDegraded;
    stats_.add("health.mem_corrected_bursts");
    rep.notes.push_back("node " + std::to_string(i) + ": " +
                        std::to_string(corrected_delta) +
                        " corrected memory errors since last sweep");
  }
  const auto checks = ecc.consume_machine_checks();
  if (!checks.empty()) {
    ++rep.machine_checked;
    rep.mem_uncorrectable += checks.size();
    stats_.add("health.mem_checks", checks.size());
    if (verdict == NodeHealth::kHealthy) verdict = NodeHealth::kDegraded;
    rep.notes.push_back("node " + std::to_string(i) + ": " +
                        std::to_string(checks.size()) +
                        " machine check(s), uncorrectable memory");
  }
  if (ecc.counters().uncorrectable >= cfg_.quarantine_mem_uncorrectable) {
    verdict = NodeHealth::kFailed;
    rep.notes.push_back("node " + std::to_string(i) + ": " +
                        std::to_string(ecc.counters().uncorrectable) +
                        " lifetime uncorrectable memory errors");
  }

  if (health_[static_cast<std::size_t>(i)] == NodeHealth::kFailed) {
    verdict = NodeHealth::kFailed;  // failure is sticky
  } else if (verdict == NodeHealth::kFailed) {
    rep.newly_failed.push_back(node);
    stats_.add("health.failed_nodes");
    if (cfg_.auto_quarantine && qdaemon_) qdaemon_->quarantine_node(node);
  }
  health_[static_cast<std::size_t>(i)] = verdict;
  switch (verdict) {
    case NodeHealth::kHealthy: ++rep.healthy; break;
    case NodeHealth::kDegraded: ++rep.degraded; break;
    case NodeHealth::kFailed: ++rep.failed; break;
  }
}

HealthSweep HealthMonitor::sweep() {
  ++sweeps_;
  stats_.add("health.sweeps");
  HealthSweep rep;
  const int n = machine_->num_nodes();
  for (int i = 0; i < n; ++i) {
    classify_node(NodeId{static_cast<u32>(i)}, &rep);
  }
  rep.at = machine_->engine().now();
  for (const auto& note : rep.notes) QCDOC_INFO << "health: " << note;
  return rep;
}

HealthSweep HealthMonitor::probe_nodes(std::span<const NodeId> nodes) {
  stats_.add("health.targeted_probes");
  HealthSweep rep;
  for (const NodeId n : nodes) classify_node(n, &rep);
  rep.at = machine_->engine().now();
  for (const auto& note : rep.notes) QCDOC_INFO << "health: " << note;
  return rep;
}

void HealthMonitor::report_external_failure(NodeId n,
                                            const std::string& reason) {
  if (health_[n.value] == NodeHealth::kFailed) return;
  health_[n.value] = NodeHealth::kFailed;
  stats_.add("health.failed_nodes");
  stats_.add("health.external_failures");
  QCDOC_INFO << "health: node " << n.value
             << " failed (external report): " << reason;
  if (cfg_.auto_quarantine && qdaemon_) qdaemon_->quarantine_node(n);
}

HealthMonitor::State HealthMonitor::capture_state() const {
  State st;
  st.health.reserve(health_.size());
  for (const NodeHealth h : health_) st.health.push_back(static_cast<u8>(h));
  st.resend_base = resend_base_;
  st.recv_err_base = recv_err_base_;
  st.mem_corrected_base = mem_corrected_base_;
  st.sweeps = sweeps_;
  return st;
}

bool HealthMonitor::restore_state(const State& state) {
  if (state.health.size() != health_.size() ||
      state.resend_base.size() != resend_base_.size() ||
      state.recv_err_base.size() != recv_err_base_.size() ||
      state.mem_corrected_base.size() != mem_corrected_base_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < health_.size(); ++i) {
    health_[i] = static_cast<NodeHealth>(state.health[i]);
  }
  resend_base_ = state.resend_base;
  recv_err_base_ = state.recv_err_base;
  mem_corrected_base_ = state.mem_corrected_base;
  sweeps_ = state.sweeps;
  return true;
}

void HealthMonitor::monitor_for(Cycle duration) {
  sim::Engine& engine = machine_->engine();
  const Cycle end = engine.now() + duration;
  while (engine.now() < end) {
    const Cycle next =
        std::min(end, engine.now() + cfg_.sweep_period_cycles);
    engine.run_until(next);
    sweep();
  }
}

}  // namespace qcdoc::host
