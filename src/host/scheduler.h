// Multi-tenant job scheduling on the qdaemon (paper Section 3.1, scaled up).
//
// The paper's qdaemon serves a handful of physicists one blocking job at a
// time.  This service turns it into an asynchronous multi-tenant scheduler:
// a queued submission API (the submission hop rides the simulated Ethernet
// tree as a host-affinity event), admission control with bounded queues and
// typed rejections carrying a retry-after backpressure hint, per-user
// fair-share accounting that orders both job starts and step interleaving,
// per-job cycle deadlines with bounded re-queue, and quarantine-driven
// migration: when the HealthMonitor quarantines a node under a running job,
// the scheduler drains the machine to quiescence, persists the job's last
// checkpoint through the SnapshotStore, tears down the revoked partition
// (health re-sweep included) and resumes the job bit-exactly on a fresh
// partition carved from clean nodes.
//
// Job bodies are cooperative: one call per *step*, returning kYield (more
// work remains; `checkpoint` holds enough bytes to resume), kDone or
// kError.  Steps run on the host with the engine stopped between them, so a
// body drives communicator operations exactly like a classic run_job
// application; the step boundary is where deadlines are checked, fair-share
// usage is charged, and migration can interpose.  Everything the scheduler
// decides is a deterministic function of submission order and engine time,
// so the whole service replays bit-identically at 1/2/4 threads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "host/boot.h"
#include "host/qdaemon.h"
#include "host/quiesce.h"
#include "snapshot/store.h"

namespace qcdoc::host {

using JobId = int;

enum class JobState {
  kSubmitting,  ///< accepted; the submission packet is still in flight
  kQueued,      ///< waiting for capacity and a free partition
  kRunning,     ///< resident on a partition, stepping
  kMigrating,   ///< checkpointed off a revoked partition, awaiting re-queue
  kDone,
  kFailed,
};
const char* to_string(JobState s);

enum class SubmitError {
  kNone,
  kQueueFull,      ///< global admission bound hit; retry after the hint
  kUserQuotaFull,  ///< per-user quota hit; retry after the hint
  kBadRequest,     ///< malformed spec; retrying cannot help
};
const char* to_string(SubmitError e);

/// Admission decision, returned synchronously by submit().
struct SubmitOutcome {
  bool accepted = false;
  JobId id = -1;                          ///< valid when accepted
  SubmitError error = SubmitError::kNone; ///< set when rejected
  /// Backpressure hint: engine cycles the client should wait before
  /// retrying (0 when accepted or when retrying is pointless).
  Cycle retry_after = 0;
  std::string detail;
};

enum class StepStatus {
  kYield,  ///< more steps remain; context.checkpoint resumes this one
  kDone,   ///< job finished; output is complete
  kError,  ///< job failed; no re-queue
};

/// What a job body sees on each step.
struct JobContext {
  comms::Communicator* comm = nullptr;
  const torus::Partition* partition = nullptr;
  /// Monotonic step index, continuous across re-queues and migrations.
  u64 step = 0;
  /// Checkpoint bytes from the previous yield when resuming on a fresh
  /// partition (or from the SnapshotStore after a crash); null on a fresh
  /// start.  The body must rebuild its state from these bytes -- results
  /// must not depend on where the partition was placed.
  const std::vector<u8>* resume = nullptr;
  std::vector<std::string>* output = nullptr;
  /// The body refills this on every kYield with the bytes a future resume
  /// needs.  Left empty, the job can only restart from step 0.
  std::vector<u8> checkpoint;
};

struct JobSpec {
  std::string name;   ///< unique per scheduler; keys the checkpoint stream
  std::string user;   ///< tenant for fair-share and quota accounting
  std::string image;  ///< executable image name for the boot-image cache
  torus::Shape box;   ///< machine box to allocate
  int logical_dims = 1;
  /// Per-attempt cycle budget checked at step boundaries (0 = none).  An
  /// attempt that exceeds it is re-queued with a fresh budget, at most
  /// `max_requeues` times, then fails as kDeadlineExpired.
  Cycle deadline_cycles = 0;
  int max_requeues = 1;
  /// Resume from the newest persisted checkpoint of this job name (crash
  /// recovery); a fresh start when none is loadable.
  bool resume_from_store = false;
  std::function<StepStatus(JobContext&)> body;
};

struct JobStatusInfo {
  JobId id = -1;
  std::string name, user;
  JobState state = JobState::kSubmitting;
  fault::JobFailure failure = fault::JobFailure::kNone;
  u64 steps = 0;
  int requeues = 0;
  int migrations = 0;
  Cycle cycles_run = 0;  ///< engine cycles charged to this job's steps
  std::string detail;
  std::vector<std::string> output;  ///< delivered after completion
};

/// One entry of a job's telemetry stream.
struct JobEvent {
  Cycle at = 0;
  JobState state = JobState::kSubmitting;
  std::string note;
};

struct SchedulerConfig {
  int max_queued = 16;           ///< global admission bound (queued jobs)
  int max_queued_per_user = 8;   ///< per-tenant quota (queued + running)
  int max_running = 2;           ///< jobs resident on partitions at once
  /// Engine cycles the submission packet spends on the Ethernet tree
  /// before the job becomes visible to the queue.
  Cycle submit_latency_cycles = 64;
  /// Backpressure hint attached to retryable rejections.
  Cycle retry_hint_cycles = 4096;
  /// Directory for persisted job checkpoints ("" = in-memory only; crash
  /// resume via resume_from_store needs a real directory).
  std::string snapshot_dir;
  /// Injector whose unfired plan events are service-owned during the
  /// drain-to-quiescence that precedes each migration capture.
  const fault::FaultInjector* injector = nullptr;
  ImageCacheParams image_cache;
  /// Test hook: fired after a migration checkpoint is durably persisted
  /// and before the job is re-queued (crash-consistency tests die here).
  std::function<void(JobId)> on_migration_captured;
};

struct SchedulerReport {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 rejected_queue_full = 0;
  u64 rejected_quota = 0;
  u64 rejected_bad_request = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 requeues = 0;
  u64 migrations = 0;
  /// Time-to-boot samples (allocation + image load, in engine cycles),
  /// split by whether the image load hit the cache on every node.
  std::vector<Cycle> cold_boot_cycles;
  std::vector<Cycle> warm_boot_cycles;
};

class JobScheduler {
 public:
  /// `qd` must outlive the scheduler and be booted before the first pump.
  JobScheduler(Qdaemon* qd, SchedulerConfig cfg = SchedulerConfig{});

  /// Admission decision now; on accept the job arrives in the queue after
  /// the submission hop (`submit_latency_cycles` of engine time).
  SubmitOutcome submit(JobSpec spec);

  /// Pump the service until every accepted job reached kDone or kFailed.
  void run_until_idle();
  /// Pump for at least `duration` engine cycles (the retry helpers wait
  /// this way so backoff consumes simulated time, not host time).
  void run_for(Cycle duration);
  /// True when no job is queued, in flight, or running.
  [[nodiscard]] bool idle() const;

  /// Per-user fair-share weight (default 1.0).  Usage is charged as engine
  /// cycles consumed by the user's steps; the queue and the step
  /// interleaving both pick the candidate with the least usage/share.
  void set_share(const std::string& user, double weight);

  JobStatusInfo status(JobId id) const;
  std::vector<JobStatusInfo> jobs() const;
  /// Streaming telemetry: events of `id` from `*cursor` on; advances
  /// `*cursor` past what was returned.  Poll with the same cursor to tail.
  std::vector<JobEvent> events_since(JobId id, std::size_t* cursor) const;

  const SchedulerReport& report() const { return report_; }
  BootImageCache& image_cache() { return image_cache_; }
  Qdaemon& qdaemon() { return *qd_; }

 private:
  struct Job {
    JobId id = -1;
    JobSpec spec;
    JobState state = JobState::kSubmitting;
    fault::JobFailure failure = fault::JobFailure::kNone;
    std::string detail;
    std::optional<PartitionHandle> handle;
    std::unique_ptr<comms::Communicator> comm;
    u64 step = 0;
    int requeues = 0;
    int migrations = 0;
    Cycle cycles_run = 0;       ///< lifetime cycles across attempts
    Cycle cycles_this_attempt = 0;
    Cycle arrive_at = 0;  ///< when the submission packet lands in the queue
    std::vector<u8> checkpoint;      ///< last yielded resume bytes
    bool have_checkpoint = false;
    /// The next step must receive the checkpoint as resume bytes (first
    /// step after a re-placement or a crash-recovery load).
    bool resume_pending = false;
    std::vector<std::string> output;
    std::vector<JobEvent> events;
    u64 submit_seq = 0;  ///< deterministic FIFO tie-break
  };

  void record(Job& j, JobState s, std::string note);
  void finish(Job& j, bool ok, fault::JobFailure f, std::string detail);
  /// Least usage/share among `candidates` (FIFO within a user); -1 if none.
  JobId pick_fair(const std::vector<JobId>& candidates) const;
  /// Try to place and boot one queued job; false if nothing startable.
  bool try_start_one();
  bool start_job(Job& j);
  /// Run one step of the running job chosen by fair share; false if none.
  bool step_one();
  void step_job(Job& j);
  /// Checkpoint + teardown + re-queue a job whose partition was revoked.
  void migrate_job(Job& j);
  void requeue_after_deadline(Job& j);
  /// Persist `j`'s checkpoint through the SnapshotStore (no-op without a
  /// snapshot_dir).  Returns false when the save failed.
  [[nodiscard]] bool persist_checkpoint(Job& j);
  /// Load the newest persisted checkpoint for `j.spec.name`, if any.
  void try_resume_from_store(Job& j);
  /// Send the finished job's data stream back over the Ethernet tree.
  void deliver_output(Job& j);
  /// One pump iteration; returns false when no progress was possible.
  bool pump_once();
  std::vector<JobId> in_state(JobState s) const;
  double usage_ratio(const std::string& user) const;
  snapshot::SnapshotStore store_for(const Job& j) const;

  Qdaemon* qd_;
  machine::Machine* machine_;
  SchedulerConfig cfg_;
  BootImageCache image_cache_;
  std::map<JobId, Job> jobs_;
  JobId next_id_ = 0;
  u64 submit_seq_ = 0;
  std::map<std::string, double> shares_;
  std::map<std::string, Cycle> usage_;
  SchedulerReport report_;
};

}  // namespace qcdoc::host
