// Machine health monitoring (paper Sections 2.3, 3.1 and 4).
//
// The qdaemon is "responsible for ... keeping track of the status of the
// nodes (including hardware problems)", and the Ethernet/JTAG controller is
// "an I/O path to monitor and probe a failing node" that works with no
// software running on it.  The HealthMonitor turns those two facts into a
// periodic sweep: probe every node over JTAG, read back the SCU link-fault
// and error counters, classify each node healthy / degraded / failed, and
// drive recovery -- retrain marginal serial links, quarantine dead nodes so
// the qdaemon never allocates a partition over them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "machine/machine.h"
#include "net/ethernet.h"
#include "sim/stats.h"

namespace qcdoc::host {

class Qdaemon;

enum class NodeHealth {
  kHealthy,   ///< no fault indications this sweep
  kDegraded,  ///< marginal links (resends / detected errors / escalations)
  kFailed,    ///< crashed, hung, or with dead outgoing wires; quarantined
};

const char* to_string(NodeHealth h);

struct HealthConfig {
  /// Cycles between sweeps when monitoring continuously.
  Cycle sweep_period_cycles = 1 << 16;
  /// A link whose send side resent at least this many words since the last
  /// sweep is marginal (a healthy link resends rarely).
  u64 degraded_resend_delta = 4;
  /// Same threshold on a receive side's detected (parity/type) errors.
  u64 degraded_error_delta = 4;
  /// A node whose ECC hardware corrected at least this many single-bit
  /// memory errors since the last sweep is degraded: the corrections are
  /// harmless individually, but a burst means a marginal DRAM cell or a
  /// particle-flux hot spot that will eventually produce an uncorrectable
  /// word.
  u64 degraded_corrected_mem_delta = 8;
  /// A node that has accumulated this many *uncorrectable* memory errors
  /// over its lifetime is failed and quarantined -- repeated machine
  /// checks mean bad silicon, not bad luck.
  u64 quarantine_mem_uncorrectable = 4;
  bool auto_retrain = true;     ///< retrain marginal / faulted wires
  bool auto_quarantine = true;  ///< quarantine failed nodes from allocation
};

/// What one sweep found and did.
struct HealthSweep {
  Cycle at = 0;
  int healthy = 0;
  int degraded = 0;
  int failed = 0;
  std::vector<NodeId> newly_failed;
  std::vector<net::LinkRef> retrained;
  std::vector<std::string> notes;  ///< human-readable findings
  u64 mem_corrected = 0;      ///< ECC single-bit corrections this interval
  u64 mem_uncorrectable = 0;  ///< machine checks consumed this sweep
  int machine_checked = 0;    ///< nodes that latched a machine check
};

class HealthMonitor {
 public:
  /// `qd` may be null (no quarantine sink: classification + retraining only).
  HealthMonitor(machine::Machine* m, net::EthernetTree* eth, Qdaemon* qd,
                HealthConfig cfg = HealthConfig{});

  /// Probe every node now (advances the engine by the JTAG round trips) and
  /// apply recovery actions.
  ///
  /// A sweep is genuinely GLOBAL: it reads every node's SCU fault and error
  /// counters, every memory controller's ECC tallies, and drives retraining
  /// on any marginal link -- its touched set is the whole machine, so it
  /// cannot ride inside a parallel window under the bounded-affinity
  /// host-event contract (DESIGN.md).  That is fine here: sweeps are rare
  /// (default every 2^16 cycles) and the engine pauses at a host slice for
  /// them.  Detectors that need to run *densely* alongside a job sample
  /// per-node instead -- see ScuWatchdog::arm() for the pattern.
  HealthSweep sweep();

  /// Run the engine for `duration` cycles, sweeping every sweep_period.
  /// Each sweep runs in its own host slice (a window seam); see sweep()
  /// for why the sweep cannot be decomposed into node-affine events.
  void monitor_for(Cycle duration);

  /// Targeted re-sweep: probe and re-classify only `nodes`, applying the
  /// full sweep policy (JTAG round trip, link/ECC deltas, retraining,
  /// quarantine) without touching the rest of the machine.  Partition
  /// teardown uses this so freed nodes return to the allocatable pool only
  /// after their health has been re-established -- a box released by a job
  /// that died on marginal hardware must not be handed to the next tenant
  /// unprobed.
  HealthSweep probe_nodes(std::span<const NodeId> nodes);

  /// Out-of-band failure report from another detector (e.g. the qdaemon's
  /// SCU watchdog): mark the node failed immediately -- without waiting for
  /// the next sweep -- and quarantine it if configured.  Idempotent.
  void report_external_failure(NodeId n, const std::string& reason);

  NodeHealth health(NodeId n) const { return health_[n.value]; }
  u64 sweeps() const { return sweeps_; }
  const sim::StatSet& stats() const { return stats_; }
  const HealthConfig& config() const { return cfg_; }

  /// Classification plus per-wire/per-node counter baselines as captured
  /// into a snapshot, so the first post-restore sweep judges the same
  /// interval it would have judged uninterrupted.
  struct State {
    std::vector<u8> health;  ///< NodeHealth per node
    std::vector<u64> resend_base;
    std::vector<u64> recv_err_base;
    std::vector<u64> mem_corrected_base;
    u64 sweeps = 0;
  };
  State capture_state() const;
  /// Returns false (and changes nothing) when the vector sizes do not match
  /// this machine's geometry.
  [[nodiscard]] bool restore_state(const State& state);

 private:
  /// One node's probe + classification + recovery actions -- the shared body
  /// of sweep() (all nodes) and probe_nodes() (a targeted subset).
  void classify_node(NodeId node, HealthSweep* rep);

  machine::Machine* machine_;
  net::EthernetTree* eth_;
  Qdaemon* qdaemon_;
  HealthConfig cfg_;

  std::vector<NodeHealth> health_;
  /// Per directed wire [node * kLinksPerNode + link]: counter baselines from
  /// the previous sweep, so each sweep judges the interval, not the total.
  std::vector<u64> resend_base_;
  std::vector<u64> recv_err_base_;
  /// Per node: ECC corrected-error baseline from the previous sweep.
  std::vector<u64> mem_corrected_base_;
  u64 sweeps_ = 0;
  sim::StatSet stats_;
};

}  // namespace qcdoc::host
