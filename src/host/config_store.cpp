#include "host/config_store.h"

#include <cstring>

#include "common/log.h"

namespace qcdoc::host {

using lattice::Coord4;
using lattice::kDoublesPerSu3;
using lattice::kNd;

namespace {

constexpr std::size_t kNfsChunkBytes = 1024;
constexpr int kLinkDoubles = kNd * kDoublesPerSu3;

/// Flat index of a global site in canonical (x fastest) order.
int global_index(const Coord4& g, const Coord4& extent) {
  return ((g[3] * extent[2] + g[2]) * extent[1] + g[1]) * extent[0] + g[0];
}

}  // namespace

u64 ConfigStore::payload_checksum(const std::vector<double>& data) {
  u64 sum = 0;
  for (double v : data) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    sum += bits;
  }
  return sum;
}

IoReport ConfigStore::save(const lattice::GaugeField& gauge,
                           const std::string& name) {
  const auto& geom = gauge.geometry();
  const auto& extent = geom.global_extent();
  const int gvol = extent[0] * extent[1] * extent[2] * extent[3];

  Stored stored;
  stored.dims = extent;
  stored.data.assign(static_cast<std::size_t>(gvol) * kLinkDoubles, 0.0);

  IoReport report;
  const Cycle start = machine_->engine().now();
  int packets_pending = 0;
  // Each node streams its local links to the host in NFS-sized chunks.
  for (int r = 0; r < geom.ranks(); ++r) {
    const u64 node_bytes = static_cast<u64>(geom.local().volume()) *
                           kLinkDoubles * sizeof(double);
    report.bytes += node_bytes;
    const NodeId node = gauge.field().comm().node_of_rank(r);
    for (u64 off = 0; off < node_bytes; off += kNfsChunkBytes) {
      ++packets_pending;
      eth_->node_to_host(node, std::min<u64>(kNfsChunkBytes, node_bytes - off),
                         [&packets_pending] { --packets_pending; });
    }
    // Functional content, assembled in canonical global order.
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const double* src = gauge.field().site(r, s);
      double* dst = stored.data.data() +
                    static_cast<std::size_t>(global_index(g, extent)) *
                        kLinkDoubles;
      std::memcpy(dst, src, kLinkDoubles * sizeof(double));
    }
  }
  machine_->engine().run_while([&] { return packets_pending > 0; });
  stored.plaquette = gauge.average_plaquette();
  stored.checksum = payload_checksum(stored.data);
  disk_[name] = std::move(stored);

  report.ok = true;
  report.cycles = machine_->engine().now() - start;
  report.seconds = machine_->seconds(report.cycles);
  report.mb_per_s =
      report.seconds > 0 ? report.bytes / report.seconds / 1e6 : 0;
  QCDOC_INFO << "saved configuration '" << name << "': " << report.bytes
             << " bytes in " << report.seconds << " s";
  return report;
}

IoReport ConfigStore::load(lattice::GaugeField* gauge,
                           const std::string& name) {
  IoReport report;
  auto it = disk_.find(name);
  if (it == disk_.end()) return report;
  const Stored& stored = it->second;

  const auto& geom = gauge->geometry();
  const auto& extent = geom.global_extent();
  if (stored.dims != extent) {
    QCDOC_WARN << "configuration '" << name << "' has wrong dimensions";
    return report;
  }
  if (payload_checksum(stored.data) != stored.checksum) {
    QCDOC_WARN << "configuration '" << name << "' failed its checksum";
    return report;
  }

  const Cycle start = machine_->engine().now();
  int packets_pending = 0;
  for (int r = 0; r < geom.ranks(); ++r) {
    const u64 node_bytes = static_cast<u64>(geom.local().volume()) *
                           kLinkDoubles * sizeof(double);
    report.bytes += node_bytes;
    const NodeId node = gauge->field().comm().node_of_rank(r);
    for (u64 off = 0; off < node_bytes; off += kNfsChunkBytes) {
      ++packets_pending;
      eth_->host_to_node(node, std::min<u64>(kNfsChunkBytes, node_bytes - off),
                         net::EthKind::kUdp,
                         [&packets_pending] { --packets_pending; });
    }
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const double* src = stored.data.data() +
                          static_cast<std::size_t>(global_index(g, extent)) *
                              kLinkDoubles;
      std::memcpy(gauge->field().site(r, s), src,
                  kLinkDoubles * sizeof(double));
    }
  }
  machine_->engine().run_while([&] { return packets_pending > 0; });
  // Header verification: the reloaded field must reproduce the plaquette.
  const double plaq = gauge->average_plaquette();
  if (plaq != stored.plaquette) {
    QCDOC_WARN << "configuration '" << name
               << "' plaquette mismatch after load";
    return report;
  }
  report.ok = true;
  report.cycles = machine_->engine().now() - start;
  report.seconds = machine_->seconds(report.cycles);
  report.mb_per_s =
      report.seconds > 0 ? report.bytes / report.seconds / 1e6 : 0;
  return report;
}

std::vector<std::string> ConfigStore::list() const {
  std::vector<std::string> names;
  for (const auto& [name, cfg] : disk_) names.push_back(name);
  return names;
}

double ConfigStore::stored_plaquette(const std::string& name) const {
  auto it = disk_.find(name);
  return it == disk_.end() ? 0.0 : it->second.plaquette;
}

}  // namespace qcdoc::host
