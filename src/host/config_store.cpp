#include "host/config_store.h"

#include <cstring>

#include "common/log.h"

namespace qcdoc::host {

using lattice::Coord4;
using lattice::kDoublesPerSu3;
using lattice::kNd;

namespace {

constexpr std::size_t kNfsChunkBytes = 1024;
constexpr int kLinkDoubles = kNd * kDoublesPerSu3;

/// Flat index of a global site in canonical (x fastest) order.
int global_index(const Coord4& g, const Coord4& extent) {
  return ((g[3] * extent[2] + g[2]) * extent[1] + g[1]) * extent[0] + g[0];
}

}  // namespace

u64 ConfigStore::payload_checksum(const std::vector<double>& data) {
  u64 sum = 0;
  for (double v : data) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    sum += bits;
  }
  return sum;
}

IoReport ConfigStore::save(const lattice::GaugeField& gauge,
                           const std::string& name) {
  const auto& geom = gauge.geometry();
  const auto& extent = geom.global_extent();
  const int gvol = extent[0] * extent[1] * extent[2] * extent[3];

  Stored stored;
  stored.dims = extent;
  stored.data.assign(static_cast<std::size_t>(gvol) * kLinkDoubles, 0.0);

  IoReport report;
  const Cycle start = machine_->engine().now();
  int packets_pending = 0;
  // Each node streams its local links to the host in NFS-sized chunks.
  for (int r = 0; r < geom.ranks(); ++r) {
    const u64 node_bytes = static_cast<u64>(geom.local().volume()) *
                           kLinkDoubles * sizeof(double);
    report.bytes += node_bytes;
    const NodeId node = gauge.field().comm().node_of_rank(r);
    for (u64 off = 0; off < node_bytes; off += kNfsChunkBytes) {
      ++packets_pending;
      eth_->node_to_host(node, std::min<u64>(kNfsChunkBytes, node_bytes - off),
                         [&packets_pending] { --packets_pending; });
    }
    // Functional content, assembled in canonical global order.
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const double* src = gauge.field().site(r, s);
      double* dst = stored.data.data() +
                    static_cast<std::size_t>(global_index(g, extent)) *
                        kLinkDoubles;
      std::memcpy(dst, src, kLinkDoubles * sizeof(double));
    }
  }
  machine_->engine().run_while([&] { return packets_pending > 0; });
  stored.plaquette = gauge.average_plaquette();
  stored.checksum = payload_checksum(stored.data);
  disk_[name] = std::move(stored);

  report.ok = true;
  report.cycles = machine_->engine().now() - start;
  report.seconds = machine_->seconds(report.cycles);
  report.mb_per_s =
      report.seconds > 0 ? report.bytes / report.seconds / 1e6 : 0;
  QCDOC_INFO << "saved configuration '" << name << "': " << report.bytes
             << " bytes in " << report.seconds << " s";
  return report;
}

IoReport ConfigStore::load(lattice::GaugeField* gauge,
                           const std::string& name) {
  IoReport report;
  auto it = disk_.find(name);
  if (it == disk_.end()) {
    report.error = "no configuration named '" + name + "'";
    return report;
  }
  const Stored& stored = it->second;

  const auto& geom = gauge->geometry();
  const auto& extent = geom.global_extent();
  if (stored.dims != extent) {
    report.error = "configuration '" + name +
                   "' header dimensions do not match the target geometry";
    QCDOC_WARN << report.error;
    return report;
  }
  // Header/payload consistency *before* any per-site copy: a payload
  // shorter than the header's volume would otherwise be read past its end.
  const std::size_t expect_doubles =
      static_cast<std::size_t>(extent[0]) * extent[1] * extent[2] *
      extent[3] * kLinkDoubles;
  if (stored.data.size() != expect_doubles) {
    report.error = "configuration '" + name + "' payload is " +
                   (stored.data.size() < expect_doubles ? "truncated"
                                                        : "oversized") +
                   ": header implies " + std::to_string(expect_doubles) +
                   " doubles, stored " + std::to_string(stored.data.size());
    QCDOC_WARN << report.error;
    return report;
  }
  if (payload_checksum(stored.data) != stored.checksum) {
    report.error = "configuration '" + name +
                   "' failed its checksum (corrupt payload or header)";
    QCDOC_WARN << report.error;
    return report;
  }

  const Cycle start = machine_->engine().now();
  int packets_pending = 0;
  for (int r = 0; r < geom.ranks(); ++r) {
    const u64 node_bytes = static_cast<u64>(geom.local().volume()) *
                           kLinkDoubles * sizeof(double);
    report.bytes += node_bytes;
    const NodeId node = gauge->field().comm().node_of_rank(r);
    for (u64 off = 0; off < node_bytes; off += kNfsChunkBytes) {
      ++packets_pending;
      eth_->host_to_node(node, std::min<u64>(kNfsChunkBytes, node_bytes - off),
                         net::EthKind::kUdp,
                         [&packets_pending] { --packets_pending; });
    }
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const double* src = stored.data.data() +
                          static_cast<std::size_t>(global_index(g, extent)) *
                              kLinkDoubles;
      std::memcpy(gauge->field().site(r, s), src,
                  kLinkDoubles * sizeof(double));
    }
  }
  machine_->engine().run_while([&] { return packets_pending > 0; });
  // Header verification: the reloaded field must reproduce the plaquette.
  const double plaq = gauge->average_plaquette();
  if (plaq != stored.plaquette) {
    report.error =
        "configuration '" + name + "' plaquette mismatch after load";
    QCDOC_WARN << report.error;
    return report;
  }
  report.ok = true;
  report.cycles = machine_->engine().now() - start;
  report.seconds = machine_->seconds(report.cycles);
  report.mb_per_s =
      report.seconds > 0 ? report.bytes / report.seconds / 1e6 : 0;
  return report;
}

bool ConfigStore::truncate_stored(const std::string& name,
                                  std::size_t keep_doubles) {
  auto it = disk_.find(name);
  if (it == disk_.end() || keep_doubles >= it->second.data.size()) {
    return false;
  }
  it->second.data.resize(keep_doubles);
  return true;
}

bool ConfigStore::flip_stored_payload_bit(const std::string& name,
                                          std::size_t index, int bit) {
  auto it = disk_.find(name);
  if (it == disk_.end() || index >= it->second.data.size()) return false;
  u64 bits;
  std::memcpy(&bits, &it->second.data[index], sizeof(bits));
  bits ^= u64{1} << (bit & 63);
  std::memcpy(&it->second.data[index], &bits, sizeof(bits));
  return true;
}

bool ConfigStore::flip_stored_checksum_bit(const std::string& name, int bit) {
  auto it = disk_.find(name);
  if (it == disk_.end()) return false;
  it->second.checksum ^= u64{1} << (bit & 63);
  return true;
}

bool ConfigStore::override_stored_dims(const std::string& name,
                                       const lattice::Coord4& dims) {
  auto it = disk_.find(name);
  if (it == disk_.end()) return false;
  it->second.dims = dims;
  return true;
}

std::vector<std::string> ConfigStore::list() const {
  std::vector<std::string> names;
  for (const auto& [name, cfg] : disk_) names.push_back(name);
  return names;
}

double ConfigStore::stored_plaquette(const std::string& name) const {
  auto it = disk_.find(name);
  return it == disk_.end() ? 0.0 : it->second.plaquette;
}

}  // namespace qcdoc::host
