// Basic types and hardware constants shared across the QCDOC model.
//
// All quantities that appear in the SC'04 paper are collected in HwParams so
// that every bench/test refers to a single authoritative set of numbers.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

namespace qcdoc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated time is counted in CPU cycles of the node clock.  The global
/// 40 MHz clock and wall-clock conversions are derived from HwParams.
using Cycle = std::uint64_t;

/// Hardware parameters of one QCDOC configuration.  Defaults describe the
/// design-point 500 MHz machine; the paper also reports 360/420/450 MHz
/// operation for real installations.
struct HwParams {
  // --- Clocks ---------------------------------------------------------
  double cpu_clock_hz = 500e6;    ///< node clock; serial links run at this rate
  double global_clock_hz = 40e6;  ///< motherboard-distributed global clock

  // --- Processor (PPC 440 + FPU64) -------------------------------------
  int flops_per_cycle = 2;        ///< one fused multiply-add per cycle
  std::size_t icache_bytes = 32 * 1024;
  std::size_t dcache_bytes = 32 * 1024;
  std::size_t dcache_line_bytes = 32;

  // --- Memory system ----------------------------------------------------
  std::size_t edram_bytes = 4 * 1024 * 1024;  ///< on-chip embedded DRAM
  int edram_row_bits = 1024;                  ///< EDRAM read/write width
  int edram_cpu_word_bits = 128;              ///< data-cache connection width
  int edram_prefetch_streams = 2;             ///< concurrent prefetch streams
  Cycle edram_page_miss_cycles = 11;          ///< stream-switch penalty
  double ddr_bandwidth_Bps = 2.6e9;           ///< external DDR SDRAM
  std::size_t ddr_bytes = 128ull * 1024 * 1024;  ///< per-node DIMM (128MB-2GB)
  Cycle ddr_page_miss_cycles = 25;

  // --- Serial Communications Unit --------------------------------------
  int mesh_dims = 6;             ///< six-dimensional torus
  int links_per_node = 12;       ///< nearest neighbours in 6-D
  int scu_packet_header_bits = 8;
  int scu_data_bits = 64;        ///< normal-transfer payload word
  int scu_ack_window = 3;        ///< "three in the air" protocol
  Cycle scu_dma_setup_cycles = 150;   ///< DMA fetch + SCU injection path
  Cycle scu_dma_landing_cycles = 66;  ///< receive-side DMA store path
  int scu_global_passthrough_bits = 8;  ///< bits buffered before forwarding

  // --- Host / Ethernet ---------------------------------------------------
  double ethernet_bps = 100e6;       ///< per-node 100 Mbit Ethernet
  double cluster_net_latency_s = 7.5e-6;  ///< commodity net: "5-10 us to begin"
  double cluster_net_bandwidth_Bps = 125e6;  ///< GigE-class comparator

  // --- Derived -----------------------------------------------------------
  double peak_flops_per_node() const { return cpu_clock_hz * flops_per_cycle; }
  double cycle_seconds() const { return 1.0 / cpu_clock_hz; }
  double seconds(Cycle c) const { return static_cast<double>(c) / cpu_clock_hz; }
  Cycle cycles_from_seconds(double s) const {
    return static_cast<Cycle>(s * cpu_clock_hz + 0.5);
  }
  /// Serial-link payload efficiency: 64 data bits per 72-bit packet.
  double link_packet_efficiency() const {
    return static_cast<double>(scu_data_bits) /
           static_cast<double>(scu_data_bits + scu_packet_header_bits);
  }
  /// Raw per-link bandwidth in bytes/second (1 bit per CPU cycle).
  double link_raw_Bps() const { return cpu_clock_hz / 8.0; }
  /// Aggregate SCU bandwidth over 24 unidirectional links (paper: 1.3 GB/s).
  double scu_aggregate_Bps() const {
    return 2.0 * links_per_node * link_raw_Bps() * link_packet_efficiency();
  }
  /// CPU-to-EDRAM bandwidth (paper: 8 GB/s at 500 MHz).
  double edram_bandwidth_Bps() const {
    return cpu_clock_hz * edram_cpu_word_bits / 8.0;
  }
};

/// Identifies one processing node (ASIC + DIMM) within a machine.
struct NodeId {
  u32 value = 0;
  friend bool operator==(NodeId, NodeId) = default;
  friend auto operator<=>(NodeId, NodeId) = default;
};

}  // namespace qcdoc
