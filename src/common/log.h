// Minimal leveled logging.  The simulator is library code, so logging is off
// by default and routed through a single sink that tests can capture.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace qcdoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration.  Writes are serialized by a mutex and the
/// level gate is atomic, so events running on the parallel engine's worker
/// threads may log; set_sink()/set_level() should still happen only from
/// the main thread (typically before the simulation starts).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  static void set_sink(Sink sink);  ///< nullptr restores the stderr sink
  static void write(LogLevel level, const std::string& msg);
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

#define QCDOC_LOG(level)                        \
  if (!::qcdoc::Log::enabled(level)) {          \
  } else                                        \
    ::qcdoc::detail::LogLine(level)

#define QCDOC_DEBUG QCDOC_LOG(::qcdoc::LogLevel::kDebug)
#define QCDOC_INFO QCDOC_LOG(::qcdoc::LogLevel::kInfo)
#define QCDOC_WARN QCDOC_LOG(::qcdoc::LogLevel::kWarn)
#define QCDOC_ERROR QCDOC_LOG(::qcdoc::LogLevel::kError)

}  // namespace qcdoc
