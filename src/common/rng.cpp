#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace qcdoc {
namespace {

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ull;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::Rng(u64 seed, NodeId node) {
  // Mix the node id into the seed with a full splitmix pass so adjacent node
  // ids produce uncorrelated streams.
  u64 x = seed;
  u64 base = splitmix64(x);
  u64 y = base ^ (0x5851f42d4c957f2dull * (static_cast<u64>(node.value) + 1));
  for (auto& s : s_) s = splitmix64(y);
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

u64 Rng::next_below(u64 bound) {
  // Lemire's nearly-divisionless method is overkill here; simple rejection
  // keeps the stream layout obvious and still unbiased.
  if (bound == 0) return 0;
  const u64 threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() {
  Rng child(next_u64() ^ 0xa02bdbf7bb3c0a7ull);
  return child;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_spare = have_spare_gaussian_;
  std::memcpy(&st.spare_bits, &spare_gaussian_, sizeof(st.spare_bits));
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  have_spare_gaussian_ = st.have_spare;
  std::memcpy(&spare_gaussian_, &st.spare_bits, sizeof(spare_gaussian_));
}

}  // namespace qcdoc
