// Deterministic pseudo-random number generation.
//
// The paper's verification methodology (Section 4) depends on bit-identical
// re-runs of multi-day evolutions, so every stochastic element of the model
// (gauge configurations, injected link errors, workloads) draws from an
// explicitly seeded, splittable generator: xoshiro256** seeded via splitmix64,
// with an independent stream per node derived from (seed, node id).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace qcdoc {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded with splitmix64.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);
  /// Derive an independent per-node stream from a base seed.
  Rng(u64 seed, NodeId node);

  u64 next_u64();
  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform integer in [0, bound).
  u64 next_below(u64 bound);
  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double next_gaussian();
  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Create a child generator whose stream is independent of the parent's
  /// continued output (used for per-link error-injection streams).
  Rng split();

  /// Complete generator state: the four xoshiro words plus the Box-Muller
  /// spare (its presence flag and bit pattern).  Restoring this resumes the
  /// exact stream, which snapshots need for bit-identical replay.
  struct State {
    u64 s[4] = {0, 0, 0, 0};
    bool have_spare = false;
    u64 spare_bits = 0;  ///< IEEE-754 bit pattern of the spare gaussian
  };
  State state() const;
  void set_state(const State& st);

 private:
  u64 s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace qcdoc
