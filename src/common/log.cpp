#include "common/log.h"

#include <cstdio>

namespace qcdoc {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[qcdoc %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace qcdoc
