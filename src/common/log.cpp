#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace qcdoc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;  // serializes writes and guards the sink
Log::Sink g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& msg) {
  if (level < Log::level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  // qcdoc-lint: allow(raw-state-io) human-readable stderr logging, not state
  std::fprintf(stderr, "[qcdoc %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace qcdoc
