file(REMOVE_RECURSE
  "CMakeFiles/bench_dirac_efficiency.dir/bench_dirac_efficiency.cpp.o"
  "CMakeFiles/bench_dirac_efficiency.dir/bench_dirac_efficiency.cpp.o.d"
  "bench_dirac_efficiency"
  "bench_dirac_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dirac_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
