# Empty compiler generated dependencies file for bench_dirac_efficiency.
# This may be replaced when dependencies are built.
