# Empty dependencies file for bench_link_latency.
# This may be replaced when dependencies are built.
