file(REMOVE_RECURSE
  "CMakeFiles/bench_volume_sweep.dir/bench_volume_sweep.cpp.o"
  "CMakeFiles/bench_volume_sweep.dir/bench_volume_sweep.cpp.o.d"
  "bench_volume_sweep"
  "bench_volume_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
