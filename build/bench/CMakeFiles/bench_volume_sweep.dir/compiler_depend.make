# Empty compiler generated dependencies file for bench_volume_sweep.
# This may be replaced when dependencies are built.
