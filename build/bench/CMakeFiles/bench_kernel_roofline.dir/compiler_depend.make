# Empty compiler generated dependencies file for bench_kernel_roofline.
# This may be replaced when dependencies are built.
