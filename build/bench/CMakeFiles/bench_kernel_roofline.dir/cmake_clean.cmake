file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_roofline.dir/bench_kernel_roofline.cpp.o"
  "CMakeFiles/bench_kernel_roofline.dir/bench_kernel_roofline.cpp.o.d"
  "bench_kernel_roofline"
  "bench_kernel_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
