# Empty compiler generated dependencies file for bench_ack_window.
# This may be replaced when dependencies are built.
