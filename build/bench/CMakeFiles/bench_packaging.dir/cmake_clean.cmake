file(REMOVE_RECURSE
  "CMakeFiles/bench_packaging.dir/bench_packaging.cpp.o"
  "CMakeFiles/bench_packaging.dir/bench_packaging.cpp.o.d"
  "bench_packaging"
  "bench_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
