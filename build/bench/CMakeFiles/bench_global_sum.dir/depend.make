# Empty dependencies file for bench_global_sum.
# This may be replaced when dependencies are built.
