file(REMOVE_RECURSE
  "CMakeFiles/bench_global_sum.dir/bench_global_sum.cpp.o"
  "CMakeFiles/bench_global_sum.dir/bench_global_sum.cpp.o.d"
  "bench_global_sum"
  "bench_global_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
