# Empty dependencies file for bench_price_performance.
# This may be replaced when dependencies are built.
