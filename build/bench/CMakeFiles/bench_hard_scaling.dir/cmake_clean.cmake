file(REMOVE_RECURSE
  "CMakeFiles/bench_hard_scaling.dir/bench_hard_scaling.cpp.o"
  "CMakeFiles/bench_hard_scaling.dir/bench_hard_scaling.cpp.o.d"
  "bench_hard_scaling"
  "bench_hard_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hard_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
