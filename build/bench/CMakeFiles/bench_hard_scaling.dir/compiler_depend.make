# Empty compiler generated dependencies file for bench_hard_scaling.
# This may be replaced when dependencies are built.
