file(REMOVE_RECURSE
  "CMakeFiles/bench_reproducibility.dir/bench_reproducibility.cpp.o"
  "CMakeFiles/bench_reproducibility.dir/bench_reproducibility.cpp.o.d"
  "bench_reproducibility"
  "bench_reproducibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reproducibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
