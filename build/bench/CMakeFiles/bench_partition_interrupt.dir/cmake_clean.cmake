file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_interrupt.dir/bench_partition_interrupt.cpp.o"
  "CMakeFiles/bench_partition_interrupt.dir/bench_partition_interrupt.cpp.o.d"
  "bench_partition_interrupt"
  "bench_partition_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
