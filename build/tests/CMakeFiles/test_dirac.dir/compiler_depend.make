# Empty compiler generated dependencies file for test_dirac.
# This may be replaced when dependencies are built.
