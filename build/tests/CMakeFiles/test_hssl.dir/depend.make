# Empty dependencies file for test_hssl.
# This may be replaced when dependencies are built.
