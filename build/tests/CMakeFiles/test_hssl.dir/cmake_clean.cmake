file(REMOVE_RECURSE
  "CMakeFiles/test_hssl.dir/test_hssl.cpp.o"
  "CMakeFiles/test_hssl.dir/test_hssl.cpp.o.d"
  "test_hssl"
  "test_hssl.pdb"
  "test_hssl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
