# Empty compiler generated dependencies file for test_scu.
# This may be replaced when dependencies are built.
