file(REMOVE_RECURSE
  "CMakeFiles/test_scu.dir/test_scu.cpp.o"
  "CMakeFiles/test_scu.dir/test_scu.cpp.o.d"
  "test_scu"
  "test_scu.pdb"
  "test_scu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
