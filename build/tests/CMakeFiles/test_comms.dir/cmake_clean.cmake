file(REMOVE_RECURSE
  "CMakeFiles/test_comms.dir/test_comms.cpp.o"
  "CMakeFiles/test_comms.dir/test_comms.cpp.o.d"
  "test_comms"
  "test_comms.pdb"
  "test_comms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
