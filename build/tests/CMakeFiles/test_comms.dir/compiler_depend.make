# Empty compiler generated dependencies file for test_comms.
# This may be replaced when dependencies are built.
