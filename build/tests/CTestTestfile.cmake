# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_torus[1]_include.cmake")
include("/root/repo/build/tests/test_hssl[1]_include.cmake")
include("/root/repo/build/tests/test_scu[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_comms[1]_include.cmake")
include("/root/repo/build/tests/test_su3[1]_include.cmake")
include("/root/repo/build/tests/test_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_dirac[1]_include.cmake")
include("/root/repo/build/tests/test_cg[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
