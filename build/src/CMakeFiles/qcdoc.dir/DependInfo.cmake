
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/qcdoc.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/qcdoc.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/common/rng.cpp.o.d"
  "/root/repo/src/comms/comms.cpp" "src/CMakeFiles/qcdoc.dir/comms/comms.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/comms/comms.cpp.o.d"
  "/root/repo/src/comms/global_sum.cpp" "src/CMakeFiles/qcdoc.dir/comms/global_sum.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/comms/global_sum.cpp.o.d"
  "/root/repo/src/cpu/profile.cpp" "src/CMakeFiles/qcdoc.dir/cpu/profile.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/cpu/profile.cpp.o.d"
  "/root/repo/src/cpu/timing.cpp" "src/CMakeFiles/qcdoc.dir/cpu/timing.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/cpu/timing.cpp.o.d"
  "/root/repo/src/host/boot.cpp" "src/CMakeFiles/qcdoc.dir/host/boot.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/host/boot.cpp.o.d"
  "/root/repo/src/host/config_store.cpp" "src/CMakeFiles/qcdoc.dir/host/config_store.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/host/config_store.cpp.o.d"
  "/root/repo/src/host/diagnostics.cpp" "src/CMakeFiles/qcdoc.dir/host/diagnostics.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/host/diagnostics.cpp.o.d"
  "/root/repo/src/host/qcsh.cpp" "src/CMakeFiles/qcdoc.dir/host/qcsh.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/host/qcsh.cpp.o.d"
  "/root/repo/src/host/qdaemon.cpp" "src/CMakeFiles/qcdoc.dir/host/qdaemon.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/host/qdaemon.cpp.o.d"
  "/root/repo/src/hssl/hssl.cpp" "src/CMakeFiles/qcdoc.dir/hssl/hssl.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/hssl/hssl.cpp.o.d"
  "/root/repo/src/lattice/bicgstab.cpp" "src/CMakeFiles/qcdoc.dir/lattice/bicgstab.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/bicgstab.cpp.o.d"
  "/root/repo/src/lattice/cg.cpp" "src/CMakeFiles/qcdoc.dir/lattice/cg.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/cg.cpp.o.d"
  "/root/repo/src/lattice/clover.cpp" "src/CMakeFiles/qcdoc.dir/lattice/clover.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/clover.cpp.o.d"
  "/root/repo/src/lattice/dwf.cpp" "src/CMakeFiles/qcdoc.dir/lattice/dwf.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/dwf.cpp.o.d"
  "/root/repo/src/lattice/eo_cg.cpp" "src/CMakeFiles/qcdoc.dir/lattice/eo_cg.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/eo_cg.cpp.o.d"
  "/root/repo/src/lattice/field.cpp" "src/CMakeFiles/qcdoc.dir/lattice/field.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/field.cpp.o.d"
  "/root/repo/src/lattice/gamma.cpp" "src/CMakeFiles/qcdoc.dir/lattice/gamma.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/gamma.cpp.o.d"
  "/root/repo/src/lattice/gauge.cpp" "src/CMakeFiles/qcdoc.dir/lattice/gauge.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/gauge.cpp.o.d"
  "/root/repo/src/lattice/layout.cpp" "src/CMakeFiles/qcdoc.dir/lattice/layout.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/layout.cpp.o.d"
  "/root/repo/src/lattice/linalg.cpp" "src/CMakeFiles/qcdoc.dir/lattice/linalg.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/linalg.cpp.o.d"
  "/root/repo/src/lattice/observables.cpp" "src/CMakeFiles/qcdoc.dir/lattice/observables.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/observables.cpp.o.d"
  "/root/repo/src/lattice/staggered.cpp" "src/CMakeFiles/qcdoc.dir/lattice/staggered.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/staggered.cpp.o.d"
  "/root/repo/src/lattice/su3.cpp" "src/CMakeFiles/qcdoc.dir/lattice/su3.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/su3.cpp.o.d"
  "/root/repo/src/lattice/wilson.cpp" "src/CMakeFiles/qcdoc.dir/lattice/wilson.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/lattice/wilson.cpp.o.d"
  "/root/repo/src/machine/bsp.cpp" "src/CMakeFiles/qcdoc.dir/machine/bsp.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/machine/bsp.cpp.o.d"
  "/root/repo/src/machine/cost.cpp" "src/CMakeFiles/qcdoc.dir/machine/cost.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/machine/cost.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/qcdoc.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/machine/machine.cpp.o.d"
  "/root/repo/src/machine/packaging.cpp" "src/CMakeFiles/qcdoc.dir/machine/packaging.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/machine/packaging.cpp.o.d"
  "/root/repo/src/memsys/dcache.cpp" "src/CMakeFiles/qcdoc.dir/memsys/dcache.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/memsys/dcache.cpp.o.d"
  "/root/repo/src/memsys/ddr.cpp" "src/CMakeFiles/qcdoc.dir/memsys/ddr.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/memsys/ddr.cpp.o.d"
  "/root/repo/src/memsys/edram.cpp" "src/CMakeFiles/qcdoc.dir/memsys/edram.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/memsys/edram.cpp.o.d"
  "/root/repo/src/memsys/memsys.cpp" "src/CMakeFiles/qcdoc.dir/memsys/memsys.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/memsys/memsys.cpp.o.d"
  "/root/repo/src/net/cluster_net.cpp" "src/CMakeFiles/qcdoc.dir/net/cluster_net.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/net/cluster_net.cpp.o.d"
  "/root/repo/src/net/ethernet.cpp" "src/CMakeFiles/qcdoc.dir/net/ethernet.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/net/ethernet.cpp.o.d"
  "/root/repo/src/net/mesh_net.cpp" "src/CMakeFiles/qcdoc.dir/net/mesh_net.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/net/mesh_net.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/CMakeFiles/qcdoc.dir/perf/report.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/perf/report.cpp.o.d"
  "/root/repo/src/scu/dma.cpp" "src/CMakeFiles/qcdoc.dir/scu/dma.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/dma.cpp.o.d"
  "/root/repo/src/scu/global_ops.cpp" "src/CMakeFiles/qcdoc.dir/scu/global_ops.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/global_ops.cpp.o.d"
  "/root/repo/src/scu/link.cpp" "src/CMakeFiles/qcdoc.dir/scu/link.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/link.cpp.o.d"
  "/root/repo/src/scu/packet.cpp" "src/CMakeFiles/qcdoc.dir/scu/packet.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/packet.cpp.o.d"
  "/root/repo/src/scu/partition_interrupt.cpp" "src/CMakeFiles/qcdoc.dir/scu/partition_interrupt.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/partition_interrupt.cpp.o.d"
  "/root/repo/src/scu/scu.cpp" "src/CMakeFiles/qcdoc.dir/scu/scu.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/scu/scu.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/qcdoc.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/qcdoc.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/sim/stats.cpp.o.d"
  "/root/repo/src/torus/coords.cpp" "src/CMakeFiles/qcdoc.dir/torus/coords.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/torus/coords.cpp.o.d"
  "/root/repo/src/torus/partition.cpp" "src/CMakeFiles/qcdoc.dir/torus/partition.cpp.o" "gcc" "src/CMakeFiles/qcdoc.dir/torus/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
