file(REMOVE_RECURSE
  "libqcdoc.a"
)
