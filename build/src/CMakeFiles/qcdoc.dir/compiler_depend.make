# Empty compiler generated dependencies file for qcdoc.
# This may be replaced when dependencies are built.
