# Empty compiler generated dependencies file for hard_scaling.
# This may be replaced when dependencies are built.
