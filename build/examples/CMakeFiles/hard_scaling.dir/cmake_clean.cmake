file(REMOVE_RECURSE
  "CMakeFiles/hard_scaling.dir/hard_scaling.cpp.o"
  "CMakeFiles/hard_scaling.dir/hard_scaling.cpp.o.d"
  "hard_scaling"
  "hard_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
