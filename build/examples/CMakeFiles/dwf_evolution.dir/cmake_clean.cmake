file(REMOVE_RECURSE
  "CMakeFiles/dwf_evolution.dir/dwf_evolution.cpp.o"
  "CMakeFiles/dwf_evolution.dir/dwf_evolution.cpp.o.d"
  "dwf_evolution"
  "dwf_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwf_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
