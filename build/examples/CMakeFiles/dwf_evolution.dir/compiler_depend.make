# Empty compiler generated dependencies file for dwf_evolution.
# This may be replaced when dependencies are built.
