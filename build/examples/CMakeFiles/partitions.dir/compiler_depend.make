# Empty compiler generated dependencies file for partitions.
# This may be replaced when dependencies are built.
