file(REMOVE_RECURSE
  "CMakeFiles/partitions.dir/partitions.cpp.o"
  "CMakeFiles/partitions.dir/partitions.cpp.o.d"
  "partitions"
  "partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
