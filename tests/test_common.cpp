#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/log.h"
#include "common/rng.h"

namespace qcdoc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, PerNodeStreamsAreIndependent) {
  Rng a(7, NodeId{0});
  Rng b(7, NodeId{1});
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, AdjacentNodeStreamsUncorrelatedInLowBits) {
  // Average parity agreement between adjacent nodes should be ~50%.
  int agree = 0;
  const int n = 2000;
  Rng a(123, NodeId{10});
  Rng b(123, NodeId{11});
  for (int i = 0; i < n; ++i) {
    if ((a.next_u64() & 1) == (b.next_u64() & 1)) ++agree;
  }
  EXPECT_GT(agree, n / 2 - 150);
  EXPECT_LT(agree, n / 2 + 150);
}

TEST(Rng, UniformDoublesInRange) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBelowIsBoundedAndCoversResidues) {
  Rng r(5);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.next_below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentChild) {
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(HwParams, DerivedQuantitiesMatchPaper) {
  HwParams hw;
  EXPECT_DOUBLE_EQ(hw.peak_flops_per_node(), 1e9);        // 1 Gflops/node
  EXPECT_NEAR(hw.link_packet_efficiency(), 8.0 / 9.0, 1e-12);
  // 24 links x 500 Mbit/s x 8/9 = 1.333 GB/s (paper: "1.3 GBytes/second").
  EXPECT_NEAR(hw.scu_aggregate_Bps() / 1e9, 1.333, 0.01);
  EXPECT_NEAR(hw.edram_bandwidth_Bps() / 1e9, 8.0, 1e-9);  // 8 GB/s
}

TEST(Log, SinkCapturesMessagesAtOrAboveLevel) {
  std::vector<std::string> captured;
  Log::set_sink([&](LogLevel, const std::string& m) { captured.push_back(m); });
  Log::set_level(LogLevel::kWarn);
  QCDOC_DEBUG << "hidden";
  QCDOC_WARN << "shown " << 42;
  Log::set_sink(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "shown 42");
}

}  // namespace
}  // namespace qcdoc
