// Shared rig for the crash-consistent checkpoint/restart tests: one audited
// CG solve on a Qdaemon-managed partition that can run in three modes --
// uninterrupted reference, snapshot writer (optionally SIGKILLing itself at
// a chosen checkpoint, mid-CG), and resume (restore the latest good
// generation into a freshly replayed process and continue bit-exactly).
//
// The same function drives the tier-1 smoke test (4-node machine) and the
// slow 64-node acceptance test; only the scenario dimensions differ.
#pragma once

#include <bit>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/qdaemon.h"
#include "host/scheduler.h"
#include "lattice/cg.h"
#include "lattice/linalg.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"
#include "snapshot/machine_state.h"
#include "snapshot/store.h"

namespace qcdoc::snapshot::testing {

struct SolveScenario {
  std::array<int, 6> machine_extents;
  torus::Shape partition_box;
  lattice::Coord4 global;
  double kappa = 0.12;
  int fixed_iterations = 6;
  int audit_interval = 2;
  int sim_threads = 1;
};

struct SolveOutcome {
  bool job_ok = false;
  bool capture_ok = true;  ///< false if any checkpoint failed to persist
  int iterations = 0;
  u64 residual_bits = 0;  ///< std::bit_cast of the final relative residual
  u64 field_fnv = 0;      ///< FNV-1a over every bit of the solution field
  u64 trace_digest = 0;   ///< the engine's event-order digest
  Cycle end_cycle = 0;
  bool resumed = false;
  u64 recovered_generation = 0;
  std::vector<std::string> diagnostics;  ///< store fallback notes (resume)
  std::vector<std::string> log;
};

inline u64 field_bits_fnv(const lattice::DistField& f) {
  u64 h = sim::detail::kFnvOffset;
  for (int r = 0; r < f.ranks(); ++r) {
    for (const double v : f.data(r)) {
      h = sim::detail::fnv1a(h, std::bit_cast<u64>(v));
    }
  }
  return h;
}

inline void encode_solver(const lattice::CgCheckpoint& ck, ByteSink* sink) {
  sink->put_u32(static_cast<u32>(ck.iterations));
  sink->put_double(ck.rsq);
  sink->put_double(ck.rhs_norm2);
  sink->put_u32(static_cast<u32>(ck.restarts));
  sink->put_u64(ck.audits);
  sink->put_u64(ck.audit_failures);
  sink->put_u64(ck.mem_checks);
}

inline Status decode_solver(const SnapshotFile& file,
                            lattice::CgCheckpoint* ck) {
  std::optional<ByteSource> src;
  if (Status s = file.open(kSecSolver, &src); !s) return s;
  u32 iterations = 0, restarts = 0;
  if (Status s = src->get_u32(&iterations); !s) return s;
  if (Status s = src->get_double(&ck->rsq); !s) return s;
  if (Status s = src->get_double(&ck->rhs_norm2); !s) return s;
  if (Status s = src->get_u32(&restarts); !s) return s;
  if (Status s = src->get_u64(&ck->audits); !s) return s;
  if (Status s = src->get_u64(&ck->audit_failures); !s) return s;
  if (Status s = src->get_u64(&ck->mem_checks); !s) return s;
  ck->iterations = static_cast<int>(iterations);
  ck->restarts = static_cast<int>(restarts);
  return src->expect_exhausted();
}

/// Run the scenario's audited CG solve.
///   - `snapshot_dir == nullptr`: uninterrupted reference run.
///   - writer (`snapshot_dir` set, `resume` false): every clean checkpoint
///     is captured and committed as a new generation.  When
///     `kill_at_iteration >= 0`, the process raises SIGKILL right after the
///     save whose checkpoint is at that iteration -- dying mid-CG with the
///     generation durable on disk.
///   - resume (`resume` true): allocate the identical fields, restore the
///     newest good generation and continue the trajectory.
inline SolveOutcome run_solve(const SolveScenario& sc,
                              const std::string* snapshot_dir, bool resume,
                              int kill_at_iteration = -1) {
  SolveOutcome out;
  machine::MachineConfig cfg;
  cfg.shape.extent = sc.machine_extents;
  cfg.sim_threads = sc.sim_threads;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();
  auto handle = qd.allocate_partition("cg", sc.partition_box, 4);
  if (!handle) return out;

  fault::ChecksumAuditor auditor(&m.mesh());
  fault::MemCheckAuditor mem_auditor(&m.mesh(), handle->partition->nodes());
  fault::FaultInjector injector(&m.mesh());
  MachineExtras extras;
  extras.health = &qd.health();
  extras.auditor = &auditor;
  extras.mem_auditor = &mem_auditor;
  extras.injector = &injector;

  std::optional<SnapshotStore> store;
  if (snapshot_dir != nullptr) store.emplace(*snapshot_dir, "cg");

  const auto job = qd.run_job(*handle, [&](comms::Communicator& comm,
                                           std::vector<std::string>& log) {
    lattice::GlobalGeometry geom(handle->partition, sc.global);
    machine::BspRunner bsp(&m);
    cpu::CpuModel cpu(m.hw(), m.mem_timing());
    lattice::FieldOps ops(&bsp, &cpu, &comm);
    lattice::GaugeField gauge(&comm, &geom);
    Rng rng(77);
    gauge.randomize_near_unit(rng, 0.1);
    lattice::WilsonDirac op(&ops, &geom, &gauge,
                            lattice::WilsonParams{.kappa = sc.kappa});
    lattice::DistField x = op.make_field("x");
    lattice::DistField b = op.make_field("b");
    x.zero();
    lattice::testing::fill_by_global_site(geom, b);

    lattice::CgParams params;
    params.tolerance = 1e-8;
    params.fixed_iterations = sc.fixed_iterations;
    lattice::CgAuditParams audit;
    audit.clean = [&] { return auditor.clean_since_last(); };
    audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
    audit.interval = sc.audit_interval;

    lattice::CgCheckpoint resume_ck;
    std::optional<lattice::CgWorkspace> ws;
    if (resume) {
      // Allocation replay: the workspace must exist (in the solver's own
      // allocation order) before node memory is overwritten from disk.
      ws.emplace(lattice::CgWorkspace::make(op));
      SnapshotFile file;
      if (Status s = store->load_latest(&file, &out.diagnostics); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      out.recovered_generation = file.generation();
      if (Status s = restore_machine(m, extras, file); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      if (Status s = decode_solver(file, &resume_ck); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      audit.workspace = &*ws;
      audit.resume = &resume_ck;
      out.resumed = true;
    } else if (store.has_value()) {
      audit.on_checkpoint = [&](const lattice::CgCheckpoint& ck) {
        SnapshotFile file;
        if (Status s = capture_machine(m, extras, &file); !s) {
          out.capture_ok = false;
          log.push_back("capture failed: " + s.reason);
          return;
        }
        ByteSink solver;
        encode_solver(ck, &solver);
        file.add_section(kSecSolver, std::move(solver));
        if (Status s = store->save(&file); !s) {
          out.capture_ok = false;
          log.push_back("save failed: " + s.reason);
          return;
        }
        if (kill_at_iteration >= 0 && ck.iterations == kill_at_iteration) {
          raise(SIGKILL);  // die mid-CG; the generation above is durable
        }
      };
    }

    const lattice::CgResult r = cg_solve_audited(op, x, b, params, audit);
    out.iterations = r.iterations;
    out.residual_bits = std::bit_cast<u64>(r.relative_residual);
    out.field_fnv = field_bits_fnv(x);
  });
  out.job_ok = job.ok;
  out.log = job.output;
  out.end_cycle = m.engine().now();
  out.trace_digest = m.engine().trace_digest();
  return out;
}

// ---------------------------------------------------------------------------
// Scheduler-migration rig: one step-based job on the JobScheduler whose
// result is a placement-independent digest of per-step global sums, so a run
// that was quarantined off its partition mid-flight (and possibly SIGKILLed
// mid-migration, right after the checkpoint committed) must land on the same
// digest as the uninterrupted reference -- on any partition, at any thread
// count.

struct SchedScenario {
  std::array<int, 6> machine_extents{4, 2, 1, 1, 1, 1};
  torus::Shape box{{2, 2, 1, 1, 1, 1}};
  int logical_dims = 2;
  int total_steps = 8;
  /// At the start of this step the body quarantines its own rank-0 node
  /// (-1 = never): the handle is revoked mid-run and the scheduler must
  /// checkpoint the job off the box and resume it on clean nodes.
  int quarantine_at_step = -1;
  int sim_threads = 1;
};

struct SchedOutcome {
  bool accepted = false;
  host::JobState state = host::JobState::kSubmitting;
  fault::JobFailure failure = fault::JobFailure::kNone;
  u64 steps = 0;
  int requeues = 0;
  int migrations = 0;
  u64 result_bits = 0;  ///< digest of every global-sum value, in step order
  Cycle end_cycle = 0;
  u64 trace_digest = 0;
  std::vector<std::string> output;
  std::string detail;

  bool done() const { return state == host::JobState::kDone; }
};

/// Run the scenario's job to completion on a fresh machine.
///   - `snapshot_dir == nullptr`: in-memory only (reference / determinism
///     runs); a migration still works, it just is not crash-durable.
///   - `resume_from_store` true: before the first step, load the newest
///     persisted checkpoint of the job name from `snapshot_dir` and continue
///     from it (the crash-recovery path).
///   - `kill_at_migration` true: raise SIGKILL the moment a migration
///     checkpoint is durably on disk, before the re-queue -- the caller forks
///     first and reaps a SIGKILLed child, like run_solve's writer mode.
inline SchedOutcome run_sched_job(const SchedScenario& sc,
                                  const std::string* snapshot_dir,
                                  bool resume_from_store = false,
                                  bool kill_at_migration = false) {
  SchedOutcome out;
  machine::MachineConfig cfg;
  cfg.shape.extent = sc.machine_extents;
  cfg.sim_threads = sc.sim_threads;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();

  host::SchedulerConfig scfg;
  scfg.max_running = 1;
  if (snapshot_dir != nullptr) scfg.snapshot_dir = *snapshot_dir;
  if (kill_at_migration) {
    scfg.on_migration_captured = [](host::JobId) { raise(SIGKILL); };
  }
  host::JobScheduler sched(&qd, scfg);

  // The digest lives across steps like application state lives in node
  // memory; the checkpoint is its durable copy.  ctx.resume is only handed
  // over on the first step after a (re-)placement, so a mid-run step with
  // neither live state nor resume bytes means the checkpoint chain broke.
  struct StepperState {
    u64 acc = sim::detail::kFnvOffset;
    bool live = false;
  };
  auto state = std::make_shared<StepperState>();

  host::JobSpec spec;
  spec.name = "stepper";
  spec.user = "alice";
  spec.image = "stepper.elf";
  spec.box = sc.box;
  spec.logical_dims = sc.logical_dims;
  spec.resume_from_store = resume_from_store;
  spec.body = [&sc, &qd, &m, &out,
               state](host::JobContext& ctx) -> host::StepStatus {
    if (ctx.resume != nullptr) {
      ByteSource src(*ctx.resume, "sched-rig checkpoint");
      u64 step = 0, acc = 0;
      if (!src.get_u64(&step) || !src.get_u64(&acc) ||
          !src.expect_exhausted() || step != ctx.step) {
        return host::StepStatus::kError;
      }
      state->acc = acc;
      state->live = true;
    } else if (ctx.step == 0) {
      state->acc = sim::detail::kFnvOffset;
      state->live = true;
    } else if (!state->live) {
      return host::StepStatus::kError;  // checkpoint lost: digest unsound
    }
    if (static_cast<int>(ctx.step) == sc.quarantine_at_step) {
      // Fault injection from inside the job, at a deterministic step: the
      // scheduler notices the revoked handle at the next step boundary.
      qd.quarantine_node(ctx.partition->nodes()[0]);
    }
    const int ranks = ctx.partition->num_nodes();
    std::vector<double> contrib(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      contrib[static_cast<std::size_t>(r)] =
          1.0 / static_cast<double>(1 + r + 3 * static_cast<int>(ctx.step));
    }
    // The reduction is over logical ranks, so its bits cannot depend on
    // which machine box the partition occupies -- the property migration
    // must preserve.  The operation's cost is spent as engine time, which
    // is what deadlines and fair-share usage are charged in.
    const auto sum = ctx.comm->global_sum(contrib);
    m.engine().run_until(m.engine().now() + sum.cycles);
    state->acc = sim::detail::fnv1a(state->acc, std::bit_cast<u64>(sum.value));
    if (static_cast<int>(ctx.step) + 1 >= sc.total_steps) {
      out.result_bits = state->acc;
      ctx.output->push_back("digest " + std::to_string(state->acc));
      return host::StepStatus::kDone;
    }
    ByteSink sink;
    sink.put_u64(ctx.step + 1);
    sink.put_u64(state->acc);
    ctx.checkpoint = sink.take();
    return host::StepStatus::kYield;
  };

  const host::SubmitOutcome sub = sched.submit(spec);
  out.accepted = sub.accepted;
  if (!sub.accepted) {
    out.detail = sub.detail;
    return out;
  }
  sched.run_until_idle();

  const host::JobStatusInfo st = sched.status(sub.id);
  out.state = st.state;
  out.failure = st.failure;
  out.steps = st.steps;
  out.requeues = st.requeues;
  out.migrations = st.migrations;
  out.output = st.output;
  out.detail = st.detail;
  out.end_cycle = m.engine().now();
  out.trace_digest = m.engine().trace_digest();
  return out;
}

}  // namespace qcdoc::snapshot::testing
