// Unit tests for the bit-serial HSSL link model (paper Section 2.2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "hssl/hssl.h"
#include "sim/engine.h"

namespace qcdoc::hssl {
namespace {

struct Wire {
  sim::SerialEngine engine;
  sim::StatSet stats;
  HsslConfig cfg;
  std::unique_ptr<Hssl> link;

  explicit Wire(HsslConfig c = HsslConfig{}) : cfg(c) {
    link = std::make_unique<Hssl>(&engine, cfg, Rng(5), &stats);
  }
};

TEST(Hssl, NoTrafficBeforeTraining) {
  // "When powered on and released from reset, these HSSL controllers
  // transmit a known byte sequence ... establishing optimal times for
  // sampling": payload queued before training waits for it.
  Wire w;
  Cycle delivered_at = 0;
  w.link->power_on();
  w.link->transmit(72, [&](u64, int) { delivered_at = w.engine.now(); });
  w.engine.run_until_idle();
  EXPECT_TRUE(w.link->trained());
  EXPECT_EQ(w.link->trained_at(), w.cfg.training_cycles);
  EXPECT_EQ(delivered_at,
            w.cfg.training_cycles + 72 + w.cfg.wire_delay_cycles);
}

TEST(Hssl, FramesSerializeInFifoOrderAtOneBitPerCycle) {
  HsslConfig cfg;
  cfg.training_cycles = 8;
  Wire w(cfg);
  w.link->power_on();
  std::vector<std::pair<u64, Cycle>> deliveries;
  for (int i = 0; i < 4; ++i) {
    w.link->transmit(72, [&](u64 id, int) {
      deliveries.emplace_back(id, w.engine.now());
    });
  }
  w.engine.run_until_idle();
  ASSERT_EQ(deliveries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(deliveries[i].first, i);
    // Back-to-back frames: one every 72 cycles after training.
    EXPECT_EQ(deliveries[i].second,
              cfg.training_cycles + 72 * (i + 1) + cfg.wire_delay_cycles);
  }
}

TEST(Hssl, MixedFrameSizesKeepOrdering) {
  HsslConfig cfg;
  cfg.training_cycles = 4;
  Wire w(cfg);
  w.link->power_on();
  std::vector<u64> order;
  w.link->transmit(72, [&](u64 id, int) { order.push_back(id); });
  w.link->transmit(16, [&](u64 id, int) { order.push_back(id); });
  w.link->transmit(72, [&](u64 id, int) { order.push_back(id); });
  w.engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<u64>{0, 1, 2}));
}

TEST(Hssl, ErrorInjectionIsDeterministicAndCounted) {
  HsslConfig cfg;
  cfg.training_cycles = 4;
  cfg.bit_error_rate = 0.01;
  auto run = [&] {
    Wire w(cfg);
    w.link->power_on();
    std::vector<int> flips;
    for (int i = 0; i < 200; ++i) {
      w.link->transmit(72, [&](u64, int f) { flips.push_back(f); });
    }
    w.engine.run_until_idle();
    return std::make_pair(flips, w.stats.get("hssl.bits_flipped"));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // same seed, same corruption pattern
  EXPECT_EQ(a.second, b.second);
  u64 total = 0;
  for (int f : a.first) total += static_cast<u64>(f);
  EXPECT_EQ(total, a.second);
  // ~144 expected flips over 14400 bits; demand the right order of magnitude.
  EXPECT_GT(total, 50u);
  EXPECT_LT(total, 300u);
}

TEST(Hssl, IdleCyclesAccountTrainedButUnusedTime) {
  HsslConfig cfg;
  cfg.training_cycles = 10;
  Wire w(cfg);
  w.link->power_on();
  w.engine.run_until_idle();
  w.engine.run_until(1010);  // 1000 idle cycles after training
  EXPECT_EQ(w.link->idle_cycles(), 1000u);
  bool done = false;
  w.link->transmit(72, [&](u64, int) { done = true; });
  w.engine.run_until_idle();
  EXPECT_TRUE(done);
  // The 72 busy cycles do not count as idle.
  EXPECT_EQ(w.link->idle_cycles(),
            w.engine.now() - w.cfg.training_cycles - 72);
}

TEST(Hssl, ReadyCallbackFiresPerFreeSlot) {
  HsslConfig cfg;
  cfg.training_cycles = 4;
  Wire w(cfg);
  int ready = 0;
  w.link->set_ready_callback([&] { ++ready; });
  w.link->power_on();
  w.link->transmit(72, {});
  w.link->transmit(72, {});
  w.engine.run_until_idle();
  // The callback reports "serializer free AND queue empty": with two
  // pre-queued frames it fires exactly once, after the last frame -- the
  // contract the SCU send side relies on (it queues one frame at a time).
  EXPECT_EQ(ready, 1);
  w.link->transmit(16, {});
  w.engine.run_until_idle();
  EXPECT_EQ(ready, 2);
}

TEST(Hssl, RuntimeErrorRateChange) {
  Wire w;
  EXPECT_DOUBLE_EQ(w.link->bit_error_rate(), 0.0);
  w.link->set_bit_error_rate(1e-3);
  EXPECT_DOUBLE_EQ(w.link->bit_error_rate(), 1e-3);
}

TEST(Hssl, ErrorRateIsClampedToProbabilityRange) {
  Wire w;
  w.link->set_bit_error_rate(-0.5);
  EXPECT_DOUBLE_EQ(w.link->bit_error_rate(), 0.0);
  w.link->set_bit_error_rate(7.0);
  EXPECT_DOUBLE_EQ(w.link->bit_error_rate(), 1.0);
  w.link->set_bit_error_rate(std::nan(""));
  EXPECT_DOUBLE_EQ(w.link->bit_error_rate(), 0.0);
  HsslConfig cfg;
  cfg.bit_error_rate = 42.0;  // a bad config value is clamped on construction
  Wire clamped(cfg);
  EXPECT_DOUBLE_EQ(clamped.link->bit_error_rate(), 1.0);
}

TEST(Hssl, UnpoweredOrFailedLinkRejectsTraffic) {
  Wire w;
  // Never powered on: no training sequence has run.
  EXPECT_EQ(w.link->state(), LinkState::kDown);
  EXPECT_EQ(w.link->transmit(72, {}), Hssl::kRejected);
  EXPECT_EQ(w.link->rejected_frames(), 1u);

  w.link->power_on();
  w.engine.run_until_idle();
  EXPECT_TRUE(w.link->trained());

  w.link->fail();
  EXPECT_TRUE(w.link->failed());
  EXPECT_FALSE(w.link->busy());
  EXPECT_EQ(w.link->transmit(72, {}), Hssl::kRejected);
  EXPECT_EQ(w.link->rejected_frames(), 2u);
  EXPECT_EQ(w.stats.get("hssl.rejected_frames"), 2u);
}

TEST(Hssl, FailDropsInFlightFramesAndRetrainRecovers) {
  HsslConfig cfg;
  cfg.training_cycles = 8;
  Wire w(cfg);
  w.link->power_on();
  w.engine.run_until_idle();

  bool lost_delivered = false;
  w.link->transmit(72, [&](u64, int) { lost_delivered = true; });
  w.engine.run_until(cfg.training_cycles + 10);  // mid-serialization
  w.link->fail();
  w.engine.run_until_idle();
  EXPECT_FALSE(lost_delivered);  // the bits died on the wire
  EXPECT_EQ(w.stats.get("hssl.failures"), 1u);

  // Host-commanded recovery: retraining re-runs the byte sequence and the
  // link carries traffic again.
  w.link->retrain();
  EXPECT_EQ(w.link->state(), LinkState::kTraining);
  bool delivered = false;
  w.link->transmit(72, [&](u64, int) { delivered = true; });
  w.engine.run_until_idle();
  EXPECT_TRUE(w.link->trained());
  EXPECT_TRUE(delivered);
  EXPECT_EQ(w.link->times_trained(), 2u);
  EXPECT_EQ(w.stats.get("hssl.retrains"), 1u);
}

TEST(Hssl, RetrainFromTrainedRefindsSamplingPoint) {
  HsslConfig cfg;
  cfg.training_cycles = 8;
  Wire w(cfg);
  w.link->power_on();
  w.engine.run_until_idle();
  const Cycle first_trained_at = w.link->trained_at();
  w.link->retrain();
  w.engine.run_until_idle();
  EXPECT_TRUE(w.link->trained());
  EXPECT_GT(w.link->trained_at(), first_trained_at);
  EXPECT_EQ(w.link->times_trained(), 2u);
}

}  // namespace
}  // namespace qcdoc::hssl
