#include <gtest/gtest.h>

#include <set>

#include "torus/coords.h"
#include "torus/partition.h"

namespace qcdoc::torus {
namespace {

Shape make_shape(std::array<int, 6> e) {
  Shape s;
  s.extent = e;
  return s;
}

TEST(Shape, VolumeAndDims) {
  const Shape s = make_shape({8, 4, 4, 2, 2, 2});
  EXPECT_EQ(s.volume(), 1024);
  EXPECT_EQ(s.dims_used(), 6);
  EXPECT_EQ(make_shape({4, 4, 1, 1, 1, 1}).dims_used(), 2);
}

TEST(Torus, IdCoordRoundTrip) {
  const Torus t(make_shape({3, 4, 2, 2, 1, 5}));
  for (int n = 0; n < t.num_nodes(); ++n) {
    const NodeId id{static_cast<u32>(n)};
    EXPECT_EQ(t.id(t.coord(id)), id);
  }
}

TEST(Torus, NeighborWrapsAround) {
  const Torus t(make_shape({4, 1, 1, 1, 1, 1}));
  const NodeId n0{0};
  EXPECT_EQ(t.neighbor(n0, 0, Dir::kPlus).value, 1u);
  EXPECT_EQ(t.neighbor(n0, 0, Dir::kMinus).value, 3u);
  EXPECT_EQ(t.neighbor(NodeId{3}, 0, Dir::kPlus).value, 0u);
}

TEST(Torus, NeighborIsInvolutionThroughFacingLink) {
  const Torus t(make_shape({4, 4, 2, 2, 2, 2}));
  for (int n = 0; n < t.num_nodes(); ++n) {
    for (int l = 0; l < kLinksPerNode; ++l) {
      const NodeId from{static_cast<u32>(n)};
      const LinkIndex link{l};
      const NodeId to = t.neighbor(from, link);
      EXPECT_EQ(t.neighbor(to, facing_link(link)), from);
    }
  }
}

TEST(Torus, DistanceIsMinimalHops) {
  const Torus t(make_shape({8, 1, 1, 1, 1, 1}));
  EXPECT_EQ(t.distance(NodeId{0}, NodeId{1}), 1);
  EXPECT_EQ(t.distance(NodeId{0}, NodeId{7}), 1);  // wrap
  EXPECT_EQ(t.distance(NodeId{0}, NodeId{4}), 4);
  const Torus t2(make_shape({4, 4, 1, 1, 1, 1}));
  EXPECT_EQ(t2.distance(t2.id(Coord{{0, 0}}), t2.id(Coord{{3, 3}})), 2);
}

TEST(Torus, TwelveLinksPerNodeAndEdgesConsistent) {
  const Torus t(make_shape({2, 2, 2, 2, 2, 2}));
  const auto edges = t.edges();
  EXPECT_EQ(edges.size(), 64u * 12u);  // 12 out-links per node
  for (const auto& e : edges) {
    EXPECT_EQ(t.distance(e.from, e.to), 1);
  }
}

TEST(LinkIndex, EncodingRoundTrip) {
  for (int dim = 0; dim < kMaxDims; ++dim) {
    for (Dir d : {Dir::kPlus, Dir::kMinus}) {
      const LinkIndex l = link_index(dim, d);
      EXPECT_EQ(link_dim(l), dim);
      EXPECT_EQ(link_dir(l), d);
      EXPECT_EQ(link_dim(facing_link(l)), dim);
      EXPECT_EQ(link_dir(facing_link(l)), opposite(d));
    }
  }
}

// --- Partitions -------------------------------------------------------------

TEST(Partition, IdentityFoldIsMachineItself) {
  const Torus t(make_shape({4, 4, 2, 2, 1, 1}));
  const Partition p =
      Partition::whole_machine(t, FoldSpec::identity(4));
  EXPECT_EQ(p.num_nodes(), t.num_nodes());
  EXPECT_TRUE(p.is_true_torus());
  for (int r = 0; r < p.num_nodes(); ++r) {
    EXPECT_EQ(p.rank(p.logical_coord(r)), r);
  }
}

TEST(Partition, FoldTo4dOn1024NodeRack) {
  // The paper's 1024-node machine: 8x4x4x2x2x2 folded to 4-D (8x4x4x8).
  const Torus t(make_shape({8, 4, 4, 2, 2, 2}));
  const Partition p = fold_to_4d(t);
  EXPECT_EQ(p.logical_dims(), 4);
  EXPECT_EQ(p.logical_shape().extent[0], 8);
  EXPECT_EQ(p.logical_shape().extent[3], 8);
  EXPECT_EQ(p.num_nodes(), 1024);
  EXPECT_TRUE(p.is_true_torus());
}

TEST(Partition, GrayFoldEveryStepIsSingleHop) {
  const Torus t(make_shape({4, 2, 2, 2, 1, 1}));
  FoldSpec spec;
  spec.groups = {{0, 1, 2, 3}};  // fold everything into one logical ring
  const Partition p = Partition::whole_machine(t, spec);
  EXPECT_EQ(p.logical_shape().extent[0], 32);
  EXPECT_TRUE(p.is_true_torus());
  // The embedding visits every node exactly once.
  std::set<u32> seen;
  for (const NodeId n : p.nodes()) seen.insert(n.value);
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Partition, StepsUseDistinctLinksForOppositeDirections) {
  const Torus t(make_shape({2, 2, 1, 1, 1, 1}));
  const Partition p = Partition::whole_machine(t, FoldSpec::identity(2));
  Coord c;
  const auto plus = p.step(c, 0, Dir::kPlus);
  const auto minus = p.step(c, 0, Dir::kMinus);
  EXPECT_TRUE(plus.single_hop);
  EXPECT_TRUE(minus.single_hop);
  // Extent-2 dims reach the same node over different physical wires.
  EXPECT_EQ(plus.to, minus.to);
  EXPECT_NE(plus.link, minus.link);
}

TEST(Partition, SelfStepOnExtent1UsesOwnGroupDim) {
  const Torus t(make_shape({4, 2, 1, 1, 1, 1}));
  FoldSpec spec;
  spec.groups = {{0}, {1}, {2}};
  const Partition p = Partition::whole_machine(t, spec);
  Coord c;
  const auto s = p.step(c, 2, Dir::kPlus);
  EXPECT_TRUE(s.single_hop);
  EXPECT_EQ(s.from, s.to);
  EXPECT_EQ(link_dim(s.link), 2);  // not colliding with dims 0/1
}

TEST(Partition, SubBoxPartition) {
  const Torus t(make_shape({4, 2, 2, 1, 1, 1}));
  Coord origin;
  origin.c[0] = 2;
  Shape box = make_shape({2, 2, 2, 1, 1, 1});
  const Partition p(&t, FoldSpec::identity(3), origin, box);
  EXPECT_EQ(p.num_nodes(), 8);
  EXPECT_TRUE(p.is_true_torus());  // extent-2 boxes are true tori
  for (const NodeId n : p.nodes()) {
    EXPECT_GE(t.coord(n).c[0], 2);
  }
}

TEST(Partition, LogicalOfNodeInvertsNode) {
  const Torus t(make_shape({2, 2, 2, 2, 2, 2}));
  FoldSpec spec;
  spec.groups = {{0}, {1}, {2}, {3, 4, 5}};
  const Partition p = Partition::whole_machine(t, spec);
  for (int r = 0; r < p.num_nodes(); ++r) {
    const Coord lc = p.logical_coord(r);
    EXPECT_EQ(p.logical_of_node(p.node(lc)), lc);
  }
}

TEST(Partition, WrapSingleHopForPowerOfTwoFolds) {
  const Torus t(make_shape({8, 2, 2, 1, 1, 1}));
  FoldSpec spec;
  spec.groups = {{0, 1}, {2}};
  const Partition p = Partition::whole_machine(t, spec);
  EXPECT_EQ(p.logical_shape().extent[0], 16);
  EXPECT_TRUE(p.wrap_is_single_hop(0));
  EXPECT_TRUE(p.wrap_is_single_hop(1));
}

// Property sweep: many shapes and folds must all embed as true tori.
struct FoldCase {
  std::array<int, 6> shape;
  std::vector<std::vector<int>> groups;
};

class PartitionSweep : public ::testing::TestWithParam<FoldCase> {};

TEST_P(PartitionSweep, TrueTorusEmbedding) {
  const auto& c = GetParam();
  const Torus t(make_shape(c.shape));
  FoldSpec spec;
  spec.groups = c.groups;
  const Partition p = Partition::whole_machine(t, spec);
  EXPECT_TRUE(p.is_true_torus()) << t.shape().to_string();
  std::set<u32> seen;
  for (const NodeId n : p.nodes()) seen.insert(n.value);
  EXPECT_EQ(static_cast<int>(seen.size()), p.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    Folds, PartitionSweep,
    ::testing::Values(
        FoldCase{{2, 2, 2, 2, 2, 2}, {{0}, {1}, {2}, {3, 4, 5}}},
        FoldCase{{4, 4, 2, 2, 2, 2}, {{0}, {1}, {2, 3}, {4, 5}}},
        FoldCase{{8, 4, 4, 2, 2, 2}, {{0}, {1}, {2}, {3, 4, 5}}},
        FoldCase{{4, 2, 2, 2, 1, 1}, {{0, 1, 2, 3}}},
        FoldCase{{2, 2, 2, 2, 1, 1}, {{0, 1}, {2, 3}}},
        FoldCase{{4, 4, 4, 2, 2, 2}, {{0}, {1}, {2}, {3}, {4}, {5}}},
        FoldCase{{8, 8, 1, 1, 1, 1}, {{0}, {1}}},
        FoldCase{{2, 4, 2, 4, 2, 4}, {{0, 1}, {2, 3}, {4, 5}}}));

}  // namespace
}  // namespace qcdoc::torus

namespace qcdoc::torus {
namespace {

TEST(Partition, OddFoldWrapIsNotSingleHop) {
  // A fold whose most-significant extent is odd cannot close the logical
  // ring with one hop (the Gray sequence ends deep inside the block);
  // wrap_is_single_hop must report it honestly.
  const Torus t(make_shape({2, 3, 1, 1, 1, 1}));
  FoldSpec spec;
  spec.groups = {{0, 1}};  // 6-ring folded with odd most-significant radix
  const Partition p = Partition::whole_machine(t, spec);
  EXPECT_EQ(p.logical_shape().extent[0], 6);
  // Interior steps are always single hops...
  Coord c;
  for (int x = 0; x + 1 < 6; ++x) {
    c.c[0] = x;
    EXPECT_TRUE(p.step(c, 0, Dir::kPlus).single_hop) << x;
  }
  // ...but the wraparound is not.
  EXPECT_FALSE(p.wrap_is_single_hop(0));
  EXPECT_FALSE(p.is_true_torus());
}

TEST(Partition, SubBoxSmallerThanDimensionBreaksTheWrap) {
  // A 3-wide window of an 6-wide dimension has no physical wrap link.
  const Torus t(make_shape({6, 2, 1, 1, 1, 1}));
  Shape box = make_shape({3, 2, 1, 1, 1, 1});
  const Partition p(&t, FoldSpec::identity(2), Coord{}, box);
  EXPECT_FALSE(p.wrap_is_single_hop(0));
  EXPECT_TRUE(p.wrap_is_single_hop(1));  // extent 2 always wraps
}

}  // namespace
}  // namespace qcdoc::torus
