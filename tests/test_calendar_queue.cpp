// Property tests for the bucketed calendar queue (sim/calendar_queue.h):
// against a reference std::priority_queue it must pop the exact same
// (time, src, seq) key sequence under randomized schedules, including
// same-cycle ties across sources and sequence numbers, wheel-horizon
// overflow (far heap), migration, and below-base rebasing.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/rng.h"
#include "sim/calendar_queue.h"

using namespace qcdoc;
using namespace qcdoc::sim;

namespace {

struct KeyLater {
  bool operator()(const EventKey& a, const EventKey& b) const {
    return b < a;
  }
};
using RefQueue =
    std::priority_queue<EventKey, std::vector<EventKey>, KeyLater>;

/// The engine's schedule-time pattern: events land at `now + offset` where
/// the offset distribution mixes same-cycle ties, in-wheel offsets, offsets
/// past the 64-cycle wheel horizon, and scrubber-period jumps.
Cycle random_offset(Rng& rng) {
  switch (rng.next_below(8)) {
    case 0:
      return 0;  // same-cycle tie
    case 1:
    case 2:
    case 3:
      return rng.next_below(18);  // within the lookahead window
    case 4:
    case 5:
      return rng.next_below(CalendarQueue::kWheelSize);  // wheel edge
    case 6:
      return 64 + rng.next_below(1000);  // past the wheel, near
    default:
      return 1 << 14;  // scrubber period, far heap for sure
  }
}

void run_campaign(u64 seed, int steps, double push_prob) {
  Rng rng(seed);
  CalendarQueue cq;
  RefQueue ref;
  Cycle now = 0;
  std::vector<u64> seq_per_src(4, 0);
  u64 executed = 0;

  for (int step = 0; step < steps; ++step) {
    const bool do_push = cq.empty() || rng.next_double() < push_prob;
    if (do_push) {
      const u32 src = static_cast<u32>(rng.next_below(4));
      const Cycle t = now + random_offset(rng);
      const u64 seq = seq_per_src[src]++;
      const bool expect_new_min = ref.empty() || t < ref.top().time;
      // Payload checks the stored action survives bucket moves, far-heap
      // migration and rebasing intact.
      u64* out = &executed;
      const u64 stamp = t ^ (u64{src} << 48) ^ seq;
      EXPECT_EQ(cq.push(QueuedEvent{t, src, seq,
                                    [out, stamp] { *out ^= stamp; }}),
                expect_new_min)
          << "push return at step " << step;
      ref.push(EventKey{t, src, seq});
    } else {
      ASSERT_FALSE(cq.empty());
      ASSERT_EQ(cq.size(), ref.size());
      const EventKey want = ref.top();
      ref.pop();
      EXPECT_EQ(cq.min_time(), want.time);
      const EventKey head = cq.min_key();
      EXPECT_EQ(head.time, want.time);
      EXPECT_EQ(head.src_rank, want.src_rank);
      EXPECT_EQ(head.seq, want.seq);
      QueuedEvent ev = cq.pop_min();
      ASSERT_EQ(ev.time, want.time) << "at step " << step;
      ASSERT_EQ(ev.src_rank, want.src_rank) << "at step " << step;
      ASSERT_EQ(ev.seq, want.seq) << "at step " << step;
      const u64 before = executed;
      ev.fn();
      EXPECT_EQ(executed,
                before ^ (ev.time ^ (u64{ev.src_rank} << 48) ^ ev.seq));
      now = ev.time;
    }
  }
  // Drain what remains; order must still match exactly.
  while (!ref.empty()) {
    const EventKey want = ref.top();
    ref.pop();
    ASSERT_FALSE(cq.empty());
    QueuedEvent ev = cq.pop_min();
    ASSERT_EQ(ev.time, want.time);
    ASSERT_EQ(ev.src_rank, want.src_rank);
    ASSERT_EQ(ev.seq, want.seq);
  }
  EXPECT_TRUE(cq.empty());
  EXPECT_EQ(cq.min_time(), CalendarQueue::kNoEvent);
}

TEST(CalendarQueue, MatchesReferencePushHeavy) {
  for (const u64 seed : {1u, 2u, 3u, 4u}) {
    run_campaign(seed, 20000, 0.65);
  }
}

TEST(CalendarQueue, MatchesReferencePopHeavy) {
  for (const u64 seed : {11u, 12u, 13u, 14u}) {
    run_campaign(seed, 20000, 0.45);
  }
}

TEST(CalendarQueue, SameCycleTieStormAcrossSources) {
  // Many sources all scheduling onto one timestamp: pop order must be
  // (src, seq) lexicographic within the shared cycle.
  CalendarQueue cq;
  Rng rng(99);
  RefQueue ref;
  for (int burst = 0; burst < 50; ++burst) {
    const Cycle t = 1000 * static_cast<Cycle>(burst);
    std::vector<u64> seq(8, u64{0} + static_cast<u64>(burst) * 100);
    for (int i = 0; i < 64; ++i) {
      const u32 src = static_cast<u32>(rng.next_below(8));
      const u64 s = seq[src]++;
      cq.push(QueuedEvent{t, src, s, [] {}});
      ref.push(EventKey{t, src, s});
    }
  }
  while (!ref.empty()) {
    const EventKey want = ref.top();
    ref.pop();
    QueuedEvent ev = cq.pop_min();
    ASSERT_EQ(ev.time, want.time);
    ASSERT_EQ(ev.src_rank, want.src_rank);
    ASSERT_EQ(ev.seq, want.seq);
  }
  EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueue, RebaseOnBelowBasePush) {
  // Drain the wheel forward onto a far event, then push below the new
  // base -- the host-schedule pattern that forces a rebase.
  CalendarQueue cq;
  cq.push(QueuedEvent{10, 0, 0, [] {}});
  cq.push(QueuedEvent{100000, 0, 1, [] {}});
  EXPECT_EQ(cq.pop_min().time, 10u);
  EXPECT_EQ(cq.min_time(), 100000u);  // migrated: base is now far ahead
  EXPECT_TRUE(cq.push(QueuedEvent{50, 1, 0, [] {}}));
  EXPECT_EQ(cq.min_time(), 50u);
  EXPECT_EQ(cq.pop_min().time, 50u);
  EXPECT_EQ(cq.pop_min().time, 100000u);
  EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueue, PushReturnsTrueOnlyOnStrictlyNewMinimum) {
  CalendarQueue cq;
  EXPECT_TRUE(cq.push(QueuedEvent{20, 0, 0, [] {}}));   // empty -> true
  EXPECT_FALSE(cq.push(QueuedEvent{20, 0, 1, [] {}}));  // tie -> false
  EXPECT_FALSE(cq.push(QueuedEvent{30, 0, 2, [] {}}));
  EXPECT_TRUE(cq.push(QueuedEvent{19, 1, 0, [] {}}));
  EXPECT_EQ(cq.size(), 4u);
}

}  // namespace
