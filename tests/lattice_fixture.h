// Shared fixture for lattice tests: a machine, a 4-D partition, a geometry
// and the solver plumbing (BSP runner, CPU model, field ops), plus the
// residual checks and right-hand-side generators every solver/action test
// shares.
#pragma once

#include <array>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "comms/comms.h"
#include "lattice/dirac.h"
#include "lattice/gauge.h"
#include "lattice/linalg.h"
#include "lattice/wilson.h"
#include "machine/bsp.h"

namespace qcdoc::lattice::testing {

struct LatticeRig {
  std::unique_ptr<machine::Machine> m;
  std::unique_ptr<torus::Partition> partition;
  std::unique_ptr<comms::Communicator> comm;
  std::unique_ptr<GlobalGeometry> geom;
  std::unique_ptr<machine::BspRunner> bsp;
  std::unique_ptr<cpu::CpuModel> cpu;
  std::unique_ptr<FieldOps> ops;

  /// `machine_extents`: 6-D machine shape (first 4 dims become the logical
  /// partition); `global`: 4-D lattice extents; `sim_threads`: engine
  /// thread count (determinism tests sweep 1/2/4).
  LatticeRig(std::array<int, 6> machine_extents, Coord4 global,
             int sim_threads = 1)
      : LatticeRig(machine_extents, torus::FoldSpec::identity(4), global,
                   sim_threads) {}

  /// Fold-aware variant for machines whose trailing dims are > 1 (e.g. the
  /// paper's 2^6 building block folded into a 4-D logical torus).
  LatticeRig(std::array<int, 6> machine_extents, torus::FoldSpec fold,
             Coord4 global, int sim_threads = 1) {
    machine::MachineConfig cfg;
    cfg.shape.extent = machine_extents;
    cfg.sim_threads = sim_threads;
    m = std::make_unique<machine::Machine>(cfg);
    m->power_on();
    partition = std::make_unique<torus::Partition>(
        torus::Partition::whole_machine(m->topology(), std::move(fold)));
    comm = std::make_unique<comms::Communicator>(m.get(), partition.get());
    geom = std::make_unique<GlobalGeometry>(partition.get(), global);
    bsp = std::make_unique<machine::BspRunner>(m.get());
    cpu = std::make_unique<cpu::CpuModel>(m->hw(), m->mem_timing());
    ops = std::make_unique<FieldOps>(bsp.get(), cpu.get(), comm.get());
  }
};

/// The paper's 2^6 = 64-node building block folded onto a 4x4x2x2 logical
/// torus: dims (0,4) and (1,5) pair up, dims 2 and 3 stay bare.
inline torus::FoldSpec fold_two_to_six() {
  torus::FoldSpec spec;
  spec.groups = {{0, 4}, {1, 5}, {2}, {3}};
  return spec;
}

/// Residual check independent of the solver's own accounting, on the
/// normal equations: |M^+ (b - M x)| / |M^+ b|.
inline double true_residual(DiracOperator& op, DistField& x, DistField& b) {
  FieldOps& ops = op.ops();
  DistField mx = op.make_field("check.mx");
  DistField r = op.make_field("check.r");
  DistField mdr = op.make_field("check.mdr");
  op.apply(mx, x);
  ops.copy(b, r);
  ops.axpy(-1.0, mx, r);  // r = b - Mx
  op.apply_dag(mdr, r);
  const double num = ops.norm2(mdr);
  op.apply_dag(mdr, b);
  const double den = ops.norm2(mdr);
  return std::sqrt(num / den);
}

/// Residual of the unsquared system: |b - M x| / |b|.
inline double full_residual(DiracOperator& op, DistField& x, DistField& b) {
  FieldOps& ops = op.ops();
  DistField mx = op.make_field("check.mx");
  op.apply(mx, x);
  ops.axpy(-1.0, b, mx);
  return std::sqrt(ops.norm2(mx) / ops.norm2(b));
}

/// Fill a fermion-like field with a deterministic value per (global site,
/// component), identical regardless of how the lattice is distributed.
inline void fill_by_global_site(const GlobalGeometry& geom, DistField& f) {
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const double base =
          g[0] + 13.0 * g[1] + 41.0 * g[2] + 97.0 * g[3];
      double* p = f.site(r, s);
      for (int k = 0; k < f.site_doubles(); ++k) {
        p[k] = std::sin(0.1 * base + 0.01 * k) + 0.05 * k;
      }
    }
  }
}

/// Gauge links tagged by global site and direction, identical across
/// distributions (uses a per-link seeded generator).
inline void fill_gauge_by_global_site(const GlobalGeometry& geom,
                                      GaugeField& gauge, u64 seed) {
  for (int r = 0; r < gauge.field().ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      for (int mu = 0; mu < kNd; ++mu) {
        const u64 site_seed = seed ^ (static_cast<u64>(g[0]) << 1) ^
                              (static_cast<u64>(g[1]) << 13) ^
                              (static_cast<u64>(g[2]) << 25) ^
                              (static_cast<u64>(g[3]) << 37) ^
                              (static_cast<u64>(mu) << 49);
        Rng rng(site_seed);
        gauge.set_link(r, s, mu, random_su3(rng));
      }
    }
  }
}

/// Gather a distributed field into one flat global array ordered by global
/// site index, so differently-distributed runs can be compared bit for bit.
inline std::vector<double> gather_global(const GlobalGeometry& geom,
                                         const DistField& f) {
  const auto& ge = geom.global_extent();
  const int gvol = ge[0] * ge[1] * ge[2] * ge[3];
  std::vector<double> out(static_cast<std::size_t>(gvol) *
                          static_cast<std::size_t>(f.site_doubles()));
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const int gidx = ((g[3] * ge[2] + g[2]) * ge[1] + g[1]) * ge[0] + g[0];
      const double* p = f.site(r, s);
      for (int k = 0; k < f.site_doubles(); ++k) {
        out[static_cast<std::size_t>(gidx) *
                static_cast<std::size_t>(f.site_doubles()) +
            static_cast<std::size_t>(k)] = p[k];
      }
    }
  }
  return out;
}

}  // namespace qcdoc::lattice::testing
