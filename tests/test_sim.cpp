#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"

namespace qcdoc::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  SerialEngine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, EqualTimestampsFireInScheduleOrder) {
  SerialEngine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5, [&order, i] { order.push_back(i); });
  }
  e.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  SerialEngine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule(10, chain);
  };
  e.schedule(10, chain);
  e.run_until_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 50u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  SerialEngine e;
  int fired = 0;
  e.schedule(10, [&] { ++fired; });
  e.schedule(20, [&] { ++fired; });
  e.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 15u);
  e.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesTimeWithNoEvents) {
  SerialEngine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  SerialEngine e;
  EXPECT_FALSE(e.step());
  e.schedule(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, PendingEventsCount) {
  SerialEngine e;
  e.schedule(1, [] {});
  e.schedule(2, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.run_until_idle();
  EXPECT_EQ(e.pending_events(), 0u);
}

// Contract: scheduling into the past is a model bug and must be rejected
// loudly, never silently reordered (it used to corrupt the queue order).
TEST(Engine, ScheduleAtRejectsThePast) {
  SerialEngine e;
  e.schedule_at(100, [] {});
  e.run_until_idle();
  ASSERT_EQ(e.now(), 100u);
  EXPECT_THROW(e.schedule_at(99, [] {}), std::invalid_argument);
  // t == now() stays legal: zero-delay events are idiomatic in the model.
  e.schedule_at(100, [] {});
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until_idle();
}

TEST(Engine, ScheduleAtRejectsThePastFromInsideAnEvent) {
  SerialEngine e;
  bool threw = false;
  e.schedule(50, [&] {
    try {
      e.schedule_at(10, [] {});
    } catch (const std::invalid_argument& ex) {
      threw = true;
      EXPECT_NE(std::string(ex.what()).find("past"), std::string::npos);
    }
  });
  e.run_until_idle();
  EXPECT_TRUE(threw);
  EXPECT_EQ(e.events_executed(), 1u);
}

TEST(Engine, OrderDigestDetectsDifferentSchedules) {
  SerialEngine a, b, c;
  for (SerialEngine* e : {&a, &b}) {
    e->schedule(10, [] {});
    e->schedule(20, [] {});
    e->run_until_idle();
  }
  c.schedule(10, [] {});
  c.schedule(21, [] {});
  c.run_until_idle();
  EXPECT_EQ(a.trace_digest(), b.trace_digest());
  EXPECT_NE(a.trace_digest(), c.trace_digest());
}

TEST(Stats, AccumulatesAndSnapshots) {
  StatSet s;
  s.add("a");
  s.add("a", 4);
  s.add("b", 2);
  EXPECT_EQ(s.get("a"), 5u);
  EXPECT_EQ(s.get("b"), 2u);
  EXPECT_EQ(s.get("missing"), 0u);
  EXPECT_FALSE(s.has("missing"));
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
}

TEST(Stats, SetOverwritesAndClearResets) {
  StatSet s;
  s.add("x", 10);
  s.set("x", 3);
  EXPECT_EQ(s.get("x"), 3u);
  s.clear();
  EXPECT_FALSE(s.has("x"));
}

TEST(Stats, TotalAcrossSets) {
  StatSet a, b;
  a.add("x", 3);
  b.add("x", 4);
  EXPECT_EQ(StatSet::total({&a, &b}, "x"), 7u);
}

}  // namespace
}  // namespace qcdoc::sim
