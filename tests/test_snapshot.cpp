// Tier-1 tests for the snapshot subsystem: byte codec, container format
// diagnostics, the atomic generation store (including a forked child that
// SIGKILLs itself mid-write), whole-machine capture/restore, and a small
// end-to-end crash-resume of an audited CG solve.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "snapshot_rig.h"

namespace qcdoc::snapshot {
namespace {

using testing::SolveOutcome;
using testing::SolveScenario;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "qcdoc_snap_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- bytes ---------------------------------------------------------------

TEST(SnapshotBytes, RoundTripsEveryType) {
  ByteSink sink;
  sink.put_u8(0xab);
  sink.put_u16(0xbeef);
  sink.put_u32(0xdeadbeef);
  sink.put_u64(0x0123456789abcdefull);
  sink.put_i64(-42);
  sink.put_double(-0.1);
  sink.put_bool(true);
  sink.put_string("hello");
  const std::vector<u64> words = {1, 2, 3};
  sink.put_u64_span(words);
  const std::vector<double> vals = {0.5, -2.25};
  sink.put_double_span(vals);

  const std::vector<u8> bytes = sink.take();
  ByteSource src(bytes, "test");
  u8 a = 0;
  u16 b = 0;
  u32 c = 0;
  u64 d = 0;
  i64 e = 0;
  double f = 0;
  bool g = false;
  std::string s;
  std::vector<u64> w;
  std::vector<double> v;
  EXPECT_TRUE(src.get_u8(&a).ok);
  EXPECT_TRUE(src.get_u16(&b).ok);
  EXPECT_TRUE(src.get_u32(&c).ok);
  EXPECT_TRUE(src.get_u64(&d).ok);
  EXPECT_TRUE(src.get_i64(&e).ok);
  EXPECT_TRUE(src.get_double(&f).ok);
  EXPECT_TRUE(src.get_bool(&g).ok);
  EXPECT_TRUE(src.get_string(&s).ok);
  EXPECT_TRUE(src.get_u64_vec(&w).ok);
  EXPECT_TRUE(src.get_double_vec(&v).ok);
  EXPECT_TRUE(src.expect_exhausted().ok);
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xbeef);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0123456789abcdefull);
  EXPECT_EQ(e, -42);
  EXPECT_EQ(f, -0.1);
  EXPECT_TRUE(g);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(w, words);
  EXPECT_EQ(v, vals);
}

TEST(SnapshotBytes, TruncationIsADiagnosticNotUb) {
  ByteSink sink;
  sink.put_u64(7);
  std::vector<u8> bytes = sink.take();
  bytes.resize(3);  // torn mid-integer
  ByteSource src(bytes, "ENGINE");
  u64 v = 0;
  const Status s = src.get_u64(&v);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.reason.find("ENGINE"), std::string::npos) << s.reason;
}

TEST(SnapshotBytes, HostileVectorLengthIsRejected) {
  // A length prefix claiming ~2^61 elements must fail cleanly instead of
  // attempting the allocation.
  ByteSink sink;
  sink.put_u64(~u64{0} / 4);
  const std::vector<u8> bytes = sink.take();
  ByteSource src(bytes, "MEMORY");
  std::vector<u64> v;
  EXPECT_FALSE(src.get_u64_vec(&v).ok);
}

TEST(SnapshotBytes, TrailingGarbageIsCaught) {
  ByteSink sink;
  sink.put_u32(1);
  sink.put_u32(2);
  const std::vector<u8> bytes = sink.take();
  ByteSource src(bytes, "META");
  u32 v = 0;
  EXPECT_TRUE(src.get_u32(&v).ok);
  EXPECT_FALSE(src.expect_exhausted().ok);
}

// --- container format ----------------------------------------------------

SnapshotFile sample_file() {
  SnapshotFile file;
  file.set_generation(7);
  ByteSink a, b;
  a.put_u64(0x1111);
  b.put_string("payload two");
  file.add_section(kSecMeta, std::move(a));
  file.add_section(kSecEngine, std::move(b), /*version=*/3, kSectionOptional);
  return file;
}

void patch_u32(std::vector<u8>* bytes, std::size_t at, u32 v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[at + static_cast<std::size_t>(i)] = static_cast<u8>(v >> (8 * i));
  }
}

/// Re-seal a hand-mutated image: recompute header and whole-file CRCs so
/// only the deliberately skewed field differs.
void reseal(std::vector<u8>* bytes) {
  patch_u32(bytes, 36, crc32(std::span<const u8>(*bytes).subspan(0, 36)));
  patch_u32(bytes, bytes->size() - 4,
            crc32(std::span<const u8>(*bytes).subspan(0, bytes->size() - 4)));
}

TEST(SnapshotFormat, EncodeDecodeRoundTrip) {
  const SnapshotFile file = sample_file();
  const std::vector<u8> bytes = file.encode();

  SnapshotFile back;
  ASSERT_TRUE(SnapshotFile::decode(bytes, &back).ok);
  EXPECT_EQ(back.generation(), 7u);
  ASSERT_EQ(back.sections().size(), 2u);
  const Section* eng = back.find(kSecEngine);
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->version, 3u);
  EXPECT_EQ(eng->flags, kSectionOptional);
  std::optional<ByteSource> src;
  ASSERT_TRUE(back.open(kSecEngine, &src).ok);
  std::string s;
  ASSERT_TRUE(src->get_string(&s).ok);
  EXPECT_EQ(s, "payload two");
  EXPECT_FALSE(back.open(kSecSolver, &src).ok);  // missing section
}

TEST(SnapshotFormat, EveryCorruptionLayerHasItsOwnDiagnostic) {
  const std::vector<u8> good = sample_file().encode();
  SnapshotFile out;

  {  // not a snapshot
    std::vector<u8> bad = good;
    bad[0] = 'X';
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("not a snapshot"), std::string::npos) << s.reason;
  }
  {  // corrupt header (crc mismatch)
    std::vector<u8> bad = good;
    bad[12] ^= 0x40;  // section count field; header crc now disagrees
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("corrupt header"), std::string::npos) << s.reason;
  }
  {  // version skew: bump the version field, re-seal the CRCs
    std::vector<u8> bad = good;
    patch_u32(&bad, 8, kFormatVersion + 1);
    reseal(&bad);
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("version skew"), std::string::npos) << s.reason;
  }
  {  // torn write: the file ends early
    std::vector<u8> bad = good;
    bad.resize(bad.size() - 9);
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("torn write"), std::string::npos) << s.reason;
  }
  {  // corrupt section table
    std::vector<u8> bad = good;
    bad[40 + 3] ^= 0x01;  // a tag byte inside the table
    reseal(&bad);
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("section table"), std::string::npos) << s.reason;
  }
  {  // corrupt one payload byte: section-level crc catches it, named
    std::vector<u8> bad = good;
    bad[bad.size() - 21] ^= 0x80;  // last payload byte (before footer)
    reseal(&bad);
    const Status s = SnapshotFile::decode(bad, &out);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("ENGINE"), std::string::npos) << s.reason;
    // verify() reports per-section GOOD/BAD without decoding payloads.
    u64 generation = 0;
    std::vector<std::string> notes;
    EXPECT_FALSE(SnapshotFile::verify(bad, &generation, &notes).ok);
    ASSERT_EQ(notes.size(), 2u);
    EXPECT_EQ(notes[0].substr(0, 4), "GOOD");
    EXPECT_EQ(notes[1].substr(0, 4), "BAD ");
  }
}

// --- generation store ----------------------------------------------------

TEST(SnapshotStore, GenerationsAdvanceAndPruneKeepsLastTwo) {
  const std::string dir = fresh_dir("store");
  SnapshotStore store(dir, "cg");
  EXPECT_EQ(store.latest_generation(), 0u);

  for (int i = 0; i < 4; ++i) {
    SnapshotFile f = sample_file();
    ASSERT_TRUE(store.save(&f).ok);
    EXPECT_EQ(f.generation(), static_cast<u64>(i + 1));
  }
  // Retention: only generations 3 and 4 remain on disk.
  const auto gens = store.list();
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0].generation, 3u);
  EXPECT_EQ(gens[1].generation, 4u);
  EXPECT_EQ(store.latest_generation(), 4u);

  SnapshotFile back;
  ASSERT_TRUE(store.load_latest(&back).ok);
  EXPECT_EQ(back.generation(), 4u);
}

TEST(SnapshotStore, CorruptNewestFallsBackToPreviousGeneration) {
  const std::string dir = fresh_dir("fallback");
  SnapshotStore store(dir, "cg");
  SnapshotFile f1 = sample_file();
  ASSERT_TRUE(store.save(&f1).ok);
  SnapshotFile f2 = sample_file();
  ASSERT_TRUE(store.save(&f2).ok);

  // Truncate generation 2 on disk: a torn write that somehow became
  // visible (e.g. media truncation after the rename).
  const auto gens = store.list();
  ASSERT_EQ(gens.size(), 2u);
  std::filesystem::resize_file(gens[1].path,
                               std::filesystem::file_size(gens[1].path) / 2);

  SnapshotFile back;
  std::vector<std::string> diags;
  ASSERT_TRUE(store.load_latest(&back, &diags).ok);
  EXPECT_EQ(back.generation(), 1u);
  bool mentioned_fallback = false;
  for (const auto& d : diags) {
    if (d.find("falling back") != std::string::npos) mentioned_fallback = true;
  }
  EXPECT_TRUE(mentioned_fallback);

  // With every generation corrupt, load fails with the reasons listed.
  std::filesystem::resize_file(gens[0].path, 10);
  diags.clear();
  EXPECT_FALSE(store.load_latest(&back, &diags).ok);
  EXPECT_GE(diags.size(), 2u);
}

TEST(SnapshotStore, KilledMidWriteLeavesPreviousGenerationIntact) {
  const std::string dir = fresh_dir("midwrite");
  {
    SnapshotStore store(dir, "cg");
    SnapshotFile f1 = sample_file();
    ASSERT_TRUE(store.save(&f1).ok);
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die after 30 bytes of the generation-2 temp file.  The store
    // must never rename a partial file into place.
    setenv("QCDOC_SNAPSHOT_KILL_AT_BYTE", "30", 1);
    SnapshotStore store(dir, "cg");
    SnapshotFile f2 = sample_file();
    const Status s = store.save(&f2);  // raises SIGKILL inside
    _exit(s.ok ? 7 : 8);               // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  SnapshotStore store(dir, "cg");
  EXPECT_EQ(store.latest_generation(), 1u);
  SnapshotFile back;
  EXPECT_TRUE(store.load_latest(&back).ok);
  EXPECT_EQ(back.generation(), 1u);
}

// --- machine capture/restore ---------------------------------------------

TEST(SnapshotMachine, CaptureRefusesNonQuiescentEngine) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 1, 1, 1, 1};
  machine::Machine m(cfg);
  m.power_on();

  // An armed-but-unfired fault plan with no injector handed to the snapshot
  // layer: the pending event is unaccounted for, so capture must refuse.
  fault::FaultInjector injector(&m.mesh());
  fault::FaultPlan plan;
  plan.link_death(m.engine().now() + 100000, NodeId{0}, torus::LinkIndex{0});
  injector.arm(plan);

  SnapshotFile file;
  const Status s = capture_machine(m, MachineExtras{}, &file);
  ASSERT_FALSE(s.ok);
  EXPECT_NE(s.reason.find("quiescent"), std::string::npos) << s.reason;

  // Declaring the injector makes the same pending event re-armable.
  MachineExtras extras;
  extras.injector = &injector;
  EXPECT_TRUE(capture_machine(m, extras, &file).ok);
}

TEST(SnapshotMachine, RestoreRejectsGeometryAndSeedMismatch) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 1, 1, 1, 1};
  machine::Machine m(cfg);
  m.power_on();
  SnapshotFile file;
  ASSERT_TRUE(capture_machine(m, MachineExtras{}, &file).ok);

  {  // different mesh shape
    machine::MachineConfig other = cfg;
    other.shape.extent = {4, 2, 1, 1, 1, 1};
    machine::Machine m2(other);
    m2.power_on();
    const Status s = restore_machine(m2, MachineExtras{}, file);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("geometry mismatch"), std::string::npos)
        << s.reason;
  }
  {  // different RNG seed
    machine::MachineConfig other = cfg;
    other.seed += 1;
    machine::Machine m2(other);
    m2.power_on();
    const Status s = restore_machine(m2, MachineExtras{}, file);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("seed mismatch"), std::string::npos) << s.reason;
  }
  {  // same config but allocation layout not replayed
    machine::MachineConfig other = cfg;
    machine::Machine m2(other);
    m2.power_on();
    (void)m2.memory(NodeId{0}).alloc(64, "stray");
    const Status s = restore_machine(m2, MachineExtras{}, file);
    ASSERT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("allocation layout"), std::string::npos)
        << s.reason;
  }
}

// --- end-to-end crash-resume (small machine) ------------------------------

SolveScenario small_scenario(int sim_threads) {
  SolveScenario sc;
  sc.machine_extents = {2, 2, 1, 1, 1, 1};
  sc.partition_box.extent = {2, 2, 1, 1, 1, 1};
  sc.global = {4, 4, 2, 2};
  sc.kappa = 0.12;
  sc.fixed_iterations = 6;
  sc.audit_interval = 2;
  sc.sim_threads = sim_threads;
  return sc;
}

void expect_same_outcome(const SolveOutcome& got, const SolveOutcome& want,
                         const std::string& what) {
  EXPECT_TRUE(got.job_ok) << what;
  EXPECT_EQ(got.iterations, want.iterations) << what;
  EXPECT_EQ(got.residual_bits, want.residual_bits) << what;
  EXPECT_EQ(got.field_fnv, want.field_fnv) << what;
  EXPECT_EQ(got.trace_digest, want.trace_digest) << what;
  EXPECT_EQ(got.end_cycle, want.end_cycle) << what;
}

TEST(SnapshotResume, KilledMidCgResumesBitExactly) {
  const std::string dir = fresh_dir("resume_small");

  // Child: checkpoint every clean audit, SIGKILL itself right after the
  // iteration-4 generation commits -- mid-CG, two iterations from the end.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    (void)testing::run_solve(small_scenario(1), &dir, /*resume=*/false,
                             /*kill_at_iteration=*/4);
    _exit(9);  // not reached: the writer kills itself
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Checkpoints landed at iterations 0, 2 and 4.
  SnapshotStore store(dir, "cg");
  EXPECT_EQ(store.latest_generation(), 3u);

  // The uninterrupted reference in this (new) process.
  const SolveOutcome ref =
      testing::run_solve(small_scenario(1), nullptr, false);
  ASSERT_TRUE(ref.job_ok);
  ASSERT_EQ(ref.iterations, 6);

  // Restore in this process at 1 and 2 threads: final residual bits, field
  // FNV, event-order digest and end cycle all match the uninterrupted run.
  for (const int threads : {1, 2}) {
    const SolveOutcome got =
        testing::run_solve(small_scenario(threads), &dir, /*resume=*/true);
    EXPECT_TRUE(got.resumed) << (got.log.empty() ? "" : got.log.back());
    EXPECT_EQ(got.recovered_generation, 3u);
    expect_same_outcome(got, ref, std::to_string(threads) + " threads");
  }
}

}  // namespace
}  // namespace qcdoc::snapshot
