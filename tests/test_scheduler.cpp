// Tier-1 tests for the multi-tenant job scheduler (ISSUE 9): admission
// control under an overload storm (bounded queue, typed rejections, the
// qcsh retry helper riding the backpressure hints), fair-share ordering,
// bounded deadline re-queue, quarantine-driven migration that reproduces
// the unfaulted run bit-exactly, handle invalidation on quarantine, and a
// SIGKILL mid-migration whose resume is bit-exact at 1/2/4 threads.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <vector>

#include "host/qcsh.h"
#include "snapshot_rig.h"

namespace qcdoc::host {
namespace {

using snapshot::testing::SchedOutcome;
using snapshot::testing::SchedScenario;
using snapshot::testing::run_sched_job;

machine::MachineConfig small_machine(std::array<int, 6> extents,
                                     int threads = 1) {
  machine::MachineConfig cfg;
  cfg.shape.extent = extents;
  cfg.sim_threads = threads;
  return cfg;
}

JobSpec trivial_spec(const std::string& name, const std::string& user,
                     torus::Shape box, int dims) {
  JobSpec spec;
  spec.name = name;
  spec.user = user;
  spec.image = "app.elf";
  spec.box = box;
  spec.logical_dims = dims;
  spec.body = [](JobContext& ctx) {
    ctx.output->push_back("ok");
    return StepStatus::kDone;
  };
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "qcdoc_sched_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SchedulerAdmission, OverloadStormHitsBoundAndRetryHelperDrains) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  SchedulerConfig cfg;
  cfg.max_queued = 4;
  cfg.max_queued_per_user = 16;  // quota out of the way: test the global bound
  cfg.max_running = 1;
  JobScheduler sched(&qd, cfg);

  const torus::Shape box{{2, 2, 1, 1, 1, 1}};  // whole machine: serialized

  // Storm: submissions faster than the service drains.  Exactly the bound
  // is admitted; everything past it gets a typed rejection with a nonzero
  // retry-after hint -- the queue cannot grow without limit.
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const auto out = sched.submit(
        trivial_spec("storm" + std::to_string(i), "u" + std::to_string(i % 4),
                     box, 2));
    if (out.accepted) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_EQ(out.error, SubmitError::kQueueFull);
      EXPECT_GT(out.retry_after, 0u);
      EXPECT_NE(out.detail.find("queue full"), std::string::npos);
    }
  }
  EXPECT_EQ(accepted, cfg.max_queued);
  EXPECT_EQ(rejected, 10 - cfg.max_queued);
  EXPECT_EQ(sched.report().rejected_queue_full, static_cast<u64>(rejected));

  // The client half of the contract: retry with exponential backoff and
  // jitter.  The scheduler keeps pumping while the client waits, so the
  // queue drains and the resubmission lands.
  RetryPolicy policy;
  Rng rng(1234);
  const auto retried = submit_with_retry(
      sched, trivial_spec("straggler", "u9", box, 2), policy, rng);
  EXPECT_TRUE(retried.accepted);

  sched.run_until_idle();
  EXPECT_EQ(sched.report().completed, static_cast<u64>(accepted) + 1);
  EXPECT_EQ(sched.report().failed, 0u);
  for (const auto& j : sched.jobs()) {
    EXPECT_EQ(j.state, JobState::kDone) << j.name;
    ASSERT_EQ(j.output.size(), 1u) << j.name;
    EXPECT_EQ(j.output[0], "ok");
  }
}

TEST(SchedulerAdmission, PerUserQuotaIsTypedAndDoesNotBlockOtherTenants) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  SchedulerConfig cfg;
  cfg.max_queued = 16;
  cfg.max_queued_per_user = 2;
  JobScheduler sched(&qd, cfg);
  const torus::Shape box{{2, 2, 1, 1, 1, 1}};

  EXPECT_TRUE(sched.submit(trivial_spec("a0", "alice", box, 2)).accepted);
  EXPECT_TRUE(sched.submit(trivial_spec("a1", "alice", box, 2)).accepted);
  const auto rejected = sched.submit(trivial_spec("a2", "alice", box, 2));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.error, SubmitError::kUserQuotaFull);
  EXPECT_GT(rejected.retry_after, 0u);
  // A different tenant is unaffected by alice's quota.
  EXPECT_TRUE(sched.submit(trivial_spec("b0", "bob", box, 2)).accepted);
  sched.run_until_idle();
  EXPECT_EQ(sched.report().completed, 3u);
}

TEST(SchedulerAdmission, BadRequestIsPermanentAndNotRetried) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  JobScheduler sched(&qd, SchedulerConfig{});

  // A box that does not tile the machine can never be placed.
  JobSpec spec = trivial_spec("bad", "alice", torus::Shape{{3, 1, 1, 1, 1, 1}},
                              1);
  const auto out = sched.submit(spec);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.error, SubmitError::kBadRequest);
  EXPECT_EQ(out.retry_after, 0u);

  // The retry helper must give up immediately: retrying cannot fix a
  // malformed spec, so exactly one more submission is recorded.
  const u64 before = sched.report().submitted;
  RetryPolicy policy;
  Rng rng(5);
  const auto retried = submit_with_retry(sched, spec, policy, rng);
  EXPECT_FALSE(retried.accepted);
  EXPECT_EQ(retried.error, SubmitError::kBadRequest);
  EXPECT_EQ(sched.report().submitted, before + 1);
}

JobSpec stepper_spec(machine::Machine* m, const std::string& name,
                     const std::string& user, torus::Shape box, int steps) {
  JobSpec spec;
  spec.name = name;
  spec.user = user;
  spec.image = "app.elf";
  spec.box = box;
  spec.logical_dims = 2;
  spec.body = [m, steps](JobContext& ctx) {
    std::vector<double> contrib(
        static_cast<std::size_t>(ctx.partition->num_nodes()), 1.0);
    const auto sum = ctx.comm->global_sum(contrib);
    // Spend the reduction's cost as engine time: deadlines and fair-share
    // usage are charged in cycles, not step counts.
    m->engine().run_until(m->engine().now() + sum.cycles);
    return static_cast<int>(ctx.step) + 1 >= steps ? StepStatus::kDone
                                                   : StepStatus::kYield;
  };
  return spec;
}

Cycle done_cycle(const JobScheduler& sched, JobId id) {
  std::size_t cursor = 0;
  Cycle at = 0;
  for (const JobEvent& e : sched.events_since(id, &cursor)) {
    if (e.state == JobState::kDone) at = e.at;
  }
  return at;
}

TEST(SchedulerFairShare, HigherShareFinishesFirstDespiteLaterSubmission) {
  machine::Machine m(small_machine({4, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  SchedulerConfig cfg;
  cfg.max_running = 2;  // both tenants resident; shares govern interleaving
  JobScheduler sched(&qd, cfg);
  sched.set_share("bob", 4.0);

  const torus::Shape box{{2, 2, 1, 1, 1, 1}};
  const auto alice = sched.submit(stepper_spec(&m, "a", "alice", box, 8));
  const auto bob = sched.submit(stepper_spec(&m, "b", "bob", box, 8));
  ASSERT_TRUE(alice.accepted);
  ASSERT_TRUE(bob.accepted);
  sched.run_until_idle();

  ASSERT_EQ(sched.status(alice.id).state, JobState::kDone);
  ASSERT_EQ(sched.status(bob.id).state, JobState::kDone);
  // Equal-length jobs, but bob's 4x share earns him ~4 steps per alice
  // step: he must complete strictly earlier even though he submitted later.
  EXPECT_LT(done_cycle(sched, bob.id), done_cycle(sched, alice.id));
}

TEST(SchedulerDeadline, RequeuesAtMostNTimesThenFailsTyped) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  JobScheduler sched(&qd, SchedulerConfig{});

  JobSpec spec = stepper_spec(&m, "slow", "alice",
                              torus::Shape{{2, 2, 1, 1, 1, 1}}, 1 << 20);
  spec.deadline_cycles = 1;  // every step blows the per-attempt budget
  spec.max_requeues = 2;
  const auto out = sched.submit(spec);
  ASSERT_TRUE(out.accepted);
  sched.run_until_idle();

  const JobStatusInfo st = sched.status(out.id);
  EXPECT_EQ(st.state, JobState::kFailed);
  EXPECT_EQ(st.failure, fault::JobFailure::kDeadlineExpired);
  // Attempt 1 re-queues (1), attempt 2 re-queues (2), attempt 3 fails: the
  // re-queue count is bounded at max_requeues + 1 and no further.
  EXPECT_EQ(st.requeues, spec.max_requeues + 1);
  EXPECT_EQ(sched.report().requeues, static_cast<u64>(spec.max_requeues) + 1);
  EXPECT_EQ(sched.report().failed, 1u);
}

TEST(Qdaemon, QuarantineInvalidatesHandleAndKeepsNodeOutOfPool) {
  machine::Machine m(small_machine({4, 2, 1, 1, 1, 1}));
  Qdaemon qd(&m);
  qd.boot();
  const torus::Shape box{{2, 2, 1, 1, 1, 1}};
  auto h = qd.allocate_partition("victim", box, 2);
  ASSERT_TRUE(h.has_value());
  ASSERT_TRUE(qd.valid(*h));

  const NodeId bad = h->partition->nodes()[0];
  qd.quarantine_node(bad);
  // The handle is revoked, not dangling: valid() says so and the reason
  // names the node.  A stale client touching it gets a clean abort.
  EXPECT_FALSE(qd.valid(*h));
  EXPECT_NE(qd.revocation_reason(*h).find(std::to_string(bad.value)),
            std::string::npos);
  const auto job = qd.run_job(*h, [](comms::Communicator&,
                                     std::vector<std::string>&) {});
  EXPECT_FALSE(job.ok);

  // Teardown re-sweeps the freed nodes; the quarantined one stays out, so a
  // fresh allocation of the same box lands on the other half of the machine.
  qd.release_partition(*h);
  auto fresh = qd.allocate_partition("fresh", box, 2);
  ASSERT_TRUE(fresh.has_value());
  for (const NodeId n : fresh->partition->nodes()) {
    EXPECT_NE(n.value, bad.value);
  }
}

TEST(SchedulerMigration, QuarantineMidRunMigratesAndMatchesUnfaultedRun) {
  SchedScenario ref_sc;
  const SchedOutcome ref = run_sched_job(ref_sc, nullptr);
  ASSERT_TRUE(ref.done()) << ref.detail;
  ASSERT_EQ(ref.migrations, 0);

  SchedScenario faulted = ref_sc;
  faulted.quarantine_at_step = 3;
  const SchedOutcome got = run_sched_job(faulted, nullptr);
  ASSERT_TRUE(got.done()) << got.detail;
  EXPECT_EQ(got.migrations, 1);
  EXPECT_EQ(got.steps, static_cast<u64>(ref_sc.total_steps));
  // The migrated run finished on a different box than it started on; the
  // result must not know the difference.
  EXPECT_EQ(got.result_bits, ref.result_bits);
  EXPECT_EQ(got.output, ref.output);
}

TEST(SchedulerMigration, FaultedRunIsDeterministicAcrossThreadCounts) {
  SchedScenario sc;
  sc.quarantine_at_step = 2;
  sc.sim_threads = 1;
  const SchedOutcome one = run_sched_job(sc, nullptr);
  ASSERT_TRUE(one.done()) << one.detail;
  ASSERT_EQ(one.migrations, 1);
  for (const int threads : {2, 4}) {
    sc.sim_threads = threads;
    const SchedOutcome got = run_sched_job(sc, nullptr);
    const std::string what = std::to_string(threads) + " threads";
    ASSERT_TRUE(got.done()) << what;
    EXPECT_EQ(got.result_bits, one.result_bits) << what;
    EXPECT_EQ(got.end_cycle, one.end_cycle) << what;
    EXPECT_EQ(got.trace_digest, one.trace_digest) << what;
    EXPECT_EQ(got.migrations, one.migrations) << what;
    EXPECT_EQ(got.steps, one.steps) << what;
  }
}

TEST(SchedulerMigration, SigkillMidMigrationResumesBitExactAcrossThreads) {
  const std::string dir = fresh_dir("kill");

  // Writer child: quarantine revokes the partition at step 3; the process
  // SIGKILLs itself the instant the migration checkpoint is durable --
  // before the re-queue, mid-migration.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SchedScenario sc;
    sc.quarantine_at_step = 3;
    sc.sim_threads = 2;
    (void)run_sched_job(sc, &dir, /*resume_from_store=*/false,
                        /*kill_at_migration=*/true);
    _exit(9);  // not reached: the writer kills itself
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The durable generation exists and the unfaulted reference is the truth
  // the recovered runs must reproduce.
  snapshot::SnapshotStore store(dir, "job_stepper");
  ASSERT_GE(store.latest_generation(), 1u);
  const SchedScenario ref_sc;
  const SchedOutcome ref = run_sched_job(ref_sc, nullptr);
  ASSERT_TRUE(ref.done()) << ref.detail;

  // Fresh processes (machines) resume the job from the store at 1, 2 and 4
  // threads: every one must complete the remaining steps to the identical
  // digest, and the three recoveries must agree with each other exactly.
  SchedOutcome first;
  for (const int threads : {1, 2, 4}) {
    SchedScenario sc;
    sc.sim_threads = threads;
    const SchedOutcome got =
        run_sched_job(sc, &dir, /*resume_from_store=*/true);
    const std::string what = std::to_string(threads) + " threads";
    ASSERT_TRUE(got.done()) << what << ": " << got.detail;
    EXPECT_EQ(got.result_bits, ref.result_bits) << what;
    EXPECT_EQ(got.output, ref.output) << what;
    if (threads == 1) {
      first = got;
    } else {
      EXPECT_EQ(got.end_cycle, first.end_cycle) << what;
      EXPECT_EQ(got.trace_digest, first.trace_digest) << what;
      EXPECT_EQ(got.steps, first.steps) << what;
    }
  }
}

}  // namespace
}  // namespace qcdoc::host
