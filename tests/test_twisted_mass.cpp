// Twisted-mass Wilson fermions: gamma5-relations, exact reduction to plain
// Wilson at mu = 0 (arithmetic AND simulated machine time), CG convergence
// and a pinned golden digest for one small twisted solve.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/cg.h"
#include "lattice/twisted_mass.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::fill_gauge_by_global_site;
using testing::gather_global;
using testing::true_residual;

Complex global_cdot(const std::vector<double>& a,
                    const std::vector<double>& b) {
  Complex sum = 0;
  for (std::size_t i = 0; i + 1 < a.size(); i += 2) {
    sum += std::conj(Complex(a[i], a[i + 1])) * Complex(b[i], b[i + 1]);
  }
  return sum;
}

u64 fnv_bits(const std::vector<double>& v) {
  u64 h = 14695981039346656037ull;
  for (const double d : v) {
    u64 w = std::bit_cast<u64>(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Deterministic second fill, distinct from fill_by_global_site.
void fill_phi(const GlobalGeometry& geom, DistField& f) {
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      double* p = f.site(r, s);
      for (int k = 0; k < f.site_doubles(); ++k) {
        p[k] = std::cos(0.3 * g[0] + 0.7 * g[1] - 0.2 * g[2] + g[3] + k);
      }
    }
  }
}

TEST(TwistedMass, ApplyDagIsAdjointOfApply) {
  // <phi, M psi> == <M^+ phi, psi>: the Wilson hopping term is
  // gamma5-hermitian and the twist i mu~ gamma5 flips sign under dagger,
  // which is exactly what apply_dag implements.
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(3);
  gauge.randomize(rng);
  TwistedMassDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                      TwistedMassParams{.kappa = 0.21, .mu = 0.3});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField mpsi = op.make_field("mpsi");
  DistField mdphi = op.make_field("mdphi");
  fill_by_global_site(*rig.geom, psi);
  fill_phi(*rig.geom, phi);
  op.apply(mpsi, psi);
  op.apply_dag(mdphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, mpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, mdphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(lhs));
}

TEST(TwistedMass, TwistTermIsAntiHermitianAndChiral) {
  // The twist alone (M(mu) - M(0)) psi = i mu~ gamma5 psi: check
  // <phi, T psi> = -<T phi, psi> (anti-hermitian) and that its norm is
  // exactly mu~^2 |psi|^2 (gamma5 is an isometry).
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  fill_gauge_by_global_site(*rig.geom, gauge, 0xfeed);
  const TwistedMassParams tp{.kappa = 0.124, .mu = 0.25};
  TwistedMassDirac tm(rig.ops.get(), rig.geom.get(), &gauge, tp);
  WilsonDirac w(rig.ops.get(), rig.geom.get(), &gauge,
                WilsonParams{.kappa = tp.kappa});

  DistField psi = tm.make_field("psi");
  DistField phi = tm.make_field("phi");
  DistField t_psi = tm.make_field("t_psi");
  DistField t_phi = tm.make_field("t_phi");
  DistField w_out = tm.make_field("w_out");
  fill_by_global_site(*rig.geom, psi);
  fill_phi(*rig.geom, phi);

  FieldOps& ops = tm.ops();
  tm.apply(t_psi, psi);
  w.apply(w_out, psi);
  ops.axpy(-1.0, w_out, t_psi);  // T psi
  tm.apply(t_phi, phi);
  w.apply(w_out, phi);
  ops.axpy(-1.0, w_out, t_phi);  // T phi

  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, t_psi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, t_phi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs + rhs), 0.0, 1e-9 * (std::abs(lhs) + 1.0));

  const double mt = tm.mu_tilde();
  EXPECT_NEAR(ops.norm2(t_psi), mt * mt * ops.norm2(psi),
              1e-9 * ops.norm2(psi));
}

TEST(TwistedMass, MuZeroReducesToWilsonBitwise) {
  // At mu = 0 the operator must be Wilson exactly: same bits in the output
  // AND the same simulated cycle count (no phantom twist kernel charged).
  const Coord4 global{4, 4, 4, 4};
  LatticeRig rig_w({2, 2, 1, 1, 1, 1}, global);
  LatticeRig rig_t({2, 2, 1, 1, 1, 1}, global);

  auto run = [&](LatticeRig& rig, bool twisted, Cycle* cycles) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xabcd);
    std::unique_ptr<DiracOperator> op;
    if (twisted) {
      op = std::make_unique<TwistedMassDirac>(
          rig.ops.get(), rig.geom.get(), &gauge,
          TwistedMassParams{.kappa = 0.124, .mu = 0.0});
    } else {
      op = std::make_unique<WilsonDirac>(rig.ops.get(), rig.geom.get(),
                                         &gauge,
                                         WilsonParams{.kappa = 0.124});
    }
    DistField in = op->make_field("in");
    DistField out = op->make_field("out");
    fill_by_global_site(*rig.geom, in);
    const Cycle before = rig.bsp->now();
    op->apply(out, in);
    op->apply_dag(in, out);
    *cycles = rig.bsp->now() - before;
    return gather_global(*rig.geom, in);
  };
  Cycle cyc_w = 0, cyc_t = 0;
  const auto a = run(rig_w, false, &cyc_w);
  const auto b = run(rig_t, true, &cyc_t);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "word " << i;
  }
  EXPECT_EQ(cyc_w, cyc_t);
}

TEST(TwistedMass, CgSolvesTwistedSystem) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(45);
  gauge.randomize_near_unit(rng, 0.1);
  TwistedMassDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                      TwistedMassParams{.kappa = 0.124, .mu = 0.05});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(true_residual(op, x, b), 1e-6);
  // The twist improves conditioning: it must not be slower than mu = 0.
  EXPECT_GT(result.iterations, 3);
}

TEST(TwistedMass, GoldenSolveDigest) {
  // Pinned bit-level digest of a fixed 10-iteration twisted solve: any
  // change to the operator, codec or solver arithmetic on this path is a
  // deliberate, review-worthy event (regenerate by updating the constant).
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(2026);
  gauge.randomize_near_unit(rng, 0.12);
  TwistedMassDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                      TwistedMassParams{.kappa = 0.124, .mu = 0.1});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.fixed_iterations = 10;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_EQ(result.iterations, 10);
  const u64 digest = fnv_bits(gather_global(*rig.geom, x));
  EXPECT_EQ(digest, 0x63d2b0656faaf4baull)
      << "twisted golden digest drifted: 0x" << std::hex << digest;
}

}  // namespace
}  // namespace qcdoc::lattice
