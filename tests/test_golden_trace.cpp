// Golden-trace regression tests (the determinism headline).
//
// A fixed workload -- boot a 2^6 = 64-node machine through the qdaemon and
// run a 10-iteration Wilson CG solve -- is summarized in five numbers: the
// engine's event-order digest, the event count, the final cycle, the bit
// pattern of the CG residual, and an FNV-1a checksum of every double in the
// solution field.  The committed golden file pins all five; the serial and
// parallel engines (any thread count) must reproduce them exactly.  A
// mismatch means event order, timing, or arithmetic changed -- either an
// intentional model change (regenerate, see below) or a determinism bug.
//
// Regenerate after an intentional model change with:
//   QCDOC_REGEN_GOLDEN=1 ./test_golden_trace
// and commit the updated tests/golden/ file.  The regeneration always uses
// the serial engine, the reference semantics.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "sim/engine.h"

#ifndef QCDOC_GOLDEN_DIR
#define QCDOC_GOLDEN_DIR "tests/golden"
#endif

namespace qcdoc::lattice {
namespace {

constexpr const char* kGoldenFile =
    QCDOC_GOLDEN_DIR "/boot_cg10_2x6.golden";

struct TraceSummary {
  u64 digest = 0;
  u64 events = 0;
  u64 end_cycle = 0;
  u64 residual_bits = 0;
  u64 field_checksum = 0;

  friend bool operator==(const TraceSummary&, const TraceSummary&) = default;
};

u64 field_fnv(const DistField& f) {
  u64 h = sim::detail::kFnvOffset;
  for (int r = 0; r < f.ranks(); ++r) {
    for (const double v : f.data(r)) {
      h = sim::detail::fnv1a(h, std::bit_cast<u64>(v));
    }
  }
  return h;
}

TraceSummary run_workload(int threads) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};
  cfg.sim_threads = threads;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();

  torus::Shape whole;
  whole.extent = cfg.shape.extent;
  const auto handle = qd.allocate_partition("golden", whole, 4);
  SolverRig rig(&m, handle->partition, {4, 4, 4, 16});

  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(2026);
  gauge.randomize_near_unit(rng, 0.12);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.124});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.fixed_iterations = 10;
  const CgResult r = cg_solve(op, x, b, params);
  EXPECT_EQ(r.iterations, 10);

  TraceSummary s;
  s.digest = m.engine().trace_digest();
  s.events = m.engine().events_executed();
  s.end_cycle = m.engine().now();
  s.residual_bits = std::bit_cast<u64>(r.relative_residual);
  s.field_checksum = field_fnv(x);
  return s;
}

void write_golden(const TraceSummary& s) {
  std::ofstream out(kGoldenFile);
  ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
  out << "# Golden trace: 2^6 machine qdaemon boot + 10-iteration Wilson CG\n"
      << "# (4^3 x 16 global lattice, kappa 0.124, seed 2026).  Regenerate\n"
      << "# with QCDOC_REGEN_GOLDEN=1 ./test_golden_trace after intentional\n"
      << "# model changes only.\n";
  char line[64];
  std::snprintf(line, sizeof(line), "digest %016llx\n",
                static_cast<unsigned long long>(s.digest));
  out << line;
  std::snprintf(line, sizeof(line), "events %016llx\n",
                static_cast<unsigned long long>(s.events));
  out << line;
  std::snprintf(line, sizeof(line), "end_cycle %016llx\n",
                static_cast<unsigned long long>(s.end_cycle));
  out << line;
  std::snprintf(line, sizeof(line), "residual_bits %016llx\n",
                static_cast<unsigned long long>(s.residual_bits));
  out << line;
  std::snprintf(line, sizeof(line), "field_checksum %016llx\n",
                static_cast<unsigned long long>(s.field_checksum));
  out << line;
}

TraceSummary read_golden() {
  std::ifstream in(kGoldenFile);
  EXPECT_TRUE(in.good()) << "missing golden file " << kGoldenFile
                         << " -- regenerate with QCDOC_REGEN_GOLDEN=1";
  std::map<std::string, u64> kv;
  std::string key;
  while (in >> key) {
    if (key[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    std::string hex;
    in >> hex;
    kv[key] = std::strtoull(hex.c_str(), nullptr, 16);
  }
  TraceSummary s;
  s.digest = kv["digest"];
  s.events = kv["events"];
  s.end_cycle = kv["end_cycle"];
  s.residual_bits = kv["residual_bits"];
  s.field_checksum = kv["field_checksum"];
  return s;
}

void check_against_golden(int threads) {
  const TraceSummary got = run_workload(threads);
  if (std::getenv("QCDOC_REGEN_GOLDEN")) {
    ASSERT_EQ(threads, 1) << "golden files are regenerated serially";
    write_golden(got);
    GTEST_SKIP() << "regenerated " << kGoldenFile;
  }
  const TraceSummary want = read_golden();
  EXPECT_EQ(got.digest, want.digest) << "event order diverged";
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.end_cycle, want.end_cycle) << "simulated time diverged";
  EXPECT_EQ(got.residual_bits, want.residual_bits)
      << "CG arithmetic diverged";
  EXPECT_EQ(got.field_checksum, want.field_checksum)
      << "solution field diverged";
}

TEST(GoldenTrace, SerialEngineReproducesCommittedTrace) {
  check_against_golden(1);
}

TEST(GoldenTrace, ParallelEngine2ThreadsReproducesCommittedTrace) {
  if (std::getenv("QCDOC_REGEN_GOLDEN")) GTEST_SKIP();
  check_against_golden(2);
}

TEST(GoldenTrace, ParallelEngine4ThreadsReproducesCommittedTrace) {
  if (std::getenv("QCDOC_REGEN_GOLDEN")) GTEST_SKIP();
  check_against_golden(4);
}

}  // namespace
}  // namespace qcdoc::lattice
