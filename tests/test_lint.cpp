// Fixture tests for qcdoc-lint (tools/lint): every rule R1..R8 is exercised
// with a positive hit, a clean pass, and an annotated suppression, all via
// lint_source() under virtual paths so directory scoping is tested without
// touching the filesystem.  The final test lints the real src/ tree and
// requires zero findings -- the same gate CI runs, pinned here so a
// determinism-contract regression fails tier-1 locally too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace qcdoc::lint {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string dump(const std::vector<Finding>& fs) {
  std::string out;
  for (const auto& f : fs) out += format(f) + "\n";
  return out;
}

// --- registry ------------------------------------------------------------

TEST(LintRegistry, AllEightRulesPlusSuppressionMetaRule) {
  const auto infos = rule_infos();
  ASSERT_EQ(infos.size(), 9u);
  EXPECT_EQ(infos[0].id, "wall-clock");
  EXPECT_EQ(infos[1].id, "unordered-container");
  EXPECT_EQ(infos[2].id, "raw-engine");
  EXPECT_EQ(infos[3].id, "mutable-static");
  EXPECT_EQ(infos[4].id, "nodiscard-status");
  EXPECT_EQ(infos[5].id, "cycle-narrow");
  EXPECT_EQ(infos[6].id, "std-function-event");
  EXPECT_EQ(infos[7].id, "raw-state-io");
  EXPECT_EQ(infos[8].id, "suppression");
  for (const auto& r : infos) EXPECT_FALSE(r.summary.empty()) << r.id;
}

TEST(LintRegistry, FormatIsFileLineRuleMessage) {
  const Finding f{"src/scu/link.h", 42, "wall-clock", "boom"};
  EXPECT_EQ(format(f), "src/scu/link.h:42: [wall-clock] boom");
}

// --- R1: wall-clock ------------------------------------------------------

TEST(LintWallClock, FlagsEntropySourcesInSimCriticalCode) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    int jitter() { return rand() % 8; }
    long stamp() { return time(nullptr); }
    void seed() { std::random_device rd; }
    void wall() { auto t = std::chrono::system_clock::now(); }
  )cc");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 4) << dump(fs);
}

TEST(LintWallClock, CleanOutsideScopedDirsAndForSimulatedTime) {
  // Same entropy calls outside the sim-critical tree: out of scope.
  EXPECT_TRUE(run("src/lattice/fixture.cpp",
                  "int j() { return rand(); }").empty());
  // Engine-clock reads, member `.time` accesses and foreign `x::time()`
  // qualifications are all fine inside scope.
  const auto fs = run("src/hssl/fixture.cpp", R"cc(
    Cycle now_reads(sim::EngineRef e) { return e.now(); }
    Cycle member(const Event& ev) { return ev.time; }
    Cycle other() { return frame::time(3); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintWallClock, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock) perf accounting only, never in the trace
    auto t0 = std::chrono::steady_clock::now();
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R2: unordered-container ---------------------------------------------

TEST(LintUnordered, FlagsUnorderedContainersAndPointerKeys) {
  const auto fs = run("src/net/fixture.cpp", R"cc(
    std::unordered_map<u32, int> inflight;
    std::unordered_set<std::string> seen;
    std::map<Node*, int> by_addr;
  )cc");
  EXPECT_EQ(count_rule(fs, "unordered-container"), 3) << dump(fs);
}

TEST(LintUnordered, CleanForOrderedValueKeyedContainers) {
  const auto fs = run("src/machine/fixture.cpp", R"cc(
    std::map<u32, int> by_rank;
    std::set<std::string> names;
    std::map<std::pair<u32, u32>, Wire*> wires;  // pointer VALUES are fine
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Out of digest-affecting scope entirely.
  EXPECT_TRUE(run("tools/lint/fixture.cpp",
                  "std::unordered_map<int, int> cache;").empty());
}

TEST(LintUnordered, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/comms/fixture.cpp", R"cc(
    // qcdoc-lint: allow(unordered-container) lookup only, never iterated
    std::unordered_map<u64, Handler> handlers;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R3: raw-engine ------------------------------------------------------

TEST(LintRawEngine, FlagsRawPointerTemporaryAndInternalPrimitive) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    void a(sim::Engine* e) { e->schedule(5, [] {}); }
    void b(Scu& s) { s.engine().schedule_at(9, [] {}); }
    void c() { schedule_at_on(aff, 3, [] {}); }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-engine"), 3) << dump(fs);
}

TEST(LintRawEngine, CleanForNamedEngineRefAndInsideSrcSim) {
  const auto fs = run("src/fault/fixture.cpp", R"cc(
    void ok(sim::EngineRef host) { host.schedule(5, [] {}); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // The engine's own implementation is exempt: it IS the primitive.
  EXPECT_TRUE(run("src/sim/fixture.cpp",
                  "void f(Engine* e) { e->schedule(1, [] {}); }").empty());
}

TEST(LintRawEngine, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/net/fixture.cpp", R"cc(
    // qcdoc-lint: allow(raw-engine) build-time wiring, no events in flight
    void wire(sim::Engine* e) { e->schedule(0, [] {}); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R4: mutable-static --------------------------------------------------

TEST(LintMutableStatic, FlagsMutableStaticAndThreadLocalState) {
  const auto fs = run("src/hssl/fixture.cpp", R"cc(
    static int frames_sent = 0;
    thread_local Cache warm_cache;
    static std::vector<int> pool{};
  )cc");
  EXPECT_EQ(count_rule(fs, "mutable-static"), 3) << dump(fs);
}

TEST(LintMutableStatic, CleanForConstantsAndFunctionDeclarations) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    static const int kMaxRetries = 4;
    static constexpr Cycle kWireDelay = 2;
    static void helper(int x);
    static std::vector<int> make_table();
    int once() { static thread_local const int kSeed = 7; return kSeed; }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Out of the sim-critical tree: statics are the caller's business.
  EXPECT_TRUE(run("src/host/fixture.cpp", "static int calls = 0;").empty());
}

TEST(LintMutableStatic, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(mutable-static) per-thread ctx, reset around events
    thread_local ExecCtx ctx;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R5: nodiscard-status ------------------------------------------------

TEST(LintNodiscard, FlagsBoolStatusApisWithoutNodiscard) {
  const auto fs = run("src/scu/fixture.h", R"cc(
    class Link {
     public:
      bool drained() const;
      virtual bool faulted();
    };
  )cc");
  EXPECT_EQ(count_rule(fs, "nodiscard-status"), 2) << dump(fs);
}

TEST(LintNodiscard, CleanForAnnotatedApisParamsOperatorsAndNonHeaders) {
  const auto fs = run("src/hssl/fixture.h", R"cc(
    class Hssl {
     public:
      [[nodiscard]] bool trained() const;
      [[nodiscard]] inline virtual bool busy();
      void set_flag(bool enabled);
      bool operator==(const Hssl& o) const;
    };
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Definitions in .cpp files are not the API surface; headers are.
  EXPECT_TRUE(run("src/fault/fixture.cpp",
                  "bool FaultPlan::empty() const { return true; }").empty());
  // Headers outside scu/hssl/fault carry no status contract.
  EXPECT_TRUE(run("src/sim/fixture.h", "bool step();").empty());
}

TEST(LintNodiscard, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/fault/fixture.h", R"cc(
    // qcdoc-lint: allow(nodiscard-status) predicate used only in logging
    bool verbose() const;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R6: cycle-narrow ----------------------------------------------------

TEST(LintCycleNarrow, FlagsCastsAndDeclarationsNarrowingCycleCounts) {
  const auto fs = run("src/machine/fixture.cpp", R"cc(
    u32 a(sim::EngineRef e) { return static_cast<u32>(e.now()); }
    int b() { return static_cast<int>(elapsed_cycles_); }
    void d() { u32 deadline = start_cycles_ + 500; }
  )cc");
  EXPECT_EQ(count_rule(fs, "cycle-narrow"), 3) << dump(fs);
}

TEST(LintCycleNarrow, CleanForWideTypesAndNonCycleQuantities) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    Cycle t(sim::EngineRef e) { return e.now(); }
    u64 wide(Cycle c) { return static_cast<u64>(c); }
    u32 rank(NodeId n) { return static_cast<u32>(n.value); }
    u32 words = payload_bytes / 4;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  EXPECT_TRUE(run("bench/fixture.cpp",
                  "u32 t = static_cast<u32>(e.now());").empty());
}

TEST(LintCycleNarrow, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(cycle-narrow) header field is 16 bits on the wire
    u16 stamp = static_cast<u16>(now_cycles & 0xffff);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R7: std-function-event ----------------------------------------------

TEST(LintStdFunctionEvent, FlagsStdFunctionInsideSimCore) {
  const auto fs = run("src/sim/fixture.h", R"cc(
    struct Event {
      Cycle time;
      std::function<void()> fn;
    };
    void schedule(std::function<void()> fn);
  )cc");
  EXPECT_EQ(count_rule(fs, "std-function-event"), 2) << dump(fs);
}

TEST(LintStdFunctionEvent, CleanForEventFnAndOutsideSimCore) {
  const auto fs = run("src/sim/fixture.h", R"cc(
    struct Event {
      Cycle time;
      EventFn fn;
    };
    void schedule(EventFn fn);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // std::function is fine outside the engine hot path (host job callbacks,
  // audit hooks): scope is src/sim/ only.
  EXPECT_TRUE(run("src/host/fixture.h",
                  "void run_job(std::function<void()> app);").empty());
}

TEST(LintStdFunctionEvent, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(std-function-event) cold-path debug hook, not per event
    std::function<void()> on_deadlock_;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R8: raw-state-io ----------------------------------------------------

TEST(LintRawStateIo, FlagsRawFileIoOutsideSnapshot) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    void dump(const Machine& m) {
      FILE* f = fopen("state.bin", "wb");
      fwrite(&m, 1, sizeof(m), f);
      std::ofstream log("state.txt");
    }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-state-io"), 3) << dump(fs);
}

TEST(LintRawStateIo, FlagsWholeStructMemcpy) {
  const auto fs = run("src/fault/fixture.cpp", R"cc(
    void stash(const FaultEvent& e, char* buf) {
      std::memcpy(buf, &e, sizeof(FaultEvent));
      std::memcpy(buf, &e, sizeof(fault::FaultEvent));
    }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-state-io"), 2) << dump(fs);
}

TEST(LintRawStateIo, CleanForScalarPunningAndSnapshotCode) {
  // sizeof(scalar) / sizeof(expr) copies are everyday value punning.
  const auto fs = run("src/common/fixture.cpp", R"cc(
    void pun(double v) {
      u64 bits;
      std::memcpy(&bits, &v, sizeof(bits));
      std::memcpy(&bits, &v, sizeof(double));
    }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // The serializer itself is the one place allowed to touch raw bytes.
  EXPECT_TRUE(run("src/snapshot/fixture.cpp",
                  "void w() { fwrite(p, 1, n, f); }").empty());
  // Tools and tests are out of scope (src/ only).
  EXPECT_TRUE(run("tools/qsnap/fixture.cpp",
                  "void r() { fopen(\"x\", \"rb\"); }").empty());
}

TEST(LintRawStateIo, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    // qcdoc-lint: allow(raw-state-io) debug hexdump, never read back
    FILE* f = fopen("dump.txt", "w");
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- suppression meta-rule -----------------------------------------------

TEST(LintSuppression, MissingReasonIsItselfAFindingAndDoesNotSuppress) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock)
    int j = rand();
  )cc");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
}

TEST(LintSuppression, UnknownRuleIdIsAFinding) {
  const auto fs = run("src/net/fixture.cpp",
                      "// qcdoc-lint: allow(no-such-rule) because reasons\n");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintSuppression, MalformedAnnotationIsAFinding) {
  const auto fs = run("src/net/fixture.cpp",
                      "// qcdoc-lint: disable wall-clock\n");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintSuppression, CoversOwnLineAndNextLineOnly) {
  // Two lines below the annotation: out of the suppression window.
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock) documented exemption
    int fine = rand();
    int still_flagged = rand();
  )cc");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
}

TEST(LintSuppression, OneAnnotationMaySuppressMultipleRules) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock, cycle-narrow) replaying captured trace
    u32 t = static_cast<u32>(rand() + now_cycles);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- lexer robustness ----------------------------------------------------

TEST(LintLexer, StringLiteralsAndCommentsDoNotTrigger) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    const char* kMsg = "call rand() and time() for fun";
    // a comment mentioning rand() and std::unordered_map
    const char* kRaw = R"(schedule_at_on inside a raw string)";
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- options & driver ----------------------------------------------------

TEST(LintOptions, OnlyFilterRestrictsRulesButKeepsSuppressionChecks) {
  Options only_r1;
  only_r1.only = {"wall-clock"};
  const auto fs = lint_source("src/scu/fixture.cpp", R"cc(
    int j = rand();
    static int counter = 0;
    // qcdoc-lint: allow(wall-clock)
  )cc",
                              only_r1);
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
  EXPECT_EQ(count_rule(fs, "mutable-static"), 0) << dump(fs);
  // Broken annotations are reported even under a rule filter.
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintPaths, MissingPathYieldsIoFinding) {
  const auto fs = lint_paths({"no/such/dir-xyzzy"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "io");
}

// --- the real tree -------------------------------------------------------

// The gate CI enforces, pinned locally: the shipped src/ tree has zero
// unsuppressed findings.  If a rule or the tree changes, this fails tier-1
// before the CI lint job ever runs.
TEST(LintTree, ShippedSourceTreeIsClean) {
  const auto fs = lint_paths({QCDOC_SOURCE_DIR "/src"});
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

}  // namespace
}  // namespace qcdoc::lint
