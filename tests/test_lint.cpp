// Fixture tests for qcdoc-lint (tools/lint): every rule R1..R11 is exercised
// with a positive hit, a clean pass, and an annotated suppression.  R1..R8
// run via lint_source() under virtual paths so directory scoping is tested
// without touching the filesystem; the cross-TU rules R9..R11 use
// lint_project() so the ownership index spans fixture headers and sources.
// The final test lints the real src/bench/tools/examples trees and requires
// zero findings -- the same gate CI runs, pinned here so a
// determinism-contract regression fails tier-1 locally too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace qcdoc::lint {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string dump(const std::vector<Finding>& fs) {
  std::string out;
  for (const auto& f : fs) out += format(f) + "\n";
  return out;
}

// --- registry ------------------------------------------------------------

TEST(LintRegistry, AllElevenRulesPlusSuppressionMetaRule) {
  const auto infos = rule_infos();
  ASSERT_EQ(infos.size(), 12u);
  EXPECT_EQ(infos[0].id, "wall-clock");
  EXPECT_EQ(infos[1].id, "unordered-container");
  EXPECT_EQ(infos[2].id, "raw-engine");
  EXPECT_EQ(infos[3].id, "mutable-static");
  EXPECT_EQ(infos[4].id, "nodiscard-status");
  EXPECT_EQ(infos[5].id, "cycle-narrow");
  EXPECT_EQ(infos[6].id, "std-function-event");
  EXPECT_EQ(infos[7].id, "raw-state-io");
  EXPECT_EQ(infos[8].id, "cross-affinity-access");
  EXPECT_EQ(infos[9].id, "event-raw-capture");
  EXPECT_EQ(infos[10].id, "host-touch-undeclared");
  EXPECT_EQ(infos[11].id, "suppression");
  for (const auto& r : infos) EXPECT_FALSE(r.summary.empty()) << r.id;
}

TEST(LintRegistry, FormatIsFileLineColRuleMessage) {
  const Finding file_level{"src/scu/link.h", 42, 0, "wall-clock", "boom"};
  EXPECT_EQ(format(file_level), "src/scu/link.h:42: [wall-clock] boom");
  const Finding with_col{"src/scu/link.h", 42, 7, "wall-clock", "boom"};
  EXPECT_EQ(format(with_col), "src/scu/link.h:42:7: [wall-clock] boom");
}

TEST(LintRegistry, TokenRuleFindingsCarryColumns) {
  const auto fs = run("src/scu/fixture.cpp", "int j = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].col, 9);  // 1-based column of `rand`
}

TEST(LintRegistry, SarifOutputNamesToolRulesAndLocations) {
  const std::vector<Finding> fs = {
      {"src/scu/link.h", 42, 7, "wall-clock", "boom \"quoted\""}};
  const std::string sarif = format_sarif(fs);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"qcdoc-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"src/scu/link.h\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("boom \\\"quoted\\\""), std::string::npos);
  // Every registered rule appears in the driver metadata.
  for (const auto& r : rule_infos()) {
    EXPECT_NE(sarif.find("\"" + r.id + "\""), std::string::npos) << r.id;
  }
}

// --- R1: wall-clock ------------------------------------------------------

TEST(LintWallClock, FlagsEntropySourcesInSimCriticalCode) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    int jitter() { return rand() % 8; }
    long stamp() { return time(nullptr); }
    void seed() { std::random_device rd; }
    void wall() { auto t = std::chrono::system_clock::now(); }
  )cc");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 4) << dump(fs);
}

TEST(LintWallClock, CleanOutsideScopedDirsAndForSimulatedTime) {
  // Same entropy calls outside the sim-critical tree: out of scope.
  EXPECT_TRUE(run("src/lattice/fixture.cpp",
                  "int j() { return rand(); }").empty());
  // Engine-clock reads, member `.time` accesses and foreign `x::time()`
  // qualifications are all fine inside scope.
  const auto fs = run("src/hssl/fixture.cpp", R"cc(
    Cycle now_reads(sim::EngineRef e) { return e.now(); }
    Cycle member(const Event& ev) { return ev.time; }
    Cycle other() { return frame::time(3); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintWallClock, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock) perf accounting only, never in the trace
    auto t0 = std::chrono::steady_clock::now();
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R2: unordered-container ---------------------------------------------

TEST(LintUnordered, FlagsUnorderedContainersAndPointerKeys) {
  const auto fs = run("src/net/fixture.cpp", R"cc(
    std::unordered_map<u32, int> inflight;
    std::unordered_set<std::string> seen;
    std::map<Node*, int> by_addr;
  )cc");
  EXPECT_EQ(count_rule(fs, "unordered-container"), 3) << dump(fs);
}

TEST(LintUnordered, CleanForOrderedValueKeyedContainers) {
  const auto fs = run("src/machine/fixture.cpp", R"cc(
    std::map<u32, int> by_rank;
    std::set<std::string> names;
    std::map<std::pair<u32, u32>, Wire*> wires;  // pointer VALUES are fine
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Out of digest-affecting scope entirely.
  EXPECT_TRUE(run("tools/lint/fixture.cpp",
                  "std::unordered_map<int, int> cache;").empty());
}

TEST(LintUnordered, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/comms/fixture.cpp", R"cc(
    // qcdoc-lint: allow(unordered-container) lookup only, never iterated
    std::unordered_map<u64, Handler> handlers;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R3: raw-engine ------------------------------------------------------

TEST(LintRawEngine, FlagsRawPointerTemporaryAndInternalPrimitive) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    void a(sim::Engine* e) { e->schedule(5, [] {}); }
    void b(Scu& s) { s.engine().schedule_at(9, [] {}); }
    void c() { schedule_at_on(aff, 3, [] {}); }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-engine"), 3) << dump(fs);
}

TEST(LintRawEngine, CleanForNamedEngineRefAndInsideSrcSim) {
  const auto fs = run("src/fault/fixture.cpp", R"cc(
    void ok(sim::EngineRef host) { host.schedule(5, [] {}); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // The engine's own implementation is exempt: it IS the primitive.
  EXPECT_TRUE(run("src/sim/fixture.cpp",
                  "void f(Engine* e) { e->schedule(1, [] {}); }").empty());
}

TEST(LintRawEngine, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/net/fixture.cpp", R"cc(
    // qcdoc-lint: allow(raw-engine) build-time wiring, no events in flight
    void wire(sim::Engine* e) { e->schedule(0, [] {}); }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R4: mutable-static --------------------------------------------------

TEST(LintMutableStatic, FlagsMutableStaticAndThreadLocalState) {
  const auto fs = run("src/hssl/fixture.cpp", R"cc(
    static int frames_sent = 0;
    thread_local Cache warm_cache;
    static std::vector<int> pool{};
  )cc");
  EXPECT_EQ(count_rule(fs, "mutable-static"), 3) << dump(fs);
}

TEST(LintMutableStatic, CleanForConstantsAndFunctionDeclarations) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    static const int kMaxRetries = 4;
    static constexpr Cycle kWireDelay = 2;
    static void helper(int x);
    static std::vector<int> make_table();
    int once() { static thread_local const int kSeed = 7; return kSeed; }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Out of the sim-critical tree: statics are the caller's business.
  EXPECT_TRUE(run("src/host/fixture.cpp", "static int calls = 0;").empty());
}

TEST(LintMutableStatic, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(mutable-static) per-thread ctx, reset around events
    thread_local ExecCtx ctx;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R5: nodiscard-status ------------------------------------------------

TEST(LintNodiscard, FlagsBoolStatusApisWithoutNodiscard) {
  const auto fs = run("src/scu/fixture.h", R"cc(
    class Link {
     public:
      bool drained() const;
      virtual bool faulted();
    };
  )cc");
  EXPECT_EQ(count_rule(fs, "nodiscard-status"), 2) << dump(fs);
}

TEST(LintNodiscard, CleanForAnnotatedApisParamsOperatorsAndNonHeaders) {
  const auto fs = run("src/hssl/fixture.h", R"cc(
    class Hssl {
     public:
      [[nodiscard]] bool trained() const;
      [[nodiscard]] inline virtual bool busy();
      void set_flag(bool enabled);
      bool operator==(const Hssl& o) const;
    };
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // Definitions in .cpp files are not the API surface; headers are.
  EXPECT_TRUE(run("src/fault/fixture.cpp",
                  "bool FaultPlan::empty() const { return true; }").empty());
  // Headers outside scu/hssl/fault carry no status contract.
  EXPECT_TRUE(run("src/sim/fixture.h", "bool step();").empty());
}

TEST(LintNodiscard, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/fault/fixture.h", R"cc(
    // qcdoc-lint: allow(nodiscard-status) predicate used only in logging
    bool verbose() const;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R6: cycle-narrow ----------------------------------------------------

TEST(LintCycleNarrow, FlagsCastsAndDeclarationsNarrowingCycleCounts) {
  const auto fs = run("src/machine/fixture.cpp", R"cc(
    u32 a(sim::EngineRef e) { return static_cast<u32>(e.now()); }
    int b() { return static_cast<int>(elapsed_cycles_); }
    void d() { u32 deadline = start_cycles_ + 500; }
  )cc");
  EXPECT_EQ(count_rule(fs, "cycle-narrow"), 3) << dump(fs);
}

TEST(LintCycleNarrow, CleanForWideTypesAndNonCycleQuantities) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    Cycle t(sim::EngineRef e) { return e.now(); }
    u64 wide(Cycle c) { return static_cast<u64>(c); }
    u32 rank(NodeId n) { return static_cast<u32>(n.value); }
    u32 words = payload_bytes / 4;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  EXPECT_TRUE(run("bench/fixture.cpp",
                  "u32 t = static_cast<u32>(e.now());").empty());
}

TEST(LintCycleNarrow, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(cycle-narrow) header field is 16 bits on the wire
    u16 stamp = static_cast<u16>(now_cycles & 0xffff);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R7: std-function-event ----------------------------------------------

TEST(LintStdFunctionEvent, FlagsStdFunctionInsideSimCore) {
  const auto fs = run("src/sim/fixture.h", R"cc(
    struct Event {
      Cycle time;
      std::function<void()> fn;
    };
    void schedule(std::function<void()> fn);
  )cc");
  EXPECT_EQ(count_rule(fs, "std-function-event"), 2) << dump(fs);
}

TEST(LintStdFunctionEvent, CleanForEventFnAndOutsideSimCore) {
  const auto fs = run("src/sim/fixture.h", R"cc(
    struct Event {
      Cycle time;
      EventFn fn;
    };
    void schedule(EventFn fn);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // std::function is fine outside the engine hot path (host job callbacks,
  // audit hooks): scope is src/sim/ only.
  EXPECT_TRUE(run("src/host/fixture.h",
                  "void run_job(std::function<void()> app);").empty());
}

TEST(LintStdFunctionEvent, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/sim/fixture.cpp", R"cc(
    // qcdoc-lint: allow(std-function-event) cold-path debug hook, not per event
    std::function<void()> on_deadlock_;
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R8: raw-state-io ----------------------------------------------------

TEST(LintRawStateIo, FlagsRawFileIoOutsideSnapshot) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    void dump(const Machine& m) {
      FILE* f = fopen("state.bin", "wb");
      fwrite(&m, 1, sizeof(m), f);
      std::ofstream log("state.txt");
    }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-state-io"), 3) << dump(fs);
}

TEST(LintRawStateIo, FlagsWholeStructMemcpy) {
  const auto fs = run("src/fault/fixture.cpp", R"cc(
    void stash(const FaultEvent& e, char* buf) {
      std::memcpy(buf, &e, sizeof(FaultEvent));
      std::memcpy(buf, &e, sizeof(fault::FaultEvent));
    }
  )cc");
  EXPECT_EQ(count_rule(fs, "raw-state-io"), 2) << dump(fs);
}

TEST(LintRawStateIo, CleanForScalarPunningAndSnapshotCode) {
  // sizeof(scalar) / sizeof(expr) copies are everyday value punning.
  const auto fs = run("src/common/fixture.cpp", R"cc(
    void pun(double v) {
      u64 bits;
      std::memcpy(&bits, &v, sizeof(bits));
      std::memcpy(&bits, &v, sizeof(double));
    }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
  // The serializer itself is the one place allowed to touch raw bytes.
  EXPECT_TRUE(run("src/snapshot/fixture.cpp",
                  "void w() { fwrite(p, 1, n, f); }").empty());
  // Tools and tests are out of scope (src/ only).
  EXPECT_TRUE(run("tools/qsnap/fixture.cpp",
                  "void r() { fopen(\"x\", \"rb\"); }").empty());
}

TEST(LintRawStateIo, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/host/fixture.cpp", R"cc(
    // qcdoc-lint: allow(raw-state-io) debug hexdump, never read back
    FILE* f = fopen("dump.txt", "w");
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- suppression meta-rule -----------------------------------------------

TEST(LintSuppression, MissingReasonIsItselfAFindingAndDoesNotSuppress) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock)
    int j = rand();
  )cc");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
}

TEST(LintSuppression, UnknownRuleIdIsAFinding) {
  const auto fs = run("src/net/fixture.cpp",
                      "// qcdoc-lint: allow(no-such-rule) because reasons\n");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintSuppression, MalformedAnnotationIsAFinding) {
  const auto fs = run("src/net/fixture.cpp",
                      "// qcdoc-lint: disable wall-clock\n");
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintSuppression, CoversOwnLineAndNextLineOnly) {
  // Two lines below the annotation: out of the suppression window.
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock) documented exemption
    int fine = rand();
    int still_flagged = rand();
  )cc");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
}

TEST(LintSuppression, OneAnnotationMaySuppressMultipleRules) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    // qcdoc-lint: allow(wall-clock, cycle-narrow) replaying captured trace
    u32 t = static_cast<u32>(rand() + now_cycles);
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R9: cross-affinity-access -------------------------------------------

// A component whose delivery events execute at the far end (the Hssl
// delivery_ idiom): touching members from the delivered lambda is a
// cross-affinity access.  The class declaration and the out-of-line method
// definitions mirror the real header/impl split.
const char* kWireClassDecl = R"cc(
    class Wire {
     public:
      void send();
     private:
      sim::EngineRef engine_;
      sim::EngineRef delivery_;
      Wire* other_ = nullptr;
      u64 epoch_ = 0;
      u64 delivered_ = 0;
    };
  )cc";

TEST(LintCrossAffinity, FlagsMembersTouchedInCrossAffinityEvents) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kWireClassDecl},
      {"src/hssl/fixture_wire.cpp", R"cc(
        #include "hssl/fixture_wire.h"
        void Wire::send() {
          delivery_.schedule(5, [this] {
            if (epoch_ != 0) return;   // cross-affinity read of epoch_
            ++delivered_;              // and a write
          });
        }
      )cc"},
  });
  EXPECT_EQ(count_rule(fs, "cross-affinity-access"), 2) << dump(fs);
}

TEST(LintCrossAffinity, CleanWhenValuesAreSnapshottedIntoTheCapture) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kWireClassDecl},
      {"src/hssl/fixture_wire.cpp", R"cc(
        #include "hssl/fixture_wire.h"
        void Wire::send() {
          delivery_.schedule(5, [epoch = epoch_, w = other_] {
            if (epoch != 0) return;  // the snapshot, not the member
            w->bump();               // snapshotted pointer, not `this`
          });
          engine_.schedule(3, [this] { ++delivered_; });  // own affinity
        }
      )cc"},
  });
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintCrossAffinity, SuppressedWithAnnotatedReason) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kWireClassDecl},
      {"src/hssl/fixture_wire.cpp", R"cc(
        #include "hssl/fixture_wire.h"
        void Wire::send() {
          delivery_.schedule(5, [this] {
            // qcdoc-lint: allow(cross-affinity-access) epoch_ is frozen
            if (epoch_ != 0) return;
          });
        }
      )cc"},
  });
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R10: event-raw-capture ----------------------------------------------

TEST(LintRawCapture, FlagsDefaultRefAndExplicitRefCaptures) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    void Dma::start(sim::EngineRef e, Frame frame) {
      e.schedule(5, [&] { consume(frame); });
      e.schedule(9, [&frame] { consume(frame); });
    }
  )cc");
  EXPECT_EQ(count_rule(fs, "event-raw-capture"), 2) << dump(fs);
}

TEST(LintRawCapture, FlagsValueCapturedRawPointerToNodeState) {
  // Wire is node-domain (EngineRef member, src/hssl/); a Pump in another
  // class capturing a raw Wire* by value smuggles node state into an event.
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", R"cc(
        class Wire {
         public:
          void kick();
         private:
          sim::EngineRef engine_;
        };
      )cc"},
      {"src/scu/fixture_pump.cpp", R"cc(
        #include "hssl/fixture_wire.h"
        void Pump::drain(sim::EngineRef e) {
          Wire* w = next_wire();
          e.schedule(5, [w] { w->kick(); });
        }
      )cc"},
  });
  EXPECT_EQ(count_rule(fs, "event-raw-capture"), 1) << dump(fs);
}

TEST(LintRawCapture, CleanForValueAndMoveCaptures) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    void Dma::start(sim::EngineRef e, Frame frame) {
      e.schedule(5, [frame = std::move(frame), id = next_id_]() mutable {
        consume(frame, id);
      });
    }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintRawCapture, SuppressedWithAnnotatedReason) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    void Dma::start(sim::EngineRef e, Frame frame) {
      // qcdoc-lint: allow(event-raw-capture) same-window delivery, ref outlives
      e.schedule(5, [&frame] { consume(frame); });
    }
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- R11: host-touch-undeclared ------------------------------------------

// A node component in one TU, a host-side driver in another: the index must
// carry domain and mutator knowledge across the include edge.
const char* kNodeWireHeader = R"cc(
    class Wire {
     public:
      void fail();
      int state() const;
     private:
      sim::EngineRef engine_;
      int state_ = 0;
    };
  )cc";

// The host-side driver's own declaration: fault/ placement makes its domain
// host, `wire_` is the node component it reaches into.
const char* kInjectorHeader = R"cc(
    class Injector {
     public:
      void arm();
      void arm_all();
     private:
      sim::Engine* engine_raw_ = nullptr;
      Wire* wire_ = nullptr;
    };
  )cc";

TEST(LintHostTouch, FlagsHostEventMutatingNodeStateWithoutDeclaredSet) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kNodeWireHeader},
      {"src/fault/fixture_inj.h", kInjectorHeader},
      {"src/fault/fixture_inj.cpp", R"cc(
        #include "fault/fixture_inj.h"
        #include "hssl/fixture_wire.h"
        void Injector::arm() {
          const sim::EngineRef host(engine_raw_);
          host.schedule(5, [this] { wire_->fail(); });
        }
      )cc"},
  });
  EXPECT_EQ(count_rule(fs, "host-touch-undeclared"), 1) << dump(fs);
}

TEST(LintHostTouch, CleanWithTouchesAnnotationOrRuntimeTouchScope) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kNodeWireHeader},
      {"src/fault/fixture_inj.h", kInjectorHeader},
      {"src/fault/fixture_inj.cpp", R"cc(
        #include "fault/fixture_inj.h"
        #include "hssl/fixture_wire.h"
        void Injector::arm() {
          const sim::EngineRef host(engine_raw_);
          // qcdoc-lint: touches(node) fails exactly the armed wire
          host.schedule(5, [this] { wire_->fail(); });
        }
        void Injector::arm_all() {
          const sim::EngineRef host(engine_raw_);
          host.schedule(9, [this] {
            QCDOC_AFFSAN_TOUCH_ALL();
            wire_->fail();
          });
        }
      )cc"},
  });
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintHostTouch, CleanForNodeAffineReceiversAndConstReads) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kNodeWireHeader},
      {"src/fault/fixture_inj.h", kInjectorHeader},
      {"src/fault/fixture_inj.cpp", R"cc(
        #include "fault/fixture_inj.h"
        #include "hssl/fixture_wire.h"
        void Injector::arm() {
          // Two-argument EngineRef pins the node's own affinity: its
          // events are the node's, not the host's.
          sim::EngineRef node_ref(engine_raw_, 3);
          node_ref.schedule(5, [this] { wire_->fail(); });
          // Host events that only read node state are fine.
          const sim::EngineRef host(engine_raw_);
          host.schedule(9, [this] { record(wire_->state()); });
        }
      )cc"},
  });
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintHostTouch, SuppressedWithAnnotatedReason) {
  const auto fs = lint_project({
      {"src/hssl/fixture_wire.h", kNodeWireHeader},
      {"src/fault/fixture_inj.h", kInjectorHeader},
      {"src/fault/fixture_inj.cpp", R"cc(
        #include "fault/fixture_inj.h"
        #include "hssl/fixture_wire.h"
        void Injector::arm() {
          const sim::EngineRef host(engine_raw_);
          // qcdoc-lint: allow(host-touch-undeclared) legacy path, PR-9 fix
          host.schedule(5, [this] { wire_->fail(); });
        }
      )cc"},
  });
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// --- ownership annotations ------------------------------------------------

TEST(LintOwnership, OwnerAnnotationOverridesDomainInference) {
  // EthernetTree-style: lives under a scheduling dir and has an EngineRef,
  // so inference would call it node-owned -- but owner(host) declares its
  // events host-side, and R11 stops treating its mutators as node state.
  const auto boot_header = std::string(R"cc(
    class Boot {
     public:
      void go();
     private:
      sim::Engine* engine_raw_ = nullptr;
      Tree* tree_ = nullptr;
    };
  )cc");
  const auto boot_impl = std::string(R"cc(
    #include "host/fixture_boot.h"
    #include "net/fixture_tree.h"
    void Boot::go() {
      const sim::EngineRef host(engine_raw_);
      host.schedule(5, [this] { tree_->deliver(); });
    }
  )cc");
  const auto tree_decl = std::string(R"cc(
    class Tree {
     public:
      void deliver();
     private:
      sim::EngineRef engine_;
    };
  )cc");

  // Without the annotation the include closure sees a node-domain mutator.
  const auto inferred = lint_project({
      {"src/net/fixture_tree.h", tree_decl},
      {"src/host/fixture_boot.h", boot_header},
      {"src/host/fixture_boot.cpp", boot_impl},
  });
  EXPECT_EQ(count_rule(inferred, "host-touch-undeclared"), 1)
      << dump(inferred);

  // owner(host) on the class flips the verdict.
  const auto annotated = lint_project({
      {"src/net/fixture_tree.h",
       "// qcdoc-lint: owner(host) delivery runs in host slices by design\n" +
           tree_decl},
      {"src/host/fixture_boot.h", boot_header},
      {"src/host/fixture_boot.cpp", boot_impl},
  });
  EXPECT_TRUE(annotated.empty()) << dump(annotated);
}

TEST(LintOwnership, MalformedOwnerAndTouchesAnnotationsAreFindings) {
  const auto no_reason = run("src/net/fixture.h",
                             "// qcdoc-lint: owner(node)\nclass T {};\n");
  EXPECT_EQ(count_rule(no_reason, "suppression"), 1) << dump(no_reason);
  const auto bad_domain = run(
      "src/net/fixture.h",
      "// qcdoc-lint: owner(planet) because reasons\nclass T {};\n");
  EXPECT_EQ(count_rule(bad_domain, "suppression"), 1) << dump(bad_domain);
  const auto empty_set =
      run("src/fault/fixture.cpp", "// qcdoc-lint: touches() oops\n");
  EXPECT_EQ(count_rule(empty_set, "suppression"), 1) << dump(empty_set);
}

// --- lexer robustness ----------------------------------------------------

TEST(LintLexer, StringLiteralsAndCommentsDoNotTrigger) {
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    const char* kMsg = "call rand() and time() for fun";
    // a comment mentioning rand() and std::unordered_map
    const char* kRaw = R"(schedule_at_on inside a raw string)";
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintLexer, PrefixedRawStringsDoNotTrigger) {
  // Encoding-prefixed raw literals (u8R, uR, UR, LR) hid entropy calls from
  // the v1 lexer, which only recognized a bare R prefix.
  const auto fs = run("src/scu/fixture.cpp", R"cc(
    const char8_t* a = u8R"(rand() time(nullptr))";
    const char16_t* b = uR"x(std::unordered_map<int, int> m; rand();)x";
    const wchar_t* c = LR"(static int hidden = rand();)";
  )cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintLexer, LineContinuationExtendsLineComments) {
  // A backslash-newline continues a // comment onto the next physical
  // line, macro-style; the v1 lexer rescanned that line as code.
  const auto fs = run("src/scu/fixture.cpp",
                      "// this comment continues \\\n"
                      "int j = rand();\n");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(LintLexer, LineContinuationInsideMacroBodiesKeepsLineNumbers) {
  const auto fs = run("src/scu/fixture.cpp",
                      "#define TWO_LINES(x) \\\n"
                      "  do { (void)(x); } while (0)\n"
                      "\n"
                      "int j = rand();\n");
  ASSERT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
  EXPECT_EQ(fs[0].line, 4);
}

// --- options & driver ----------------------------------------------------

TEST(LintOptions, OnlyFilterRestrictsRulesButKeepsSuppressionChecks) {
  Options only_r1;
  only_r1.only = {"wall-clock"};
  const auto fs = lint_source("src/scu/fixture.cpp", R"cc(
    int j = rand();
    static int counter = 0;
    // qcdoc-lint: allow(wall-clock)
  )cc",
                              only_r1);
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1) << dump(fs);
  EXPECT_EQ(count_rule(fs, "mutable-static"), 0) << dump(fs);
  // Broken annotations are reported even under a rule filter.
  EXPECT_EQ(count_rule(fs, "suppression"), 1) << dump(fs);
}

TEST(LintPaths, MissingPathYieldsIoFinding) {
  const auto fs = lint_paths({"no/such/dir-xyzzy"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "io");
}

// --- the real tree -------------------------------------------------------

// The gate CI enforces, pinned locally: the shipped tree -- src/ plus the
// bench, tools and examples trees -- has zero unsuppressed findings.  If a
// rule or the tree changes, this fails tier-1 before the CI lint job runs.
// One invocation, one cross-TU index: exactly how CI calls the binary.
TEST(LintTree, ShippedSourceTreeIsClean) {
  const auto fs = lint_paths({QCDOC_SOURCE_DIR "/src", QCDOC_SOURCE_DIR "/bench",
                              QCDOC_SOURCE_DIR "/tools",
                              QCDOC_SOURCE_DIR "/examples"});
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

}  // namespace
}  // namespace qcdoc::lint
