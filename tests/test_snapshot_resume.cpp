// SLOW acceptance test for crash-consistent checkpoint/restart (ISSUE 6):
// an audited CG solve on the full 2^6 = 64-node machine is checkpointed
// mid-flight, the process is SIGKILLed between checkpoints, and a fresh
// process restores the latest good generation at 1, 2 and 4 simulation
// threads -- every restored run must reproduce the uninterrupted reference
// bit-for-bit (final residual bits, solution-field FNV, event-order digest,
// end cycle).  A second scenario truncates the newest generation on disk and
// verifies the store falls back to the previous good generation, still
// bit-exactly.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "snapshot_rig.h"

namespace qcdoc::snapshot {
namespace {

using testing::SolveOutcome;
using testing::SolveScenario;

SolveScenario acceptance_scenario(int sim_threads) {
  SolveScenario sc;
  sc.machine_extents = {2, 2, 2, 2, 2, 2};      // the paper's 2^6 building block
  sc.partition_box.extent = {2, 2, 2, 2, 1, 1};  // 16-node 4-D partition
  sc.global = {4, 4, 4, 16};
  sc.kappa = 0.124;
  sc.fixed_iterations = 10;
  sc.audit_interval = 3;
  sc.sim_threads = sim_threads;
  return sc;
}

void expect_same_outcome(const SolveOutcome& got, const SolveOutcome& want,
                         const std::string& what) {
  EXPECT_TRUE(got.job_ok) << what;
  EXPECT_EQ(got.iterations, want.iterations) << what;
  EXPECT_EQ(got.residual_bits, want.residual_bits) << what;
  EXPECT_EQ(got.field_fnv, want.field_fnv) << what;
  EXPECT_EQ(got.trace_digest, want.trace_digest) << what;
  EXPECT_EQ(got.end_cycle, want.end_cycle) << what;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "qcdoc_snapres_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Fork a writer child that checkpoints every clean audit (iterations 0, 3,
/// 6, ...) and SIGKILLs itself right after the generation for
/// `kill_at_iteration` commits.  Returns once the child is reaped.
void run_killed_writer(const std::string& dir, int kill_at_iteration) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    (void)testing::run_solve(acceptance_scenario(2), &dir, /*resume=*/false,
                             kill_at_iteration);
    _exit(9);  // not reached: the writer kills itself
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(SnapshotAcceptance, SixtyFourNodeCrashResumeIsBitExactAcrossThreadCounts) {
  const std::string dir = fresh_dir("accept");

  // The writer runs at 2 threads and dies right after the iteration-6
  // checkpoint -- mid-CG, four iterations short of completion.  Retention
  // keeps the iteration-3 and iteration-6 generations.
  run_killed_writer(dir, /*kill_at_iteration=*/6);
  SnapshotStore store(dir, "cg");
  ASSERT_EQ(store.latest_generation(), 3u);
  ASSERT_EQ(store.list().size(), 2u);

  // Uninterrupted reference, single-threaded, in this process.
  const SolveOutcome ref =
      testing::run_solve(acceptance_scenario(1), nullptr, false);
  ASSERT_TRUE(ref.job_ok);
  ASSERT_EQ(ref.iterations, 10);

  // Restore the iteration-6 generation at 1, 2 and 4 simulation threads.
  // The restored trajectory's remaining four iterations must replay the
  // reference's event trace exactly -- residual bits, field FNV, order
  // digest and end cycle all equal, regardless of thread count.
  for (const int threads : {1, 2, 4}) {
    const SolveOutcome got =
        testing::run_solve(acceptance_scenario(threads), &dir, /*resume=*/true);
    ASSERT_TRUE(got.resumed) << (got.log.empty() ? "" : got.log.back());
    EXPECT_EQ(got.recovered_generation, 3u);
    expect_same_outcome(got, ref, std::to_string(threads) + " threads");
  }
}

TEST(SnapshotAcceptance, TornNewestGenerationFallsBackAndStaysBitExact) {
  const std::string dir = fresh_dir("torn");
  run_killed_writer(dir, /*kill_at_iteration=*/6);

  // Tear the newest generation on disk (generation 3, iteration 6): chop it
  // mid-payload as a crash straddling the rename would.
  SnapshotStore store(dir, "cg");
  const auto gens = store.list();
  ASSERT_EQ(gens.size(), 2u);
  ASSERT_EQ(gens[1].generation, 3u);
  std::filesystem::resize_file(gens[1].path, gens[1].bytes / 3);

  const SolveOutcome ref =
      testing::run_solve(acceptance_scenario(1), nullptr, false);
  ASSERT_TRUE(ref.job_ok);

  // The resume must skip the torn generation with a diagnostic and restore
  // generation 2 (iteration 3) -- replaying seven iterations instead of
  // four, to the identical bit-exact end state.
  const SolveOutcome got =
      testing::run_solve(acceptance_scenario(2), &dir, /*resume=*/true);
  ASSERT_TRUE(got.resumed) << (got.log.empty() ? "" : got.log.back());
  EXPECT_EQ(got.recovered_generation, 2u);
  bool mentioned_fallback = false;
  for (const auto& d : got.diagnostics) {
    if (d.find("falling back") != std::string::npos) mentioned_fallback = true;
  }
  EXPECT_TRUE(mentioned_fallback);
  expect_same_outcome(got, ref, "fallback generation");
}

}  // namespace
}  // namespace qcdoc::snapshot
