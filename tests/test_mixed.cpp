// Reliable-update mixed-precision solvers: single- and half-sloppy CG
// reaching the double-precision target, predicted-byte savings of the
// half-precision path, cross-solver agreement on a small fixture, mixed
// BiCGstab, and crash-consistent checkpoint/resume of the audited mixed CG
// (fork a writer that SIGKILLs itself mid-solve, restore, continue
// bit-exactly).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/qdaemon.h"
#include "lattice/bicgstab.h"
#include "lattice/cg.h"
#include "lattice/mixed.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"
#include "snapshot/machine_state.h"
#include "snapshot/store.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::fill_gauge_by_global_site;
using testing::full_residual;
using testing::gather_global;
using testing::true_residual;

struct MixedSetup {
  LatticeRig rig;
  GaugeField gauge;
  std::optional<WilsonDirac> op_;
  std::optional<WilsonDirac> sloppy_;
  std::optional<DistField> b_;
  MixedSetup(Precision sloppy, std::array<int, 6> extents = {2, 2, 1, 1, 1, 1},
             Coord4 global = {4, 4, 4, 4})
      : rig(extents, global), gauge(rig.comm.get(), rig.geom.get()) {
    fill_gauge_by_global_site(*rig.geom, gauge, 0x51a9ed);
    op_.emplace(rig.ops.get(), rig.geom.get(), &gauge,
                WilsonParams{.kappa = 0.124});
    sloppy_.emplace(rig.ops.get(), rig.geom.get(), &gauge,
                    WilsonParams{.kappa = 0.124, .precision = sloppy});
    b_.emplace(op_->make_field("b"));
    fill_by_global_site(*rig.geom, *b_);
  }
  WilsonDirac& op() { return *op_; }
  WilsonDirac& sloppy() { return *sloppy_; }
  DistField& b() { return *b_; }
};

TEST(MixedCg, SingleSloppyReachesDoubleTarget) {
  MixedSetup s(Precision::kSingle);
  DistField x = s.op().make_field("x");
  x.zero();
  MixedCgParams params;
  params.tolerance = 1e-8;
  const CgResult r = mixed_cg_solve(s.op(), s.sloppy(), x, s.b(), params);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.relative_residual, 1e-8);
  EXPECT_LT(true_residual(s.op(), x, s.b()), 1e-6);
  EXPECT_GE(r.reliable_updates, 2);
  EXPECT_GT(r.iterations, r.reliable_updates);
}

TEST(MixedCg, HalfSloppyReachesDoubleTarget) {
  MixedSetup s(Precision::kHalf);
  DistField x = s.op().make_field("x");
  x.zero();
  MixedCgParams params;
  params.tolerance = 1e-8;
  params.sloppy = Precision::kHalf;
  const CgResult r = mixed_cg_solve(s.op(), s.sloppy(), x, s.b(), params);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.relative_residual, 1e-8);
  EXPECT_LT(true_residual(s.op(), x, s.b()), 1e-6);
}

TEST(MixedCg, HalfSloppyMovesFewerPredictedBytes) {
  // The whole point of the narrow path: to the same 1e-8 target, the
  // half-sloppy solver must move at least 1.5x fewer predicted memory
  // bytes than the all-double CG (acceptance gate; the bench reports the
  // same ratio in BENCH_solver.json).
  MixedSetup sd(Precision::kHalf);
  DistField xd = sd.op().make_field("xd");
  xd.zero();
  CgParams cgp;
  cgp.tolerance = 1e-8;
  const CgResult rd = cg_solve(sd.op(), xd, sd.b(), cgp);
  ASSERT_TRUE(rd.converged);
  // All-double CG touches only the double bucket.
  EXPECT_GT(rd.traffic[precision_index(Precision::kDouble)].bytes(), 0.0);
  EXPECT_EQ(rd.traffic[precision_index(Precision::kSingle)].bytes(), 0.0);
  EXPECT_EQ(rd.traffic[precision_index(Precision::kHalf)].bytes(), 0.0);

  MixedSetup sh(Precision::kHalf);
  DistField xh = sh.op().make_field("xh");
  xh.zero();
  MixedCgParams mp;
  mp.tolerance = 1e-8;
  mp.sloppy = Precision::kHalf;
  const CgResult rh = mixed_cg_solve(sh.op(), sh.sloppy(), xh, sh.b(), mp);
  ASSERT_TRUE(rh.converged);
  EXPECT_GT(rh.traffic[precision_index(Precision::kHalf)].bytes(), 0.0);

  const double ratio = total_bytes(rd.traffic) / total_bytes(rh.traffic);
  EXPECT_GE(ratio, 1.5) << "double CG bytes " << total_bytes(rd.traffic)
                        << ", mixed-half bytes " << total_bytes(rh.traffic);
}

TEST(MixedCg, CrossSolverAgreementOnSmallFixture) {
  // Four routes to the same solution of M x = b; worst-case per-word
  // disagreement with double CG must stay inside the documented 1e-5
  // envelope for 1e-8 solves (EXPERIMENTS.md records the measured values).
  auto solve_gathered = [](int which) {
    MixedSetup s(which >= 2 ? (which == 2 ? Precision::kSingle
                                          : Precision::kHalf)
                            : Precision::kDouble);
    DistField x = s.op().make_field("x");
    x.zero();
    if (which == 0) {
      CgParams p;
      p.tolerance = 1e-8;
      EXPECT_TRUE(cg_solve(s.op(), x, s.b(), p).converged);
    } else if (which == 1) {
      CgParams p;
      p.tolerance = 1e-8;
      p.max_iterations = 2000;
      EXPECT_TRUE(bicgstab_solve(s.op(), x, s.b(), p).converged);
      EXPECT_LT(full_residual(s.op(), x, s.b()), 1e-7);
    } else {
      MixedCgParams p;
      p.tolerance = 1e-8;
      p.sloppy = which == 2 ? Precision::kSingle : Precision::kHalf;
      EXPECT_TRUE(
          mixed_cg_solve(s.op(), s.sloppy(), x, s.b(), p).converged);
    }
    return gather_global(*s.rig.geom, x);
  };
  const auto ref = solve_gathered(0);
  const char* names[] = {"cg", "bicgstab", "mixed-single", "mixed-half"};
  for (int which = 1; which <= 3; ++which) {
    const auto got = solve_gathered(which);
    ASSERT_EQ(got.size(), ref.size());
    double worst = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      worst = std::max(worst, std::abs(got[i] - ref[i]));
    }
    EXPECT_LT(worst, 1e-5) << names[which] << " vs " << names[0];
  }
}

TEST(MixedBicgstab, HalfSloppyConverges) {
  MixedSetup s(Precision::kHalf);
  DistField x = s.op().make_field("x");
  x.zero();
  MixedCgParams params;
  params.tolerance = 1e-8;
  params.sloppy = Precision::kHalf;
  params.delta = 0.05;
  const CgResult r = mixed_bicgstab_solve(s.op(), s.sloppy(), x, s.b(), params);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(full_residual(s.op(), x, s.b()), 1e-7);
  EXPECT_GE(r.reliable_updates, 2);
}

// --- crash-consistent checkpoint/resume -------------------------------------

struct MixedOutcome {
  bool job_ok = false;
  int iterations = 0;
  int reliable_updates = 0;
  u64 residual_bits = 0;
  u64 field_fnv = 0;
  u64 trace_digest = 0;
  Cycle end_cycle = 0;
  bool resumed = false;
  u64 recovered_generation = 0;
  std::vector<std::string> log;
};

void encode_mixed(const MixedCgCheckpoint& ck, snapshot::ByteSink* sink) {
  sink->put_u32(static_cast<u32>(ck.outer));
  sink->put_u32(static_cast<u32>(ck.iterations));
  sink->put_double(ck.rsq);
  sink->put_double(ck.rhs_norm2);
  sink->put_u32(static_cast<u32>(ck.restarts));
  sink->put_u64(ck.audits);
  sink->put_u64(ck.audit_failures);
  sink->put_u64(ck.mem_checks);
}

snapshot::Status decode_mixed(const snapshot::SnapshotFile& file,
                    MixedCgCheckpoint* ck) {
  std::optional<snapshot::ByteSource> src;
  if (snapshot::Status s = file.open(snapshot::kSecSolver, &src); !s) return s;
  u32 outer = 0, iterations = 0, restarts = 0;
  if (snapshot::Status s = src->get_u32(&outer); !s) return s;
  if (snapshot::Status s = src->get_u32(&iterations); !s) return s;
  if (snapshot::Status s = src->get_double(&ck->rsq); !s) return s;
  if (snapshot::Status s = src->get_double(&ck->rhs_norm2); !s) return s;
  if (snapshot::Status s = src->get_u32(&restarts); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->audits); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->audit_failures); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->mem_checks); !s) return s;
  ck->outer = static_cast<int>(outer);
  ck->iterations = static_cast<int>(iterations);
  ck->restarts = static_cast<int>(restarts);
  return src->expect_exhausted();
}

u64 field_fnv(const DistField& f) {
  u64 h = sim::detail::kFnvOffset;
  for (int r = 0; r < f.ranks(); ++r) {
    for (const double v : f.data(r)) {
      h = sim::detail::fnv1a(h, std::bit_cast<u64>(v));
    }
  }
  return h;
}

/// One audited half-sloppy mixed-CG solve on a Qdaemon partition.
///   - snapshot_dir == nullptr: uninterrupted reference.
///   - writer: persist a generation at every clean outer checkpoint, and
///     SIGKILL right after the save whose checkpoint is at `kill_at_outer`.
///   - resume: allocate the identical fields (workspace replay), restore
///     the newest good generation and continue.
MixedOutcome run_mixed_solve(const std::string* snapshot_dir, bool resume,
                             int kill_at_outer = -1, int sim_threads = 1) {
  MixedOutcome out;
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 1, 1, 1, 1};
  cfg.sim_threads = sim_threads;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();
  torus::Shape box;
  box.extent = {2, 2, 1, 1, 1, 1};
  auto handle = qd.allocate_partition("mixed", box, 4);
  if (!handle) return out;

  fault::ChecksumAuditor auditor(&m.mesh());
  fault::MemCheckAuditor mem_auditor(&m.mesh(), handle->partition->nodes());
  fault::FaultInjector injector(&m.mesh());
  snapshot::MachineExtras extras;
  extras.health = &qd.health();
  extras.auditor = &auditor;
  extras.mem_auditor = &mem_auditor;
  extras.injector = &injector;

  std::optional<snapshot::SnapshotStore> store;
  if (snapshot_dir != nullptr) store.emplace(*snapshot_dir, "mixed");

  const auto job = qd.run_job(*handle, [&](comms::Communicator& comm,
                                           std::vector<std::string>& log) {
    GlobalGeometry geom(handle->partition, Coord4{4, 4, 4, 4});
    machine::BspRunner bsp(&m);
    cpu::CpuModel cpu(m.hw(), m.mem_timing());
    FieldOps ops(&bsp, &cpu, &comm);
    GaugeField gauge(&comm, &geom);
    Rng rng(77);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(&ops, &geom, &gauge, WilsonParams{.kappa = 0.124});
    WilsonDirac sloppy(&ops, &geom, &gauge,
                       WilsonParams{.kappa = 0.124,
                                    .precision = Precision::kHalf});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    lattice::testing::fill_by_global_site(geom, b);

    MixedCgParams params;
    params.tolerance = 1e-8;
    params.sloppy = Precision::kHalf;
    MixedCgAuditParams audit;
    audit.clean = [&] { return auditor.clean_since_last(); };
    audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
    audit.interval = 1;

    MixedCgCheckpoint resume_ck;
    std::optional<MixedCgWorkspace> ws;
    if (resume) {
      // Allocation replay: the workspace must exist (in the solver's own
      // allocation order) before node memory is overwritten from disk.
      ws.emplace(MixedCgWorkspace::make(op, params.sloppy));
      snapshot::SnapshotFile file;
      std::vector<std::string> diags;
      if (snapshot::Status s = store->load_latest(&file, &diags); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      out.recovered_generation = file.generation();
      if (snapshot::Status s = snapshot::restore_machine(m, extras, file); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      if (snapshot::Status s = decode_mixed(file, &resume_ck); !s) {
        log.push_back("restore failed: " + s.reason);
        return;
      }
      audit.workspace = &*ws;
      audit.resume = &resume_ck;
      out.resumed = true;
    } else if (store.has_value()) {
      audit.on_checkpoint = [&](const MixedCgCheckpoint& ck) {
        snapshot::SnapshotFile file;
        if (snapshot::Status s = snapshot::capture_machine(m, extras, &file); !s) {
          log.push_back("capture failed: " + s.reason);
          return;
        }
        snapshot::ByteSink solver;
        encode_mixed(ck, &solver);
        file.add_section(snapshot::kSecSolver, std::move(solver));
        if (snapshot::Status s = store->save(&file); !s) {
          log.push_back("save failed: " + s.reason);
          return;
        }
        if (kill_at_outer >= 0 && ck.outer == kill_at_outer) {
          raise(SIGKILL);  // die mid-solve; the generation above is durable
        }
      };
    }

    const CgResult r = mixed_cg_solve_audited(op, sloppy, x, b, params, audit);
    out.iterations = r.iterations;
    out.reliable_updates = r.reliable_updates;
    out.residual_bits = std::bit_cast<u64>(r.relative_residual);
    out.field_fnv = field_fnv(x);
  });
  out.job_ok = job.ok;
  out.log = job.output;
  out.end_cycle = m.engine().now();
  out.trace_digest = m.engine().trace_digest();
  return out;
}

TEST(MixedCgResume, KilledWriterResumesBitExactly) {
  const std::string dir = ::testing::TempDir() + "qcdoc_mixed_resume";
  std::filesystem::remove_all(dir);

  // Writer child checkpoints every clean outer cycle and SIGKILLs itself
  // right after the outer-2 generation commits -- mid-solve.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    (void)run_mixed_solve(&dir, /*resume=*/false, /*kill_at_outer=*/2);
    _exit(9);  // not reached: the writer kills itself
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const MixedOutcome ref = run_mixed_solve(nullptr, false);
  ASSERT_TRUE(ref.job_ok);
  EXPECT_GT(ref.reliable_updates, 3);

  for (const int threads : {1, 2}) {
    const MixedOutcome got =
        run_mixed_solve(&dir, /*resume=*/true, -1, threads);
    ASSERT_TRUE(got.job_ok) << (got.log.empty() ? "" : got.log.back());
    ASSERT_TRUE(got.resumed);
    EXPECT_GT(got.recovered_generation, 0u);
    EXPECT_EQ(got.iterations, ref.iterations) << threads << " threads";
    EXPECT_EQ(got.residual_bits, ref.residual_bits) << threads << " threads";
    EXPECT_EQ(got.field_fnv, ref.field_fnv) << threads << " threads";
    EXPECT_EQ(got.trace_digest, ref.trace_digest) << threads << " threads";
    EXPECT_EQ(got.end_cycle, ref.end_cycle) << threads << " threads";
  }
}

}  // namespace
}  // namespace qcdoc::lattice
