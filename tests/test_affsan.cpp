// AFFSAN, the affinity-ownership sanitizer (DESIGN.md section 6).
//
// The kill tests prove the sanitizer actually fires: a deliberately injected
// cross-affinity write -- a node-0 event mutating node 1's wire without a
// declared touched set -- must trap with AffinityViolation on the serial
// engine and on the parallel engine at 2 and 4 threads (where the trap is
// thrown on a worker and rethrown at the window barrier).  Without
// QCDOC_AFFSAN the same access must pass silently: the macros compile away.
#include <gtest/gtest.h>

#include <stdexcept>

#include "machine/machine.h"
#include "net/mesh_net.h"
#include "sim/affinity_guard.h"
#include "torus/coords.h"

namespace qcdoc {
namespace {

using sim::affsan::ScopedTouch;

machine::MachineConfig two_node_config(int threads) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  cfg.sim_threads = threads;
  return cfg;
}

// --- Registry unit tests (no machine required) -----------------------------

TEST(AffSanRegistry, OwnerLookupCoversTheRegionAndNothingElse) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  char buf[64];
  const std::size_t before = sim::affsan::region_count();
  sim::affsan::own(buf, sizeof(buf), 3, "test-region");
  EXPECT_EQ(sim::affsan::region_count(), before + 1);

  sim::Affinity owner = 0;
  ASSERT_TRUE(sim::affsan::owner_of(buf, &owner));
  EXPECT_EQ(owner, 3u);
  ASSERT_TRUE(sim::affsan::owner_of(buf + sizeof(buf) - 1, &owner));
  EXPECT_FALSE(sim::affsan::owner_of(buf + sizeof(buf), &owner));

  sim::affsan::disown(buf);
  EXPECT_EQ(sim::affsan::region_count(), before);
  EXPECT_FALSE(sim::affsan::owner_of(buf, &owner));
}

TEST(AffSanRegistry, CheckPassesOutsideEventsAndForTheOwner) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  char buf[16];
  sim::affsan::own(buf, sizeof(buf), 2, "test-region");

  // No event context on this thread: host driver code may touch anything.
  EXPECT_NO_THROW(sim::affsan::check(buf, __FILE__, __LINE__));

  const int dummy_engine = 0;
  {
    // An event on the owning affinity passes...
    const sim::detail::ScopedExecCtx ctx(&dummy_engine, 100, 2);
    EXPECT_NO_THROW(sim::affsan::check(buf, __FILE__, __LINE__));
  }
  {
    // ...another affinity traps...
    const sim::detail::ScopedExecCtx ctx(&dummy_engine, 100, 1);
    EXPECT_THROW(sim::affsan::check(buf, __FILE__, __LINE__),
                 sim::AffinityViolation);
    // ...unless a touched-set scope covers the owner (exactly it, or all).
    {
      const ScopedTouch touch(2);
      EXPECT_NO_THROW(sim::affsan::check(buf, __FILE__, __LINE__));
    }
    {
      const ScopedTouch touch(5);  // wrong affinity: still a trap
      EXPECT_THROW(sim::affsan::check(buf, __FILE__, __LINE__),
                   sim::AffinityViolation);
    }
    {
      const ScopedTouch touch_all;
      EXPECT_NO_THROW(sim::affsan::check(buf, __FILE__, __LINE__));
    }
    EXPECT_THROW(sim::affsan::check(buf, __FILE__, __LINE__),
                 sim::AffinityViolation);
  }
  sim::affsan::disown(buf);
}

TEST(AffSanRegistry, ViolationReportCarriesProvenance) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  char buf[16];
  sim::affsan::own(buf, sizeof(buf), 4, "scu::Scu");
  const int dummy_engine = 0;
  const sim::detail::ScopedExecCtx ctx(&dummy_engine, /*now=*/1234,
                                       /*affinity=*/7, /*src=*/
                                       sim::kHostAffinity, /*seq=*/42);
  try {
    sim::affsan::check(buf, "some_file.cpp", 99);
    FAIL() << "expected AffinityViolation";
  } catch (const sim::AffinityViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scu::Scu"), std::string::npos) << what;
    EXPECT_NE(what.find("owner node 4"), std::string::npos) << what;
    EXPECT_NE(what.find("node 7"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle 1234"), std::string::npos) << what;
    EXPECT_NE(what.find("scheduled by host"), std::string::npos) << what;
    EXPECT_NE(what.find("seq 42"), std::string::npos) << what;
    EXPECT_NE(what.find("some_file.cpp:99"), std::string::npos) << what;
  }
  sim::affsan::disown(buf);
}

// --- Kill tests against a live machine -------------------------------------

// A node-0 event reaches into node 1's outgoing wire.  This is exactly the
// bug class the sanitizer exists for; it must trap at every thread count.
void expect_injected_write_traps(int threads) {
  machine::Machine m(two_node_config(threads));
  m.power_on();

  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const sim::EngineRef node0(&m.engine(), 0);
  node0.schedule(4096, [&m, link] {
    m.mesh().wire(NodeId{1}, link).set_bit_error_rate(0.5);
  });
  EXPECT_THROW(m.engine().run_until_idle(), sim::AffinityViolation);
}

TEST(AffSanKill, InjectedCrossAffinityWriteTrapsSerial) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  expect_injected_write_traps(1);
}

TEST(AffSanKill, InjectedCrossAffinityWriteTrapsAt2Threads) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  expect_injected_write_traps(2);
}

TEST(AffSanKill, InjectedCrossAffinityWriteTrapsAt4Threads) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  expect_injected_write_traps(4);
}

TEST(AffSanKill, SameWriteWithDeclaredTouchedSetPasses) {
  if (!sim::affsan::enabled()) GTEST_SKIP() << "built without QCDOC_AFFSAN";
  machine::Machine m(two_node_config(1));
  m.power_on();

  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const sim::EngineRef host(&m.engine());
  // qcdoc-lint: touches(node) test declares the write it injects
  host.schedule(4096, [&m, link] {
    QCDOC_AFFSAN_TOUCH(sim::detail::rank_affinity(2));
    m.mesh().wire(NodeId{1}, link).set_bit_error_rate(0.5);
  });
  EXPECT_NO_THROW(m.engine().run_until_idle());
  EXPECT_EQ(m.mesh().wire(NodeId{1}, link).bit_error_rate(), 0.5);
}

TEST(AffSanKill, MacrosCompileAwayWithoutTheSanitizer) {
  if (sim::affsan::enabled()) GTEST_SKIP() << "built with QCDOC_AFFSAN";
  // The injected write from the kill test must pass silently: no regions
  // are registered, checks never run, and the regular build pays nothing.
  machine::Machine m(two_node_config(1));
  m.power_on();
  EXPECT_EQ(sim::affsan::region_count(), 0u);

  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const sim::EngineRef node0(&m.engine(), 0);
  node0.schedule(4096, [&m, link] {
    m.mesh().wire(NodeId{1}, link).set_bit_error_rate(0.5);
  });
  EXPECT_NO_THROW(m.engine().run_until_idle());
}

}  // namespace
}  // namespace qcdoc
