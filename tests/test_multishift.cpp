// Multi-shift CG invariants: a >= 4-shift family converging in ONE Krylov
// sequence, the zeta-recurrence tracking true shifted residuals, the
// sigma = 0 base system bit-matching plain CG, bit-identical results across
// engine thread counts, and audited-variant rollback behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "lattice/cg.h"
#include "lattice/multishift.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::fill_gauge_by_global_site;
using testing::gather_global;

/// True residual of the shifted normal equation:
/// |(M^+M + sigma) x - M^+ b| / |M^+ b|.
double shifted_residual(DiracOperator& op, double sigma, DistField& x,
                        DistField& b) {
  FieldOps& ops = op.ops();
  DistField tmp = op.make_field("msck.tmp");
  DistField ax = op.make_field("msck.ax");
  DistField rhs = op.make_field("msck.rhs");
  op.apply(tmp, x);
  op.apply_dag(ax, tmp);
  ops.axpy(sigma, x, ax);
  op.apply_dag(rhs, b);
  ops.axpy(-1.0, rhs, ax);  // ax = (M^+M + sigma) x - M^+ b
  return std::sqrt(ops.norm2(ax) / ops.norm2(rhs));
}

struct MsSetup {
  LatticeRig rig;
  GaugeField gauge;
  std::optional<WilsonDirac> op_;
  std::optional<DistField> b_;
  MsSetup(std::array<int, 6> extents, Coord4 global, int threads = 1)
      : rig(extents, global, threads),
        gauge(rig.comm.get(), rig.geom.get()) {
    fill_gauge_by_global_site(*rig.geom, gauge, 0x517f7);
    op_.emplace(rig.ops.get(), rig.geom.get(), &gauge,
                WilsonParams{.kappa = 0.124});
    b_.emplace(op_->make_field("b"));
    fill_by_global_site(*rig.geom, *b_);
  }
  WilsonDirac& op() { return *op_; }
  DistField& b() { return *b_; }
  std::vector<DistField> solutions(std::size_t n) {
    std::vector<DistField> x;
    x.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(op().make_field("x" + std::to_string(i)));
    }
    return x;
  }
};

TEST(Multishift, FourShiftsConvergeInOneSequence) {
  MsSetup s({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  MultishiftParams params;
  params.shifts = {0.0, 0.05, 0.2, 0.5, 1.0};
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  auto x = s.solutions(params.shifts.size());
  const MultishiftResult r = multishift_solve(s.op(), x, s.b(), params);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.relative_residuals.size(), params.shifts.size());
  for (std::size_t i = 0; i < params.shifts.size(); ++i) {
    EXPECT_LT(r.relative_residuals[i], params.tolerance) << "shift " << i;
    EXPECT_LT(shifted_residual(s.op(), params.shifts[i], x[i], s.b()), 1e-6)
        << "shift " << i;
  }
  // One Krylov sequence: iterations counts shared Dirac applications, and
  // the whole family cost one base solve worth of them.
  EXPECT_LE(r.iterations, params.max_iterations);
  EXPECT_GT(r.flops, 0.0);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Multishift, ZetaRecurrenceTracksTrueResiduals) {
  // Stop mid-convergence (tolerance no shift can reach in 25 iterations)
  // and compare the recurrence's claimed |r_i|/|b| against residuals
  // computed from scratch: they must agree to near machine accuracy.
  MsSetup s({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  MultishiftParams params;
  params.shifts = {0.0, 0.1, 0.4, 0.9};
  params.tolerance = 1e-30;
  params.max_iterations = 25;
  auto x = s.solutions(params.shifts.size());
  const MultishiftResult r = multishift_solve(s.op(), x, s.b(), params);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 25);
  for (std::size_t i = 0; i < params.shifts.size(); ++i) {
    const double truth = shifted_residual(s.op(), params.shifts[i], x[i], s.b());
    const double claimed = r.relative_residuals[i];
    EXPECT_NEAR(claimed, truth, 1e-8 + 1e-4 * truth)
        << "shift " << i << ": recurrence drifted from the true residual";
  }
}

TEST(Multishift, SigmaZeroBitMatchesPlainCg) {
  // shifts[0] == 0 performs cg_solve's exact operator and vector sequence;
  // the base solution must match plain CG bit for bit.
  const Coord4 global{4, 4, 4, 4};
  MsSetup ms({2, 2, 1, 1, 1, 1}, global);
  MsSetup cg({2, 2, 1, 1, 1, 1}, global);

  MultishiftParams mp;
  mp.shifts = {0.0, 0.1, 0.3, 0.7};
  mp.tolerance = 1e-8;
  mp.max_iterations = 400;
  auto x = ms.solutions(mp.shifts.size());
  const MultishiftResult mr = multishift_solve(ms.op(), x, ms.b(), mp);
  EXPECT_TRUE(mr.converged);

  DistField xc = cg.op().make_field("xc");
  xc.zero();
  CgParams cp;
  cp.tolerance = 1e-8;
  cp.max_iterations = 400;
  const CgResult cr = cg_solve(cg.op(), xc, cg.b(), cp);
  EXPECT_TRUE(cr.converged);
  EXPECT_EQ(mr.iterations, cr.iterations);

  const auto a = gather_global(*ms.rig.geom, x[0]);
  const auto c = gather_global(*cg.rig.geom, xc);
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], c[i]) << "word " << i;
  }
}

TEST(Multishift, BitIdenticalAcrossEngineThreads) {
  MultishiftParams params;
  params.shifts = {0.0, 0.2, 0.8};
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  std::vector<std::vector<double>> gathered;
  std::vector<Cycle> cycles;
  for (const int threads : {1, 2, 4}) {
    MsSetup s({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4}, threads);
    auto x = s.solutions(params.shifts.size());
    const MultishiftResult r = multishift_solve(s.op(), x, s.b(), params);
    EXPECT_TRUE(r.converged) << threads << " threads";
    std::vector<double> all;
    for (auto& xi : x) {
      const auto g = gather_global(*s.rig.geom, xi);
      all.insert(all.end(), g.begin(), g.end());
    }
    gathered.push_back(std::move(all));
    cycles.push_back(r.cycles);
  }
  for (std::size_t t = 1; t < gathered.size(); ++t) {
    ASSERT_EQ(gathered[t].size(), gathered[0].size());
    for (std::size_t i = 0; i < gathered[0].size(); ++i) {
      ASSERT_EQ(gathered[t][i], gathered[0][i])
          << "thread variant " << t << ", word " << i;
    }
    EXPECT_EQ(cycles[t], cycles[0]);
  }
}

TEST(Multishift, CleanAuditMatchesUnaudited) {
  MultishiftParams params;
  params.shifts = {0.0, 0.1, 0.5};
  params.tolerance = 1e-8;
  params.max_iterations = 400;

  MsSetup plain({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  auto xp = plain.solutions(params.shifts.size());
  const MultishiftResult rp = multishift_solve(plain.op(), xp, plain.b(), params);

  MsSetup audited({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  auto xa = audited.solutions(params.shifts.size());
  MultishiftAuditParams audit;
  audit.clean = [] { return true; };
  audit.interval = 5;
  const MultishiftResult ra =
      multishift_solve_audited(audited.op(), xa, audited.b(), params, audit);

  EXPECT_TRUE(rp.converged);
  EXPECT_TRUE(ra.converged);
  EXPECT_EQ(ra.iterations, rp.iterations);
  EXPECT_EQ(ra.restarts, 0);
  EXPECT_GT(ra.audits, 0u);
  for (std::size_t i = 0; i < params.shifts.size(); ++i) {
    const auto a = gather_global(*plain.rig.geom, xp[i]);
    const auto b = gather_global(*audited.rig.geom, xa[i]);
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "shift " << i << ", word " << k;
    }
  }
}

TEST(Multishift, DirtyAuditRollsBackAndStillConverges) {
  MultishiftParams params;
  params.shifts = {0.0, 0.1, 0.5};
  params.tolerance = 1e-8;
  params.max_iterations = 400;

  MsSetup plain({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  auto xp = plain.solutions(params.shifts.size());
  const MultishiftResult rp = multishift_solve(plain.op(), xp, plain.b(), params);
  EXPECT_TRUE(rp.converged);

  // The third audit reports corruption; the solver must restore the shadow
  // working set (including the zeta scalars), replay the interval, and end
  // on the same bits as the clean run.
  MsSetup audited({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  auto xa = audited.solutions(params.shifts.size());
  int audit_no = 0;
  MultishiftAuditParams audit;
  audit.clean = [&audit_no] { return ++audit_no != 3; };
  audit.interval = 5;
  const MultishiftResult ra =
      multishift_solve_audited(audited.op(), xa, audited.b(), params, audit);

  EXPECT_TRUE(ra.converged);
  EXPECT_EQ(ra.restarts, 1);
  EXPECT_EQ(ra.audit_failures, 1u);
  EXPECT_EQ(ra.iterations, rp.iterations);
  for (std::size_t i = 0; i < params.shifts.size(); ++i) {
    const auto a = gather_global(*plain.rig.geom, xp[i]);
    const auto b = gather_global(*audited.rig.geom, xa[i]);
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "shift " << i << ", word " << k;
    }
  }
}

}  // namespace
}  // namespace qcdoc::lattice
