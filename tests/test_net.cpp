#include <gtest/gtest.h>

#include "net/cluster_net.h"
#include "net/ethernet.h"
#include "net/mesh_net.h"

namespace qcdoc::net {
namespace {

MeshConfig small_mesh(std::array<int, 6> extents) {
  MeshConfig cfg;
  cfg.shape.extent = extents;
  cfg.hssl.training_cycles = 32;
  return cfg;
}

TEST(MeshNet, AllLinksTrainAfterPowerOn) {
  sim::SerialEngine engine;
  MeshNet mesh(&engine, small_mesh({2, 2, 2, 1, 1, 1}));
  EXPECT_FALSE(mesh.all_trained());
  mesh.power_on();
  engine.run_until_idle();
  EXPECT_TRUE(mesh.all_trained());
  EXPECT_EQ(mesh.total_stat("hssl.trained"), 8u * 12u);
}

TEST(MeshNet, SupervisorPacketCrossesTheMesh) {
  sim::SerialEngine engine;
  MeshNet mesh(&engine, small_mesh({2, 2, 1, 1, 1, 1}));
  mesh.power_on();
  engine.run_until_idle();

  const NodeId a{0};
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId b = mesh.topology().neighbor(a, link);
  u64 received = 0;
  torus::LinkIndex recv_link{-1};
  mesh.scu(b).set_supervisor_handler(
      [&](torus::LinkIndex l, u64 w) {
        received = w;
        recv_link = l;
      });
  mesh.scu(a).send_supervisor(link, 0x1234abcdull);
  engine.run_until_idle();
  EXPECT_EQ(received, 0x1234abcdull);
  EXPECT_EQ(recv_link, torus::facing_link(link));
}

TEST(MeshNet, DmaBetweenNeighborsThroughTheTorus) {
  sim::SerialEngine engine;
  MeshNet mesh(&engine, small_mesh({4, 2, 1, 1, 1, 1}));
  mesh.power_on();
  engine.run_until_idle();

  const NodeId a{0};
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId b = mesh.topology().neighbor(a, link);
  auto src = mesh.memory(a).alloc(64, "src");
  auto dst = mesh.memory(b).alloc(64, "dst");
  for (u64 i = 0; i < 64; ++i) mesh.memory(a).write_word(src.word_addr + i, i);

  mesh.scu(b).recv_dma(torus::facing_link(link))
      .start(scu::DmaDescriptor{dst.word_addr, 64, 1, 0});
  mesh.scu(a).send_dma(link).start(scu::DmaDescriptor{src.word_addr, 64, 1, 0});
  EXPECT_TRUE(mesh.drain());
  for (u64 i = 0; i < 64; ++i) {
    EXPECT_EQ(mesh.memory(b).read_word(dst.word_addr + i), i);
  }
  EXPECT_TRUE(mesh.verify_link_checksums());
}

TEST(MeshNet, ChecksumVerificationDetectsTampering) {
  sim::SerialEngine engine;
  MeshNet mesh(&engine, small_mesh({2, 1, 1, 1, 1, 1}));
  mesh.power_on();
  engine.run_until_idle();
  // Data that never went over a wire: fake a mismatch by sending on one
  // side only with a receiver that ignores words is impossible by
  // construction; instead inject undetectable corruption via a high error
  // rate wire and heavy traffic.
  const NodeId a{0};
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  mesh.wire(a, link).set_bit_error_rate(0.02);
  const NodeId b = mesh.topology().neighbor(a, link);
  auto src = mesh.memory(a).alloc(512, "src");
  auto dst = mesh.memory(b).alloc(512, "dst");
  Rng rng(9);
  for (u64 i = 0; i < 512; ++i) {
    mesh.memory(a).write_word(src.word_addr + i, rng.next_u64());
  }
  mesh.scu(b).recv_dma(torus::facing_link(link))
      .start(scu::DmaDescriptor{dst.word_addr, 512, 1, 0});
  mesh.scu(a).send_dma(link).start(
      scu::DmaDescriptor{src.word_addr, 512, 1, 0});
  EXPECT_TRUE(mesh.drain());
  const u64 undetected = mesh.total_stat("scu.undetected_errors");
  std::vector<std::string> mismatches;
  const bool ok = mesh.verify_link_checksums(&mismatches);
  if (undetected > 0) {
    EXPECT_FALSE(ok);
    EXPECT_FALSE(mismatches.empty());
  } else {
    EXPECT_TRUE(ok);
  }
  // Either way the protocol recovered *detected* errors.
  EXPECT_GT(mesh.total_stat("scu.detected_errors"), 0u);
}

TEST(MeshNet, PartitionInterruptFloodsWholeMachine) {
  sim::SerialEngine engine;
  auto cfg = small_mesh({2, 2, 2, 2, 1, 1});
  cfg.pirq_window_cycles = 4096;
  MeshNet mesh(&engine, cfg);
  mesh.power_on();
  engine.run_until_idle();

  int nodes_interrupted = 0;
  u8 seen_mask = 0;
  mesh.pirq().set_interrupt_handler([&](NodeId, u8 mask) {
    ++nodes_interrupted;
    seen_mask |= mask;
  });
  mesh.pirq().raise(NodeId{5}, 0x3);
  engine.run_until_idle();
  EXPECT_EQ(nodes_interrupted, 16);
  EXPECT_EQ(seen_mask, 0x3);
}

TEST(MeshNet, PartitionInterruptDeliveredWithinWindows) {
  sim::SerialEngine engine;
  auto cfg = small_mesh({2, 2, 2, 1, 1, 1});
  cfg.pirq_window_cycles = 8192;
  MeshNet mesh(&engine, cfg);
  mesh.power_on();
  engine.run_until_idle();
  const Cycle raised_at = engine.now();
  Cycle delivered_at = 0;
  int count = 0;
  mesh.pirq().set_interrupt_handler([&](NodeId, u8) {
    delivered_at = engine.now();
    ++count;
  });
  mesh.pirq().raise(NodeId{0}, 0x1);
  engine.run_until_idle();
  EXPECT_EQ(count, 8);
  // Sampling happens at a window boundary within two windows of the raise.
  EXPECT_LE(delivered_at - raised_at, 2 * cfg.pirq_window_cycles);
  EXPECT_EQ(delivered_at % cfg.pirq_window_cycles, 0u);
}

TEST(EthernetTree, PacketDeliveryAndAccounting) {
  sim::SerialEngine engine;
  EthernetConfig cfg;
  EthernetTree eth(&engine, cfg, 4);
  int delivered = 0;
  for (int n = 0; n < 4; ++n) {
    eth.host_to_node(NodeId{static_cast<u32>(n)}, 1024, EthKind::kJtag,
                     [&] { ++delivered; });
  }
  engine.run_until_idle();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(eth.jtag_packets(), 4u);
  // 1070-byte frames at 100 Mbit take ~85.6 us of node-link serialization.
  EXPECT_GT(engine.now(), 0u);
}

TEST(EthernetTree, HostLinkIsSharedNodeLinksAreNot) {
  sim::SerialEngine engine;
  EthernetConfig cfg;
  cfg.host_links = 1;
  EthernetTree eth(&engine, cfg, 2);
  Cycle t0 = 0, t1 = 0;
  eth.host_to_node(NodeId{0}, 1024, EthKind::kUdp,
                   [&] { t0 = engine.now(); });
  eth.host_to_node(NodeId{1}, 1024, EthKind::kUdp,
                   [&] { t1 = engine.now(); });
  engine.run_until_idle();
  // The second packet serializes behind the first on the shared host link,
  // but its node link is independent: skew is one host-link serialization.
  EXPECT_GT(t1, t0);
  EXPECT_LT(t1 - t0, t0);
}

TEST(ClusterNet, MatchesPaperLatencyBand) {
  ClusterNetConfig cfg;
  ClusterNet net(cfg);
  // "5-10 us just to begin a transfer": a minimal message costs at least
  // the start latency.
  const double us =
      static_cast<double>(net.message_cycles(8)) / cfg.cpu_clock_hz * 1e6;
  EXPECT_GE(us, 5.0);
  EXPECT_LE(us, 10.5);
}

TEST(ClusterNet, HaloExchangeSerializesStartups) {
  ClusterNet net(ClusterNetConfig{});
  const auto one = net.halo_exchange_cycles(1, 4096);
  const auto eight = net.halo_exchange_cycles(8, 4096);
  EXPECT_GT(eight, 7 * one);  // startups dominate small transfers
}

TEST(ClusterNet, AllreduceScalesLogarithmically) {
  ClusterNet net(ClusterNetConfig{});
  const auto small = net.allreduce_cycles(16, 1);
  const auto large = net.allreduce_cycles(256, 1);
  EXPECT_EQ(large, 2 * small);  // log2: 4 levels -> 8 levels
}

}  // namespace
}  // namespace qcdoc::net

namespace qcdoc::net {
namespace {

TEST(MeshNet, QuiescenceCounterMatchesExhaustiveScan) {
  sim::SerialEngine engine;
  MeshNet mesh(&engine, small_mesh({2, 2, 1, 1, 1, 1}));
  mesh.power_on();
  engine.run_until_idle();
  EXPECT_TRUE(mesh.quiescent());
  EXPECT_TRUE(mesh.quiescent_slow());

  const NodeId a{0};
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId b = mesh.topology().neighbor(a, link);
  auto src = mesh.memory(a).alloc(32, "src");
  auto dst = mesh.memory(b).alloc(32, "dst");
  mesh.scu(b).recv_dma(torus::facing_link(link))
      .start(scu::DmaDescriptor{dst.word_addr, 32, 1, 0});
  mesh.scu(a).send_dma(link).start(scu::DmaDescriptor{src.word_addr, 32, 1, 0});
  // The O(1) counter and the exhaustive scan must agree at every event.
  while (!mesh.quiescent()) {
    ASSERT_EQ(mesh.quiescent(), mesh.quiescent_slow());
    ASSERT_TRUE(engine.step());
  }
  EXPECT_TRUE(mesh.quiescent_slow());
}

// Property sweep: the protocol must deliver correct data (or flag the run
// via checksums) across a wide range of injected error rates.
class ErrorRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErrorRateSweep, DataIntegrityOrChecksumMismatch) {
  const double ber = GetParam();
  sim::SerialEngine engine;
  auto cfg = small_mesh({2, 1, 1, 1, 1, 1});
  cfg.hssl.bit_error_rate = ber;
  MeshNet mesh(&engine, cfg);
  mesh.power_on();
  engine.run_until_idle();

  const NodeId a{0};
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId b = mesh.topology().neighbor(a, link);
  const u64 n = 256;
  auto src = mesh.memory(a).alloc(n, "src");
  auto dst = mesh.memory(b).alloc(n, "dst");
  Rng rng(123);
  for (u64 i = 0; i < n; ++i) {
    mesh.memory(a).write_word(src.word_addr + i, rng.next_u64());
  }
  mesh.scu(b).recv_dma(torus::facing_link(link))
      .start(scu::DmaDescriptor{dst.word_addr, static_cast<u32>(n), 1, 0});
  mesh.scu(a).send_dma(link).start(
      scu::DmaDescriptor{src.word_addr, static_cast<u32>(n), 1, 0});
  ASSERT_TRUE(mesh.drain());

  bool data_ok = true;
  for (u64 i = 0; i < n; ++i) {
    if (mesh.memory(b).read_word(dst.word_addr + i) !=
        mesh.memory(a).read_word(src.word_addr + i)) {
      data_ok = false;
      break;
    }
  }
  const bool checksums_ok = mesh.verify_link_checksums();
  // The machine guarantee: either the data arrived intact, or the
  // end-of-run checksum comparison flags the corruption.
  if (!data_ok) {
    EXPECT_FALSE(checksums_ok);
  }
  if (checksums_ok &&
      mesh.total_stat("scu.undetected_errors") == 0) {
    EXPECT_TRUE(data_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ErrorRateSweep,
                         ::testing::Values(0.0, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3));

}  // namespace
}  // namespace qcdoc::net
