#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "host/config_store.h"
#include "host/diagnostics.h"
#include "host/qcsh.h"
#include "host/qdaemon.h"

namespace qcdoc::host {
namespace {

machine::MachineConfig small_machine(std::array<int, 6> extents) {
  machine::MachineConfig cfg;
  cfg.shape.extent = extents;
  return cfg;
}

TEST(Boot, BringsEveryNodeToReady) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  const BootReport& report = daemon.boot();
  EXPECT_EQ(report.nodes_ready, 4);
  EXPECT_TRUE(report.partition_interrupt_ok);
  EXPECT_TRUE(m.mesh().all_trained());
  for (int n = 0; n < m.num_nodes(); ++n) {
    EXPECT_EQ(daemon.node_state(NodeId{static_cast<u32>(n)}),
              NodeBootState::kReady);
  }
}

TEST(Boot, PacketCountsMatchPaper) {
  // "each node receives about 100 UDP packets ... Then the run kernel is
  // loaded down, also taking about 100 UDP packets."
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  const BootReport& report = daemon.boot();
  EXPECT_EQ(report.jtag_packets, 4u * 100u);
  EXPECT_EQ(report.udp_packets, 4u * 100u);
}

TEST(Boot, DetectsSixDimensionalShape) {
  machine::Machine m(small_machine({4, 2, 2, 2, 1, 1}));
  Qdaemon daemon(&m);
  const BootReport& report = daemon.boot();
  EXPECT_EQ(report.detected_shape, m.topology().shape());
}

TEST(Qdaemon, AllocatesDisjointPartitions) {
  machine::Machine m(small_machine({4, 2, 2, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  torus::Shape half;
  half.extent = {2, 2, 2, 1, 1, 1};
  const auto p1 = daemon.allocate_partition("alice", half, 3);
  const auto p2 = daemon.allocate_partition("bob", half, 3);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(daemon.free_nodes(), 0);
  // Disjoint node sets.
  std::set<u32> seen;
  for (const NodeId n : p1->partition->nodes()) seen.insert(n.value);
  for (const NodeId n : p2->partition->nodes()) {
    EXPECT_EQ(seen.count(n.value), 0u);
  }
  // A third allocation must fail until one is released.
  EXPECT_FALSE(daemon.allocate_partition("carol", half, 3).has_value());
  daemon.release_partition(*p1);
  EXPECT_TRUE(daemon.allocate_partition("carol", half, 3).has_value());
}

TEST(Qdaemon, RemapsToRequestedDimensionality) {
  // "A user requests that the qdaemon remap their partition to a
  // dimensionality between one and six."
  machine::Machine m(small_machine({2, 2, 2, 2, 2, 2}));
  Qdaemon daemon(&m);
  daemon.boot();
  for (int dims = 1; dims <= 6; ++dims) {
    torus::Shape box;
    box.extent = {2, 2, 2, 2, 2, 2};
    const auto p = daemon.allocate_partition("p", box, dims);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->partition->logical_dims(), dims);
    EXPECT_EQ(p->partition->num_nodes(), 64);
    EXPECT_TRUE(p->partition->is_true_torus());
    daemon.release_partition(*p);
  }
}

TEST(Qdaemon, RunsJobOnPartition) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  torus::Shape box;
  box.extent = {2, 2, 1, 1, 1, 1};
  const auto p = daemon.allocate_partition("job", box, 2);
  ASSERT_TRUE(p.has_value());
  const JobResult result = daemon.run_job(
      *p, [](comms::Communicator& comm, std::vector<std::string>& out) {
        std::vector<double> contrib(static_cast<std::size_t>(comm.num_nodes()),
                                    1.0);
        const auto sum = comm.global_sum(contrib);
        out.push_back("sum=" + std::to_string(static_cast<int>(sum.value)));
      });
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(result.output[0], "sum=4");
}

TEST(Diagnostics, ChecksumsCleanOnQuietMachine) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  Diagnostics diag(&m, &daemon.ethernet());
  const auto report = diag.verify_checksums();
  EXPECT_TRUE(report.all_match);
  EXPECT_EQ(report.links_checked, 4 * 12);
}

TEST(Diagnostics, JtagPeekPokeRoundTrip) {
  machine::Machine m(small_machine({2, 1, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  Diagnostics diag(&m, &daemon.ethernet());
  const auto block = m.memory(NodeId{1}).alloc(4, "probe");
  const Cycle before = m.engine().now();
  diag.jtag_poke(NodeId{1}, block.word_addr, 0xfeedfaceull);
  EXPECT_EQ(diag.jtag_peek(NodeId{1}, block.word_addr), 0xfeedfaceull);
  EXPECT_GT(m.engine().now(), before);  // probing takes real packet time
}

TEST(Diagnostics, LinkErrorScanFlagsFaultyWiring) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  // Inject a marginal wire on node 0 and push traffic over it.
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  m.mesh().wire(NodeId{0}, link).set_bit_error_rate(5e-3);
  const NodeId peer = m.topology().neighbor(NodeId{0}, link);
  auto src = m.memory(NodeId{0}).alloc(256, "src");
  auto dst = m.memory(peer).alloc(256, "dst");
  m.scu(peer).recv_dma(torus::facing_link(link))
      .start(scu::DmaDescriptor{dst.word_addr, 256, 1, 0});
  m.scu(NodeId{0}).send_dma(link).start(
      scu::DmaDescriptor{src.word_addr, 256, 1, 0});
  EXPECT_TRUE(m.mesh().drain());

  Diagnostics diag(&m, &daemon.ethernet());
  const auto scan = diag.scan_link_errors();
  EXPECT_GT(scan.detected_errors + scan.resends, 0u);
  ASSERT_FALSE(scan.suspect_nodes.empty());
}

}  // namespace
}  // namespace qcdoc::host

namespace qcdoc::host {
namespace {

TEST(Boot, HardwareFailuresAreTrackedAndQuarantined) {
  machine::Machine m(small_machine({4, 2, 1, 1, 1, 1}));
  BootParams params;
  params.failing_nodes = {NodeId{3}, NodeId{5}};
  Qdaemon daemon(&m, net::EthernetConfig{}, params);
  const auto& report = daemon.boot();
  EXPECT_EQ(report.nodes_ready, 6);
  ASSERT_EQ(report.failed_nodes.size(), 2u);
  EXPECT_EQ(daemon.node_state(NodeId{3}), NodeBootState::kHardwareFailed);
  EXPECT_EQ(daemon.node_state(NodeId{0}), NodeBootState::kReady);
  // Failed nodes are never allocatable.
  EXPECT_EQ(daemon.free_nodes(), 6);
  torus::Shape whole;
  whole.extent = {4, 2, 1, 1, 1, 1};
  EXPECT_FALSE(daemon.allocate_partition("all", whole, 2).has_value());
  // But a box avoiding them works.
  torus::Shape half;
  half.extent = {1, 2, 1, 1, 1, 1};
  EXPECT_TRUE(daemon.allocate_partition("small", half, 1).has_value());
}

TEST(Qcsh, ScriptAllocatesRunsAndReleases) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  Qcsh shell(&daemon);
  shell.register_application(
      "sum", [](comms::Communicator& comm, const std::vector<std::string>&,
                std::vector<std::string>& out) {
        std::vector<double> one(static_cast<std::size_t>(comm.num_nodes()),
                                1.0);
        out.push_back("nodes=" +
                      std::to_string(static_cast<int>(
                          comm.global_sum(one).value)));
      });
  const auto stream = shell.run_script(R"(
# a user session
boot
alloc mine 2x2x1x1x1x1 4
run mine sum
partitions
release mine
partitions
)");
  ASSERT_GE(stream.size(), 5u);
  EXPECT_NE(stream[0].find("booted 4 nodes"), std::string::npos);
  EXPECT_NE(stream[1].find("partition 'mine'"), std::string::npos);
  EXPECT_EQ(stream[2], "nodes=4");
  EXPECT_EQ(stream[3], "mine: 2x2x1x1x1x1");
  EXPECT_NE(stream[4].find("released"), std::string::npos);
  EXPECT_EQ(stream[5], "(none)");
  EXPECT_EQ(shell.exit_code(), 0);
}

TEST(Qcsh, ReportsErrorsWithNonzeroExit) {
  machine::Machine m(small_machine({2, 1, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  Qcsh shell(&daemon);
  const auto out = shell.execute("frobnicate");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("unknown command"), std::string::npos);
  EXPECT_NE(shell.exit_code(), 0);
  EXPECT_FALSE(shell.execute("alloc bad 2xbroken 4").empty());
  EXPECT_FALSE(shell.execute("run nothing nowhere").empty());
}

TEST(Qcsh, StatusCountsNodeStates) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  BootParams params;
  params.failing_nodes = {NodeId{1}};
  Qdaemon daemon(&m, net::EthernetConfig{}, params);
  Qcsh shell(&daemon);
  shell.execute("boot");
  const auto status = shell.execute("status");
  bool saw_ready = false, saw_failed = false;
  for (const auto& line : status) {
    if (line.find("ready: 3") != std::string::npos) saw_ready = true;
    if (line.find("failed nodes: 1") != std::string::npos) saw_failed = true;
  }
  EXPECT_TRUE(saw_ready);
  EXPECT_TRUE(saw_failed);
}

}  // namespace
}  // namespace qcdoc::host

namespace qcdoc::host {
namespace {

struct StoreRig {
  machine::Machine m;
  std::unique_ptr<Qdaemon> daemon;
  std::unique_ptr<torus::Partition> partition;
  std::unique_ptr<comms::Communicator> comm;
  std::unique_ptr<lattice::GlobalGeometry> geom;

  StoreRig()
      : m(small_machine({2, 2, 1, 1, 1, 1})) {
    daemon = std::make_unique<Qdaemon>(&m);
    daemon->boot();
    partition = std::make_unique<torus::Partition>(
        torus::Partition::whole_machine(m.topology(),
                                        torus::FoldSpec::identity(4)));
    comm = std::make_unique<comms::Communicator>(&m, partition.get());
    geom = std::make_unique<lattice::GlobalGeometry>(partition.get(),
                                                     lattice::Coord4{4, 4, 2, 2});
  }
};

TEST(ConfigStore, SaveLoadRoundTripPreservesEveryLink) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(71);
  gauge.randomize(rng);
  const double plaq = gauge.average_plaquette();

  const auto saved = store.save(gauge, "conf.0001");
  EXPECT_TRUE(saved.ok);
  EXPECT_GT(saved.bytes, 0u);
  EXPECT_GT(saved.seconds, 0.0);
  EXPECT_TRUE(store.exists("conf.0001"));
  EXPECT_EQ(store.stored_plaquette("conf.0001"), plaq);

  lattice::GaugeField restored(rig.comm.get(), rig.geom.get());
  restored.set_unit();
  const auto loaded = store.load(&restored, "conf.0001");
  EXPECT_TRUE(loaded.ok);
  // Bit-for-bit identical links.
  for (int r = 0; r < rig.geom->ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      for (int mu = 0; mu < lattice::kNd; ++mu) {
        const auto a = gauge.link(r, s, mu);
        const auto b = restored.link(r, s, mu);
        for (std::size_t k = 0; k < 9; ++k) {
          ASSERT_EQ(a.m[k], b.m[k]);
        }
      }
    }
  }
}

TEST(ConfigStore, RejectsWrongGeometryAndMissingNames) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  const auto missing = store.load(&gauge, "missing");
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("no configuration"), std::string::npos);
  EXPECT_TRUE(store.save(gauge, "conf").ok);
  lattice::GlobalGeometry other(rig.partition.get(), {8, 4, 2, 2});
  lattice::GaugeField wrong(rig.comm.get(), &other);
  const auto skew = store.load(&wrong, "conf");
  EXPECT_FALSE(skew.ok);
  EXPECT_NE(skew.error.find("dimensions"), std::string::npos);
}

TEST(ConfigStore, RejectsTruncatedPayload) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(72);
  gauge.randomize(rng);
  EXPECT_TRUE(store.save(gauge, "conf").ok);

  // A torn NFS write: the payload ends early but the header still claims
  // the full volume.  Load must refuse before copying a single site.
  ASSERT_TRUE(store.truncate_stored("conf", 100));
  lattice::GaugeField target(rig.comm.get(), rig.geom.get());
  target.set_unit();
  const auto report = store.load(&target, "conf");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("truncated"), std::string::npos);
  // The target field was not touched.
  EXPECT_EQ(target.average_plaquette(), 1.0);
}

TEST(ConfigStore, RejectsFlippedChecksumAndCorruptPayload) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(73);
  gauge.randomize(rng);
  EXPECT_TRUE(store.save(gauge, "ck").ok);
  EXPECT_TRUE(store.save(gauge, "data").ok);

  // Flipping a header-checksum bit and flipping a payload bit must both be
  // caught by the same verification, with the same diagnostic layer.
  ASSERT_TRUE(store.flip_stored_checksum_bit("ck", 17));
  ASSERT_TRUE(store.flip_stored_payload_bit("data", 1234, 3));
  lattice::GaugeField target(rig.comm.get(), rig.geom.get());
  target.set_unit();
  const auto ck = store.load(&target, "ck");
  EXPECT_FALSE(ck.ok);
  EXPECT_NE(ck.error.find("checksum"), std::string::npos);
  const auto data = store.load(&target, "data");
  EXPECT_FALSE(data.ok);
  EXPECT_NE(data.error.find("checksum"), std::string::npos);
}

TEST(ConfigStore, RejectsHeaderDimensionSkewAgainstPayload) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  EXPECT_TRUE(store.save(gauge, "conf").ok);

  // Header claims a smaller volume than the payload carries.  Geometry
  // matches the (doctored) header, so only the payload-size check between
  // header parse and site copy can catch it.
  ASSERT_TRUE(store.override_stored_dims("conf", {4, 4, 2, 1}));
  lattice::GlobalGeometry half(rig.partition.get(), {4, 4, 2, 1});
  lattice::GaugeField target(rig.comm.get(), &half);
  target.set_unit();
  const auto report = store.load(&target, "conf");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("oversized"), std::string::npos);
}

TEST(ConfigStore, IoTimeScalesWithConfigurationSize) {
  StoreRig rig;
  ConfigStore store(&rig.m, &rig.daemon->ethernet());
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  const auto small_io = store.save(gauge, "small");

  lattice::GlobalGeometry big_geom(rig.partition.get(), {8, 8, 4, 4});
  lattice::GaugeField big(rig.comm.get(), &big_geom);
  big.set_unit();
  const auto big_io = store.save(big, "big");
  EXPECT_GT(big_io.bytes, small_io.bytes);
  EXPECT_GT(big_io.cycles, small_io.cycles);
  EXPECT_EQ(store.list().size(), 2u);
}

}  // namespace
}  // namespace qcdoc::host

namespace qcdoc::host {
namespace {

TEST(Qdaemon, RejectsBoxesThatDoNotTileTheMachine) {
  machine::Machine m(small_machine({4, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  torus::Shape bad;
  bad.extent = {3, 2, 1, 1, 1, 1};  // 3 does not divide 4
  EXPECT_FALSE(daemon.allocate_partition("bad", bad, 2).has_value());
  torus::Shape too_big;
  too_big.extent = {8, 2, 1, 1, 1, 1};  // larger than the machine
  EXPECT_FALSE(daemon.allocate_partition("big", too_big, 2).has_value());
}

TEST(Qdaemon, ReleaseIsIdempotentAndUnknownHandlesAreIgnored) {
  machine::Machine m(small_machine({2, 2, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  torus::Shape box;
  box.extent = {2, 2, 1, 1, 1, 1};
  const auto p = daemon.allocate_partition("p", box, 2);
  ASSERT_TRUE(p.has_value());
  daemon.release_partition(*p);
  daemon.release_partition(*p);  // double release: no crash, no effect
  EXPECT_EQ(daemon.free_nodes(), 4);
  PartitionHandle bogus;
  bogus.id = 999;
  daemon.release_partition(bogus);
  EXPECT_EQ(daemon.free_nodes(), 4);
}

TEST(Qdaemon, RunJobWithNullAppFailsCleanly) {
  machine::Machine m(small_machine({2, 1, 1, 1, 1, 1}));
  Qdaemon daemon(&m);
  daemon.boot();
  torus::Shape box;
  box.extent = {2, 1, 1, 1, 1, 1};
  const auto p = daemon.allocate_partition("p", box, 1);
  ASSERT_TRUE(p.has_value());
  const auto result = daemon.run_job(*p, nullptr);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace qcdoc::host
