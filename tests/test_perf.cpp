// Reporting and timing-model analysis tests.
#include <gtest/gtest.h>

#include "cpu/timing.h"
#include "perf/report.h"

namespace qcdoc::perf {
namespace {

TEST(Report, FormatTableAlignsAndPrintsRows) {
  std::vector<Row> rows = {
      {"E1", "wilson", 40.0, 39.8, "%"},
      {"E6", "machine total", 1610442.0, 1610442.0, "USD"},
  };
  const std::string table = format_table(rows);
  EXPECT_NE(table.find("experiment"), std::string::npos);
  EXPECT_NE(table.find("wilson"), std::string::npos);
  EXPECT_NE(table.find("39.8"), std::string::npos);
  EXPECT_NE(table.find("USD"), std::string::npos);
  // One header plus two data lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

TEST(Report, EfficiencyAndSustainedFromCgResult) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  machine::Machine m(cfg);
  EXPECT_DOUBLE_EQ(machine_peak_flops_per_cycle(m), 4.0);  // 2 nodes x 2

  lattice::CgResult r;
  r.flops = 4000.0;
  r.cycles = 2000;
  EXPECT_DOUBLE_EQ(cg_efficiency(m, r), 0.5);
  // 4000 flops in 2000 cycles at 500 MHz = 4 us -> 1000 Mflops sustained.
  EXPECT_NEAR(cg_sustained_mflops(m, r), 1000.0, 1e-9);
}

TEST(Report, PricePerMflopsMatchesCostModel) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  cfg.clock_hz = 450e6;
  machine::Machine m(cfg);
  const machine::CostModel cost;
  EXPECT_DOUBLE_EQ(
      price_per_mflops(m, 0.45),
      cost.usd_per_sustained_mflops(m.packaging(), 450e6, 0.45));
}

}  // namespace
}  // namespace qcdoc::perf

namespace qcdoc::cpu {
namespace {

TEST(KernelBreakdown, IdentifiesTheBindingResource) {
  HwParams hw;
  memsys::MemTiming mem;
  CpuParams params;
  params.fpu_issue_efficiency = 1.0;
  CpuModel model(hw, mem, params);

  KernelProfile fpu_bound;
  fpu_bound.fmadd_flops = 20000;  // 10000 fpu cycles
  fpu_bound.load_bytes = 800;     // 100 lsu cycles
  EXPECT_STREQ(model.analyze(fpu_bound).bound, "fpu");

  KernelProfile lsu_bound;
  lsu_bound.fmadd_flops = 200;
  lsu_bound.load_bytes = 80000;  // 10000 lsu cycles
  EXPECT_STREQ(model.analyze(lsu_bound).bound, "lsu");

  KernelProfile edram_bound;
  edram_bound.fmadd_flops = 200;
  edram_bound.edram_bytes = 320000;  // 20000 edram cycles
  edram_bound.streams = 2;
  EXPECT_STREQ(model.analyze(edram_bound).bound, "edram");
}

TEST(KernelBreakdown, DdrIsAdditiveToTheBound) {
  HwParams hw;
  memsys::MemTiming mem;
  CpuModel model(hw, mem);
  KernelProfile p;
  p.fmadd_flops = 20000;
  p.issue_efficiency = 1.0;
  const double base = model.kernel_cycles(p);
  p.ddr_bytes = 5200;  // 1000 cycles at 5.2 B/cycle
  p.streams = 1;
  const auto b = model.analyze(p);
  EXPECT_NEAR(b.total_cycles, base + 1000.0, 1.0);
  EXPECT_NEAR(b.ddr_cycles, 1000.0, 1.0);
}

TEST(KernelBreakdown, PerKernelIssueEfficiencyOverridesGlobal) {
  HwParams hw;
  memsys::MemTiming mem;
  CpuParams params;
  params.fpu_issue_efficiency = 0.5;
  CpuModel model(hw, mem, params);
  KernelProfile p;
  p.fmadd_flops = 1000;  // 500 raw fpu cycles
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 1000.0);  // /0.5
  p.issue_efficiency = 1.0;
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 500.0);
}

}  // namespace
}  // namespace qcdoc::cpu
