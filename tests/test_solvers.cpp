// Solver-level tests: even-odd preconditioned staggered CG and BiCGStab.
#include <gtest/gtest.h>

#include "lattice/bicgstab.h"
#include "lattice/cg.h"
#include "lattice/clover.h"
#include "lattice/eo_cg.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::full_residual;

TEST(EoCg, SolvesAsqtadToFullSystemResidual) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(51);
  gauge.randomize_near_unit(rng, 0.1);
  AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 AsqtadParams{.mass = 0.1});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 600;
  const CgResult result = asqtad_eo_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(full_residual(op, x, b), 1e-6);
}

TEST(EoCg, MatchesPlainCgSolution) {
  auto run = [](bool eo) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(52);
    gauge.randomize_near_unit(rng, 0.1);
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   AsqtadParams{.mass = 0.15});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-10;
    params.max_iterations = 800;
    const CgResult r =
        eo ? asqtad_eo_solve(op, x, b, params) : cg_solve(op, x, b, params);
    struct Out {
      std::vector<double> solution;
      CgResult result;
    };
    return Out{testing::gather_global(*rig.geom, x), r};
  };
  const auto plain = run(false);
  const auto eo = run(true);
  ASSERT_TRUE(plain.result.converged);
  ASSERT_TRUE(eo.result.converged);
  double worst = 0;
  for (std::size_t i = 0; i < plain.solution.size(); ++i) {
    worst = std::max(worst, std::abs(plain.solution[i] - eo.solution[i]));
  }
  EXPECT_LT(worst, 1e-7);
}

TEST(EoCg, IsCheaperThanNormalEquationCg) {
  // The classic factor: eo iterations cost one full-volume Dslash
  // equivalent instead of two, at comparable iteration counts.
  auto cycles = [](bool eo) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(53);
    gauge.randomize_near_unit(rng, 0.1);
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   AsqtadParams{.mass = 0.1});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-8;
    params.max_iterations = 800;
    const CgResult r =
        eo ? asqtad_eo_solve(op, x, b, params) : cg_solve(op, x, b, params);
    EXPECT_TRUE(r.converged);
    return r.cycles;
  };
  const Cycle plain = cycles(false);
  const Cycle eo = cycles(true);
  EXPECT_LT(eo, plain);
  EXPECT_LT(static_cast<double>(eo), 0.75 * static_cast<double>(plain));
}

TEST(BiCgStab, SolvesWilsonDirectly) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(54);
  gauge.randomize_near_unit(rng, 0.1);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.12});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  const CgResult result = bicgstab_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(full_residual(op, x, b), 1e-6);
}

TEST(BiCgStab, SolvesCloverAndAgreesWithCg) {
  auto run = [](bool bicg, std::vector<double>* sol) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(55);
    gauge.randomize_near_unit(rng, 0.1);
    CloverDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   CloverParams{.kappa = 0.11, .csw = 1.0});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-10;
    params.max_iterations = 600;
    CgResult r;
    if (bicg) {
      r = bicgstab_solve(op, x, b, params);
    } else {
      // cg solves M^+M x = M^+ b, same solution as M x = b.
      r = cg_solve(op, x, b, params);
    }
    EXPECT_TRUE(r.converged);
    *sol = testing::gather_global(*rig.geom, x);
    return r;
  };
  std::vector<double> via_bicg, via_cg;
  run(true, &via_bicg);
  run(false, &via_cg);
  double worst = 0;
  for (std::size_t i = 0; i < via_cg.size(); ++i) {
    worst = std::max(worst, std::abs(via_bicg[i] - via_cg[i]));
  }
  EXPECT_LT(worst, 1e-7);
}

TEST(BiCgStab, UsesFewerOperatorApplicationsThanNormalEquations) {
  // BiCGStab applies M twice per iteration but needs no M^+ and typically
  // converges in fewer iterations than CG on M^+M for well-conditioned
  // Wilson systems.
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(56);
  gauge.randomize_near_unit(rng, 0.05);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.1});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 300;
  const CgResult bicg = bicgstab_solve(op, x, b, params);
  EXPECT_TRUE(bicg.converged);
  EXPECT_GT(bicg.iterations, 0);
}

TEST(FieldOps, ComplexDotAndAxpy) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  DistField x(rig.comm.get(), rig.geom.get(), 4, "x");
  DistField y(rig.comm.get(), rig.geom.get(), 4, "y");
  // x = (1 + 2i, ...), y = (3 - i, ...) per complex pair.
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      xs[i] = 1.0;
      xs[i + 1] = 2.0;
      ys[i] = 3.0;
      ys[i + 1] = -1.0;
    }
  }
  const double pairs = 2.0 * rig.geom->local().volume() * rig.geom->ranks();
  // conj(1+2i)(3-i) = (1-2i)(3-i) = 3 - i - 6i + 2 i^2 = 1 - 7i
  const Complex d = rig.ops->cdot(x, y);
  EXPECT_DOUBLE_EQ(d.real(), 1.0 * pairs);
  EXPECT_DOUBLE_EQ(d.imag(), -7.0 * pairs);
  // y += i * x: (3 - 1) + i(-1 + ... ) -> (3 - 2, -1 + 1) = (1, 1)... check:
  rig.ops->caxpy(Complex(0.0, 1.0), x, y);
  auto ys = y.data(0);
  EXPECT_DOUBLE_EQ(ys[0], 3.0 - 2.0);  // re: 3 + re(i*(1+2i)) = 3 - 2
  EXPECT_DOUBLE_EQ(ys[1], -1.0 + 1.0); // im: -1 + im(i*(1+2i)) = -1 + 1
}

}  // namespace
}  // namespace qcdoc::lattice

namespace qcdoc::lattice {
namespace {

TEST(EoCg, WilsonEvenOddMatchesPlainCg) {
  auto run = [](bool eo) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(57);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-10;
    params.max_iterations = 800;
    const CgResult r =
        eo ? wilson_eo_solve(op, x, b, params) : cg_solve(op, x, b, params);
    struct Out {
      std::vector<double> solution;
      CgResult result;
    };
    return Out{testing::gather_global(*rig.geom, x), r};
  };
  const auto plain = run(false);
  const auto eo = run(true);
  ASSERT_TRUE(plain.result.converged);
  ASSERT_TRUE(eo.result.converged);
  double worst = 0;
  for (std::size_t i = 0; i < plain.solution.size(); ++i) {
    worst = std::max(worst, std::abs(plain.solution[i] - eo.solution[i]));
  }
  EXPECT_LT(worst, 1e-7);
  // The preconditioned system is better conditioned: fewer iterations.
  EXPECT_LT(eo.result.iterations, plain.result.iterations);
}

TEST(EoCg, WilsonEvenOddResidualVerified) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(58);
  gauge.randomize_near_unit(rng, 0.15);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.125});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 600;
  const CgResult result = wilson_eo_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(full_residual(op, x, b), 1e-6);
}

}  // namespace
}  // namespace qcdoc::lattice
