#include <gtest/gtest.h>

#include "lattice/cg.h"
#include "lattice/clover.h"
#include "lattice/dwf.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"
#include "perf/report.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::true_residual;

TEST(Cg, SolvesWilsonOnWeakField) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.12});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(true_residual(op, x, b), 1e-6);
  EXPECT_GT(result.iterations, 3);
  EXPECT_GT(result.flops, 0.0);
  EXPECT_GT(result.cycles, 0u);
  const double eff = perf::cg_efficiency(*rig.m, result);
  EXPECT_GT(eff, 0.1);
  EXPECT_LT(eff, 1.0);
}

TEST(Cg, SolvesCloverOnWeakField) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(42);
  gauge.randomize_near_unit(rng, 0.1);
  CloverDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 CloverParams{.kappa = 0.12, .csw = 1.0});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(true_residual(op, x, b), 1e-6);
}

TEST(Cg, SolvesAsqtad) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(43);
  gauge.randomize_near_unit(rng, 0.1);
  AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 AsqtadParams{.mass = 0.1});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 600;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(true_residual(op, x, b), 1e-6);
}

TEST(Cg, SolvesDomainWall) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(44);
  gauge.randomize_near_unit(rng, 0.1);
  DwfDirac op(rig.ops.get(), rig.geom.get(), &gauge,
              DwfParams{.ls = 4, .kappa5 = 0.15, .mf = 0.2});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 600;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(true_residual(op, x, b), 1e-6);
}

TEST(Cg, BitReproducibleAcrossRuns) {
  // The paper's verification: a five-day evolution repeated "with the
  // requirement that the resulting QCD configuration be identical in all
  // bits."  Two identical solves must agree in every bit of the solution
  // AND in simulated machine time.
  auto run = [](std::vector<double>* solution, Cycle* cycles) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(99);
    gauge.randomize_near_unit(rng, 0.15);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.124});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.fixed_iterations = 25;
    const CgResult result = cg_solve(op, x, b, params);
    *solution = testing::gather_global(*rig.geom, x);
    *cycles = result.cycles;
  };
  std::vector<double> x1, x2;
  Cycle c1 = 0, c2 = 0;
  run(&x1, &c1);
  run(&x2, &c2);
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_EQ(x1[i], x2[i]) << "bit difference at " << i;
  }
  EXPECT_EQ(c1, c2);
}

TEST(Cg, FixedIterationModeRunsExactCount) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.fixed_iterations = 7;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_EQ(result.iterations, 7);
}

TEST(Cg, AccountsCommunicationAndGlobalSums) {
  LatticeRig rig({2, 2, 2, 2, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.fixed_iterations = 5;
  const CgResult result = cg_solve(op, x, b, params);
  EXPECT_GT(result.compute_cycles, 0.0);
  EXPECT_GT(result.comm_cycles, 0.0);    // halo exchanges on a real network
  EXPECT_GT(result.global_cycles, 0.0);  // inner products
  EXPECT_NEAR(result.compute_cycles + result.comm_cycles + result.global_cycles,
              static_cast<double>(result.cycles),
              0.01 * static_cast<double>(result.cycles));
}

}  // namespace
}  // namespace qcdoc::lattice

namespace qcdoc::lattice {
namespace {

// Parameter sweep: CG must converge across the physical kappa range (the
// heavier the quark, the easier the solve) and iteration counts must grow
// monotonically toward the critical point.
class KappaSweep : public ::testing::TestWithParam<double> {};

TEST_P(KappaSweep, WilsonCgConvergesAndConditioningTracksKappa) {
  const double kappa = GetParam();
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(400);
  gauge.randomize_near_unit(rng, 0.1);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{kappa});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  testing::fill_by_global_site(*rig.geom, b);
  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 600;
  const CgResult r = cg_solve(op, x, b, params);
  EXPECT_TRUE(r.converged) << "kappa = " << kappa;
}

INSTANTIATE_TEST_SUITE_P(Kappas, KappaSweep,
                         ::testing::Values(0.05, 0.10, 0.14, 0.17));

TEST(Cg, IterationCountGrowsTowardCriticalKappa) {
  auto iters = [](double kappa) {
    LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(401);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{kappa});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    testing::fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-8;
    params.max_iterations = 1000;
    return cg_solve(op, x, b, params).iterations;
  };
  EXPECT_LT(iters(0.05), iters(0.16));
}

TEST(Cg, SolutionIsDistributionInvariant) {
  auto run = [](std::array<int, 6> machine) {
    LatticeRig rig(machine, {4, 4, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(402);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    testing::fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.fixed_iterations = 15;
    cg_solve(op, x, b, params);
    return testing::gather_global(*rig.geom, x);
  };
  const auto one = run({1, 1, 1, 1, 1, 1});
  const auto sixteen = run({2, 2, 2, 2, 1, 1});
  double worst = 0;
  for (std::size_t i = 0; i < one.size(); ++i) {
    worst = std::max(worst, std::abs(one[i] - sixteen[i]));
  }
  // Identical arithmetic order per site; only the global-sum grouping is
  // canonicalized -- results agree to near round-off.
  EXPECT_LT(worst, 1e-10);
}

}  // namespace
}  // namespace qcdoc::lattice
