#include <gtest/gtest.h>

#include <cstring>

#include "cpu/timing.h"
#include "fault/fault.h"
#include "machine/machine.h"
#include "memsys/dcache.h"
#include "memsys/memsys.h"
#include "memsys/scrub.h"

namespace qcdoc::memsys {
namespace {

TEST(NodeMemory, AllocPrefersEdramThenSpills) {
  MemConfig cfg;
  cfg.edram_words = 100;
  cfg.ddr_words = 1000;
  NodeMemory mem(cfg);
  const Block a = mem.alloc(60, "a");
  EXPECT_EQ(a.region, Region::kEdram);
  const Block b = mem.alloc(60, "b");  // does not fit the remaining EDRAM
  EXPECT_EQ(b.region, Region::kDdr);
  const Block c = mem.alloc(40, "c");  // still fits EDRAM
  EXPECT_EQ(c.region, Region::kEdram);
  EXPECT_EQ(mem.edram_words_used(), 100u);
  EXPECT_EQ(mem.ddr_words_used(), 60u);
}

TEST(NodeMemory, ReadWriteRoundTrip) {
  NodeMemory mem;
  const Block b = mem.alloc(16, "b");
  for (u64 i = 0; i < 16; ++i) mem.write_word(b.word_addr + i, i * i);
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(mem.read_word(b.word_addr + i), i * i);
}

TEST(NodeMemory, DoubleViewAliasesWords) {
  NodeMemory mem;
  const Block b = mem.alloc(8, "b");
  auto d = mem.doubles(b);
  d[0] = 3.25;
  // The word view sees the same bits.
  u64 bits = mem.read_word(b.word_addr);
  double via_word;
  std::memcpy(&via_word, &bits, sizeof(via_word));
  EXPECT_DOUBLE_EQ(via_word, 3.25);
}

TEST(NodeMemory, SpansSurviveLaterAllocations) {
  NodeMemory mem;
  const Block a = mem.alloc(32, "a");
  auto sa = mem.doubles(a);
  sa[5] = 1.5;
  for (int i = 0; i < 50; ++i) mem.alloc(1024, "filler");
  EXPECT_DOUBLE_EQ(sa[5], 1.5);  // no invalidation
  EXPECT_DOUBLE_EQ(mem.doubles(a)[5], 1.5);
}

TEST(NodeMemory, RegionOfAddress) {
  MemConfig cfg;
  cfg.edram_words = 64;
  NodeMemory mem(cfg);
  EXPECT_EQ(mem.region_of(0), Region::kEdram);
  EXPECT_EQ(mem.region_of(63), Region::kEdram);
  EXPECT_EQ(mem.region_of(64), Region::kDdr);
}

TEST(MemTiming, EdramStreamsAtFullBandwidthForTwoStreams) {
  MemTiming t;
  // 1600 bytes at 16 B/cycle = 100 cycles, no penalty for <= 2 streams.
  EXPECT_DOUBLE_EQ(t.stream_cycles(Region::kEdram, 1600, 2), 100.0);
  // More streams than the two prefetch engines pay page misses.
  EXPECT_GT(t.stream_cycles(Region::kEdram, 1600, 6), 100.0);
}

TEST(MemTiming, DdrIsSlowerThanEdram) {
  MemTiming t;
  EXPECT_GT(t.stream_cycles(Region::kDdr, 4096, 1),
            t.stream_cycles(Region::kEdram, 4096, 2));
  // Multi-stream DDR thrashes pages.
  EXPECT_GT(t.stream_cycles(Region::kDdr, 4096, 4),
            t.stream_cycles(Region::kDdr, 4096, 1));
}

TEST(DCache, WorkingSetModel) {
  DCacheConfig c;
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 16 * 1024, 4), 0.75);
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 64 * 1024, 4), 0.0);
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 1024, 1), 0.0);
}

TEST(CpuModel, FpuBoundKernel) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 1.0;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile p;
  p.fmadd_flops = 2000;  // 1000 cycles of perfect fmadds
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 1000.0);
  EXPECT_DOUBLE_EQ(model.efficiency(p), 1.0);
}

TEST(CpuModel, IssueEfficiencyDegradesFpu) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 0.5;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile p;
  p.fmadd_flops = 2000;
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 2000.0);
  EXPECT_DOUBLE_EQ(model.efficiency(p), 0.5);
}

TEST(CpuModel, DdrTrafficIsAdditiveEdramIsNot) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 1.0;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile base;
  base.fmadd_flops = 20000;  // 10000 fpu cycles
  cpu::KernelProfile with_edram = base;
  with_edram.edram_bytes = 16000;  // 1000 cycles, hidden under compute
  with_edram.streams = 2;
  EXPECT_DOUBLE_EQ(model.kernel_cycles(with_edram),
                   model.kernel_cycles(base));
  cpu::KernelProfile with_ddr = base;
  with_ddr.ddr_bytes = 16000;  // exposed stall
  with_ddr.streams = 1;
  EXPECT_GT(model.kernel_cycles(with_ddr), model.kernel_cycles(base));
}

TEST(CpuModel, SinglePrecisionHelpsOnlyMemoryBoundKernels) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuModel model(hw, mem);
  cpu::KernelProfile dp;
  dp.fmadd_flops = 100;
  dp.load_bytes = 6400;  // strongly load/store bound
  cpu::KernelProfile sp = dp;
  sp.load_bytes /= 2;
  EXPECT_LT(model.kernel_cycles(sp), model.kernel_cycles(dp));
}

// --- SECDED ECC + scrubbing (memsys/ecc.h, memsys/scrub.h) -----------------

// 4 EDRAM rows of 16 words plus 8 DDR bursts of 4 words: 12 codeword rows.
MemConfig tiny_ecc_config() {
  MemConfig cfg;
  cfg.edram_words = 64;
  cfg.ddr_words = 32;
  return cfg;
}

TEST(Ecc, SingleBitUpsetIsInvisibleAndScrubCorrects) {
  NodeMemory mem(tiny_ecc_config());
  const Block b = mem.alloc_in(Region::kEdram, 16, "b");
  for (u64 i = 0; i < 16; ++i) mem.write_word(b.word_addr + i, 1000 + i);
  mem.ecc().inject_upset(b.word_addr + 3, 17);
  // Correctable: every read goes through the ECC datapath, so software
  // never sees the flipped bit.
  EXPECT_EQ(mem.read_word(b.word_addr + 3), 1003u);
  EXPECT_EQ(mem.ecc().dirty_codewords(), 1u);
  EXPECT_FALSE(mem.ecc().machine_check_pending());
  // A full scrub sweep corrects and counts it.
  mem.ecc().scrub_step(/*rows=*/12, /*cycles_per_row=*/2);
  EXPECT_EQ(mem.ecc().counters().corrected, 1u);
  EXPECT_EQ(mem.ecc().dirty_codewords(), 0u);
  EXPECT_EQ(mem.read_word(b.word_addr + 3), 1003u);
  EXPECT_EQ(mem.ecc().counters().scrub_rows, 12u);
  EXPECT_EQ(mem.ecc().counters().scrub_cycles, 24u);
}

TEST(Ecc, DoubleBitUpsetCorruptsStorageAndLatchesMachineCheck) {
  NodeMemory mem(tiny_ecc_config());
  const Block b = mem.alloc_in(Region::kEdram, 16, "b");
  mem.write_word(b.word_addr, 42);
  mem.ecc().inject_upset(b.word_addr, 3);
  mem.ecc().inject_upset(b.word_addr, 9);
  // Beyond SECDED: the corruption is real and the controller raises a
  // machine check.
  EXPECT_EQ(mem.read_word(b.word_addr), 42u ^ (1ull << 3) ^ (1ull << 9));
  EXPECT_TRUE(mem.ecc().machine_check_pending());
  EXPECT_EQ(mem.ecc().counters().uncorrectable, 1u);
  EXPECT_EQ(mem.ecc().poisoned_codewords(), 1u);
  const auto checks = mem.ecc().consume_machine_checks();
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].word_addr, b.word_addr);
  EXPECT_EQ(checks[0].region, Region::kEdram);
  EXPECT_FALSE(mem.ecc().machine_check_pending());
}

TEST(Ecc, RowGeometryDecidesEscalation) {
  // Two single-bit flips in one 16-word EDRAM row exceed SECDED; the same
  // two flips one row apart stay independently correctable.
  {
    NodeMemory mem(tiny_ecc_config());
    const Block b = mem.alloc_in(Region::kEdram, 32, "b");
    mem.ecc().inject_upset(b.word_addr + 0, 1);
    mem.ecc().inject_upset(b.word_addr + 15, 2);  // same row
    EXPECT_EQ(mem.ecc().counters().uncorrectable, 1u);
  }
  {
    NodeMemory mem(tiny_ecc_config());
    const Block b = mem.alloc_in(Region::kEdram, 32, "b");
    mem.ecc().inject_upset(b.word_addr + 0, 1);
    mem.ecc().inject_upset(b.word_addr + 16, 2);  // next row
    EXPECT_EQ(mem.ecc().counters().uncorrectable, 0u);
    mem.ecc().scrub_step(12, 2);
    EXPECT_EQ(mem.ecc().counters().corrected, 2u);
  }
}

TEST(Ecc, DdrBurstsAreSmallerCodewords) {
  NodeMemory mem(tiny_ecc_config());
  const Block b = mem.alloc_in(Region::kDdr, 8, "b");
  // Words 0 and 3 share one 4-word DDR burst and escalate...
  mem.ecc().inject_upset(b.word_addr + 0, 5);
  mem.ecc().inject_upset(b.word_addr + 3, 6);
  EXPECT_EQ(mem.ecc().counters().uncorrectable, 1u);
  const auto checks = mem.ecc().consume_machine_checks();
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].region, Region::kDdr);
  // ...while word 4 lives in the next burst and stays correctable.
  mem.ecc().inject_upset(b.word_addr + 4, 5);
  EXPECT_EQ(mem.ecc().counters().uncorrectable, 1u);
}

TEST(Ecc, ProgramRewriteClearsPoisonedWords) {
  NodeMemory mem(tiny_ecc_config());
  const Block b = mem.alloc_in(Region::kEdram, 16, "b");
  mem.write_word(b.word_addr + 1, 7);
  mem.write_word(b.word_addr + 2, 8);
  mem.ecc().inject_upset(b.word_addr + 1, 0);
  mem.ecc().inject_upset(b.word_addr + 2, 0);  // same row: uncorrectable
  EXPECT_EQ(mem.ecc().poisoned_codewords(), 1u);
  // The program overwrites both words (a checkpoint-rollback copy does
  // exactly this); the write path regenerates the check bits.
  mem.write_word(b.word_addr + 1, 100);
  mem.write_word(b.word_addr + 2, 200);
  mem.ecc().scrub_step(12, 2);
  EXPECT_EQ(mem.ecc().counters().cleared_by_rewrite, 2u);
  EXPECT_EQ(mem.ecc().dirty_codewords(), 0u);
  EXPECT_EQ(mem.ecc().poisoned_codewords(), 0u);
  EXPECT_EQ(mem.read_word(b.word_addr + 1), 100u);
}

TEST(Ecc, ScrubWalksOnABudget) {
  NodeMemory mem(tiny_ecc_config());
  const Block b = mem.alloc_in(Region::kDdr, 32, "b");
  // A flip in the last DDR burst is reached only by the third 4-row burst
  // of the cursor walk.
  mem.write_word(b.word_addr + 30, 5);
  mem.ecc().inject_upset(b.word_addr + 30, 11);
  EXPECT_EQ(mem.ecc().scrub_step(4, 2), 4u);
  EXPECT_EQ(mem.ecc().counters().corrected, 0u);
  EXPECT_EQ(mem.ecc().scrub_step(4, 2), 4u);
  EXPECT_EQ(mem.ecc().counters().corrected, 0u);
  EXPECT_EQ(mem.ecc().scrub_step(4, 2), 4u);
  EXPECT_EQ(mem.ecc().counters().corrected, 1u);
  EXPECT_EQ(mem.ecc().counters().scrub_rows, 12u);
  EXPECT_EQ(mem.ecc().counters().scrub_cycles, 24u);
}

TEST(Ecc, AllocatedWordIndexing) {
  NodeMemory mem(tiny_ecc_config());
  const Block a = mem.alloc_in(Region::kEdram, 8, "a");
  const Block d = mem.alloc_in(Region::kDdr, 8, "d");
  EXPECT_EQ(mem.allocated_words(), 16u);
  EXPECT_EQ(mem.nth_allocated_word(0), a.word_addr);
  EXPECT_EQ(mem.nth_allocated_word(7), a.word_addr + 7);
  EXPECT_EQ(mem.nth_allocated_word(8), d.word_addr);
  EXPECT_EQ(mem.nth_allocated_word(15), d.word_addr + 7);
}

struct UpsetRunSummary {
  u64 digest = 0;
  u64 events = 0;
  u64 upsets = 0;
  u64 corrected = 0;
  u64 uncorrectable = 0;
  u64 scrub_rows = 0;

  friend bool operator==(const UpsetRunSummary&,
                         const UpsetRunSummary&) = default;
};

// A sustained entropy-addressed upset campaign with scrubbing on, at a
// given simulation thread count.  Every node gets live EDRAM and DDR data
// for the upsets to land in.
UpsetRunSummary run_upset_campaign(int threads) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 1, 1, 1};
  cfg.sim_threads = threads;
  machine::Machine m(cfg);
  for (int i = 0; i < m.num_nodes(); ++i) {
    NodeMemory& mem = m.memory(NodeId{static_cast<u32>(i)});
    const Block e = mem.alloc_in(Region::kEdram, 128, "soak.edram");
    const Block d = mem.alloc_in(Region::kDdr, 128, "soak.ddr");
    for (u64 w = 0; w < 128; ++w) {
      mem.write_word(e.word_addr + w, w);
      mem.write_word(d.word_addr + w, ~w);
    }
  }
  m.start_memory_scrubbers();
  fault::FaultInjector injector(&m.mesh());
  injector.arm(fault::FaultPlan::sustained_mem_upsets(
      /*seed=*/77, cfg.shape, /*n=*/48, /*start=*/1024, /*horizon=*/1 << 16,
      /*uncorrectable_fraction=*/0.25));
  m.engine().run_until((1 << 16) + (1 << 15));

  UpsetRunSummary s;
  s.digest = m.engine().trace_digest();
  s.events = m.engine().events_executed();
  const EccCounters total = m.mesh().total_ecc();
  s.upsets = total.upsets;
  s.corrected = total.corrected;
  s.uncorrectable = total.uncorrectable;
  s.scrub_rows = total.scrub_rows;
  return s;
}

TEST(Ecc, UpsetReplayBitIdenticalAcrossEngines) {
  const UpsetRunSummary serial = run_upset_campaign(1);
  EXPECT_GE(serial.upsets, 48u);  // uncorrectable events flip 2 bits
  EXPECT_LE(serial.upsets, 96u);
  EXPECT_GT(serial.corrected, 0u);
  EXPECT_GT(serial.uncorrectable, 0u);
  EXPECT_GT(serial.scrub_rows, 0u);
  EXPECT_EQ(run_upset_campaign(2), serial);
  EXPECT_EQ(run_upset_campaign(4), serial);
}

TEST(Ecc, ScrubberSweepIsDeterministic) {
  // Fault-free scrubbing is pure overhead: two identical runs walk the
  // same rows in the same order and correct nothing.
  const UpsetRunSummary a = [] {
    machine::MachineConfig cfg;
    cfg.shape.extent = {2, 2, 1, 1, 1, 1};
    machine::Machine m(cfg);
    m.start_memory_scrubbers();
    m.engine().run_until(1 << 16);
    UpsetRunSummary s;
    s.digest = m.engine().trace_digest();
    s.events = m.engine().events_executed();
    s.scrub_rows = m.mesh().total_ecc().scrub_rows;
    return s;
  }();
  const UpsetRunSummary b = [] {
    machine::MachineConfig cfg;
    cfg.shape.extent = {2, 2, 1, 1, 1, 1};
    machine::Machine m(cfg);
    m.start_memory_scrubbers();
    m.engine().run_until(1 << 16);
    UpsetRunSummary s;
    s.digest = m.engine().trace_digest();
    s.events = m.engine().events_executed();
    s.scrub_rows = m.mesh().total_ecc().scrub_rows;
    return s;
  }();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.scrub_rows, 0u);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(KernelProfile, AdditionAndScaling) {
  cpu::KernelProfile a, b;
  a.fmadd_flops = 10;
  a.load_bytes = 100;
  b.fmadd_flops = 5;
  b.other_flops = 3;
  const auto c = a + b;
  EXPECT_DOUBLE_EQ(c.fmadd_flops, 15.0);
  EXPECT_DOUBLE_EQ(c.flops(), 18.0);
  const auto d = c.scaled(2.0);
  EXPECT_DOUBLE_EQ(d.fmadd_flops, 30.0);
  EXPECT_DOUBLE_EQ(d.load_bytes, 200.0);
}

}  // namespace
}  // namespace qcdoc::memsys
