#include <gtest/gtest.h>

#include <cstring>

#include "cpu/timing.h"
#include "memsys/dcache.h"
#include "memsys/memsys.h"

namespace qcdoc::memsys {
namespace {

TEST(NodeMemory, AllocPrefersEdramThenSpills) {
  MemConfig cfg;
  cfg.edram_words = 100;
  cfg.ddr_words = 1000;
  NodeMemory mem(cfg);
  const Block a = mem.alloc(60, "a");
  EXPECT_EQ(a.region, Region::kEdram);
  const Block b = mem.alloc(60, "b");  // does not fit the remaining EDRAM
  EXPECT_EQ(b.region, Region::kDdr);
  const Block c = mem.alloc(40, "c");  // still fits EDRAM
  EXPECT_EQ(c.region, Region::kEdram);
  EXPECT_EQ(mem.edram_words_used(), 100u);
  EXPECT_EQ(mem.ddr_words_used(), 60u);
}

TEST(NodeMemory, ReadWriteRoundTrip) {
  NodeMemory mem;
  const Block b = mem.alloc(16, "b");
  for (u64 i = 0; i < 16; ++i) mem.write_word(b.word_addr + i, i * i);
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(mem.read_word(b.word_addr + i), i * i);
}

TEST(NodeMemory, DoubleViewAliasesWords) {
  NodeMemory mem;
  const Block b = mem.alloc(8, "b");
  auto d = mem.doubles(b);
  d[0] = 3.25;
  // The word view sees the same bits.
  u64 bits = mem.read_word(b.word_addr);
  double via_word;
  std::memcpy(&via_word, &bits, sizeof(via_word));
  EXPECT_DOUBLE_EQ(via_word, 3.25);
}

TEST(NodeMemory, SpansSurviveLaterAllocations) {
  NodeMemory mem;
  const Block a = mem.alloc(32, "a");
  auto sa = mem.doubles(a);
  sa[5] = 1.5;
  for (int i = 0; i < 50; ++i) mem.alloc(1024, "filler");
  EXPECT_DOUBLE_EQ(sa[5], 1.5);  // no invalidation
  EXPECT_DOUBLE_EQ(mem.doubles(a)[5], 1.5);
}

TEST(NodeMemory, RegionOfAddress) {
  MemConfig cfg;
  cfg.edram_words = 64;
  NodeMemory mem(cfg);
  EXPECT_EQ(mem.region_of(0), Region::kEdram);
  EXPECT_EQ(mem.region_of(63), Region::kEdram);
  EXPECT_EQ(mem.region_of(64), Region::kDdr);
}

TEST(MemTiming, EdramStreamsAtFullBandwidthForTwoStreams) {
  MemTiming t;
  // 1600 bytes at 16 B/cycle = 100 cycles, no penalty for <= 2 streams.
  EXPECT_DOUBLE_EQ(t.stream_cycles(Region::kEdram, 1600, 2), 100.0);
  // More streams than the two prefetch engines pay page misses.
  EXPECT_GT(t.stream_cycles(Region::kEdram, 1600, 6), 100.0);
}

TEST(MemTiming, DdrIsSlowerThanEdram) {
  MemTiming t;
  EXPECT_GT(t.stream_cycles(Region::kDdr, 4096, 1),
            t.stream_cycles(Region::kEdram, 4096, 2));
  // Multi-stream DDR thrashes pages.
  EXPECT_GT(t.stream_cycles(Region::kDdr, 4096, 4),
            t.stream_cycles(Region::kDdr, 4096, 1));
}

TEST(DCache, WorkingSetModel) {
  DCacheConfig c;
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 16 * 1024, 4), 0.75);
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 64 * 1024, 4), 0.0);
  EXPECT_DOUBLE_EQ(cache_hit_fraction(c, 1024, 1), 0.0);
}

TEST(CpuModel, FpuBoundKernel) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 1.0;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile p;
  p.fmadd_flops = 2000;  // 1000 cycles of perfect fmadds
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 1000.0);
  EXPECT_DOUBLE_EQ(model.efficiency(p), 1.0);
}

TEST(CpuModel, IssueEfficiencyDegradesFpu) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 0.5;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile p;
  p.fmadd_flops = 2000;
  EXPECT_DOUBLE_EQ(model.kernel_cycles(p), 2000.0);
  EXPECT_DOUBLE_EQ(model.efficiency(p), 0.5);
}

TEST(CpuModel, DdrTrafficIsAdditiveEdramIsNot) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuParams params;
  params.fpu_issue_efficiency = 1.0;
  cpu::CpuModel model(hw, mem, params);
  cpu::KernelProfile base;
  base.fmadd_flops = 20000;  // 10000 fpu cycles
  cpu::KernelProfile with_edram = base;
  with_edram.edram_bytes = 16000;  // 1000 cycles, hidden under compute
  with_edram.streams = 2;
  EXPECT_DOUBLE_EQ(model.kernel_cycles(with_edram),
                   model.kernel_cycles(base));
  cpu::KernelProfile with_ddr = base;
  with_ddr.ddr_bytes = 16000;  // exposed stall
  with_ddr.streams = 1;
  EXPECT_GT(model.kernel_cycles(with_ddr), model.kernel_cycles(base));
}

TEST(CpuModel, SinglePrecisionHelpsOnlyMemoryBoundKernels) {
  HwParams hw;
  MemTiming mem;
  cpu::CpuModel model(hw, mem);
  cpu::KernelProfile dp;
  dp.fmadd_flops = 100;
  dp.load_bytes = 6400;  // strongly load/store bound
  cpu::KernelProfile sp = dp;
  sp.load_bytes /= 2;
  EXPECT_LT(model.kernel_cycles(sp), model.kernel_cycles(dp));
}

TEST(KernelProfile, AdditionAndScaling) {
  cpu::KernelProfile a, b;
  a.fmadd_flops = 10;
  a.load_bytes = 100;
  b.fmadd_flops = 5;
  b.other_flops = 3;
  const auto c = a + b;
  EXPECT_DOUBLE_EQ(c.fmadd_flops, 15.0);
  EXPECT_DOUBLE_EQ(c.flops(), 18.0);
  const auto d = c.scaled(2.0);
  EXPECT_DOUBLE_EQ(d.fmadd_flops, 30.0);
  EXPECT_DOUBLE_EQ(d.load_bytes, 200.0);
}

}  // namespace
}  // namespace qcdoc::memsys
